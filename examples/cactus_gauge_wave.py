"""Figure 5 substitution + §5 testbed: evolving Einstein's equations.

Evolves the Apples-with-Apples gauge wave (an exact solution of the
vacuum Einstein equations under harmonic slicing), demonstrates
second-order convergence, monitors the constraints, and saves field
snapshots — the same solver machinery a black-hole run (Fig. 5) uses.

Run:  python examples/cactus_gauge_wave.py
"""

import os

import numpy as np

from repro.apps import cactus
from repro.experiments.figures import save_pgm

OUT = os.path.join(os.path.dirname(__file__), "out")


def evolve(n: int, t_end: float = 0.25):
    dx = 1.0 / n
    solver = cactus.CactusSolver(
        *cactus.gauge_wave((n, 4, 4), dx, amplitude=0.05),
        spacing=dx, dt=0.2 * dx, gauge="harmonic", integrator="rk4")
    solver.step(int(round(t_end / (0.2 * dx))))
    exact = cactus.gauge_wave((n, 4, 4), dx, amplitude=0.05,
                              t=solver.time)
    return solver, solver.deviation_from(*exact)


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    print("ADM gauge-wave evolution (harmonic slicing, RK4):")
    errors = {}
    for n in (16, 32, 64):
        solver, err = evolve(n)
        errors[n] = err
        c = solver.constraints()
        print(f"  n={n:3d}: error vs exact {err:.3e}   "
              f"H_inf {c.hamiltonian_linf:.1e}   "
              f"M_inf {c.momentum_linf:.1e}")
    order1 = np.log2(errors[16] / errors[32])
    order2 = np.log2(errors[32] / errors[64])
    print(f"  convergence order: {order1:.2f} (16->32), "
          f"{order2:.2f} (32->64)  [expected 2.0]")

    # Figure 5 substitution: a field snapshot of genuinely evolving GR.
    solver, _ = evolve(64, t_end=0.4)
    slice_xx = solver.gamma[0, 0, :, :, 2]
    np.save(os.path.join(OUT, "figure5_gamma_xx.npy"), slice_xx)
    save_pgm(os.path.join(OUT, "figure5_gamma_xx.pgm"), slice_xx)
    print("\nSaved evolved metric snapshot to out/figure5_gamma_xx.*")

    # Robust-stability testbed (the AwA noise test).
    noisy = cactus.CactusSolver(
        *cactus.random_perturbation((8, 8, 8), amplitude=1e-8),
        spacing=0.25, gauge="1+log", dissipation=0.2)
    noisy.step(50)
    print(f"Robust stability: max field after 50 noisy steps = "
          f"{noisy.max_field():.6f} (must stay ~1)")


if __name__ == "__main__":
    main()
