"""Figures 3 & 4 + §4: plane-wave DFT on bulk silicon.

Computes the Cohen-Bergstresser silicon band structure at Gamma, runs
the Kohn-Sham SCF loop, prints the Figure 4 parallel data layouts (from
the actual load balancer), and saves the charge density (the Figure 3
substitution).

Run:  python examples/paratec_silicon.py
"""

import os

import numpy as np

from repro.apps import paratec
from repro.experiments.figures import save_pgm

OUT = os.path.join(os.path.dirname(__file__), "out")
HA_TO_EV = 27.2114


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    cell = paratec.silicon_primitive()
    print(f"Bulk silicon, 2-atom primitive cell "
          f"(paper systems: {paratec.silicon_supercell(6).natoms} and "
          f"{paratec.silicon_supercell(7).natoms} atoms)")

    # -- band structure at Gamma -------------------------------------------
    basis = paratec.PlaneWaveBasis(cell, ecut=6.0)
    ham = paratec.Hamiltonian.ionic(basis)
    bands = paratec.random_bands(basis.size, 8, seed=0)
    evals, bands, stats = paratec.cg_iterate(ham, bands, n_outer=12,
                                             n_inner=4)
    ev = (evals - evals[3]) * HA_TO_EV
    print(f"\nEigenvalues at Gamma ({basis.size} plane waves, "
          f"all-band CG, residual {stats.residual_max:.1e}):")
    print("  " + "  ".join(f"{e:7.2f}" for e in ev) + "   [eV]")
    print(f"  Gamma_25' -> Gamma_15 gap: {ev[4]:.2f} eV "
          f"(Cohen-Bergstresser: ~3.4 eV)")

    # -- SCF ------------------------------------------------------------------
    scf = paratec.SCFSolver(cell, ecut=5.5, nbands=6, seed=1)
    res = scf.run(n_scf=10, cg_steps=3)
    last = res.history[-1]
    print(f"\nSCF ({len(res.history)} iterations): "
          f"E_total = {last.total_energy:.6f} Ha, "
          f"gap = {last.gap * HA_TO_EV:.2f} eV, "
          f"dE = {res.converged_to:.1e}")
    rho_slice = res.density[:, :, res.density.shape[2] // 2]
    np.save(os.path.join(OUT, "figure3_density.npy"), res.density)
    save_pgm(os.path.join(OUT, "figure3_density.pgm"), rho_slice)
    print("  charge density saved to out/figure3_density.*")

    # -- Figure 4: parallel layouts ------------------------------------------
    layout = paratec.SphereLayout(basis, 3)
    print("\nFigure 4a: G-sphere columns on three processors "
          "(greedy balance):")
    print(f"  columns per processor: "
          f"{[len(c) for c in layout.columns_of]}")
    print(f"  points per processor:  {layout.loads.tolist()} "
          f"(of {basis.size})")
    print("Figure 4b: real-space x-pencil blocks: "
          f"{[layout.x_range(r) for r in range(3)]}")


if __name__ == "__main__":
    main()
