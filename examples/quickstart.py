"""Quickstart: the three layers of the library in one page.

1. run a real application kernel (LBMHD) and check its physics;
2. describe its work with a profile and predict performance on the five
   platforms of the paper (Table 1);
3. run the same code on the simulated parallel runtime and confirm the
   distributed execution is exact.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import lbmhd
from repro.machine import PLATFORMS
from repro.perf import PerformanceModel
from repro.runtime import Transport


def main() -> None:
    # -- 1. real physics ---------------------------------------------------
    rho, u, B = lbmhd.orszag_tang(64, 64)
    solver = lbmhd.LBMHDSolver(rho, u, B, tau=0.8, tau_m=0.8)
    e0 = solver.diagnostics().total_energy
    solver.step(50)
    d = solver.diagnostics()
    print("LBMHD, 64^2 Orszag-Tang vortex, 50 steps:")
    print(f"  mass conserved to      {abs(d.mass - 64 * 64):.2e}")
    print(f"  energy decayed         {e0:.4f} -> {d.total_energy:.4f}")
    print(f"  max |div B|            {d.max_divb:.2e}")

    # -- 2. performance prediction -----------------------------------------
    cfg = lbmhd.LBMHDConfig(grid=4096, nprocs=64)
    profile = lbmhd.build_profile(cfg)
    print("\nPredicted LBMHD performance, 4096^2 grid on 64 CPUs:")
    print(f"  {'machine':8} {'Gflops/P':>9} {'%peak':>6} {'AVL':>6}")
    for machine in PLATFORMS:
        r = PerformanceModel(machine).predict(profile)
        print(f"  {machine.name:8} {r.gflops_per_proc:9.3f} "
              f"{r.pct_peak:5.0f}% {r.avl:6.0f}")

    # -- 3. simulated parallel execution ------------------------------------
    transport = Transport(4)
    serial = lbmhd.LBMHDSolver(*lbmhd.orszag_tang(32, 32))
    serial.step(5)
    r_par, _, _ = lbmhd.run_parallel(*lbmhd.orszag_tang(32, 32),
                                     nprocs=4, nsteps=5,
                                     transport=transport)
    print("\n4-rank simulated-MPI run vs serial:")
    print(f"  max deviation          "
          f"{np.abs(r_par - serial.fields[0]).max():.1e} (bitwise)")
    print(f"  messages exchanged     {transport.message_count()}, "
          f"{transport.total_bytes() / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
