"""The paper, end to end: regenerate every table and figure.

Prints Tables 1-7 and the Figure 9 series, model next to the paper's
measurements, and writes the full report to ``out/paper_report.txt``.

Run:  python examples/architecture_study.py
"""

import os

from repro.experiments import run_all

OUT = os.path.join(os.path.dirname(__file__), "out")


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    report = run_all()
    print(report)
    path = os.path.join(OUT, "paper_report.txt")
    with open(path, "w") as fh:
        fh.write(report + "\n")
    print(f"\nFull report written to {path}")


if __name__ == "__main__":
    main()
