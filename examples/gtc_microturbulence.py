"""Figure 7 + §6.1: gyrokinetic PIC microturbulence and the deposition
algorithms.

Runs the GTC cycle from a seeded poloidal mode, saves the electrostatic
potential (the "finger-like" eddies of Fig. 7), and compares the three
charge-deposition algorithms in results and wall-clock.

Run:  python examples/gtc_microturbulence.py
"""

import os
import time

import numpy as np

from repro.apps import gtc
from repro.experiments.figures import save_pgm

OUT = os.path.join(os.path.dirname(__file__), "out")


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    grid = gtc.AnnulusGrid(0.2, 1.0, 32, 64)
    geom = gtc.TorusGeometry(grid, nplanes=4)
    particles = gtc.load_ring_perturbation(geom, 20.0, mode_m=6,
                                           amplitude=0.4, seed=0)
    solver = gtc.GTCSolver(geom, particles, dt=0.05)
    solver.step(5)
    phi = solver.potential_snapshot()
    np.save(os.path.join(OUT, "figure7_potential.npy"), phi)
    save_pgm(os.path.join(OUT, "figure7_potential.pgm"), phi)
    spectrum = np.abs(np.fft.rfft(phi[grid.nr // 2]))
    print("Figure 7 reproduction: electrostatic potential")
    print(f"  {len(particles)} particles on {geom.nplanes} poloidal "
          f"planes")
    print(f"  dominant poloidal mode m = {spectrum.argmax()} "
          f"(seeded m = 6)")
    print(f"  saved to out/figure7_potential.npy/.pgm")

    d = solver.diagnostics()
    print(f"  charge on grid {d.total_charge:.1f}, particles "
          f"{d.nparticles} (all conserved)")

    # -- deposition algorithms (Fig. 8 / §6.1) ------------------------------
    print("\nCharge deposition algorithms (one plane, "
          f"{len(solver.particles_of_plane(0))} particles):")
    plane_particles = solver.particles_of_plane(0)
    results = {}
    for name, fn in (
            ("classic (scalar)",
             lambda: gtc.deposit_classic(grid, plane_particles)),
            ("work-vector VL=64",
             lambda: gtc.deposit_work_vector(grid, plane_particles,
                                             vector_length=64)[0]),
            ("sorted",
             lambda: gtc.deposit_sorted(grid, plane_particles))):
        t0 = time.perf_counter()
        rho = fn()
        dt = time.perf_counter() - t0
        results[name] = rho
        print(f"  {name:20} {dt * 1e3:7.1f} ms   "
              f"total charge {rho.sum():.4f}")
    ref = results["classic (scalar)"]
    for name, rho in results.items():
        assert np.allclose(rho, ref, atol=1e-10)
    print("  all three algorithms agree to rounding error")
    amp = gtc.profile.memory_amplification(256, 10)
    print(f"  work-vector memory amplification at production "
          f"resolution: {amp:.1f}x (paper: 2x-8x, §6.1)")


if __name__ == "__main__":
    main()
