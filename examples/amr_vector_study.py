"""The paper's §7 future work, carried out: AMR on vector machines.

Runs a multiscale advection-diffusion problem on a block-structured AMR
hierarchy, validates it against a fine-unigrid reference, and then asks
the paper's question: what do short patch loops do to vector
performance?

Run:  python examples/amr_vector_study.py
"""

import numpy as np

from repro.amr import (
    AMRAdvectionSolver,
    amr_vector_study,
    gaussian_pulse,
    render_study,
    unigrid_reference,
)


def main() -> None:
    u0, dx = gaussian_pulse(64)
    solver = AMRAdvectionSolver(u0.copy(), dx, flag_threshold=0.08)
    m0 = solver.total_mass()
    solver.step(40)
    ref = unigrid_reference(u0, dx, 40, dt=solver.dt)
    err = np.abs(solver.solution() - ref).max()
    h = solver.hierarchy
    print("AMR advection-diffusion, 64^2 base grid + ratio-2 patches:")
    print(f"  patches {h.n_patches}, refined fraction "
          f"{h.refined_fraction():.1%}")
    print(f"  error vs fine unigrid: {err:.4f} "
          f"(peak {ref.max():.3f})")
    print(f"  mass drift: {abs(solver.total_mass() - m0) / m0:.2%} "
          f"(first-order coupling, no refluxing)")
    print()
    print(render_study(amr_vector_study(h), h))
    print()
    print("Reading: cache-based machines keep their throughput on small")
    print("patches; the cacheless vector pipes lose pipeline")
    print("amortization as AVL falls with the patch width — the tension")
    print("the paper flagged for future ultrascale AMR codes.")


if __name__ == "__main__":
    main()
