"""Figure 1: current-density decay of two cross-shaped structures.

Runs the LBMHD solver from the paper's initial conditions and writes the
current-density field at several times to ``out/`` as ``.npy`` arrays and
PGM images (no plotting dependencies needed).

Run:  python examples/lbmhd_current_sheets.py
"""

import os

import numpy as np

from repro.apps import lbmhd
from repro.experiments.figures import figure1_current_decay, save_pgm

OUT = os.path.join(os.path.dirname(__file__), "out")


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    steps = (0, 100, 250)
    fields = figure1_current_decay(n=96, steps=steps)
    print("Figure 1 reproduction: |j| of the cross-shaped structures")
    for s, j in zip(sorted(steps), fields):
        np.save(os.path.join(OUT, f"figure1_j_step{s}.npy"), j)
        save_pgm(os.path.join(OUT, f"figure1_j_step{s}.pgm"), np.abs(j))
        print(f"  step {s:4d}: max|j| = {np.abs(j).max():.4f}   "
              f"-> out/figure1_j_step{s}.npy/.pgm")
    decay = np.abs(fields[-1]).max() / np.abs(fields[0]).max()
    print(f"  current decayed to {decay:.1%} of the initial maximum")

    # Conservation bookkeeping over the same run.
    solver = lbmhd.LBMHDSolver(*lbmhd.cross_current_sheets(96, 96),
                               tau=0.6, tau_m=0.6)
    hist = solver.run_with_history(250, every=50)
    print("\n  step   mass            total energy")
    for d in hist:
        print(f"  {d.step:5d}  {d.mass:.10f}  {d.total_energy:.6f}")


if __name__ == "__main__":
    main()
