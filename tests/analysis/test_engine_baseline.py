"""Engine mechanics: rule selection, reports, baseline ratchet."""

import json

import pytest

from repro.analysis import (
    SCHEMA_VERSION,
    Finding,
    LintReport,
    apply_baseline,
    lint_source,
    load_baseline,
    resolve_rules,
    rule_names,
    run_lint,
    save_baseline,
    sort_findings,
)

BAD = "import time\nstart = time.time()\nassert start > 0\n"


class TestRuleSelection:
    def test_registry_has_all_nine_rules(self):
        names = rule_names()
        for expected in ("wall-clock", "unseeded-rng", "bare-assert",
                         "mutable-default", "hidden-copy", "tracer-guard",
                         "rank-divergent-collective", "unmatched-tag",
                         "comm-direction-mismatch"):
            assert expected in names

    def test_enable_restricts(self):
        findings = lint_source(BAD, "x.py", enable=["bare-assert"])
        assert [f.rule for f in findings] == ["bare-assert"]

    def test_disable_removes(self):
        findings = lint_source(BAD, "x.py", disable=["wall-clock"])
        assert [f.rule for f in findings] == ["bare-assert"]

    def test_unknown_rule_name_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(enable=["wall-clcok"])
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source(BAD, "x.py", disable=["nope"])


class TestEngineWalk:
    def test_run_lint_walks_directories(self, tmp_path):
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("def f(x=[]):\n    return x\n")
        findings, nfiles = run_lint([tmp_path], root=tmp_path)
        assert nfiles == 2
        assert sorted(f.rule for f in findings) \
            == ["mutable-default", "wall-clock"]
        # Paths are root-relative and stable (baseline fingerprints).
        assert {f.path for f in findings} == {"a.py", "pkg/b.py"}

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        findings, nfiles = run_lint([tmp_path], root=tmp_path)
        assert nfiles == 2
        assert [f.rule for f in findings] == ["parse-error"]

    def test_findings_sorted_by_location(self):
        fs = [Finding("r", "warning", "b.py", 9, "m"),
              Finding("r", "error", "a.py", 2, "m"),
              Finding("r", "error", "a.py", 1, "m")]
        ordered = sort_findings(fs)
        assert [(f.path, f.line) for f in ordered] \
            == [("a.py", 1), ("a.py", 2), ("b.py", 9)]


class TestReport:
    def test_doc_shape_mirrors_bench_report(self, tmp_path):
        findings = lint_source(BAD, "x.py")
        report = LintReport("lint", findings, files=1,
                            rules=rule_names())
        doc = report.to_doc()
        assert doc["version"] == SCHEMA_VERSION
        assert set(doc) == {"version", "schema", "tool", "exit_code",
                            "files", "rules", "counts", "suppressed",
                            "stale_baseline", "findings"}
        assert doc["schema"] == f"repro.analysis.lint/{SCHEMA_VERSION}"
        out = tmp_path / "lint.json"
        report.write_json(out)
        assert json.loads(out.read_text())["counts"]["wall-clock"] == 1

    def test_render_includes_location_and_summary(self):
        findings = lint_source(BAD, "x.py")
        text = LintReport("lint", findings, files=1).render()
        assert "x.py:2" in text
        assert "finding(s)" in text


class TestBaseline:
    def test_roundtrip_suppresses_exactly(self, tmp_path):
        findings = lint_source(BAD, "x.py")
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        new, suppressed, stale = apply_baseline(
            findings, load_baseline(path))
        assert (new, suppressed, stale) == ([], len(findings), [])

    def test_new_findings_exceed_budget(self, tmp_path):
        findings = lint_source(BAD, "x.py")
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        doubled = findings + findings     # same fingerprints, 2x count
        new, suppressed, _ = apply_baseline(doubled, load_baseline(path))
        assert suppressed == len(findings)
        assert len(new) == len(findings)

    def test_fixed_findings_become_stale_entries(self, tmp_path):
        findings = lint_source(BAD, "x.py")
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        new, suppressed, stale = apply_baseline([], load_baseline(path))
        assert new == [] and suppressed == 0
        assert len(stale) == len(findings)
        assert all(e["unmatched"] == 1 for e in stale)

    def test_line_drift_does_not_churn(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(lint_source(BAD, "x.py"), path)
        shifted = lint_source("\n\n\n" + BAD, "x.py")   # lines moved
        new, suppressed, stale = apply_baseline(
            shifted, load_baseline(path))
        assert (new, stale) == ([], [])
        assert suppressed == len(shifted)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}
        assert load_baseline(None) == {}

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)
