"""Communication-matching checker on synthetic drivers.

The positive fixtures are miniature versions of the three deadlock
shapes; the negative fixtures are distilled from the repo's real
drivers (LBMHD's opposite-direction halo pairing, GTC's shift tags,
xor-partner pairwise exchanges), so the checker stays quiet on the
patterns the codebase legitimately uses.
"""

import ast

from repro.analysis import extract_comm_ops, lint_source

COMM = ["rank-divergent-collective", "unmatched-tag",
        "comm-direction-mismatch", "blocking-recv-timeout"]


def rules_of(src: str, path: str = "driver.py") -> list[str]:
    return [f.rule for f in lint_source(src, path, enable=COMM)]


class TestExtractCommOps:
    def test_send_recv_structure(self):
        src = (
            "def step(comm, left, right):\n"
            "    comm.send(buf, dest=left, tag=101)\n"
            "    comm.send(buf, right, 102)\n"
            "    got = comm.recv(source=right, tag=101)\n"
            "    comm.sendrecv(buf, left, right)\n"
        )
        fn = ast.parse(src).body[0]
        ops = extract_comm_ops(fn)
        kinds = [op.kind for op in ops]
        assert kinds == ["send", "send", "recv", "sendrecv"]
        assert ops[0].peer == "left" and ops[0].tag == 101
        assert ops[1].peer == "right" and ops[1].tag == 102
        assert ops[2].peer == "right" and ops[2].tag == 101
        assert ops[3].peer is None          # buffered both ways

    def test_dynamic_tag_is_marked_unknown(self):
        src = "def f(comm, k):\n    comm.send(b, dest=1, tag=k)\n"
        (op,) = extract_comm_ops(ast.parse(src).body[0])
        assert op.tag is None and op.tag_text == "k"

    def test_default_tag_is_zero(self):
        src = "def f(comm):\n    comm.send(b, dest=1)\n"
        (op,) = extract_comm_ops(ast.parse(src).body[0])
        assert op.tag == 0


class TestRankDivergentCollective:
    def test_flags_barrier_under_rank_branch(self):
        src = (
            "def step(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.barrier()\n"
        )
        assert rules_of(src) == ["rank-divergent-collective"]

    def test_flags_collective_under_tainted_name(self):
        src = (
            "def step(comm):\n"
            "    me = comm.rank\n"
            "    if me % 2 == 0:\n"
            "        total = comm.allreduce(1.0)\n"
        )
        assert rules_of(src) == ["rank-divergent-collective"]

    def test_accepts_collective_in_both_branches(self):
        # Every rank still calls the collective: rank-dependent
        # *arguments*, not rank-dependent *participation*.
        src = (
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        out = comm.bcast(x)\n"
            "    else:\n"
            "        out = comm.bcast(None)\n"
            "    return out\n"
        )
        assert rules_of(src) == []

    def test_accepts_rank_dependent_p2p(self):
        # Point-to-point under a rank branch is the normal SPMD idiom.
        src = (
            "def step(comm, buf):\n"
            "    if comm.rank == 0:\n"
            "        comm.send(buf, dest=1, tag=7)\n"
            "    else:\n"
            "        buf = comm.recv(source=0, tag=7)\n"
            "    return buf\n"
        )
        assert rules_of(src) == []

    def test_str_split_is_not_a_collective(self):
        src = (
            "def parse(comm, line):\n"
            "    if comm.rank == 0:\n"
            "        return line.split(',')\n"
            "    return None\n"
        )
        assert rules_of(src) == []


class TestUnmatchedTag:
    def test_flags_send_with_no_recv_for_tag(self):
        src = (
            "def step(comm, left, right, buf):\n"
            "    comm.send(buf, dest=left, tag=101)\n"
            "    comm.send(buf, dest=right, tag=102)\n"
            "    a = comm.recv(source=right, tag=101)\n"
            "    b = comm.recv(source=left, tag=103)\n"
        )
        assert sorted(rules_of(src)) == ["unmatched-tag",
                                         "unmatched-tag"]

    def test_accepts_gtc_shift_pairing(self):
        # send left on 101 / recv right on 101, and vice versa.
        src = (
            "def shift(comm, left, right, lo, hi):\n"
            "    comm.send(lo, dest=left, tag=101)\n"
            "    comm.send(hi, dest=right, tag=102)\n"
            "    from_right = comm.recv(source=right, tag=101)\n"
            "    from_left = comm.recv(source=left, tag=102)\n"
        )
        assert rules_of(src) == []

    def test_send_only_module_is_not_judged(self):
        src = "def post(comm, buf):\n    comm.send(buf, dest=1, tag=9)\n"
        assert rules_of(src) == []


class TestDirectionMismatch:
    def test_flags_recv_on_send_channel(self):
        # Shift exchange that recvs from the rank it sent to, on the
        # same tag — the message it waits for went the other way.
        src = (
            "def shift(comm, left, right, lo, hi):\n"
            "    comm.send(lo, dest=left, tag=5)\n"
            "    comm.send(hi, dest=right, tag=6)\n"
            "    a = comm.recv(source=left, tag=5)\n"
            "    b = comm.recv(source=right, tag=6)\n"
        )
        assert sorted(rules_of(src)) == ["comm-direction-mismatch",
                                         "comm-direction-mismatch"]

    def test_accepts_opposite_direction_recv(self):
        src = (
            "def shift(comm, left, right, lo, hi):\n"
            "    comm.send(lo, dest=left, tag=5)\n"
            "    comm.send(hi, dest=right, tag=6)\n"
            "    a = comm.recv(source=right, tag=5)\n"
            "    b = comm.recv(source=left, tag=6)\n"
        )
        assert rules_of(src) == []

    def test_accepts_pairwise_partner_exchange(self):
        # One xor partner: send to and recv from the same peer is the
        # correct pairwise pattern (PARATEC transpose style).
        src = (
            "def swap(comm, partner, buf):\n"
            "    comm.send(buf, dest=partner, tag=3)\n"
            "    return comm.recv(source=partner, tag=3)\n"
        )
        assert rules_of(src) == []


class TestSyntheticDeadlockDriver:
    def test_all_three_shapes_in_one_driver(self):
        src = (
            "def broken_halo(comm, left, right, buf):\n"
            "    me = comm.rank\n"
            "    if me == 0:\n"
            "        comm.barrier()\n"
            "    comm.send(buf, dest=left, tag=11)\n"
            "    comm.send(buf, dest=right, tag=12)\n"
            "    a = comm.recv(source=left, tag=11)\n"
            "    b = comm.recv(source=left, tag=99)\n"
        )
        found = sorted(rules_of(src))
        assert "rank-divergent-collective" in found
        assert "comm-direction-mismatch" in found
        assert "unmatched-tag" in found

    def test_repo_drivers_are_clean(self):
        import pathlib

        from repro.analysis import run_lint
        src_root = (pathlib.Path(__file__).resolve().parents[2]
                    / "src" / "repro")
        findings, nfiles = run_lint(
            [src_root / "apps", src_root / "runtime"], enable=COMM)
        assert nfiles > 0
        assert findings == [], "\n".join(f.render() for f in findings)


class TestBlockingTimeout:
    def test_flags_timeout_none_recv(self):
        src = ("def f(comm):\n"
               "    return comm.recv(source=1, tag=0, timeout=None)\n")
        assert rules_of(src) == ["blocking-recv-timeout"]

    def test_flags_hardcoded_numeric_timeout(self):
        src = ("def f(tp):\n"
               "    return tp.transport.fetch(0, 1, 0, timeout=30.0)\n")
        assert rules_of(src) == ["blocking-recv-timeout"]

    def test_accepts_unset_timeout(self):
        src = ("def f(comm):\n"
               "    comm.send(x, dest=1, tag=0)\n"
               "    return comm.recv(source=1, tag=0)\n")
        assert rules_of(src) == []

    def test_accepts_computed_timeout(self):
        src = ("def f(comm, deadline):\n"
               "    comm.send(x, dest=1, tag=0)\n"
               "    return comm.recv(source=1, tag=0, timeout=deadline)\n")
        assert rules_of(src) == []

    def test_non_transport_receivers_are_ignored(self):
        src = ("def f(sock):\n"
               "    return sock.recv(1024, timeout=None)\n")
        assert rules_of(src) == []
