"""Happens-before race analyzer: replay engine, dynamic + static rules."""

import gzip
import json

import numpy as np
import pytest

from repro.analysis.deadlock import check_trace_deadlocks
from repro.analysis.engine import lint_source
from repro.analysis.racecheck import (
    RACE_RULES,
    check_trace_races,
    happens_before,
    load_ops,
    replay,
)
from repro.obs.events import (
    CAT_BUFFER,
    CAT_COMM,
    INSTANT,
    SPAN,
    TraceEvent,
)
from repro.obs.export import write_chrome_trace, write_events_jsonl
from repro.obs.tracer import Tracer
from repro.runtime.comm import ParallelJob


def _ev(rank, seq, name, cat, ph, **args):
    return TraceEvent(name, cat, ph, rank, seq, float(seq), 0.0, None,
                      args)


def _hand_built_racy_fixture():
    """3-rank trace: rank 0 publishes b0 to ranks 1 and 2, gets an ack
    from rank 1 only, then reclaims.  Rank 2's read is unordered with
    the reclaim — the known racy pair."""
    site0 = "app.py:10 in step"
    site1 = "app.py:20 in step"
    site2 = "app.py:30 in step"
    return [
        # rank 0: publish + two sends, ack recv from rank 1, reclaim
        _ev(0, 0, "buf-epoch", CAT_BUFFER, INSTANT,
            op="publish", buf="b0", gen=0, site=site0),
        _ev(0, 1, "send", CAT_COMM, SPAN, dst=1, tag=5, site=site0),
        _ev(0, 2, "send", CAT_COMM, SPAN, dst=2, tag=5, site=site0),
        _ev(0, 3, "recv", CAT_COMM, SPAN, src=1, tag=6, site=site0),
        _ev(0, 4, "buf-epoch", CAT_BUFFER, INSTANT,
            op="reclaim", buf="b0", gen=1, site=site0),
        # rank 1: recv + read, then ack back to rank 0
        _ev(1, 0, "recv", CAT_COMM, SPAN, src=0, tag=5, site=site1),
        _ev(1, 1, "buf-epoch", CAT_BUFFER, INSTANT,
            op="read", buf="b0", gen=0, site=site1),
        _ev(1, 2, "send", CAT_COMM, SPAN, dst=0, tag=6, site=site1),
        # rank 2: recv + read, no ack — unordered with the reclaim
        _ev(2, 0, "recv", CAT_COMM, SPAN, src=0, tag=5, site=site2),
        _ev(2, 1, "buf-epoch", CAT_BUFFER, INSTANT,
            op="read", buf="b0", gen=0, site=site2),
    ]


class TestReplayEngine:
    def test_message_edge_orders_publish_before_read(self):
        events = _hand_built_racy_fixture()
        rep = replay(events)
        assert not rep.blocked
        by_rank = rep.by_rank
        publish = by_rank[0][0]
        read1 = by_rank[1][1]
        read2 = by_rank[2][1]
        reclaim = by_rank[0][4]
        assert happens_before(publish, read1)
        assert happens_before(publish, read2)
        assert happens_before(read1, reclaim)       # acked
        assert not happens_before(read2, reclaim)   # the race
        assert not happens_before(reclaim, read2)

    def test_hand_built_unordered_pair_is_flagged(self):
        findings = check_trace_races(_hand_built_racy_fixture())
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "trace-race"
        assert "b0" in f.message
        assert "rank 0" in f.message and "rank 2" in f.message
        assert "app.py:10" in f.message and "app.py:30" in f.message

    def test_acked_rank_is_not_flagged(self):
        findings = check_trace_races(_hand_built_racy_fixture())
        assert all("app.py:20" not in f.message for f in findings)

    def test_collective_round_joins_clocks(self):
        events = [
            _ev(0, 0, "buf-epoch", CAT_BUFFER, INSTANT,
                op="publish", buf="b0", gen=0, site="a.py:1 in f"),
            _ev(0, 1, "send", CAT_COMM, SPAN, dst=1, tag=5,
                site="a.py:1 in f"),
            _ev(0, 2, "barrier", "sync", SPAN),
            _ev(0, 3, "buf-epoch", CAT_BUFFER, INSTANT,
                op="reclaim", buf="b0", gen=1, site="a.py:3 in f"),
            _ev(1, 0, "recv", CAT_COMM, SPAN, src=0, tag=5,
                site="a.py:5 in f"),
            _ev(1, 1, "buf-epoch", CAT_BUFFER, INSTANT,
                op="read", buf="b0", gen=0, site="a.py:5 in f"),
            _ev(1, 2, "barrier", "sync", SPAN),
        ]
        assert check_trace_races(events) == []

    def test_ack_edge_deletion_is_detected_deterministically(self):
        """Mutation test: removing the ack edge from an ordered trace
        must produce a race, with a stable fingerprint across runs."""
        events = _hand_built_racy_fixture()
        # First make the fixture fully clean: ack from rank 2 as well.
        clean = events + [
            _ev(2, 2, "send", CAT_COMM, SPAN, dst=0, tag=6,
                site="app.py:31 in step"),
            _ev(0, 5, "recv", CAT_COMM, SPAN, src=2, tag=6,
                site="app.py:11 in step"),
        ]
        # The reclaim must come after the second ack: reorder rank 0 so
        # the reclaim instant is last (seq 6).
        clean = [e for e in clean
                 if not (e.rank == 0 and e.name == "buf-epoch"
                         and e.args["op"] == "reclaim")]
        clean.append(_ev(0, 6, "buf-epoch", CAT_BUFFER, INSTANT,
                         op="reclaim", buf="b0", gen=1,
                         site="app.py:12 in step"))
        assert check_trace_races(clean) == []
        # Delete one ack edge (rank 2's ack send and its recv).
        mutated = [e for e in clean
                   if not (e.name in ("send", "recv")
                           and e.args.get("tag") == 6
                           and 2 in (e.rank, e.args.get("src"),
                                     e.args.get("dst")))]
        first = check_trace_races(mutated)
        second = check_trace_races(mutated)
        assert len(first) == 1
        assert [f.fingerprint for f in first] == \
            [f.fingerprint for f in second]

    def test_unordered_cross_rank_reclaims_are_write_write_race(self):
        events = [
            _ev(0, 0, "buf-epoch", CAT_BUFFER, INSTANT,
                op="reclaim", buf="b0", gen=1, site="a.py:1 in f"),
            _ev(1, 0, "buf-epoch", CAT_BUFFER, INSTANT,
                op="reclaim", buf="b0", gen=2, site="a.py:2 in g"),
        ]
        findings = check_trace_races(events)
        assert len(findings) == 1
        assert "unordered write epochs" in findings[0].message


class TestSeededScenarios:
    def test_seeded_race_write_to_borrow_mid_flight(self):
        def racy(comm):
            if comm.rank == 0:
                buf = np.arange(4096, dtype=np.float64)
                comm.send(buf, 1, tag=7)
                buf = comm.reclaim(buf)     # no ack first: the bug
                buf[:] = -1.0
            elif comm.rank == 1:
                got = comm.recv(0, tag=7)
                float(got.sum())

        tracer = Tracer(2)
        ParallelJob(2, tracer=tracer).run(racy)
        findings = check_trace_races(tracer)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "trace-race" and f.severity == "error"
        assert "rank 0" in f.message and "rank 1" in f.message
        assert "test_racecheck.py" in f.message   # both witness sites
        assert check_trace_deadlocks(tracer) == []

    def test_acknowledged_reclaim_is_clean(self):
        def clean(comm):
            if comm.rank == 0:
                buf = np.arange(4096, dtype=np.float64)
                comm.send(buf, 1, tag=7)
                comm.recv(1, tag=8)          # ack
                buf = comm.reclaim(buf)
                buf[:] = -1.0
            elif comm.rank == 1:
                got = comm.recv(0, tag=7)
                comm.send(float(got.sum()), 0, tag=8)

        tracer = Tracer(2)
        ParallelJob(2, tracer=tracer).run(clean)
        assert check_trace_races(tracer) == []
        assert check_trace_deadlocks(tracer) == []

    def test_barrier_ack_is_clean(self):
        def clean(comm):
            if comm.rank == 0:
                buf = np.arange(4096, dtype=np.float64)
                comm.send(buf, 1, tag=7)
            elif comm.rank == 1:
                float(comm.recv(0, tag=7).sum())
            comm.barrier()
            if comm.rank == 0:
                # reclaim after the barrier: ordered against the read
                pass

        tracer = Tracer(2)
        ParallelJob(2, tracer=tracer).run(clean)
        assert check_trace_races(tracer) == []

    def test_tracing_is_bit_neutral(self):
        def app(comm):
            rng = np.random.default_rng(42 + comm.rank)
            state = rng.standard_normal(2048)
            for _ in range(3):
                peer = comm.rank ^ 1
                comm.send(state, peer, tag=1)
                halo = comm.recv(peer, tag=1)
                state = 0.5 * (np.asarray(halo) + state)
                total = comm.allreduce(float(state.sum()))
                state = state + total / state.size
            return state

        untraced = ParallelJob(2).run(app)
        traced = ParallelJob(2, tracer=Tracer(2)).run(app)
        for a, b in zip(untraced, traced):
            assert np.array_equal(a, b)


class TestCleanSweep:
    @pytest.mark.parametrize("app", ["lbmhd", "cactus", "gtc", "paratec"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_apps_report_zero_races_and_deadlocks(self, app, backend):
        from repro.obs.runner import trace_app

        run = trace_app(app, steps=1, outdir=None, backend=backend)
        assert check_trace_races(run.tracer) == []
        assert check_trace_deadlocks(run.tracer) == []

    def test_thread_sweep_has_buffer_epochs(self):
        from repro.obs.runner import trace_app

        run = trace_app("lbmhd", steps=1, outdir=None)
        epochs = [e for e in run.tracer.events() if e.name == "buf-epoch"]
        assert epochs, "epoch instrumentation went silent"
        assert {e.args["op"] for e in epochs} >= {"publish", "read"}


class TestTraceFileRoundTrip:
    def _record_racy(self):
        def racy(comm):
            if comm.rank == 0:
                buf = np.arange(4096, dtype=np.float64)
                comm.send(buf, 1, tag=7)
                buf = comm.reclaim(buf)
                buf[:] = -1.0
            elif comm.rank == 1:
                float(comm.recv(0, tag=7).sum())

        tracer = Tracer(2)
        ParallelJob(2, tracer=tracer).run(racy)
        return tracer

    def test_chrome_and_jsonl_agree_with_live_tracer(self, tmp_path):
        tracer = self._record_racy()
        live = check_trace_races(tracer)
        chrome = write_chrome_trace(tmp_path / "trace.json", tracer)
        jsonl = write_events_jsonl(tmp_path / "events.jsonl", tracer)
        from_chrome = check_trace_races(chrome)
        from_jsonl = check_trace_races(jsonl)
        assert len(live) == len(from_chrome) == len(from_jsonl) == 1
        assert from_chrome[0].message == live[0].message
        assert from_jsonl[0].message == live[0].message

    def test_gzipped_trace_loads(self, tmp_path):
        tracer = self._record_racy()
        chrome = write_chrome_trace(tmp_path / "trace.json", tracer)
        gz = tmp_path / "trace.json.gz"
        gz.write_bytes(gzip.compress(chrome.read_bytes()))
        assert len(check_trace_races(gz)) == 1

    def test_ops_survive_chrome_round_trip(self, tmp_path):
        tracer = self._record_racy()
        chrome = write_chrome_trace(tmp_path / "trace.json", tracer)
        live_ops = load_ops(tracer)
        file_ops = load_ops(json.loads(chrome.read_text()))
        assert {r: len(ops) for r, ops in live_ops.items()} == \
            {r: len(ops) for r, ops in file_ops.items()}


class TestStaticLifetimeRules:
    def test_rule_names_exported(self):
        assert set(RACE_RULES) == {"send-then-mutate",
                                   "write-after-borrow",
                                   "escaped-zero-copy-view"}

    def test_send_then_mutate_flagged(self):
        src = ("def step(comm, buf):\n"
               "    comm.send(buf, 1, tag=3)\n"
               "    buf[:] = 0.0\n")
        findings = lint_source(src, "x.py", enable=["send-then-mutate"])
        assert len(findings) == 1
        assert "buf" in findings[0].message

    def test_send_then_mutate_clean_with_ack(self):
        src = ("def step(comm, buf):\n"
               "    comm.send(buf, 1, tag=3)\n"
               "    comm.recv(1, tag=4)\n"
               "    buf[:] = 0.0\n")
        assert lint_source(src, "x.py",
                           enable=["send-then-mutate"]) == []

    def test_send_then_mutate_clean_with_barrier(self):
        src = ("def step(comm, buf):\n"
               "    comm.send(buf, 1, tag=3)\n"
               "    comm.barrier()\n"
               "    buf += 1.0\n")
        assert lint_source(src, "x.py",
                           enable=["send-then-mutate"]) == []

    def test_write_after_borrow_flagged(self):
        src = ("def pack(stats, halo):\n"
               "    shipped = borrow(halo, stats)\n"
               "    halo[0] = 1.0\n"
               "    return shipped\n")
        findings = lint_source(src, "x.py",
                               enable=["write-after-borrow"])
        assert len(findings) == 1

    def test_write_after_borrow_clean_after_reclaim(self):
        src = ("def pack(comm, stats, halo):\n"
               "    shipped = borrow(halo, stats)\n"
               "    comm.reclaim(halo)\n"
               "    halo[0] = 1.0\n"
               "    return shipped\n")
        assert lint_source(src, "x.py",
                           enable=["write-after-borrow"]) == []

    def test_escaped_view_flagged(self):
        src = ("class Halo:\n"
               "    def pull(self, comm):\n"
               "        edge = comm.recv(1, tag=2)\n"
               "        self.edge = edge\n")
        findings = lint_source(src, "x.py",
                               enable=["escaped-zero-copy-view"])
        assert len(findings) == 1
        assert "self.edge" in findings[0].message

    def test_escaped_view_clean_when_copied(self):
        src = ("import numpy as np\n"
               "class Halo:\n"
               "    def pull(self, comm):\n"
               "        edge = comm.recv(1, tag=2)\n"
               "        self.edge = np.array(edge)\n")
        assert lint_source(src, "x.py",
                           enable=["escaped-zero-copy-view"]) == []

    def test_repo_tree_is_clean_under_race_rules(self):
        from repro.analysis.engine import run_lint

        findings, _ = run_lint(["src/repro"], enable=list(RACE_RULES))
        assert findings == []
