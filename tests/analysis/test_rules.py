"""Per-rule positive/negative fixtures for the core lint rules.

Each rule gets at least one source string it must flag and one idiomatic
counterpart it must accept — the counterparts are the patterns the repo
actually uses, so a rule that starts false-positive-ing on house style
fails here before it fails on ``repro lint`` in CI.
"""

from repro.analysis import lint_source


def rules_of(src: str, path: str = "x.py", **kw) -> list[str]:
    return [f.rule for f in lint_source(src, path, **kw)]


class TestWallClock:
    def test_flags_time_time(self):
        src = "import time\nstart = time.time()\n"
        assert rules_of(src, enable=["wall-clock"]) == ["wall-clock"]

    def test_flags_time_time_ns(self):
        src = "import time\nstart = time.time_ns()\n"
        assert rules_of(src, enable=["wall-clock"]) == ["wall-clock"]

    def test_flags_argless_datetime_now(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rules_of(src, enable=["wall-clock"]) == ["wall-clock"]

    def test_accepts_tz_aware_now(self):
        src = ("import datetime\n"
               "stamp = datetime.datetime.now(datetime.timezone.utc)\n")
        assert rules_of(src, enable=["wall-clock"]) == []

    def test_flags_bare_import(self):
        src = "from time import time\n"
        assert rules_of(src, enable=["wall-clock"]) == ["wall-clock"]

    def test_accepts_perf_counter(self):
        src = ("import time\n"
               "from time import perf_counter\n"
               "t0 = time.perf_counter()\n"
               "t1 = time.monotonic()\n")
        assert rules_of(src, enable=["wall-clock"]) == []

    def test_perf_module_is_exempt(self):
        src = "import time\nstart = time.time()\n"
        assert rules_of(src, path="src/repro/perf/bench.py",
                        enable=["wall-clock"]) == []

    def test_mention_in_docstring_is_not_flagged(self):
        src = '"""never call time.time() here"""\nx = 1\n'
        assert rules_of(src, enable=["wall-clock"]) == []


class TestUnseededRng:
    def test_flags_global_np_random(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(src, enable=["unseeded-rng"]) == ["unseeded-rng"]

    def test_flags_legacy_randomstate(self):
        src = "import numpy as np\nr = np.random.RandomState(0)\n"
        assert rules_of(src, enable=["unseeded-rng"]) == ["unseeded-rng"]

    def test_flags_unseeded_default_rng(self):
        src = "import numpy as np\nr = np.random.default_rng()\n"
        assert rules_of(src, enable=["unseeded-rng"]) == ["unseeded-rng"]

    def test_accepts_seeded_default_rng(self):
        src = "import numpy as np\nr = np.random.default_rng(2004)\n"
        assert rules_of(src, enable=["unseeded-rng"]) == []


class TestBareAssert:
    def test_flags_assert(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        assert rules_of(src, enable=["bare-assert"]) == ["bare-assert"]

    def test_accepts_typed_raise(self):
        src = ("def f(x):\n"
               "    if x <= 0:\n"
               "        raise ValueError('x must be positive')\n"
               "    return x\n")
        assert rules_of(src, enable=["bare-assert"]) == []

    def test_message_carries_the_condition(self):
        src = "assert total == n\n"
        (f,) = lint_source(src, "x.py", enable=["bare-assert"])
        assert "total == n" in f.message


class TestMutableDefault:
    def test_flags_list_literal_default(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert rules_of(src, enable=["mutable-default"]) \
            == ["mutable-default"]

    def test_flags_dict_call_default(self):
        src = "def f(m=dict()):\n    return m\n"
        assert rules_of(src, enable=["mutable-default"]) \
            == ["mutable-default"]

    def test_flags_kwonly_default(self):
        src = "def f(*, xs=set()):\n    return xs\n"
        assert rules_of(src, enable=["mutable-default"]) \
            == ["mutable-default"]

    def test_accepts_none_sentinel(self):
        src = ("def f(xs=None):\n"
               "    xs = [] if xs is None else xs\n"
               "    return xs\n")
        assert rules_of(src, enable=["mutable-default"]) == []

    def test_accepts_immutable_defaults(self):
        src = "def f(a=0, b=(), c='x', d=frozenset()):\n    return a\n"
        assert rules_of(src, enable=["mutable-default"]) == []


class TestHiddenCopy:
    def test_flags_copy_in_runtime_module(self):
        src = "def pack(arr):\n    return arr.copy()\n"
        assert rules_of(src, path="src/repro/runtime/comm.py",
                        enable=["hidden-copy"]) == ["hidden-copy"]

    def test_flags_astype_in_fused_kernel(self):
        src = "def k(a):\n    return a.astype('int64')\n"
        assert rules_of(src, path="src/repro/apps/lbmhd/fused.py",
                        enable=["hidden-copy"]) == ["hidden-copy"]

    def test_accepts_astype_with_copy_false(self):
        src = "def k(a):\n    return a.astype('f8', copy=False)\n"
        assert rules_of(src, path="src/repro/apps/lbmhd/fused.py",
                        enable=["hidden-copy"]) == []

    def test_copy_outside_hot_modules_is_fine(self):
        src = "def snapshot(arr):\n    return arr.copy()\n"
        assert rules_of(src, path="src/repro/experiments/tables.py",
                        enable=["hidden-copy"]) == []


class TestTracerGuard:
    def test_flags_unguarded_instant(self):
        src = ("def step(self, rank):\n"
               "    tracer = self.transport.tracer\n"
               "    tracer.instant(rank, 'step', 'phase')\n")
        assert rules_of(src, enable=["tracer-guard"]) == ["tracer-guard"]

    def test_accepts_enabled_body_guard(self):
        src = ("def step(self, rank):\n"
               "    tracer = self.transport.tracer\n"
               "    if tracer.enabled:\n"
               "        tracer.instant(rank, 'step', 'phase')\n")
        assert rules_of(src, enable=["tracer-guard"]) == []

    def test_accepts_early_return_guard(self):
        src = ("def send(self, obj):\n"
               "    tr = self.transport.tracer\n"
               "    if not tr.enabled:\n"
               "        self.post(obj)\n"
               "        return\n"
               "    with tr.span(0, 'send', 'comm'):\n"
               "        self.post(obj)\n")
        assert rules_of(src, enable=["tracer-guard"]) == []


class TestConstantBackoff:
    def test_flags_constant_sleep_in_retry_loop(self):
        src = ("import time\n"
               "def fetch(self):\n"
               "    for attempt in range(3):\n"
               "        try:\n"
               "            return self.get()\n"
               "        except OSError:\n"
               "            time.sleep(0.5)\n")
        assert rules_of(src, enable=["constant-backoff"]) \
            == ["constant-backoff"]

    def test_flags_exponential_but_unjittered_backoff(self):
        src = ("import time\n"
               "def fetch(self):\n"
               "    attempt = 0\n"
               "    while True:\n"
               "        try:\n"
               "            return self.get()\n"
               "        except OSError:\n"
               "            time.sleep(2 ** attempt)\n"
               "            attempt += 1\n")
        assert rules_of(src, enable=["constant-backoff"]) \
            == ["constant-backoff"]

    def test_flags_from_import_alias(self):
        src = ("from time import sleep\n"
               "def fetch(self):\n"
               "    for attempt in range(3):\n"
               "        try:\n"
               "            return self.get()\n"
               "        except OSError:\n"
               "            sleep(1)\n")
        assert rules_of(src, enable=["constant-backoff"]) \
            == ["constant-backoff"]

    def test_accepts_policy_backoff(self):
        src = ("import time\n"
               "def fetch(self, policy):\n"
               "    for attempt in range(3):\n"
               "        try:\n"
               "            return self.get()\n"
               "        except OSError:\n"
               "            time.sleep(policy.backoff(attempt))\n")
        assert rules_of(src, enable=["constant-backoff"]) == []

    def test_accepts_computed_pause_variable(self):
        src = ("import time\n"
               "def run(self):\n"
               "    while True:\n"
               "        try:\n"
               "            self.poll()\n"
               "        except TimeoutError:\n"
               "            pause = self.policy.backoff(1)\n"
               "            time.sleep(pause)\n")
        assert rules_of(src, enable=["constant-backoff"]) == []

    def test_accepts_sleep_outside_retry_loops(self):
        src = ("import time\n"
               "def pace(self):\n"
               "    for _ in range(3):\n"
               "        time.sleep(0.01)\n")
        assert rules_of(src, enable=["constant-backoff"]) == []


class TestProcessUnsafeState:
    RT = "src/repro/runtime/example.py"

    def test_flags_module_level_mutable_global(self):
        src = "_PENDING = []\n"
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) \
            == ["process-unsafe-state"]

    def test_flags_dict_call_and_annassign(self):
        src = ("_CACHE = dict()\n"
               "_SEEN: set = set()\n")
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) \
            == ["process-unsafe-state"] * 2

    def test_accepts_dunder_conventions(self):
        src = "__all__ = ['ParallelJob', 'Transport']\n"
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) == []

    def test_accepts_function_local_state(self):
        src = ("def pump():\n"
               "    backlog = []\n"
               "    return backlog\n")
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) == []

    def test_flags_bare_fork(self):
        src = ("import os\n"
               "def split():\n"
               "    pid = os.fork()\n")
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) \
            == ["process-unsafe-state"]

    def test_flags_fork_start_method(self):
        src = ("import multiprocessing as mp\n"
               "def start():\n"
               "    ctx = mp.get_context('fork')\n")
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) \
            == ["process-unsafe-state"]

    def test_accepts_spawn_start_method(self):
        src = ("import multiprocessing as mp\n"
               "def start():\n"
               "    ctx = mp.get_context('spawn')\n")
        assert rules_of(src, path=self.RT,
                        enable=["process-unsafe-state"]) == []

    def test_non_runtime_paths_are_exempt(self):
        src = "_PENDING = []\n"
        assert rules_of(src, path="src/repro/apps/lbmhd/serial.py",
                        enable=["process-unsafe-state"]) == []
