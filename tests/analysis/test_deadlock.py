"""Wait-for-graph deadlock detector: trace replay + static rule."""

import numpy as np
import pytest

from repro.analysis.deadlock import DEADLOCK_RULES, check_trace_deadlocks
from repro.analysis.engine import lint_source, run_lint
from repro.obs.events import CAT_COMM, SPAN, TraceEvent
from repro.obs.tracer import Tracer
from repro.runtime.comm import ParallelJob


def _ev(rank, seq, name, cat=CAT_COMM, **args):
    return TraceEvent(name, cat, SPAN, rank, seq, float(seq), 0.0, None,
                      args)


class TestTraceDeadlocks:
    def test_seeded_crossed_recv_cycle(self):
        def crossed(comm):
            peer = comm.rank ^ 1
            got = comm.recv(peer, tag=9)
            comm.send(comm.rank, peer, tag=9)
            return got

        tracer = Tracer(2)
        with pytest.raises(RuntimeError):
            ParallelJob(2, tracer=tracer, timeout=0.5).run(crossed)
        findings = check_trace_deadlocks(tracer)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "trace-deadlock-cycle" and f.severity == "error"
        assert "rank 0" in f.message and "rank 1" in f.message
        assert "tag 9" in f.message
        assert "test_deadlock.py" in f.message     # source sites named

    def test_hand_built_three_rank_cycle(self):
        events = [
            _ev(0, 0, "recv", src=2, tag=1, site="a.py:1 in f"),
            _ev(0, 1, "send", dst=1, tag=1, site="a.py:2 in f"),
            _ev(1, 0, "recv", src=0, tag=1, site="a.py:1 in f"),
            _ev(1, 1, "send", dst=2, tag=1, site="a.py:2 in f"),
            _ev(2, 0, "recv", src=1, tag=1, site="a.py:1 in f"),
            _ev(2, 1, "send", dst=0, tag=1, site="a.py:2 in f"),
        ]
        findings = check_trace_deadlocks(events)
        assert len(findings) == 1
        assert "rank(s) 0, 1, 2" in findings[0].message

    def test_blocked_without_cycle_is_reported_separately(self):
        # Rank 0 waits on a send rank 1 never posted (peer exited).
        events = [
            _ev(0, 0, "recv", src=1, tag=3, site="a.py:1 in f"),
            _ev(1, 0, "send", dst=0, tag=4, site="a.py:9 in g"),
        ]
        findings = check_trace_deadlocks(events)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "trace-blocked-rank" and f.severity == "warning"
        assert "rank 0" in f.message and "tag 3" in f.message

    def test_mixed_collective_p2p_cycle(self):
        # Ranks 0/1 park at the barrier; rank 2 cannot reach it because
        # it waits on a send rank 0 will only post after the barrier.
        # That is a genuine cycle (0 -> 2 -> 0), not a mere straggler.
        events = [
            _ev(0, 0, "barrier", cat="sync"),
            _ev(1, 0, "barrier", cat="sync"),
            _ev(2, 0, "recv", src=0, tag=7, site="a.py:3 in f"),
            _ev(2, 1, "barrier", cat="sync"),
        ]
        findings = check_trace_deadlocks(events)
        assert "trace-deadlock-cycle" in {f.rule for f in findings}
        joined = " ".join(f.message for f in findings)
        assert "barrier" in joined and "tag 7" in joined

    def test_complete_trace_reports_nothing(self):
        events = [
            _ev(0, 0, "send", dst=1, tag=2, site="a.py:1 in f"),
            _ev(0, 1, "recv", src=1, tag=2, site="a.py:2 in f"),
            _ev(1, 0, "send", dst=0, tag=2, site="a.py:1 in f"),
            _ev(1, 1, "recv", src=0, tag=2, site="a.py:2 in f"),
        ]
        assert check_trace_deadlocks(events) == []


class TestBlockingRecvCycleRule:
    def test_rule_names_exported(self):
        assert DEADLOCK_RULES == ("blocking-recv-cycle",)

    def test_flags_symmetric_recv_before_send(self):
        src = ("def step(comm, buf):\n"
               "    peer = comm.rank ^ 1\n"
               "    got = comm.recv(peer, tag=7)\n"
               "    comm.send(buf, peer, tag=7)\n"
               "    return got\n")
        findings = lint_source(src, "x.py",
                               enable=["blocking-recv-cycle"])
        assert len(findings) == 1
        assert "recv" in findings[0].message
        assert findings[0].severity == "error"

    def test_send_first_is_clean(self):
        src = ("def step(comm, buf):\n"
               "    peer = comm.rank ^ 1\n"
               "    comm.send(buf, peer, tag=7)\n"
               "    return comm.recv(peer, tag=7)\n")
        assert lint_source(src, "x.py",
                           enable=["blocking-recv-cycle"]) == []

    def test_rank_guarded_recv_is_clean(self):
        src = ("def step(comm, buf):\n"
               "    peer = comm.rank ^ 1\n"
               "    if comm.rank == 0:\n"
               "        got = comm.recv(peer, tag=7)\n"
               "    else:\n"
               "        comm.send(buf, peer, tag=7)\n")
        assert lint_source(src, "x.py",
                           enable=["blocking-recv-cycle"]) == []

    def test_constant_peer_is_out_of_scope(self):
        # A server fed by clients elsewhere: recv-then-send on a
        # constant peer is a protocol, not an SPMD crossed recv.
        src = ("def serve(comm):\n"
               "    req = comm.recv(0, tag=7)\n"
               "    comm.send(req, 0, tag=7)\n")
        assert lint_source(src, "x.py",
                           enable=["blocking-recv-cycle"]) == []

    def test_repo_tree_is_clean(self):
        findings, _ = run_lint(["src/repro"],
                               enable=list(DEADLOCK_RULES))
        assert findings == []


class TestRacyDeadlockInteraction:
    def test_race_check_skips_unexecuted_epochs(self):
        def crossed(comm):
            peer = comm.rank ^ 1
            buf = np.arange(2048, dtype=np.float64)
            got = comm.recv(peer, tag=9)       # deadlocks here
            comm.send(buf, peer, tag=9)
            return got

        tracer = Tracer(2)
        with pytest.raises(RuntimeError):
            ParallelJob(2, tracer=tracer, timeout=0.5).run(crossed)
        # The sends (and their publish epochs) never executed; the race
        # checker must not crash or invent findings from them.
        from repro.analysis.racecheck import check_trace_races

        assert check_trace_races(tracer) == []
        assert check_trace_deadlocks(tracer)
