"""Trace-replay checker on synthetic and real Chrome traces."""

import json

from repro.analysis import check_trace


def span(name, tid, args=None, ts=0):
    e = {"ph": "X", "name": name, "cat": "comm", "pid": 1, "tid": tid,
         "ts": ts, "dur": 1}
    if args:
        e["args"] = args
    return e


def meta(tid):
    return {"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": f"rank {tid}"}}


def trace(events):
    return {"traceEvents": events}


class TestSendRecvMatching:
    def test_clean_pairing_passes(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 7, "nbytes": 64}),
            span("recv", 1, {"src": 0, "tag": 7}),
        ])
        assert check_trace(doc) == []

    def test_unconsumed_send_flagged(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 7, "nbytes": 64}),
        ])
        (f,) = check_trace(doc, label="t.json")
        assert f.rule == "trace-unconsumed-send"
        assert f.path == "t.json"
        assert "0->1" in f.message and "tag 7" in f.message

    def test_phantom_recv_flagged(self):
        doc = trace([
            meta(0), meta(1),
            span("recv", 1, {"src": 0, "tag": 3}),
        ])
        (f,) = check_trace(doc)
        assert f.rule == "trace-unmatched-recv"

    def test_tag_mismatch_is_two_findings(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 1, "nbytes": 8}),
            span("recv", 1, {"src": 0, "tag": 2}),
        ])
        assert sorted(f.rule for f in check_trace(doc)) \
            == ["trace-unconsumed-send", "trace-unmatched-recv"]


class TestCollectiveParticipation:
    def test_equal_counts_pass(self):
        doc = trace([meta(0), meta(1),
                     span("barrier", 0), span("barrier", 1),
                     span("allreduce", 0), span("allreduce", 1)])
        assert check_trace(doc) == []

    def test_missing_rank_flagged(self):
        doc = trace([meta(0), meta(1), meta(2),
                     span("barrier", 0), span("barrier", 1)])
        (f,) = check_trace(doc)
        assert f.rule == "trace-collective-ranks"
        assert "barrier" in f.message

    def test_ranks_fall_back_to_span_tids(self):
        # No thread_name metadata: ranks inferred from spans.
        doc = trace([span("barrier", 0), span("barrier", 1),
                     span("allreduce", 0)])
        (f,) = check_trace(doc)
        assert f.rule == "trace-collective-ranks"


class TestRealTrace:
    def test_recorded_lbmhd_trace_is_clean(self, tmp_path):
        from repro.obs.runner import trace_app

        run = trace_app("lbmhd", steps=2, nprocs=4, outdir=tmp_path)
        findings = check_trace(run.trace_path)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_loads_from_file_path(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(trace([
            meta(0), span("send", 0, {"dst": 0, "tag": 1, "nbytes": 8}),
        ])))
        (f,) = check_trace(path)
        assert f.rule == "trace-unconsumed-send"
        assert f.path == str(path)
