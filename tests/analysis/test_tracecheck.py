"""Trace-replay checker on synthetic and real Chrome traces."""

import gzip
import json

import pytest

from repro.analysis import TraceError, check_trace, load_trace


def span(name, tid, args=None, ts=0):
    e = {"ph": "X", "name": name, "cat": "comm", "pid": 1, "tid": tid,
         "ts": ts, "dur": 1}
    if args:
        e["args"] = args
    return e


def meta(tid):
    return {"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": f"rank {tid}"}}


def trace(events):
    return {"traceEvents": events}


class TestSendRecvMatching:
    def test_clean_pairing_passes(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 7, "nbytes": 64}),
            span("recv", 1, {"src": 0, "tag": 7}),
        ])
        assert check_trace(doc) == []

    def test_unconsumed_send_flagged(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 7, "nbytes": 64}),
        ])
        (f,) = check_trace(doc, label="t.json")
        assert f.rule == "trace-unconsumed-send"
        assert f.path == "t.json"
        assert "0->1" in f.message and "tag 7" in f.message

    def test_phantom_recv_flagged(self):
        doc = trace([
            meta(0), meta(1),
            span("recv", 1, {"src": 0, "tag": 3}),
        ])
        (f,) = check_trace(doc)
        assert f.rule == "trace-unmatched-recv"

    def test_tag_mismatch_is_two_findings(self):
        doc = trace([
            meta(0), meta(1),
            span("send", 0, {"dst": 1, "tag": 1, "nbytes": 8}),
            span("recv", 1, {"src": 0, "tag": 2}),
        ])
        assert sorted(f.rule for f in check_trace(doc)) \
            == ["trace-unconsumed-send", "trace-unmatched-recv"]


class TestCollectiveParticipation:
    def test_equal_counts_pass(self):
        doc = trace([meta(0), meta(1),
                     span("barrier", 0), span("barrier", 1),
                     span("allreduce", 0), span("allreduce", 1)])
        assert check_trace(doc) == []

    def test_missing_rank_flagged(self):
        doc = trace([meta(0), meta(1), meta(2),
                     span("barrier", 0), span("barrier", 1)])
        (f,) = check_trace(doc)
        assert f.rule == "trace-collective-ranks"
        assert "barrier" in f.message

    def test_ranks_fall_back_to_span_tids(self):
        # No thread_name metadata: ranks inferred from spans.
        doc = trace([span("barrier", 0), span("barrier", 1),
                     span("allreduce", 0)])
        (f,) = check_trace(doc)
        assert f.rule == "trace-collective-ranks"


class TestLoadTrace:
    JSONL = ('{"rank": 0, "seq": 0, "name": "send", "cat": "comm",'
             ' "ph": "X", "t_wall": 0.0, "dur_wall": 0.1,'
             ' "args": {"dst": 1, "tag": 7, "nbytes": 8}}\n'
             '{"rank": 1, "seq": 0, "name": "recv", "cat": "comm",'
             ' "ph": "X", "t_wall": 0.2, "dur_wall": 0.1,'
             ' "args": {"src": 0, "tag": 7}}\n')

    def test_gzipped_chrome_trace_loads(self, tmp_path):
        doc = trace([meta(0), meta(1),
                     span("send", 0, {"dst": 1, "tag": 7, "nbytes": 8}),
                     span("recv", 1, {"src": 0, "tag": 7})])
        path = tmp_path / "trace.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            json.dump(doc, fh)
        assert check_trace(path) == []

    def test_events_jsonl_loads_plain_and_gzipped(self, tmp_path):
        plain = tmp_path / "events.jsonl"
        plain.write_text(self.JSONL)
        assert check_trace(plain) == []
        packed = tmp_path / "events.jsonl.gz"
        with gzip.open(packed, "wt", encoding="utf-8") as fh:
            fh.write(self.JSONL)
        assert check_trace(packed) == []

    def test_torn_jsonl_line_is_typed_error(self, tmp_path):
        # A killed process rank tears its spool mid-record.
        path = tmp_path / "events.jsonl"
        path.write_text(self.JSONL + '{"rank": 1, "seq": 1, "na')
        with pytest.raises(TraceError) as exc:
            load_trace(path)
        assert "events.jsonl" in str(exc.value)
        assert "line 3" in str(exc.value)

    def test_truncated_gzip_is_typed_error(self, tmp_path):
        path = tmp_path / "trace.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(self.JSONL)
        path.write_bytes(path.read_bytes()[:-7])    # chop the stream
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_chrome_json_is_typed_error(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"traceEvents": [{"ph": "X", "na')
        with pytest.raises(TraceError, match="truncated or corrupt"):
            load_trace(path)

    def test_empty_file_is_typed_error(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            load_trace(tmp_path / "absent.json")

    def test_renamed_jsonl_spool_still_loads(self, tmp_path):
        # A spool copied to a .json name: sniffed as JSONL on fallback.
        path = tmp_path / "trace.json"
        path.write_text(self.JSONL)
        assert check_trace(path) == []


class TestRealTrace:
    def test_recorded_lbmhd_trace_is_clean(self, tmp_path):
        from repro.obs.runner import trace_app

        run = trace_app("lbmhd", steps=2, nprocs=4, outdir=tmp_path)
        findings = check_trace(run.trace_path)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_loads_from_file_path(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(trace([
            meta(0), span("send", 0, {"dst": 0, "tag": 1, "nbytes": 8}),
        ])))
        (f,) = check_trace(path)
        assert f.rule == "trace-unconsumed-send"
        assert f.path == str(path)
