"""Processor model: Hockney vector law, multistreaming, Amdahl penalties."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    ALTIX,
    ES,
    POWER3,
    X1,
    ProcessorModel,
    strip_mined_avl,
)
from repro.work import WorkPhase

GF = 1e9


def phase(flops=1e9, **kw):
    kw.setdefault("name", "p")
    kw.setdefault("words", 0.0)
    return WorkPhase(flops=flops, **kw)


class TestStripMining:
    def test_exact_multiples(self):
        assert strip_mined_avl(256, 256) == 256.0
        assert strip_mined_avl(512, 256) == 256.0
        assert strip_mined_avl(64, 64) == 64.0

    def test_remainders(self):
        assert strip_mined_avl(300, 256) == pytest.approx(150.0)
        assert strip_mined_avl(65, 64) == pytest.approx(32.5)

    def test_short_loops(self):
        assert strip_mined_avl(92, 256) == pytest.approx(92.0)
        assert strip_mined_avl(1, 256) == 1.0

    def test_degenerate(self):
        assert strip_mined_avl(0, 256) == 0.0
        assert strip_mined_avl(100, 1) == 1.0

    @given(trip=st.integers(1, 100000), vl=st.sampled_from([64, 256]))
    def test_bounds(self, trip, vl):
        avl = strip_mined_avl(trip, vl)
        assert 0 < avl <= vl
        assert avl <= trip


class TestVectorExecution:
    def test_long_vectors_near_peak(self):
        ct = ProcessorModel(ES).time(phase(trip=4096))
        assert ct.mode == "vector"
        assert ct.effective_gflops > 0.9 * ES.peak_gflops

    def test_short_vectors_lose_efficiency(self):
        long = ProcessorModel(ES).time(phase(trip=4096))
        short = ProcessorModel(ES).time(phase(trip=8))
        assert short.seconds > 2 * long.seconds

    def test_cactus_avl_dependence(self):
        """§5.2: AVL 248 domain far more efficient than AVL 92."""
        big = ProcessorModel(ES).time(phase(trip=248))
        small = ProcessorModel(ES).time(phase(trip=92))
        assert big.avl == pytest.approx(248.0)
        assert small.avl == pytest.approx(92.0)
        assert small.seconds > big.seconds

    def test_single_precision_speedup_on_x1(self):
        dp = ProcessorModel(X1).time(phase(trip=4096, word_bytes=8))
        sp = ProcessorModel(X1).time(phase(trip=4096, word_bytes=4))
        assert dp.seconds == pytest.approx(2 * sp.seconds)

    def test_zero_flops_free(self):
        assert ProcessorModel(ES).time(phase(flops=0)).seconds == 0.0


class TestAmdahlPenalties:
    def test_unvectorized_es_runs_at_scalar_unit(self):
        ct = ProcessorModel(ES).time(phase(trip=4096), vectorized=False)
        assert ct.mode == "scalar"
        assert ct.effective_gflops == pytest.approx(1.0)  # 1/8 of 8

    def test_unvectorized_x1_pays_32x(self):
        """§6.1: serialized code uses one SSP scalar core: 1/32 of MSP."""
        ct = ProcessorModel(X1).time(phase(trip=4096), vectorized=False)
        assert ct.mode == "serialized-scalar"
        assert ct.effective_gflops == pytest.approx(X1.peak_gflops / 32)

    def test_x1_penalty_worse_than_es(self):
        es = ProcessorModel(ES).time(phase(trip=4096), vectorized=False)
        x1 = ProcessorModel(X1).time(phase(trip=4096), vectorized=False)
        rel_es = es.seconds / ProcessorModel(ES).time(phase(trip=4096)).seconds
        rel_x1 = x1.seconds / ProcessorModel(X1).time(phase(trip=4096)).seconds
        assert rel_x1 > rel_es

    def test_vectorized_but_unstreamed_uses_one_ssp(self):
        full = ProcessorModel(X1).time(phase(trip=4096))
        nostream = ProcessorModel(X1).time(phase(trip=4096),
                                           multistreamed=False)
        assert nostream.mode == "vector-unstreamed"
        assert nostream.seconds == pytest.approx(4 * full.seconds, rel=0.2)

    def test_streaming_flag_irrelevant_on_es(self):
        a = ProcessorModel(ES).time(phase(trip=4096))
        b = ProcessorModel(ES).time(phase(trip=4096), multistreamed=False)
        assert a.seconds == b.seconds


class TestSuperscalar:
    def test_ilp_efficiency_sets_rate(self):
        ct = ProcessorModel(POWER3).time(phase())
        assert ct.mode == "superscalar"
        assert ct.effective_gflops == pytest.approx(
            POWER3.peak_gflops * POWER3.ilp_efficiency)

    def test_vector_flags_ignored(self):
        a = ProcessorModel(ALTIX).time(phase(), vectorized=True)
        b = ProcessorModel(ALTIX).time(phase(), vectorized=False)
        assert a.seconds == b.seconds

    @given(flops=st.floats(1.0, 1e15))
    def test_time_linear_in_flops(self, flops):
        pm = ProcessorModel(POWER3)
        t1 = pm.time(phase(flops=flops)).seconds
        t2 = pm.time(phase(flops=2 * flops)).seconds
        assert t2 == pytest.approx(2 * t1, rel=1e-9)
