"""Specs and platform instances: Table 1 fidelity and validation."""

import dataclasses

import pytest

from repro.machine import (
    ALTIX,
    ES,
    PLATFORMS,
    POWER3,
    POWER4,
    X1,
    MachineSpec,
    ScalarUnit,
    Topology,
    VectorUnit,
    get_machine,
)


class TestTable1Fidelity:
    """The spec constants must match Table 1 of the paper."""

    @pytest.mark.parametrize(
        "machine, cpus, clock, peak, membw, lat, netbw, bisect",
        [
            (POWER3, 16, 375, 1.5, 0.7, 16.3, 0.13, 0.087),
            (POWER4, 32, 1300, 5.2, 2.3, 7.0, 0.25, 0.025),
            (ALTIX, 2, 1500, 6.0, 6.4, 2.8, 0.40, 0.067),
            (ES, 8, 500, 8.0, 32.0, 5.6, 1.5, 0.19),
            (X1, 4, 800, 12.8, 34.1, 7.3, 6.3, 0.088),
        ],
    )
    def test_row(self, machine, cpus, clock, peak, membw, lat, netbw,
                 bisect):
        assert machine.cpus_per_node == cpus
        assert machine.clock_mhz == clock
        assert machine.peak_gflops == peak
        assert machine.mem_bw_gbs == membw
        assert machine.mpi_latency_us == lat
        assert machine.net_bw_gbs_per_cpu == netbw
        assert machine.bisection_bytes_per_flop == bisect

    @pytest.mark.parametrize(
        "machine, ratio",
        [(POWER3, 0.47), (POWER4, 0.44), (ALTIX, 1.1), (ES, 4.0),
         (X1, 2.7)],
    )
    def test_bytes_per_flop_column(self, machine, ratio):
        # Table 1 rounds to two figures (e.g. Altix 6.4/6.0 -> "1.1").
        assert machine.bytes_per_flop == pytest.approx(ratio, rel=0.05)

    def test_topologies(self):
        assert POWER3.topology is Topology.OMEGA
        assert POWER4.topology is Topology.FAT_TREE
        assert ALTIX.topology is Topology.FAT_TREE
        assert ES.topology is Topology.CROSSBAR
        assert X1.topology is Topology.TORUS_2D

    def test_vector_scalar_split(self):
        assert ES.is_vector and X1.is_vector
        assert not POWER3.is_vector and not POWER4.is_vector
        assert not ALTIX.is_vector
        # ES scalar unit is 1/8 of vector peak (§2.4).
        assert ES.scalar.peak_gflops == pytest.approx(ES.peak_gflops / 8)
        # X1 serialized scalar is 1/32 of MSP peak (§2.5).
        eff = X1.scalar.peak_gflops / X1.scalar.multistream_serialization
        assert eff == pytest.approx(X1.peak_gflops / 32)

    def test_vector_lengths(self):
        assert ES.vector.vector_length == 256
        assert X1.vector.vector_length == 64

    def test_es_is_most_balanced(self):
        """§2: 'Overall the ES appears the most balanced system'."""
        assert ES.bytes_per_flop == max(m.bytes_per_flop for m in PLATFORMS)
        assert ES.bisection_bytes_per_flop == max(
            m.bisection_bytes_per_flop for m in PLATFORMS)

    def test_altix_best_superscalar_balance(self):
        scalars = [m for m in PLATFORMS if not m.is_vector]
        assert max(scalars, key=lambda m: m.bytes_per_flop) is ALTIX


class TestLookupAndValidation:
    def test_get_machine_case_insensitive(self):
        assert get_machine("es") is ES
        assert get_machine("X1") is X1
        assert get_machine("power3") is POWER3

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("sx6")

    def test_all_platforms_validate(self):
        for m in PLATFORMS:
            m.validate()

    def _base(self, **over):
        kw = dict(
            name="t", cpus_per_node=1, clock_mhz=1.0, peak_gflops=1.0,
            mem_bw_gbs=1.0, mpi_latency_us=1.0, net_bw_gbs_per_cpu=1.0,
            bisection_bytes_per_flop=0.1, topology=Topology.FAT_TREE,
            is_vector=False, scalar=ScalarUnit(1.0),
        )
        kw.update(over)
        return MachineSpec(**kw)

    def test_vector_flag_requires_unit(self):
        with pytest.raises(ValueError, match="without VectorUnit"):
            self._base(is_vector=True).validate()

    def test_scalar_machine_with_vector_unit_rejected(self):
        with pytest.raises(ValueError, match="scalar machine"):
            self._base(vector=VectorUnit(64, 2)).validate()

    def test_negative_peak_rejected(self):
        with pytest.raises(ValueError):
            self._base(peak_gflops=-1.0).validate()

    def test_scalar_faster_than_peak_rejected(self):
        with pytest.raises(ValueError, match="faster than total peak"):
            self._base(scalar=ScalarUnit(2.0)).validate()

    def test_sustained_fraction_bounds(self):
        with pytest.raises(ValueError, match="sustained_mem_fraction"):
            self._base(sustained_mem_fraction=1.5).validate()

    def test_specs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ES.peak_gflops = 1.0
