"""Network model: topology structure (verified on graphs) and cost laws."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    ALTIX,
    ES,
    POWER3,
    X1,
    Crossbar,
    FatTree,
    NetworkModel,
    Torus2D,
    topology_model,
)

US = 1e-6
GB = 1e9


class TestTopologyStructure:
    def test_crossbar_single_hop(self):
        cb = Crossbar("es")
        assert cb.avg_hops(64) == 1.0
        g = cb.build_graph(16)
        cpus = [n for n in g.nodes if n[0] == "cpu"]
        assert len(cpus) == 16
        # All CPU pairs two edges apart through the hub: diameter 2.
        assert nx.diameter(g) == 2

    def test_fat_tree_graph_connects_everything(self):
        ft = FatTree("altix", radix=4)
        g = ft.build_graph(64)
        assert nx.is_connected(g)
        cpus = [n for n in g.nodes if n[0] == "cpu"]
        assert len(cpus) == 64

    def test_fat_tree_capacity_doubles_upward(self):
        ft = FatTree("altix", radix=2)
        g = ft.build_graph(8)
        caps = {}
        for u, v, data in g.edges(data=True):
            sw = u if u[0] == "sw" else v
            if sw[0] == "sw":
                caps.setdefault(sw[1], set()).add(data["capacity"])
        # Edges into level-0 switches carry 1.0; deeper levels carry more.
        assert min(min(v) for v in caps.values()) == 1.0
        assert max(max(v) for v in caps.values()) > 1.0

    def test_torus_dims_near_square(self):
        assert Torus2D.dims(64) == (8, 8)
        assert Torus2D.dims(32) == (4, 8)
        assert Torus2D.dims(7) == (1, 7)

    def test_torus_graph_degree(self):
        t = Torus2D("x1")
        g = t.build_graph(16)  # 4x4 torus
        assert all(d == 4 for _, d in g.degree())
        assert nx.is_connected(g)

    def test_torus_bisection_grows_sqrt(self):
        """The 2D torus bisection (graph cut) grows ~sqrt(P)."""
        t = Torus2D("x1")

        def bisection_edges(p):
            a, b = Torus2D.dims(p)
            g = t.build_graph(p)
            left = {("cpu", i * b + j) for i in range(a) for j in range(b // 2)}
            return sum(1 for u, v in g.edges
                       if (u in left) != (v in left))

        # 4x4 -> cut 8; 8x8 -> cut 16: doubles when P quadruples.
        assert bisection_edges(64) == 2 * bisection_edges(16)

    def test_bisection_scaling_exponents(self):
        assert Crossbar("es").bisection_scale(512, 2048) == pytest.approx(
            0.25)
        assert Torus2D("x1").bisection_scale(512, 2048) == pytest.approx(0.5)

    def test_topology_model_dispatch(self):
        assert isinstance(topology_model(ES), Crossbar)
        assert isinstance(topology_model(X1), Torus2D)
        assert isinstance(topology_model(ALTIX), FatTree)


class TestPointToPoint:
    def test_latency_dominates_small_messages(self):
        nm = NetworkModel(POWER3)
        ct = nm.ptp_time(8)
        assert ct.seconds == pytest.approx(16.3 * US, rel=0.01)

    def test_bandwidth_dominates_large_messages(self):
        nm = NetworkModel(ES)
        ct = nm.ptp_time(1.5 * GB)
        assert ct.bandwidth_seconds == pytest.approx(1.0, rel=0.01)

    def test_onesided_latency_lower_on_x1(self):
        """§3.1: 7.3 us MPI vs 3.9 us CAF on the X1."""
        nm = NetworkModel(X1)
        mpi = nm.ptp_time(8, onesided=False, nprocs=4)
        caf = nm.ptp_time(8, onesided=True, nprocs=4)
        assert caf.seconds < mpi.seconds
        assert nm.latency(onesided=True, nprocs=4) < 4.5 * US

    def test_onesided_falls_back_without_support(self):
        nm = NetworkModel(POWER3)
        assert nm.latency(onesided=True) == nm.latency(onesided=False)

    def test_torus_hop_latency_grows_with_p(self):
        nm = NetworkModel(X1)
        assert nm.latency(nprocs=1024) > nm.latency(nprocs=16)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(ES).ptp_time(-1)


class TestCollectives:
    def test_alltoall_bisection_limited_at_scale_on_x1(self):
        """PARATEC's story: X1 transposes collapse at high P (§4.2)."""
        nm_x1, nm_es = NetworkModel(X1), NetworkModel(ES)
        nbytes = 8e6
        # Same per-rank volume: at 512 procs the X1 should be much further
        # from its injection bound than the ES, relative to P=32.
        def slowdown(nm):
            return (nm.alltoall_time(512, nbytes).seconds
                    / nm.alltoall_time(32, nbytes).seconds)
        # The ES stays injection-bound (no slowdown from scaling up); the
        # X1 crosses into the bisection-bound regime.
        assert slowdown(nm_es) < 1.1
        assert slowdown(nm_x1) > 1.3 * slowdown(nm_es)

    def test_alltoall_single_rank_free(self):
        assert NetworkModel(ES).alltoall_time(1, 1e6).seconds == 0.0

    def test_allreduce_log_scaling(self):
        nm = NetworkModel(ES)
        t64 = nm.allreduce_time(64, 8).seconds
        t1024 = nm.allreduce_time(1024, 8).seconds
        assert t1024 == pytest.approx(t64 * 10 / 6, rel=0.01)

    def test_bcast_cheaper_than_allreduce(self):
        nm = NetworkModel(ALTIX)
        assert (nm.bcast_time(64, 1e3).seconds
                < nm.allreduce_time(64, 1e3).seconds)

    @given(p=st.sampled_from([2, 4, 16, 64, 256]),
           nbytes=st.floats(8, 1e8))
    @settings(max_examples=30)
    def test_costs_positive_and_monotone_in_size(self, p, nbytes):
        nm = NetworkModel(ES)
        for fn in (nm.alltoall_time, nm.allreduce_time, nm.bcast_time):
            t1 = fn(p, nbytes).seconds
            t2 = fn(p, 2 * nbytes).seconds
            assert 0 < t1 <= t2

    def test_exchange_accounts_messages_and_volume(self):
        nm = NetworkModel(POWER3)
        ct = nm.exchange_time(4, 4e6)
        assert ct.latency_seconds == pytest.approx(4 * 16.3 * US)
        assert ct.bandwidth_seconds == pytest.approx(4e6 / (0.13 * GB))
