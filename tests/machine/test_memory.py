"""Memory model: pattern derates, cache filtering, bank conflicts."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import ALTIX, ES, POWER3, POWER4, X1, MemoryModel
from repro.work import AccessPattern, WorkPhase

GB = 1.0e9


def phase(words=1e8, **kw):
    kw.setdefault("name", "p")
    kw.setdefault("flops", 1.0)
    return WorkPhase(words=words, **kw)


class TestBandwidths:
    def test_streaming_time_matches_sustained_bandwidth(self):
        mm = MemoryModel(ES)
        mt = mm.time(phase(words=1e9))
        expected = 8e9 / (ES.mem_bw_gbs * ES.sustained_mem_fraction * GB)
        assert mt.seconds == pytest.approx(expected)
        assert mt.served_by == "memory"

    def test_zero_traffic_is_free(self):
        mt = MemoryModel(ES).time(phase(words=0))
        assert mt.seconds == 0.0

    def test_vector_beats_scalar_on_streams(self):
        """LBMHD's core claim: bytes/flop balance decides streaming codes."""
        p = phase(words=1e9)
        t_es = MemoryModel(ES).time(p).seconds
        t_p3 = MemoryModel(POWER3).time(p).seconds
        assert t_p3 / t_es > 30  # 32 GB/s vs 0.7 GB/s, similar sustained

    def test_word_bytes_scales_traffic(self):
        p8 = phase(words=1e8, word_bytes=8)
        p4 = phase(words=1e8, word_bytes=4)
        mm = MemoryModel(X1)
        assert mm.time(p8).seconds == pytest.approx(
            2 * mm.time(p4).seconds)


class TestAccessPatterns:
    def test_gather_slower_than_unit(self):
        for m in (ES, X1, POWER3, ALTIX):
            mm = MemoryModel(m)
            t_unit = mm.time(phase(access=AccessPattern.UNIT)).seconds
            t_gather = mm.time(phase(access=AccessPattern.GATHER)).seconds
            assert t_gather > t_unit

    def test_ghosted_hurts_prefetch_reliant_machines(self):
        """§5.2: ghost-zone skips disengage prefetch on Power3 and stall
        the in-order Itanium2; Power4 (dual streams + L3) and the vector
        machines ride across them (Table 5's 250x64x64 column)."""
        penalty = {}
        for m in (POWER3, POWER4, ALTIX, ES, X1):
            mm = MemoryModel(m)
            penalty[m.name] = (
                mm.time(phase(access=AccessPattern.GHOSTED)).seconds
                / mm.time(phase(access=AccessPattern.UNIT)).seconds)
        assert penalty["Power3"] > 1.5
        assert penalty["Altix"] > 1.5
        assert penalty["Power4"] < 1.15
        assert penalty["ES"] < 1.15
        assert penalty["X1"] < 1.15

    def test_strided_cheap_on_vector_expensive_on_cache(self):
        p = phase(access=AccessPattern.STRIDED)
        u = phase(access=AccessPattern.UNIT)
        es_ratio = (MemoryModel(ES).time(p).seconds
                    / MemoryModel(ES).time(u).seconds)
        p3_ratio = (MemoryModel(POWER3).time(p).seconds
                    / MemoryModel(POWER3).time(u).seconds)
        assert es_ratio < 1.3
        assert p3_ratio > 1.8


class TestCacheFiltering:
    def test_cache_resident_blas3_fast_on_power(self):
        """PARATEC's BLAS3: high reuse in cache -> near-peak everywhere."""
        mm = MemoryModel(POWER3)
        hot = phase(words=1e8, temporal_reuse=0.95,
                    working_set_bytes=2 * 1024 * 1024)
        cold = phase(words=1e8)
        assert mm.time(hot).seconds < 0.25 * mm.time(cold).seconds
        assert mm.time(hot).served_by == "L2"

    def test_working_set_too_big_falls_to_memory(self):
        mm = MemoryModel(POWER3)
        big = phase(words=1e8, temporal_reuse=0.95,
                    working_set_bytes=64 * 1024 * 1024)
        assert mm.time(big).served_by == "memory"

    def test_es_has_no_cache_to_filter(self):
        mm = MemoryModel(ES)
        hot = phase(words=1e8, temporal_reuse=0.95,
                    working_set_bytes=1024)
        assert mm.time(hot).served_by == "memory"

    def test_x1_ecache_filters(self):
        mm = MemoryModel(X1)
        hot = phase(words=1e8, temporal_reuse=0.9,
                    working_set_bytes=256 * 1024)
        assert mm.time(hot).served_by == "Ecache"
        assert mm.time(hot).seconds < mm.time(phase(words=1e8)).seconds

    def test_shared_cache_capacity_split(self):
        mm = MemoryModel(X1)  # 2MB Ecache shared by 4 SSPs -> 512KB share
        assert mm.fitting_cache(300 * 1024) is not None
        assert mm.fitting_cache(600 * 1024) is None


class TestBankConflicts:
    def test_bank_conflict_slows_vector_machines(self):
        mm = MemoryModel(ES)
        clean = phase(words=1e8)
        conflicted = phase(words=1e8, bank_conflict=0.27)
        ratio = mm.time(conflicted).seconds / mm.time(clean).seconds
        # §6.1: duplicate pragma sped charge deposition up 37%.
        assert ratio == pytest.approx(1.37, rel=0.02)

    def test_bank_conflict_ignored_without_banks(self):
        mm = MemoryModel(POWER3)
        clean = phase(words=1e8)
        conflicted = phase(words=1e8, bank_conflict=0.27)
        assert mm.time(conflicted).seconds == mm.time(clean).seconds


class TestProperties:
    @given(words=st.floats(1e3, 1e12),
           reuse=st.floats(0.0, 1.0),
           ws=st.floats(0.0, 1e9))
    def test_time_positive_and_monotone_in_traffic(self, words, reuse, ws):
        mm = MemoryModel(POWER4)
        p1 = phase(words=words, temporal_reuse=reuse, working_set_bytes=ws)
        p2 = phase(words=2 * words, temporal_reuse=reuse,
                   working_set_bytes=ws)
        t1, t2 = mm.time(p1).seconds, mm.time(p2).seconds
        assert t1 > 0
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    @given(reuse=st.floats(0.0, 1.0))
    def test_more_reuse_never_slower(self, reuse):
        mm = MemoryModel(ALTIX)
        base = phase(words=1e8, temporal_reuse=0.0,
                     working_set_bytes=1024 * 1024)
        hot = phase(words=1e8, temporal_reuse=reuse,
                    working_set_bytes=1024 * 1024)
        assert mm.time(hot).seconds <= mm.time(base).seconds * (1 + 1e-12)
