"""HardwareCounters: AVL/VOR arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import HardwareCounters


class TestBasics:
    def test_empty_counters(self):
        c = HardwareCounters(vector_length=256)
        assert c.avl == 0.0
        assert c.vor == 0.0
        assert c.flops == 0.0

    def test_full_length_loop(self):
        c = HardwareCounters(vector_length=256)
        c.record_loop(trip=256, ops_per_iter=2.0)
        assert c.avl == 256.0
        assert c.vor == 1.0
        assert c.flops == 512.0

    def test_short_loop_reduces_avl(self):
        c = HardwareCounters(vector_length=256)
        c.record_loop(trip=92, ops_per_iter=1.0)
        assert c.avl == pytest.approx(92.0)

    def test_strip_mining_remainder(self):
        # 300 iterations on VL=256: chunks of 256 and 44 -> AVL 150.
        c = HardwareCounters(vector_length=256)
        c.record_loop(trip=300, ops_per_iter=1.0)
        assert c.avl == pytest.approx(150.0)

    def test_scalar_loop_lowers_vor(self):
        c = HardwareCounters(vector_length=256)
        c.record_loop(trip=256, ops_per_iter=1.0)
        c.record_loop(trip=256, ops_per_iter=1.0, vectorized=False)
        assert c.vor == pytest.approx(0.5)
        assert c.avl == 256.0  # scalar ops don't dilute AVL

    def test_scalar_machine_counts_everything_scalar(self):
        c = HardwareCounters(vector_length=1)
        c.record_loop(trip=100, ops_per_iter=1.0, vectorized=True)
        assert c.vor == 0.0
        assert c.flops == 100.0

    def test_phase_attribution_and_repeats(self):
        c = HardwareCounters(vector_length=64)
        c.record_loop(trip=64, ops_per_iter=1.0, phase="push", repeats=3)
        c.record_loop(trip=64, ops_per_iter=2.0, phase="charge")
        assert c.by_phase["push"] == 192.0
        assert c.by_phase["charge"] == 128.0

    def test_loads_stores_accumulate(self):
        c = HardwareCounters(vector_length=64)
        c.record_loop(trip=10, ops_per_iter=1.0, words_per_iter=3.0)
        assert c.loads_stores == 30.0

    def test_negative_rejected(self):
        c = HardwareCounters(vector_length=64)
        with pytest.raises(ValueError):
            c.record_loop(trip=-1, ops_per_iter=1.0)


class TestMerge:
    def test_merge_accumulates(self):
        a = HardwareCounters(vector_length=256)
        b = HardwareCounters(vector_length=256)
        a.record_loop(trip=256, ops_per_iter=1.0, phase="x")
        b.record_loop(trip=128, ops_per_iter=1.0, phase="x",
                      vectorized=False)
        a.merge(b)
        assert a.flops == 384.0
        assert a.by_phase["x"] == 384.0
        assert 0.0 < a.vor < 1.0

    def test_merge_rejects_mixed_machines(self):
        a = HardwareCounters(vector_length=256)
        b = HardwareCounters(vector_length=64)
        with pytest.raises(ValueError):
            a.merge(b)


class TestProperties:
    @given(trips=st.lists(st.integers(1, 4096), min_size=1, max_size=12),
           vl=st.sampled_from([64, 256]))
    def test_avl_bounded_by_vl_and_vor_unit(self, trips, vl):
        c = HardwareCounters(vector_length=vl)
        for t in trips:
            c.record_loop(trip=t, ops_per_iter=1.0)
        assert 0.0 < c.avl <= vl
        assert c.vor == 1.0

    @given(st.lists(st.tuples(st.integers(1, 2048), st.booleans()),
                    min_size=1, max_size=10))
    def test_vor_in_unit_interval_and_flops_additive(self, loops):
        c = HardwareCounters(vector_length=256)
        total = 0
        for trip, vec in loops:
            c.record_loop(trip=trip, ops_per_iter=1.0, vectorized=vec)
            total += trip
        assert 0.0 <= c.vor <= 1.0
        assert c.flops == total
