"""Unit tests for the perf-regression harness (pure functions only).

The heavy kernel benchmarks run in CI via ``repro bench --check``; here
we pin the comparison logic itself — tolerance bands, logical-traffic
equality gating, report formatting — with synthetic documents, plus a
repo-wide guard that all timing goes through ``time.perf_counter``.
"""

import pathlib

from repro.analysis import lint_source, run_lint
from repro.perf.bench import (
    DEFAULT_TOLERANCE,
    SCHEMA_VERSION,
    check_regression,
    format_report,
)

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def _doc(speedup, **extra):
    entry = {"speedup": speedup}
    entry.update(extra)
    return {"schema_version": SCHEMA_VERSION,
            "benchmarks": {"kernel_x": entry}}


class TestCheckRegression:
    def test_equal_speedup_passes(self):
        assert check_regression(_doc(3.0), _doc(3.0)) == []

    def test_within_tolerance_passes(self):
        # floor = 3.0 * (1 - 0.30) = 2.1
        assert check_regression(_doc(2.2), _doc(3.0)) == []

    def test_below_tolerance_fails(self):
        failures = check_regression(_doc(2.0), _doc(3.0))
        assert len(failures) == 1
        assert "kernel_x" in failures[0]

    def test_improvement_always_passes(self):
        assert check_regression(_doc(9.0), _doc(3.0)) == []

    def test_custom_tolerance(self):
        assert check_regression(_doc(2.0), _doc(3.0), tolerance=0.5) == []
        assert check_regression(_doc(1.4), _doc(3.0), tolerance=0.5)

    def test_missing_benchmark_in_current_is_flagged(self):
        cur = {"schema_version": SCHEMA_VERSION, "benchmarks": {}}
        failures = check_regression(cur, _doc(3.0))
        assert any("kernel_x" in f for f in failures)

    def test_logical_traffic_mismatch_within_run_fails(self):
        cur = _doc(3.0, naive_logical_bytes=100, fused_logical_bytes=96)
        failures = check_regression(cur, _doc(3.0))
        assert any("logical" in f.lower() for f in failures)

    def test_logical_traffic_cross_run_gated_on_scale(self):
        # Different problem scale: cross-run byte comparison must be
        # skipped rather than reported as a regression.
        cur = _doc(3.0, grid=[64, 64], naive_logical_bytes=100,
                   fused_logical_bytes=100)
        base = _doc(3.0, grid=[128, 128], naive_logical_bytes=400,
                    fused_logical_bytes=400)
        assert check_regression(cur, base) == []
        # Same scale: a silent change in traffic volume is a failure.
        cur_same = _doc(3.0, grid=[128, 128], naive_logical_bytes=100,
                        fused_logical_bytes=100)
        assert check_regression(cur_same, base)

    def test_default_tolerance_matches_ci(self):
        assert DEFAULT_TOLERANCE == 0.30


class TestFormatReport:
    def test_report_lists_each_benchmark(self):
        text = format_report(_doc(3.14, naive_seconds=0.30,
                                  fast_seconds=0.0955))
        assert "kernel_x" in text
        assert "3.14" in text


class TestTimingSourceGuard:
    """Satellite guard: all wall-clock timing in src/ must come from
    ``time.perf_counter`` — ``time.time`` is not monotonic and breaks
    interval math across clock adjustments.

    Enforcement now lives in the ``wall-clock`` rule of
    :mod:`repro.analysis` (AST-based, so mentions of the pattern in
    strings and docstrings no longer false-positive); this class pins
    that the repo stays clean under it and that the rule still bites.
    """

    def test_no_wall_clock_findings_in_src(self):
        findings, nfiles = run_lint([SRC / "repro"],
                                    enable=["wall-clock"])
        assert nfiles > 0
        assert findings == [], (
            "use time.perf_counter() for timing:\n"
            + "\n".join(f.render() for f in findings))

    def test_rule_flags_time_time(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        findings = lint_source(src, "x.py", enable=["wall-clock"])
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_rule_flags_bare_clock_import(self):
        # `from time import time` smuggles the same wall clock in
        # under a bare name; forbidden alongside the attribute form.
        src = "from time import time\n"
        findings = lint_source(src, "x.py", enable=["wall-clock"])
        assert findings and findings[0].rule == "wall-clock"
