"""Work descriptors: validation, scaling, profile bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.work import AccessPattern, AppProfile, CommPhase, WorkPhase


class TestWorkPhase:
    def test_intensity(self):
        p = WorkPhase("w", flops=150, words=100)
        assert p.intensity == 1.5

    def test_intensity_compute_only(self):
        assert WorkPhase("w", flops=1, words=0).intensity == float("inf")

    def test_scaled(self):
        p = WorkPhase("w", flops=100, words=50, trip=128)
        q = p.scaled(4.0, trip_factor=2.0)
        assert (q.flops, q.words, q.trip) == (400, 200, 256)
        assert p.flops == 100  # original untouched

    def test_scaled_validates(self):
        with pytest.raises(ValueError):
            WorkPhase("w", flops=1, words=1).scaled(-1.0)

    @pytest.mark.parametrize("kw", [
        {"flops": -1, "words": 0},
        {"flops": 0, "words": -1},
        {"flops": 0, "words": 0, "temporal_reuse": 1.5},
        {"flops": 0, "words": 0, "bank_conflict": 1.0},
        {"flops": 0, "words": 0, "trip": 0},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            WorkPhase("w", **kw)

    @given(f=st.floats(0, 1e12), s=st.floats(0.01, 100.0))
    def test_scaling_property(self, f, s):
        p = WorkPhase("w", flops=f, words=f / 2 + 1)
        q = p.scaled(s)
        assert q.flops == pytest.approx(f * s)
        assert q.intensity == pytest.approx(p.intensity, rel=1e-9)


class TestCommPhase:
    def test_valid_kinds(self):
        for kind in ("p2p", "alltoall", "allreduce", "bcast", "gather"):
            CommPhase("c", kind, 1, 100)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown comm kind"):
            CommPhase("c", "scatterv", 1, 100)

    def test_scaled(self):
        c = CommPhase("c", "p2p", messages=4, bytes_total=100)
        d = c.scaled(2.0, 3.0)
        assert (d.messages, d.bytes_total) == (8, 300)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CommPhase("c", "p2p", -1, 0)


class TestAppProfile:
    def _profile(self):
        return AppProfile(
            "app", "cfg", 16,
            phases=[WorkPhase("a", flops=100, words=10),
                    WorkPhase("b", flops=50, words=20)],
            comms=[CommPhase("halo", "p2p", 4, 1000)])

    def test_totals(self):
        p = self._profile()
        assert p.total_flops == 150
        assert p.total_words == 30
        assert p.reported_flops == 150

    def test_baseline_flops_override(self):
        p = self._profile()
        p.baseline_flops = 120
        assert p.reported_flops == 120
        assert p.total_flops == 150

    def test_phase_lookup(self):
        p = self._profile()
        assert p.phase("a").flops == 100
        with pytest.raises(KeyError):
            p.phase("zz")

    def test_duplicate_names_rejected(self):
        p = self._profile()
        p.phases.append(WorkPhase("a", flops=1, words=1))
        with pytest.raises(ValueError, match="duplicate"):
            p.validate()

    def test_bad_nprocs(self):
        p = self._profile()
        p.nprocs = 0
        with pytest.raises(ValueError):
            p.validate()
