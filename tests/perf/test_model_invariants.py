"""Property-based invariants of the performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import ES, PLATFORMS, POWER3, X1
from repro.perf import (
    AppProfile,
    CommPhase,
    PerformanceModel,
    PhasePort,
    PortingSpec,
    WorkPhase,
)

phase_st = st.builds(
    WorkPhase,
    name=st.just("w"),
    flops=st.floats(1e6, 1e13),
    words=st.floats(1e6, 1e13),
    trip=st.integers(1, 100000),
    temporal_reuse=st.floats(0.0, 1.0),
    working_set_bytes=st.floats(0.0, 1e8),
    compute_efficiency=st.floats(0.05, 1.0),
)


def profile_of(phase, nprocs=16):
    return AppProfile("p", "cfg", nprocs, phases=[phase])


class TestInvariants:
    @settings(max_examples=40)
    @given(phase=phase_st)
    def test_times_positive_everywhere(self, phase):
        for m in PLATFORMS:
            r = PerformanceModel(m).predict(profile_of(phase))
            assert r.seconds > 0
            assert 0 < r.pct_peak <= 100.0 + 1e-9

    @settings(max_examples=30)
    @given(phase=phase_st)
    def test_never_exceeds_peak(self, phase):
        for m in PLATFORMS:
            r = PerformanceModel(m).predict(profile_of(phase))
            assert r.gflops_per_proc <= m.peak_gflops * (1 + 1e-9)

    @settings(max_examples=30)
    @given(phase=phase_st, scale=st.floats(1.5, 10.0))
    def test_monotone_in_work(self, phase, scale):
        bigger = phase.scaled(scale)
        for m in (POWER3, ES):
            pm = PerformanceModel(m)
            t1 = pm.predict(profile_of(phase)).seconds
            t2 = pm.predict(profile_of(bigger)).seconds
            assert t2 >= t1

    @settings(max_examples=30)
    @given(phase=phase_st.filter(lambda p: p.trip >= 8))
    def test_unvectorizing_never_helps_vector_machines(self, phase):
        """For any loop long enough that a compiler would vectorize it
        (a trip-1 'vector' really is slower than scalar code)."""
        porting = PortingSpec("p")
        for name in ("ES", "X1"):
            porting.set(name, "w", PhasePort(vectorized=False))
        for m in (ES, X1):
            pm = PerformanceModel(m)
            fast = pm.predict(profile_of(phase))
            slow = pm.predict(profile_of(phase), porting)
            assert slow.seconds >= fast.seconds * (1 - 1e-12)
            assert slow.vor <= fast.vor

    @settings(max_examples=30)
    @given(phase=phase_st, nbytes=st.floats(0.0, 1e9))
    def test_comm_only_adds_time(self, phase, nbytes):
        base = profile_of(phase)
        with_comm = profile_of(phase)
        with_comm.comms.append(CommPhase("c", "alltoall", 4.0, nbytes))
        for m in (ES, X1):
            pm = PerformanceModel(m)
            assert pm.predict(with_comm).seconds >= \
                pm.predict(base).seconds

    @settings(max_examples=30)
    @given(phase=phase_st)
    def test_avl_within_hardware_bounds(self, phase):
        for m in (ES, X1):
            r = PerformanceModel(m).predict(profile_of(phase))
            assert 0 < r.avl <= m.vector.vector_length

    @settings(max_examples=20)
    @given(phase=phase_st)
    def test_longer_vectors_never_slower(self, phase):
        # compare trip vs trip rounded up to a full register multiple
        import dataclasses

        m = ES
        vl = m.vector.vector_length
        full = dataclasses.replace(
            phase, trip=max(vl, (phase.trip // vl + 1) * vl))
        pm = PerformanceModel(m)
        t_frag = pm.predict(profile_of(phase)).phase_times[0].flop_seconds
        t_full = pm.predict(profile_of(full)).phase_times[0].flop_seconds
        # per-flop compute time with full registers <= fragmented
        assert t_full / full.flops <= t_frag / phase.flops * (1 + 1e-9)

    def test_reported_flops_used_for_rate(self):
        phase = WorkPhase("w", flops=2e9, words=1e8, trip=1024)
        p = profile_of(phase)
        p.baseline_flops = 1e9
        r = PerformanceModel(ES).predict(p)
        assert r.gflops_per_proc == pytest.approx(1e9 / r.seconds / 1e9)
