"""Robustness of the headline findings to the calibrated constants."""

import pytest

from repro.apps import cactus, gtc, lbmhd, paratec
from repro.machine import PLATFORMS
from repro.perf.sensitivity import (
    CALIBRATED_FIELDS,
    Finding,
    evaluate_finding,
    perturbed,
    sweep,
)

MACHINES = {m.name: m for m in PLATFORMS}


class TestPerturbation:
    def test_scalar_field(self):
        es = MACHINES["ES"]
        up = perturbed(es, "sustained_mem_fraction", 1.25)
        assert up.sustained_mem_fraction == 1.0  # clamped
        down = perturbed(es, "sustained_mem_fraction", 0.5)
        assert down.sustained_mem_fraction == pytest.approx(0.475)

    def test_vector_field(self):
        es = MACHINES["ES"]
        longer = perturbed(es, "half_length", 2.0, is_vector_field=True)
        assert longer.vector.half_length == 28
        assert es.vector.half_length == 14  # original untouched

    def test_vector_field_on_scalar_machine_noop(self):
        p3 = MACHINES["Power3"]
        assert perturbed(p3, "half_length", 2.0,
                         is_vector_field=True) is p3


def _lbmhd_profile(machine):
    return lbmhd.build_profile(lbmhd.LBMHDConfig(4096, 64))


def _no_porting(machine):
    return None


class TestHeadlineFindingsRobust:
    def test_vectors_dominate_lbmhd(self):
        """'Vector machines >> superscalar on LBMHD' survives +-25%
        perturbation of every calibrated constant."""
        finding = Finding(
            "vector dominance on LBMHD",
            ("ES", "X1", "Power3", "Power4", "Altix"),
            lambda r: min(r["ES"].gflops_per_proc,
                          r["X1"].gflops_per_proc)
            > 3 * max(r["Power3"].gflops_per_proc,
                      r["Power4"].gflops_per_proc,
                      r["Altix"].gflops_per_proc))
        assert sweep(finding, _lbmhd_profile, _no_porting,
                     MACHINES) == []

    def test_es_beats_x1_pct_peak_lbmhd(self):
        finding = Finding(
            "ES %peak > X1 %peak (LBMHD)", ("ES", "X1"),
            lambda r: r["ES"].pct_peak > r["X1"].pct_peak)
        assert sweep(finding, _lbmhd_profile, _no_porting,
                     MACHINES) == []

    def test_gtc_x1_absolute_win(self):
        cfg = gtc.GTCConfig(100, 32)

        def profile_for(machine):
            return gtc.build_profile(cfg)

        def porting_for(machine):
            return gtc.gtc_porting(cfg)

        finding = Finding(
            "X1 fastest absolute on GTC", ("ES", "X1"),
            lambda r: r["X1"].gflops_per_proc > 0.9
            * r["ES"].gflops_per_proc)
        assert sweep(finding, profile_for, porting_for, MACHINES) == []

    def test_paratec_x1_collapse(self):
        def profile_for(machine):
            return paratec.build_profile(paratec.ParatecConfig(686, 256))

        def porting_for(machine):
            return paratec.paratec_porting()

        def profile_small(machine):
            return paratec.build_profile(paratec.ParatecConfig(686, 64))

        # Evaluate the drop ratio under perturbation of the X1 only.
        def check(r):
            return True

        base = evaluate_finding(
            Finding("x", ("X1",), lambda r: True), profile_for,
            porting_for, MACHINES)
        assert base
        for field, is_vec in CALIBRATED_FIELDS:
            for factor in (0.8, 1.25):
                machines = dict(MACHINES)
                machines["X1"] = perturbed(MACHINES["X1"], field,
                                           factor, is_vector_field=is_vec)
                from repro.perf import PerformanceModel
                big = PerformanceModel(machines["X1"]).predict(
                    profile_for(None), porting_for(None))
                small = PerformanceModel(machines["X1"]).predict(
                    profile_small(None), porting_for(None))
                assert big.gflops_per_proc < 0.75 * \
                    small.gflops_per_proc, (field, factor)

    def test_cactus_grid_shape_effect(self):
        def profile_for_big(machine):
            return cactus.build_profile(
                cactus.CactusConfig((250, 64, 64), 16))

        cfg_big = cactus.CactusConfig((250, 64, 64), 16)
        cfg_small = cactus.CactusConfig((80, 80, 80), 16)

        from repro.perf import PerformanceModel
        for field, is_vec in CALIBRATED_FIELDS:
            for factor in (0.8, 1.25):
                es = perturbed(MACHINES["ES"], field, factor,
                               is_vector_field=is_vec)
                big = PerformanceModel(es).predict(
                    cactus.build_profile(cfg_big),
                    cactus.cactus_porting(cfg_big))
                small = PerformanceModel(es).predict(
                    cactus.build_profile(cfg_small),
                    cactus.cactus_porting(cfg_small))
                assert big.gflops_per_proc > small.gflops_per_proc, \
                    (field, factor)
