"""Report rendering and metric helpers."""

import pytest

from repro.machine import ES, POWER3
from repro.perf import (
    AppProfile,
    PaperTable,
    PerformanceModel,
    WorkPhase,
    parallel_efficiency,
    pct_of_peak,
    per_proc_speedup,
    render_speedup_table,
)


def result(machine, nprocs=64, flops=1e9):
    p = AppProfile("app", "cfg", nprocs, phases=[
        WorkPhase("w", flops=flops, words=flops / 1.5, trip=512)])
    return PerformanceModel(machine).predict(p)


class TestMetrics:
    def test_pct_of_peak(self):
        assert pct_of_peak(4.0, 8.0) == 50.0
        with pytest.raises(ValueError):
            pct_of_peak(1.0, 0.0)

    def test_per_proc_speedup(self):
        es, p3 = result(ES), result(POWER3)
        s = per_proc_speedup(es, p3)
        assert s == pytest.approx(es.gflops_per_proc / p3.gflops_per_proc)
        assert s > 1.0

    def test_parallel_efficiency(self):
        rs = [result(ES, nprocs=p) for p in (16, 64)]
        eff = parallel_efficiency(rs)
        assert eff[16] == 1.0
        assert 0 < eff[64] <= 1.0 + 1e-9

    def test_parallel_efficiency_empty(self):
        assert parallel_efficiency([]) == {}


class TestPaperTable:
    def _table(self):
        t = PaperTable("Table X", machines=[])
        t.add(result(ES, nprocs=16))
        t.add(result(ES, nprocs=64))
        t.add(result(POWER3, nprocs=16))
        return t

    def test_add_and_cell(self):
        t = self._table()
        assert t.machines == ["ES", "Power3"]
        assert t.cell("cfg", 16, "ES") is not None
        assert t.cell("cfg", 64, "Power3") is None

    def test_render_contains_rows(self):
        text = self._table().render()
        assert "Table X" in text
        assert "16" in text and "64" in text
        assert "—" in text  # the missing Power3 P=64 cell

    def test_markdown(self):
        md = self._table().to_markdown()
        assert md.startswith("### Table X")
        assert "| Config | P |" in md.replace("  ", " ")

    def test_reference_comparison(self):
        t = self._table()
        es16 = t.cell("cfg", 16, "ES")
        t.reference[("cfg", 16, "ES")] = (es16.gflops_per_proc, 50.0)
        t.reference[("cfg", 64, "ES")] = (es16.gflops_per_proc * 100, 50.0)
        errors = t.shape_errors(tol_factor=3.0)
        assert len(errors) == 1
        assert "P=64" in errors[0]

    def test_reference_missing_model_cell_flagged(self):
        t = self._table()
        t.reference[("cfg", 256, "ES")] = (1.0, 10.0)
        assert any("no model value" in e for e in t.shape_errors())

    def test_custom_machine_label(self):
        t = PaperTable("T", machines=[])
        t.add(result(ES), machine_label="X1 (CAF)")
        assert t.machines == ["X1 (CAF)"]
        assert t.cell("cfg", 64, "X1 (CAF)") is not None


class TestSpeedupTable:
    def test_render(self):
        text = render_speedup_table(
            "Table 7", {"LBMHD": {"Power3": 30.6, "X1": 1.5},
                        "GTC": {"Power3": 9.4}},
            columns=["Power3", "X1"])
        assert "30.6" in text and "9.4" in text
        assert "—" in text  # missing GTC/X1 entry
