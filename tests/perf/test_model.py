"""Performance model: end-to-end prediction mechanics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import ALTIX, ES, PLATFORMS, POWER3, X1
from repro.perf import (
    AppProfile,
    CommPhase,
    PerformanceModel,
    PhasePort,
    PortingSpec,
    WorkPhase,
    predict_on,
)


def stream_profile(nprocs=64, intensity=1.5):
    """An LBMHD-like streaming profile."""
    flops = 1e9
    return AppProfile(
        "stream", "cfg", nprocs,
        phases=[WorkPhase("sweep", flops=flops, words=flops / intensity,
                          trip=1024)])


class TestPredictionMechanics:
    def test_memory_bound_phase_on_superscalar(self):
        r = PerformanceModel(POWER3).predict(stream_profile())
        pt = r.phase_times[0]
        assert pt.bound == "memory"
        assert r.pct_peak < 15

    def test_vector_machine_much_faster_on_streams(self):
        es = PerformanceModel(ES).predict(stream_profile())
        p3 = PerformanceModel(POWER3).predict(stream_profile())
        assert es.gflops_per_proc / p3.gflops_per_proc > 20

    def test_gflops_accounting(self):
        r = PerformanceModel(ES).predict(stream_profile())
        assert r.gflops_per_proc == pytest.approx(
            1e9 / r.seconds / 1e9)
        assert r.total_gflops == pytest.approx(64 * r.gflops_per_proc)
        assert r.pct_peak == pytest.approx(
            100 * r.gflops_per_proc / ES.peak_gflops)

    def test_baseline_flops_convention(self):
        """Paper: Gflop/s = valid baseline flops / wall-clock."""
        p = stream_profile()
        p.baseline_flops = 0.5e9  # vector algorithm does 2x extra work
        r = PerformanceModel(ES).predict(p)
        assert r.gflops_per_proc == pytest.approx(0.5e9 / r.seconds / 1e9)

    def test_avl_vor_reported_for_vector(self):
        r = PerformanceModel(ES).predict(stream_profile())
        assert r.vor == 1.0
        assert r.avl == pytest.approx(256.0)
        r2 = PerformanceModel(POWER3).predict(stream_profile())
        assert r2.avl == 0.0 and r2.vor == 0.0

    def test_comm_time_added(self):
        p = stream_profile()
        p.comms.append(CommPhase("halo", "p2p", messages=8,
                                 bytes_total=1e6))
        with_comm = PerformanceModel(ES).predict(p)
        without = PerformanceModel(ES).predict(stream_profile())
        assert with_comm.seconds > without.seconds
        assert with_comm.comm_seconds > 0
        assert with_comm.comm_fraction > 0
        assert "halo" in with_comm.comm_times

    @pytest.mark.parametrize("kind", ["p2p", "alltoall", "allreduce",
                                      "bcast", "gather", "barrier"])
    def test_all_comm_kinds_priced(self, kind):
        p = stream_profile()
        p.comms.append(CommPhase("c", kind, messages=2, bytes_total=1e5))
        r = PerformanceModel(X1).predict(p)
        assert r.comm_seconds > 0

    def test_phase_seconds_lookup(self):
        r = PerformanceModel(ES).predict(stream_profile())
        assert r.phase_seconds("sweep") == r.compute_seconds
        with pytest.raises(KeyError):
            r.phase_seconds("nope")


class TestPortingEffects:
    def test_unvectorized_phase_dominates_on_x1(self):
        """The paper's Amdahl story: small scalar phases blow up on X1."""
        main = WorkPhase("main", flops=0.95e9, words=1e8, trip=1024)
        bc = WorkPhase("boundary", flops=0.05e9, words=1e7, trip=64)
        profile = AppProfile("amdahl", "cfg", 16, phases=[main, bc])
        vec_everything = PerformanceModel(X1).predict(profile)

        porting = PortingSpec("amdahl")
        porting.set("X1", "boundary", PhasePort(vectorized=False))
        with_scalar_bc = PerformanceModel(X1).predict(profile, porting)
        assert with_scalar_bc.seconds > 2 * vec_everything.seconds
        assert with_scalar_bc.vor < 1.0

    def test_es_less_sensitive_than_x1_to_scalar_code(self):
        main = WorkPhase("main", flops=0.9e9, words=1e8, trip=1024)
        bc = WorkPhase("boundary", flops=0.1e9, words=1e7, trip=64)
        profile = AppProfile("amdahl", "cfg", 16, phases=[main, bc])
        porting = PortingSpec("amdahl")
        porting.set("X1", "boundary", PhasePort(vectorized=False))
        porting.set("ES", "boundary", PhasePort(vectorized=False))

        def slowdown(machine):
            base = PerformanceModel(machine).predict(profile)
            hurt = PerformanceModel(machine).predict(profile, porting)
            return hurt.seconds / base.seconds

        assert slowdown(X1) > slowdown(ES) > 1.0

    def test_replacement_phase(self):
        p = stream_profile()
        porting = PortingSpec("stream")
        fat = WorkPhase("sweep", flops=2e9, words=2e9, trip=1024)
        porting.set("ES", "sweep", PhasePort(replacement=fat))
        base = PerformanceModel(ES).predict(stream_profile())
        swapped = PerformanceModel(ES).predict(p, porting)
        assert swapped.seconds > base.seconds

    def test_without_removes_override(self):
        porting = PortingSpec("a")
        porting.set("ES", "x", PhasePort(vectorized=False))
        stripped = porting.without("ES", "x")
        assert stripped.port("ES", "x").vectorized is None
        assert porting.port("ES", "x").vectorized is False  # original kept


class TestSweeps:
    def test_predict_on_skips_none(self):
        def profile_for(m):
            if m.name == "Altix":
                return None
            return stream_profile()

        results = predict_on(list(PLATFORMS), profile_for)
        names = [r.machine for r in results]
        assert "Altix" not in names and len(names) == 4

    @settings(max_examples=20)
    @given(flops=st.floats(1e6, 1e12), words=st.floats(1e6, 1e12),
           trip=st.integers(1, 65536))
    def test_all_machines_positive_times(self, flops, words, trip):
        p = AppProfile("x", "cfg", 4, phases=[
            WorkPhase("w", flops=flops, words=words, trip=trip)])
        for m in PLATFORMS:
            r = PerformanceModel(m).predict(p)
            assert r.seconds > 0
            assert r.gflops_per_proc > 0
            assert 0 <= r.vor <= 1
