"""End-to-end ``repro report`` over the four applications.

Every app is run at a tiny configuration with tracing on, profiled, and
the resulting report document is checked against the acceptance
criteria: exact attribution (compute + comm + wait within 1% of the
total traced time), a non-empty critical-path rank sequence, and a
model join that covers every traced phase.  A second same-seed run must
produce a structurally identical report (phase names, call counts,
comm-matching counts, model fractions) — timings are wall-clock and are
deliberately excluded.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.profile import validate_report
from repro.obs.runner import APPS, report_app

_SMALL = {
    "lbmhd": dict(nprocs=2, steps=2),
    "cactus": dict(nprocs=2, steps=2),
    "gtc": dict(nprocs=2, steps=2),
    "paratec": dict(nprocs=2, steps=1),
}


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    out = {}
    for app in APPS:
        outdir = tmp_path_factory.mktemp(f"report-{app}")
        run, doc = report_app(app, outdir=outdir, **_SMALL[app])
        out[app] = (run, doc, outdir)
    return out


@pytest.mark.parametrize("app", APPS)
class TestReportPerApp:
    def test_attribution_sums_to_total(self, reports, app):
        _, doc, _ = reports[app]
        attr = doc["attribution"]
        total = doc["total_traced_s"]
        assert total > 0
        parts = attr["compute_s"] + attr["comm_s"] + attr["wait_s"]
        assert parts == pytest.approx(total, rel=0.01)

    def test_wait_fractions_bounded(self, reports, app):
        _, doc, _ = reports[app]
        fracs = doc["wait_states"]["fractions"]
        assert all(v >= 0 for v in fracs.values())
        assert sum(fracs.values()) <= 1.0 + 1e-9

    def test_critical_path_nonempty(self, reports, app):
        _, doc, _ = reports[app]
        cp = doc["critical_path"]
        assert cp["rank_sequence"]
        assert cp["length_s"] > 0
        assert cp["segments"]

    def test_join_covers_every_traced_phase(self, reports, app):
        _, doc, _ = reports[app]
        joined = {row["phase"] for row in doc["model_join"]["phases"]}
        traced = {p["name"] for p in doc["attribution"]["phases"]}
        assert traced <= joined
        for row in doc["model_join"]["phases"]:
            assert "diverged" in row

    def test_report_json_written_and_valid(self, reports, app):
        _, doc, outdir = reports[app]
        path = outdir / "report.json"
        assert path.exists()
        loaded = json.loads(path.read_text())
        validate_report(loaded)
        assert loaded == doc

    def test_metrics_carry_attribution(self, reports, app):
        run, _, _ = reports[app]
        counters = run.report["aggregate"]["counters"]
        profile_keys = [k for k in counters if k.startswith("profile.")]
        assert "profile.total.compute_s" in profile_keys
        assert counters["profile.total.compute_s"] > 0


def _structure(doc):
    """The deterministic skeleton of a report: everything but timings."""
    return {
        "app": doc["app"],
        "nprocs": doc["nprocs"],
        # attribution orders phases by measured time, which is wall
        # clock — sort by name before comparing runs
        "phases": sorted((p["name"], p["calls"])
                         for p in doc["attribution"]["phases"]),
        "comm": doc["comm_matching"],
        # model_frac is None for unmapped phases
        "join": sorted((r["phase"], r["mapped"],
                        None if r["model_frac"] is None
                        else round(r["model_frac"], 12))
                       for r in doc["model_join"]["phases"]),
    }


@pytest.mark.parametrize("app", ["lbmhd", "gtc"])
def test_report_structurally_deterministic(app):
    _, doc_a = report_app(app, outdir=None, **_SMALL[app])
    _, doc_b = report_app(app, outdir=None, **_SMALL[app])
    assert _structure(doc_a) == _structure(doc_b)
