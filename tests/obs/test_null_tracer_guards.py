"""NULL_TRACER hot-path guards: disabled tracing must build nothing.

Every call site in the runtime checks ``tracer.enabled`` before touching
the tracer, so a run with the default null tracer never constructs a
span object or an args dict.  Enforcement is two-layered:

* the ``tracer-guard`` rule of :mod:`repro.analysis` proves *statically*
  that every instrumented call site in ``src/`` sits behind an
  ``enabled`` guard (and this file pins that the rule still bites on a
  synthetic violation);
* one dynamic micro-assertion survives as a backstop: poison every
  NullTracer method and drive the comm hot paths — if a guard idiom
  the static rule doesn't model ever appears, the run blows up here.
"""

import pathlib

import numpy as np
import pytest

from repro.analysis import lint_source, run_lint
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.runtime import ParallelJob

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


class TestStaticTracerGuards:
    def test_src_is_clean_under_tracer_guard_rule(self):
        findings, nfiles = run_lint([SRC / "repro"],
                                    enable=["tracer-guard"])
        assert nfiles > 0
        assert findings == [], (
            "unguarded tracer call on a hot path:\n"
            + "\n".join(f.render() for f in findings))

    def test_rule_flags_unguarded_span(self):
        src = (
            "def send(self, obj):\n"
            "    tr = self.transport.tracer\n"
            "    with tr.span(0, 'send', 'comm', {'nbytes': 8}):\n"
            "        self.transport.post(obj)\n"
        )
        findings = lint_source(src, "x.py", enable=["tracer-guard"])
        assert [f.rule for f in findings] == ["tracer-guard"]

    def test_rule_accepts_both_guard_idioms(self):
        guarded = (
            "def send(self, obj):\n"
            "    tr = self.transport.tracer\n"
            "    if not tr.enabled:\n"
            "        self.transport.post(obj)\n"
            "        return\n"
            "    with tr.span(0, 'send', 'comm'):\n"
            "        self.transport.post(obj)\n"
            "\n"
            "def tick(self, rank):\n"
            "    tracer = self.tracer\n"
            "    if tracer.enabled:\n"
            "        tracer.instant(rank, 'step', 'phase')\n"
        )
        assert lint_source(guarded, "x.py",
                           enable=["tracer-guard"]) == []


@pytest.fixture
def poisoned_null_tracer(monkeypatch):
    calls = []

    def boom(name):
        def _record(*a, **k):
            calls.append(name)
            raise AssertionError(
                f"NullTracer.{name} called despite enabled=False — "
                f"a hot path is missing its tracer.enabled guard")
        return _record

    for name in ("span", "instant", "counter"):
        if hasattr(NullTracer, name):
            monkeypatch.setattr(NullTracer, name, boom(name))
    assert NULL_TRACER.enabled is False
    return calls


def test_comm_hot_paths_never_touch_null_tracer(poisoned_null_tracer):
    def prog(comm):
        comm.send(np.arange(4.0), dest=(comm.rank + 1) % comm.size,
                  tag=0)
        data = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
        comm.barrier()
        with comm.phase("work"):
            total = comm.allreduce(float(data.sum()))
        comm.alltoall([np.full(2, comm.rank)] * comm.size)
        comm.bcast(total if comm.rank == 0 else None)
        return total

    results = ParallelJob(4).run(prog)
    assert len(set(results)) == 1
    assert poisoned_null_tracer == []
