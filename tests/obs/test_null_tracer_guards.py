"""NULL_TRACER hot-path guards: disabled tracing must build nothing.

Every call site in the runtime checks ``tracer.enabled`` before touching
the tracer, so a run with the default null tracer never constructs a
span object or an args dict.  The micro-assertion: poison every
NullTracer method; if any hot path forgets its guard, the run blows up.
"""

import numpy as np
import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.runtime import CoArray, ParallelJob


@pytest.fixture
def poisoned_null_tracer(monkeypatch):
    calls = []

    def boom(name):
        def _record(*a, **k):
            calls.append(name)
            raise AssertionError(
                f"NullTracer.{name} called despite enabled=False — "
                f"a hot path is missing its tracer.enabled guard")
        return _record

    for name in ("span", "instant", "counter"):
        if hasattr(NullTracer, name):
            monkeypatch.setattr(NullTracer, name, boom(name))
    assert NULL_TRACER.enabled is False
    return calls


def test_comm_hot_paths_never_touch_null_tracer(poisoned_null_tracer):
    def prog(comm):
        comm.send(np.arange(4.0), dest=(comm.rank + 1) % comm.size,
                  tag=0)
        data = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
        comm.barrier()
        with comm.phase("work"):
            total = comm.allreduce(float(data.sum()))
        comm.alltoall([np.full(2, comm.rank)] * comm.size)
        comm.bcast(total if comm.rank == 0 else None)
        return total

    results = ParallelJob(4).run(prog)
    assert len(set(results)) == 1
    assert poisoned_null_tracer == []


def test_caf_hot_paths_never_touch_null_tracer(poisoned_null_tracer):
    def prog(comm):
        ca = CoArray(comm, (4,), name="x")
        ca.local[...] = comm.rank
        ca.sync()
        ca.put((comm.rank + 1) % comm.size, slice(0, 2),
               np.full(2, float(comm.rank)))
        ca.sync()
        return ca.local.copy()

    ParallelJob(4).run(prog)
    assert poisoned_null_tracer == []


def test_lbmhd_parallel_step_never_touches_null_tracer(
        poisoned_null_tracer):
    from repro.apps.lbmhd.initial import orszag_tang
    from repro.apps.lbmhd.parallel import run_parallel

    rho, u, B = orszag_tang(16, 16)
    run_parallel(rho, u, B, nprocs=4, nsteps=2, fused=True)
    assert poisoned_null_tracer == []
