"""MetricsRegistry: instrument semantics, serialization, aggregation."""

import numpy as np
import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.runtime import ParallelJob, Transport


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.0)
        reg.gauge("g").set(2.0)
        assert reg.gauge("g").value == 2.0

    def test_histogram_sketch(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_kind_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.histogram("x")


class TestSerialization:
    def _populated(self, rank=0):
        reg = MetricsRegistry(rank=rank)
        reg.counter("comm.bytes").inc(100.0 * (rank + 1))
        reg.gauge("hw.avl").set(200.0 + rank)
        h = reg.histogram("halo.seconds")
        h.observe(0.5)
        h.observe(1.5 + rank)
        return reg

    def test_round_trip(self):
        reg = self._populated(rank=3)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.to_dict() == reg.to_dict()
        assert back.rank == 3

    def test_empty_histogram_serializes(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        d = reg.to_dict()["histograms"]["empty"]
        assert d["count"] == 0 and d["min"] is None and d["max"] is None
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.histogram("empty").count == 0


class TestAggregation:
    def test_counters_sum_gauges_spread_histograms_merge(self):
        regs = []
        for rank in range(4):
            reg = MetricsRegistry(rank=rank)
            reg.counter("bytes").inc(10.0)
            reg.gauge("avl").set(float(rank))
            reg.histogram("wait").observe(float(rank))
            regs.append(reg)
        agg = MetricsRegistry.aggregate(regs)
        assert agg["nranks"] == 4 and agg["ranks"] == [0, 1, 2, 3]
        assert agg["counters"]["bytes"] == 40.0
        assert agg["gauges"]["avl"] == {"min": 0.0, "max": 3.0,
                                        "mean": 1.5}
        w = agg["histograms"]["wait"]
        assert (w["count"], w["min"], w["max"]) == (4, 0.0, 3.0)

    def test_aggregation_round_trips_through_json_dicts(self):
        # per-rank registries survive to_dict/from_dict and still
        # aggregate to the same report (the runner's persistence path)
        regs = [MetricsRegistry(rank=r) for r in range(3)]
        for r, reg in enumerate(regs):
            reg.counter("n").inc(r + 1)
            reg.histogram("h").observe(2.0 * r)
        direct = MetricsRegistry.aggregate(regs)
        revived = MetricsRegistry.aggregate(
            [MetricsRegistry.from_dict(reg.to_dict()) for reg in regs])
        assert revived == direct

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry.aggregate([])


class TestBridges:
    def test_ingest_transport(self):
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(8), dest=1)
            else:
                comm.recv(source=0)
            comm.allreduce(1.0)

        ParallelJob(2, transport=tr).run(prog)
        reg = MetricsRegistry()
        reg.ingest_transport(tr)
        assert reg.counter("comm.messages").value == 1
        assert reg.counter("comm.bytes").value == 64
        assert reg.counter("comm.collective.allreduce").value == 2
        assert reg.histogram("comm.message_bytes").max == 64

    def test_ingest_counters(self):
        from repro.machine.counters import HardwareCounters

        hw = HardwareCounters(vector_length=256)
        hw.record_loop(256, 4.0, phase="collision")
        reg = MetricsRegistry()
        reg.ingest_counters(hw, prefix="hw")
        assert reg.counter("hw.flops").value == 1024.0
        assert reg.counter("hw.flops.collision").value == 1024.0
        assert reg.gauge("hw.avl").value == 256.0

    def test_ingest_profile(self):
        from repro.apps.lbmhd.profile import LBMHDConfig, build_profile

        reg = MetricsRegistry()
        reg.ingest_profile(build_profile(LBMHDConfig(64, 4)))
        assert reg.gauge("lbmhd.model.collision.flops").value > 0
        assert reg.gauge("lbmhd.model.comm.halo.bytes").value > 0
        assert reg.gauge("lbmhd.model.reported_flops").value > 0


class TestPercentiles:
    def test_known_values(self):
        h = Histogram()
        for v in range(1, 101):       # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentiles() == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_empty_is_none(self):
        h = Histogram()
        assert h.percentile(50) is None
        assert h.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_decimation_is_deterministic_and_bounded(self):
        a, b = Histogram(), Histogram()
        for v in range(10 * Histogram.SAMPLE_CAP):
            a.observe(float(v))
            b.observe(float(v))
        assert a.samples == b.samples
        assert len(a.samples) <= Histogram.SAMPLE_CAP
        assert a.stride > 1
        # the sketch still tracks the distribution
        assert a.percentile(50) == pytest.approx(
            10 * Histogram.SAMPLE_CAP / 2, rel=0.05)

    def test_merge_combines_samples(self):
        a, b = Histogram(), Histogram()
        for v in range(100):
            a.observe(float(v))          # 0..99
            b.observe(float(v) + 1000)   # 1000..1099
        a.merge(b)
        assert a.count == 200
        assert a.percentile(50) == pytest.approx(99, abs=5)
        assert a.percentile(99) == pytest.approx(1098, abs=5)

    def test_serialization_round_trips_percentiles(self):
        reg = MetricsRegistry(rank=0)
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        doc = reg.to_dict()
        assert doc["histograms"]["lat"]["p50"] == 3.0
        assert doc["histograms"]["lat"]["p99"] == 100.0
        back = MetricsRegistry.from_dict(doc)
        assert back.to_dict() == doc

    def test_ingest_attribution_from_report_doc(self):
        reg = MetricsRegistry()
        reg.ingest_attribution({"attribution": {
            "compute_s": 2.0, "comm_s": 1.0, "wait_s": 0.5,
            "phases": [{"name": "halo", "compute_s": 0.0,
                        "comm_s": 1.0, "wait_s": 0.5}],
        }})
        assert reg.counter("profile.total.compute_s").value == 2.0
        assert reg.counter("profile.phase.halo.comm_s").value == 1.0
        assert reg.counter("profile.phase.halo.wait_s").value == 0.5
