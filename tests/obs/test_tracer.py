"""Tracer semantics: deterministic ordering, zero-cost disabled path."""

import threading

import numpy as np
import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Tracer
from repro.obs.events import INSTANT, SPAN
from repro.runtime import ParallelJob, Transport, VirtualClocks


class TestOrdering:
    def test_events_keyed_by_rank_and_seq(self):
        tr = Tracer(2)
        tr.instant(1, "b")
        tr.instant(0, "a")
        with tr.span(0, "s"):
            pass
        keys = [e.key for e in tr.events()]
        assert keys == sorted(keys)
        assert [e.seq for e in tr.events(0)] == [0, 1]

    def _traced_program(self, jitter):
        """One comm-heavy threaded run; returns the per-rank event names."""
        transport = Transport(4)
        tracer = Tracer(4)
        transport.tracer = tracer

        def prog(comm):
            import time
            for step in range(3):
                if jitter:
                    time.sleep(0.0005 * ((comm.rank * 7 + step) % 3))
                tracer.instant(comm.rank, "step", "phase", {"step": step})
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                comm.sendrecv(np.full(4, comm.rank), dest=right,
                              source=left)
                comm.allreduce(float(comm.rank))

        ParallelJob(4, transport=transport).run(prog)
        return {r: [(e.seq, e.name, e.cat) for e in tracer.events(r)]
                for r in range(4)}

    def test_deterministic_under_thread_scheduling(self):
        # The same program traced twice — once with artificial per-rank
        # scheduling jitter — must produce identical (seq, name) streams:
        # ordering keys come from per-rank counters, not wall time.
        assert self._traced_program(False) == self._traced_program(True)

    def test_span_timestamps_monotonic_per_rank(self):
        tr = Tracer(1)
        for _ in range(5):
            with tr.span(0, "w"):
                pass
        starts = [e.t_wall for e in tr.events(0)]
        assert starts == sorted(starts)


class TestNullPath:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span(0, "x") is NULL_SPAN
        assert NULL_TRACER.instant(0, "x") is None

    def test_null_span_is_shared_singleton(self):
        # The disabled hot path must not allocate: every span request
        # returns the same no-op context-manager object.
        spans = {id(NULL_TRACER.span(r, "s", "cat", {"k": r}))
                 for r in range(64)}
        assert spans == {id(NULL_SPAN)}
        with NULL_SPAN:
            pass

    def test_default_transport_records_nothing(self):
        transport = Transport(2)
        assert transport.tracer is NULL_TRACER

        def prog(comm):
            with comm.phase("p"):
                comm.allreduce(1.0)

        ParallelJob(2, transport=transport).run(prog)
        assert transport.tracer is NULL_TRACER


class TestTracer:
    def test_bad_rank_rejected(self):
        tr = Tracer(2)
        with pytest.raises(ValueError):
            tr.instant(2, "x")
        with pytest.raises(ValueError):
            Tracer(0)

    def test_thread_safety_one_rank(self):
        tr = Tracer(1)

        def worker():
            for _ in range(200):
                tr.instant(0, "tick")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = tr.events(0)
        assert len(events) == 800
        assert [e.seq for e in events] == list(range(800))

    def test_virtual_time_stamping(self):
        clocks = VirtualClocks(2)
        clocks.advance(1, 2.5)
        tr = Tracer(2, clocks=clocks)
        tr.instant(0, "a")
        tr.instant(1, "b")
        by_rank = {e.rank: e for e in tr.events()}
        assert by_rank[0].t_virtual == 0.0
        assert by_rank[1].t_virtual == 2.5

    def test_advance_clocks_charges_span_duration(self):
        clocks = VirtualClocks(1)
        tr = Tracer(1, clocks=clocks, advance_clocks=True)
        with tr.span(0, "work"):
            pass
        (ev,) = tr.events()
        assert ev.ph == SPAN
        assert clocks.time(0) == pytest.approx(ev.dur)

    def test_clear(self):
        tr = Tracer(1)
        tr.instant(0, "x")
        assert len(tr) == 1
        tr.clear()
        assert len(tr) == 0
        tr.instant(0, "y")
        # sequence numbers keep counting across clear()
        assert tr.events(0)[0].seq == 1

    def test_instant_phase(self):
        tr = Tracer(1)
        tr.instant(0, "fault", "fault", {"src": 0})
        (ev,) = tr.events()
        assert ev.ph == INSTANT
        assert ev.cat == "fault"
        assert ev.args == {"src": 0}
