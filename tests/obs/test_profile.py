"""Cross-rank attribution pipeline: graph, waits, critical path, report."""

import json

import pytest

from repro.obs import (
    CAT_COMM,
    CAT_PHASE,
    CAT_SYNC,
    SPAN,
    ProfileError,
    TraceEvent,
    Tracer,
    analyze,
    build_report,
    render_report,
    validate_report,
)
from repro.obs.profile import (
    BETWEEN_PHASES,
    WAIT_COLLECTIVE,
    WAIT_LATE_SENDER,
    attribute,
    build_graph,
    classify_waits,
    critical_path,
    load_activities,
)


def ev(rank, name, cat, start, dur, seq, args=None):
    return TraceEvent(name, cat, SPAN, rank, seq, start, dur, None,
                      args or {})


def late_sender_trace():
    """Three ranks, one late-sender chain with a known critical path.

    rank 0 computes until t=1.0 and only sends at the end; rank 1's
    first recv blocks from t=0.1 until that send's arrival (0.9 s of
    late-sender wait), then finishes at t=1.3 — the global end.  rank 2
    sends early, so its message is never on the critical path.  The
    path must therefore be rank 0 (0 → 1.0) handing off to rank 1
    (1.0 → 1.3).
    """
    return [
        ev(0, "send", CAT_COMM, 0.95, 0.05, 0,
           {"dst": 1, "tag": 0, "nbytes": 8}),
        ev(0, "compute", CAT_PHASE, 0.0, 1.0, 1),
        ev(1, "recv", CAT_COMM, 0.1, 0.9, 0, {"src": 0, "tag": 0}),
        ev(1, "recv", CAT_COMM, 1.06, 0.04, 1, {"src": 2, "tag": 0}),
        ev(1, "compute", CAT_PHASE, 0.0, 1.3, 2),
        ev(2, "send", CAT_COMM, 0.15, 0.05, 0,
           {"dst": 1, "tag": 0, "nbytes": 8}),
        ev(2, "compute", CAT_PHASE, 0.0, 0.2, 1),
    ]


class TestActivities:
    def test_no_spans_is_a_typed_error(self):
        with pytest.raises(ProfileError, match="no span events"):
            load_activities([])

    def test_instants_only_is_a_typed_error(self):
        only_instant = [TraceEvent("step", "phase", "i", 0, 0, 0.0)]
        with pytest.raises(ProfileError, match="no span events"):
            load_activities(only_instant)

    def test_chrome_dict_without_trace_events_is_typed(self):
        with pytest.raises(ProfileError, match="traceEvents"):
            load_activities({"app": "lbmhd"})

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ProfileError, match="not found"):
            load_activities(tmp_path / "nope.json")

    def test_nesting_and_phase_resolution(self):
        acts = load_activities(late_sender_trace())
        by = {(a.rank, a.name, a.seq): a for a in acts}
        recv = by[(1, "recv", 0)]
        assert recv.depth == 1
        assert recv.phase == "compute"
        assert by[(1, "compute", 2)].depth == 0

    def test_chrome_round_trip_matches_direct(self):
        from repro.obs.export import chrome_trace

        tracer = Tracer(2)
        with tracer.span(0, "work", CAT_PHASE):
            with tracer.span(0, "send", CAT_COMM,
                             {"dst": 1, "tag": 0, "nbytes": 4}):
                pass
        with tracer.span(1, "work", CAT_PHASE):
            with tracer.span(1, "recv", CAT_COMM, {"src": 0, "tag": 0}):
                pass
        direct = load_activities(tracer)
        via_chrome = load_activities(chrome_trace(tracer))
        assert len(direct) == len(via_chrome) == 4
        for a, b in zip(direct, via_chrome):
            assert (a.rank, a.name, a.cat, a.depth, a.phase) == \
                   (b.rank, b.name, b.cat, b.depth, b.phase)
            assert a.start == pytest.approx(b.start, abs=1e-9)


class TestCausalGraphAndWaits:
    def test_fifo_matching(self):
        graph = build_graph(load_activities(late_sender_trace()))
        assert len(graph.edges) == 2
        assert graph.unmatched_sends == 0
        assert graph.unmatched_recvs == 0
        pairs = {(e.src, e.dst) for e in graph.edges}
        assert pairs == {(0, 1), (2, 1)}

    def test_unmatched_counted_not_dropped(self):
        acts = load_activities([
            ev(0, "send", CAT_COMM, 0.0, 0.1, 0,
               {"dst": 1, "tag": 7, "nbytes": 8}),
        ])
        graph = build_graph(acts, nranks=2)
        assert graph.edges == []
        assert graph.unmatched_sends == 1

    def test_late_sender_classified(self):
        graph = build_graph(load_activities(late_sender_trace()))
        classify_waits(graph)
        recv = next(a for a in graph.activities
                    if a.rank == 1 and a.name == "recv" and a.seq == 0)
        assert recv.wait_kind == WAIT_LATE_SENDER
        assert recv.wait == pytest.approx(0.9)
        assert recv.cause_rank == 0
        # the early message from rank 2 arrived long before its recv
        recv2 = next(a for a in graph.activities
                     if a.rank == 1 and a.name == "recv" and a.seq == 1)
        assert recv2.wait == 0.0

    def test_collective_wait_blames_last_arriver(self):
        acts = load_activities([
            ev(0, "barrier", CAT_SYNC, 0.2, 0.85, 0),
            ev(0, "work", CAT_PHASE, 0.0, 1.1, 1),
            ev(1, "barrier", CAT_SYNC, 1.0, 0.05, 0),
            ev(1, "work", CAT_PHASE, 0.0, 1.1, 1),
        ])
        graph = build_graph(acts)
        assert len(graph.rounds) == 1
        assert graph.rounds[0].last_rank == 1
        classify_waits(graph)
        b0 = next(a for a in graph.activities
                  if a.rank == 0 and a.name == "barrier")
        assert b0.wait_kind == WAIT_COLLECTIVE
        assert b0.wait == pytest.approx(0.8)
        assert b0.cause_rank == 1


class TestAttribution:
    def test_partition_is_exact(self):
        graph = build_graph(load_activities(late_sender_trace()))
        classify_waits(graph)
        attr = attribute(graph)
        assert attr.total_s == pytest.approx(2.5)
        assert (attr.compute_s + attr.comm_s + attr.wait_s
                == pytest.approx(attr.total_s, rel=1e-12))
        ph = attr.phase("compute")
        assert (ph.compute_s + ph.comm_s + ph.wait_s
                == pytest.approx(ph.total_s, rel=1e-12))
        assert attr.waits[WAIT_LATE_SENDER] == pytest.approx(0.9)

    def test_comm_outside_phases_goes_to_residual_bucket(self):
        acts = load_activities([
            ev(0, "send", CAT_COMM, 0.5, 0.1, 0,
               {"dst": 1, "tag": 0, "nbytes": 8}),
            ev(1, "recv", CAT_COMM, 0.5, 0.1, 0, {"src": 0, "tag": 0}),
        ])
        graph = build_graph(acts)
        classify_waits(graph)
        attr = attribute(graph)
        assert [p.name for p in attr.phases] == [BETWEEN_PHASES]
        assert attr.phase(BETWEEN_PHASES).compute_s == pytest.approx(0.0)

    def test_imbalance_is_max_over_mean(self):
        graph = build_graph(load_activities(late_sender_trace()))
        classify_waits(graph)
        ph = attribute(graph).phase("compute")
        # per-rank phase totals 1.0 / 1.3 / 0.2 -> max/mean = 1.56
        assert ph.imbalance(3) == pytest.approx(1.3 / (2.5 / 3))
        assert ph.imbalance_lost_s(3) == pytest.approx(
            (1.3 - 1.0) + (1.3 - 0.2))


class TestCriticalPath:
    def test_late_sender_fixture_known_path(self):
        graph = build_graph(load_activities(late_sender_trace()))
        classify_waits(graph)
        path = critical_path(graph)
        assert path.end_rank == 1
        assert path.rank_sequence == [0, 1]
        assert path.t_end == pytest.approx(1.3)
        assert path.length_s == pytest.approx(1.3)
        assert len(path.jumps) == 1
        jump = path.jumps[0]
        assert jump.kind == WAIT_LATE_SENDER
        assert (jump.from_rank, jump.to_rank) == (0, 1)
        assert jump.wait_s == pytest.approx(0.9)
        # segments tile the path with no overlap
        for a, b in zip(path.segments, path.segments[1:]):
            assert a.t1 == pytest.approx(b.t0)

    def test_path_bypasses_collective_wait(self):
        acts = load_activities([
            ev(0, "barrier", CAT_SYNC, 0.2, 0.85, 0),
            ev(0, "work", CAT_PHASE, 0.0, 1.1, 1),
            ev(1, "barrier", CAT_SYNC, 1.0, 0.05, 0),
            ev(1, "work", CAT_PHASE, 0.0, 1.1, 1),
        ])
        graph = build_graph(acts)
        classify_waits(graph)
        path = critical_path(graph)
        # rank 0 waited in the barrier, so the path never touches it:
        # it runs entirely through rank 1, the last arriver, with no
        # wait-state handoffs
        assert path.rank_sequence == [1]
        assert path.jumps == []
        # ... while attribution still accounts the 0.8 s barrier wait
        attr = attribute(graph)
        assert attr.waits[WAIT_COLLECTIVE] == pytest.approx(0.8)


class TestReportDocument:
    def test_analyze_is_deterministic(self):
        trace = late_sender_trace()
        a = json.dumps(build_report(trace), sort_keys=True)
        b = json.dumps(build_report(trace), sort_keys=True)
        assert a == b

    def test_schema_round_trip(self):
        doc = build_report(late_sender_trace())
        validate_report(doc)
        revived = json.loads(json.dumps(doc))
        validate_report(revived)
        assert revived == json.loads(json.dumps(doc))
        assert render_report(revived) == render_report(doc)

    def test_validation_names_missing_keys(self):
        doc = build_report(late_sender_trace())
        del doc["critical_path"]
        with pytest.raises(ProfileError, match="critical_path"):
            validate_report(doc)
        with pytest.raises(ProfileError, match="JSON object"):
            validate_report([1, 2])

    def test_validation_checks_attribution_sum(self):
        doc = build_report(late_sender_trace())
        doc["attribution"]["compute_s"] += 10.0
        with pytest.raises(ProfileError, match="does not sum"):
            validate_report(doc)

    def test_wait_fractions_bounded(self):
        doc = build_report(late_sender_trace())
        fractions = doc["wait_states"]["fractions"]
        assert 0.0 <= sum(fractions.values()) <= 1.0

    def test_model_join_flags_divergence(self):
        from repro.obs.runner import model_profile
        from repro.obs.profile import model_join

        graph = build_graph(load_activities([
            ev(0, "collision", CAT_PHASE, 0.0, 0.4, 0),
            ev(0, "stream", CAT_PHASE, 0.4, 0.6, 1),
            ev(1, "collision", CAT_PHASE, 0.0, 0.4, 0),
            ev(1, "stream", CAT_PHASE, 0.4, 0.6, 1),
        ]))
        classify_waits(graph)
        attr = attribute(graph)
        join = model_join(attr, "lbmhd", model_profile("lbmhd", 2),
                          "ES", threshold=0.25)
        rows = {r["phase"]: r for r in join["phases"]}
        # the trace spends 60% in stream; the ES model gives stream
        # ~23% of the collision+stream split, so stream must diverge
        assert rows["stream"]["diverged"] is True
        assert rows["stream"]["measured_frac"] == pytest.approx(0.6)
        # halo was never traced -> listed as unobserved, not dropped
        assert any("halo" in n for n in join["model_unobserved"])

    def test_every_traced_phase_joins(self):
        doc = build_report(late_sender_trace())
        # no app context -> join skipped but structure still present
        assert doc["model_join"] is None
        from repro.obs.runner import model_profile

        doc = build_report(late_sender_trace(), app="lbmhd",
                           profile=model_profile("lbmhd", 3))
        traced = {p["name"] for p in doc["attribution"]["phases"]}
        joined = {r["phase"] for r in doc["model_join"]["phases"]}
        assert traced == joined
        for row in doc["model_join"]["phases"]:
            assert "diverged" in row


class TestPipelineOnRealTrace:
    def test_tracer_source_end_to_end(self):
        tracer = Tracer(2)
        with tracer.span(0, "work", CAT_PHASE):
            with tracer.span(0, "send", CAT_COMM,
                             {"dst": 1, "tag": 0, "nbytes": 4}):
                pass
        with tracer.span(1, "work", CAT_PHASE):
            with tracer.span(1, "recv", CAT_COMM, {"src": 0, "tag": 0}):
                pass
        graph, attr, path = analyze(tracer)
        assert graph.nranks == 2
        assert len(graph.edges) == 1
        assert attr.total_s > 0
        assert path.segments
