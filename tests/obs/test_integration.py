"""End-to-end: runtime wiring, fault/checkpoint instants, trace runner."""

import json

import numpy as np
import pytest

from repro.obs import Tracer
from repro.obs.events import CAT_COMM, CAT_FAULT, CAT_PHASE, CAT_SYNC
from repro.runtime import ParallelJob, Transport
from repro.runtime.faults import FaultInjector, FaultPlan


class TestCommWiring:
    def test_comm_ops_emit_spans(self):
        tracer = Tracer(2)

        def prog(comm):
            with comm.phase("work"):
                if comm.rank == 0:
                    comm.send(np.zeros(4), dest=1, tag=3)
                else:
                    comm.recv(source=0, tag=3)
            comm.barrier()
            comm.allreduce(1.0)

        ParallelJob(2, tracer=tracer).run(prog)
        by_cat = {}
        for ev in tracer.events():
            by_cat.setdefault(ev.cat, set()).add(ev.name)
        assert by_cat[CAT_PHASE] == {"work"}
        assert {"send", "recv"} <= by_cat[CAT_COMM]
        assert "allreduce" in by_cat[CAT_COMM]
        assert "barrier" in by_cat[CAT_SYNC]
        send = next(e for e in tracer.events() if e.name == "send")
        # The race analyzer's site arg rides along; check it then drop it.
        args = dict(send.args)
        assert "in prog" in args.pop("site")
        assert args == {"dst": 1, "tag": 3, "nbytes": 32}

    def test_untraced_job_stays_silent(self):
        transport = Transport(2)
        ParallelJob(2, transport=transport).run(
            lambda c: c.allreduce(1.0))
        # NULL_TRACER has no buffers; nothing to assert beyond no error
        assert not hasattr(transport.tracer, "events")

    def test_split_comm_traces_on_global_track(self):
        tracer = Tracer(4)

        def prog(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                sub.send(np.zeros(2), dest=1)
            else:
                sub.recv(source=0)

        ParallelJob(4, tracer=tracer).run(prog)
        sends = [e for e in tracer.events() if e.name == "send"]
        # color 0 = global ranks {0, 2}, color 1 = {1, 3}: senders are
        # global 0 and 1, and args carry *global* destinations 2 and 3
        assert sorted(e.rank for e in sends) == [0, 1]
        assert sorted(e.args["dst"] for e in sends) == [2, 3]


class TestFaultAndCheckpointWiring:
    def test_fault_instants(self):
        # seeded plan: the fault schedule (and hence the assertion) is
        # deterministic across runs
        plan = FaultPlan(seed=7, drop=0.4, backoff_base=0.0)
        injector = FaultInjector(plan)
        transport = Transport(2, injector=injector)
        tracer = Tracer(2)

        def prog(comm):
            for i in range(8):
                if comm.rank == 0:
                    comm.send(np.zeros(1), dest=1, tag=i)
                else:
                    comm.recv(source=0, tag=i)

        ParallelJob(2, transport=transport, tracer=tracer).run(prog)
        faults = [e for e in tracer.events() if e.cat == CAT_FAULT]
        assert faults, "drop faults should emit instants"
        assert {e.name for e in faults} == {"drop"}
        assert all(e.args["src"] == 0 and e.args["dst"] == 1
                   for e in faults)
        assert transport.resend_count() == len(faults)

    def test_checkpoint_instants(self, tmp_path):
        from repro.resilience.checkpoint import Checkpointer

        tracer = Tracer(1)
        ck = Checkpointer(tmp_path, tracer=tracer)
        ck.save(3, 0, x=np.arange(4.0))
        state = ck.load(3, 0)
        assert np.array_equal(state["x"], np.arange(4.0))
        names = [e.name for e in tracer.events()]
        assert names == ["checkpoint-save", "checkpoint-load"]
        save = tracer.events()[0]
        assert save.cat == "checkpoint" and save.args["nbytes"] > 0


class TestTraceRunner:
    @pytest.mark.parametrize("app", ["lbmhd", "cactus", "gtc", "paratec"])
    def test_all_apps(self, app, tmp_path):
        from repro.obs.runner import trace_app

        run = trace_app(app, steps=1, outdir=tmp_path / app)
        doc = json.loads(run.trace_path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        assert {e["tid"] for e in spans} == set(range(run.nprocs))
        cats = {e["cat"] for e in spans}
        assert "comm" in cats and "phase" in cats
        metrics = json.loads(run.metrics_path.read_text())
        assert metrics["aggregate"]["nranks"] == run.nprocs
        assert metrics["virtual_time"]["makespan"] > 0
        assert metrics["model"]["gauges"]
        assert len(run.events_path.read_text().splitlines()) == \
            metrics["events"]

    def test_unknown_app_rejected(self):
        from repro.obs.runner import trace_app

        with pytest.raises(ValueError, match="unknown app"):
            trace_app("nope", outdir=None)

    def test_lbmhd_phases_present(self, tmp_path):
        from repro.obs.runner import trace_app

        run = trace_app("lbmhd", steps=2, nprocs=4, outdir=None)
        phase_names = {e.name for e in run.tracer.events()
                       if e.cat == "phase"}
        assert {"collision", "stream", "halo", "step"} <= phase_names
