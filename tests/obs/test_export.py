"""Exporters: Chrome trace_event schema, JSONL log, phase table."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    events_jsonl,
    phase_table,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)


def _sample_tracer():
    tr = Tracer(2)
    for rank in range(2):
        with tr.span(rank, "collision", "phase"):
            pass
        with tr.span(rank, "send", "comm", {"dst": 1 - rank, "nbytes": 64}):
            pass
        tr.instant(rank, "fault", "fault", {"kind": "drop"})
    return tr


class TestChromeTrace:
    def test_schema(self):
        doc = chrome_trace(_sample_tracer(), process_name="unit")
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        # required keys on every event
        for ev in events:
            assert {"ph", "pid", "tid", "name"} <= set(ev)
            assert ev["pid"] == 0
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["tid"]) for e in meta}
        assert ("process_name", 0) in names
        assert ("thread_name", 0) in names and ("thread_name", 1) in names
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 4
        for ev in spans:
            assert ev["dur"] >= 0 and ev["ts"] >= 0
            assert "seq" in ev["args"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 2
        assert all(ev["s"] == "t" for ev in instants)
        # one track per rank
        assert {e["tid"] for e in spans} == {0, 1}

    def test_json_serializable(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json",
                                  _sample_tracer())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_virtual_time_in_args(self):
        from repro.runtime import VirtualClocks

        clocks = VirtualClocks(1)
        tr = Tracer(1, clocks=clocks, advance_clocks=True)
        with tr.span(0, "w"):
            pass
        (span,) = [e for e in chrome_trace(tr)["traceEvents"]
                   if e["ph"] == "X"]
        assert span["args"]["t_virtual"] > 0


class TestJsonl:
    def test_deterministic_order_and_parse(self, tmp_path):
        tr = _sample_tracer()
        path = write_events_jsonl(tmp_path / "events.jsonl", tr)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tr)
        records = [json.loads(line) for line in lines]
        keys = [(r["rank"], r["seq"]) for r in records]
        assert keys == sorted(keys)

    def test_empty_tracer(self):
        assert events_jsonl(Tracer(1)) == ""


class TestPhaseTable:
    def test_contents(self):
        text = phase_table(_sample_tracer())
        assert "phase:collision" in text
        assert "comm:send" in text
        assert "total" in text
        # instants and non-selected categories don't appear
        assert "fault" not in text

    def test_empty(self):
        text = phase_table(Tracer(1))
        assert "total" in text


class TestMetricsJson:
    def test_accepts_registry_or_report(self, tmp_path):
        reg = MetricsRegistry(rank=0)
        reg.counter("n").inc(3)
        p1 = write_metrics_json(tmp_path / "a.json", reg)
        assert json.loads(p1.read_text())["counters"]["n"] == 3
        p2 = write_metrics_json(tmp_path / "b.json", {"custom": 1})
        assert json.loads(p2.read_text()) == {"custom": 1}
