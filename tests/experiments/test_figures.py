"""Figure data generators (the simulation output behind the pictures)."""

import numpy as np
import pytest

from repro.experiments import figures


class TestFigure1:
    def test_current_decays(self):
        fields = figures.figure1_current_decay(n=48, steps=(0, 60, 150))
        peaks = [np.abs(f).max() for f in fields]
        assert peaks[0] > peaks[1] > peaks[2] > 0

    def test_field_shapes(self):
        fields = figures.figure1_current_decay(n=32, steps=(0, 10))
        assert all(f.shape == (32, 32) for f in fields)


class TestSchematics:
    def test_figure2_lattice(self):
        data = figures.figure2_lattice()
        assert data["velocities"].shape == (9, 2)
        assert data["weights"].sum() == pytest.approx(1.0)
        assert (data["interpolation_fractions"] <= 1.0).all()

    def test_figure4_layouts(self):
        data = figures.figure4_layouts(nprocs=3)
        assert len(data["real_space_blocks"]) == 3
        assert set(data["column_owner"].values()) == {0, 1, 2}
        loads = data["loads"]
        assert loads.max() - loads.min() <= 10

    def test_figure6_exchange_pattern(self):
        data = figures.figure6_ghost_exchange(nprocs=4)
        assert data["messages"] > 0
        # 2x2 processor grid: every rank exchanges with the others.
        srcs = {s for s, _ in data["neighbor_pairs"]}
        assert srcs == {0, 1, 2, 3}

    def test_figure8_deposition(self):
        data = figures.figure8_deposition(n_particles=100)
        assert data["classic"].shape == data["gyro_averaged"].shape
        # Same total charge, different spatial distribution.
        assert data["classic"].sum() == pytest.approx(
            data["gyro_averaged"].sum(), rel=1e-10)
        assert not np.allclose(data["classic"], data["gyro_averaged"])


class TestSimulationFigures:
    def test_figure5_wave_evolves(self):
        initial, evolved = figures.figure5_substitute_wave(n=16, steps=8)
        assert initial.shape == evolved.shape
        assert np.abs(evolved - initial).max() > 1e-3

    def test_figure7_mode_structure(self):
        phi = figures.figure7_potential(nr=24, ntheta=32, mode=5,
                                        steps=2)
        spectrum = np.abs(np.fft.rfft(phi[12]))
        assert spectrum.argmax() == 5


class TestPgmWriter:
    def test_writes_valid_pgm(self, tmp_path):
        path = tmp_path / "x.pgm"
        figures.save_pgm(str(path), np.arange(12.0).reshape(3, 4))
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n4 3\n255\n")
        assert len(raw.split(b"255\n", 1)[1]) == 12

    def test_constant_field(self, tmp_path):
        path = tmp_path / "c.pgm"
        figures.save_pgm(str(path), np.ones((2, 2)))
        assert path.exists()
