"""Experiment drivers: every exhibit regenerates and matches shape."""

import numpy as np
import pytest

from repro.experiments import (
    build_figure9,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
    reference,
    render_figure9,
    render_table7,
)


@pytest.fixture(scope="module")
def tables():
    return {3: build_table3(), 4: build_table4(), 5: build_table5(),
            6: build_table6()}


class TestStaticTables:
    def test_table1_contents(self):
        text = build_table1()
        for name in ("Power3", "Power4", "Altix", "ES", "X1"):
            assert name in text
        assert "P^0.5" in text  # the torus bisection law

    def test_table2_contents(self):
        text = build_table2()
        for name, loc, *_ in reference.TABLE2:
            assert name in text and str(loc) in text


class TestModelTables:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_every_paper_cell_modeled(self, tables, n):
        """No blank model cell where the paper has a measurement."""
        table = tables[n]
        ref = getattr(reference, f"TABLE{n}")
        for (config, p, machine) in ref:
            assert table.cell(config, p, machine) is not None, \
                (n, config, p, machine)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_shape_within_3x_of_paper(self, tables, n):
        assert tables[n].shape_errors(tol_factor=3.0) == []

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_median_cell_error_tight(self, tables, n):
        """Typical (median) cell should be well inside the 3x gate."""
        table = tables[n]
        ref = getattr(reference, f"TABLE{n}")
        ratios = []
        for (config, p, machine), (gf, _) in ref.items():
            cell = table.cell(config, p, machine)
            ratios.append(max(cell.gflops_per_proc / gf,
                              gf / cell.gflops_per_proc))
        assert np.median(ratios) < 1.45

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_renders(self, tables, n):
        text = tables[n].render()
        assert f"Table {n}" in text
        md = tables[n].to_markdown()
        assert md.startswith("###")

    def test_es_highest_fraction_of_peak_everywhere(self, tables):
        """§7: 'the ES consistently sustained a significantly higher
        fraction of peak than the X1'."""
        points = {3: ("4096x4096", 64, "X1 (MPI)"),
                  4: ("432 atoms", 64, "X1"),
                  5: ("250x64x64", 64, "X1"),
                  6: ("100 part/cell", 64, "X1")}
        for n, (config, p, x1label) in points.items():
            es = tables[n].cell(config, p, "ES")
            x1 = tables[n].cell(config, p, x1label)
            assert es.pct_peak > x1.pct_peak, n


class TestSummaries:
    def test_table7_structure(self):
        model = build_table7()
        assert set(model) == {"LBMHD", "PARATEC", "CACTUS", "GTC",
                              "Average"}
        for app, ref_row in reference.TABLE7.items():
            for machine, ref_val in ref_row.items():
                got = model[app][machine]
                assert got / ref_val < 3.0 and ref_val / got < 3.0

    def test_table7_qualitative_ordering(self):
        model = build_table7()
        avg = model["Average"]
        assert avg["Power3"] > avg["Power4"] > avg["Altix"] > avg["X1"]
        assert model["GTC"]["X1"] < 1.0   # the one X1 win
        assert model["CACTUS"]["Power3"] > 10

    def test_figure9_bands(self):
        model = build_figure9()
        for app, ref_row in reference.FIGURE9.items():
            for machine, want in ref_row.items():
                assert abs(model[app][machine] - want) < 12.0

    def test_renders(self):
        assert "Table 7" in render_table7()
        assert "Figure 9" in render_figure9()
