"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Power3" in out and "2d-torus" in out

    @pytest.mark.parametrize("n", ["1", "2", "6", "7", "9"])
    def test_single_tables(self, n, capsys):
        assert main(["table", n]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table_range_checked(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "8"])

    def test_bands(self, capsys):
        assert main(["bands", "--ecut", "5.0", "--points", "1"]) == 0
        out = capsys.readouterr().out
        assert "indirect gap" in out

    def test_amr(self, capsys):
        assert main(["amr", "--size", "32", "--steps", "2"]) == 0
        assert "retained" in capsys.readouterr().out

    def test_apps_validation(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 4

    def test_chaos(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "4/4" in out

    def test_trace(self, capsys, tmp_path):
        out = str(tmp_path / "tr")
        assert main(["trace", "lbmhd", "--steps", "2", "--nprocs", "2",
                     "--out", out]) == 0
        text = capsys.readouterr().out
        assert "phase:collision" in text
        assert "virtual makespan" in text
        import json
        doc = json.loads((tmp_path / "tr" / "trace.json").read_text())
        assert doc["traceEvents"]
        assert (tmp_path / "tr" / "metrics.json").exists()

    def test_trace_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["trace", "nosuchapp"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLintCLI:
    BAD = ("import time\n"
           "def f(xs=[]):\n"
           "    return time.time()\n")

    def test_lint_src_clean_against_committed_baseline(self, capsys):
        assert main(["lint", "--check"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_flags_violations_in_tmp_tree(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(self.BAD)
        assert main(["lint", str(tmp_path), "--no-baseline"]) == 4
        out = capsys.readouterr().out
        assert "wall-clock" in out and "mutable-default" in out

    def test_update_baseline_then_clean(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(self.BAD)
        base = str(tmp_path / "baseline.json")
        assert main(["lint", str(tmp_path), "--baseline", base,
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--baseline", base,
                     "--check"]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_check_fails_on_stale_baseline(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        base = str(tmp_path / "baseline.json")
        main(["lint", str(tmp_path), "--baseline", base,
              "--update-baseline"])
        bad.write_text("x = 1\n")          # violations fixed
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--baseline", base]) == 0
        assert main(["lint", str(tmp_path), "--baseline", base,
                     "--check"]) == 4      # ratchet: tighten the baseline
        assert "stale" in capsys.readouterr().out

    def test_json_report_shape(self, capsys, tmp_path):
        import json
        (tmp_path / "bad.py").write_text(self.BAD)
        out = tmp_path / "lint.json"
        main(["lint", str(tmp_path), "--no-baseline",
              "--json", str(out)])
        doc = json.loads(out.read_text())
        assert doc["tool"] == "lint"
        assert doc["counts"]["wall-clock"] == 1
        assert {"rule", "severity", "path", "line", "message"} \
            <= set(doc["findings"][0])

    def test_enable_narrows_rules(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(self.BAD)
        assert main(["lint", str(tmp_path), "--no-baseline",
                     "--enable", "bare-assert"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out and "comm-direction-mismatch" in out

    def test_unknown_rule_is_config_error(self):
        assert main(["lint", "--enable", "no-such-rule"]) == 2


class TestAnalyzeCLI:
    def test_analyze_src_is_clean(self, capsys):
        assert main(["analyze", "--check"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_analyze_flags_deadlocking_driver(self, capsys, tmp_path):
        (tmp_path / "driver.py").write_text(
            "def step(comm, buf):\n"
            "    if comm.rank == 0:\n"
            "        comm.barrier()\n"
            "    comm.send(buf, dest=1, tag=4)\n"
            "    comm.recv(source=2, tag=9)\n")
        assert main(["analyze", str(tmp_path)]) == 4
        out = capsys.readouterr().out
        assert "rank-divergent-collective" in out
        assert "unmatched-tag" in out

    def test_analyze_trace_replay_flags_bad_trace(self, capsys, tmp_path):
        import json
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
             "args": {"name": "rank 0"}},
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
             "args": {"name": "rank 1"}},
            {"ph": "X", "name": "send", "cat": "comm", "pid": 1,
             "tid": 0, "ts": 0, "dur": 1,
             "args": {"dst": 1, "tag": 7, "nbytes": 8}},
        ]}))
        (tmp_path / "empty.py").write_text("x = 1\n")
        assert main(["analyze", str(tmp_path / "empty.py"),
                     "--trace", str(trace)]) == 4
        assert "trace-unconsumed-send" in capsys.readouterr().out

    def _racy_trace(self, tmp_path):
        import numpy as np

        from repro.obs.export import write_chrome_trace
        from repro.obs.tracer import Tracer
        from repro.runtime.comm import ParallelJob

        def racy(comm):
            if comm.rank == 0:
                buf = np.arange(4096, dtype=np.float64)
                comm.send(buf, 1, tag=7)
                buf = comm.reclaim(buf)     # no ack first: the bug
                buf[:] = -1.0
            elif comm.rank == 1:
                float(comm.recv(0, tag=7).sum())

        tracer = Tracer(2)
        ParallelJob(2, tracer=tracer).run(racy)
        return write_chrome_trace(tmp_path / "trace.json", tracer)

    def test_analyze_races_flags_racy_trace(self, capsys, tmp_path):
        trace = self._racy_trace(tmp_path)
        (tmp_path / "empty.py").write_text("x = 1\n")
        assert main(["analyze", str(tmp_path / "empty.py"), "--races",
                     "--deadlocks", "--trace", str(trace)]) == 4
        out = capsys.readouterr().out
        assert "trace-race" in out
        assert "rank 0" in out and "rank 1" in out

    def test_analyze_races_json_schema_and_exit_code(self, capsys,
                                                     tmp_path):
        import json
        trace = self._racy_trace(tmp_path)
        (tmp_path / "empty.py").write_text("x = 1\n")
        report = tmp_path / "races.json"
        assert main(["analyze", str(tmp_path / "empty.py"), "--races",
                     "--trace", str(trace),
                     "--json", str(report)]) == 4
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.analysis.races/1"
        assert doc["exit_code"] == 4
        assert doc["counts"]["trace-race"] == 1

    def test_analyze_corrupt_trace_is_config_error(self, capsys,
                                                   tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('{"traceEvents": [{"ph": "X", "na')  # truncated
        (tmp_path / "empty.py").write_text("x = 1\n")
        assert main(["analyze", str(tmp_path / "empty.py"), "--races",
                     "--trace", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "truncated or corrupt" in err
        assert "Traceback" not in err

    def test_analyze_trace_replay_accepts_recorded_run(self, capsys,
                                                       tmp_path):
        out = str(tmp_path / "tr")
        main(["trace", "lbmhd", "--steps", "2", "--nprocs", "2",
              "--out", out])
        capsys.readouterr()
        (tmp_path / "empty.py").write_text("x = 1\n")
        assert main(["analyze", str(tmp_path / "empty.py"), "--trace",
                     str(tmp_path / "tr" / "trace.json")]) == 0


class TestReportCLI:
    def test_report_run_and_analyze(self, capsys, tmp_path):
        out = str(tmp_path / "rep")
        assert main(["report", "lbmhd", "--steps", "2", "--nprocs", "2",
                     "--out", out]) == 0
        text = capsys.readouterr().out
        assert "performance attribution" in text
        assert "critical path" in text
        assert "measured vs modeled" in text
        import json
        doc = json.loads((tmp_path / "rep" / "report.json").read_text())
        from repro.obs.profile import validate_report
        validate_report(doc)
        assert doc["app"] == "lbmhd"

    def test_report_offline_from_trace(self, capsys, tmp_path):
        out = str(tmp_path / "tr")
        assert main(["trace", "lbmhd", "--steps", "2", "--nprocs", "2",
                     "--out", out]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", f"{out}/trace.json",
                     "--metrics", f"{out}/metrics.json"]) == 0
        text = capsys.readouterr().out
        assert "performance attribution" in text
        assert "measured vs modeled" in text

    def test_report_spanfree_trace_is_typed_error(self, capsys, tmp_path):
        import json
        trace = tmp_path / "empty.json"
        trace.write_text(json.dumps({"traceEvents": [
            {"ph": "i", "pid": 0, "tid": 0, "ts": 0.0, "name": "mark",
             "cat": "phase", "s": "t"}]}))
        assert main(["report", "--trace", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "repro report:" in err
        assert "no span events" in err
        assert "Traceback" not in err

    def test_report_without_app_or_trace_is_typed_error(self, capsys):
        assert main(["report"]) == 2
        assert "repro report:" in capsys.readouterr().err

    def test_trace_summary_writes_nothing(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "lbmhd", "--steps", "2", "--nprocs", "2",
                     "--summary"]) == 0
        text = capsys.readouterr().out
        assert "phase:collision" in text
        assert "wrote" not in text
        assert list(tmp_path.iterdir()) == []
