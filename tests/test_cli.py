"""Command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Power3" in out and "2d-torus" in out

    @pytest.mark.parametrize("n", ["1", "2", "6", "7", "9"])
    def test_single_tables(self, n, capsys):
        assert main(["table", n]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table_range_checked(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "8"])

    def test_bands(self, capsys):
        assert main(["bands", "--ecut", "5.0", "--points", "1"]) == 0
        out = capsys.readouterr().out
        assert "indirect gap" in out

    def test_amr(self, capsys):
        assert main(["amr", "--size", "32", "--steps", "2"]) == 0
        assert "retained" in capsys.readouterr().out

    def test_apps_validation(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 4

    def test_chaos(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "4/4" in out

    def test_trace(self, capsys, tmp_path):
        out = str(tmp_path / "tr")
        assert main(["trace", "lbmhd", "--steps", "2", "--nprocs", "2",
                     "--out", out]) == 0
        text = capsys.readouterr().out
        assert "phase:collision" in text
        assert "virtual makespan" in text
        import json
        doc = json.loads((tmp_path / "tr" / "trace.json").read_text())
        assert doc["traceEvents"]
        assert (tmp_path / "tr" / "metrics.json").exists()

    def test_trace_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["trace", "nosuchapp"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
