"""Invariant watchdogs: SDC detection, classification, rollback."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.resilience.health import (
    APPS,
    HealthConfig,
    HealthLog,
    HealthMonitor,
    SDCDetectedError,
    render_report,
    run_monitored,
    sdc_plan,
)


class _Transport:
    tracer = NULL_TRACER


class _SoloComm:
    """Single-rank stand-in: allreduce is the identity."""

    rank = 0
    size = 1
    transport = _Transport()

    def allreduce(self, value, op="sum"):
        return value


def _monitor(**cfg):
    return HealthMonitor(_SoloComm(), HealthConfig(**cfg))


class TestChecks:
    def test_conserved_within_threshold_passes(self):
        m = _monitor()
        m.check_conserved(0, "mass", 100.0, default_threshold=1e-8)
        m.check_conserved(1, "mass", 100.0 + 1e-7, default_threshold=1e-8)

    def test_conserved_drift_raises_with_diagnosis(self):
        m = _monitor()
        m.check_conserved(0, "mass", 100.0, default_threshold=1e-8)
        with pytest.raises(SDCDetectedError,
                           match="invariant 'mass' violated") as info:
            m.check_conserved(3, "mass", 150.0, default_threshold=1e-8)
        err = info.value
        assert (err.rank, err.step, err.monitor) == (0, 3, "mass")
        assert err.reference == 100.0
        assert err.drift == pytest.approx(0.5)

    def test_conserved_nan_is_a_violation(self):
        m = _monitor()
        m.check_conserved(0, "mass", 1.0, default_threshold=1e-8)
        with pytest.raises(SDCDetectedError):
            m.check_conserved(1, "mass", float("nan"),
                              default_threshold=1e-8)

    def test_conserved_scale_floors_near_zero_reference(self):
        m = _monitor()
        m.check_conserved(0, "mom", 1e-16, default_threshold=1e-8,
                          scale=256.0)
        # Absolute wiggle tiny vs. the scale: not a violation even
        # though it is enormous relative to the near-zero reference.
        m.check_conserved(1, "mom", 3e-16, default_threshold=1e-8,
                          scale=256.0)

    def test_bounded_allows_growth_within_factor(self):
        m = _monitor()
        m.check_bounded(0, "ham", 0.01, default_growth=50.0)
        m.check_bounded(1, "ham", 0.4, default_growth=50.0)
        with pytest.raises(SDCDetectedError):
            m.check_bounded(2, "ham", 0.6, default_growth=50.0)

    def test_monotone_tolerates_slack_but_not_rise(self):
        m = _monitor()
        m.check_monotone(0, "energy", -1.0, default_slack=1e-9)
        m.check_monotone(1, "energy", -1.5, default_slack=1e-9)
        with pytest.raises(SDCDetectedError):
            m.check_monotone(2, "energy", -1.2, default_slack=1e-9)

    def test_absolute_threshold_on_zero_reference(self):
        m = _monitor()
        m.check_absolute(0, "norm", 1e-12, default_threshold=1e-6)
        with pytest.raises(SDCDetectedError):
            m.check_absolute(1, "norm", 1e-3, default_threshold=1e-6)

    def test_guard_finite_passes_and_trips(self):
        m = _monitor()
        m.guard_finite(0, "finite", np.ones(4), np.zeros((2, 2)))
        bad = np.ones(4)
        bad[2] = np.nan
        with pytest.raises(SDCDetectedError, match="'finite'"):
            m.guard_finite(1, "finite", bad)

    def test_guard_finite_sees_complex_components(self):
        m = _monitor()
        c = np.ones(3, dtype=np.complex128)
        c[1] = 1.0 + 1j * np.inf
        with pytest.raises(SDCDetectedError):
            m.guard_finite(0, "finite", c)

    def test_threshold_override_by_name(self):
        m = _monitor(thresholds={"mass": 1.0})
        m.check_conserved(0, "mass", 100.0, default_threshold=1e-8)
        m.check_conserved(1, "mass", 150.0, default_threshold=1e-8)

    def test_due_cadence(self):
        m = _monitor(check_every=3)
        assert [m.due(s) for s in range(6)] == [
            False, False, True, False, False, True]

    def test_check_every_validated(self):
        with pytest.raises(ValueError):
            HealthConfig(check_every=0)


class TestHealthLog:
    def test_records_and_summary(self):
        log = HealthLog()
        m = HealthMonitor(_SoloComm(), HealthConfig(log=log))
        m.check_conserved(0, "mass", 100.0, default_threshold=1e-8)
        m.check_conserved(1, "mass", 100.0, default_threshold=1e-8)
        with pytest.raises(SDCDetectedError):
            m.check_conserved(2, "mass", 101.0, default_threshold=1e-8)
        assert len(log.records) == 3
        assert len(log.violations()) == 1
        (row,) = log.summary()
        assert row["monitor"] == "mass"
        assert row["checks"] == 3
        assert row["max_drift"] == pytest.approx(0.01)
        assert not row["ok"]

    def test_detection_without_log_still_raises(self):
        m = HealthMonitor(_SoloComm(), HealthConfig(log=None))
        m.check_conserved(0, "mass", 1.0, default_threshold=1e-8)
        with pytest.raises(SDCDetectedError):
            m.check_conserved(1, "mass", 2.0, default_threshold=1e-8)


class TestSDCRecovery:
    """End-to-end: inject, detect, roll back, finish clean (per app)."""

    #: bitwise apps match exactly; iterative apps to tolerance
    TOL = {"lbmhd": 0.0, "gtc": 0.0, "cactus": 1e-12, "paratec": 1e-10}

    @pytest.mark.parametrize("app", APPS)
    def test_detects_rolls_back_and_matches_clean(self, app, tmp_path):
        run = run_monitored(app, ckdir=str(tmp_path), sdc=True, seed=2004)
        # The planned flip and checkpoint damage both fired ...
        assert len(run.injector.sdc_records) == 1
        assert run.injector.counts()["ckpt-corrupt"] == 1
        # ... an invariant monitor saw the flip and the policy rolled
        # back (not merely restarted) ...
        (det,) = run.policy.detections()
        assert det.kind == "sdc"
        assert det.classification == "transient"
        assert det.action == "rollback"
        assert det.monitor is not None
        assert det.latency_steps == 0
        assert run.policy.rollbacks() == 1
        # ... and the replayed run matches the fault-free answer.
        assert run.rel_err <= self.TOL[app]
        assert run.log.violations()

    def test_rollback_skips_corrupted_checkpoint(self, tmp_path):
        run = run_monitored("lbmhd", ckdir=str(tmp_path), sdc=True,
                            seed=2004)
        assert run.bitwise
        # The flip-step checkpoint was damaged on rank 0, so the
        # rollback restored an older verified step — both fault layers
        # (memory flip + storage damage) were exercised together.
        counts = run.injector.counts()
        assert counts["sdc"] == 1
        assert counts["ckpt-corrupt"] == 1

    def test_late_detection_quarantines_tainted_checkpoint(self, tmp_path):
        # Seed 31337's PARATEC flip shrinks one coefficient quietly:
        # the normalization deviation stays below threshold for one
        # whole outer iteration, so the corrupt state is checkpointed
        # (CRC-clean) before the next entry check catches it.  The
        # rollback must quarantine that snapshot and resume from one
        # that predates the detection, or the replay re-detects the
        # identical violation and is misclassified as persistent.
        run = run_monitored("paratec", ckdir=str(tmp_path), sdc=True,
                            seed=31337)
        (det,) = run.policy.detections()
        assert det.latency_steps == 1
        assert det.action == "rollback"
        assert run.policy.rollbacks() == 1
        assert run.policy.final_failure is None
        assert run.rel_err <= self.TOL["paratec"]

    def test_persistent_corruption_aborts_with_diagnosis(self, tmp_path):
        run = run_monitored("lbmhd", ckdir=str(tmp_path), sdc=True,
                            seed=2004, persistent=True)
        assert run.rel_err == float("inf")
        final = run.policy.final_failure
        assert final is not None
        assert final.action == "abort"
        assert final.classification == "persistent"
        assert run.detail.startswith("aborted:")
        assert "persistent" in run.detail

    def test_clean_run_has_no_violations(self, tmp_path):
        run = run_monitored("lbmhd", ckdir=str(tmp_path), sdc=False)
        assert run.bitwise
        assert run.log.violations() == []
        assert run.policy.events == []

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown app"):
            run_monitored("spark", ckdir=str(tmp_path))

    def test_render_report_lists_monitors_and_recovery(self, tmp_path):
        run = run_monitored("gtc", ckdir=str(tmp_path), sdc=True,
                            seed=2004)
        text = render_report(run)
        assert "gtc.finite" in text
        assert "recovery:" in text
        assert "injected: bit" in text


class TestPlanAndMetrics:
    def test_sdc_plan_targets_one_site(self):
        plan = sdc_plan("lbmhd", 7)
        assert plan.sdc_rate == 1.0
        assert plan.sdc_arrays == ("f",)
        assert plan.ckpt_corrupt_step == plan.sdc_step
        with pytest.raises(KeyError):
            sdc_plan("nope", 7)

    def test_ingest_recovery_counts_events(self, tmp_path):
        run = run_monitored("lbmhd", ckdir=str(tmp_path), sdc=True,
                            seed=2004)
        reg = MetricsRegistry()
        reg.ingest_recovery(run.policy)
        out = reg.to_dict()
        assert out["counters"]["health.detections"] == 1
        assert out["counters"]["health.rollbacks"] == 1
        assert out["counters"]["health.failures.sdc"] == 1
        assert out["counters"]["health.actions.rollback"] == 1
        lat = out["histograms"]["health.detection_latency_steps"]
        assert lat["count"] == 1
        assert lat["max"] == 0
