"""Killing a *real* OS-process rank: detection, respawn, bit parity.

The injector test exercises the cooperative path (the worker announces
it is dying before ``os._exit``); the SIGKILL test exercises the hard
path — the process vanishes without a last word and the supervisor's
sentinel sweep must notice, poison the survivors, and respawn from the
checkpoint.  Both must land on the clean thread-backend answer exactly.
"""

import os
import signal
import tempfile

import numpy as np
import pytest

from repro.apps.lbmhd import orszag_tang
from repro.apps.lbmhd.parallel import run_parallel
from repro.resilience.chaos import run_kill_chaos
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.online import OnlineRunner
from repro.runtime import BackendError, ParallelJob, Transport
from repro.runtime.faults import FaultInjector, FaultPlan

NCELLS = 8  # per-rank state size for the ring program


class _SigkillRing:
    """Picklable rank program: checkpointed ring exchange that SIGKILLs
    one rank mid-run.  The flag file makes the kill one-shot, so the
    respawned replacement sails past the kill site."""

    def __init__(self, nsteps, ckdir, flag, kill_rank=None, kill_step=0):
        self.nsteps = nsteps
        self.checkpoint = Checkpointer(ckdir) if ckdir else None
        self.flag = flag
        self.kill_rank = kill_rank
        self.kill_step = kill_step

    def __call__(self, comm):
        x = np.sin(np.arange(NCELLS, dtype=np.float64) + comm.rank)
        ck = self.checkpoint

        def save(label):
            ck.save(label, comm.rank, x=x)

        def load(label):
            x[...] = ck.load(label, comm.rank)["x"]

        def body(step):
            if (self.kill_rank == comm.rank and step == self.kill_step
                    and not os.path.exists(self.flag)):
                with open(self.flag, "w") as fh:
                    fh.write(str(os.getpid()))
                os.kill(os.getpid(), signal.SIGKILL)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(float(x[-1]), dest=right, source=left)
            x[...] += 0.125 * (got - x)
            x[...] += 1e-3 * comm.allreduce(float(x.mean()))

        neighbors = {comm._global((comm.rank + d) % comm.size)
                     for d in (-1, 1)} - {comm._global(comm.rank)}
        runner = OnlineRunner(
            comm, nsteps=self.nsteps,
            checkpoint=ck, checkpoint_every=1 if ck else 0,
            save=save if ck else None, load=load if ck else None,
            snapshot=lambda: x.copy(),
            restore=lambda snap: np.copyto(x, snap),
            neighbors=neighbors)
        runner.run(body)
        return x.copy()


class TestInjectorKill:
    def test_lbmhd_injected_kill_respawns_and_matches_thread(self):
        nprocs, nsteps = 4, 5
        rho, u, B = orszag_tang(16, 16)
        clean = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps)

        inj = FaultInjector(FaultPlan(kill_rank=1, kill_step=3))
        tp = Transport(nprocs, timeout=10.0)
        with tempfile.TemporaryDirectory() as ck:
            faulted = run_parallel(
                rho, u, B, nprocs=nprocs, nsteps=nsteps, transport=tp,
                injector=inj, checkpoint=Checkpointer(ck),
                checkpoint_every=1, spares=1, backend="process")

        for a, b in zip(clean, faulted):
            assert np.array_equal(a, b)
        assert inj.kill_fired, "injector state must merge back from the worker"
        assert len(tp.repairs) == 1
        rec = tp.repairs[0]
        assert rec.mode == "respawn"
        assert rec.dead == (1,)


class TestSigkill:
    def test_sigkilled_rank_is_detected_and_respawned(self, tmp_path):
        nprocs, nsteps = 4, 5
        flag = str(tmp_path / "killed.flag")
        ckdir = str(tmp_path / "ck")

        ref = ParallelJob(nprocs).run(
            _SigkillRing(nsteps, None, flag))

        tp = Transport(nprocs, timeout=10.0)
        out = ParallelJob(nprocs, transport=tp, spares=1,
                          backend="process").run(
            _SigkillRing(nsteps, ckdir, flag, kill_rank=1, kill_step=3))

        assert os.path.exists(flag), "the kill must actually have fired"
        for a, b in zip(ref, out):
            assert np.array_equal(a, b)
        assert len(tp.repairs) == 1
        rec = tp.repairs[0]
        assert rec.mode == "respawn"
        assert rec.dead == (1,)


class TestShrinkRejected:
    def test_shrink_chaos_refuses_process_backend(self):
        with pytest.raises(BackendError, match="shrink"):
            run_kill_chaos(1, 3, shrink=True, apps=("lbmhd",),
                           backend="process")
