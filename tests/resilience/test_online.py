"""OnlineRunner end-to-end on a toy 1D diffusion app.

The toy mirrors the structure the real drivers hand the runner —
checkpoint shards, in-memory snapshots, halo p2p plus an allreduce per
step — but with state small enough to assert exact recovery semantics:
respawn must reproduce the unfaulted run *bit-identically* with disk
loads on nobody but the replacement, and shrink must redistribute the
domain and converge to the same physics (modulo reduction order).
"""

import numpy as np
import pytest

from repro.resilience.chaos import kill_plan
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.online import OnlineRunner
from repro.resilience.supervisor import (
    KIND_KILL,
    RecoveryPolicy,
    ResilientJob,
)
from repro.runtime import (
    FaultInjector,
    OnlineRecoveryError,
    ParallelJob,
    Transport,
)

NCELLS = 12
NSTEPS = 6


def _run_toy(nprocs, *, ckpt_dir=None, kill=None, spares=0,
             shrink=False, policy=None, resilient=False,
             nsteps=NSTEPS):
    """Periodic 1D diffusion, block-distributed over a ring.

    Each step exchanges one boundary cell with each neighbour, applies
    the 3-point stencil, and couples everyone through an allreduce.
    The global update is decomposition-independent, so a shrunken rerun
    lands on the same field (up to reduction order) and a respawned one
    is bitwise identical.  Returns (assembled field, transport, ckpt,
    injector).
    """
    tr = Transport(nprocs)
    injector = FaultInjector(kill_plan(
        kill_rank=kill[0], kill_step=kill[1],
        nprocs=nprocs)) if kill else None
    ckpt = Checkpointer(ckpt_dir) if ckpt_dir is not None else None
    start = np.sin(np.arange(NCELLS, dtype=np.float64))

    def prog(comm):
        per = NCELLS // comm.size
        x = start[comm.rank * per:(comm.rank + 1) * per].copy()

        def save(label):
            ckpt.save(label, comm.rank, x=x)

        def load(label):
            x[...] = ckpt.load(label, comm.rank)["x"]

        def shrink_hook(comm_, record):
            nonlocal x
            new_per = NCELLS // comm.size
            label = record.rollback_step
            if label > 0:
                old_per = NCELLS // nprocs
                g = np.empty(NCELLS)
                for old in range(nprocs):
                    g[old * old_per:(old + 1) * old_per] = \
                        ckpt.load(label, old)["x"]
            else:
                g = start.copy()
            x = g[comm.rank * new_per:(comm.rank + 1) * new_per].copy()
            runner.neighbors = _neighbor_set()

        def _neighbor_set():
            return {comm._global((comm.rank + d) % comm.size)
                    for d in (-1, 1)} - {comm._global(comm.rank)}

        def body(step):
            if injector is not None:
                injector.tick(comm.rank, step)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(float(x[-1]), dest=right, tag=11)
            comm.send(float(x[0]), dest=left, tag=12)
            from_left = comm.recv(source=left, tag=11)
            from_right = comm.recv(source=right, tag=12)
            ext = np.concatenate(([from_left], x, [from_right]))
            x[...] = ext[1:-1] + 0.25 * (ext[:-2] - 2.0 * ext[1:-1]
                                         + ext[2:])
            total = comm.allreduce(float(x.sum()))
            x[...] += 1e-4 * total / NCELLS

        runner = OnlineRunner(
            comm, nsteps=nsteps, checkpoint=ckpt, checkpoint_every=2,
            save=save if ckpt is not None else None,
            load=load if ckpt is not None else None,
            snapshot=lambda: x.copy(),
            restore=lambda snap: np.copyto(x, snap),
            policy=policy,
            on_shrink=shrink_hook if shrink else None,
            neighbors=_neighbor_set())
        runner.run(body)
        return comm.rank * (NCELLS // comm.size), x.copy()

    job = ParallelJob(nprocs, transport=tr, injector=injector,
                      spares=spares)
    if resilient:
        results = ResilientJob(job, policy=policy,
                               checkpoint=ckpt).run(prog)
    else:
        results = job.run(prog)
    out = np.full(NCELLS, np.nan)
    for res in results:
        if res is None:        # rank lost to a kill, shrunk around
            continue
        lo, arr = res
        out[lo:lo + arr.size] = arr
    assert not np.isnan(out).any()
    return out, tr, ckpt, injector


class TestRespawn:
    def test_bit_identical_with_localized_rollback(self, tmp_path):
        clean, *_ = _run_toy(3)
        got, tr, ckpt, injector = _run_toy(
            3, ckpt_dir=tmp_path, kill=(1, 3), spares=1)
        assert injector.kill_fired
        assert np.array_equal(got, clean)          # bitwise
        (rec,) = tr.repairs
        assert rec.mode == "respawn"
        assert rec.dead == (1,)
        assert rec.replacements == (1,)
        # only the replacement touched the checkpoint directory
        assert ckpt.load_counts == {1: 1}

    def test_rolled_back_is_replacement_plus_neighbors(self, tmp_path):
        _, tr, ckpt, _ = _run_toy(
            4, ckpt_dir=tmp_path, kill=(1, 3), spares=1)
        (rec,) = tr.repairs
        # ring neighbours of the dead rank 1 are 0 and 2; rank 3 keeps
        # its state untouched
        assert rec.rolled_back == (0, 1, 2)
        assert 3 in rec.survivors
        assert set(ckpt.load_counts) == {1}

    def test_policy_records_online_respawn_event(self, tmp_path):
        policy = RecoveryPolicy()
        _run_toy(3, ckpt_dir=tmp_path, kill=(1, 3), spares=1,
                 policy=policy)
        (ev,) = policy.events
        assert ev.kind == KIND_KILL
        assert ev.action == "online-respawn"
        assert ev.rank == 1
        assert ev.step == 3


class TestShrink:
    def test_redistributes_and_matches_clean_physics(self, tmp_path):
        clean, *_ = _run_toy(3)
        got, tr, ckpt, _ = _run_toy(
            3, ckpt_dir=tmp_path, kill=(1, 3), spares=0, shrink=True)
        # reduction order differs on 2 ranks; physics must not
        np.testing.assert_allclose(got, clean, rtol=1e-12, atol=1e-13)
        (rec,) = tr.repairs
        assert rec.mode == "shrink"
        assert rec.dead == (1,)
        assert rec.replacements == ()

    def test_shrink_without_checkpoint_restarts_from_initial(self):
        clean, *_ = _run_toy(3)
        got, tr, _, _ = _run_toy(3, kill=(1, 3), spares=0, shrink=True)
        np.testing.assert_allclose(got, clean, rtol=1e-12, atol=1e-13)
        assert tr.repairs[-1].rollback_step == 0


class TestDegradation:
    def test_kill_without_spares_surfaces_root_cause(self, tmp_path):
        # OnlineRecoveryError ("no spares left and no shrink hook") is
        # an *innocent* symptom: the job reports the kill itself so the
        # restart supervisor classifies the fault correctly.
        with pytest.raises(RuntimeError, match="injected kill"):
            _run_toy(3, ckpt_dir=tmp_path, kill=(1, 3), spares=0)

    def test_online_recovery_error_is_innocent(self):
        # Sanity: the typed degradation error exists and is filtered
        # out of root-cause reporting, never raised bare to the caller.
        with pytest.raises(RuntimeError) as ei:
            _run_toy(3, kill=(1, 3), spares=0)
        assert not isinstance(ei.value.__cause__, OnlineRecoveryError)

    def test_resilient_job_degrades_to_full_restart(self, tmp_path):
        clean, *_ = _run_toy(3)
        policy = RecoveryPolicy(backoff_base=0.0, jitter=False)
        got, tr, ckpt, injector = _run_toy(
            3, ckpt_dir=tmp_path, kill=(1, 3), spares=0,
            policy=policy, resilient=True)
        assert injector.kill_fired
        assert np.array_equal(got, clean)          # bitwise
        ev = policy.events[0]
        assert ev.kind == KIND_KILL
        assert ev.action == "restart"
        assert ev.rank == 1
        # no online repair happened: the whole job reloaded instead,
        # so every rank shows a checkpoint load
        assert not tr.repairs
        assert set(ckpt.load_counts) == {0, 1, 2}
