"""Shared failure taxonomy: exit codes and step-error classification."""

import pytest

from repro.resilience.failures import (
    EXIT_CHECK,
    EXIT_CONFIG,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_RUN,
    FATAL,
    PERSISTENT,
    TRANSIENT,
    FatalStepError,
    PersistentStepError,
    StepError,
    StepTimeoutError,
    TransientStepError,
    classify_exit,
    classify_failure,
)


class TestExitCodes:
    def test_codes_are_a_stable_contract(self):
        assert (EXIT_OK, EXIT_ERROR, EXIT_CONFIG, EXIT_RUN,
                EXIT_CHECK, EXIT_PARTIAL) == (0, 1, 2, 3, 4, 5)

    def test_success_classifies_to_none(self):
        assert classify_exit(EXIT_OK) is None

    def test_config_errors_are_fatal(self):
        assert classify_exit(EXIT_CONFIG) == FATAL

    def test_check_and_partial_are_persistent(self):
        assert classify_exit(EXIT_CHECK) == PERSISTENT
        assert classify_exit(EXIT_PARTIAL) == PERSISTENT

    def test_everything_else_is_transient(self):
        assert classify_exit(EXIT_ERROR) == TRANSIENT
        assert classify_exit(EXIT_RUN) == TRANSIENT
        assert classify_exit(-9) == TRANSIENT    # SIGKILL death
        assert classify_exit(137) == TRANSIENT


class TestStepErrors:
    def test_typed_errors_carry_their_class(self):
        assert classify_failure(TransientStepError("x")) == TRANSIENT
        assert classify_failure(PersistentStepError("x")) == PERSISTENT
        assert classify_failure(FatalStepError("x")) == FATAL

    def test_timeout_is_a_transient(self):
        err = StepTimeoutError("budget exceeded")
        assert isinstance(err, TransientStepError)
        assert classify_failure(err) == TRANSIENT

    def test_config_shaped_exceptions_are_fatal(self):
        assert classify_failure(ValueError("bad")) == FATAL
        assert classify_failure(TypeError("bad")) == FATAL
        assert classify_failure(KeyError("bad")) == FATAL

    def test_unknown_exceptions_are_transient(self):
        assert classify_failure(OSError("flaky disk")) == TRANSIENT
        assert classify_failure(RuntimeError("??")) == TRANSIENT

    def test_hierarchy_is_catchable_as_steperror(self):
        with pytest.raises(StepError):
            raise StepTimeoutError("x")


class TestCliContract:
    """The CLI's documented exit codes line up with the taxonomy."""

    def test_cli_docstring_documents_the_codes(self):
        from repro import cli

        for code in ("0", "1", "2", "3", "4", "5"):
            assert f"\n    {code}  " in cli.__doc__
