"""Checkpointer: atomic per-rank .npz snapshots and consistency logic."""

import numpy as np
import pytest

from repro.resilience import Checkpointer, ResilientJob
from repro.runtime import FaultInjector, FaultPlan, ParallelJob, RankCrashError


class TestRoundtrip:
    def test_bitwise_roundtrip(self, tmp_path):
        ck = Checkpointer(tmp_path)
        f = np.random.default_rng(0).standard_normal((3, 5))
        c = (np.random.default_rng(1).standard_normal(4)
             + 1j * np.random.default_rng(2).standard_normal(4))
        tags = np.arange(7, dtype=np.int64)
        ck.save(2, 0, f=f, c=c, tags=tags, t=np.float64(0.125))
        data = ck.load(2, 0)
        assert np.array_equal(data["f"], f)
        assert np.array_equal(data["c"], c)
        assert data["c"].dtype == np.complex128
        assert np.array_equal(data["tags"], tags)
        assert data["tags"].dtype == np.int64
        assert float(data["t"][()]) == 0.125

    def test_empty_arrays_roundtrip(self, tmp_path):
        ck = Checkpointer(tmp_path)
        ck.save(1, 0, r=np.empty(0), tag=np.empty(0, dtype=np.int64))
        data = ck.load(1, 0)
        assert data["r"].shape == (0,)

    def test_object_payload_rejected(self, tmp_path):
        ck = Checkpointer(tmp_path)
        with pytest.raises(TypeError, match="not numeric"):
            ck.save(0, 0, bad=np.array([object()]))

    def test_no_temp_files_left(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in range(4):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(2) * step)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if not p.name.endswith(".npz")]
        assert leftovers == []


class TestConsistency:
    def test_latest_consistent_requires_all_ranks(self, tmp_path):
        ck = Checkpointer(tmp_path)
        assert ck.latest_consistent(2) is None
        ck.save(1, 0, x=np.ones(1))
        ck.save(1, 1, x=np.ones(1))
        ck.save(2, 0, x=np.ones(1))      # rank 1 never finished step 2
        assert ck.latest_consistent(2) == 1
        ck.save(2, 1, x=np.ones(1))
        assert ck.latest_consistent(2) == 2

    def test_consistent_steps_sorted(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in (3, 1, 2):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(1))
        assert ck.consistent_steps(2) == [1, 2, 3]

    def test_prune_keeps_newest_per_rank(self, tmp_path):
        ck = Checkpointer(tmp_path, keep=2)
        for step in range(5):
            ck.save(step, 0, x=np.ones(1))
        assert ck.rank_steps(0) == [3, 4]

    def test_clear(self, tmp_path):
        ck = Checkpointer(tmp_path)
        ck.save(1, 0, x=np.ones(1))
        ck.clear()
        assert ck.rank_steps(0) == []


class TestSupervisor:
    def test_restart_on_crash_resumes_and_finishes(self, tmp_path):
        ck = Checkpointer(tmp_path)
        injector = FaultInjector(FaultPlan(crash_rank=1, crash_step=2))
        job = ParallelJob(2, injector=injector)
        supervised = ResilientJob(job)

        def prog(comm):
            latest = comm.bcast(ck.latest_consistent(comm.size)
                                if comm.rank == 0 else None)
            acc = float(ck.load(latest, comm.rank)["acc"][()]) \
                if latest is not None else 0.0
            start = latest or 0
            for step in range(start, 4):
                injector.tick(comm.rank, step)
                acc += comm.allreduce(comm.rank + 1)
                ck.save(step + 1, comm.rank, acc=np.float64(acc))
            return acc

        out = supervised.run(prog)
        assert out == [12.0, 12.0]      # 4 steps x allreduce(1+2)
        assert supervised.restarts == 1
        assert injector.crash_fired

    def test_restart_budget_exhausted_reraises(self):
        injector = FaultInjector(FaultPlan(crash_rank=0, crash_step=0))
        supervised = ResilientJob(ParallelJob(1, injector=injector),
                                  max_restarts=0)

        def prog(comm):
            injector.tick(comm.rank, 0)

        with pytest.raises(RuntimeError, match="injected crash") as info:
            supervised.run(prog)
        assert isinstance(info.value.__cause__, RankCrashError)

    def test_non_crash_errors_not_retried(self):
        calls = []
        supervised = ResilientJob(ParallelJob(1), max_restarts=5)

        def prog(comm):
            calls.append(1)
            raise ValueError("genuine bug")

        with pytest.raises(RuntimeError, match="genuine bug"):
            supervised.run(prog)
        assert len(calls) == 1          # restarts must not mask bugs
