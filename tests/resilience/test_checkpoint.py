"""Checkpointer: atomic per-rank .npz snapshots and consistency logic."""

import numpy as np
import pytest

from repro.resilience import (
    Checkpointer,
    CheckpointCorruptError,
    CheckpointError,
    RecoveryPolicy,
    ResilientJob,
    SDCDetectedError,
)
from repro.runtime import FaultInjector, FaultPlan, ParallelJob, RankCrashError


class TestRoundtrip:
    def test_bitwise_roundtrip(self, tmp_path):
        ck = Checkpointer(tmp_path)
        f = np.random.default_rng(0).standard_normal((3, 5))
        c = (np.random.default_rng(1).standard_normal(4)
             + 1j * np.random.default_rng(2).standard_normal(4))
        tags = np.arange(7, dtype=np.int64)
        ck.save(2, 0, f=f, c=c, tags=tags, t=np.float64(0.125))
        data = ck.load(2, 0)
        assert np.array_equal(data["f"], f)
        assert np.array_equal(data["c"], c)
        assert data["c"].dtype == np.complex128
        assert np.array_equal(data["tags"], tags)
        assert data["tags"].dtype == np.int64
        assert float(data["t"][()]) == 0.125

    def test_empty_arrays_roundtrip(self, tmp_path):
        ck = Checkpointer(tmp_path)
        ck.save(1, 0, r=np.empty(0), tag=np.empty(0, dtype=np.int64))
        data = ck.load(1, 0)
        assert data["r"].shape == (0,)

    def test_object_payload_rejected(self, tmp_path):
        ck = Checkpointer(tmp_path)
        with pytest.raises(TypeError, match="not numeric"):
            ck.save(0, 0, bad=np.array([object()]))

    def test_no_temp_files_left(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in range(4):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(2) * step)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if not p.name.endswith(".npz")]
        assert leftovers == []


class TestConsistency:
    def test_latest_consistent_requires_all_ranks(self, tmp_path):
        ck = Checkpointer(tmp_path)
        assert ck.latest_consistent(2) is None
        ck.save(1, 0, x=np.ones(1))
        ck.save(1, 1, x=np.ones(1))
        ck.save(2, 0, x=np.ones(1))      # rank 1 never finished step 2
        assert ck.latest_consistent(2) == 1
        ck.save(2, 1, x=np.ones(1))
        assert ck.latest_consistent(2) == 2

    def test_consistent_steps_sorted(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in (3, 1, 2):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(1))
        assert ck.consistent_steps(2) == [1, 2, 3]

    def test_prune_keeps_newest_per_rank(self, tmp_path):
        ck = Checkpointer(tmp_path, keep=2)
        for step in range(5):
            ck.save(step, 0, x=np.ones(1))
        assert ck.rank_steps(0) == [3, 4]

    def test_clear(self, tmp_path):
        ck = Checkpointer(tmp_path)
        ck.save(1, 0, x=np.ones(1))
        ck.clear()
        assert ck.rank_steps(0) == []


class TestIntegrity:
    def test_load_missing_names_rank_and_step(self, tmp_path):
        ck = Checkpointer(tmp_path)
        with pytest.raises(CheckpointError,
                           match="step 3 rank 1: file missing") as info:
            ck.load(3, 1)
        assert (info.value.step, info.value.rank) == (3, 1)

    def test_load_truncated_raises_unreadable(self, tmp_path):
        ck = Checkpointer(tmp_path)
        path = ck.save(2, 0, x=np.arange(64.0))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(CheckpointError,
                           match="step 2 rank 0: unreadable archive"):
            ck.load(2, 0)

    def test_stale_crc_detected_as_corruption(self, tmp_path):
        ck = Checkpointer(tmp_path)
        path = ck.save(1, 0, x=np.arange(4.0))
        with np.load(path) as z:
            raw = {name: z[name] for name in z.files}
        raw["x"] = raw["x"] + 1.0       # payload changed, CRC stale
        with open(path, "wb") as fh:
            np.savez(fh, **raw)
        with pytest.raises(CheckpointCorruptError,
                           match="array 'x' CRC mismatch"):
            ck.load(1, 0)
        assert not ck.verified(1, 0)
        assert ck.load(1, 0, verify=False)["x"][0] == 1.0

    def test_crc_fields_reserved(self, tmp_path):
        ck = Checkpointer(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            ck.save(0, 0, _crc_x=np.ones(1))

    def test_consistent_steps_skip_unreadable_files(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in (1, 2):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(8) * step)
        bad = tmp_path / "step00000002.rank00001.npz"
        bad.write_bytes(b"\x00" * 32)   # exists but is not an archive
        assert ck.consistent_steps(2) == [1]
        assert ck.latest_consistent(2) == 1

    def test_injected_corruption_skipped_by_latest_verified(self, tmp_path):
        injector = FaultInjector(FaultPlan(
            seed=3, ckpt_corrupt=1.0, ckpt_corrupt_rank=0,
            ckpt_corrupt_step=2))
        ck = Checkpointer(tmp_path, injector=injector)
        for step in (1, 2):
            ck.save(step, 0, x=np.arange(128.0) * step)
        assert injector.counts() == {"ckpt-corrupt": 1}
        assert not ck.verified(2, 0)
        assert ck.verified(1, 0)
        # The damaged file exists and may even be structurally readable,
        # but the rollback target must be the older, CRC-clean step.
        assert ck.latest_verified(1) == 1
        # One-shot: re-writing the same step after rollback saves clean.
        ck.save(2, 0, x=np.arange(128.0) * 2)
        assert ck.latest_verified(1) == 2

    def test_quarantine_distrusts_later_steps_until_resaved(self, tmp_path):
        ck = Checkpointer(tmp_path)
        for step in (1, 2, 3):
            for rank in range(2):
                ck.save(step, rank, x=np.ones(4) * step)
        assert ck.latest_verified(2) == 3
        # A detection at step 2 taints everything checkpointed from
        # then on, even though the files are CRC-clean: the CRC proves
        # the bytes on disk, not the health of the state they froze.
        ck.quarantine(2)
        assert ck.verified_steps(2) == [1]
        assert ck.latest_verified(2) == 1
        # The replay re-earns trust label by label as it overwrites.
        ck.save(2, 0, x=np.ones(4) * 2)
        ck.save(2, 1, x=np.ones(4) * 2)
        assert ck.latest_verified(2) == 2
        assert 3 in ck._quarantined

    def test_pre_crc_checkpoints_still_load(self, tmp_path):
        ck = Checkpointer(tmp_path)
        with open(tmp_path / "step00000001.rank00000.npz", "wb") as fh:
            np.savez(fh, x=np.arange(3.0))     # no _crc_ fields
        assert np.array_equal(ck.load(1, 0)["x"], np.arange(3.0))
        assert ck.verified(1, 0)


class TestRecoveryPolicy:
    def _sdc(self, step=3, monitor="mass"):
        return SDCDetectedError(1, step, monitor, 2.0, 1.0, 1.0, 1e-8)

    def test_first_sdc_is_transient_rollback(self):
        policy = RecoveryPolicy(max_restarts=2)
        ev = policy.decide(self._sdc(), attempt=0)
        assert (ev.kind, ev.classification, ev.action) == \
            ("sdc", "transient", "rollback")
        assert (ev.rank, ev.step, ev.monitor) == (1, 3, "mass")

    def test_repeat_signature_is_persistent_abort(self):
        policy = RecoveryPolicy(max_restarts=5)
        policy.decide(self._sdc(), attempt=0)
        ev = policy.decide(self._sdc(), attempt=1)
        assert (ev.classification, ev.action) == ("persistent", "abort")
        # A *different* site is a new transient, not the same stuck-at.
        ev2 = policy.decide(self._sdc(step=5), attempt=1)
        assert (ev2.classification, ev2.action) == \
            ("transient", "rollback")

    def test_crash_restarts_until_budget_exhausted(self):
        policy = RecoveryPolicy(max_restarts=1)
        ev = policy.decide(RankCrashError(0, 2), attempt=0)
        assert (ev.kind, ev.action) == ("crash", "restart")
        ev = policy.decide(RankCrashError(0, 4), attempt=1)
        assert ev.action == "abort"

    def test_fatal_errors_never_retried(self):
        policy = RecoveryPolicy(max_restarts=5)
        ev = policy.decide(ValueError("genuine bug"), attempt=0)
        assert (ev.kind, ev.classification, ev.action) == \
            ("fatal", "fatal", "abort")

    def test_retry_gates(self):
        policy = RecoveryPolicy(max_restarts=5, retry_sdc=False)
        ev = policy.decide(self._sdc(), attempt=0)
        assert ev.action == "abort"

    def test_backoff_schedule_doubles_and_caps(self):
        policy = RecoveryPolicy(backoff_base=0.02, backoff_max=0.05,
                                jitter=False)
        assert [policy.backoff(a) for a in range(4)] == \
            [0.02, 0.04, 0.05, 0.05]

    def test_jittered_backoff_is_decorrelated_and_bounded(self):
        # Decorrelated jitter: each pause is uniform in
        # [base, 3 * previous], clipped at the cap.
        policy = RecoveryPolicy(backoff_base=0.02, backoff_max=0.5,
                                seed=42)
        prev = 0.02
        draws = []
        for attempt in range(50):
            pause = policy.backoff(attempt)
            assert 0.02 <= pause <= 0.5
            assert pause <= max(3.0 * prev, 0.02) + 1e-12
            draws.append(pause)
            prev = pause
        assert len(set(draws)) > 10      # actually jittered, not a ramp
        # Seeded: the same policy replays the same schedule.
        replay = RecoveryPolicy(backoff_base=0.02, backoff_max=0.5,
                                seed=42)
        assert [replay.backoff(a) for a in range(50)] == draws
        # A different seed gives a different schedule.
        other = RecoveryPolicy(backoff_base=0.02, backoff_max=0.5,
                               seed=43)
        assert [other.backoff(a) for a in range(50)] != draws

    def test_jittered_backoff_resets_with_policy(self):
        policy = RecoveryPolicy(backoff_base=0.02, backoff_max=0.5,
                                seed=7)
        first = [policy.backoff(a) for a in range(5)]
        policy.reset()
        assert [policy.backoff(a) for a in range(5)] == first

    def test_zero_base_backoff_stays_zero(self):
        policy = RecoveryPolicy(backoff_base=0.0)
        assert [policy.backoff(a) for a in range(3)] == [0.0, 0.0, 0.0]

    def test_describe_is_diagnostic(self):
        policy = RecoveryPolicy()
        ev = policy.decide(self._sdc(), attempt=0)
        text = ev.describe()
        assert "transient sdc [mass]" in text
        assert "rank 1 at step 3" in text
        assert "rollback" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base=-0.1)


class TestSupervisor:
    def test_restart_on_crash_resumes_and_finishes(self, tmp_path):
        ck = Checkpointer(tmp_path)
        injector = FaultInjector(FaultPlan(crash_rank=1, crash_step=2))
        job = ParallelJob(2, injector=injector)
        supervised = ResilientJob(job)

        def prog(comm):
            latest = comm.bcast(ck.latest_consistent(comm.size)
                                if comm.rank == 0 else None)
            acc = float(ck.load(latest, comm.rank)["acc"][()]) \
                if latest is not None else 0.0
            start = latest or 0
            for step in range(start, 4):
                injector.tick(comm.rank, step)
                acc += comm.allreduce(comm.rank + 1)
                ck.save(step + 1, comm.rank, acc=np.float64(acc))
            return acc

        out = supervised.run(prog)
        assert out == [12.0, 12.0]      # 4 steps x allreduce(1+2)
        assert supervised.restarts == 1
        assert injector.crash_fired

    def test_restart_budget_exhausted_reraises(self):
        injector = FaultInjector(FaultPlan(crash_rank=0, crash_step=0))
        supervised = ResilientJob(ParallelJob(1, injector=injector),
                                  max_restarts=0)

        def prog(comm):
            injector.tick(comm.rank, 0)

        with pytest.raises(RuntimeError, match="injected crash") as info:
            supervised.run(prog)
        assert isinstance(info.value.__cause__, RankCrashError)

    def test_non_crash_errors_not_retried(self):
        calls = []
        supervised = ResilientJob(ParallelJob(1), max_restarts=5)

        def prog(comm):
            calls.append(1)
            raise ValueError("genuine bug")

        with pytest.raises(RuntimeError, match="genuine bug"):
            supervised.run(prog)
        assert len(calls) == 1          # restarts must not mask bugs
        final = supervised.policy.final_failure
        assert final is not None
        assert (final.kind, final.exception) == ("fatal", "ValueError")

    def test_backoff_slept_and_recorded(self):
        slept = []
        policy = RecoveryPolicy(max_restarts=3, backoff_base=0.01,
                                backoff_max=1.0, jitter=False)
        supervised = ResilientJob(ParallelJob(1), policy=policy,
                                  sleep=slept.append)
        crashes = iter((True, True, False))

        def prog(comm):
            # Two distinct crashes (different steps -> fresh signatures),
            # then success.
            if next(crashes):
                raise RankCrashError(0, len(slept))
            return "done"

        assert supervised.run(prog) == ["done"]
        assert slept == [0.01, 0.02]            # base * 2**attempt
        assert supervised.backoffs == slept
        assert supervised.restarts == 2
        assert [ev.backoff for ev in policy.events] == slept

    def test_final_failure_names_rank_and_step(self):
        injector = FaultInjector(FaultPlan(crash_rank=0, crash_step=1))
        policy = RecoveryPolicy(max_restarts=0, backoff_base=0.0)
        supervised = ResilientJob(ParallelJob(1, injector=injector),
                                  policy=policy)

        def prog(comm):
            injector.tick(comm.rank, 1)

        with pytest.raises(RuntimeError, match="injected crash"):
            supervised.run(prog)
        final = policy.final_failure
        assert final is not None
        assert (final.kind, final.action) == ("crash", "abort")
        assert (final.rank, final.step) == (0, 1)
        assert final.exception == "RankCrashError"
        assert "rank 0 at step 1" in final.describe()

    def test_rerun_resets_history(self):
        policy = RecoveryPolicy(max_restarts=1, backoff_base=0.0)
        supervised = ResilientJob(ParallelJob(1), policy=policy,
                                  sleep=lambda _: None)
        state = {"crashed": False}

        def prog(comm):
            if not state["crashed"]:
                state["crashed"] = True
                raise RankCrashError(0, 0)
            return 1

        assert supervised.run(prog) == [1]
        assert supervised.restarts == 1
        state["crashed"] = False
        assert supervised.run(prog) == [1]
        # Same signature again, but a fresh run() starts a fresh
        # history: still classified transient, not persistent.
        assert supervised.restarts == 1
        assert all(ev.classification == "transient"
                   for ev in policy.events)
