"""Worker pool semantics: retries, taxonomy, timeouts, caching."""

import pytest

from repro.campaign.engine import (
    CampaignError,
    load_campaign_dir,
    run_campaign,
)
from repro.campaign.journal import replay_journal
from repro.campaign.spec import parse_spec
from repro.obs.metrics import MetricsRegistry


def _spec(steps, **over):
    raw = {"campaign": "pool-t", "seed": 11, "workers": 3,
           "defaults": {"timeout_s": 20, "max_retries": 2},
           "steps": steps}
    raw.update(over)
    return parse_spec(raw)


def _probe(i, **over):
    step = {"id": f"p{i}", "kind": "probe", "payload": f"p{i}"}
    step.update(over)
    return step


class TestHappyPath:
    def test_diamond_dag_runs_in_dependency_order(self, tmp_path):
        spec = _spec([
            _probe(0),
            _probe(1, after=["p0"]),
            _probe(2, after=["p0"]),
            {"id": "join", "kind": "summary", "after": ["p1", "p2"]},
        ])
        res = run_campaign(spec, tmp_path / "c")
        assert res.status == "ok"
        assert res.exit_code == 0
        assert res.outcome.counts() == {"ok": 4, "cached": 0,
                                        "failed": 0, "skipped": 0}
        join = res.outcome.steps["join"]
        assert join.status == "ok"

    def test_summary_sees_dependency_results(self, tmp_path):
        spec = _spec([
            _probe(0),
            {"id": "join", "kind": "summary", "after": ["p0"]},
        ])
        res = run_campaign(spec, tmp_path / "c")
        from repro.campaign.store import ResultStore
        store = ResultStore(tmp_path / "c" / "store")
        doc = store.get(res.outcome.steps["join"].key)
        assert doc["result"]["steps"] == ["p0"]


class TestRetry:
    def test_transient_injection_retries_then_succeeds(self, tmp_path):
        spec = _spec([_probe(0, inject={"transient": 2})])
        reg = MetricsRegistry()
        res = run_campaign(spec, tmp_path / "c", metrics=reg)
        assert res.status == "ok"
        assert res.outcome.retries == 2
        assert res.outcome.steps["p0"].attempts == 3
        assert reg.counter("campaign.retries").value == 2

    def test_exhausted_retries_fail_the_step(self, tmp_path):
        spec = _spec([_probe(0, inject={"transient": 9},
                             max_retries=1)])
        res = run_campaign(spec, tmp_path / "c")
        assert res.status == "partial"
        rec = res.outcome.steps["p0"]
        assert rec.status == "failed"
        assert rec.failure_class == "transient"
        assert rec.attempts == 2                  # 1 + max_retries

    def test_backoff_is_seeded_and_reproducible(self, tmp_path):
        spec = _spec([_probe(0, inject={"transient": 2})])
        first = run_campaign(spec, tmp_path / "a")
        second = run_campaign(spec, tmp_path / "b")
        waits = [
            [r["backoff_s"] for r in _retry_records(p)]
            for p in (first.journal_path, second.journal_path)]
        assert waits[0] == waits[1]
        assert len(waits[0]) == 2
        assert all(w > 0 for w in waits[0])


def _retry_records(journal_path):
    import json
    out = []
    for line in journal_path.read_text().splitlines():
        rec = json.loads(line)
        if rec["t"] == "step-retry":
            out.append(rec)
    return out


class TestTaxonomy:
    def test_persistent_failure_skips_descendants_only(self, tmp_path):
        spec = _spec([
            _probe(0, inject={"persistent": True}),
            _probe(1, after=["p0"]),
            _probe(2, after=["p1"]),
            _probe(3),
        ])
        res = run_campaign(spec, tmp_path / "c")
        assert res.status == "partial"
        assert res.exit_code == 5
        steps = res.outcome.steps
        assert steps["p0"].status == "failed"
        assert steps["p0"].failure_class == "persistent"
        assert steps["p1"].status == "skipped"
        assert steps["p2"].status == "skipped"
        assert steps["p3"].status == "ok"
        assert steps["p0"].retries == 0           # no pointless retries

    def test_fatal_failure_aborts_the_campaign(self, tmp_path):
        spec = _spec([
            _probe(0, inject={"fatal": True}),
            _probe(1),
            _probe(2, after=["p1"]),
        ])
        res = run_campaign(spec, tmp_path / "c")
        assert res.status == "fatal"
        assert res.exit_code == 2
        statuses = {sid: r.status
                    for sid, r in res.outcome.steps.items()}
        assert statuses["p0"] == "failed"
        assert "pending" not in statuses.values()

    def test_unknown_kind_is_fatal(self, tmp_path):
        spec = _spec([{"id": "x", "kind": "warp-drive"}])
        res = run_campaign(spec, tmp_path / "c")
        assert res.status == "fatal"
        assert res.outcome.steps["x"].failure_class == "fatal"


class TestTimeout:
    def test_hang_times_out_as_transient_and_exhausts(self, tmp_path):
        spec = _spec([_probe(0, inject={"hang": True}, timeout_s=0.2,
                             max_retries=1)])
        reg = MetricsRegistry()
        res = run_campaign(spec, tmp_path / "c", metrics=reg,
                           backoff_base=0.01, backoff_max=0.05)
        assert res.status == "partial"
        rec = res.outcome.steps["p0"]
        assert rec.status == "failed"
        assert rec.failure_class == "transient"
        assert res.outcome.timeouts == 2          # both attempts
        assert reg.counter("campaign.timeouts").value == 2


class TestCacheAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = _spec([_probe(i) for i in range(4)])
        first = run_campaign(spec, tmp_path / "c")
        assert first.outcome.cache_hits == 0
        second = run_campaign(spec, tmp_path / "c")
        assert second.outcome.cache_hits == 4
        assert second.outcome.executed == 0
        assert second.resumed

    def test_reports_are_byte_identical_across_reruns(self, tmp_path):
        spec = _spec([_probe(i) for i in range(3)]
                     + [{"id": "join", "kind": "summary",
                         "after": ["p0", "p1", "p2"]}])
        first = run_campaign(spec, tmp_path / "c")
        blob = first.report_path.read_bytes()
        second = run_campaign(spec, tmp_path / "c")
        assert second.report_path.read_bytes() == blob

    def test_identical_configs_share_one_cache_entry(self, tmp_path):
        spec = _spec([
            {"id": "a", "kind": "probe", "payload": "same"},
            {"id": "b", "kind": "probe", "payload": "same",
             "after": ["a"]},
        ])
        res = run_campaign(spec, tmp_path / "c")
        assert res.outcome.steps["a"].key == res.outcome.steps["b"].key
        assert res.outcome.executed == 1
        assert res.outcome.cache_hits == 1

    def test_different_spec_in_same_dir_rejected(self, tmp_path):
        run_campaign(_spec([_probe(0)]), tmp_path / "c")
        with pytest.raises(CampaignError, match="different"):
            run_campaign(_spec([_probe(1)]), tmp_path / "c")

    def test_resume_flag_requires_history(self, tmp_path):
        with pytest.raises(CampaignError, match="no spec.json"):
            run_campaign(None, tmp_path / "void", resume=True)

    def test_status_doc_reflects_progress(self, tmp_path):
        spec = _spec([_probe(0, inject={"persistent": True}),
                      _probe(1)])
        run_campaign(spec, tmp_path / "c")
        doc = load_campaign_dir(tmp_path / "c")
        assert doc["nsteps"] == 2
        assert doc["finished"]["ok"] == 1
        assert doc["finished"]["failed"] == 1
        assert doc["incomplete"] == ["p0"]
        assert doc["end_status"] == "partial"
        assert doc["store_entries"] == 1


class TestJournalIntegration:
    def test_journal_records_every_transition(self, tmp_path):
        spec = _spec([_probe(0, inject={"transient": 1}),
                      _probe(1, inject={"persistent": True}),
                      _probe(2, after=["p1"])])
        res = run_campaign(spec, tmp_path / "c")
        state = replay_journal(res.journal_path)
        assert state.finished == {"p0": "ok", "p1": "failed",
                                  "p2": "skipped"}
        assert state.retries == {"p0": 1}
        assert state.failure_class == {"p1": "persistent"}
        assert state.end_status == "partial"
        assert state.in_flight == []

    def test_ingest_campaign_bridge(self, tmp_path):
        spec = _spec([_probe(0), _probe(1, inject={"persistent": True})])
        res = run_campaign(spec, tmp_path / "c")
        reg = MetricsRegistry()
        reg.ingest_campaign(res.outcome)
        assert reg.counter("campaign.steps.ok").value == 1
        assert reg.counter("campaign.steps.failed").value == 1
        assert reg.counter("campaign.failures.persistent").value == 1
        assert reg.histogram("campaign.step_seconds").count == 2
