"""Content-addressed store + crash-safe journal durability semantics."""

import json
import os

import pytest

from repro.campaign.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalError,
    replay_journal,
    validate_journal,
)
from repro.campaign.store import RESULT_SCHEMA, ResultStore, StoreError


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, kind="probe", config={"x": 1},
                  result={"value": 7})
        doc = store.get(key)
        assert doc["schema"] == RESULT_SCHEMA
        assert doc["result"] == {"value": 7}
        assert store.has(key)
        assert store.keys() == [key]

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "1" * 62
        store.put(key, kind="probe", config={}, result={"v": 1})
        store.put(key, kind="probe", config={}, result={"v": 2})
        assert store.get(key)["result"] == {"v": 1}   # first wins

    def test_artifacts_published_with_the_entry(self, tmp_path):
        src = tmp_path / "a.txt"
        src.write_text("payload")
        store = ResultStore(tmp_path / "store")
        key = "ef" + "2" * 62
        store.put(key, kind="probe", config={}, result={},
                  artifacts={"a.txt": src})
        names = [p.name for p in store.artifacts(key)]
        assert names == ["a.txt"]

    def test_artifact_names_must_be_bare(self, tmp_path):
        store = ResultStore(tmp_path)
        src = tmp_path / "x"
        src.write_text("x")
        with pytest.raises(ValueError, match="bare file name"):
            store.put("aa" + "3" * 62, kind="probe", config={},
                      result={}, artifacts={"../evil": src})

    def test_get_missing_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no store entry"):
            ResultStore(tmp_path).get("ab" + "9" * 62)

    def test_stale_staging_cleared_on_init(self, tmp_path):
        store = ResultStore(tmp_path)
        staging = store.objects / "ab" / ".tmp-abc-999"
        staging.mkdir(parents=True)
        (staging / "result.json").write_text("torn")
        assert ResultStore(tmp_path).clear_staging() == 0  # init cleared
        assert not staging.exists()
        assert store.keys() == []

    def test_interrupted_put_leaves_no_entry(self, tmp_path):
        """An entry either exists completely or not at all."""
        store = ResultStore(tmp_path)
        key = "ab" + "4" * 62
        # simulate a writer killed after staging, before publish
        staging = store.objects / "ab" / f".tmp-{key}-{os.getpid()}"
        staging.mkdir(parents=True)
        (staging / "result.json").write_text("{}")
        assert not store.has(key)
        assert store.keys() == []


class TestJournal:
    def _write(self, path, torn=False):
        with Journal(path) as j:
            j.campaign_start(campaign="c", spec_hash="h", nsteps=2,
                             seed=1, resumed=False)
            j.step_start("a", 0, "k1")
            j.step_retry("a", 0, "transient", "TransientStepError", 0.02)
            j.step_start("a", 1, "k1")
            j.step_end("a", 1, "ok", "k1")
            j.step_start("b", 0, "k2")
        if torn:
            with open(path, "a", encoding="utf-8") as fh:
                fh.write('{"t": "step-end", "id": "b"')   # no newline

    def test_replay_recovers_progress_and_inflight(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path)
        state = replay_journal(path)
        assert state.campaign == "c"
        assert state.spec_hash == "h"
        assert state.finished == {"a": "ok"}
        assert state.in_flight == ["b"]
        assert state.attempts == {"a": 2, "b": 1}
        assert state.retries == {"a": 1}
        assert state.end_status is None
        assert not state.torn_tail

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, torn=True)
        state = replay_journal(path)
        assert state.torn_tail
        assert state.in_flight == ["b"]      # torn end discarded

    def test_interior_damage_is_an_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]              # damage an interior line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="unreadable"):
            replay_journal(path)

    def test_resume_with_different_spec_hash_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path)
        with Journal(path) as j:
            j.campaign_start(campaign="c", spec_hash="OTHER", nsteps=2,
                             seed=1, resumed=True)
        with pytest.raises(JournalError, match="different spec"):
            replay_journal(path)

    def test_second_session_resets_inflight(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path)
        with Journal(path) as j:
            j.campaign_start(campaign="c", spec_hash="h", nsteps=2,
                             seed=1, resumed=True)
            j.step_start("b", 0, "k2")
            j.step_end("b", 0, "ok", "k2")
            j.campaign_end("ok", {"ok": 2})
        state = replay_journal(path)
        assert state.sessions == 2
        assert state.in_flight == []
        assert state.end_status == "ok"

    def test_records_reject_missing_fields(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="missing fields"):
            j.record("step-end", id="a")
        with pytest.raises(ValueError, match="unknown journal record"):
            j.record("nonsense", id="a")
        with pytest.raises(ValueError, match="bad step-end status"):
            j.step_end("a", 0, "exploded", "k")
        j.close()

    def test_validate_journal_clean_and_dirty(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, torn=True)
        assert validate_journal(path) == []    # torn tail is fine
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"t": "step-end", "id": "a"}) + "\n"
                       + "garbage\n" + "{}\n")
        problems = validate_journal(bad)
        assert any("campaign-start" in p for p in problems)
        assert any("unreadable" in p for p in problems)
        assert validate_journal(tmp_path / "absent.jsonl") \
            == [f"journal missing: {tmp_path / 'absent.jsonl'}"]

    def test_schema_rides_the_opening_record(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == JOURNAL_SCHEMA
