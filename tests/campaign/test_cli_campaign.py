"""`repro campaign run|status|resume`: exit codes and directory flow."""

import json

import pytest

from repro.cli import main

_SPEC = {
    "campaign": "cli-t",
    "seed": 5,
    "workers": 2,
    "defaults": {"timeout_s": 30, "max_retries": 1},
    "steps": [
        {"id": "a", "kind": "probe", "payload": "a"},
        {"id": "b", "kind": "probe", "payload": "b", "after": ["a"]},
        {"id": "bad", "kind": "probe", "payload": "bad",
         "inject": {"persistent": True}},
    ],
}


def _write_spec(tmp_path, doc=None):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(doc or _SPEC))
    return str(path)


class TestCampaignRun:
    def test_partial_campaign_exits_5(self, tmp_path, capsys):
        code = main(["campaign", "run", _write_spec(tmp_path),
                     "--out", str(tmp_path / "c"), "-q"])
        assert code == 5
        out = capsys.readouterr().out
        assert "status   : partial" in out
        assert "wrote" in out

    def test_clean_campaign_exits_0(self, tmp_path):
        doc = {**_SPEC, "steps": _SPEC["steps"][:2]}
        code = main(["campaign", "run", _write_spec(tmp_path, doc),
                     "--out", str(tmp_path / "c"), "-q"])
        assert code == 0

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"campaign": "x", "steps": [
            {"id": "a", "kind": "probe", "after": ["ghost"]}]}))
        code = main(["campaign", "run", str(bad),
                     "--out", str(tmp_path / "c"), "-q"])
        assert code == 2
        assert "repro campaign" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, tmp_path):
        assert main(["campaign", "run", str(tmp_path / "ghost.yaml"),
                     "--out", str(tmp_path / "c"), "-q"]) == 2


class TestCampaignStatusResume:
    def test_status_and_resume_roundtrip(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        out = str(tmp_path / "c")
        assert main(["campaign", "run", spec, "--out", out, "-q"]) == 5
        capsys.readouterr()

        assert main(["campaign", "status", out]) == 0
        text = capsys.readouterr().out
        assert "cli-t" in text
        assert "todo     : bad" in text

        # resume re-runs only the poisoned step; successes are cached
        assert main(["campaign", "resume", out, "-q"]) == 5
        text = capsys.readouterr().out
        assert "cache-hits=2" in text

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        spec = _write_spec(tmp_path)
        out = str(tmp_path / "c")
        main(["campaign", "run", spec, "--out", out, "-q"])
        capsys.readouterr()
        assert main(["campaign", "status", out, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["campaign"] == "cli-t"
        assert doc["nsteps"] == 3
        assert doc["store_entries"] == 2

    def test_status_of_nondir_exits_2(self, tmp_path):
        assert main(["campaign", "status",
                     str(tmp_path / "nothing")]) == 2

    def test_resume_without_history_exits_2(self, tmp_path):
        assert main(["campaign", "resume",
                     str(tmp_path / "nothing"), "-q"]) == 2


class TestCampaignReportArtifacts:
    def test_report_tree_written_and_valid(self, tmp_path):
        from repro.campaign.journal import validate_journal
        from repro.campaign.report import validate_campaign

        out = tmp_path / "c"
        main(["campaign", "run", _write_spec(tmp_path),
              "--out", str(out), "-q"])
        doc = json.loads((out / "report" / "campaign.json").read_text())
        assert validate_campaign(doc) == []
        assert validate_journal(out / "journal.jsonl") == []
        assert (out / "report" / "campaign.txt").exists()
        metrics = json.loads(
            (out / "report" / "metrics.json").read_text())
        assert metrics["status"] == "partial"
        counters = metrics["instruments"]["counters"]
        assert counters["campaign.steps.ok"] == 2
        assert counters["campaign.steps.failed"] == 1

    def test_validate_campaign_flags_damage(self, tmp_path):
        from repro.campaign.report import validate_campaign

        out = tmp_path / "c"
        main(["campaign", "run", _write_spec(tmp_path),
              "--out", str(out), "-q"])
        doc = json.loads((out / "report" / "campaign.json").read_text())
        doc["steps"][0]["status"] = "exploded"
        problems = validate_campaign(doc)
        assert any("bad status" in p for p in problems)
