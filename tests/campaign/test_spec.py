"""Campaign specs: matrix expansion, hashing, globs, the YAML subset."""

import json

import pytest

from repro.campaign.dag import DAGError, StepDAG
from repro.campaign.spec import (
    CampaignSpec,
    SpecError,
    StepSpec,
    config_hash,
    load_spec,
    parse_simple_yaml,
    parse_spec,
)


def _raw(**over):
    raw = {
        "campaign": "t",
        "seed": 3,
        "matrix": [
            {"kind": "probe", "app": ["lbmhd", "gtc"], "nprocs": [2, 4]},
        ],
        "steps": [
            {"id": "sum", "kind": "summary", "after": ["probe-*"]},
        ],
    }
    raw.update(over)
    return raw


class TestMatrixExpansion:
    def test_cartesian_product_with_deterministic_ids(self):
        spec = parse_spec(_raw())
        ids = [s.id for s in spec.steps]
        assert ids == ["probe-lbmhd-nprocs2", "probe-lbmhd-nprocs4",
                       "probe-gtc-nprocs2", "probe-gtc-nprocs4", "sum"]

    def test_scalar_keys_are_shared_config(self):
        spec = parse_spec(_raw(matrix=[
            {"kind": "probe", "app": ["a", "b"], "size": 7}]))
        for s in spec.steps[:-1]:
            assert s.config["size"] == 7

    def test_glob_after_expands_to_every_match(self):
        spec = parse_spec(_raw())
        assert set(spec.step("sum").after) == {
            "probe-lbmhd-nprocs2", "probe-lbmhd-nprocs4",
            "probe-gtc-nprocs2", "probe-gtc-nprocs4"}

    def test_unknown_exact_dependency_rejected(self):
        with pytest.raises(SpecError, match="unknown dependency"):
            parse_spec(_raw(steps=[
                {"id": "sum", "kind": "summary", "after": ["nope"]}]))

    def test_empty_glob_rejected(self):
        with pytest.raises(SpecError, match="matches nothing"):
            parse_spec(_raw(steps=[
                {"id": "sum", "kind": "summary", "after": ["zz-*"]}]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            parse_spec(_raw(steps=[
                {"id": "x", "kind": "probe"},
                {"id": "x", "kind": "probe"}]))

    def test_cycle_rejected(self):
        with pytest.raises(SpecError):
            parse_spec(_raw(matrix=[], steps=[
                {"id": "a", "kind": "probe", "after": ["b"]},
                {"id": "b", "kind": "probe", "after": ["a"]}]))


class TestHashing:
    def test_policy_fields_do_not_change_the_config_hash(self):
        a = StepSpec(id="a", kind="probe", config={"x": 1},
                     timeout_s=10, max_retries=0)
        b = StepSpec(id="b", kind="probe", config={"x": 1},
                     timeout_s=99, max_retries=5, after=("a",),
                     inject={"transient": 2})
        assert a.key == b.key

    def test_config_changes_the_hash(self):
        assert config_hash("probe", {"x": 1}) \
            != config_hash("probe", {"x": 2})
        assert config_hash("probe", {"x": 1}) \
            != config_hash("trace", {"x": 1})

    def test_spec_hash_does_include_policy(self):
        a = parse_spec(_raw())
        b = parse_spec(_raw(defaults={"max_retries": 9}))
        assert a.spec_hash != b.spec_hash

    def test_snapshot_roundtrip_preserves_hash(self):
        spec = parse_spec(_raw())
        back = CampaignSpec.from_doc(
            json.loads(json.dumps(spec.to_doc())))
        assert back.spec_hash == spec.spec_hash
        assert [s.id for s in back.steps] == [s.id for s in spec.steps]


class TestDAG:
    def test_topo_order_is_deterministic_and_respects_deps(self):
        spec = parse_spec(_raw())
        dag = StepDAG(spec.steps)
        assert dag.topo_order[-1] == "sum"
        assert dag.topo_order[:-1] == sorted(dag.topo_order[:-1])

    def test_ready_excludes_blocked_and_inflight(self):
        spec = parse_spec(_raw(matrix=[], steps=[
            {"id": "a", "kind": "probe"},
            {"id": "b", "kind": "probe", "after": ["a"]},
            {"id": "c", "kind": "probe"}]))
        dag = StepDAG(spec.steps)
        assert dag.ready(set(), set(), set()) == ["a", "c"]
        assert dag.ready({"a"}, set(), {"c"}) == ["b"]
        assert dag.ready(set(), {"a"}, set()) == ["c"]

    def test_descendants_are_transitive(self):
        spec = parse_spec(_raw(matrix=[], steps=[
            {"id": "a", "kind": "probe"},
            {"id": "b", "kind": "probe", "after": ["a"]},
            {"id": "c", "kind": "probe", "after": ["b"]},
            {"id": "d", "kind": "probe"}]))
        assert StepDAG(spec.steps).descendants("a") == {"b", "c"}


class TestYamlSubset:
    def test_nested_maps_lists_and_inline_forms(self):
        text = (
            "campaign: demo   # comment\n"
            "seed: 4\n"
            "defaults:\n"
            "  timeout_s: 30\n"
            "matrix:\n"
            "  - kind: probe\n"
            "    app: [a, b]\n"
            "    inject: {transient: 1}\n"
            "steps:\n"
            "  - id: sum\n"
            "    kind: summary\n"
            "    after:\n"
            "      - probe-a\n"
            "      - probe-b\n")
        doc = parse_simple_yaml(text)
        assert doc["campaign"] == "demo"
        assert doc["defaults"] == {"timeout_s": 30}
        assert doc["matrix"][0]["app"] == ["a", "b"]
        assert doc["matrix"][0]["inject"] == {"transient": 1}
        assert doc["steps"][0]["after"] == ["probe-a", "probe-b"]

    def test_scalar_coercion(self):
        doc = parse_simple_yaml(
            "a: 1\nb: 1.5\nc: true\nd: null\ne: 'q'\nf: plain\n")
        assert doc == {"a": 1, "b": 1.5, "c": True, "d": None,
                       "e": "q", "f": "plain"}

    def test_tabs_rejected(self):
        with pytest.raises(SpecError, match="tabs"):
            parse_simple_yaml("a:\n\tb: 1\n")

    def test_matches_pyyaml_on_the_shipped_example_specs(self):
        yaml = pytest.importorskip("yaml")
        from pathlib import Path
        specs = sorted(Path("examples/campaigns").glob("*.yaml"))
        assert len(specs) >= 3
        for path in specs:
            text = path.read_text(encoding="utf-8")
            assert parse_simple_yaml(text) == yaml.safe_load(text), path

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(_raw()))
        assert load_spec(path).name == "t"

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="not found"):
            load_spec(tmp_path / "absent.yaml")


class TestBackendAxis:
    def test_backend_expands_as_matrix_axis(self):
        spec = parse_spec(_raw(matrix=[
            {"kind": "trace", "app": ["lbmhd"],
             "backend": ["thread", "process"]},
        ], steps=[]))
        ids = sorted(s.id for s in spec.steps)
        assert ids == ["trace-lbmhd-backendprocess",
                       "trace-lbmhd-backendthread"]
        backends = sorted(s.config["backend"] for s in spec.steps)
        assert backends == ["process", "thread"]

    def test_unknown_backend_is_fatal(self):
        from repro.campaign.steps import FatalStepError, _cfg_backend
        with pytest.raises(FatalStepError, match="gpu"):
            _cfg_backend({"backend": "gpu"}, "trace-x")
        assert _cfg_backend({}, "trace-x") == "thread"
        assert _cfg_backend({"backend": "process"}, "trace-x") == "process"
