"""The acceptance property: SIGKILL a campaign mid-step, resume it, and
get a byte-identical final report while re-executing only the
incomplete steps (verified via cache-hit and journal counters)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.journal import replay_journal, validate_journal
from repro.campaign.store import ResultStore

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: 15 steps: a 12-cell probe sweep + one flaky (retried transient) +
#: one poisoned (persistent) + a summary over the healthy sweep
_SPEC = {
    "campaign": "kill-resume",
    "seed": 42,
    "workers": 2,
    "defaults": {"timeout_s": 60, "max_retries": 2},
    "matrix": [
        {"kind": "probe", "app": ["a", "b", "c", "d"],
         "nprocs": [1, 2, 3], "work_s": 0.25},
    ],
    "steps": [
        {"id": "flaky", "kind": "probe", "payload": "flaky",
         "work_s": 0.05, "inject": {"transient": 1}},
        {"id": "poisoned", "kind": "probe", "payload": "poisoned",
         "inject": {"persistent": True}},
        {"id": "roundup", "kind": "summary",
         "after": ["probe-*", "flaky"]},
    ],
}


def _spawn(spec_path: Path, outdir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(spec_path), "--out", str(outdir), "-q"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)


def _published(outdir: Path) -> int:
    """Published store entries, counted read-only.

    Deliberately NOT via :class:`ResultStore` — its constructor clears
    staging directories, which would sabotage the still-running writer
    we are watching.
    """
    store_dir = outdir / "store" / "objects"
    if not store_dir.exists():
        return 0
    return sum(1 for p in store_dir.rglob("result.json")
               if ".tmp-" not in p.parent.name)


def _wait_for_store_entries(outdir: Path, n: int,
                            timeout: float = 60.0) -> int:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        count = _published(outdir)
        if count >= n:
            return count
        time.sleep(0.02)
    raise AssertionError(
        f"campaign produced fewer than {n} store entries in "
        f"{timeout}s")


class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_SPEC))

        # reference: the same spec run start-to-finish, never killed
        ref = run_campaign(str(spec_path), tmp_path / "reference")
        assert ref.status == "partial"          # the poisoned step
        reference_bytes = ref.report_path.read_bytes()

        # victim: killed hard once a few steps have been published
        outdir = tmp_path / "victim"
        proc = _spawn(spec_path, outdir)
        try:
            done_before = _wait_for_store_entries(outdir, 3)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # the interrupted journal replays cleanly: at most a torn tail,
        # no campaign-end, and the crash window visible as in-flight
        state = replay_journal(outdir / "journal.jsonl")
        assert state.sessions == 1
        assert state.end_status is None
        assert validate_journal(outdir / "journal.jsonl") == []
        completed = len(ResultStore(outdir / "store"))
        assert completed >= done_before
        assert completed < 14                    # genuinely mid-run

        # resume re-executes exactly the incomplete steps: every
        # published result is a cache hit, nothing is recomputed
        res = run_campaign(None, outdir, resume=True)
        assert res.resumed
        assert res.status == "partial"
        assert res.outcome.cache_hits == completed
        assert res.outcome.executed == 15 - completed
        state = replay_journal(outdir / "journal.jsonl")
        assert state.sessions == 2
        assert state.end_status == "partial"
        assert state.in_flight == []

        assert res.report_path.read_bytes() == reference_bytes

    def test_resume_of_a_finished_campaign_is_all_noops(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_SPEC))
        outdir = tmp_path / "done"
        first = run_campaign(str(spec_path), outdir)
        blob = first.report_path.read_bytes()
        res = run_campaign(None, outdir, resume=True)
        # 14 successes cached; only the poisoned step re-executes
        assert res.outcome.cache_hits == 14
        assert res.outcome.executed == 1
        assert res.report_path.read_bytes() == blob
