"""Cactus under faults: crash/restart matches, ghost drops survived."""

import numpy as np

from repro.apps.cactus import gauge_wave
from repro.apps.cactus.parallel import run_parallel
from repro.resilience import Checkpointer
from repro.runtime import FaultInjector, FaultPlan, Transport

NPROCS, NSTEPS = 2, 4
DX = 1.0 / 8


def _initial():
    return gauge_wave((8, 4, 4), DX, amplitude=0.05)


def _run(**kwargs):
    g, K, a = _initial()
    return run_parallel(g, K, a, nprocs=NPROCS, nsteps=NSTEPS,
                        spacing=DX, dt=0.2 * DX, **kwargs)


def _assert_close(clean, faulted, rtol=1e-12):
    for a, b in zip(clean, faulted):
        np.testing.assert_allclose(b, a, rtol=rtol, atol=0.0)


def test_crash_restart_matches(tmp_path):
    clean = _run()
    injector = FaultInjector(FaultPlan(seed=11, crash_rank=1,
                                       crash_step=2))
    faulted = _run(injector=injector,
                   checkpoint=Checkpointer(tmp_path), checkpoint_every=1)
    assert injector.crash_fired
    _assert_close(clean, faulted)


def test_ghost_drops_survived_with_constraints():
    """>=5% of ghost-zone messages dropped: identical evolution."""
    clean = _run()
    injector = FaultInjector(FaultPlan(seed=12, drop=0.08,
                                       backoff_base=0.0002))
    transport = Transport(NPROCS)
    faulted = _run(transport=transport, injector=injector)
    _assert_close(clean, faulted)
    assert np.all(np.isfinite(faulted[0]))
    assert injector.counts().get("drop", 0) > 0
    assert transport.resend_count() > 0
    assert transport.undelivered() == 0


def test_leapfrog_history_checkpointed(tmp_path):
    """The two-level leapfrog state restarts consistently as well."""
    g, K, a = _initial()
    kw = dict(nprocs=NPROCS, nsteps=NSTEPS, spacing=DX, dt=0.2 * DX,
              integrator="leapfrog")
    clean = run_parallel(g, K, a, **kw)
    injector = FaultInjector(FaultPlan(seed=13, crash_rank=0,
                                       crash_step=3))
    faulted = run_parallel(g, K, a, **kw, injector=injector,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=1)
    _assert_close(clean, faulted)
