"""Fused stencils vs the naive reference forms (stencils_ref).

The fused kernels preserve the naive accumulation order, so agreement is
bitwise; the tests still phrase the bar as the ISSUE's rtol <= 1e-12 and
additionally assert exact equality where it holds by construction.
"""

import numpy as np
import pytest

from repro.apps.cactus import stencils as st
from repro.apps.cactus import stencils_ref as ref


@pytest.fixture
def field():
    rng = np.random.default_rng(11)
    return rng.normal(size=(14, 12, 13))


@pytest.fixture
def multifield():
    rng = np.random.default_rng(12)
    return rng.normal(size=(2, 3, 11, 12, 10))


SPACING = (0.1, 0.23, 0.31)


@pytest.mark.parametrize("order", [2, 4])
@pytest.mark.parametrize("ax", [0, 1, 2])
def test_deriv1_matches_reference(field, order, ax):
    got = st.deriv1(field, ax, SPACING[ax], order)
    want = ref.deriv1_ref(field, ax, SPACING[ax], order)
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("order", [2, 4])
@pytest.mark.parametrize("ax", [0, 1, 2])
def test_deriv2_matches_reference(field, order, ax):
    got = st.deriv2(field, ax, SPACING[ax], order)
    want = ref.deriv2_ref(field, ax, SPACING[ax], order)
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("order", [2, 4])
@pytest.mark.parametrize("axes", [(0, 1), (0, 2), (1, 2), (2, 0), (1, 1)])
def test_deriv_mixed_matches_reference(field, order, axes):
    a, b = axes
    got = st.deriv_mixed(field, a, b, SPACING[a], SPACING[b], order)
    want = ref.deriv_mixed_ref(field, a, b, SPACING[a], SPACING[b], order)
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("order", [2, 4])
def test_grad_and_hessian_match_reference(field, order):
    np.testing.assert_array_equal(st.grad(field, SPACING, order),
                                  ref.grad_ref(field, SPACING, order))
    np.testing.assert_array_equal(st.hessian(field, SPACING, order),
                                  ref.hessian_ref(field, SPACING, order))


def test_multicomponent_fields_match_reference(multifield):
    np.testing.assert_array_equal(
        st.grad(multifield, SPACING), ref.grad_ref(multifield, SPACING))
    np.testing.assert_array_equal(
        st.kreiss_oliger(multifield, SPACING, 0.05),
        ref.kreiss_oliger_ref(multifield, SPACING, 0.05))


@pytest.mark.parametrize("sigma", [0.0, 0.02, 0.5])
def test_kreiss_oliger_matches_reference(field, sigma):
    got = st.kreiss_oliger(field, SPACING, sigma)
    want = ref.kreiss_oliger_ref(field, SPACING, sigma)
    np.testing.assert_array_equal(got, want)


def test_out_parameter_reuse_gives_same_answer(field):
    """Preallocated outputs (the solver's usage) change nothing."""
    g_out = np.empty((3, 12, 10, 11))
    h_out = np.empty((3, 3, 12, 10, 11))
    k_out = np.empty((10, 8, 9))
    for _ in range(2):  # second pass exercises dirty-buffer reuse
        st.grad(field, SPACING, out=g_out)
        st.hessian(field, SPACING, out=h_out)
        st.kreiss_oliger(field, SPACING, 0.1, out=k_out)
    np.testing.assert_array_equal(g_out, ref.grad_ref(field, SPACING))
    np.testing.assert_array_equal(h_out, ref.hessian_ref(field, SPACING))
    np.testing.assert_array_equal(
        k_out, ref.kreiss_oliger_ref(field, SPACING, 0.1))


def test_fused_within_issue_tolerance(field):
    """The formal ISSUE bar (rtol <= 1e-12), stated explicitly."""
    got = st.hessian(field, SPACING, 4)
    want = ref.hessian_ref(field, SPACING, 4)
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=0)
