"""Parallel Cactus equivalence + Table 5 model shape."""

import numpy as np
import pytest

from repro.apps.cactus.parallel import run_parallel
from repro.apps.cactus.profile import (
    CactusConfig,
    build_profile,
    cactus_porting,
    table5_configs,
)
from repro.apps.cactus.initial import gauge_wave, random_perturbation
from repro.apps.cactus.solver import CactusSolver
from repro.machine import ALTIX, ES, POWER3, POWER4, X1
from repro.perf import PerformanceModel
from repro.runtime import Transport


class TestParallel:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
    def test_bitwise_serial_equivalence(self, nprocs):
        g, K, a = gauge_wave((16, 8, 8), 1 / 16, amplitude=0.05)
        ser = CactusSolver(g, K, a, spacing=1 / 16)
        ser.step(3)
        gp, Kp, ap = run_parallel(g, K, a, nprocs=nprocs, nsteps=3,
                                  spacing=1 / 16)
        np.testing.assert_array_equal(gp, ser.gamma)
        np.testing.assert_array_equal(Kp, ser.K)
        np.testing.assert_array_equal(ap, ser.alpha)

    def test_order4_parallel_equivalence(self):
        g, K, a = gauge_wave((16, 10, 10), 1 / 16, amplitude=0.05)
        ser = CactusSolver(g, K, a, spacing=1 / 16, order=4)
        ser.step(2)
        gp, _, _ = run_parallel(g, K, a, nprocs=4, nsteps=2,
                                spacing=1 / 16, order=4)
        np.testing.assert_array_equal(gp, ser.gamma)

    def test_rk4_parallel_equivalence(self):
        g, K, a = random_perturbation((8, 8, 8), amplitude=1e-6)
        ser = CactusSolver(g, K, a, spacing=0.2, integrator="rk4")
        ser.step(2)
        gp, Kp, ap = run_parallel(g, K, a, nprocs=4, nsteps=2,
                                  spacing=0.2, integrator="rk4")
        np.testing.assert_array_equal(gp, ser.gamma)

    def test_ghost_exchange_traffic(self):
        """ICN: 4 RHS evaluations per step -> 4 exchange rounds."""
        g, K, a = gauge_wave((8, 8, 8), 0.125, amplitude=0.05)
        tr = Transport(2)
        run_parallel(g, K, a, nprocs=2, nsteps=1, spacing=0.125,
                     transport=tr)
        # 2 ranks x 4 RHS x 1 split axis x 2 directions = 16 messages.
        assert tr.message_count() == 16


def predict(machine, grid=(250, 64, 64), nprocs=16, **kw):
    cfg = CactusConfig(grid, nprocs)
    return PerformanceModel(machine).predict(build_profile(cfg),
                                             cactus_porting(cfg, **kw))


class TestTable5Shape:
    def test_avl_matches_paper(self):
        """§5.2: AVL 248 vs 92 for the two problem shapes."""
        assert predict(ES).avl == pytest.approx(248, abs=2)
        assert predict(ES, grid=(80, 80, 80)).avl == pytest.approx(
            92, abs=2)

    def test_vor_near_perfect(self):
        """§5.2 reports >99% VOR; our accounting charges the whole
        unvectorized BC flop stream as scalar ops, landing slightly
        lower while preserving the near-perfect-vectorization picture."""
        assert predict(ES).vor > 0.95

    def test_es_large_grid_far_more_efficient(self):
        """§5.2: 250x64x64 runs at 34-35% of ES peak, 80^3 at 17-18%."""
        big = predict(ES)
        small = predict(ES, grid=(80, 80, 80))
        assert big.gflops_per_proc > 1.3 * small.gflops_per_proc
        assert 25 < big.pct_peak < 40
        assert 15 < small.pct_peak < 28

    def test_superscalar_prefers_small_blocks(self):
        """§5.2: microprocessors do better on the smaller block."""
        for m in (POWER3, ALTIX):
            assert predict(m, grid=(80, 80, 80)).gflops_per_proc > \
                predict(m).gflops_per_proc

    def test_x1_lowest_fraction_of_peak(self):
        """§5.2: X1 reaches only ~6% of peak even after BC work."""
        x1 = predict(X1)
        assert x1.pct_peak < 12
        for m in (ES, POWER3, POWER4, ALTIX):
            assert predict(m).pct_peak > x1.pct_peak

    def test_absolute_bands(self):
        assert predict(ES).gflops_per_proc == pytest.approx(2.83, rel=0.25)
        assert predict(X1).gflops_per_proc == pytest.approx(0.813,
                                                            rel=0.35)
        assert predict(POWER3).gflops_per_proc == pytest.approx(
            0.097, rel=0.35)
        assert predict(POWER3, grid=(80, 80, 80)
                       ).gflops_per_proc == pytest.approx(0.314, rel=0.40)
        assert predict(ALTIX).gflops_per_proc == pytest.approx(0.514,
                                                               rel=0.35)

    def test_es_45x_over_power3(self):
        """§5.2: Power3 is ~45x slower on the large problem."""
        ratio = predict(ES).gflops_per_proc / predict(
            POWER3).gflops_per_proc
        assert 15 < ratio < 60

    def test_unvectorized_bc_costs_es(self):
        """§5.1/5.2: BC ~up to 20% of ES runtime; vectorizing it (the
        planned future ES experiments) recovers most of that."""
        asis = predict(ES, grid=(80, 80, 80))
        fixed = predict(ES, grid=(80, 80, 80), es_bc_vectorized=True)
        bc_frac = asis.phase_seconds("boundary") / asis.seconds
        assert 0.04 < bc_frac < 0.25
        assert fixed.gflops_per_proc > asis.gflops_per_proc

    def test_x1_bc_vectorization_was_essential(self):
        """§5.1: the serialized radiation BC multiplies its cost on the
        X1 (32:1); vectorizing it recovers the loss.  (The paper's >30%
        share is against the pre-slowdown code; against the measured
        production throughput the share is smaller but still dominant
        relative to the vectorized form.)"""
        fixed = predict(X1)
        broken = predict(X1, x1_bc_vectorized=False)
        bc_broken = broken.phase_seconds("boundary") / broken.seconds
        bc_fixed = fixed.phase_seconds("boundary") / fixed.seconds
        assert bc_broken > 3 * bc_fixed
        assert fixed.gflops_per_proc > broken.gflops_per_proc

    def test_weak_scaling_nearly_flat(self):
        """§5.2: weak scaling holds (rectangular domains scale fine)."""
        r16 = predict(ES, nprocs=16)
        r1024 = predict(ES, nprocs=1024)
        assert r1024.gflops_per_proc > 0.9 * r16.gflops_per_proc

    def test_comm_costs_reasonable(self):
        """§5.2 reports ES 13% / Power3 23% MPI fractions.  Our network
        model prices the same volumes; the ES fraction lands in band,
        while Power3's slow compute dilutes its modeled fraction below
        the measured one (documented in EXPERIMENTS.md)."""
        es = predict(ES, nprocs=64)
        p3 = predict(POWER3, nprocs=64)
        assert 0.02 < es.comm_fraction < 0.2
        assert es.comm_seconds < p3.comm_seconds

    def test_table5_configs(self):
        cfgs = table5_configs()
        assert len(cfgs) == 8
        assert {c.nprocs for c in cfgs} == {16, 64, 256, 1024}
