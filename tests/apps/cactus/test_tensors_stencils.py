"""Tensor algebra and finite-difference stencils."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cactus.stencils import (
    GHOST,
    deriv1,
    deriv2,
    deriv_mixed,
    extend,
    fill_ghosts_periodic,
    ghost_for,
    grad,
    hessian,
    interior,
)
from repro.apps.cactus.tensors import (
    SYM_INDEX,
    identity_metric,
    sym_det,
    sym_inverse,
    symmetrize,
    to_full,
    to_packed,
    trace,
)


def random_spd(shape=(4, 4, 4), seed=0):
    """Random symmetric positive-definite metric field."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((3, 3, *shape)) * 0.2
    g = identity_metric(shape) + 0.5 * (a + np.swapaxes(a, 0, 1))
    # Make safely positive definite.
    for i in range(3):
        g[i, i] += 1.0
    return g


class TestTensors:
    def test_pack_unpack_roundtrip(self):
        g = random_spd()
        np.testing.assert_array_equal(to_full(to_packed(g)), g)

    def test_sym_index_order(self):
        assert SYM_INDEX == ((0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2))

    def test_identity_det_inverse(self):
        g = identity_metric((3, 3, 3))
        np.testing.assert_allclose(sym_det(g), 1.0)
        np.testing.assert_allclose(sym_inverse(g), g)

    def test_inverse_against_numpy(self):
        g = random_spd(seed=3)
        inv = sym_inverse(g)
        gm = np.moveaxis(g, (0, 1), (-2, -1))
        expect = np.moveaxis(np.linalg.inv(gm), (-2, -1), (0, 1))
        np.testing.assert_allclose(inv, expect, atol=1e-12)

    def test_det_against_numpy(self):
        g = random_spd(seed=4)
        gm = np.moveaxis(g, (0, 1), (-2, -1))
        np.testing.assert_allclose(sym_det(g), np.linalg.det(gm),
                                   atol=1e-12)

    def test_trace(self):
        g = identity_metric((2, 2, 2))
        t = identity_metric((2, 2, 2)) * 2.0
        np.testing.assert_allclose(trace(t, g), 6.0)

    def test_singular_metric_rejected(self):
        g = np.zeros((3, 3, 2, 2, 2))
        with pytest.raises(ValueError, match="singular"):
            sym_inverse(g)

    def test_symmetrize(self):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((3, 3, 2, 2, 2))
        s = symmetrize(t)
        np.testing.assert_allclose(s, np.swapaxes(s, 0, 1))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15)
    def test_inverse_property(self, seed):
        g = random_spd(shape=(2, 2, 2), seed=seed)
        inv = sym_inverse(g)
        prod = np.einsum("ik...,kj...->ij...", g, inv)
        np.testing.assert_allclose(prod, identity_metric((2, 2, 2)),
                                   atol=1e-10)


class TestStencils:
    def setup_method(self):
        n = 12
        self.n = n
        self.h = 2 * np.pi / n
        x = np.arange(n) * self.h
        xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
        self.f = np.sin(xx) * np.cos(yy) + 0.3 * np.sin(zz)
        self.xx, self.yy, self.zz = xx, yy, zz

    def _ext(self, f):
        e = extend(f, GHOST)
        fill_ghosts_periodic(e, GHOST)
        return e

    def test_extend_interior_roundtrip(self):
        e = extend(self.f)
        np.testing.assert_array_equal(interior(e, GHOST), self.f)

    def test_periodic_ghost_fill(self):
        e = self._ext(self.f)
        np.testing.assert_array_equal(e[GHOST - 1, GHOST:-GHOST,
                                        GHOST:-GHOST],
                                      self.f[-1])
        np.testing.assert_array_equal(e[-1, GHOST:-GHOST, GHOST:-GHOST],
                                      self.f[GHOST - 1])

    def test_deriv1_accuracy(self):
        e = self._ext(self.f)
        d = interior(deriv1(e, 0, self.h), 1)
        exact = np.cos(self.xx) * np.cos(self.yy)
        assert np.abs(d - exact).max() < 0.5 * self.h**2 * 4

    def test_deriv2_accuracy(self):
        e = self._ext(self.f)
        d = interior(deriv2(e, 0, self.h), 1)
        exact = -np.sin(self.xx) * np.cos(self.yy)
        assert np.abs(d - exact).max() < self.h**2

    def test_mixed_derivative(self):
        e = self._ext(self.f)
        d = interior(deriv_mixed(e, 0, 1, self.h, self.h), 1)
        exact = -np.cos(self.xx) * np.sin(self.yy)
        assert np.abs(d - exact).max() < self.h**2

    def test_mixed_same_axis_is_second(self):
        e = self._ext(self.f)
        np.testing.assert_array_equal(
            deriv_mixed(e, 1, 1, self.h, self.h), deriv2(e, 1, self.h))

    def test_grad_stacks_derivatives(self):
        e = self._ext(self.f)
        g = grad(e, (self.h,) * 3)
        assert g.shape[0] == 3
        np.testing.assert_array_equal(g[2], deriv1(e, 2, self.h))

    def test_hessian_symmetric(self):
        e = self._ext(self.f)
        h = hessian(e, (self.h,) * 3)
        np.testing.assert_array_equal(h[0, 1], h[1, 0])
        assert h.shape[:2] == (3, 3)

    def test_convergence_order_two(self):
        errs = []
        for n in (16, 32):
            h = 2 * np.pi / n
            x = np.arange(n) * h
            xx = np.meshgrid(x, x, x, indexing="ij")[0]
            f = np.sin(xx)
            e = extend(f, GHOST)
            fill_ghosts_periodic(e)
            d = interior(deriv1(e, 0, h), 1)
            errs.append(np.abs(d - np.cos(xx)).max())
        order = np.log2(errs[0] / errs[1])
        assert order == pytest.approx(2.0, abs=0.1)

    def test_too_small_interior_rejected(self):
        e = np.zeros((5, 5, 5))  # interior 1 < ghost 2
        with pytest.raises(ValueError, match="smaller than ghost"):
            fill_ghosts_periodic(e, GHOST)


class TestFourthOrder:
    def _ext(self, f, ghost):
        e = extend(f, ghost)
        fill_ghosts_periodic(e, ghost)
        return e

    def _field(self, n):
        h = 2 * np.pi / n
        x = np.arange(n) * h
        xx, yy, _ = np.meshgrid(x, x, x, indexing="ij")
        return np.sin(xx) * np.cos(yy), xx, yy, h

    def test_ghost_for(self):
        assert ghost_for(2) == 2
        assert ghost_for(4) == 4
        with pytest.raises(ValueError):
            ghost_for(6)

    def test_fourth_order_beats_second(self):
        f, xx, yy, h = self._field(24)
        exact = np.cos(xx) * np.cos(yy)
        e2 = self._ext(f, 2)
        e4 = self._ext(f, 4)
        err2 = np.abs(interior(deriv1(e2, 0, h, 2), 1) - exact).max()
        err4 = np.abs(interior(deriv1(e4, 0, h, 4), 2) - exact).max()
        assert err4 < err2 / 20

    def test_fourth_order_convergence_rate(self):
        errs = []
        for n in (16, 32):
            f, xx, yy, h = self._field(n)
            e = self._ext(f, 4)
            d = interior(deriv2(e, 0, h, 4), 2)
            errs.append(np.abs(d + np.sin(xx) * np.cos(yy)).max())
        assert np.log2(errs[0] / errs[1]) == pytest.approx(4.0, abs=0.3)

    def test_mixed_fourth_order(self):
        f, xx, yy, h = self._field(24)
        e = self._ext(f, 4)
        d = interior(deriv_mixed(e, 0, 1, h, h, 4), 2)
        exact = -np.cos(xx) * np.sin(yy)
        assert np.abs(d - exact).max() < 5e-4

    def test_hessian_order4_symmetric(self):
        f, *_ , h = self._field(16)
        e = self._ext(f, 4)
        hes = hessian(e, (h, h, h), 4)
        np.testing.assert_array_equal(hes[0, 2], hes[2, 0])

    def test_unknown_order_rejected(self):
        f, *_, h = self._field(16)
        e = self._ext(f, 2)
        with pytest.raises(ValueError):
            deriv1(e, 0, h, order=3)
