"""Curvature computation and the ADM right-hand side."""

import numpy as np
import pytest

from repro.apps.cactus.adm import adm_rhs, lapse_rhs
from repro.apps.cactus.geometry import (
    curvature,
    hamiltonian_constraint,
    momentum_constraint,
    ricci_scalar,
)
from repro.apps.cactus.initial import gauge_wave, minkowski
from repro.apps.cactus.stencils import GHOST, extend, fill_ghosts_periodic
from repro.apps.cactus.tensors import identity_metric


def extended(field):
    e = extend(field, GHOST)
    fill_ghosts_periodic(e)
    return e


class TestCurvature:
    def test_flat_metric_curvature_free(self):
        g = identity_metric((8, 8, 8))
        geo = curvature(extended(g), (0.1, 0.1, 0.1))
        np.testing.assert_allclose(geo.christoffel, 0.0, atol=1e-14)
        np.testing.assert_allclose(geo.ricci, 0.0, atol=1e-14)
        np.testing.assert_allclose(ricci_scalar(geo), 0.0, atol=1e-14)

    def test_conformally_flat_ricci(self):
        """For gamma = psi^4 delta with small perturbation, compare the
        Ricci scalar against the linearized formula R = -8 lap(psi)."""
        n = 16
        h = 2 * np.pi / n
        x = np.arange(n) * h
        xx, yy, _ = np.meshgrid(x, x, x, indexing="ij")
        eps = 1e-5
        psi = 1.0 + eps * np.sin(xx) * np.cos(yy)
        lap = -2.0 * eps * np.sin(xx) * np.cos(yy)
        g = identity_metric((n, n, n)) * psi**4
        geo = curvature(extended(g), (h, h, h))
        R = ricci_scalar(geo)
        # O(h^2) truncation of the FD Laplacian at n=16 allows ~5% error.
        np.testing.assert_allclose(R, -8.0 * lap, atol=eps * 1.5)

    def test_gauge_wave_spatial_ricci(self):
        """gamma = diag(H(x),1,1) is a flat 3-metric: Ricci = 0."""
        g, _, _ = gauge_wave((32, 4, 4), 1.0 / 32, amplitude=0.1)
        geo = curvature(extended(g), (1.0 / 32, 1.0, 1.0))
        assert np.abs(geo.ricci).max() < 1e-10

    def test_christoffel_symmetry(self):
        g, _, _ = gauge_wave((16, 4, 4), 1.0 / 16, amplitude=0.2)
        geo = curvature(extended(g), (1.0 / 16, 1.0, 1.0))
        np.testing.assert_allclose(
            geo.christoffel, np.swapaxes(geo.christoffel, 1, 2),
            atol=1e-14)

    def test_non_tensor_input_rejected(self):
        with pytest.raises(ValueError):
            curvature(np.zeros((6, 8, 8, 8)), (0.1,) * 3)


class TestConstraints:
    def test_flat_space_constraints_zero(self):
        g, K, _ = minkowski((8, 8, 8))
        geo = curvature(extended(g), (0.1,) * 3)
        H = hamiltonian_constraint(geo, extended(K))
        M = momentum_constraint(geo, extended(K), (0.1,) * 3)
        np.testing.assert_allclose(H, 0.0, atol=1e-13)
        np.testing.assert_allclose(M, 0.0, atol=1e-13)

    def test_gauge_wave_satisfies_constraints(self):
        """The gauge wave is vacuum.  H vanishes identically even
        discretely (the diagonal single-variable metric's Ricci cancels
        term by term and trK^2 == K_ij K^ij); M vanishes to truncation
        and converges at second order."""
        errs = []
        for n in (32, 64):
            dx = 1.0 / n
            g, K, _ = gauge_wave((n, 4, 4), dx, amplitude=0.1)
            geo = curvature(extended(g), (dx, 1.0, 1.0))
            H = hamiltonian_constraint(geo, extended(K))
            M = momentum_constraint(geo, extended(K), (dx, 1.0, 1.0))
            assert np.abs(H).max() < 1e-10
            errs.append(np.abs(M).max())
        assert errs[1] < errs[0]
        assert np.log2(errs[0] / errs[1]) == pytest.approx(2.0, abs=0.4)

    def test_ricci_scalar_converges(self):
        """FD Ricci of a conformally-flat metric converges at order 2."""
        errs = []
        for n in (16, 32):
            h = 2 * np.pi / n
            x = np.arange(n) * h
            xx, yy, _ = np.meshgrid(x, x, x, indexing="ij")
            eps = 1e-5
            psi = 1.0 + eps * np.sin(xx) * np.cos(yy)
            lap = -2.0 * eps * np.sin(xx) * np.cos(yy)
            g = identity_metric((n, n, n)) * psi**4
            geo = curvature(extended(g), (h, h, h))
            errs.append(np.abs(ricci_scalar(geo) + 8.0 * lap).max())
        assert np.log2(errs[0] / errs[1]) == pytest.approx(2.0, abs=0.4)

    def test_nonzero_K_violates_hamiltonian(self):
        g, K, _ = minkowski((8, 8, 8))
        # Two distinct eigenvalues: trK^2 != K_ij K^ij, so H != 0.
        K[0, 0] += 0.1
        K[1, 1] += 0.2
        geo = curvature(extended(g), (0.1,) * 3)
        H = hamiltonian_constraint(geo, extended(K))
        assert np.abs(H).max() > 1e-3


class TestADMRHS:
    def test_minkowski_is_stationary(self):
        g, K, a = minkowski((8, 8, 8))
        dtg, dtK, dta = adm_rhs(extended(g), extended(K), extended(a),
                                (0.1,) * 3)
        np.testing.assert_allclose(dtg, 0.0, atol=1e-14)
        np.testing.assert_allclose(dtK, 0.0, atol=1e-14)
        np.testing.assert_allclose(dta, 0.0, atol=1e-14)

    def test_dt_gamma_is_minus_2_alpha_K(self):
        g, K, a = minkowski((8, 8, 8))
        K[0, 1] = K[1, 0] = 0.05
        dtg, _, _ = adm_rhs(extended(g), extended(K), extended(a),
                            (0.1,) * 3)
        np.testing.assert_allclose(dtg[0, 1], -0.1, atol=1e-12)

    def test_gauge_wave_rhs_matches_exact_time_derivative(self):
        """Compare the ADM RHS against the analytic dt of the exact
        gauge-wave solution (finite-difference truncation only)."""
        n, dx = 64, 1.0 / 64
        shape = (n, 4, 4)
        g0, K0, a0 = gauge_wave(shape, dx, amplitude=0.05, t=0.0)
        dtg, dtK, dta = adm_rhs(extended(g0), extended(K0), extended(a0),
                                (dx, 1.0, 1.0), gauge="harmonic")
        eps = 1e-6
        gp, Kp, ap = gauge_wave(shape, dx, amplitude=0.05, t=eps)
        gm, Km, am = gauge_wave(shape, dx, amplitude=0.05, t=-eps)
        np.testing.assert_allclose(dtg, (gp - gm) / (2 * eps), atol=5e-3)
        np.testing.assert_allclose(dtK, (Kp - Km) / (2 * eps), atol=5e-3)
        np.testing.assert_allclose(dta, (ap - am) / (2 * eps), atol=5e-3)

    def test_lapse_gauges(self):
        a = np.full((2, 2, 2), 2.0)
        trK = np.full((2, 2, 2), 0.5)
        np.testing.assert_allclose(lapse_rhs("geodesic", a, trK), 0.0)
        np.testing.assert_allclose(lapse_rhs("harmonic", a, trK), -2.0)
        np.testing.assert_allclose(lapse_rhs("1+log", a, trK), -2.0)
        with pytest.raises(ValueError, match="unknown gauge"):
            lapse_rhs("maximal", a, trK)
