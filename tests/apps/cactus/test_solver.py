"""Full evolution tests: stability, exactness, convergence, boundaries."""

import numpy as np
import pytest

from repro.apps.cactus.boundaries import radius_on_face, sommerfeld_rhs_face
from repro.apps.cactus.initial import (
    brill_pulse,
    gauge_wave,
    minkowski,
    random_perturbation,
)
from repro.apps.cactus.mol import euler_step, icn_step, rk4_step
from repro.apps.cactus.solver import CactusSolver


class TestMoL:
    """Integrator orders on a scalar exponential-decay state."""

    def _order(self, stepper, dts=(0.1, 0.05), t_end=1.0):
        errs = []
        for dt in dts:
            y = (np.array([1.0]),)
            for _ in range(int(round(t_end / dt))):
                y = stepper(y, lambda s: (-s[0],), dt)
            errs.append(abs(float(y[0][0]) - np.exp(-t_end)))
        return np.log2(errs[0] / errs[1])

    def test_euler_first_order(self):
        assert self._order(euler_step) == pytest.approx(1.0, abs=0.15)

    def test_icn_second_order(self):
        assert self._order(icn_step) == pytest.approx(2.0, abs=0.2)

    def test_rk4_fourth_order(self):
        assert self._order(rk4_step) == pytest.approx(4.0, abs=0.3)

    def test_icn_iteration_guard(self):
        with pytest.raises(ValueError):
            icn_step((np.zeros(1),), lambda s: s, 0.1, iterations=0)


class TestStability:
    def test_minkowski_exactly_stationary(self):
        s = CactusSolver(*minkowski((8, 8, 8)), spacing=0.1)
        s.step(20)
        assert s.deviation_from(*minkowski((8, 8, 8))) == 0.0
        assert s.constraints().max_violation() == 0.0

    def test_robust_stability(self):
        """Random noise on Minkowski must not blow up (AwA robust test)."""
        s = CactusSolver(*random_perturbation((8, 8, 8), amplitude=1e-8),
                         spacing=0.25, gauge="1+log")
        s.step(50)
        assert s.max_field() < 2.0
        # Plain ADM is only weakly hyperbolic: high-frequency constraint
        # growth is expected (the reason BSSN exists) but must stay far
        # from blow-up over this horizon.
        assert s.constraints().max_violation() < 0.05

    def test_brill_pulse_bounded(self):
        s = CactusSolver(*brill_pulse((12, 12, 12), 0.5, amplitude=1e-3),
                         spacing=0.5, gauge="1+log")
        c0 = s.constraints().hamiltonian_linf
        s.step(20)
        assert s.max_field() < 2.0
        assert s.constraints().hamiltonian_linf < 10 * max(c0, 1e-6)


class TestGaugeWave:
    def _evolve(self, n, t_end=0.25, integrator="rk4", amplitude=0.05):
        dx = 1.0 / n
        dt = 0.2 * dx
        s = CactusSolver(*gauge_wave((n, 4, 4), dx, amplitude=amplitude),
                         spacing=dx, dt=dt, gauge="harmonic",
                         integrator=integrator)
        s.step(int(round(t_end / dt)))
        exact = gauge_wave((n, 4, 4), dx, amplitude=amplitude, t=s.time)
        return s.deviation_from(*exact), s

    def test_tracks_exact_solution(self):
        err, s = self._evolve(32)
        assert err < 5e-4
        # The gauge wave is flat spacetime: constraints stay tiny.
        assert s.constraints().hamiltonian_linf < 1e-10

    def test_second_order_convergence(self):
        e16, _ = self._evolve(16)
        e32, _ = self._evolve(32)
        assert np.log2(e16 / e32) == pytest.approx(2.0, abs=0.3)

    def test_leapfrog_also_converges(self):
        """§5 names staggered leapfrog among the MoL options."""
        e16, _ = self._evolve(16, integrator="leapfrog")
        e32, _ = self._evolve(32, integrator="leapfrog")
        assert np.log2(e16 / e32) == pytest.approx(2.0, abs=0.4)

    def test_icn_also_converges(self):
        e16, _ = self._evolve(16, integrator="icn")
        e32, _ = self._evolve(32, integrator="icn")
        assert np.log2(e16 / e32) == pytest.approx(2.0, abs=0.4)

    def test_fourth_order_convergence(self):
        """order=4 + RK4: the gauge-wave error falls at ~4th order."""
        def run(n):
            dx = 1.0 / n
            s = CactusSolver(*gauge_wave((n, 10, 10), dx,
                                         amplitude=0.05),
                             spacing=dx, dt=0.1 * dx, gauge="harmonic",
                             integrator="rk4", order=4)
            s.step(int(round(0.2 / (0.1 * dx))))
            return s.deviation_from(*gauge_wave(
                (n, 10, 10), dx, amplitude=0.05, t=s.time))
        e16, e24 = run(16), run(24)
        order = np.log(e16 / e24) / np.log(24 / 16)
        assert order == pytest.approx(4.0, abs=0.5)

    def test_fourth_order_minkowski_stationary(self):
        s = CactusSolver(*minkowski((10, 10, 10)), spacing=0.1, order=4)
        s.step(5)
        assert s.deviation_from(*minkowski((10, 10, 10))) < 1e-14

    def test_invalid_order(self):
        with pytest.raises(ValueError, match="orders"):
            CactusSolver(*minkowski((8, 8, 8)), order=3)

    def test_wave_actually_moves(self):
        _, s = self._evolve(32, t_end=0.25, amplitude=0.1)
        initial = gauge_wave((32, 4, 4), 1 / 32, amplitude=0.1, t=0.0)
        assert s.deviation_from(*initial) > 1e-2


class TestBoundaries:
    def test_sommerfeld_exact_on_outgoing_wave(self):
        """dt f from the condition == analytic dt of f0 + u(r - t)/r."""
        n = 32
        h = 0.25
        coords = [(np.arange(n) - (n - 1) / 2.0) * h for _ in range(3)]
        xx, yy, zz = np.meshgrid(*coords, indexing="ij")
        r = np.sqrt(xx**2 + yy**2 + zz**2) + 1e-30

        def f_at(t):
            return 1.0 + np.exp(-((r - 5.0 - t) / 2.0) ** 2) / r

        field = f_at(0.0)
        r_face = radius_on_face((n, n, n), (h, h, h), 0, 1)
        rhs = sommerfeld_rhs_face(field, 1.0, axis=0, side=1, spacing=h,
                                  r=r_face)
        eps = 1e-6
        exact = (f_at(eps) - f_at(-eps))[-1] / (2 * eps)
        # The condition uses the face normal as the radial direction, so
        # it is exact only where they align: the centre of the face.
        c = n // 2
        assert rhs[c, c] == pytest.approx(exact[c, c], rel=0.1)
        # Away from the centre it still has the right sign and scale.
        mid = slice(n // 4, 3 * n // 4)
        assert np.abs(rhs[mid, mid] - exact[mid, mid]).max() \
            < 0.5 * np.abs(exact).max() + 1e-3

    def test_radius_on_face_shape(self):
        r = radius_on_face((8, 10, 12), (0.1, 0.1, 0.1), 1, -1)
        assert r.shape == (8, 12)
        assert (r > 0).all()

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            sommerfeld_rhs_face(np.zeros((4, 4, 4)), 0.0, 0, 2, 0.1,
                                np.ones((4, 4)))

    def test_radiative_run_stays_bounded(self):
        s = CactusSolver(*brill_pulse((12, 12, 12), 0.5, amplitude=1e-4),
                         spacing=0.5, gauge="1+log", boundary="radiative")
        s.step(10)
        assert s.max_field() < 2.0

    def test_radiative_run_controlled_with_dissipation(self):
        """Sommerfeld walls on plain ADM feed a slow boundary instability
        (documented limitation); with Kreiss-Oliger dissipation and a
        conservative dt the run stays controlled while the pulse crosses
        the boundary."""
        s = CactusSolver(*brill_pulse((12, 12, 12), 0.4, amplitude=1e-3,
                                      sigma=0.8),
                         spacing=0.4, dt=0.04, gauge="1+log",
                         boundary="radiative", dissipation=0.5)
        def content():
            return float(np.abs(s.gamma - minkowski((12, 12, 12))[0]).sum())
        before = content()
        s.step(20)
        assert content() < 3.0 * before
        assert s.max_field() < 2.0

    def test_dissipation_damps_noise(self):
        """KO dissipation reduces high-frequency constraint growth."""
        def run(diss):
            s = CactusSolver(*random_perturbation((8, 8, 8),
                                                  amplitude=1e-8),
                             spacing=0.25, gauge="1+log",
                             dissipation=diss)
            s.step(30)
            return s.constraints().max_violation()
        assert run(0.5) < run(0.0)

    def test_negative_dissipation_rejected(self):
        with pytest.raises(ValueError, match="dissipation"):
            CactusSolver(*minkowski((6, 6, 6)), dissipation=-0.1)


class TestValidation:
    def test_bad_gauge(self):
        with pytest.raises(ValueError, match="gauge"):
            CactusSolver(*minkowski((6, 6, 6)), gauge="nope")

    def test_bad_integrator(self):
        with pytest.raises(ValueError, match="integrator"):
            CactusSolver(*minkowski((6, 6, 6)), integrator="ab2")

    def test_bad_boundary(self):
        with pytest.raises(ValueError, match="boundary"):
            CactusSolver(*minkowski((6, 6, 6)), boundary="reflecting")

    def test_shape_mismatch(self):
        g, K, a = minkowski((6, 6, 6))
        with pytest.raises(ValueError):
            CactusSolver(g, K, a[:-1])

    def test_anisotropic_spacing_accepted(self):
        s = CactusSolver(*minkowski((6, 6, 6)),
                         spacing=(0.1, 0.2, 0.3))
        assert s.spacing == (0.1, 0.2, 0.3)
        assert s.dt == pytest.approx(0.025)
