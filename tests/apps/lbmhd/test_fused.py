"""Fused-kernel equivalence: FusedStepper vs the naive collide+stream.

The ISSUE's acceptance bar: the optimized kernels must agree with the
naive reference at rtol <= 1e-12 (atol covers populations that are
exactly zero by symmetry).  Fused parallel vs fused serial is bitwise,
since both sides run the identical kernel.
"""

import numpy as np
import pytest

from repro.apps.lbmhd.fused import FusedStepper
from repro.apps.lbmhd.initial import orszag_tang
from repro.apps.lbmhd.lattice import D2Q9, OCT9
from repro.apps.lbmhd.parallel import run_parallel
from repro.apps.lbmhd.solver import LBMHDSolver
from repro.runtime.transport import Transport

RTOL = 1e-12
ATOL = 1e-14


@pytest.mark.parametrize("lattice", [D2Q9, OCT9], ids=["d2q9", "oct9"])
def test_fused_solver_matches_naive(lattice):
    naive = LBMHDSolver(*orszag_tang(48, 40), lattice=lattice,
                        tau=0.8, tau_m=0.9)
    fused = LBMHDSolver(*orszag_tang(48, 40), lattice=lattice,
                        tau=0.8, tau_m=0.9, fused=True)
    for _ in range(20):
        naive.step()
        fused.step()
    np.testing.assert_allclose(fused.f, naive.f, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(fused.g, naive.g, rtol=RTOL, atol=ATOL)


@pytest.mark.parametrize("lattice", [D2Q9, OCT9], ids=["d2q9", "oct9"])
def test_fused_collide_single_step(lattice):
    """One collision, no streaming: isolates the matmul reformulation."""
    from repro.apps.lbmhd.collision import collide

    solver = LBMHDSolver(*orszag_tang(24, 32), lattice=lattice,
                         tau=0.7, tau_m=1.1)
    f0, g0 = solver.f.copy(), solver.g.copy()
    f_ref, g_ref = collide(f0.copy(), g0.copy(), lattice, 0.7, 1.1)
    stepper = FusedStepper(lattice, 0.7, 1.1)
    f_fused, g_fused = f0.copy(), g0.copy()
    stepper.collide(f_fused, g_fused)
    np.testing.assert_allclose(f_fused, f_ref, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(g_fused, g_ref, rtol=RTOL, atol=ATOL)


def test_fused_collide_on_strided_interior_view():
    """Halo-extended interiors are strided; collide must handle them."""
    from repro.apps.lbmhd.collision import collide

    lattice = D2Q9
    solver = LBMHDSolver(*orszag_tang(16, 20), lattice=lattice)
    q, ny, nx = solver.f.shape
    ext_f = np.zeros((q, ny + 4, nx + 4))
    ext_g = np.zeros((q, 2, ny + 4, nx + 4))
    inner = (slice(2, -2), slice(2, -2))
    ext_f[(slice(None),) + inner] = solver.f
    ext_g[(slice(None), slice(None)) + inner] = solver.g
    fv = ext_f[(slice(None),) + inner]
    gv = ext_g[(slice(None), slice(None)) + inner]
    assert not fv.flags["C_CONTIGUOUS"]
    f_ref, g_ref = collide(solver.f.copy(), solver.g.copy(),
                           lattice, 0.8, 0.8)
    stepper = FusedStepper(lattice, 0.8, 0.8)
    stepper.collide(fv, gv)
    np.testing.assert_allclose(fv, f_ref, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(gv, g_ref, rtol=RTOL, atol=ATOL)
    # Halo ring untouched.
    assert np.all(ext_f[:, :2] == 0.0) and np.all(ext_f[:, -2:] == 0.0)


@pytest.mark.parametrize("lattice", [D2Q9, OCT9], ids=["d2q9", "oct9"])
def test_fused_stream_matches_naive(lattice):
    from repro.apps.lbmhd.lattice import stream_all

    rng = np.random.default_rng(7)
    f = rng.normal(size=(lattice.q, 12, 18))
    stepper = FusedStepper(lattice, 0.8, 0.8)
    out = stepper.stream(f.copy(), "f")
    np.testing.assert_array_equal(out, stream_all(f, lattice))


@pytest.mark.parametrize("lattice", [D2Q9, OCT9], ids=["d2q9", "oct9"])
def test_fused_parallel_matches_fused_serial_bitwise(lattice):
    """Same kernel on both sides -> decomposition must not change bits."""
    rho, u, B = orszag_tang(32, 48)
    serial = LBMHDSolver(rho, u, B, lattice=lattice, tau=0.8, tau_m=0.9,
                         fused=True)
    for _ in range(8):
        serial.step()
    rho_p, u_p, B_p = run_parallel(rho, u, B, nprocs=4, nsteps=8,
                                   lattice=lattice, tau=0.8, tau_m=0.9,
                                   fused=True)
    rho_s, u_s, B_s = serial.fields
    np.testing.assert_array_equal(rho_p, rho_s)
    np.testing.assert_array_equal(u_p, u_s)
    np.testing.assert_array_equal(B_p, B_s)


def test_fused_parallel_matches_naive_parallel_legacy_transport():
    """Fused + zero-copy vs naive + legacy deep-copy transport."""
    rho, u, B = orszag_tang(32, 32)
    legacy = Transport(4, zero_copy=False)
    out_naive = run_parallel(rho, u, B, nprocs=4, nsteps=6, lattice=OCT9,
                             tau=0.8, tau_m=0.9, transport=legacy)
    out_fused = run_parallel(rho, u, B, nprocs=4, nsteps=6, lattice=OCT9,
                             tau=0.8, tau_m=0.9, fused=True)
    for a, b in zip(out_naive, out_fused):
        np.testing.assert_allclose(b, a, rtol=RTOL, atol=ATOL)


def test_fused_stepper_steady_state_reuses_buffers():
    """After warmup, repeated steps must not grow scratch allocations."""
    solver = LBMHDSolver(*orszag_tang(24, 24), lattice=OCT9, fused=True)
    solver.step(3)
    stepper = solver._stepper
    ids = {name: id(getattr(stepper, name))
           for name in ("_mom", "_u", "_m2", "_feq", "_geq")}
    solver.step(5)
    for name, before in ids.items():
        assert id(getattr(stepper, name)) == before


def test_fused_stepper_rejects_unstable_tau():
    with pytest.raises(ValueError):
        FusedStepper(D2Q9, 0.5, 0.8)
    with pytest.raises(ValueError):
        FusedStepper(D2Q9, 0.8, 0.4)
