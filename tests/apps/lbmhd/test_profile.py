"""LBMHD work profile: paper-facts and model-shape assertions (Table 3)."""

import pytest

from repro.apps.lbmhd.profile import (
    LBMHDConfig,
    build_profile,
    intensity,
    memory_footprint_gb,
    table3_configs,
)
from repro.machine import ALTIX, ES, POWER3, POWER4, X1
from repro.perf import PerformanceModel


def predict(machine, grid=4096, nprocs=64, variant="mpi"):
    cfg = LBMHDConfig(grid, nprocs, variant)
    return PerformanceModel(machine).predict(build_profile(cfg))


class TestPaperFacts:
    def test_low_computational_intensity(self):
        """§3.2: 'about 1.5 FP operations per data word of access'."""
        assert 1.0 < intensity() < 2.0

    def test_memory_footprints(self):
        """§3.2: 7.5 GB at 4096^2 and 30 GB at 8192^2."""
        assert memory_footprint_gb(4096) == pytest.approx(7.5, rel=0.15)
        assert memory_footprint_gb(8192) == pytest.approx(30.0, rel=0.15)

    def test_table3_configs(self):
        cfgs = table3_configs()
        assert len(cfgs) == 6
        assert {(c.grid, c.nprocs) for c in cfgs} == {
            (4096, 16), (4096, 64), (4096, 256),
            (8192, 64), (8192, 256), (8192, 1024)}

    def test_profile_self_consistent(self):
        p = build_profile(LBMHDConfig(4096, 64))
        p.validate()
        assert p.baseline_flops <= p.total_flops
        assert p.phase("collision").flops > p.phase("stream").flops

    def test_single_rank_has_no_comm(self):
        p = build_profile(LBMHDConfig(4096, 1))
        assert p.comms == []


class TestModelShape:
    """The qualitative Table 3 findings, asserted as inequalities."""

    def test_vector_machines_dominate(self):
        """~44x over Power3, ~16x Power4, ~7x Altix at P=64."""
        es = predict(ES)
        assert 20 < es.gflops_per_proc / predict(POWER3).gflops_per_proc < 70
        assert 8 < es.gflops_per_proc / predict(POWER4).gflops_per_proc < 30
        assert 3 < es.gflops_per_proc / predict(ALTIX).gflops_per_proc < 12

    def test_absolute_rates_in_paper_band(self):
        assert predict(ES).gflops_per_proc == pytest.approx(4.3, rel=0.25)
        assert predict(X1).gflops_per_proc == pytest.approx(4.4, rel=0.25)
        assert predict(POWER3).gflops_per_proc == pytest.approx(
            0.12, rel=0.35)
        assert predict(POWER4).gflops_per_proc == pytest.approx(
            0.29, rel=0.35)

    def test_es_sustains_higher_fraction_than_x1(self):
        """§3.2: ES consistently sustains a higher fraction of peak."""
        assert predict(ES).pct_peak > predict(X1).pct_peak
        assert predict(ES).pct_peak > 40
        assert predict(X1).pct_peak < 45

    def test_altix_best_superscalar(self):
        altix = predict(ALTIX)
        assert altix.gflops_per_proc > predict(POWER4).gflops_per_proc
        assert altix.pct_peak > predict(POWER3).pct_peak

    def test_avl_vor_near_maximum(self):
        """'The AVL and VOR are near maximum for both vector systems.'"""
        for m in (ES, X1):
            r = predict(m)
            assert r.vor > 0.99
            assert r.avl > 0.95 * m.vector.vector_length

    def test_superscalar_memory_bound(self):
        r = predict(POWER3)
        assert all(pt.bound == "memory" for pt in r.phase_times
                   if pt.name in ("collision", "stream"))

    def test_caf_beats_mpi_on_large_grid_x1(self):
        """§3.2: CAF ~ +5% on the large test case on the X1."""
        mpi = predict(X1, grid=8192, nprocs=64, variant="mpi")
        caf = predict(X1, grid=8192, nprocs=64, variant="caf")
        assert caf.gflops_per_proc > mpi.gflops_per_proc

    def test_caf_message_tradeoff_visible(self):
        mpi = build_profile(LBMHDConfig(8192, 64, "mpi"))
        caf = build_profile(LBMHDConfig(8192, 64, "caf"))
        assert caf.comms[0].messages == 2 * mpi.comms[0].messages
        assert caf.comms[0].onesided
        # MPI pays a buffer-copy phase CAF does not have.
        assert any(p.name == "buffer-copy" for p in mpi.phases)
        assert not any(p.name == "buffer-copy" for p in caf.phases)

    def test_performance_declines_with_concurrency_on_vector(self):
        """Fixed-size scaling: 4096^2 on ES slows from P=16 to P=256."""
        r16 = predict(ES, nprocs=16)
        r256 = predict(ES, nprocs=256)
        assert r256.gflops_per_proc < r16.gflops_per_proc

    def test_es_speedup_over_power3_band(self):
        """Table 7 headline: ~30x at largest comparable concurrency."""
        es = predict(ES, grid=8192, nprocs=1024)
        p3 = predict(POWER3, grid=8192, nprocs=1024)
        assert 20 < es.gflops_per_proc / p3.gflops_per_proc < 60
