"""Lattices: moment identities, interpolation, streaming conservation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lbmhd.lattice import (
    D2Q9,
    OCT9,
    Lattice,
    lagrange_weights,
    stream_all,
    stream_field,
)


class TestLatticeDefinitions:
    def test_d2q9_structure(self):
        assert D2Q9.q == 9
        assert D2Q9.cs2 == pytest.approx(1 / 3)
        assert D2Q9.is_exact
        np.testing.assert_array_equal(D2Q9.shifts[0], [0, 0])

    def test_oct9_structure(self):
        assert OCT9.q == 9
        assert OCT9.cs2 == pytest.approx(0.25)
        assert not OCT9.is_exact
        # Eight unit vectors at 45 degrees (Fig. 2a).
        norms = np.linalg.norm(OCT9.velocities[1:], axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_moment_identities(self):
        D2Q9.check_moments()
        OCT9.check_moments()

    def test_bad_weights_detected(self):
        bad = Lattice("bad", D2Q9.velocities, D2Q9.weights * 1.01,
                      D2Q9.cs2, D2Q9.shifts, D2Q9.fractions)
        with pytest.raises(ValueError, match="sum to 1"):
            bad.check_moments()

    def test_oct9_fractions(self):
        # Axis directions exact, diagonals at 1/sqrt(2).
        fr = OCT9.fractions
        assert fr[0] == 1.0
        assert np.sum(fr == 1.0) == 5
        np.testing.assert_allclose(fr[fr != 1.0], 1 / np.sqrt(2))


class TestLagrange:
    def test_reproduces_nodes(self):
        nodes = np.array([-2.0, -1.0, 0.0, 1.0])
        for i, x in enumerate(nodes):
            w = lagrange_weights(nodes, float(x))
            expect = np.zeros(4)
            expect[i] = 1.0
            np.testing.assert_allclose(w, expect, atol=1e-12)

    def test_weights_sum_to_one(self):
        w = lagrange_weights(np.array([-2.0, -1.0, 0.0, 1.0]), -0.7071)
        assert w.sum() == pytest.approx(1.0)

    @given(x=st.floats(-2.0, 1.0))
    def test_exact_for_cubics(self, x):
        nodes = np.array([-2.0, -1.0, 0.0, 1.0])
        w = lagrange_weights(nodes, x)
        poly = lambda t: 1.0 + 2 * t - 0.5 * t**2 + 0.25 * t**3
        assert np.dot(w, poly(nodes)) == pytest.approx(poly(x), abs=1e-9)


class TestStreaming:
    def test_exact_streaming_shifts(self):
        field = np.zeros((8, 8))
        field[3, 3] = 1.0
        out = stream_field(field, D2Q9, 1)  # velocity (+x)
        assert out[3, 4] == 1.0

    def test_exact_streaming_periodic_wrap(self):
        field = np.zeros((4, 4))
        field[0, 3] = 1.0
        out = stream_field(field, D2Q9, 1)
        assert out[0, 0] == 1.0

    def test_rest_direction_identity(self):
        rng = np.random.default_rng(1)
        field = rng.random((6, 6))
        np.testing.assert_array_equal(stream_field(field, OCT9, 0), field)

    def test_interpolated_streaming_conserves_sum(self):
        """Lagrange weights sum to 1 => global conservation on a torus."""
        rng = np.random.default_rng(2)
        field = rng.random((16, 16))
        for i in range(9):
            out = stream_field(field, OCT9, i)
            assert out.sum() == pytest.approx(field.sum(), rel=1e-12)

    def test_interpolated_streaming_exact_on_linear_field(self):
        # Cubic interpolation is exact on polynomials; a plane along the
        # streaming diagonal must be advected exactly (interior points).
        ny = nx = 16
        yy, xx = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
        field = (xx + yy).astype(float)
        i = next(k for k in range(9) if OCT9.fractions[k] != 1.0
                 and OCT9.shifts[k][0] > 0 and OCT9.shifts[k][1] > 0)
        out = stream_field(field, OCT9, i)
        s = 1 / np.sqrt(2)
        # away from the periodic seam the advected plane is (x-s)+(y-s)
        np.testing.assert_allclose(out[4:12, 4:12],
                                   field[4:12, 4:12] - 2 * s, atol=1e-10)

    def test_stream_all_shape_check(self):
        with pytest.raises(ValueError, match="leading dimension"):
            stream_all(np.zeros((5, 4, 4)), D2Q9)

    def test_stream_all_roundtrip_d2q9(self):
        """Streaming each direction then its opposite is the identity."""
        rng = np.random.default_rng(3)
        f = rng.random((9, 8, 8))
        opposite = {1: 3, 2: 4, 5: 7, 6: 8}
        for i, j in opposite.items():
            once = stream_field(f[i], D2Q9, i)
            back = stream_field(once, D2Q9, j)
            np.testing.assert_array_equal(back, f[i])

    @settings(max_examples=20)
    @given(seed=st.integers(0, 1000), direction=st.integers(0, 8))
    def test_streaming_linear_operator(self, seed, direction):
        rng = np.random.default_rng(seed)
        a, b = rng.random((2, 8, 8))
        lhs = stream_field(a + 2 * b, OCT9, direction)
        rhs = (stream_field(a, OCT9, direction)
               + 2 * stream_field(b, OCT9, direction))
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)
