"""Parallel LBMHD: serial equivalence and traffic accounting."""

import numpy as np
import pytest

from repro.apps.lbmhd.initial import orszag_tang
from repro.apps.lbmhd.lattice import D2Q9, OCT9
from repro.apps.lbmhd.parallel import halo_width, run_parallel, stream_extended
from repro.apps.lbmhd.solver import LBMHDSolver
from repro.runtime import Transport


def serial_fields(lattice, nsteps, ny=20, nx=20):
    s = LBMHDSolver(*orszag_tang(ny, nx), lattice=lattice,
                    tau=0.8, tau_m=0.8)
    s.step(nsteps)
    return s.fields


class TestSerialEquivalence:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    @pytest.mark.parametrize("lattice", [D2Q9, OCT9],
                             ids=["D2Q9", "OCT9"])
    def test_bitwise_match_mpi(self, lattice, nprocs):
        rho, u, B = orszag_tang(20, 20)
        r_s, u_s, B_s = serial_fields(lattice, 4)
        r_p, u_p, B_p = run_parallel(rho, u, B, nprocs=nprocs, nsteps=4,
                                     lattice=lattice, tau=0.8, tau_m=0.8)
        np.testing.assert_array_equal(r_p, r_s)
        np.testing.assert_array_equal(u_p, u_s)
        np.testing.assert_array_equal(B_p, B_s)

    @pytest.mark.parametrize("nprocs", [4, 9])
    def test_bitwise_match_caf(self, nprocs):
        rho, u, B = orszag_tang(18, 18)
        r_s, u_s, B_s = serial_fields(D2Q9, 3, 18, 18)
        r_p, u_p, B_p = run_parallel(rho, u, B, nprocs=nprocs, nsteps=3,
                                     use_caf=True, tau=0.8, tau_m=0.8)
        np.testing.assert_array_equal(r_p, r_s)
        np.testing.assert_array_equal(B_p, B_s)

    def test_nonsquare_grid(self):
        rho, u, B = orszag_tang(12, 24)
        s = LBMHDSolver(rho, u, B, tau=0.8, tau_m=0.8)
        s.step(3)
        r_s = s.fields[0]
        r_p, _, _ = run_parallel(rho, u, B, nprocs=4, nsteps=3,
                                 tau=0.8, tau_m=0.8)
        np.testing.assert_array_equal(r_p, r_s)


class TestHaloMechanics:
    def test_halo_widths(self):
        assert halo_width(D2Q9) == 1
        assert halo_width(OCT9) == 2

    def test_stream_extended_matches_global(self):
        """Streaming a halo-extended block == cropped global streaming."""
        from repro.apps.lbmhd.lattice import stream_all

        rng = np.random.default_rng(5)
        f = rng.random((9, 12, 12))
        expect = stream_all(f, OCT9)
        h = halo_width(OCT9)
        ext = np.zeros((9, 12 + 2 * h, 12 + 2 * h))
        ext[:, h:-h, h:-h] = f
        # periodic halos from the global array
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dy == dx == 0:
                    continue
                ys = slice(0, h) if dy < 0 else \
                    (slice(h + 12, h + 12 + h) if dy > 0 else slice(h, h + 12))
                xs = slice(0, h) if dx < 0 else \
                    (slice(h + 12, h + 12 + h) if dx > 0 else slice(h, h + 12))
                gys = slice(12 - h, 12) if dy < 0 else \
                    (slice(0, h) if dy > 0 else slice(0, 12))
                gxs = slice(12 - h, 12) if dx < 0 else \
                    (slice(0, h) if dx > 0 else slice(0, 12))
                ext[:, ys, xs] = f[:, gys, gxs]
        out = stream_extended(ext, OCT9, h)
        np.testing.assert_allclose(out, expect, atol=1e-13)

    def test_subdomain_smaller_than_halo_rejected(self):
        rho, u, B = orszag_tang(4, 8)  # 16 ranks -> 1x2 blocks, halo 2
        with pytest.raises(RuntimeError, match="smaller than halo"):
            run_parallel(rho, u, B, nprocs=16, nsteps=1, lattice=OCT9)


class TestTrafficAccounting:
    def test_caf_more_messages_same_bytes(self):
        """§3.2: CAF sends more, smaller messages; same payload volume."""
        rho, u, B = orszag_tang(16, 16)
        tr_mpi, tr_caf = Transport(4), Transport(4)
        run_parallel(rho, u, B, nprocs=4, nsteps=2, transport=tr_mpi)
        run_parallel(rho, u, B, nprocs=4, nsteps=2, use_caf=True,
                     transport=tr_caf)
        assert tr_caf.message_count() == 2 * tr_mpi.message_count()
        assert tr_caf.total_bytes(onesided=True) == tr_mpi.total_bytes()

    def test_halo_volume_matches_prediction(self):
        """Measured bytes == the analytic volume used by the profile."""
        rho, u, B = orszag_tang(16, 16)
        tr = Transport(4)
        run_parallel(rho, u, B, nprocs=4, nsteps=1, transport=tr,
                     lattice=D2Q9)
        ly = lx = 8
        h = 1
        per_rank = (2 * (ly + lx) * h + 4 * h * h) * 27 * 8
        halo_msgs = [m for m in tr.messages if m.phase == "halo"]
        assert sum(m.nbytes for m in halo_msgs) == 4 * per_rank

    def test_phases_labelled(self):
        rho, u, B = orszag_tang(16, 16)
        tr = Transport(4)
        run_parallel(rho, u, B, nprocs=4, nsteps=1, transport=tr)
        assert {m.phase for m in tr.messages} == {"halo"}
