"""LBMHD physics: equilibria, collision invariants, solver behaviour."""

import numpy as np
import pytest

from repro.apps.lbmhd.collision import collide, resistivity, viscosity
from repro.apps.lbmhd.equilibrium import (
    check_equilibrium_moments,
    f_equilibrium,
    g_equilibrium,
    moments,
)
from repro.apps.lbmhd.initial import cross_current_sheets, orszag_tang
from repro.apps.lbmhd.lattice import D2Q9, OCT9
from repro.apps.lbmhd.solver import LBMHDSolver


def random_state(ny=12, nx=10, seed=0):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.05 * rng.standard_normal((ny, nx))
    u = 0.05 * rng.standard_normal((2, ny, nx))
    B = 0.05 * rng.standard_normal((2, ny, nx))
    return rho, u, B


class TestEquilibria:
    @pytest.mark.parametrize("lattice", [D2Q9, OCT9],
                             ids=["D2Q9", "OCT9"])
    def test_moment_identities(self, lattice):
        rho, u, B = random_state()
        check_equilibrium_moments(rho, u, B, lattice)

    def test_rest_state_equilibrium(self):
        rho = np.ones((4, 4))
        z = np.zeros((2, 4, 4))
        feq = f_equilibrium(rho, z, z, D2Q9)
        np.testing.assert_allclose(
            feq, np.broadcast_to(D2Q9.weights[:, None, None], feq.shape),
            atol=1e-14)
        geq = g_equilibrium(z, z, D2Q9)
        np.testing.assert_allclose(geq, 0.0, atol=1e-14)

    def test_maxwell_stress_enters_feq(self):
        """A pure B-field changes the fluid stress (Lorentz coupling)."""
        rho = np.ones((4, 4))
        z = np.zeros((2, 4, 4))
        B = np.zeros((2, 4, 4))
        B[0] = 0.1
        with_b = f_equilibrium(rho, z, B, D2Q9)
        without = f_equilibrium(rho, z, z, D2Q9)
        assert not np.allclose(with_b, without)

    def test_induction_term_antisymmetric(self):
        """g_eq first moment must be u B - B u (antisymmetric)."""
        rho, u, B = random_state()
        geq = g_equilibrium(u, B, OCT9)
        m1 = np.einsum("qayx,qb->bayx", geq, OCT9.velocities)
        expected = u[:, None] * B[None, :] - B[:, None] * u[None, :]
        np.testing.assert_allclose(m1, expected, atol=1e-12)


class TestCollision:
    @pytest.mark.parametrize("lattice", [D2Q9, OCT9],
                             ids=["D2Q9", "OCT9"])
    def test_collision_invariants(self, lattice):
        """Collision conserves rho, momentum, and B pointwise."""
        rho, u, B = random_state()
        f = f_equilibrium(rho, u, B, lattice)
        g = g_equilibrium(u, B, lattice)
        # Perturb off equilibrium, then collide.
        rng = np.random.default_rng(7)
        f = f + 0.01 * rng.standard_normal(f.shape)
        g = g + 0.01 * rng.standard_normal(g.shape)
        rho0, u0, B0 = moments(f, g, lattice)
        f2, g2 = collide(f, g, lattice, tau=0.9, tau_m=0.7)
        rho1, u1, B1 = moments(f2, g2, lattice)
        np.testing.assert_allclose(rho1, rho0, atol=1e-13)
        np.testing.assert_allclose(rho1[None] * u1, rho0[None] * u0,
                                   atol=1e-13)
        np.testing.assert_allclose(B1, B0, atol=1e-13)

    def test_equilibrium_is_fixed_point(self):
        rho, u, B = random_state()
        f = f_equilibrium(rho, u, B, D2Q9)
        g = g_equilibrium(u, B, D2Q9)
        f2, g2 = collide(f, g, D2Q9, tau=0.8, tau_m=0.8)
        np.testing.assert_allclose(f2, f, atol=1e-13)
        np.testing.assert_allclose(g2, g, atol=1e-13)

    def test_unstable_tau_rejected(self):
        rho, u, B = random_state()
        f = f_equilibrium(rho, u, B, D2Q9)
        g = g_equilibrium(u, B, D2Q9)
        with pytest.raises(ValueError, match="relaxation"):
            collide(f, g, D2Q9, tau=0.5, tau_m=0.8)

    def test_transport_coefficients(self):
        assert viscosity(0.8, D2Q9) == pytest.approx(0.1)
        assert resistivity(1.0, OCT9) == pytest.approx(0.125)


class TestSolver:
    @pytest.mark.parametrize("lattice", [D2Q9, OCT9],
                             ids=["D2Q9", "OCT9"])
    def test_global_conservation(self, lattice):
        s = LBMHDSolver(*orszag_tang(24, 24), lattice=lattice)
        d0 = s.diagnostics()
        s.step(30)
        d1 = s.diagnostics()
        assert d1.mass == pytest.approx(d0.mass, rel=1e-12)
        assert d1.momentum[0] == pytest.approx(d0.momentum[0], abs=1e-9)
        assert d1.momentum[1] == pytest.approx(d0.momentum[1], abs=1e-9)
        assert d1.magnetic_flux[0] == pytest.approx(d0.magnetic_flux[0],
                                                    abs=1e-9)

    def test_energy_decays(self):
        """Decaying turbulence: total energy must fall monotonically."""
        s = LBMHDSolver(*orszag_tang(32, 32), tau=0.8, tau_m=0.8)
        hist = s.run_with_history(60, every=10)
        energies = [d.total_energy for d in hist]
        assert all(a >= b for a, b in zip(energies, energies[1:]))
        assert energies[-1] < 0.9 * energies[0]

    def test_divb_stays_small(self):
        s = LBMHDSolver(*orszag_tang(32, 32))
        s.step(50)
        d = s.diagnostics()
        # Initial field is div-free; the scheme keeps divB at the
        # truncation level, far below the field magnitude (~0.1).
        assert d.max_divb < 5e-3

    def test_current_sheets_decay(self):
        """Figure 1: current density of the cross structures decays."""
        s = LBMHDSolver(*cross_current_sheets(48, 48), tau=0.6, tau_m=0.6)
        j0 = np.abs(s.current_density()).max()
        s.step(150)
        j1 = np.abs(s.current_density()).max()
        assert 0 < j1 < 0.6 * j0

    def test_flat_state_is_steady(self):
        rho = np.ones((8, 8))
        z = np.zeros((2, 8, 8))
        s = LBMHDSolver(rho, z, z)
        s.step(5)
        r1, u1, B1 = s.fields
        np.testing.assert_allclose(r1, 1.0, atol=1e-13)
        np.testing.assert_allclose(u1, 0.0, atol=1e-13)
        np.testing.assert_allclose(B1, 0.0, atol=1e-13)

    def test_viscosity_orders_decay_rate(self):
        """Higher tau (viscosity) -> faster kinetic-energy decay."""
        rates = []
        for tau in (0.6, 1.2):
            s = LBMHDSolver(*orszag_tang(24, 24), tau=tau, tau_m=0.8)
            e0 = s.diagnostics().kinetic_energy
            s.step(40)
            rates.append(s.diagnostics().kinetic_energy / e0)
        assert rates[1] < rates[0]

    def test_input_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            LBMHDSolver(np.ones(4), np.zeros((2, 4)), np.zeros((2, 4)))
        with pytest.raises(ValueError, match="shape"):
            LBMHDSolver(np.ones((4, 4)), np.zeros((2, 4, 4)),
                        np.zeros((2, 5, 4)))

    def test_oct9_matches_d2q9_qualitatively(self):
        """Both lattices simulate the same MHD physics: energies track."""
        e = {}
        for lat in (D2Q9, OCT9):
            s = LBMHDSolver(*orszag_tang(32, 32), lattice=lat,
                            tau=0.8, tau_m=0.8)
            s.step(40)
            e[lat.name] = s.diagnostics().total_energy
        assert e["OCT9"] == pytest.approx(e["D2Q9"], rel=0.35)


class TestInitialConditions:
    def test_orszag_tang_divergence_free(self):
        _, _, B = orszag_tang(64, 64)
        dbx = 0.5 * (np.roll(B[0], -1, 1) - np.roll(B[0], 1, 1))
        dby = 0.5 * (np.roll(B[1], -1, 0) - np.roll(B[1], 1, 0))
        assert np.abs(dbx + dby).max() < 2e-2 * np.abs(B).max()

    def test_cross_sheets_divergence_free(self):
        _, _, B = cross_current_sheets(64, 64)
        dbx = 0.5 * (np.roll(B[0], -1, 1) - np.roll(B[0], 1, 1))
        dby = 0.5 * (np.roll(B[1], -1, 0) - np.roll(B[1], 1, 0))
        assert np.abs(dbx + dby).max() < 2e-2 * np.abs(B).max()

    def test_cross_sheets_have_two_structures(self):
        rho, u, B = cross_current_sheets(64, 64)
        assert (u == 0).all()
        assert (rho == 1.0).all()
        assert np.abs(B).max() > 0

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            orszag_tang(2, 2)
        with pytest.raises(ValueError):
            cross_current_sheets(4, 4)
