"""LBMHD under faults: crash/restart is bitwise, drops are survived."""

import numpy as np

from repro.apps.lbmhd import orszag_tang
from repro.apps.lbmhd.parallel import run_parallel
from repro.resilience import Checkpointer
from repro.runtime import FaultInjector, FaultPlan, Transport

NPROCS, NSTEPS = 4, 6


def _clean():
    rho, u, B = orszag_tang(16, 16)
    return (rho, u, B), run_parallel(rho, u, B, nprocs=NPROCS,
                                     nsteps=NSTEPS)


def test_crash_restart_bitwise(tmp_path):
    """Crash rank 2 at step 3, restart from checkpoint: identical bits."""
    (rho, u, B), clean = _clean()
    injector = FaultInjector(FaultPlan(seed=3, crash_rank=2, crash_step=3))
    faulted = run_parallel(rho, u, B, nprocs=NPROCS, nsteps=NSTEPS,
                           injector=injector,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=2)
    assert injector.crash_fired
    for a, b in zip(clean, faulted):
        assert np.array_equal(a, b)


def test_caf_path_crash_restart_bitwise(tmp_path):
    """The one-sided CAF port checkpoints and restarts identically too."""
    rho, u, B = orszag_tang(16, 16)
    clean = run_parallel(rho, u, B, nprocs=NPROCS, nsteps=NSTEPS,
                         use_caf=True)
    injector = FaultInjector(FaultPlan(seed=4, crash_rank=1, crash_step=4))
    faulted = run_parallel(rho, u, B, nprocs=NPROCS, nsteps=NSTEPS,
                           use_caf=True, injector=injector,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=3)
    for a, b in zip(clean, faulted):
        assert np.array_equal(a, b)


def test_halo_drops_survived_with_invariants():
    """>=5% of halo messages dropped: retries recover, physics intact."""
    (rho, u, B), clean = _clean()
    injector = FaultInjector(FaultPlan(seed=5, drop=0.08,
                                       backoff_base=0.0002))
    transport = Transport(NPROCS)
    faulted = run_parallel(rho, u, B, nprocs=NPROCS, nsteps=NSTEPS,
                           transport=transport, injector=injector)
    for a, b in zip(clean, faulted):
        assert np.array_equal(a, b)
    # mass conservation (the lattice-BGK invariant)
    assert abs(faulted[0].sum() - rho.sum()) < 1e-8
    # faults actually fired and every retry is a distinct profile record
    assert injector.counts().get("drop", 0) > 0
    halo = [m for m in transport.messages if m.phase == "halo"]
    assert sum(1 for m in halo if m.resend) > 0
    assert transport.undelivered() == 0


def test_checkpoint_alone_changes_nothing(tmp_path):
    """Checkpointing without faults must not perturb the run."""
    (rho, u, B), clean = _clean()
    faulted = run_parallel(rho, u, B, nprocs=NPROCS, nsteps=NSTEPS,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=2)
    for a, b in zip(clean, faulted):
        assert np.array_equal(a, b)
