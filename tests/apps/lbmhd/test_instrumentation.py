"""Counter instrumentation: measured AVL/VOR vs model and paper."""

import pytest

from repro.apps.lbmhd import LBMHDConfig, LBMHDSolver, build_profile
from repro.apps.lbmhd.instrumentation import (
    counters_for,
    record_step,
    run_instrumented,
)
from repro.apps.lbmhd.initial import orszag_tang
from repro.apps.lbmhd.profile import (
    COLLISION_FLOPS_PER_POINT,
    STREAM_FLOPS_PER_POINT,
)
from repro.machine import ES, POWER3, X1, strip_mined_avl
from repro.perf import PerformanceModel


class TestInstrumentedRun:
    def test_counters_advance_with_solver(self):
        solver = LBMHDSolver(*orszag_tang(32, 32))
        c = run_instrumented(solver, ES, nsteps=3)
        assert solver.step_count == 3
        expected = 3 * 32 * 32 * (COLLISION_FLOPS_PER_POINT
                                  + STREAM_FLOPS_PER_POINT)
        assert c.flops == pytest.approx(expected)

    def test_avl_matches_strip_mining(self):
        solver = LBMHDSolver(*orszag_tang(16, 40))
        c = counters_for(ES)
        record_step(solver, c)
        assert c.avl == pytest.approx(strip_mined_avl(40, 256))

    def test_vor_is_unity_for_lbmhd(self):
        """§3.2: 'AVL and VOR are near maximum' — fully vectorized."""
        solver = LBMHDSolver(*orszag_tang(16, 16))
        c = run_instrumented(solver, ES, nsteps=2)
        assert c.vor == 1.0

    def test_counters_match_performance_model_avl(self):
        """Measured counters and the analytic model agree on AVL for
        the same subdomain geometry."""
        cfg = LBMHDConfig(4096, 64)    # 512x512 subdomains
        model = PerformanceModel(ES).predict(build_profile(cfg))
        solver = LBMHDSolver(*orszag_tang(16, 512))
        c = run_instrumented(solver, ES, nsteps=1)
        assert c.avl == pytest.approx(model.avl, rel=1e-6)

    def test_x1_strip_mines_to_64(self):
        solver = LBMHDSolver(*orszag_tang(16, 100))
        c = run_instrumented(solver, X1, nsteps=1)
        assert c.avl == pytest.approx(strip_mined_avl(100, 64))
        assert c.avl <= 64

    def test_scalar_machine_counts_scalar(self):
        solver = LBMHDSolver(*orszag_tang(16, 16))
        c = run_instrumented(solver, POWER3, nsteps=1)
        assert c.vor == 0.0
        assert c.avl == 0.0

    def test_phase_attribution(self):
        solver = LBMHDSolver(*orszag_tang(16, 16))
        c = run_instrumented(solver, ES, nsteps=1)
        assert set(c.by_phase) == {"collision", "stream"}
        assert c.by_phase["collision"] > c.by_phase["stream"]

    def test_words_accounted(self):
        solver = LBMHDSolver(*orszag_tang(8, 8))
        c = run_instrumented(solver, ES, nsteps=1)
        assert c.loads_stores > 0
