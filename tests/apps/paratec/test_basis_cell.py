"""Cells, pseudopotential, and the plane-wave basis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.paratec.basis import PlaneWaveBasis
from repro.apps.paratec.lattice_cell import (
    SI_LATTICE_CONSTANT,
    Cell,
    silicon_primitive,
    silicon_supercell,
)
from repro.apps.paratec.pseudopotential import (
    SI_FORM_FACTORS,
    form_factor,
    local_potential_coefficients,
)


class TestCells:
    def test_primitive_cell(self):
        cell = silicon_primitive()
        assert cell.natoms == 2
        assert cell.nelectrons == 8
        assert cell.nbands_occupied == 4
        # fcc primitive volume = a^3 / 4.
        assert cell.volume == pytest.approx(SI_LATTICE_CONSTANT**3 / 4)

    def test_paper_supercells(self):
        """Table 4's systems: 432 = 2x6^3 and 686 = 2x7^3 atoms."""
        assert silicon_supercell(6).natoms == 432
        assert silicon_supercell(7).natoms == 686

    def test_supercell_volume_scales(self):
        prim = silicon_primitive()
        sup = silicon_supercell(3)
        assert sup.volume == pytest.approx(27 * prim.volume)

    def test_reciprocal_duality(self):
        cell = silicon_supercell(2)
        prod = cell.lattice @ cell.reciprocal().T
        np.testing.assert_allclose(prod, 2 * np.pi * np.eye(3),
                                   atol=1e-10)

    def test_structure_factor_symmetric_basis(self):
        """Atoms at +-tau make S(G) real (= cos(G.tau))."""
        cell = silicon_primitive()
        g = cell.reciprocal()[0:1] * 1.0
        s = cell.structure_factor(g)
        assert abs(s[0].imag) < 1e-12

    def test_bad_cell_rejected(self):
        with pytest.raises(ValueError):
            Cell(np.eye(2), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            Cell(np.eye(3), np.zeros((3,)))


class TestPseudopotential:
    def test_form_factor_shells(self):
        unit = np.array([3.0, 8.0, 11.0, 4.0, 0.0])
        v = form_factor(unit)
        assert v[0] == SI_FORM_FACTORS[3]
        assert v[1] == SI_FORM_FACTORS[8]
        assert v[2] == SI_FORM_FACTORS[11]
        assert v[3] == 0.0 and v[4] == 0.0

    def test_v3_is_attractive(self):
        assert SI_FORM_FACTORS[3] < 0

    def test_potential_real_for_diamond(self):
        cell = silicon_primitive()
        basis = PlaneWaveBasis(cell, ecut=4.0)
        v = local_potential_coefficients(cell, basis.g_cart)
        assert np.abs(v.imag).max() < 1e-12

    def test_supercell_zeros_off_lattice_G(self):
        """Supercell G's not on the primitive reciprocal lattice carry
        no ionic potential (structure-factor extinction)."""
        sup = silicon_supercell(2)
        basis = PlaneWaveBasis(sup, ecut=2.0)
        v = local_potential_coefficients(sup, basis.g_cart)
        nonzero = np.abs(v) > 1e-10
        # Only a minority of supercell G's survive.
        assert 0 < nonzero.sum() < 0.6 * basis.size


class TestPlaneWaveBasis:
    def test_cutoff_respected(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        assert (basis.kinetic < 5.0).all()
        assert basis.size > 50

    def test_g0_present(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        idx = basis.index_of((0, 0, 0))
        assert basis.kinetic[idx] == 0.0

    def test_sphere_symmetric(self):
        """G in basis => -G in basis (real potentials need both)."""
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        for g in basis.g_int[:20]:
            basis.index_of(tuple(-g))

    def test_basis_grows_with_cutoff(self):
        cell = silicon_primitive()
        assert PlaneWaveBasis(cell, 8.0).size > \
            PlaneWaveBasis(cell, 4.0).size

    def test_columns_partition_sphere(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        total = sum(len(v) for v in basis.columns.values())
        assert total == basis.size

    def test_fft_shape_holds_products(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        span = 2 * np.abs(basis.g_int).max(axis=0) + 1
        assert all(n >= s for n, s in zip(basis.fft_shape, span))

    def test_grid_roundtrip(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=5.0)
        rng = np.random.default_rng(0)
        c = rng.standard_normal(basis.size) \
            + 1j * rng.standard_normal(basis.size)
        np.testing.assert_allclose(basis.to_sphere(basis.to_grid(c)), c,
                                   atol=1e-12)

    def test_to_grid_batched(self):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=4.0)
        rng = np.random.default_rng(1)
        c = rng.standard_normal((3, basis.size)) * (1 + 0j)
        batched = basis.to_grid(c)
        for b in range(3):
            np.testing.assert_allclose(batched[b], basis.to_grid(c[b]),
                                       atol=1e-13)

    def test_g0_coefficient_is_mean(self):
        """c at G=0 transforms to a constant field."""
        basis = PlaneWaveBasis(silicon_primitive(), ecut=4.0)
        c = np.zeros(basis.size, dtype=complex)
        c[basis.index_of((0, 0, 0))] = 2.5
        np.testing.assert_allclose(basis.to_grid(c), 2.5, atol=1e-12)

    def test_invalid_ecut(self):
        with pytest.raises(ValueError):
            PlaneWaveBasis(silicon_primitive(), ecut=0.0)

    @settings(max_examples=10, deadline=None)
    @given(ecut=st.floats(2.0, 8.0))
    def test_parseval(self, ecut):
        basis = PlaneWaveBasis(silicon_primitive(), ecut=ecut)
        rng = np.random.default_rng(2)
        c = rng.standard_normal(basis.size) * (1 + 0j)
        psi = basis.to_grid(c)
        n = np.prod(basis.fft_shape)
        assert (np.abs(psi)**2).sum() / n == pytest.approx(
            (np.abs(c)**2).sum(), rel=1e-10)
