"""Hamiltonian, eigensolvers, density, XC, and the SCF loop."""

import numpy as np
import pytest

from repro.apps.paratec.basis import PlaneWaveBasis
from repro.apps.paratec.cg import cg_iterate, random_bands, solve_dense
from repro.apps.paratec.density import (
    band_density,
    hartree_potential,
    lda_xc,
    xc_energy,
)
from repro.apps.paratec.hamiltonian import (
    Hamiltonian,
    orthonormalize,
    subspace_rotate,
    teter_preconditioner,
)
from repro.apps.paratec.lattice_cell import silicon_primitive
from repro.apps.paratec.scf import SCFSolver

HA_TO_EV = 27.2114


@pytest.fixture(scope="module")
def si():
    cell = silicon_primitive()
    basis = PlaneWaveBasis(cell, ecut=5.5)
    ham = Hamiltonian.ionic(basis)
    return cell, basis, ham


class TestHamiltonian:
    def test_apply_matches_dense(self, si):
        _, basis, ham = si
        rng = np.random.default_rng(0)
        c = rng.standard_normal(basis.size) * (1 + 0j)
        h = ham.dense()
        np.testing.assert_allclose(ham.apply(c), h @ c, atol=1e-10)

    def test_hermitian(self, si):
        _, _, ham = si
        h = ham.dense()
        np.testing.assert_allclose(h, h.conj().T, atol=1e-10)

    def test_free_electron_limit(self, si):
        """With V = 0 the eigenvalues are the kinetic energies."""
        _, basis, _ = si
        free = Hamiltonian(basis)
        evals, _ = solve_dense(free, 5)
        np.testing.assert_allclose(evals, np.sort(basis.kinetic)[:5],
                                   atol=1e-12)

    def test_expectation(self, si):
        _, basis, ham = si
        c = random_bands(basis.size, 3, seed=1)
        e = ham.expectation(c)
        assert e.shape == (3,)
        assert (e > -10).all()


class TestSiliconPhysics:
    def test_gamma_point_band_structure(self, si):
        """Cohen-Bergstresser silicon at Gamma: a single low band, the
        triply degenerate Gamma_25' valence top, and the triply
        degenerate Gamma_15 conduction level ~3.4 eV above it."""
        _, _, ham = si
        evals, _ = solve_dense(ham, 8)
        ev = (evals - evals[3]) * HA_TO_EV
        np.testing.assert_allclose(ev[1:4], 0.0, atol=0.05)
        gap = ev[4]
        assert gap == pytest.approx(3.4, abs=0.4)
        np.testing.assert_allclose(ev[4:7], gap, atol=0.05)

    def test_gap_converges_with_cutoff(self):
        cell = silicon_primitive()
        gaps = []
        for ecut in (4.0, 6.0, 9.0):
            ham = Hamiltonian.ionic(PlaneWaveBasis(cell, ecut))
            evals, _ = solve_dense(ham, 5)
            gaps.append((evals[4] - evals[3]) * HA_TO_EV)
        assert abs(gaps[2] - gaps[1]) < abs(gaps[1] - gaps[0]) + 0.05


class TestCG:
    def test_matches_dense_on_valence_bands(self, si):
        _, basis, ham = si
        ev_ref, _ = solve_dense(ham, 4)
        c = random_bands(basis.size, 4, seed=3)
        ev, c, stats = cg_iterate(ham, c, n_outer=10, n_inner=4)
        np.testing.assert_allclose(ev, ev_ref, atol=1e-6)
        assert stats.residual_max < 1e-3

    def test_returns_orthonormal_bands(self, si):
        _, basis, ham = si
        c = random_bands(basis.size, 4, seed=4)
        _, c, _ = cg_iterate(ham, c, n_outer=3)
        s = c.conj() @ c.T
        np.testing.assert_allclose(s, np.eye(4), atol=1e-10)

    def test_eigenvalue_sum_decreases(self, si):
        """The all-band CG is variational."""
        _, basis, ham = si
        c = random_bands(basis.size, 4, seed=5)
        sums = []
        for _ in range(4):
            ev, c, _ = cg_iterate(ham, c, n_outer=1, n_inner=3)
            sums.append(ev.sum())
        assert all(a >= b - 1e-10 for a, b in zip(sums, sums[1:]))

    def test_preconditioner_bounds(self, si):
        _, basis, _ = si
        c = random_bands(basis.size, 2, seed=6)
        p = teter_preconditioner(basis, c)
        assert (p > 0).all() and (p <= 1.0).all()
        # High-G components are damped hardest.
        hi = np.argmax(basis.kinetic)
        lo = np.argmin(basis.kinetic)
        assert p[0, hi] < p[0, lo]

    def test_subspace_rotate_sorted(self, si):
        _, basis, ham = si
        c = random_bands(basis.size, 5, seed=7)
        evals, c2 = subspace_rotate(ham, c)
        assert (np.diff(evals) >= -1e-12).all()
        s = c2.conj() @ c2.T
        np.testing.assert_allclose(s, np.eye(5), atol=1e-10)

    def test_orthonormalize_deterministic(self, si):
        _, basis, _ = si
        rng = np.random.default_rng(8)
        c = rng.standard_normal((3, basis.size)) * (1 + 0j)
        np.testing.assert_array_equal(orthonormalize(c),
                                      orthonormalize(c))

    def test_shape_guards(self, si):
        _, basis, ham = si
        with pytest.raises(ValueError):
            cg_iterate(ham, np.zeros(basis.size, dtype=complex))
        with pytest.raises(ValueError):
            random_bands(4, 8)


class TestDensityAndXC:
    def test_density_integrates_to_electron_count(self, si):
        cell, basis, _ = si
        c = random_bands(basis.size, 4, seed=9)
        occ = np.full(4, 2.0)
        rho = band_density(basis, c, occ)
        assert rho.mean() * cell.volume == pytest.approx(8.0, rel=1e-10)

    def test_density_nonnegative(self, si):
        _, basis, _ = si
        c = random_bands(basis.size, 4, seed=10)
        rho = band_density(basis, c, np.full(4, 2.0))
        assert rho.min() > -1e-12

    def test_hartree_solves_poisson(self, si):
        """V_H of a single cosine mode: 4 pi rho_G / G^2."""
        _, basis, _ = si
        b = basis.cell.reciprocal()
        shape = basis.fft_shape
        coords = np.meshgrid(*[np.arange(n) / n for n in shape],
                             indexing="ij")
        phase = 2 * np.pi * coords[0]          # G = b[0] mode
        rho = np.cos(phase)
        vh, eh = hartree_potential(basis, rho)
        g2 = (b[0]**2).sum()
        np.testing.assert_allclose(vh, 4 * np.pi / g2 * rho, atol=1e-10)
        assert eh > 0

    def test_hartree_energy_positive(self, si):
        _, basis, _ = si
        rng = np.random.default_rng(11)
        rho = rng.random(basis.fft_shape)
        _, eh = hartree_potential(basis, rho)
        assert eh > 0

    def test_lda_xc_signs_and_limits(self):
        rho = np.array([1e-6, 0.01, 0.1, 1.0, 10.0])
        eps, v = lda_xc(rho)
        assert (eps < 0).all() and (v < 0).all()
        # Denser -> more negative exchange-correlation energy density.
        assert eps[-1] < eps[0]

    def test_xc_potential_is_derivative(self):
        """v_xc = d(rho eps_xc)/d rho, checked by finite differences."""
        rho = np.array([0.05, 0.5, 2.0])
        eps, v = lda_xc(rho)
        h = 1e-6
        e_plus, _ = lda_xc(rho + h)
        e_minus, _ = lda_xc(rho - h)
        dd = ((rho + h) * e_plus - (rho - h) * e_minus) / (2 * h)
        np.testing.assert_allclose(v, dd, rtol=1e-4)

    def test_xc_energy_scalar(self, si):
        _, basis, _ = si
        rho = np.full(basis.fft_shape, 0.02)
        assert xc_energy(basis, rho) < 0


class TestSCF:
    @pytest.fixture(scope="class")
    def result(self):
        solver = SCFSolver(silicon_primitive(), ecut=5.5, nbands=6,
                           seed=2)
        return solver, solver.run(n_scf=12, cg_steps=3)

    def test_converges(self, result):
        _, res = result
        assert res.converged_to < 1e-3
        changes = [st.density_change for st in res.history]
        assert changes[-1] < 0.1 * changes[0]

    def test_insulating_gap(self, result):
        _, res = result
        assert res.history[-1].gap * HA_TO_EV > 0.5

    def test_charge_conserved(self, result):
        solver, res = result
        assert res.density.mean() * solver.cell.volume == pytest.approx(
            8.0, rel=1e-8)

    def test_energy_components_recorded(self, result):
        _, res = result
        last = res.history[-1]
        assert last.hartree_energy > 0
        assert last.xc_energy < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SCFSolver(silicon_primitive(), ecut=5.5, mixing=0.0)
        with pytest.raises(ValueError):
            SCFSolver(silicon_primitive(), ecut=0.5, nbands=500)
