"""PARATEC under faults: crash mid-CG, restart, identical eigenvalues."""

import numpy as np

from repro.apps.paratec import silicon_primitive
from repro.apps.paratec.parallel import solve_bands_parallel
from repro.resilience import Checkpointer
from repro.runtime import FaultInjector, FaultPlan

KW = dict(nprocs=2, n_outer=3, n_inner=2)


def test_crash_restart_matches(tmp_path):
    cell = silicon_primitive()
    clean = solve_bands_parallel(cell, 4.0, 4, **KW)
    injector = FaultInjector(FaultPlan(seed=13, crash_rank=1,
                                       crash_step=1))
    faulted = solve_bands_parallel(cell, 4.0, 4, **KW,
                                   injector=injector,
                                   checkpoint=Checkpointer(tmp_path),
                                   checkpoint_every=1)
    assert injector.crash_fired
    np.testing.assert_allclose(faulted.eigenvalues, clean.eigenvalues,
                               rtol=1e-12, atol=0.0)
    assert faulted.rank_sizes == clean.rank_sizes


def test_crash_on_last_outer_iteration(tmp_path):
    """Crash after the final checkpoint: only the tail is replayed."""
    cell = silicon_primitive()
    clean = solve_bands_parallel(cell, 4.0, 4, **KW)
    injector = FaultInjector(FaultPlan(seed=14, crash_rank=0,
                                       crash_step=2))
    faulted = solve_bands_parallel(cell, 4.0, 4, **KW,
                                   injector=injector,
                                   checkpoint=Checkpointer(tmp_path),
                                   checkpoint_every=1)
    np.testing.assert_allclose(faulted.eigenvalues, clean.eigenvalues,
                               rtol=1e-12, atol=0.0)
