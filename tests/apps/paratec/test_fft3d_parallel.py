"""Parallel 3D FFT, layouts, distributed solver, Table 4 shape."""

import numpy as np
import pytest

from repro.apps.paratec.basis import PlaneWaveBasis
from repro.apps.paratec.cg import solve_dense
from repro.apps.paratec.fft3d import ParallelFFT3D, SphereLayout
from repro.apps.paratec.hamiltonian import Hamiltonian
from repro.apps.paratec.lattice_cell import silicon_primitive
from repro.apps.paratec.parallel import solve_bands_parallel
from repro.apps.paratec.profile import (
    ParatecConfig,
    build_profile,
    paratec_porting,
    table4_configs,
)
from repro.machine import ALTIX, ES, POWER3, POWER4, X1
from repro.perf import PerformanceModel
from repro.runtime import ParallelJob, Transport


@pytest.fixture(scope="module")
def basis():
    return PlaneWaveBasis(silicon_primitive(), ecut=5.5)


class TestSphereLayout:
    def test_columns_partition(self, basis):
        layout = SphereLayout(basis, 3)
        total = sum(len(layout.sphere_indices_of(r)) for r in range(3))
        assert total == basis.size

    def test_load_balance_quality(self, basis):
        """Fig. 4a: greedy descending balance keeps loads within the
        longest column of each other."""
        layout = SphereLayout(basis, 4)
        lengths = basis.column_lengths()
        assert layout.loads.max() - layout.loads.min() <= lengths.max()

    def test_single_rank_owns_all(self, basis):
        layout = SphereLayout(basis, 1)
        assert layout.loads[0] == basis.size

    def test_three_processor_figure4_example(self, basis):
        """The Fig. 4a scenario: three processors, balanced columns."""
        layout = SphereLayout(basis, 3)
        assert len(layout.columns_of[0]) > 0
        assert abs(layout.loads[0] - layout.loads[2]) <= 5


class TestParallelFFT:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_forward_matches_serial(self, basis, nprocs):
        layout = SphereLayout(basis, nprocs)
        rng = np.random.default_rng(0)
        coeff = rng.standard_normal(basis.size) \
            + 1j * rng.standard_normal(basis.size)
        expect = basis.to_grid(coeff)

        def prog(comm):
            fft = ParallelFFT3D(basis, layout, comm)
            return comm.rank, fft.forward(coeff[fft.my_sphere])

        out = ParallelJob(nprocs).run(prog)
        full = np.zeros(basis.fft_shape, dtype=complex)
        for rank, slab in out:
            x0, x1 = layout.x_range(rank)
            full[x0:x1] = slab
        np.testing.assert_allclose(full, expect, atol=1e-11)

    def test_roundtrip(self, basis):
        layout = SphereLayout(basis, 3)
        rng = np.random.default_rng(1)
        coeff = rng.standard_normal(basis.size) * (1 + 0.5j)

        def prog(comm):
            fft = ParallelFFT3D(basis, layout, comm)
            local = coeff[fft.my_sphere]
            back = fft.inverse(fft.forward(local))
            return np.abs(back - local).max()

        assert max(ParallelJob(3).run(prog)) < 1e-12

    def test_transposes_are_alltoalls(self, basis):
        layout = SphereLayout(basis, 2)
        tr = Transport(2)

        def prog(comm):
            fft = ParallelFFT3D(basis, layout, comm)
            fft.forward(np.zeros(len(fft.my_sphere), dtype=complex))

        ParallelJob(2, transport=tr).run(prog)
        kinds = {c.kind for c in tr.collectives}
        assert kinds == {"alltoall"}
        # forward pipeline: 2 transposes + 2 in the fused x-FFT, per rank
        assert len(tr.collectives) == 2 * 4


class TestDistributedSolver:
    def test_matches_dense(self, basis):
        ham = Hamiltonian.ionic(basis)
        ev_dense, _ = solve_dense(ham, 4)
        res = solve_bands_parallel(silicon_primitive(), 5.5, 4,
                                   nprocs=3, n_outer=10, n_inner=4,
                                   seed=3)
        np.testing.assert_allclose(res.eigenvalues, ev_dense, atol=1e-4)

    def test_rank_counts_partition_sphere(self, basis):
        res = solve_bands_parallel(silicon_primitive(), 5.5, 4,
                                   nprocs=4, n_outer=1, n_inner=1)
        assert sum(res.rank_sizes) == basis.size


def predict(machine, natoms=432, nprocs=32, **kw):
    cfg = ParatecConfig(natoms, nprocs)
    return PerformanceModel(machine).predict(build_profile(cfg),
                                             paratec_porting(**kw))


class TestTable4Shape:
    def test_high_percent_of_peak_everywhere(self):
        """§4.2: PARATEC runs at a high fraction of peak on both kinds
        of architecture (BLAS3/FFT dominance)."""
        assert predict(POWER3).pct_peak > 40
        assert predict(ALTIX).pct_peak > 45
        assert predict(ES).pct_peak > 45

    def test_absolute_bands_P32(self):
        assert predict(POWER3).gflops_per_proc == pytest.approx(
            0.95, rel=0.25)
        assert predict(POWER4).gflops_per_proc == pytest.approx(
            2.02, rel=0.25)
        assert predict(ALTIX).gflops_per_proc == pytest.approx(
            3.71, rel=0.25)
        assert predict(ES).gflops_per_proc == pytest.approx(4.76,
                                                            rel=0.25)
        assert predict(X1).gflops_per_proc == pytest.approx(3.04,
                                                            rel=0.35)

    def test_es_beats_x1_despite_lower_peak(self):
        """§4.2: the ES outperforms the X1 although its peak is lower."""
        assert predict(ES).gflops_per_proc > predict(X1).gflops_per_proc
        assert predict(ES).pct_peak > 1.5 * predict(X1).pct_peak

    def test_x1_scaling_collapse(self):
        """§4.2: poor X1 scalability above 128 processors (torus
        bisection + pairwise all-to-alls)."""
        x1_64 = predict(X1, natoms=686, nprocs=64)
        x1_256 = predict(X1, natoms=686, nprocs=256)
        assert x1_256.gflops_per_proc < 0.7 * x1_64.gflops_per_proc
        es_drop = (predict(ES, natoms=686, nprocs=256).gflops_per_proc
                   / predict(ES, natoms=686, nprocs=64).gflops_per_proc)
        x1_drop = x1_256.gflops_per_proc / x1_64.gflops_per_proc
        assert x1_drop < es_drop

    def test_es_runtime_advantage_at_256(self):
        """§4.2: 'more than a 3.5X runtime advantage' at 686/256 (our
        model reproduces the collapse direction at ~2-3x)."""
        es = predict(ES, natoms=686, nprocs=256)
        x1 = predict(X1, natoms=686, nprocs=256)
        assert x1.seconds > 1.8 * es.seconds

    def test_es_declines_at_high_concurrency(self):
        """Table 4: ES falls from ~60% to ~26% of peak at P=1024
        (communication + shrinking vector lengths)."""
        r32 = predict(ES, nprocs=32)
        r1024 = predict(ES, nprocs=1024)
        assert r1024.gflops_per_proc < 0.8 * r32.gflops_per_proc
        assert r1024.avl < r32.avl

    def test_power3_scales_better_than_power4(self):
        """§4.2: Power4's lower bisection/flop ratio costs it at scale."""
        def retention(m):
            return (predict(m, nprocs=256).gflops_per_proc
                    / predict(m, nprocs=32).gflops_per_proc)
        assert retention(POWER3) >= retention(POWER4) - 0.02

    def test_simultaneous_fft_rewrite_matters_on_x1(self):
        """§4.1: vendor single 1D FFTs ran poorly; the multiple-FFT
        rewrite restored vector efficiency (X1 loses 4x streams)."""
        good = predict(X1, simultaneous_ffts=True)
        bad = predict(X1, simultaneous_ffts=False)
        assert good.gflops_per_proc > 1.1 * bad.gflops_per_proc

    def test_avl_in_measured_range(self):
        """§4.2: total-run AVL at 432/32 measured 145 on the ES and 46
        on the X1 (set-up included; CG-only would be higher)."""
        assert 100 < predict(ES).avl < 256
        assert 40 < predict(X1).avl <= 64

    def test_table4_configs(self):
        cfgs = table4_configs()
        assert len(cfgs) == 11
        assert {c.natoms for c in cfgs} == {432, 686}
