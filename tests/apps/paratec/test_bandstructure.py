"""Bloch k-points and the silicon band structure."""

import numpy as np
import pytest

from repro.apps.paratec import (
    FCC_POINTS,
    Hamiltonian,
    PlaneWaveBasis,
    band_structure,
    bands_at_k,
    kpoint_cartesian,
    silicon_primitive,
    solve_dense,
)

HA_TO_EV = 27.2114


class TestKPointBasis:
    def test_gamma_default_unchanged(self):
        cell = silicon_primitive()
        a = PlaneWaveBasis(cell, 5.0)
        b = PlaneWaveBasis(cell, 5.0, kpoint=(0.0, 0.0, 0.0))
        np.testing.assert_array_equal(a.g_int, b.g_int)

    def test_kinetic_is_k_plus_g(self):
        cell = silicon_primitive()
        k = kpoint_cartesian("X")
        basis = PlaneWaveBasis(cell, 6.0, kpoint=tuple(k))
        expect = 0.5 * ((basis.g_cart + k) ** 2).sum(axis=1)
        np.testing.assert_allclose(basis.kinetic, expect, atol=1e-12)
        assert (basis.kinetic < 6.0).all()

    def test_free_electrons_at_k(self):
        """V=0 at k: eigenvalues are the |k+G|^2/2 ladder."""
        cell = silicon_primitive()
        k = kpoint_cartesian("L")
        basis = PlaneWaveBasis(cell, 6.0, kpoint=tuple(k))
        evals, _ = solve_dense(Hamiltonian(basis), 4)
        np.testing.assert_allclose(evals, np.sort(basis.kinetic)[:4],
                                   atol=1e-12)

    def test_bad_kpoint_rejected(self):
        with pytest.raises(ValueError):
            PlaneWaveBasis(silicon_primitive(), 5.0, kpoint=(0.0, 0.0))


class TestSiliconBands:
    @pytest.fixture(scope="class")
    def bs(self):
        return band_structure(silicon_primitive(), ecut=6.0,
                              points_per_segment=4)

    def test_indirect_gap(self, bs):
        """Silicon's famous indirect gap: valence max at Gamma,
        conduction min on the Gamma-X line, ~1 eV."""
        vmax_lbl, cmin_lbl = bs.gap_location()
        assert vmax_lbl == "Gamma"
        assert "X" in cmin_lbl
        assert 0.5 < bs.indirect_gap * HA_TO_EV < 1.6

    def test_direct_gamma_gap(self, bs):
        g = bs.labels.index("Gamma")
        assert bs.direct_gaps[g] * HA_TO_EV == pytest.approx(3.4,
                                                             abs=0.4)

    def test_gap_positive_everywhere(self, bs):
        assert (bs.direct_gaps > 0).all()

    def test_bands_continuous_along_path(self, bs):
        jumps = np.abs(np.diff(bs.bands, axis=0)).max()
        assert jumps * HA_TO_EV < 3.0  # no wild discontinuities

    def test_kpoint_labels(self):
        assert set(FCC_POINTS) >= {"Gamma", "X", "L"}
        np.testing.assert_allclose(kpoint_cartesian("Gamma"), 0.0)

    def test_time_reversal_symmetry(self):
        """E(k) == E(-k) for this real potential."""
        cell = silicon_primitive()
        k = kpoint_cartesian([0.3, 0.1, 0.2])
        e_plus = bands_at_k(cell, 6.0, k, 4)
        e_minus = bands_at_k(cell, 6.0, -k, 4)
        np.testing.assert_allclose(e_plus, e_minus, atol=1e-8)

    def test_path_validation(self):
        with pytest.raises(ValueError):
            band_structure(silicon_primitive(), 5.0, path=["Gamma"])
