"""Parallel GTC vs serial reference + traffic accounting."""

import numpy as np
import pytest

from repro.apps.gtc.grid import AnnulusGrid, TorusGeometry
from repro.apps.gtc.parallel import assemble_phi, run_parallel
from repro.apps.gtc.particles import load_ring_perturbation
from repro.apps.gtc.solver import GTCSolver
from repro.runtime import Transport


def setup(nplanes=4, ppc=3.0, seed=1):
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), nplanes)
    parts = load_ring_perturbation(geom, ppc, mode_m=3, amplitude=0.3,
                                   seed=seed)
    return geom, parts


class TestSerialEquivalence:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_phi_matches_serial(self, nprocs):
        geom, parts = setup()
        serial = GTCSolver(geom, parts.select(np.arange(len(parts))),
                           dt=0.05)
        serial.step(6)
        results = run_parallel(geom, parts, nprocs=nprocs, nsteps=6,
                               dt=0.05)
        phi_par = assemble_phi(results)
        for a, b in zip(phi_par, serial.phi):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_no_particles_lost(self):
        geom, parts = setup()
        results = run_parallel(geom, parts, nprocs=4, nsteps=6, dt=0.05)
        assert sum(r.nparticles for r in results) == len(parts)
        all_tags = np.sort(np.concatenate([r.tags for r in results]))
        np.testing.assert_array_equal(all_tags, np.sort(parts.tag))

    def test_planes_per_rank_grouping(self):
        geom, parts = setup(nplanes=8)
        results = run_parallel(geom, parts, nprocs=4, nsteps=2, dt=0.05)
        assert all(len(r.phi_planes) == 2 for r in results)

    def test_indivisible_planes_rejected(self):
        geom, parts = setup(nplanes=4)
        with pytest.raises(ValueError, match="divisible"):
            run_parallel(geom, parts, nprocs=3, nsteps=1)

    def test_domain_limit_enforced(self):
        """§6.1: the 1D decomposition tops out at 64 domains."""
        geom, parts = setup(nplanes=128)
        with pytest.raises(ValueError, match="64"):
            run_parallel(geom, parts, nprocs=128, nsteps=1)


class TestShiftTraffic:
    def test_movers_actually_migrate(self):
        geom, parts = setup(nplanes=4, ppc=4.0)
        tr = Transport(4)
        run_parallel(geom, parts, nprocs=4, nsteps=6, dt=0.05,
                     transport=tr)
        shift_msgs = [m for m in tr.messages if m.phase == "shift"]
        assert len(shift_msgs) > 0
        # shift messages flow only between ring neighbours
        for m in shift_msgs:
            assert (m.dst - m.src) % 4 in (1, 3)

    def test_phase_labels(self):
        geom, parts = setup()
        tr = Transport(2)
        run_parallel(geom, parts, nprocs=2, nsteps=2, dt=0.05,
                     transport=tr)
        phases = {m.phase for m in tr.messages}
        assert "shift" in phases
