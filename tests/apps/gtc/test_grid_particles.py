"""GTC grid and particle containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.gtc.grid import AnnulusGrid, TorusGeometry
from repro.apps.gtc.particles import (
    ParticleArray,
    load_ring_perturbation,
    load_uniform,
)


def small_geometry(nplanes=2):
    return TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), nplanes)


class TestAnnulusGrid:
    def test_spacings(self):
        g = AnnulusGrid(0.2, 1.0, 17, 32)
        assert g.dr == pytest.approx(0.05)
        assert g.dtheta == pytest.approx(2 * np.pi / 32)
        assert g.shape == (17, 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnulusGrid(1.0, 0.2, 16, 16)
        with pytest.raises(ValueError):
            AnnulusGrid(0.0, 1.0, 16, 16)
        with pytest.raises(ValueError):
            AnnulusGrid(0.2, 1.0, 2, 16)

    def test_bilinear_weights_partition_unity(self):
        g = AnnulusGrid(0.2, 1.0, 16, 24)
        rng = np.random.default_rng(0)
        r = rng.uniform(0.0, 1.4, 200)  # includes out-of-annulus (clamped)
        th = rng.uniform(-7.0, 7.0, 200)
        _, _, w = g.bilinear(r, th)
        np.testing.assert_allclose(w.sum(axis=0), 1.0, atol=1e-12)

    def test_bilinear_on_node_is_delta(self):
        g = AnnulusGrid(0.2, 1.0, 16, 24)
        ii, jj, ww = g.bilinear(np.array([g.radii()[3]]),
                                np.array([g.thetas()[5]]))
        k = int(np.argmax(ww[:, 0]))
        assert ww[k, 0] == pytest.approx(1.0)
        assert (ii[k, 0], jj[k, 0]) == (3, 5)

    def test_bilinear_theta_periodicity(self):
        g = AnnulusGrid(0.2, 1.0, 16, 24)
        a = g.bilinear(np.array([0.5]), np.array([0.1]))
        b = g.bilinear(np.array([0.5]), np.array([0.1 + 2 * np.pi]))
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y, atol=1e-9)

    def test_gradient_of_linear_radial_field(self):
        g = AnnulusGrid(0.2, 1.0, 32, 16)
        field = np.broadcast_to(3.0 * g.radii()[:, None],
                                g.shape).copy()
        d_dr, d_dth = g.gradient(field)
        np.testing.assert_allclose(d_dr, 3.0, atol=1e-9)
        np.testing.assert_allclose(d_dth, 0.0, atol=1e-9)

    def test_gradient_theta_mode(self):
        g = AnnulusGrid(0.5, 1.5, 8, 128)
        field = np.broadcast_to(np.sin(g.thetas())[None, :],
                                g.shape).copy()
        _, d_dth = g.gradient(field)
        expect = np.cos(g.thetas())[None, :] / g.radii()[:, None]
        np.testing.assert_allclose(d_dth, expect, atol=2e-3)

    def test_cell_volume_total(self):
        g = AnnulusGrid(0.2, 1.0, 64, 64)
        area = g.cell_volume_weights().sum()
        assert area == pytest.approx(np.pi * (1.0**2 - 0.2**2), rel=1e-3)


class TestTorusGeometry:
    def test_plane_of(self):
        geom = small_geometry(nplanes=4)
        z = np.array([0.0, np.pi / 2 + 0.01, np.pi, 3 * np.pi / 2,
                      2 * np.pi - 1e-9])
        np.testing.assert_array_equal(geom.plane_of(z), [0, 1, 2, 3, 3])

    def test_validation(self):
        with pytest.raises(ValueError, match="major radius"):
            TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 2, major_radius=0.5)

    def test_uniform_b(self):
        geom = small_geometry()
        b = geom.b_field(np.array([0.3, 0.9]))
        np.testing.assert_allclose(b, geom.b0)


class TestParticleArray:
    def test_select_concat_roundtrip(self):
        geom = small_geometry()
        p = load_uniform(geom, 2.0, seed=3)
        mask = p.r > 0.6
        hi, lo = p.select(mask), p.select(~mask)
        merged = ParticleArray.concatenate([hi, lo])
        assert len(merged) == len(p)
        assert set(merged.tag) == set(p.tag)

    def test_select_copies(self):
        geom = small_geometry()
        p = load_uniform(geom, 1.0, seed=4)
        q = p.select(np.arange(len(p)))
        q.r[:] = -1
        assert (p.r > 0).all()

    def test_empty(self):
        e = ParticleArray.empty()
        assert len(e) == 0
        assert len(ParticleArray.concatenate([e, e])) == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ParticleArray(np.zeros(3), np.zeros(2), np.zeros(3),
                          np.zeros(3), np.zeros(3), np.zeros(3),
                          np.zeros(3, dtype=np.int64))

    def test_gyroradius_scaling(self):
        geom = small_geometry()
        p = load_uniform(geom, 1.0, seed=5)
        rho1 = p.gyroradius(1.0)
        rho4 = p.gyroradius(4.0)
        np.testing.assert_allclose(rho4, rho1 / 2.0)

    def test_kinetic_energy_positive(self):
        geom = small_geometry()
        p = load_uniform(geom, 1.0, seed=6)
        assert p.kinetic_energy(geom.b0) > 0


class TestLoading:
    def test_uniform_counts(self):
        geom = small_geometry(nplanes=2)
        p = load_uniform(geom, 10.0, seed=0)
        assert len(p) == 10 * geom.plane.npoints * 2

    def test_particles_inside_annulus(self):
        geom = small_geometry()
        p = load_uniform(geom, 5.0, seed=1)
        assert (p.r >= geom.plane.r0).all()
        assert (p.r <= geom.plane.r1).all()
        assert (p.zeta >= 0).all() and (p.zeta < 2 * np.pi).all()

    def test_area_uniform_density(self):
        """r ~ sqrt sampling: inner/outer half-annulus counts match areas."""
        geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), 1)
        p = load_uniform(geom, 200.0, seed=2)
        r_mid = np.sqrt((0.2**2 + 1.0**2) / 2)  # equal-area split
        frac = np.mean(p.r < r_mid)
        assert frac == pytest.approx(0.5, abs=0.02)

    def test_ring_perturbation_modulates_weights(self):
        geom = small_geometry()
        p = load_ring_perturbation(geom, 5.0, mode_m=3, amplitude=0.4)
        assert p.w.min() < 0.75 and p.w.max() > 1.25
        # Weight correlates with cos(3 theta).
        corr = np.corrcoef(p.w, np.cos(3 * p.theta))[0, 1]
        assert corr > 0.99

    def test_invalid_args(self):
        geom = small_geometry()
        with pytest.raises(ValueError):
            load_uniform(geom, 0.0)
        with pytest.raises(ValueError):
            load_ring_perturbation(geom, 1.0, amplitude=1.5)

    @settings(max_examples=10)
    @given(seed=st.integers(0, 99))
    def test_loading_reproducible(self, seed):
        geom = small_geometry()
        a = load_uniform(geom, 1.0, seed=seed)
        b = load_uniform(geom, 1.0, seed=seed)
        np.testing.assert_array_equal(a.r, b.r)
        np.testing.assert_array_equal(a.v_par, b.v_par)
