"""Delta-f GTC: weight evolution and drift-wave physics."""

import numpy as np
import pytest

from repro.apps.gtc import AnnulusGrid, TorusGeometry
from repro.apps.gtc.deltaf import (
    DeltaFSolver,
    diamagnetic_frequency,
    load_maxwellian_gradient,
)


def geometry(ntheta=32):
    return TorusGeometry(AnnulusGrid(0.3, 1.1, 24, ntheta), 1)


def drift_wave_setup(kappa=1.5, m=4, T=0.01, seed=0, ntheta=48):
    """Markers in the k rho_s <~ 1 drift-wave regime."""
    geom = geometry(ntheta)
    parts = load_maxwellian_gradient(geom, 30.0, kappa_n=kappa,
                                     seed=seed)
    rng = np.random.default_rng(seed + 5)
    parts.v_par = rng.normal(0, np.sqrt(T), len(parts))
    parts.mu = rng.exponential(T / 2, len(parts))
    parts.w = np.full(len(parts), 0.0) + 0.01 * np.cos(m * parts.theta)
    solver = DeltaFSolver(geom, parts, kappa_n=kappa, dt=0.1,
                          alpha=1.0 / T)
    return geom, solver, m, T, kappa


class TestLoading:
    def test_density_follows_gradient(self):
        geom = geometry()

        def ratio(kappa):
            parts = load_maxwellian_gradient(geom, 50.0, kappa_n=kappa,
                                             seed=1)
            inner = np.sum(parts.r < 0.7)
            return inner / max(len(parts) - inner, 1)

        # Uniform-in-area loading favours the outer half (area ~ r);
        # the gradient must flip that decisively.
        assert ratio(2.0) > 2.0 * ratio(0.0)
        assert ratio(2.0) > 1.15

    def test_zero_gradient_is_uniform_area(self):
        geom = geometry()
        parts = load_maxwellian_gradient(geom, 50.0, kappa_n=0.0,
                                         seed=2)
        r_eq = np.sqrt((0.3**2 + 1.1**2) / 2)
        frac = np.mean(parts.r < r_eq)
        assert frac == pytest.approx(0.5, abs=0.03)

    def test_weights_start_small(self):
        geom = geometry()
        parts = load_maxwellian_gradient(geom, 20.0, weight_noise=1e-4)
        assert np.abs(parts.w).max() < 1e-3


class TestWeightEvolution:
    def test_no_gradient_no_drive(self):
        """kappa_n = 0: the weight equation has no source; the seeded
        perturbation's weights change only through (1-w) phase mixing,
        which vanishes with the field for w << 1."""
        geom = geometry()
        parts = load_maxwellian_gradient(geom, 20.0, kappa_n=0.0,
                                         weight_noise=0.0, seed=3)
        solver = DeltaFSolver(geom, parts, kappa_n=0.0, dt=0.05)
        solver.step(5)
        assert solver.weight_rms() < 1e-12

    def test_gradient_drives_weights(self):
        geom, solver, m, T, kappa = drift_wave_setup()
        w0 = solver.weight_rms()
        solver.step(10)
        assert solver.weight_rms() > w0 * 0.5  # alive, not decayed away
        assert solver.weight_rms() < 1.0       # and far from overflow

    def test_marker_count_conserved(self):
        geom, solver, *_ = drift_wave_setup()
        n0 = len(solver.particles)
        solver.step(10)
        assert len(solver.particles) == n0


class TestDriftWave:
    def test_mode_propagates_at_diamagnetic_frequency(self):
        """The seeded mode rotates at ~ omega* / (1 + k^2 rho_s^2): the
        textbook drift-wave dispersion, from the full PIC cycle."""
        geom, solver, m, T, kappa = drift_wave_setup()
        solver.charge_deposition()
        solver.field_solve()
        phases = []
        for _ in range(60):
            solver.step(1)
            _, p = solver.mode_amplitude_phase(m)
            phases.append(p)
        ph = np.unwrap(phases)
        omega_meas = abs((ph[-1] - ph[10]) / (49 * solver.dt))
        k_theta = m / 0.7
        rho_s2 = T / geom.b0**2
        omega_dw = (k_theta * T * kappa / geom.b0
                    / (1 + k_theta**2 * rho_s2))
        assert omega_meas == pytest.approx(omega_dw, rel=0.5)

    def test_faster_with_steeper_gradient(self):
        freqs = []
        for kappa in (0.8, 2.4):
            _, solver, m, *_ = drift_wave_setup(kappa=kappa)
            solver.charge_deposition()
            solver.field_solve()
            phases = []
            for _ in range(40):
                solver.step(1)
                phases.append(solver.mode_amplitude_phase(m)[1])
            ph = np.unwrap(phases)
            freqs.append(abs((ph[-1] - ph[5]) / (34 * solver.dt)))
        assert freqs[1] > 1.5 * freqs[0]

    def test_diamagnetic_frequency_helper(self):
        geom = geometry()
        w1 = diamagnetic_frequency(geom, kappa_n=1.0, m=2)
        w2 = diamagnetic_frequency(geom, kappa_n=2.0, m=4)
        assert w2 == pytest.approx(4 * w1)
