"""2D (toroidal x radial) GTC decomposition — the §6.1 future work."""

import numpy as np
import pytest

from repro.apps.gtc import (
    AnnulusGrid,
    Decomposition2D,
    GTCConfig,
    GTCSolver,
    TorusGeometry,
    build_profile,
    build_profile_2d,
    gtc_porting,
    gtc_porting_2d,
    load_ring_perturbation,
    run_parallel_2d,
)
from repro.machine import ES, POWER3
from repro.perf import PerformanceModel
from repro.runtime import Transport


def setup(nplanes=4, ppc=3.0):
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), nplanes)
    parts = load_ring_perturbation(geom, ppc, mode_m=3, amplitude=0.3,
                                   seed=1)
    return geom, parts


class TestDecomposition2D:
    def test_rank_coords_roundtrip(self):
        geom, _ = setup()
        d = Decomposition2D(2, 3, geom)
        for r in range(6):
            z, b = d.coords(r)
            assert d.rank(z, b) == r

    def test_radial_edges_cover_annulus(self):
        geom, _ = setup()
        d = Decomposition2D(1, 3, geom)
        edges = d.radial_edges()
        assert edges[0] == pytest.approx(0.2)
        assert edges[-1] == pytest.approx(1.0)
        assert (np.diff(edges) > 0).all()

    def test_radial_block_assignment(self):
        geom, _ = setup()
        d = Decomposition2D(1, 2, geom)
        r = np.array([0.21, 0.99, (0.2 + 1.0) / 2 + 0.01])
        blocks = d.radial_block_of(r)
        assert blocks[0] == 0 and blocks[1] == 1

    def test_validation(self):
        geom, _ = setup()
        with pytest.raises(ValueError, match="divide"):
            Decomposition2D(3, 1, geom)
        with pytest.raises(ValueError, match="thinner"):
            Decomposition2D(1, 12, geom)

    def test_lifts_64_domain_cap(self):
        """The whole point: total concurrency beyond 64 MPI domains."""
        geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 64, 16), 64)
        d = Decomposition2D(64, 4, geom)
        assert d.nprocs == 256


class TestParallel2DEquivalence:
    @pytest.mark.parametrize("nzeta,nradial",
                             [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2)])
    def test_matches_serial(self, nzeta, nradial):
        geom, parts = setup()
        serial = GTCSolver(geom, parts.select(np.arange(len(parts))),
                           dt=0.05)
        serial.step(5)
        results = run_parallel_2d(geom, parts, nzeta=nzeta,
                                  nradial=nradial, nsteps=5, dt=0.05)
        planes_per = geom.nplanes // nzeta
        for r in results:
            zd, _ = divmod(r.domain, nradial)
            for k, phi in enumerate(r.phi_planes):
                np.testing.assert_allclose(
                    phi, serial.phi[zd * planes_per + k], atol=1e-12)

    def test_no_particles_lost(self):
        geom, parts = setup()
        results = run_parallel_2d(geom, parts, nzeta=2, nradial=2,
                                  nsteps=6, dt=0.05)
        assert sum(r.nparticles for r in results) == len(parts)
        tags = np.sort(np.concatenate([r.tags for r in results]))
        np.testing.assert_array_equal(tags, np.sort(parts.tag))

    def test_radial_migration_happens(self):
        geom, parts = setup(ppc=4.0)
        tr = Transport(4)
        run_parallel_2d(geom, parts, nzeta=2, nradial=2, nsteps=6,
                        dt=0.05, transport=tr)
        shift_msgs = [m for m in tr.messages if m.phase == "shift"]
        assert shift_msgs, "expected migration traffic"


class TestFutureWorkProjection:
    def test_2d_beats_hybrid_on_power3(self):
        """The projected payoff of the future-work decomposition."""
        hybrid_cfg = GTCConfig(100, 1024, hybrid_threads=16)
        hybrid = PerformanceModel(POWER3).predict(
            build_profile(hybrid_cfg), gtc_porting(hybrid_cfg))
        p2d = PerformanceModel(POWER3).predict(
            build_profile_2d(100, 1024), gtc_porting_2d(100, 1024))
        assert p2d.gflops_per_proc > hybrid.gflops_per_proc

    def test_vector_machines_scale_past_64(self):
        """OpenMP-free scaling: the ES at 1024 beats the 64-way run in
        aggregate by an order of magnitude."""
        es64 = PerformanceModel(ES).predict(
            build_profile(GTCConfig(100, 64)),
            gtc_porting(GTCConfig(100, 64)))
        es1024 = PerformanceModel(ES).predict(
            build_profile_2d(100, 1024), gtc_porting_2d(100, 1024))
        assert es1024.total_gflops > 5 * es64.total_gflops

    def test_2d_profile_consistent(self):
        prof = build_profile_2d(100, 256)
        prof.validate()
        assert any(c.name == "radial-charge-reduce" for c in prof.comms)
        assert prof.nprocs == 256
