"""GTC counter instrumentation vs the paper's measured AVL/VOR."""

import pytest

from repro.apps.gtc import AnnulusGrid, GTCSolver, TorusGeometry, load_uniform
from repro.apps.gtc.instrumentation import (
    counters_for,
    record_step,
    run_instrumented,
)
from repro.machine import ES, POWER3, X1


def solver(nplanes=1, ppc=5.0):
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), nplanes)
    return GTCSolver(geom, load_uniform(geom, ppc, seed=0), dt=0.05)


class TestGTCCounters:
    def test_es_avl_near_228(self):
        """§6.2: ES AVL measured at 228 with 100 particles per cell."""
        c = run_instrumented(solver(), ES, nsteps=2)
        assert c.avl == pytest.approx(228, abs=8)

    def test_x1_avl_near_62(self):
        """§6.2: X1 AVL measured at 62."""
        c = run_instrumented(solver(), X1, nsteps=2)
        assert c.avl == pytest.approx(62, abs=5)

    def test_vor_high_but_imperfect(self):
        """§6.2: VOR 99% (ES) / 97% (X1) at the production 100 ppc —
        the scalar residue (ES shift loop, field recurrence) dilutes as
        particle work grows; at test scale it lands a little lower."""
        es = run_instrumented(solver(ppc=40.0), ES, nsteps=1)
        x1 = run_instrumented(solver(ppc=40.0), X1, nsteps=1)
        assert 0.88 < es.vor < 1.0
        assert x1.vor > es.vor  # X1's shift is vectorized (§6.1)

    def test_vor_grows_with_resolution(self):
        """More particles per cell -> scalar residue dilutes (the
        mechanism behind the 10 vs 100 ppc rows of Table 6)."""
        lo = run_instrumented(solver(ppc=4.0), ES, nsteps=1)
        hi = run_instrumented(solver(ppc=40.0), ES, nsteps=1)
        assert hi.vor > lo.vor

    def test_scalar_machine(self):
        c = run_instrumented(solver(), POWER3, nsteps=1)
        assert c.vor == 0.0

    def test_solver_advances(self):
        s = solver()
        run_instrumented(s, ES, nsteps=3)
        assert s.step_count == 3

    def test_phases_attributed(self):
        c = counters_for(ES)
        record_step(solver(), c, ES)
        assert set(c.by_phase) == {"charge", "push", "shift", "field"}
