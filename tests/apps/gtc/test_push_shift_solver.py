"""Push physics, shift classification, and the full solver cycle."""

import numpy as np
import pytest

from repro.apps.gtc.grid import AnnulusGrid, TorusGeometry
from repro.apps.gtc.particles import (
    ParticleArray,
    load_ring_perturbation,
    load_uniform,
)
from repro.apps.gtc.push import (
    electric_field,
    field_energy,
    gather_field,
    push_rk2,
)
from repro.apps.gtc.shift import classify_movers
from repro.apps.gtc.solver import GTCSolver


def geometry(nplanes=1, nr=24, ntheta=24):
    return TorusGeometry(AnnulusGrid(0.2, 1.0, nr, ntheta), nplanes)


def single_particle(r=0.6, theta=0.0, zeta=0.1, v_par=0.0, mu=0.0):
    return ParticleArray(
        r=np.array([r]), theta=np.array([theta]), zeta=np.array([zeta]),
        v_par=np.array([v_par]), mu=np.array([mu]), w=np.array([1.0]),
        tag=np.array([0], dtype=np.int64))


class TestPush:
    def test_no_field_streams_in_zeta_only(self):
        geom = geometry()
        p = single_particle(v_par=2.0)
        zeros = np.zeros(geom.plane.shape)
        push_rk2(geom, p, zeros, zeros, dt=0.1)
        assert p.zeta[0] == pytest.approx(0.1 + 0.2 / geom.major_radius)
        assert p.r[0] == pytest.approx(0.6)
        assert p.theta[0] == pytest.approx(0.0)

    def test_exb_drift_direction_and_speed(self):
        """Uniform E_r with B = B0 zeta_hat -> poloidal drift E x B / B^2."""
        geom = geometry()
        p = single_particle(mu=0.0)
        e_r = np.ones(geom.plane.shape) * 0.05
        e_th = np.zeros(geom.plane.shape)
        push_rk2(geom, p, e_r, e_th, dt=0.2)
        expect_dtheta = -0.05 / (0.6 * geom.b0) * 0.2
        assert p.theta[0] == pytest.approx(expect_dtheta % (2 * np.pi),
                                           rel=1e-6)

    def test_radial_drift_from_poloidal_field(self):
        geom = geometry()
        p = single_particle()
        e_th = np.ones(geom.plane.shape) * 0.05
        push_rk2(geom, p, np.zeros(geom.plane.shape), e_th, dt=0.2)
        assert p.r[0] == pytest.approx(0.6 + 0.05 / geom.b0 * 0.2, rel=1e-6)

    def test_particles_stay_in_annulus(self):
        geom = geometry()
        parts = load_uniform(geom, 5.0, seed=2)
        e = 0.5 * np.ones(geom.plane.shape)
        for _ in range(5):
            push_rk2(geom, parts, e, e, dt=0.2)
        assert (parts.r >= geom.plane.r0).all()
        assert (parts.r <= geom.plane.r1).all()

    def test_gather_constant_field(self):
        geom = geometry()
        parts = load_uniform(geom, 3.0, seed=3)
        e_r = np.full(geom.plane.shape, 0.7)
        e_th = np.full(geom.plane.shape, -0.3)
        er_p, et_p = gather_field(geom.plane, e_r, e_th, parts, geom.b0)
        np.testing.assert_allclose(er_p, 0.7, atol=1e-12)
        np.testing.assert_allclose(et_p, -0.3, atol=1e-12)

    def test_gather_gyro_averages(self):
        """Finite gyroradius: the 4-point average smooths the field."""
        geom = geometry(ntheta=64)
        grid = geom.plane
        e_r = np.broadcast_to(np.cos(8 * grid.thetas())[None, :],
                              grid.shape).copy()
        zero = np.zeros(grid.shape)
        small = single_particle(mu=1e-8, theta=0.0)
        large = single_particle(mu=0.02, theta=0.0)
        er_small, _ = gather_field(grid, e_r, zero, small, geom.b0)
        er_large, _ = gather_field(grid, e_r, zero, large, geom.b0)
        assert abs(er_large[0]) < abs(er_small[0])

    def test_bad_dt(self):
        geom = geometry()
        p = single_particle()
        z = np.zeros(geom.plane.shape)
        with pytest.raises(ValueError):
            push_rk2(geom, p, z, z, dt=0.0)

    def test_electric_field_from_potential(self):
        grid = AnnulusGrid(0.5, 1.5, 64, 8)
        phi = np.broadcast_to(grid.radii()[:, None]**2, grid.shape).copy()
        e_r, e_th = electric_field(grid, phi)
        expect = np.broadcast_to(-2.0 * grid.radii()[1:-1, None],
                                 e_r[1:-1].shape)
        np.testing.assert_allclose(e_r[1:-1], expect, rtol=1e-3)
        np.testing.assert_allclose(e_th, 0.0, atol=1e-12)

    def test_field_energy_positive_definite(self):
        grid = AnnulusGrid(0.2, 1.0, 16, 16)
        assert field_energy(grid, np.zeros(grid.shape)) == 0.0
        rng = np.random.default_rng(0)
        assert field_energy(grid, rng.standard_normal(grid.shape)) > 0


class TestShiftClassification:
    def test_inside_stays(self):
        geom = geometry(nplanes=4)
        p = single_particle(zeta=0.1)
        stay, left, right = classify_movers(geom, p, 0, 4)
        assert stay[0] and not left[0] and not right[0]

    def test_right_mover(self):
        geom = geometry(nplanes=4)
        p = single_particle(zeta=np.pi / 2 + 0.01)
        stay, left, right = classify_movers(geom, p, 0, 4)
        assert right[0] and not stay[0]

    def test_left_mover_wraps(self):
        geom = geometry(nplanes=4)
        p = single_particle(zeta=2 * np.pi - 0.01)
        stay, left, right = classify_movers(geom, p, 0, 4)
        assert left[0] and not stay[0]

    def test_masks_partition(self):
        geom = geometry(nplanes=8)
        parts = load_uniform(geom, 4.0, seed=9)
        for domain in range(8):
            stay, left, right = classify_movers(geom, parts, domain, 8)
            total = stay.astype(int) + left.astype(int) + right.astype(int)
            assert (total == 1).all()

    def test_domain_range_checked(self):
        geom = geometry()
        p = single_particle()
        with pytest.raises(ValueError):
            classify_movers(geom, p, 5, 4)


class TestSolverCycle:
    def test_particle_count_and_charge_conserved(self):
        geom = geometry(nplanes=2)
        parts = load_uniform(geom, 4.0, seed=1)
        total_w = parts.w.sum()
        solver = GTCSolver(geom, parts, dt=0.05)
        solver.step(8)
        d = solver.diagnostics()
        assert d.nparticles == len(parts)
        assert solver.particles.w.sum() == pytest.approx(total_w,
                                                         rel=1e-12)

    def test_perturbation_drives_field(self):
        geom = geometry()
        quiet = GTCSolver(geom, load_uniform(geom, 32.0, seed=2), dt=0.05)
        loud = GTCSolver(geom, load_ring_perturbation(
            geom, 32.0, mode_m=4, amplitude=0.4, seed=2), dt=0.05)
        quiet.step(1)
        loud.step(1)
        assert loud.diagnostics().max_phi > 2 * quiet.diagnostics().max_phi

    def test_potential_mode_structure(self):
        """Figure 7 substitution: the seeded m=4 eddy structure appears."""
        geom = geometry(ntheta=32)
        solver = GTCSolver(geom, load_ring_perturbation(
            geom, 16.0, mode_m=4, amplitude=0.4, seed=3), dt=0.05)
        solver.step(2)
        phi = solver.potential_snapshot()
        spectrum = np.abs(np.fft.rfft(phi[phi.shape[0] // 2]))
        assert spectrum.argmax() == 4

    def test_kinetic_energy_constant_in_perpendicular_dynamics(self):
        """E_parallel = 0 here, so v_par and mu B are invariant."""
        geom = geometry()
        solver = GTCSolver(geom, load_ring_perturbation(
            geom, 4.0, seed=4), dt=0.05)
        ke0 = solver.particles.kinetic_energy(geom.b0)
        solver.step(10)
        assert solver.particles.kinetic_energy(geom.b0) == pytest.approx(
            ke0, rel=1e-12)

    def test_depositor_variants_give_same_evolution(self):
        geom = geometry()
        phis = {}
        for dep in ("classic", "work-vector", "sorted", "fast"):
            solver = GTCSolver(geom, load_ring_perturbation(
                geom, 4.0, seed=5), dt=0.05, depositor=dep)
            solver.step(3)
            phis[dep] = solver.potential_snapshot()
        np.testing.assert_allclose(phis["work-vector"], phis["classic"],
                                   atol=1e-12)
        np.testing.assert_allclose(phis["sorted"], phis["classic"],
                                   atol=1e-12)
        np.testing.assert_allclose(phis["fast"], phis["classic"],
                                   atol=1e-12)

    def test_dt_guard_against_domain_jumps(self):
        geom = geometry(nplanes=8)
        parts = load_uniform(geom, 2.0, thermal_velocity=100.0, seed=6)
        with pytest.raises(ValueError, match="dt too large"):
            GTCSolver(geom, parts, dt=10.0)

    def test_unknown_depositor(self):
        geom = geometry()
        with pytest.raises(ValueError, match="depositor"):
            GTCSolver(geom, load_uniform(geom, 1.0), depositor="magic")
