"""Deposition algorithm equivalence + Poisson solver accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.gtc.deposition import (
    deposit_classic,
    deposit_fast,
    deposit_sorted,
    deposit_work_vector,
    deposited_charge_total,
    gyro_ring_points,
)
from repro.apps.gtc.grid import AnnulusGrid, TorusGeometry
from repro.apps.gtc.particles import load_uniform
from repro.apps.gtc.poisson import PoissonSolver


@pytest.fixture()
def setup():
    grid = AnnulusGrid(0.2, 1.0, 20, 24)
    geom = TorusGeometry(grid, 1)
    particles = load_uniform(geom, 4.0, seed=11)
    return grid, particles


class TestGyroRing:
    def test_four_points_per_particle(self, setup):
        grid, particles = setup
        r_pts, th_pts = gyro_ring_points(particles, 1.0)
        assert r_pts.shape == (4, len(particles))
        assert th_pts.shape == (4, len(particles))

    def test_ring_radius_matches_gyroradius(self, setup):
        _, particles = setup
        r_pts, _ = gyro_ring_points(particles, 1.0)
        rho = particles.gyroradius(1.0)
        np.testing.assert_allclose(r_pts[0] - particles.r, rho, atol=1e-12)
        np.testing.assert_allclose(r_pts[2] - particles.r, -rho,
                                   atol=1e-12)

    def test_zero_mu_collapses_to_classic_pic(self, setup):
        """Fig. 8a vs 8b: mu=0 makes the ring a point."""
        grid, particles = setup
        particles.mu[:] = 0.0
        r_pts, th_pts = gyro_ring_points(particles, 1.0)
        for k in range(4):
            np.testing.assert_allclose(r_pts[k], particles.r, atol=1e-14)


class TestDepositionEquivalence:
    def test_all_algorithms_agree(self, setup):
        grid, particles = setup
        classic = deposit_classic(grid, particles)
        sorted_ = deposit_sorted(grid, particles)
        fast = deposit_fast(grid, particles)
        workvec, _ = deposit_work_vector(grid, particles, vector_length=64)
        np.testing.assert_allclose(sorted_, classic, atol=1e-12)
        np.testing.assert_allclose(fast, classic, atol=1e-12)
        np.testing.assert_allclose(workvec, classic, atol=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(vl=st.sampled_from([1, 7, 64, 256]))
    def test_work_vector_any_lane_count(self, vl):
        grid = AnnulusGrid(0.2, 1.0, 12, 12)
        geom = TorusGeometry(grid, 1)
        particles = load_uniform(geom, 2.0, seed=5)
        classic = deposit_classic(grid, particles)
        wv, stats = deposit_work_vector(grid, particles, vector_length=vl)
        np.testing.assert_allclose(wv, classic, atol=1e-12)
        assert stats["grid_copies"] == vl

    def test_charge_conservation(self, setup):
        """Every deposited distribution integrates to the total charge."""
        grid, particles = setup
        for rho in (deposit_classic(grid, particles),
                    deposit_sorted(grid, particles),
                    deposit_fast(grid, particles),
                    deposit_work_vector(grid, particles)[0]):
            assert deposited_charge_total(grid, rho) == pytest.approx(
                particles.w.sum(), rel=1e-12)

    def test_memory_amplification_reported(self, setup):
        """§6.1: the work-vector method's memory blow-up is real."""
        grid, particles = setup
        _, s64 = deposit_work_vector(grid, particles, vector_length=64)
        _, s256 = deposit_work_vector(grid, particles, vector_length=256)
        assert s256["memory_words"] == 4 * s64["memory_words"]
        assert s64["memory_words"] == 64 * grid.npoints

    def test_empty_particles(self):
        grid = AnnulusGrid(0.2, 1.0, 8, 8)
        from repro.apps.gtc.particles import ParticleArray
        rho = deposit_classic(grid, ParticleArray.empty())
        assert (rho == 0).all()

    def test_invalid_vector_length(self, setup):
        grid, particles = setup
        with pytest.raises(ValueError):
            deposit_work_vector(grid, particles, vector_length=0)

    def test_colliding_particles_accumulate(self):
        """The memory-dependency case: same-cell particles must add."""
        grid = AnnulusGrid(0.2, 1.0, 8, 8)
        from repro.apps.gtc.particles import ParticleArray
        n = 50
        p = ParticleArray(
            r=np.full(n, 0.6), theta=np.full(n, 1.0),
            zeta=np.zeros(n), v_par=np.zeros(n),
            mu=np.zeros(n), w=np.ones(n),
            tag=np.arange(n, dtype=np.int64))
        rho_c = deposit_classic(grid, p)
        rho_w, _ = deposit_work_vector(grid, p, vector_length=8)
        assert rho_c.sum() == pytest.approx(50.0)
        np.testing.assert_allclose(rho_w, rho_c, atol=1e-12)


class TestPoisson:
    def test_manufactured_solution(self):
        """phi = (r-r0)(r1-r)cos(m theta) recovered to O(dr^2)."""
        grid = AnnulusGrid(0.5, 1.5, 128, 32)
        solver = PoissonSolver(grid, alpha=0.8)
        r = grid.radii()[:, None]
        th = grid.thetas()[None, :]
        m = 3
        f = (r - 0.5) * (1.5 - r)
        fp = 2.0 - 2.0 * r
        fpp = -2.0
        phi_exact = f * np.cos(m * th)
        lap = (fpp + fp / r - m * m * f / r**2) * np.cos(m * th)
        rho = -(lap - 0.8 * phi_exact)
        phi = solver.solve(rho, remove_flux_average=False)
        assert np.abs(phi - phi_exact).max() < 2e-4

    def test_discrete_residual_machine_precision(self):
        grid = AnnulusGrid(0.2, 1.0, 24, 16)
        solver = PoissonSolver(grid, alpha=1.0)
        rng = np.random.default_rng(3)
        rho = rng.standard_normal(grid.shape)
        phi = solver.solve(rho)
        assert solver.residual(phi, rho) < 1e-10

    def test_dirichlet_walls(self):
        grid = AnnulusGrid(0.2, 1.0, 16, 16)
        solver = PoissonSolver(grid)
        rho = np.ones(grid.shape)
        phi = solver.solve(rho)
        np.testing.assert_allclose(phi[0], 0.0, atol=1e-14)
        np.testing.assert_allclose(phi[-1], 0.0, atol=1e-14)

    def test_flux_average_removed(self):
        """Quasineutrality: a theta-independent rho drives no field."""
        grid = AnnulusGrid(0.2, 1.0, 16, 16)
        solver = PoissonSolver(grid)
        rho = np.outer(np.linspace(1, 2, 16), np.ones(16))
        phi = solver.solve(rho, remove_flux_average=True)
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    def test_linearity(self):
        grid = AnnulusGrid(0.2, 1.0, 16, 16)
        solver = PoissonSolver(grid, alpha=0.5)
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal((2, *grid.shape))
        lhs = solver.solve(a + 3 * b)
        rhs = solver.solve(a) + 3 * solver.solve(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-11)

    def test_screening_reduces_potential(self):
        grid = AnnulusGrid(0.2, 1.0, 24, 16)
        rng = np.random.default_rng(5)
        rho = rng.standard_normal(grid.shape)
        phi0 = PoissonSolver(grid, alpha=0.0).solve(rho)
        phi5 = PoissonSolver(grid, alpha=5.0).solve(rho)
        assert np.abs(phi5).max() < np.abs(phi0).max()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            PoissonSolver(AnnulusGrid(0.2, 1.0, 8, 8), alpha=-1.0)

    def test_shape_mismatch_rejected(self):
        solver = PoissonSolver(AnnulusGrid(0.2, 1.0, 8, 8))
        with pytest.raises(ValueError):
            solver.solve(np.zeros((4, 4)))
