"""GTC under faults: crash/restart matches, shift drops survived."""

import numpy as np

from repro.apps.gtc import AnnulusGrid, TorusGeometry, load_ring_perturbation
from repro.apps.gtc.parallel import run_parallel
from repro.resilience import Checkpointer
from repro.runtime import FaultInjector, FaultPlan, Transport

NPROCS, NSTEPS = 2, 3


def _setup():
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 2)
    return geom, load_ring_perturbation(geom, 4.0)


def _assert_match(clean, faulted, nparticles):
    assert sum(r.nparticles for r in faulted) == nparticles
    for cr, fr in zip(clean, faulted):
        assert np.array_equal(cr.tags, fr.tags)
        assert abs(cr.kinetic_energy - fr.kinetic_energy) \
            <= 1e-12 * abs(cr.kinetic_energy)
        assert abs(cr.field_energy - fr.field_energy) \
            <= 1e-12 * max(abs(cr.field_energy), 1e-300)
        for p, q in zip(cr.phi_planes, fr.phi_planes):
            np.testing.assert_allclose(q, p, rtol=1e-12, atol=0.0)


def test_crash_restart_matches(tmp_path):
    geom, parts = _setup()
    clean = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS)
    injector = FaultInjector(FaultPlan(seed=7, crash_rank=0, crash_step=1))
    faulted = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS,
                           injector=injector,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=1)
    assert injector.crash_fired
    _assert_match(clean, faulted, len(parts))


def test_shift_drops_survived(tmp_path):
    """Dropped particle-shift messages are retried; nothing is lost."""
    geom, parts = _setup()
    clean = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS)
    injector = FaultInjector(FaultPlan(seed=8, drop=0.1,
                                       backoff_base=0.0002))
    transport = Transport(NPROCS)
    faulted = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS,
                           transport=transport, injector=injector)
    _assert_match(clean, faulted, len(parts))
    assert injector.counts().get("drop", 0) > 0
    assert transport.resend_count() > 0
    assert transport.undelivered() == 0


def test_crash_with_message_faults_combined(tmp_path):
    """The full chaos mix on GTC still reproduces the clean run."""
    geom, parts = _setup()
    clean = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS)
    injector = FaultInjector(FaultPlan(seed=9, drop=0.05, duplicate=0.05,
                                       corrupt=0.05, crash_rank=1,
                                       crash_step=2,
                                       backoff_base=0.0002))
    faulted = run_parallel(geom, parts, nprocs=NPROCS, nsteps=NSTEPS,
                           injector=injector,
                           checkpoint=Checkpointer(tmp_path),
                           checkpoint_every=1)
    _assert_match(clean, faulted, len(parts))
