"""GTC work profile: paper-facts and Table 6 model-shape assertions."""

import pytest

from repro.apps.gtc.profile import (
    GTCConfig,
    build_profile,
    gtc_porting,
    memory_amplification,
    table6_configs,
)
from repro.machine import ALTIX, ES, POWER3, POWER4, X1
from repro.perf import PerformanceModel


def predict(machine, ppc=100, nprocs=32, **porting_kw):
    cfg = GTCConfig(ppc, nprocs)
    return PerformanceModel(machine).predict(
        build_profile(cfg), gtc_porting(cfg, **porting_kw))


class TestConfig:
    def test_problem_sizes(self):
        """§6.2: 2M grid points; 20M and 200M particles."""
        assert GTCConfig(10, 32).particles_total == 20e6
        assert GTCConfig(100, 32).particles_total == 200e6

    def test_domain_cap(self):
        with pytest.raises(ValueError, match="64"):
            GTCConfig(10, 128)
        GTCConfig(100, 1024, hybrid_threads=16)  # hybrid mode is legal

    def test_table6_configs(self):
        cfgs = table6_configs()
        assert len(cfgs) == 5
        assert cfgs[-1].hybrid_threads == 16

    def test_profile_single_precision(self):
        p = build_profile(GTCConfig(10, 32))
        assert all(ph.word_bytes == 4 for ph in p.phases)

    def test_memory_amplification_band(self):
        """§6.1: 2x to 8x memory increase from the work-vector arrays
        at the production 10-particles-per-cell resolution."""
        lo = memory_amplification(64, 10)    # X1 vector length
        hi = memory_amplification(256, 10)   # ES vector length
        assert 2.0 < lo < hi < 9.0


class TestModelShape:
    def test_vector_speedups_over_superscalar(self):
        """§6.2: vector ~10x Power3, ~5x Power4, ~4x Altix."""
        es = predict(ES)
        assert 5 < es.gflops_per_proc / predict(POWER3).gflops_per_proc < 20
        assert 2.5 < es.gflops_per_proc / predict(POWER4).gflops_per_proc < 10
        assert 2 < es.gflops_per_proc / predict(ALTIX).gflops_per_proc < 8

    def test_x1_highest_absolute_performance(self):
        """§6.2: X1 shows the highest absolute GTC performance."""
        x1 = predict(X1)
        assert x1.gflops_per_proc > predict(ES).gflops_per_proc
        assert x1.gflops_per_proc == pytest.approx(1.50, rel=0.30)

    def test_es_higher_fraction_of_peak(self):
        """§6.2: ES sustains 17% vs 12% on the X1."""
        assert predict(ES).pct_peak > predict(X1).pct_peak

    def test_absolute_bands(self):
        assert predict(ES).gflops_per_proc == pytest.approx(1.34, rel=0.3)
        assert predict(POWER3).gflops_per_proc == pytest.approx(
            0.135, rel=0.3)
        assert predict(POWER4).gflops_per_proc == pytest.approx(
            0.293, rel=0.3)
        assert predict(ALTIX).gflops_per_proc == pytest.approx(
            0.333, rel=0.3)

    def test_resolution_improves_vector_efficiency(self):
        """100 particles/cell amortizes grid work: vector rates rise."""
        for m in (ES, X1):
            assert predict(m, ppc=100).gflops_per_proc > \
                predict(m, ppc=10).gflops_per_proc

    def test_superscalar_flat_across_resolution(self):
        for m in (POWER3, POWER4):
            lo = predict(m, ppc=10).gflops_per_proc
            hi = predict(m, ppc=100).gflops_per_proc
            assert hi == pytest.approx(lo, rel=0.15)

    def test_x1_shift_rewrite_ablation(self):
        """§6.1: the nested-if shift serialized the X1 (54% -> 4%)."""
        before = predict(X1, x1_shift_vectorized=False)
        after = predict(X1)
        assert after.gflops_per_proc > 1.2 * before.gflops_per_proc
        shift_before = next(pt for pt in before.phase_times
                            if pt.name == "shift")
        assert shift_before.mode == "serialized-scalar"

    def test_es_duplicate_pragma_ablation(self):
        """§6.1: bank-conflict fix sped charge deposition up ~37%."""
        before = predict(ES, es_bank_conflict_fixed=False)
        after = predict(ES)
        charge_b = before.phase_seconds("charge")
        charge_a = after.phase_seconds("charge")
        assert charge_b / charge_a == pytest.approx(1.37, rel=0.05)

    def test_es_shift_stays_scalar(self):
        r = predict(ES)
        shift = next(pt for pt in r.phase_times if pt.name == "shift")
        assert shift.mode == "scalar"
        assert r.vor < 1.0

    def test_hybrid_1024_below_64way_vector(self):
        """§6.2: 1024 hybrid Power3 CPUs still ~20% slower than 64-way
        vector runs."""
        cfg = GTCConfig(100, 1024, hybrid_threads=16)
        p3 = PerformanceModel(POWER3).predict(build_profile(cfg),
                                              gtc_porting(cfg))
        es64 = predict(ES, nprocs=64)
        assert p3.gflops_per_proc < 0.12  # paper: 0.063
        assert es64.total_gflops > p3.total_gflops * 0.9

    def test_avl_vor_high_on_vector(self):
        """§6.2: AVL 228/62, VOR 99%/97% at 100 particles per cell."""
        es, x1 = predict(ES), predict(X1)
        # Our VOR counts the shift loop's scalar comparisons as scalar
        # ops; ftrace counts only vector-unit issue, hence the paper's
        # 99%.  The AVLs and the X1 VOR line up directly.
        assert es.avl > 200 and es.vor > 0.90
        assert x1.avl > 55 and x1.vor > 0.95
