"""Backend parity: thread and process runs must be indistinguishable.

For every application the process backend must reproduce the thread
backend bit for bit *and* move exactly the same logical traffic — the
zero-copy transport is an implementation detail, not a semantic change.
"""

import numpy as np

from repro.apps.cactus.parallel import run_parallel as cactus_parallel
from repro.apps.gtc import AnnulusGrid, TorusGeometry, load_ring_perturbation
from repro.apps.gtc.parallel import run_parallel as gtc_parallel
from repro.apps.lbmhd import orszag_tang
from repro.apps.lbmhd.parallel import run_parallel as lbmhd_parallel
from repro.apps.paratec import silicon_primitive
from repro.apps.paratec.parallel import solve_bands_parallel
from repro.obs.runner import trace_app
from repro.runtime import Transport


def _traffic(tp: Transport) -> tuple:
    return (tp.message_count(), tp.total_bytes(), len(tp.collectives))


class TestBackendParity:
    def test_lbmhd(self):
        rho, u, B = orszag_tang(16, 16)
        tps = {b: Transport(4) for b in ("thread", "process")}
        out = {b: lbmhd_parallel(rho, u, B, nprocs=4, nsteps=3,
                                 transport=tps[b], backend=b)
               for b in tps}
        for a, b in zip(out["thread"], out["process"]):
            assert np.array_equal(a, b)
        assert _traffic(tps["thread"]) == _traffic(tps["process"])

    def test_cactus(self):
        rng = np.random.default_rng(3)
        n = 8
        gamma = np.zeros((3, 3, n, n, n))
        for i in range(3):
            gamma[i, i] = 1.0
        gamma += 0.01 * rng.standard_normal(gamma.shape)
        gamma = 0.5 * (gamma + gamma.transpose(1, 0, 2, 3, 4))
        K = 0.01 * rng.standard_normal(gamma.shape)
        K = 0.5 * (K + K.transpose(1, 0, 2, 3, 4))
        alpha = 1.0 + 0.01 * rng.standard_normal((n, n, n))

        tps = {b: Transport(2) for b in ("thread", "process")}
        out = {b: cactus_parallel(gamma, K, alpha, nprocs=2, nsteps=2,
                                  transport=tps[b], backend=b)
               for b in tps}
        for a, b in zip(out["thread"], out["process"]):
            assert np.array_equal(a, b)
        assert _traffic(tps["thread"]) == _traffic(tps["process"])

    def test_gtc(self):
        geo = TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 4)
        p = load_ring_perturbation(geo, 3.0, mode_m=3, amplitude=0.3,
                                   seed=1)
        tps = {b: Transport(2) for b in ("thread", "process")}
        out = {b: gtc_parallel(geo, p, nprocs=2, nsteps=2,
                               transport=tps[b], backend=b)
               for b in tps}
        for a, b in zip(out["thread"], out["process"]):
            assert a.domain == b.domain
            assert a.nparticles == b.nparticles
            assert a.kinetic_energy == b.kinetic_energy
            assert a.field_energy == b.field_energy
            assert all(np.array_equal(x, y)
                       for x, y in zip(a.phi_planes, b.phi_planes))
            assert np.array_equal(a.tags, b.tags)
        assert _traffic(tps["thread"]) == _traffic(tps["process"])

    def test_paratec(self):
        cell = silicon_primitive()
        tps = {b: Transport(2) for b in ("thread", "process")}
        out = {b: solve_bands_parallel(cell, 4.0, 4, nprocs=2,
                                       n_outer=2, n_inner=2,
                                       transport=tps[b], backend=b)
               for b in tps}
        a, b = out["thread"], out["process"]
        assert np.array_equal(a.eigenvalues, b.eigenvalues)
        assert a.rank_sizes == b.rank_sizes
        assert np.array_equal(a.loads, b.loads)
        assert _traffic(tps["thread"]) == _traffic(tps["process"])


class TestTracedProcessRun:
    def test_trace_app_merges_worker_events(self):
        runs = {b: trace_app("lbmhd", steps=2, nprocs=4, outdir=None,
                             backend=b)
                for b in ("thread", "process")}
        proc = runs["process"]
        assert len(proc.tracer.events()) > 0
        # merged per-process spools must recover the thread-run story
        assert _traffic(proc.transport) == _traffic(runs["thread"].transport)
