"""Process backend: real OS ranks behind the same Transport/Comm API.

Rank programs live at module level so the spawn pickler can ship them by
reference (pytest imports this module as ``tests.runtime.<name>`` and the
parent's ``sys.path`` travels with each worker).
"""

import os
import pickle

import numpy as np
import pytest

from repro.machine.platforms import ES
from repro.resilience.checkpoint import Checkpointer
from repro.runtime import BackendError, ParallelJob, Transport
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.process_backend import SHM_MIN_BYTES
from repro.runtime.virtual_time import VirtualClocks


def _primitive_ring(comm):
    """Exercise p2p + both collectives; return everything for comparison."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    got = comm.sendrecv(np.full(4, float(comm.rank)),
                        dest=right, source=left)
    total = comm.allreduce(float(comm.rank) + 1.0)
    gathered = comm.allgather(comm.rank * 10)
    return (os.getpid(), float(got[0]), total, tuple(gathered))


def _big_exchange(comm):
    """Ship an array comfortably above the shared-memory threshold."""
    n = SHM_MIN_BYTES // 8 + 64          # float64 payload > SHM_MIN_BYTES
    peer = 1 - comm.rank
    got = comm.sendrecv(np.full(n, float(comm.rank + 1)),
                        dest=peer, source=peer)
    return float(got.sum())


class TestProcessRanks:
    def test_ranks_are_distinct_processes_with_thread_parity(self):
        out_p = ParallelJob(4, backend="process").run(_primitive_ring)
        out_t = ParallelJob(4).run(_primitive_ring)

        pids = [r[0] for r in out_p]
        assert len(set(pids)) == 4, "each rank must be its own OS process"
        assert os.getpid() not in pids
        # everything except the PID must agree bit-for-bit with threads
        assert [r[1:] for r in out_p] == [r[1:] for r in out_t]

    def test_shared_memory_payloads_keep_logical_accounting(self):
        tp_p, tp_t = Transport(2), Transport(2)
        out_p = ParallelJob(2, transport=tp_p,
                            backend="process").run(_big_exchange)
        out_t = ParallelJob(2, transport=tp_t).run(_big_exchange)
        assert out_p == out_t
        # zero-copy transport must not change what the app "sent"
        assert tp_p.message_count() == tp_t.message_count()
        assert tp_p.total_bytes() == tp_t.total_bytes()


class TestBackendErrors:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="bogus"):
            ParallelJob(2, backend="bogus")

    def test_unpicklable_rank_fn_fails_fast(self):
        # preflight must catch this before any worker spawns
        with pytest.raises(BackendError, match="pickl"):
            ParallelJob(2, backend="process").run(lambda comm: comm.rank)


class TestSpawnPicklability:
    """Everything a worker config can carry must survive a round trip."""

    def test_fault_plan_and_injector(self):
        plan = FaultPlan(seed=7, drop=0.25, kill_rank=1, kill_step=3)
        back = pickle.loads(pickle.dumps(plan))
        assert back == plan
        inj = pickle.loads(pickle.dumps(FaultInjector(plan)))
        assert inj.plan == plan

    def test_virtual_clocks(self):
        clocks = VirtualClocks(4)
        clocks.advance(2, 1.5)
        back = pickle.loads(pickle.dumps(clocks))
        assert back.nprocs == 4
        assert back.time(2) == clocks.time(2)

    def test_machine_spec(self):
        back = pickle.loads(pickle.dumps(ES))
        assert back.name == ES.name
        assert back.peak_gflops == ES.peak_gflops

    def test_checkpointer(self, tmp_path):
        ck = Checkpointer(tmp_path, keep=2)
        back = pickle.loads(pickle.dumps(ck))
        assert back.keep == 2
