"""Transport accounting: every byte moved is recorded."""

import numpy as np
import pytest

from repro.runtime import ParallelJob, Transport


class TestAccounting:
    def test_message_records(self):
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
            else:
                comm.recv(source=0)

        ParallelJob(2, transport=tr).run(prog)
        assert tr.message_count() == 1
        assert tr.total_bytes() == 800
        rec = tr.messages[0]
        assert (rec.src, rec.dst, rec.onesided) == (0, 1, False)

    def test_collective_records(self):
        tr = Transport(4)
        ParallelJob(4, transport=tr).run(lambda c: c.allreduce(1.0))
        kinds = [c.kind for c in tr.collectives]
        assert kinds.count("allreduce") == 4  # one record per rank call

    def test_per_rank_traffic(self):
        tr = Transport(3)

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            comm.sendrecv(np.zeros(comm.rank + 1), dest=right,
                          source=(comm.rank - 1) % comm.size)

        ParallelJob(3, transport=tr).run(prog)
        traffic = tr.per_rank_traffic()
        assert traffic[0].nbytes == 8
        assert traffic[2].nbytes == 24
        assert all(t.messages == 1 for t in traffic.values())

    def test_traffic_summary_by_pair_and_tag(self):
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dest=1, tag=7)
                comm.send(np.zeros(2), dest=1, tag=9)
                comm.recv(source=1, tag=9)
            else:
                comm.recv(source=0, tag=7)
                comm.recv(source=0, tag=9)
                comm.send(np.zeros(1), dest=0, tag=9)

        ParallelJob(2, transport=tr).run(prog)
        summary = tr.traffic_summary()
        assert summary.by_pair == {(0, 1): 48, (1, 0): 8}
        assert summary.by_tag == {7: 32, 9: 24}
        assert summary.hottest_pair() == ((0, 1), 48)
        # per-source views carry the same breakdowns
        per_rank = tr.per_rank_traffic()
        assert per_rank[0].by_pair == {(0, 1): 48}
        assert per_rank[1].by_tag == {9: 8}

    def test_undelivered_zero_after_clean_run(self):
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        ParallelJob(2, transport=tr).run(prog)
        assert tr.undelivered() == 0

    def test_undelivered_counts_orphans(self):
        tr = Transport(2)
        ParallelJob(2, transport=tr).run(
            lambda c: c.send(1, dest=1 - c.rank))
        assert tr.undelivered() == 2

    def test_recording_can_pause(self):
        tr = Transport(2)
        tr.recording = False

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)
            else:
                comm.recv(source=0)

        ParallelJob(2, transport=tr).run(prog)
        assert tr.message_count() == 0

    def test_rank_range_checked(self):
        tr = Transport(2)
        with pytest.raises(ValueError, match="out of range"):
            tr.post(0, 5, 0, None, 0)

    def test_recv_timeout(self):
        tr = Transport(1)
        with pytest.raises(TimeoutError):
            tr.fetch(0, 0, 0, timeout=0.05)

    def test_onesided_separated_in_totals(self):
        tr = Transport(2)
        tr.record_onesided(0, 1, 64)
        assert tr.total_bytes(onesided=True) == 64
        assert tr.total_bytes(onesided=False) == 0
        assert tr.message_count() == 1
