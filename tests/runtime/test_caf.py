"""CoArray one-sided layer: CAF semantics and traffic accounting."""

import numpy as np
import pytest

from repro.runtime import CoArray, ParallelJob, Transport


class TestCoArray:
    def test_put_visible_after_sync(self):
        def prog(comm):
            ca = CoArray(comm, (4,))
            ca.local[:] = comm.rank
            ca.sync()
            right = (comm.rank + 1) % comm.size
            ca.put(right, slice(0, 1), float(comm.rank + 100))
            ca.sync()
            return float(ca.local[0])

        out = ParallelJob(4).run(prog)
        assert out == [103.0, 100.0, 101.0, 102.0]

    def test_get_reads_remote_image(self):
        def prog(comm):
            ca = CoArray(comm, (3,))
            ca.local[:] = comm.rank * 10
            ca.sync()
            other = (comm.rank + 1) % comm.size
            return ca.get(other, slice(None)).tolist()

        out = ParallelJob(3).run(prog)
        assert out[0] == [10.0, 10.0, 10.0]
        assert out[2] == [0.0, 0.0, 0.0]

    def test_get_returns_copy(self):
        def prog(comm):
            ca = CoArray(comm, (2,))
            ca.local[:] = comm.rank
            ca.sync()
            got = ca.get((comm.rank + 1) % comm.size, slice(None))
            got[:] = -99.0
            ca.sync()
            return float(ca.local[0])

        out = ParallelJob(2).run(prog)
        assert out == [0.0, 1.0]

    def test_traffic_recorded_as_onesided(self):
        tr = Transport(2)

        def prog(comm):
            ca = CoArray(comm, (8,))
            ca.sync()
            if comm.rank == 0:
                ca.put(1, slice(0, 4), np.ones(4))
            ca.sync()

        ParallelJob(2, transport=tr).run(prog)
        assert tr.total_bytes(onesided=True) == 32
        assert tr.total_bytes(onesided=False) == 0

    def test_local_indexing(self):
        def prog(comm):
            ca = CoArray(comm, (2, 2))
            ca[0, 1] = 5.0
            return float(ca[0, 1])

        assert ParallelJob(2).run(prog) == [5.0, 5.0]

    def test_shape_dtype(self):
        def prog(comm):
            ca = CoArray(comm, (3, 4), dtype=np.float32)
            return (ca.shape, ca.dtype == np.float32)

        assert ParallelJob(2).run(prog) == [((3, 4), True)] * 2

    def test_caf_vs_mpi_message_granularity(self):
        """CAF moves the same bytes in more, smaller messages (§3.2)."""
        tr_mpi, tr_caf = Transport(2), Transport(2)
        rows = 16

        def mpi_prog(comm):
            # MPI path: pack 16 rows into one buffer, one message.
            buf = np.zeros((rows, 4))
            if comm.rank == 0:
                comm.send(buf, dest=1)
            else:
                comm.recv(source=0)

        def caf_prog(comm):
            # CAF path: 16 direct row puts, no packing.
            ca = CoArray(comm, (rows, 4))
            ca.sync()
            if comm.rank == 0:
                for i in range(rows):
                    ca.put(1, (i, slice(None)), np.zeros(4))
            ca.sync()

        ParallelJob(2, transport=tr_mpi).run(mpi_prog)
        ParallelJob(2, transport=tr_caf).run(caf_prog)
        assert tr_caf.total_bytes(onesided=True) == tr_mpi.total_bytes()
        assert tr_caf.message_count() > tr_mpi.message_count()
