"""Atomic publish + durable append primitives shared by checkpoints,
the campaign store, and the campaign journal."""

import os

import pytest

from repro.runtime.atomic_io import (
    AppendLog,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    read_lines,
    replace_entry,
)


class TestAtomicWrite:
    def test_publishes_content(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_no_tmp_residue_on_success(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic_write_bytes(path, b"x" * 100)
        assert os.listdir(tmp_path) == ["f.bin"]

    def test_exception_leaves_old_content_and_no_tmp(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(path, mode="w") as fh:
                fh.write("half-writ")
                raise RuntimeError("boom")
        assert path.read_text() == "old"
        assert os.listdir(tmp_path) == ["f.txt"]

    def test_overwrites_existing_atomically(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_tmp_suffix_separates_writers(self, tmp_path):
        path = tmp_path / "f.txt"
        with atomic_write(path, mode="w", tmp_suffix=".tmp7") as fh:
            assert (tmp_path / "f.txt.tmp7").exists()
            fh.write("rank7")
        assert path.read_text() == "rank7"

    def test_replace_entry_publishes_directory_tree(self, tmp_path):
        staging = tmp_path / ".tmp-entry"
        staging.mkdir()
        (staging / "result.json").write_text("{}")
        final = tmp_path / "entry"
        replace_entry(staging, final)
        assert (final / "result.json").exists()
        assert not staging.exists()


class TestAppendLog:
    def test_appends_are_readable_lines(self, tmp_path):
        path = tmp_path / "log"
        with AppendLog(path) as log:
            log.append("one")
            log.append("two")
        assert read_lines(path) == ["one", "two"]

    def test_reopen_appends_not_truncates(self, tmp_path):
        path = tmp_path / "log"
        with AppendLog(path) as log:
            log.append("a")
        with AppendLog(path) as log:
            log.append("b")
        assert read_lines(path) == ["a", "b"]

    def test_embedded_newline_rejected(self, tmp_path):
        with AppendLog(tmp_path / "log") as log:
            with pytest.raises(ValueError, match="single lines"):
                log.append("two\nlines")

    def test_append_after_close_rejected(self, tmp_path):
        log = AppendLog(tmp_path / "log")
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.append("late")

    def test_read_lines_returns_torn_fragment(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("complete\nfragment-without-newline")
        assert read_lines(path) == ["complete",
                                    "fragment-without-newline"]

    def test_read_lines_empty_file(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("")
        assert read_lines(path) == []


class TestCheckpointerUsesAtomicWrite:
    def test_checkpoint_roundtrip_and_no_residue(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.resilience.checkpoint import Checkpointer

        ck = Checkpointer(tmp_path)
        ck.save(3, 0, u=np.arange(4.0))
        data = ck.load(3, 0)
        assert np.array_equal(data["u"], np.arange(4.0))
        residue = [p for p in os.listdir(tmp_path) if ".tmp" in p]
        assert residue == []
