"""Virtual clocks: BSP critical-path semantics."""

import pytest

from repro.runtime import VirtualClocks


class TestVirtualClocks:
    def test_advance_and_read(self):
        vc = VirtualClocks(2)
        vc.advance(0, 1.5)
        assert vc.time(0) == 1.5
        assert vc.time(1) == 0.0

    def test_synchronize_jumps_to_max(self):
        vc = VirtualClocks(3)
        vc.advance(0, 1.0)
        vc.advance(1, 5.0)
        t = vc.synchronize()
        assert t == 5.0
        assert all(vc.time(r) == 5.0 for r in range(3))

    def test_synchronize_subset(self):
        vc = VirtualClocks(4)
        vc.advance(0, 2.0)
        vc.advance(3, 9.0)
        vc.synchronize([0, 1])
        assert vc.time(0) == vc.time(1) == 2.0
        assert vc.time(3) == 9.0

    def test_barrier_overhead(self):
        vc = VirtualClocks(2)
        vc.advance(0, 1.0)
        assert vc.synchronize(overhead=0.25) == 1.25

    def test_makespan_and_imbalance(self):
        vc = VirtualClocks(4)
        for r in range(4):
            vc.advance(r, float(r + 1))
        assert vc.makespan == 4.0
        assert vc.imbalance == pytest.approx(4.0 / 2.5)

    def test_balanced_imbalance_is_one(self):
        vc = VirtualClocks(3)
        assert vc.imbalance == 1.0
        for r in range(3):
            vc.advance(r, 2.0)
        assert vc.imbalance == 1.0

    def test_synchronize_empty_ranks_rejected(self):
        vc = VirtualClocks(3)
        vc.advance(0, 1.0)
        with pytest.raises(ValueError, match="empty rank list"):
            vc.synchronize([])
        # None still means "all ranks".
        assert vc.synchronize(None) == 1.0

    def test_negative_rejected(self):
        vc = VirtualClocks(1)
        with pytest.raises(ValueError):
            vc.advance(0, -1.0)
        with pytest.raises(ValueError):
            vc.synchronize(overhead=-0.1)
