"""Decompositions: exact tiling, neighbours, PARATEC load balancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    Block1D,
    BlockND,
    ProcessorGrid,
    balance_columns,
    factor_grid,
    split_extent,
)


class TestFactorGrid:
    def test_known_factorizations(self):
        assert factor_grid(64, 2) == (8, 8)
        assert factor_grid(16, 2) == (4, 4)
        assert factor_grid(1024, 2) == (32, 32)
        assert factor_grid(16, 3) == (4, 2, 2)
        assert factor_grid(7, 2) == (7, 1)

    @given(n=st.integers(1, 4096), d=st.integers(1, 4))
    def test_product_preserved(self, n, d):
        dims = factor_grid(n, d)
        assert int(np.prod(dims)) == n
        assert len(dims) == d

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            factor_grid(0, 2)


class TestSplitExtent:
    def test_even_split(self):
        assert split_extent(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        assert split_extent(10, 3) == [(0, 4), (4, 7), (7, 10)]

    @given(n=st.integers(1, 10000), p=st.integers(1, 64))
    def test_partition_property(self, n, p):
        if n < p:
            with pytest.raises(ValueError):
                split_extent(n, p)
            return
        parts = split_extent(n, p)
        assert parts[0][0] == 0 and parts[-1][1] == n
        sizes = [b - a for a, b in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        for (a1, b1), (a2, _) in zip(parts, parts[1:]):
            assert b1 == a2


class TestProcessorGrid:
    def test_coords_rank_roundtrip(self):
        g = ProcessorGrid((4, 8))
        for r in range(32):
            assert g.rank(g.coords(r)) == r

    def test_periodic_neighbors(self):
        g = ProcessorGrid((4, 4))
        assert g.neighbor(0, axis=0, step=-1) == g.rank((3, 0))
        assert g.neighbor(15, axis=1, step=1) == g.rank((3, 0))

    def test_walls_without_periodicity(self):
        g = ProcessorGrid((2, 2), periodic=False)
        assert g.neighbor(0, axis=0, step=-1) is None
        assert g.neighbor(0, axis=1, step=1) == 1

    def test_for_nprocs(self):
        g = ProcessorGrid.for_nprocs(64, 2)
        assert g.dims == (8, 8)

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            ProcessorGrid((2, 2)).coords(4)


class TestBlockND:
    def test_local_shapes_2d(self):
        d = BlockND(ProcessorGrid((2, 2)), (64, 64))
        assert all(d.local_shape(r) == (32, 32) for r in range(4))

    def test_tiles_exactly_2d(self):
        d = BlockND(ProcessorGrid((3, 2)), (17, 9))
        assert d.tile_exactly()

    def test_tiles_exactly_3d(self):
        d = BlockND(ProcessorGrid((2, 3, 2)), (8, 9, 10))
        assert d.tile_exactly()

    @settings(max_examples=25)
    @given(px=st.integers(1, 4), py=st.integers(1, 4),
           nx=st.integers(4, 40), ny=st.integers(4, 40))
    def test_tiling_property(self, px, py, nx, ny):
        d = BlockND(ProcessorGrid((px, py)), (nx, ny))
        assert d.tile_exactly()

    def test_owner(self):
        d = BlockND(ProcessorGrid((2, 2)), (8, 8))
        assert d.owner((0, 0)) == 0
        assert d.owner((7, 7)) == 3
        assert d.owner((0, 7)) == 1

    def test_owner_bounds_consistent(self):
        d = BlockND(ProcessorGrid((3, 2)), (11, 7))
        for r in range(6):
            (x0, x1), (y0, y1) = d.bounds(r)
            assert d.owner((x0, y0)) == r
            assert d.owner((x1 - 1, y1 - 1)) == r

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            BlockND(ProcessorGrid((2, 2)), (8,))

    def test_too_small_extent_rejected(self):
        with pytest.raises(ValueError):
            BlockND(ProcessorGrid((4, 1)), (2, 8))


class TestBlock1D:
    def test_gtc_domain_limit(self):
        """§6.1: grid decomposition limited to 64 subdomains."""
        Block1D(64, 640)
        with pytest.raises(ValueError, match="64"):
            Block1D(65, 1024)

    def test_ring_neighbors(self):
        d = Block1D(8, 64)
        assert d.left(0) == 7
        assert d.right(7) == 0

    def test_owner(self):
        d = Block1D(4, 16)
        assert d.owner(0) == 0
        assert d.owner(15) == 3


class TestBalanceColumns:
    def test_figure4_three_processor_example(self):
        lengths = np.array([5, 4, 4, 3, 3, 2, 2, 1, 1])
        assignment, loads = balance_columns(lengths, 3)
        assert loads.sum() == lengths.sum()
        assert loads.max() - loads.min() <= 1

    def test_greedy_descending_rule(self):
        # Longest column goes to proc 0, next to proc 1, etc.
        assignment, _ = balance_columns(np.array([1, 9, 5]), 3)
        assert assignment[1] == 0
        assert assignment[2] == 1
        assert assignment[0] == 2

    def test_single_processor(self):
        assignment, loads = balance_columns(np.array([3, 1, 2]), 1)
        assert (assignment == 0).all()
        assert loads[0] == 6

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200),
           st.integers(1, 16))
    def test_balance_quality_property(self, lengths, nprocs):
        lengths = np.array(lengths)
        assignment, loads = balance_columns(lengths, nprocs)
        assert loads.sum() == lengths.sum()
        # LPT bound: max load <= mean + longest column.
        if lengths.sum() > 0:
            assert loads.max() <= lengths.sum() / nprocs + lengths.max()
        # Assignment consistent with loads.
        recomputed = np.zeros(nprocs, dtype=np.int64)
        for c, p in enumerate(assignment):
            recomputed[p] += lengths[c]
        assert (recomputed == loads).all()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            balance_columns(np.array([-1, 2]), 2)
