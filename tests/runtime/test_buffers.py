"""Aliasing safety of the buffer-ownership protocol (tentpole tests).

The zero-copy fast path shares arrays by reference; these tests pin the
safety contract: in-flight buffers are immutable, mutation goes through
copy-on-write, pooled buffers never alias live data, and the guarantees
hold on the MPI-like two-sided path and the CAF one-sided path alike —
with and without fault injection replaying messages underneath.
"""

import numpy as np
import pytest

from repro.runtime import (
    BufferPool,
    BufferStats,
    CoArray,
    FaultInjector,
    FaultPlan,
    ParallelJob,
    Transport,
    borrow,
    writable,
)


class TestBorrow:
    def test_owning_array_is_frozen_and_shared(self):
        a = np.arange(5.0)
        stats = BufferStats()
        b = borrow(a, stats)
        assert b is a and not a.flags.writeable
        assert stats.borrows == 1 and stats.copies == 0

    def test_view_is_packed_once(self):
        base = np.arange(20.0).reshape(4, 5)
        view = base[:, 1:3]
        stats = BufferStats()
        b = borrow(view, stats)
        assert b is not view and b.base is None
        assert not b.flags.writeable
        assert base.flags.writeable  # the base is untouched
        assert stats.copies == 1 and stats.copy_bytes == view.nbytes

    def test_frozen_array_passes_through(self):
        a = np.arange(3.0)
        a.flags.writeable = False
        stats = BufferStats()
        assert borrow(a, stats) is a
        assert stats.borrows == 1

    def test_containers_rebuilt_with_borrowed_leaves(self):
        a, b = np.arange(3.0), np.arange(4.0)
        out = borrow({"x": [a, (b, 1.5)], "y": "tag"})
        assert out["x"][0] is a and out["x"][1][0] is b
        assert not a.flags.writeable and not b.flags.writeable
        assert out["y"] == "tag"

    def test_mutating_frozen_buffer_raises(self):
        a = np.arange(4.0)
        borrow(a)
        with pytest.raises(ValueError):
            a[0] = 99.0

    def test_writable_is_identity_on_writable_arrays(self):
        a = np.arange(4.0)
        assert writable(a) is a

    def test_writable_copies_frozen_buffer(self):
        a = np.arange(4.0)
        borrow(a)
        w = writable(a)
        assert w is not a and w.flags.writeable
        w[0] = 99.0
        assert a[0] == 0.0  # other holders see pre-mutation values


class TestBufferPool:
    def test_take_give_recycles(self):
        pool = BufferPool()
        a = pool.take((3, 4))
        pool.give(a)
        b = pool.take((3, 4))
        assert b is a and b.flags.writeable
        assert pool.stats()["hits"] == 1

    def test_frozen_owning_buffer_unfrozen_on_take(self):
        pool = BufferPool()
        a = pool.take((8,))
        a.flags.writeable = False  # as after borrow()
        pool.give(a)
        b = pool.take((8,))
        assert b is a and b.flags.writeable

    def test_views_are_not_pooled(self):
        pool = BufferPool()
        base = np.zeros((4, 4))
        pool.give(base[1:3])
        assert pool.stats()["pooled"] == 0

    def test_shape_dtype_keyed(self):
        pool = BufferPool()
        a = pool.take((4,), np.float64)
        pool.give(a)
        assert pool.take((4,), np.complex128) is not a
        assert pool.take((5,), np.float64) is not a
        assert pool.take((4,), np.float64) is a

    def test_capacity_bound(self):
        pool = BufferPool(max_per_key=2)
        bufs = [np.zeros(3) for _ in range(4)]
        for b in bufs:
            pool.give(b)
        s = pool.stats()
        assert s["pooled"] == 2 and s["drops"] == 2


class TestMpiPathAliasing:
    def test_received_buffer_is_immutable_and_cow_works(self):
        def prog(comm):
            payload = np.full(4, float(comm.rank))
            comm.send(payload, dest=(comm.rank + 1) % comm.size, tag=0)
            got = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
            assert not got.flags.writeable
            with pytest.raises(ValueError):
                got[0] = -1.0
            mine = writable(got)
            mine += 1.0
            return float(got[0]), float(mine[0])

        for frozen, cow in ParallelJob(3).run(prog):
            assert cow == frozen + 1.0

    def test_sender_side_freeze_prevents_halo_corruption(self):
        """The classic aliasing bug: sender reuses its send buffer while
        the message is logically in flight.  The freeze makes it raise
        instead of corrupting the receiver's halo."""
        def prog(comm):
            buf = np.full(4, float(comm.rank))
            comm.send(buf, dest=(comm.rank + 1) % comm.size, tag=0)
            with pytest.raises(ValueError):
                buf[:] = -7.0  # would alias the receiver's copy
            got = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
            return float(got.sum())

        out = ParallelJob(2).run(prog)
        assert out == [4.0, 0.0]

    def test_logical_traffic_identical_between_modes(self):
        def prog(comm):
            comm.send(np.arange(16.0),
                      dest=(comm.rank + 1) % comm.size, tag=0)
            comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
            comm.alltoall([np.zeros(4)] * comm.size)

        stats = {}
        for zero_copy in (False, True):
            tp = Transport(2, zero_copy=zero_copy)
            ParallelJob(2, transport=tp).run(prog)
            stats[zero_copy] = (tp.message_count(), tp.total_bytes())
        assert stats[False] == stats[True]

    def test_physical_copies_differ_between_modes(self):
        def prog(comm):
            comm.send(np.arange(16.0),
                      dest=(comm.rank + 1) % comm.size, tag=0)
            comm.recv(source=(comm.rank - 1) % comm.size, tag=0)

        tp_fast = Transport(2, zero_copy=True)
        ParallelJob(2, transport=tp_fast).run(prog)
        assert tp_fast.buffers.borrows > 0
        assert tp_fast.buffers.copy_bytes == 0
        tp_slow = Transport(2, zero_copy=False)
        ParallelJob(2, transport=tp_slow).run(prog)
        # Legacy mode never borrows: payloads are deep-copied outside
        # the ownership protocol entirely.
        assert tp_slow.buffers.borrows == 0


class TestCafPathAliasing:
    def test_put_source_safe_after_call(self):
        """One-sided put copies out of the source strip synchronously:
        mutating the source after put() must not change the target."""
        def prog(comm):
            ca = CoArray(comm, (4,), name="x")
            ca.local[...] = 0.0
            ca.sync()
            src = np.full(2, float(comm.rank + 1))
            ca.put((comm.rank + 1) % comm.size, slice(0, 2), src)
            src[:] = -99.0  # must not retroactively change the put
            ca.sync()
            return ca.local.copy()

        for rank, local in enumerate(ParallelJob(2).run(prog)):
            writer = (rank - 1) % 2
            np.testing.assert_array_equal(local[:2], writer + 1.0)

    def test_lbmhd_caf_matches_mpi_path_bitwise(self):
        from repro.apps.lbmhd.initial import orszag_tang
        from repro.apps.lbmhd.parallel import run_parallel

        rho, u, B = orszag_tang(16, 16)
        out_mpi = run_parallel(rho, u, B, nprocs=4, nsteps=3)
        out_caf = run_parallel(rho, u, B, nprocs=4, nsteps=3,
                               use_caf=True)
        for a, b in zip(out_mpi, out_caf):
            np.testing.assert_array_equal(a, b)


class TestAliasingUnderFaults:
    """Message replay (the retry path) must not break ownership: a
    resent borrowed buffer is the same frozen array, and the receiver's
    dedup keeps exactly one logical delivery."""

    def test_ring_with_fault_injection_zero_copy(self):
        plan = FaultPlan(seed=7, drop=0.4, duplicate=0.4)
        injector = FaultInjector(plan)

        def prog(comm):
            total = 0.0
            for step in range(4):
                injector.tick(comm.rank, step)
                payload = np.full(4, float(comm.rank * 10 + step))
                comm.send(payload, dest=(comm.rank + 1) % comm.size,
                          tag=step)
                got = comm.recv(source=(comm.rank - 1) % comm.size,
                                tag=step)
                assert not got.flags.writeable
                total += float(got.sum())
            return total

        tp = Transport(2, injector=injector)
        assert tp.zero_copy
        out = ParallelJob(2, transport=tp, injector=injector).run(prog)
        # rank r hears from (r-1)%2: sum_s 4*(10*sender + s), 4 steps.
        assert out == [160.0 * 1 + 24.0, 160.0 * 0 + 24.0]

    def test_lbmhd_fault_injection_matches_fault_free(self):
        from repro.apps.lbmhd.initial import orszag_tang
        from repro.apps.lbmhd.parallel import run_parallel

        rho, u, B = orszag_tang(16, 16)
        clean = run_parallel(rho, u, B, nprocs=4, nsteps=3, fused=True)
        plan = FaultPlan(seed=11, drop=0.3, duplicate=0.3)
        injector = FaultInjector(plan)
        tp = Transport(4, injector=injector)
        faulty = run_parallel(rho, u, B, nprocs=4, nsteps=3, fused=True,
                              transport=tp, injector=injector)
        for a, b in zip(clean, faulty):
            np.testing.assert_array_equal(a, b)
