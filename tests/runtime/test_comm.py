"""Communicator: point-to-point, collectives, exchange semantics."""

import numpy as np
import pytest

from repro.runtime import ParallelJob, Transport


class TestPointToPoint:
    def test_send_recv_array(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), dest=1)
                return None
            if comm.rank == 1:
                return comm.recv(source=0)
            return None

        out = ParallelJob(2).run(prog)
        np.testing.assert_array_equal(out[1], np.arange(10.0))

    def test_send_borrow_then_cow(self):
        """Ownership semantics: mutating after send must not affect the
        receiver.  The sent buffer is borrowed (frozen in transit); the
        sender mutates through writable(), which copies on write."""
        from repro.runtime import writable

        def prog(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                a = writable(a)       # copy-on-write: private copy
                a[:] = -1.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        out = ParallelJob(2).run(prog)
        np.testing.assert_array_equal(out[1], np.ones(4))

    def test_send_freezes_borrowed_buffer(self):
        """In-place mutation of a buffer in transit fails loudly."""
        def prog(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                with pytest.raises(ValueError, match="read-only"):
                    a[:] = -1.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        out = ParallelJob(2).run(prog)
        np.testing.assert_array_equal(out[1], np.ones(4))

    def test_legacy_copy_mode(self):
        """zero_copy=False restores unconditional deep-copy semantics."""
        def prog(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                a[:] = -1.0           # legal: the runtime copied
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        out = ParallelJob(2, zero_copy=False).run(prog)
        np.testing.assert_array_equal(out[1], np.ones(4))

    def test_tags_disambiguate(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            return (comm.recv(0, tag=1), comm.recv(0, tag=2))

        assert ParallelJob(2).run(prog)[1] == ("a", "b")

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        out = ParallelJob(5).run(prog)
        assert out == [4, 0, 1, 2, 3]

    def test_exchange_halo_pattern(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.exchange({right: f"from{comm.rank}",
                                 left: f"from{comm.rank}"})
            return sorted(got.values())

        out = ParallelJob(4).run(prog)
        assert out[0] == ["from1", "from3"]

    def test_exchange_with_self_rejected(self):
        def prog(comm):
            comm.exchange({comm.rank: 1})

        with pytest.raises(RuntimeError, match="exchange with self"):
            ParallelJob(2).run(prog)


class TestCollectives:
    def test_allreduce_sum_scalar(self):
        out = ParallelJob(6).run(lambda c: c.allreduce(c.rank))
        assert out == [15] * 6

    def test_allreduce_array(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        out = ParallelJob(4).run(prog)
        for r in out:
            np.testing.assert_array_equal(r, np.full(3, 6.0))

    def test_allreduce_max_min(self):
        assert ParallelJob(4).run(
            lambda c: c.allreduce(c.rank, op="max")) == [3] * 4
        assert ParallelJob(4).run(
            lambda c: c.allreduce(c.rank, op="min")) == [0] * 4

    def test_allreduce_bad_op(self):
        with pytest.raises(RuntimeError, match="unknown reduction"):
            ParallelJob(2).run(lambda c: c.allreduce(1, op="prod"))

    def test_bcast(self):
        def prog(comm):
            val = np.arange(4.0) if comm.rank == 2 else None
            return comm.bcast(val, root=2)

        out = ParallelJob(4).run(prog)
        for r in out:
            np.testing.assert_array_equal(r, np.arange(4.0))

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank * 10, root=1)

        out = ParallelJob(3).run(prog)
        assert out[0] is None and out[2] is None
        assert out[1] == [0, 10, 20]

    def test_allgather(self):
        out = ParallelJob(3).run(lambda c: c.allgather(c.rank))
        assert out == [[0, 1, 2]] * 3

    def test_alltoall_transpose(self):
        def prog(comm):
            chunks = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(chunks)

        out = ParallelJob(3).run(prog)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_arity(self):
        with pytest.raises(RuntimeError, match="alltoall needs"):
            ParallelJob(3).run(lambda c: c.alltoall([1, 2]))

    def test_collectives_repeatable(self):
        def prog(comm):
            return [comm.allreduce(comm.rank + i) for i in range(5)]

        out = ParallelJob(3).run(prog)
        assert out[0] == [3, 6, 9, 12, 15]


class TestJobMechanics:
    def test_single_rank_job(self):
        assert ParallelJob(1).run(lambda c: c.allreduce(42)) == [42]

    def test_rank_args(self):
        out = ParallelJob(3).run(lambda c, x: x * 2,
                                 rank_args=[(1,), (2,), (3,)])
        assert out == [2, 4, 6]

    def test_rank_args_length_checked(self):
        with pytest.raises(ValueError):
            ParallelJob(3).run(lambda c, x: x, rank_args=[(1,)])

    def test_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            ParallelJob(2).run(prog)

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            ParallelJob(0)

    def test_transport_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParallelJob(4, transport=Transport(2))

    def test_phase_labels_traffic(self):
        transport = Transport(2)

        def prog(comm):
            with comm.phase("halo"):
                if comm.rank == 0:
                    comm.send(np.zeros(10), dest=1)
                else:
                    comm.recv(source=0)
            with comm.phase("other"):
                if comm.rank == 0:
                    comm.send(np.zeros(3), dest=1)
                else:
                    comm.recv(source=0)

        ParallelJob(2, transport=transport).run(prog)
        phases = {m.phase for m in transport.messages}
        assert phases == {"halo", "other"}
        halo = [m for m in transport.messages if m.phase == "halo"]
        assert sum(m.nbytes for m in halo) == 80
