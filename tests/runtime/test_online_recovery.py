"""Failure detection and typed wake-ups: the runtime half of online
rank-failure recovery.

Covers the heartbeat detector's seeded virtual-time timeouts, the typed
:class:`RankFailedError` observed by survivors blocked in collectives
when a peer is killed mid-step, the replay-log truncation that keeps
log indices and consumption counters aligned across repairs, and the
:meth:`Transport.reset` regression (a restart must not inherit
undelivered payloads, resend accounting, or failure state from the
previous attempt).
"""

import pytest

from repro.runtime import (
    HeartbeatDetector,
    ParallelJob,
    RankFailedError,
    RankKilledError,
    ReplayGapError,
    Transport,
)


class TestHeartbeatDetector:
    def test_timeouts_seeded_and_desynchronized(self):
        d1 = HeartbeatDetector(8, seed=7)
        d2 = HeartbeatDetector(8, seed=7)
        touts = [d1.timeout_for(r) for r in range(8)]
        assert touts == [d2.timeout_for(r) for r in range(8)]
        assert len(set(touts)) == 8          # per-rank jitter
        for t in touts:
            assert 2.0 <= t <= 3.0           # base 2.0, jitter 0.5
        d3 = HeartbeatDetector(8, seed=8)
        assert touts != [d3.timeout_for(r) for r in range(8)]

    def test_detection_latency_equals_timeout(self):
        d = HeartbeatDetector(4, seed=1)
        assert d.latency(2) == d.timeout_for(2)

    def test_suspects_only_overdue_ranks(self):
        d = HeartbeatDetector(2, seed=0, base_timeout=1.0, jitter=0.0)
        d.beat(0, 10.0)
        d.beat(1, 5.0)
        assert d.suspects(6.5) == [1]
        assert d.suspects(5.9) == []
        assert d.suspects(12.5, exclude={1}) == [0]

    def test_beats_are_monotone(self):
        d = HeartbeatDetector(1, seed=0)
        d.beat(0, 10.0)
        d.beat(0, 3.0)                       # stale beat ignored
        assert d.last_beat(0) == 10.0

    def test_check_heartbeats_marks_overdue_dead(self):
        tr = Transport(2)
        now = 100.0 + tr.detector.timeout_for(1) + 0.1
        tr.detector.beat(0, now)             # rank 1 never beats
        assert tr.check_heartbeats(now) == [1]
        with pytest.raises(RankFailedError) as ei:
            tr.fetch(1, 0, 0, timeout=1.0)
        assert ei.value.rank == 1
        assert ei.value.latency == tr.detector.latency(1)
        # already-dead ranks are not re-reported
        assert tr.check_heartbeats(now) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatDetector(0)
        with pytest.raises(ValueError):
            HeartbeatDetector(2, base_timeout=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(2, jitter=-1.0)


def _kill_during(collective):
    """Run 3 ranks; rank 1 dies before the collective.  Returns the
    RankFailedError each survivor observed."""
    tr = Transport(3)
    seen = {}

    def prog(comm):
        if comm.rank == 1:
            raise RankKilledError(1, 0)
        try:
            collective(comm)
        except RankFailedError as exc:
            seen[comm.rank] = exc
            raise

    with pytest.raises(RuntimeError, match="injected kill"):
        ParallelJob(3, transport=tr, online=True).run(prog)
    return tr, seen


class TestTypedFailureInCollectives:
    def test_allreduce_raises_rank_failed(self):
        tr, seen = _kill_during(lambda c: c.allreduce(1.0))
        assert sorted(seen) == [0, 2]
        for exc in seen.values():
            assert exc.rank == 1
            assert 0.0 < exc.latency <= tr.detector.timeout_for(1)

    def test_barrier_raises_rank_failed(self):
        tr, seen = _kill_during(lambda c: c.barrier())
        assert sorted(seen) == [0, 2]
        assert all(e.rank == 1 for e in seen.values())

    def test_alltoall_raises_rank_failed(self):
        tr, seen = _kill_during(
            lambda c: c.alltoall([c.rank] * c.size))
        assert sorted(seen) == [0, 2]
        assert all(e.rank == 1 for e in seen.values())

    def test_recv_from_dead_rank_raises_typed(self):
        tr = Transport(2)
        seen = {}

        def prog(comm):
            if comm.rank == 1:
                raise RankKilledError(1, 0)
            try:
                comm.recv(source=1, tag=0)
            except RankFailedError as exc:
                seen[comm.rank] = exc
                raise

        with pytest.raises(RuntimeError, match="injected kill"):
            ParallelJob(2, transport=tr, online=True).run(prog)
        assert seen[0].rank == 1


class TestReplayLogTruncation:
    def test_truncate_drops_entries_past_the_step_mark(self):
        tr = Transport(2)
        tr.enable_online()
        tr.post(0, 1, 0, "a", 1)
        tr.fetch(0, 1, 0)
        tr.mark_consumed(5, 1)              # step-5 consumption mark
        tr.post(0, 1, 0, "b", 1)            # partial-step traffic
        tr.fetch(0, 1, 0)
        assert tr.replay_fetch(0, 1, 0, 1) == "b"
        tr.truncate_logs(5)
        assert tr.replay_fetch(0, 1, 0, 0) == "a"
        with pytest.raises(ReplayGapError):
            tr.replay_fetch(0, 1, 0, 1)     # truncated with the step

    def test_truncate_rolls_consumption_counters_back(self):
        # After truncation the next post lands at the mark's index, so
        # replay cursors computed from the mark stay valid.
        tr = Transport(2)
        tr.enable_online()
        tr.post(0, 1, 0, "a", 1)
        tr.fetch(0, 1, 0)
        tr.mark_consumed(3, 1)
        tr.post(0, 1, 0, "stale", 1)
        tr.truncate_logs(3)
        tr.post(0, 1, 0, "fresh", 1)
        assert tr.replay_fetch(0, 1, 0, 1) == "fresh"


class TestResetRegression:
    def test_reset_drains_undelivered_payloads(self):
        tr = Transport(2)
        ParallelJob(2, transport=tr).run(
            lambda c: c.send(1, dest=1 - c.rank))   # two orphans
        assert tr.undelivered() == 2
        tr.reset()
        assert tr.last_reset_drained == 2
        assert tr.undelivered() == 0

    def test_reset_clears_failure_and_replay_state(self):
        tr = Transport(2)
        tr.enable_online()
        tr.post(0, 1, 0, "logged", 6)
        tr.mark_dead(1, step=3)
        tr.reset()
        # dead set cleared: a fetch times out instead of raising the
        # stale typed failure
        with pytest.raises(TimeoutError):
            tr.fetch(0, 1, 0, timeout=0.05)
        # message log cleared: nothing to replay
        with pytest.raises(ReplayGapError):
            tr.replay_fetch(0, 1, 0, 0)

    def test_reset_restarts_epoch_accounting(self):
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        ParallelJob(2, transport=tr).run(prog)
        total = tr.message_count()
        tr.reset()
        assert tr.resend_count(epoch=True) == 0
        assert tr.undelivered() == 0
        # cumulative records survive the reset
        assert tr.message_count() == total
