"""Sub-communicators (MPI_Comm_split semantics)."""

import numpy as np
import pytest

from repro.runtime import ParallelJob, Transport


class TestSplit:
    def test_groups_by_color(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size)

        out = ParallelJob(6).run(prog)
        assert all(size == 3 for _, size in out)
        assert sorted(r for r, _ in out[::2]) == [0, 1, 2]

    def test_subgroup_allreduce(self):
        def prog(comm):
            sub = comm.split(comm.rank // 3)
            return sub.allreduce(comm.rank)

        out = ParallelJob(6).run(prog)
        assert out[:3] == [3, 3, 3]      # 0+1+2
        assert out[3:] == [12, 12, 12]   # 3+4+5

    def test_key_reorders(self):
        def prog(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        out = ParallelJob(4).run(prog)
        assert out == [3, 2, 1, 0]

    def test_subgroup_p2p_translates_ranks(self):
        """Sub-communicator sends reach the right global ranks."""
        tr = Transport(4)

        def prog(comm):
            sub = comm.split(comm.rank // 2)
            peer = 1 - sub.rank
            return sub.sendrecv(comm.rank, dest=peer, source=peer)

        out = ParallelJob(4, transport=tr).run(prog)
        assert out == [1, 0, 3, 2]
        pairs = {(m.src, m.dst) for m in tr.messages}
        assert pairs == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_subgroup_arrays(self):
        def prog(comm):
            sub = comm.split(0)
            return sub.allreduce(np.full(2, float(comm.rank)))

        out = ParallelJob(3).run(prog)
        np.testing.assert_array_equal(out[0], [3.0, 3.0])

    def test_singleton_groups(self):
        def prog(comm):
            sub = comm.split(comm.rank)  # everyone alone
            return (sub.size, sub.allreduce(comm.rank * 7))

        out = ParallelJob(3).run(prog)
        assert out == [(1, 0), (1, 7), (1, 14)]

    def test_bcast_within_group(self):
        def prog(comm):
            sub = comm.split(comm.rank // 2)
            return sub.bcast(comm.rank if sub.rank == 0 else None)

        out = ParallelJob(4).run(prog)
        assert out == [0, 0, 2, 2]

    def test_nested_split_unsupported(self):
        def prog(comm):
            sub = comm.split(0)
            with pytest.raises(NotImplementedError):
                sub.split(0)
            return True

        assert all(ParallelJob(2).run(prog))

    def test_repeated_splits(self):
        """Splitting twice in a row must not deadlock or cross wires."""
        def prog(comm):
            a = comm.split(comm.rank % 2)
            b = comm.split(comm.rank // 2)
            return (a.allreduce(1), b.allreduce(1))

        out = ParallelJob(4).run(prog)
        assert out == [(2, 2)] * 4
