"""Buffer-ownership sanitizer: violations fail loudly, results unchanged.

Three families: borrowed-buffer writes (receiver side via FrozenBorrow,
sender side via the job driver's enriched read-only error), BufferPool
release policing (double release, write-after-release, stale
generations), and the HaloGuard step protocol — each exercised both as
a unit and inside a real parallel step.
"""

import numpy as np
import pytest

from repro.apps.lbmhd.initial import orszag_tang
from repro.apps.lbmhd.parallel import run_parallel
from repro.runtime import (
    BorrowWriteError,
    BufferPool,
    HaloGuard,
    HaloReadError,
    ParallelJob,
    PoolDoubleReleaseError,
    PoolUseAfterReleaseError,
    Transport,
    writable,
)
from repro.runtime.buffers import borrow
from repro.runtime.sanitize import ENV_VAR, env_enabled


class TestFrozenBorrow:
    def test_write_raises_with_borrow_site(self):
        arr = np.arange(6.0)
        fb = borrow(arr, sanitize=True, site="driver.py:42 in exchange")
        with pytest.raises(BorrowWriteError, match="driver.py:42"):
            fb[0] = 1.0

    def test_inplace_ufunc_raises(self):
        fb = borrow(np.arange(4.0), sanitize=True, site="s")
        with pytest.raises(BorrowWriteError):
            fb += 1.0
        with pytest.raises(BorrowWriteError):
            np.add(fb, 1.0, out=fb)

    def test_reads_and_arithmetic_decay_to_ndarray(self):
        fb = borrow(np.arange(4.0), sanitize=True, site="s")
        assert float(fb.sum()) == 6.0
        out = fb * 2.0
        assert type(out) is np.ndarray
        assert out.flags.writeable

    def test_writable_returns_plain_private_copy(self):
        arr = np.arange(4.0)
        fb = borrow(arr, sanitize=True, site="s")
        w = writable(fb)
        assert type(w) is np.ndarray
        w[0] = 99.0
        assert fb[0] == 0.0          # borrow unchanged

    def test_container_leaves_are_stamped(self):
        payload = borrow({"f": np.ones(3), "g": [np.zeros(2)]},
                         sanitize=True, site="pack.py:7 in pack")
        with pytest.raises(BorrowWriteError, match="pack.py:7"):
            payload["f"][0] = 2.0
        with pytest.raises(BorrowWriteError, match="pack.py:7"):
            payload["g"][0][0] = 2.0


class TestPoolSanitize:
    def test_double_release_raises(self):
        pool = BufferPool(sanitize=True)
        buf = pool.take((4,))
        pool.give(buf)
        with pytest.raises(PoolDoubleReleaseError, match="released twice"):
            pool.give(buf)

    def test_write_after_release_detected_on_reissue(self):
        pool = BufferPool(sanitize=True)
        buf = pool.take((4,))
        pool.give(buf)
        buf[1] = 7.0                  # stale handle keeps writing
        with pytest.raises(PoolUseAfterReleaseError,
                           match="written after its release"):
            pool.take((4,))

    def test_released_float_buffer_is_poisoned(self):
        pool = BufferPool(sanitize=True)
        buf = pool.take((3,))
        buf[:] = 5.0
        pool.give(buf)
        assert np.isnan(buf).all()    # reads through stale handle scream

    def test_generation_counter_catches_stale_holder(self):
        pool = BufferPool(sanitize=True)
        buf = pool.take((2,))
        pool.give(buf)
        again = pool.take((2,))       # same storage, generation bumped
        assert again is buf
        gen = pool.generation_of(again)
        pool.check_generation(again, gen)          # current: fine
        with pytest.raises(PoolUseAfterReleaseError, match="re-issued"):
            pool.check_generation(again, gen - 1)  # stale snapshot

    def test_clean_cycle_passes(self):
        pool = BufferPool(sanitize=True)
        for _ in range(3):
            buf = pool.take((8,), np.float64)
            buf[:] = 1.0
            pool.give(buf)
        assert pool.stats()["hits"] >= 2

    def test_plain_pool_is_unpoliced(self):
        pool = BufferPool()
        buf = pool.take((4,))
        buf[:] = 2.0
        pool.give(buf)
        pool.give(buf)                # tolerated when sanitize is off
        assert not np.isnan(buf).any()


class TestHaloGuard:
    def _guarded(self):
        field = np.ones((6, 6))
        guard = HaloGuard("test")
        for region in ((0, slice(None)), (-1, slice(None)),
                       (slice(1, -1), 0), (slice(1, -1), -1)):
            guard.watch(field, region)
        return field, guard

    def test_read_before_exchange_raises(self):
        _, guard = self._guarded()
        guard.begin_step()
        with pytest.raises(HaloReadError, match="before this step"):
            guard.require_exchanged("stream")

    def test_partial_exchange_raises(self):
        field, guard = self._guarded()
        guard.begin_step()
        field[0, :] = 2.0             # only one strip rewritten
        with pytest.raises(HaloReadError, match="did not rewrite"):
            guard.mark_exchanged()

    def test_full_cycle_passes_and_interior_untouched(self):
        field, guard = self._guarded()
        interior = field[1:-1, 1:-1].copy()
        guard.begin_step()
        assert (field[1:-1, 1:-1] == interior).all()
        field[0, :] = field[-1, :] = 2.0
        field[1:-1, 0] = field[1:-1, -1] = 2.0
        guard.mark_exchanged()
        guard.require_exchanged("stream")


class TestSanitizedJobs:
    def test_env_variable_arms_the_transport(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert env_enabled()
        assert Transport(2).sanitize
        monkeypatch.setenv(ENV_VAR, "0")
        assert not Transport(2).sanitize

    def test_sender_side_write_raises_with_hint(self):
        def bad(comm):
            x = np.full(4, 1.0)
            comm.send(x, dest=(comm.rank + 1) % comm.size, tag=1)
            x[0] = 5.0                # still borrowed by the message
            comm.recv(source=(comm.rank - 1) % comm.size, tag=1)

        with pytest.raises(RuntimeError,
                           match="borrowed by an in-flight message"):
            ParallelJob(2, sanitize=True).run(bad)

    def test_receiver_side_write_raises_with_borrow_site(self):
        def bad(comm):
            x = np.full(4, float(comm.rank))
            comm.send(x, dest=(comm.rank + 1) % comm.size, tag=2)
            got = comm.recv(source=(comm.rank - 1) % comm.size, tag=2)
            got[0] = -1.0             # mutating a borrowed buffer

        with pytest.raises(RuntimeError, match="borrowed at"):
            ParallelJob(2, sanitize=True).run(bad)

    def test_receiver_writable_copy_is_the_fix(self):
        def good(comm):
            x = np.full(4, float(comm.rank))
            comm.send(x, dest=(comm.rank + 1) % comm.size, tag=3)
            got = writable(
                comm.recv(source=(comm.rank - 1) % comm.size, tag=3))
            got[0] = -1.0
            return float(got.sum())

        results = ParallelJob(2, sanitize=True).run(good)
        assert results == [2.0, -1.0]

    def test_pool_use_after_release_in_parallel_step(self):
        def bad(comm):
            pool = comm.transport.pool
            buf = pool.take((8,))
            buf[:] = float(comm.rank)
            comm.send(float(buf.sum()), dest=(comm.rank + 1) % comm.size)
            comm.recv(source=(comm.rank - 1) % comm.size)
            pool.give(buf)
            if comm.rank == 0:
                buf[0] = 9.0          # write through released handle
                pool.take((8,))       # re-issue detects the damage
            comm.barrier()

        with pytest.raises(RuntimeError, match="written after its release"):
            ParallelJob(2, sanitize=True).run(bad)


class TestResultNeutrality:
    @pytest.mark.parametrize("kw", [{}, {"use_caf": True},
                                    {"fused": True}])
    def test_lbmhd_bit_identical_with_sanitizer(self, kw):
        rho, u, B = orszag_tang(16, 16)
        ref = run_parallel(rho.copy(), u.copy(), B.copy(),
                           nprocs=4, nsteps=3, **kw)
        san = run_parallel(rho.copy(), u.copy(), B.copy(),
                           nprocs=4, nsteps=3, sanitize=True, **kw)
        for a, b in zip(ref, san):
            assert (a == b).all()

    def test_gtc_bit_identical_with_sanitizer(self):
        from repro.apps.gtc.grid import AnnulusGrid, TorusGeometry
        from repro.apps.gtc.parallel import assemble_phi
        from repro.apps.gtc.parallel import run_parallel as gtc_run
        from repro.apps.gtc.particles import load_ring_perturbation

        geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), 4)
        parts = load_ring_perturbation(geom, 3.0, mode_m=3,
                                       amplitude=0.3, seed=1)
        ref = gtc_run(geom, parts, nprocs=4, nsteps=2, dt=0.05)
        san = gtc_run(geom, parts, nprocs=4, nsteps=2, dt=0.05,
                      sanitize=True)
        for a, b in zip(assemble_phi(ref), assemble_phi(san)):
            assert (a == b).all()
