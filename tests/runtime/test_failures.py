"""Runtime failure paths: timeouts, poisoning, root-cause reporting."""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    ParallelJob,
    Transport,
    TransportPoisonedError,
)
from repro.runtime.comm import _payload_bytes


class TestTimeoutUnification:
    def test_transport_carries_job_timeout(self):
        job = ParallelJob(2, timeout=0.25)
        assert job.transport.timeout == 0.25
        assert job.timeout == 0.25

    def test_timeout_applies_to_existing_transport(self):
        tr = Transport(2)
        assert tr.timeout == 120.0
        ParallelJob(2, transport=tr, timeout=0.5)
        assert tr.timeout == 0.5

    def test_fetch_uses_configured_timeout(self):
        tr = Transport(1, timeout=0.05)
        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="recv timeout"):
            tr.fetch(0, 0, 0)
        assert time.monotonic() - t0 < 5.0

    def test_recv_timeout_surfaces_as_root_cause(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0)   # never sent

        with pytest.raises(RuntimeError, match="recv timeout") as info:
            ParallelJob(2, timeout=0.1).run(prog)
        assert isinstance(info.value.__cause__, TimeoutError)

    def test_barrier_uses_configured_timeout(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()        # rank 1 never joins

        t0 = time.monotonic()
        with pytest.raises(RuntimeError):
            ParallelJob(2, timeout=0.1).run(prog)
        assert time.monotonic() - t0 < 5.0


class TestPoisoning:
    def test_failed_rank_unsticks_receivers(self):
        """A rank failure must not leave peers waiting out their recv."""
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.recv(source=0)       # would block 120 s without poison

        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="rank 0 failed.*boom"):
            ParallelJob(2).run(prog)
        assert time.monotonic() - t0 < 10.0

    def test_root_cause_preferred_over_poison_and_barrier(self):
        def prog(comm):
            if comm.rank == 1:
                raise KeyError("root")
            if comm.rank == 0:
                comm.recv(source=1)   # poisoned
            comm.barrier()            # broken

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            ParallelJob(3).run(prog)

    def test_join_timeout_poisons_stuck_ranks(self):
        """No leaked daemon threads after the join deadline passes."""
        before = threading.active_count()

        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1)   # rank 1 exits without sending

        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="rank 0 failed"):
            ParallelJob(2, join_timeout=0.3).run(prog)
        assert time.monotonic() - t0 < 10.0
        time.sleep(0.2)
        assert threading.active_count() <= before

    def test_poisoned_fetch_raises_specific_error(self):
        tr = Transport(2)
        tr.poison("test")
        with pytest.raises(TransportPoisonedError):
            tr.fetch(0, 1, 0, timeout=1.0)

    def test_reset_clears_poison_and_mailboxes(self):
        tr = Transport(2)
        tr.post(0, 1, 0, b"x", 1)
        tr.poison("test")
        tr.reset()
        assert not tr.poisoned
        assert tr.undelivered() == 0
        assert tr.message_count() == 1   # records survive a reset

    def test_job_reusable_after_failure(self):
        job = ParallelJob(2)

        def bad(comm):
            if comm.rank == 0:
                raise ValueError("first run dies")
            comm.recv(source=0)

        with pytest.raises(RuntimeError):
            job.run(bad)
        assert job.run(lambda c: c.allreduce(1)) == [2, 2]


class TestPayloadBytes:
    def test_complex_scalars_counted_exactly(self):
        assert _payload_bytes(1 + 2j) == 16
        assert _payload_bytes(np.complex128(1j)) == 16
        assert _payload_bytes(np.complex64(1j)) == 8

    def test_numpy_scalars_use_itemsize(self):
        assert _payload_bytes(np.float32(1.0)) == 4
        assert _payload_bytes(np.float64(1.0)) == 8
        assert _payload_bytes(np.int16(3)) == 2

    def test_zero_d_arrays(self):
        assert _payload_bytes(np.array(1j)) == 16
        assert _payload_bytes(np.array(1.0, dtype=np.float32)) == 4

    def test_python_numbers_nominal(self):
        assert _payload_bytes(3) == 8
        assert _payload_bytes(3.0) == 8

    def test_complex_traffic_recorded_exactly(self):
        """PARATEC-style complex payloads: bytes measured, not guessed."""
        tr = Transport(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.complex128(1j), dest=1)
                comm.send([np.complex128(1j)] * 3, dest=1, tag=1)
            else:
                comm.recv(source=0)
                comm.recv(source=0, tag=1)

        ParallelJob(2, transport=tr).run(prog)
        assert tr.messages[0].nbytes == 16
        assert sum(m.nbytes for m in tr.messages) == 16 + 48


class TestSubCommunicators:
    def test_subcomm_p2p_lands_in_global_transport(self):
        """_SubComm traffic is recorded with *global* ranks."""
        tr = Transport(4)

        def prog(comm):
            sub = comm.split(comm.rank // 2)
            peer = 1 - sub.rank
            return sub.sendrecv(np.float64(comm.rank), dest=peer,
                                source=peer)

        out = ParallelJob(4, transport=tr).run(prog)
        assert [float(x) for x in out] == [1.0, 0.0, 3.0, 2.0]
        assert {(m.src, m.dst) for m in tr.messages} \
            == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_subcomm_split_unsupported(self):
        def prog(comm):
            sub = comm.split(0)
            sub.split(0)

        with pytest.raises(RuntimeError, match="not supported"):
            ParallelJob(2).run(prog)

    def test_subcomm_inherits_timeout(self):
        def prog(comm):
            sub = comm.split(0)
            return sub._shared.timeout

        assert ParallelJob(2, timeout=7.0).run(prog) == [7.0, 7.0]
