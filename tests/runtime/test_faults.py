"""Fault injection: deterministic schedules and transparent recovery."""

import numpy as np
import pytest

from repro.runtime import (
    DeliveryFailedError,
    FaultInjector,
    FaultPlan,
    ParallelJob,
    Transport,
)
from repro.runtime.faults import DELIVER, RankCrashError, _flip_float64_bit

_GRID = [(s, d, t, q, a)
         for s in range(2) for d in range(2) for t in range(2)
         for q in range(30) for a in range(3)]


def _schedule(plan):
    return [plan.action(*key) for key in _GRID]


class TestDeterminism:
    def test_same_seed_identical_schedule(self):
        kw = dict(drop=0.2, duplicate=0.1, corrupt=0.1, delay=0.1)
        assert _schedule(FaultPlan(seed=7, **kw)) \
            == _schedule(FaultPlan(seed=7, **kw))

    def test_different_seed_different_schedule(self):
        kw = dict(drop=0.2, duplicate=0.1, corrupt=0.1, delay=0.1)
        assert _schedule(FaultPlan(seed=7, **kw)) \
            != _schedule(FaultPlan(seed=8, **kw))

    def test_injector_matches_plan(self):
        plan = FaultPlan(seed=3, drop=0.3)
        inj = FaultInjector(plan)
        assert [inj.action(*k) for k in _GRID] == _schedule(plan)

    def test_zero_plan_always_delivers(self):
        assert set(_schedule(FaultPlan(seed=1))) == {DELIVER}

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.2)
        with pytest.raises(ValueError):
            FaultPlan(drop=0.6, corrupt=0.6)

    def test_rates_roughly_honored(self):
        plan = FaultPlan(seed=5, drop=0.25)
        acts = [plan.action(0, 1, 0, q, 0) for q in range(4000)]
        frac = acts.count("drop") / len(acts)
        assert 0.20 < frac < 0.30


class TestRecovery:
    def _run_stream(self, plan, nmsgs=40):
        injector = FaultInjector(plan)
        transport = Transport(2, injector=injector)

        def prog(comm):
            got = []
            for i in range(nmsgs):
                if comm.rank == 0:
                    comm.send(np.full(4, float(i)), dest=1, tag=0)
                else:
                    got.append(float(comm.recv(source=0, tag=0)[0]))
            return got

        out = ParallelJob(2, transport=transport).run(prog)
        return out, transport, injector

    def test_drops_survived_and_retries_recorded(self):
        plan = FaultPlan(seed=1, drop=0.25, backoff_base=0.0002)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert transport.undelivered() == 0
        assert injector.counts().get("drop", 0) > 0
        # Every lost attempt went on the wire and was retransmitted:
        # distinct records, flagged as resends, in the comm profile.
        resends = [m for m in transport.messages if m.resend]
        assert len(resends) > 0
        assert transport.resend_count() == len(resends)
        traffic = transport.per_rank_traffic()
        assert traffic[0].resends == len(resends)

    def test_duplicates_discarded_in_order(self):
        plan = FaultPlan(seed=2, duplicate=0.3)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert injector.counts().get("duplicate", 0) > 0
        assert injector.counts().get("duplicate-discard", 0) > 0
        assert transport.undelivered() == 0

    def test_corruption_detected_and_retransmitted(self):
        plan = FaultPlan(seed=3, corrupt=0.3, backoff_base=0.0002)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        counts = injector.counts()
        assert counts.get("corrupt", 0) > 0
        assert counts["corrupt-discard"] == counts["corrupt"]
        assert transport.resend_count() >= counts["corrupt"]

    def test_mixed_faults_preserve_payload_order(self):
        plan = FaultPlan(seed=4, drop=0.15, duplicate=0.1, corrupt=0.1,
                         delay=0.05, delay_seconds=0.0005,
                         backoff_base=0.0002)
        out, transport, _ = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert transport.undelivered() == 0

    def test_certain_drop_exhausts_retries(self):
        plan = FaultPlan(seed=1, drop=1.0, max_attempts=3,
                         backoff_base=0.0001)
        transport = Transport(2, injector=FaultInjector(plan))
        with pytest.raises(DeliveryFailedError,
                           match="undeliverable") as info:
            transport.post(0, 1, 7, b"x", 1)
        err = info.value
        assert (err.src, err.dst, err.tag, err.attempts) == (0, 1, 7, 3)

    def test_exhausted_retries_abort_job_not_hang(self):
        # A dead link must surface as a clear sender-side error (with
        # the job naming the root cause), never as a receiver hang.
        plan = FaultPlan(seed=2, drop=1.0, max_attempts=2,
                         backoff_base=0.0001)
        transport = Transport(2, injector=FaultInjector(plan))

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(2), dest=1, tag=0)
            else:
                comm.recv(source=0, tag=0)

        with pytest.raises(RuntimeError, match="undeliverable") as info:
            ParallelJob(2, transport=transport).run(prog)
        assert isinstance(info.value.__cause__, DeliveryFailedError)

    def test_faultless_injector_is_transparent(self):
        plan = FaultPlan(seed=9)
        out, transport, injector = self._run_stream(plan, nmsgs=10)
        assert out[1] == [float(i) for i in range(10)]
        assert transport.resend_count() == 0
        assert injector.records == []


class TestCrash:
    def test_crash_fires_once(self):
        inj = FaultInjector(FaultPlan(crash_rank=1, crash_step=3))
        inj.tick(0, 3)          # wrong rank: no-op
        inj.tick(1, 2)          # wrong step: no-op
        with pytest.raises(RankCrashError, match="rank 1 at step 3"):
            inj.tick(1, 3)
        inj.tick(1, 3)          # one-shot: restarted runs proceed
        assert inj.crash_fired
        assert inj.counts() == {"crash": 1}

    def test_crash_aborts_job_with_root_cause(self):
        inj = FaultInjector(FaultPlan(crash_rank=0, crash_step=0))

        def prog(comm):
            inj.tick(comm.rank, 0)
            comm.barrier()

        with pytest.raises(RuntimeError, match="injected crash") as info:
            ParallelJob(2, injector=inj).run(prog)
        assert isinstance(info.value.__cause__, RankCrashError)


class TestSDCSchedule:
    KW = dict(seed=11, sdc_rate=1.0, sdc_arrays=("f",), sdc_rank=1,
              sdc_step=3)

    def test_site_deterministic(self):
        a = FaultPlan(**self.KW).sdc_site(1, 3, "f")
        b = FaultPlan(**self.KW).sdc_site(1, 3, "f")
        assert a is not None and a == b
        c = FaultPlan(**dict(self.KW, seed=12)).sdc_site(1, 3, "f")
        assert a != c

    def test_site_filters(self):
        plan = FaultPlan(**self.KW)
        assert plan.sdc_site(0, 3, "f") is None     # wrong rank
        assert plan.sdc_site(1, 2, "f") is None     # wrong step
        assert plan.sdc_site(1, 3, "g") is None     # array not targeted
        assert FaultPlan(seed=11).sdc_site(1, 3, "f") is None  # rate 0

    def test_hash_chosen_bit_lands_in_exponent(self):
        plan = FaultPlan(seed=5, sdc_rate=1.0)
        bits = {plan.sdc_site(r, s, "x")[1]
                for r in range(4) for s in range(8)}
        assert bits <= set(range(53, 63))
        assert len(bits) > 1            # the bit is actually drawn

    def test_pinned_bit(self):
        plan = FaultPlan(**dict(self.KW, sdc_bit=7))
        assert plan.sdc_site(1, 3, "f")[1] == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(sdc_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(sdc_bit=64)
        with pytest.raises(ValueError):
            FaultPlan(ckpt_corrupt=-0.1)


class TestBitFlip:
    def test_flip_twice_restores_bitwise(self):
        arr = np.array([1.5, -2.25])
        flat, old, new = _flip_float64_bit(arr, 1, 62)
        assert (flat, old) == (1, -2.25)
        assert arr[1] == new and new != old
        assert _flip_float64_bit(arr, 1, 62)[2] == old
        assert arr[1] == -2.25

    def test_index_wraps_modulo_size(self):
        arr = np.ones(3)
        flat, _, _ = _flip_float64_bit(arr, 7, 55)
        assert flat == 7 % 3

    def test_complex_corrupted_through_real_part(self):
        arr = np.full(2, 1.0 + 2.0j)
        flat, old, new = _flip_float64_bit(arr, 0, 62)
        assert old == 1.0
        assert arr[0].real == new
        assert arr[0].imag == 2.0       # imaginary part untouched

    def test_non_float64_and_empty_are_skipped(self):
        assert _flip_float64_bit(np.arange(4, dtype=np.int64), 0, 5) \
            is None
        assert _flip_float64_bit(np.empty(0), 0, 5) is None
        assert _flip_float64_bit(np.ones(2, dtype=np.float32), 0, 5) \
            is None


class TestSDCInjector:
    def _injector(self, **extra):
        return FaultInjector(FaultPlan(
            seed=11, sdc_rate=1.0, sdc_arrays=("f",), sdc_rank=1,
            sdc_step=3, sdc_bit=62, **extra))

    def test_transient_fires_once_per_site(self):
        inj = self._injector()
        arr = np.ones(8)
        (rec,) = inj.sdc(1, 3, {"f": arr, "tags": np.arange(8)})
        assert (rec.rank, rec.step, rec.array, rec.bit) == (1, 3, "f", 62)
        assert arr[rec.index] == rec.new != rec.old
        # Supervised replay of the same step: the upset was transient.
        assert inj.sdc(1, 3, {"f": arr}) == []
        assert arr[rec.index] == rec.new
        assert inj.counts()["sdc"] == 1
        assert inj.sdc_records == [rec]

    def test_persistent_refires_on_replay(self):
        inj = self._injector(sdc_once=False)
        arr = np.ones(8)
        (first,) = inj.sdc(1, 3, {"f": arr})
        (again,) = inj.sdc(1, 3, {"f": arr})
        assert first.index == again.index
        assert arr[first.index] == 1.0  # same bit flipped back and forth
        assert inj.counts()["sdc"] == 2

    def test_untargeted_call_is_silent(self):
        inj = self._injector()
        arr = np.ones(8)
        assert inj.sdc(0, 3, {"f": arr}) == []
        assert inj.sdc(1, 2, {"f": arr}) == []
        assert np.all(arr == 1.0)
        assert inj.records == []

    def test_ckpt_corrupt_offset_one_shot_in_payload_range(self):
        inj = FaultInjector(FaultPlan(
            seed=4, ckpt_corrupt=1.0, ckpt_corrupt_rank=0,
            ckpt_corrupt_step=2))
        off = inj.ckpt_corrupt_offset(2, 0, 1000)
        assert off is not None and 128 <= off < 1000 - 128
        assert inj.ckpt_corrupt_offset(2, 0, 1000) is None  # one-shot
        assert inj.counts() == {"ckpt-corrupt": 1}

    def test_ckpt_corrupt_filters(self):
        plan = FaultPlan(seed=4, ckpt_corrupt=1.0, ckpt_corrupt_rank=0,
                         ckpt_corrupt_step=2)
        assert plan.ckpt_corrupt_site(2, 0) is not None
        assert plan.ckpt_corrupt_site(1, 0) is None     # wrong step
        assert plan.ckpt_corrupt_site(2, 1) is None     # wrong rank
        assert FaultPlan(seed=4).ckpt_corrupt_site(2, 0) is None

    def test_tiny_files_never_damaged(self):
        inj = FaultInjector(FaultPlan(seed=4, ckpt_corrupt=1.0))
        assert inj.ckpt_corrupt_offset(1, 0, 256) is None
        assert inj.records == []        # size guard consumes nothing
        assert inj.ckpt_corrupt_offset(1, 0, 1000) is not None
