"""Fault injection: deterministic schedules and transparent recovery."""

import numpy as np
import pytest

from repro.runtime import FaultInjector, FaultPlan, ParallelJob, Transport
from repro.runtime.faults import DELIVER, RankCrashError

_GRID = [(s, d, t, q, a)
         for s in range(2) for d in range(2) for t in range(2)
         for q in range(30) for a in range(3)]


def _schedule(plan):
    return [plan.action(*key) for key in _GRID]


class TestDeterminism:
    def test_same_seed_identical_schedule(self):
        kw = dict(drop=0.2, duplicate=0.1, corrupt=0.1, delay=0.1)
        assert _schedule(FaultPlan(seed=7, **kw)) \
            == _schedule(FaultPlan(seed=7, **kw))

    def test_different_seed_different_schedule(self):
        kw = dict(drop=0.2, duplicate=0.1, corrupt=0.1, delay=0.1)
        assert _schedule(FaultPlan(seed=7, **kw)) \
            != _schedule(FaultPlan(seed=8, **kw))

    def test_injector_matches_plan(self):
        plan = FaultPlan(seed=3, drop=0.3)
        inj = FaultInjector(plan)
        assert [inj.action(*k) for k in _GRID] == _schedule(plan)

    def test_zero_plan_always_delivers(self):
        assert set(_schedule(FaultPlan(seed=1))) == {DELIVER}

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.2)
        with pytest.raises(ValueError):
            FaultPlan(drop=0.6, corrupt=0.6)

    def test_rates_roughly_honored(self):
        plan = FaultPlan(seed=5, drop=0.25)
        acts = [plan.action(0, 1, 0, q, 0) for q in range(4000)]
        frac = acts.count("drop") / len(acts)
        assert 0.20 < frac < 0.30


class TestRecovery:
    def _run_stream(self, plan, nmsgs=40):
        injector = FaultInjector(plan)
        transport = Transport(2, injector=injector)

        def prog(comm):
            got = []
            for i in range(nmsgs):
                if comm.rank == 0:
                    comm.send(np.full(4, float(i)), dest=1, tag=0)
                else:
                    got.append(float(comm.recv(source=0, tag=0)[0]))
            return got

        out = ParallelJob(2, transport=transport).run(prog)
        return out, transport, injector

    def test_drops_survived_and_retries_recorded(self):
        plan = FaultPlan(seed=1, drop=0.25, backoff_base=0.0002)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert transport.undelivered() == 0
        assert injector.counts().get("drop", 0) > 0
        # Every lost attempt went on the wire and was retransmitted:
        # distinct records, flagged as resends, in the comm profile.
        resends = [m for m in transport.messages if m.resend]
        assert len(resends) > 0
        assert transport.resend_count() == len(resends)
        traffic = transport.per_rank_traffic()
        assert traffic[0].resends == len(resends)

    def test_duplicates_discarded_in_order(self):
        plan = FaultPlan(seed=2, duplicate=0.3)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert injector.counts().get("duplicate", 0) > 0
        assert injector.counts().get("duplicate-discard", 0) > 0
        assert transport.undelivered() == 0

    def test_corruption_detected_and_retransmitted(self):
        plan = FaultPlan(seed=3, corrupt=0.3, backoff_base=0.0002)
        out, transport, injector = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        counts = injector.counts()
        assert counts.get("corrupt", 0) > 0
        assert counts["corrupt-discard"] == counts["corrupt"]
        assert transport.resend_count() >= counts["corrupt"]

    def test_mixed_faults_preserve_payload_order(self):
        plan = FaultPlan(seed=4, drop=0.15, duplicate=0.1, corrupt=0.1,
                         delay=0.05, delay_seconds=0.0005,
                         backoff_base=0.0002)
        out, transport, _ = self._run_stream(plan)
        assert out[1] == [float(i) for i in range(40)]
        assert transport.undelivered() == 0

    def test_certain_drop_exhausts_retries(self):
        plan = FaultPlan(seed=1, drop=1.0, max_attempts=3,
                         backoff_base=0.0001)
        transport = Transport(2, injector=FaultInjector(plan))
        with pytest.raises(RuntimeError, match="undeliverable"):
            transport.post(0, 1, 0, b"x", 1)

    def test_faultless_injector_is_transparent(self):
        plan = FaultPlan(seed=9)
        out, transport, injector = self._run_stream(plan, nmsgs=10)
        assert out[1] == [float(i) for i in range(10)]
        assert transport.resend_count() == 0
        assert injector.records == []


class TestCrash:
    def test_crash_fires_once(self):
        inj = FaultInjector(FaultPlan(crash_rank=1, crash_step=3))
        inj.tick(0, 3)          # wrong rank: no-op
        inj.tick(1, 2)          # wrong step: no-op
        with pytest.raises(RankCrashError, match="rank 1 at step 3"):
            inj.tick(1, 3)
        inj.tick(1, 3)          # one-shot: restarted runs proceed
        assert inj.crash_fired
        assert inj.counts() == {"crash": 1}

    def test_crash_aborts_job_with_root_cause(self):
        inj = FaultInjector(FaultPlan(crash_rank=0, crash_step=0))

        def prog(comm):
            inj.tick(comm.rank, 0)
            comm.barrier()

        with pytest.raises(RuntimeError, match="injected crash") as info:
            ParallelJob(2, injector=inj).run(prog)
        assert isinstance(info.value.__cause__, RankCrashError)
