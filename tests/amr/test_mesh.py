"""AMR mesh machinery: boxes, clustering, prolongation/restriction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr import (
    AMRHierarchy,
    Box,
    Patch,
    REFINEMENT_RATIO,
    cluster_flags,
    prolong,
    restrict,
)


class TestBox:
    def test_shape_and_cells(self):
        b = Box((2, 3), (5, 9))
        assert b.shape == (3, 6)
        assert b.ncells == 18

    def test_refined(self):
        b = Box((1, 2), (3, 4)).refined()
        assert b.lo == (2, 4) and b.hi == (6, 8)

    def test_contains_and_overlap(self):
        b = Box((0, 0), (4, 4))
        assert b.contains(3, 3) and not b.contains(4, 0)
        assert b.overlaps(Box((3, 3), (6, 6)))
        assert not b.overlaps(Box((4, 0), (6, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Box((2, 2), (2, 4))


class TestClustering:
    def test_single_blob(self):
        flags = np.zeros((32, 32), dtype=bool)
        flags[10:16, 12:20] = True
        boxes = cluster_flags(flags)
        assert all(_covered(flags, boxes))
        assert sum(b.ncells for b in boxes) <= 2 * flags.sum()

    def test_two_separated_blobs_split(self):
        flags = np.zeros((40, 40), dtype=bool)
        flags[2:6, 2:6] = True
        flags[30:36, 30:36] = True
        boxes = cluster_flags(flags)
        assert len(boxes) >= 2
        assert all(_covered(flags, boxes))

    def test_no_flags(self):
        assert cluster_flags(np.zeros((8, 8), dtype=bool)) == []

    def test_full_grid(self):
        flags = np.ones((16, 16), dtype=bool)
        boxes = cluster_flags(flags)
        assert sum(b.ncells for b in boxes) == 256

    @settings(max_examples=25)
    @given(seed=st.integers(0, 500))
    def test_coverage_property(self, seed):
        """Every flagged cell is inside some box (never lost)."""
        rng = np.random.default_rng(seed)
        flags = rng.random((24, 24)) > 0.85
        boxes = cluster_flags(flags)
        assert all(_covered(flags, boxes))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            cluster_flags(np.zeros((4, 4, 4), dtype=bool))
        with pytest.raises(ValueError):
            cluster_flags(np.zeros((4, 4), dtype=bool), efficiency=0.0)


def _covered(flags: np.ndarray, boxes) -> list[bool]:
    out = []
    for i, j in np.argwhere(flags):
        out.append(any(b.contains(int(i), int(j)) for b in boxes))
    return out or [True]


class TestTransferOperators:
    def test_restrict_prolong_identity(self):
        rng = np.random.default_rng(0)
        coarse = rng.random((6, 8))
        np.testing.assert_allclose(restrict(prolong(coarse)), coarse)

    def test_prolong_conserves_mean(self):
        rng = np.random.default_rng(1)
        c = rng.random((5, 5))
        assert prolong(c).mean() == pytest.approx(c.mean())

    def test_restrict_conserves_mean(self):
        rng = np.random.default_rng(2)
        f = rng.random((8, 10))
        assert restrict(f).mean() == pytest.approx(f.mean())

    def test_restrict_shape_guard(self):
        with pytest.raises(ValueError):
            restrict(np.zeros((5, 4)))


class TestHierarchy:
    def _pulse(self, n=32):
        x = np.linspace(0, 1, n, endpoint=False)
        xx, yy = np.meshgrid(x, x, indexing="ij")
        return np.exp(-((xx - 0.4)**2 + (yy - 0.5)**2) / 0.01)

    def test_refines_around_feature(self):
        h = AMRHierarchy(self._pulse(), 1 / 32, flag_threshold=0.1)
        assert h.n_patches >= 1
        assert 0 < h.refined_fraction() < 0.7
        # The pulse centre must be covered.
        fine = Box((0, 0), (1, 1))
        centre = (int(0.4 * 64), int(0.5 * 64))
        covered = any(p.box.contains(*centre) for p in h.levels[0])
        assert covered
        del fine

    def test_flat_field_needs_no_patches(self):
        h = AMRHierarchy(np.ones((16, 16)), 1 / 16)
        assert h.n_patches == 0
        assert h.refined_fraction() == 0.0

    def test_sync_down_conserves_patch_average(self):
        h = AMRHierarchy(self._pulse(), 1 / 32, flag_threshold=0.1)
        p = h.levels[0][0]
        p.data[...] = 7.0
        h.sync_down()
        lo = (p.box.lo[0] // REFINEMENT_RATIO,
              p.box.lo[1] // REFINEMENT_RATIO)
        hi = (p.box.hi[0] // REFINEMENT_RATIO,
              p.box.hi[1] // REFINEMENT_RATIO)
        np.testing.assert_allclose(h.base[lo[0]:hi[0], lo[1]:hi[1]], 7.0)

    def test_patch_validation(self):
        with pytest.raises(ValueError):
            Patch(Box((0, 0), (2, 2)), 1, np.zeros((3, 3)))

    def test_inner_trips_reported(self):
        h = AMRHierarchy(self._pulse(), 1 / 32, flag_threshold=0.1)
        trips = h.inner_trip_counts()
        assert len(trips) == h.n_patches
        assert all(t >= 2 for t in trips)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            AMRHierarchy(np.zeros(4), 0.1)
        with pytest.raises(ValueError):
            AMRHierarchy(np.zeros((4, 4)), 0.1, max_levels=0)
