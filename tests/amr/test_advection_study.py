"""AMR model problem + the §7 vector-performance study."""

import numpy as np
import pytest

from repro.amr import (
    AMRAdvectionSolver,
    amr_profile,
    amr_vector_study,
    gaussian_pulse,
    render_study,
    unigrid_profile,
    unigrid_reference,
)
from repro.machine import ALTIX, ES, POWER3, X1


class TestAMRAdvection:
    @pytest.fixture(scope="class")
    def run(self):
        u0, dx = gaussian_pulse(48)
        solver = AMRAdvectionSolver(u0.copy(), dx, flag_threshold=0.08)
        m0 = solver.total_mass()
        solver.step(30)
        ref = unigrid_reference(u0, dx, 30, dt=solver.dt)
        return solver, m0, ref

    def test_matches_fine_unigrid(self, run):
        solver, _, ref = run
        err = np.abs(solver.solution() - ref).max()
        assert err < 0.15 * ref.max()

    def test_mass_approximately_conserved(self, run):
        """First-order coarse-fine coupling without refluxing: small,
        bounded drift (documented limitation)."""
        solver, m0, _ = run
        assert solver.total_mass() == pytest.approx(m0, rel=0.05)

    def test_patches_follow_the_pulse(self, run):
        solver, _, ref = run
        peak = np.unravel_index(np.argmax(solver.solution()),
                                solver.solution().shape)
        fine_peak = (peak[0] * 2, peak[1] * 2)
        assert any(p.box.contains(*fine_peak)
                   for p in solver.hierarchy.levels[0])

    def test_solution_bounded(self, run):
        solver, _, _ = run
        assert solver.solution().min() > -1e-6
        assert solver.solution().max() <= 1.0 + 1e-6

    def test_refinement_saves_work(self, run):
        """AMR's reason to exist: far fewer fine cells than unigrid."""
        solver, _, _ = run
        amr_cells = sum(p.flops for p in
                        amr_profile(solver.hierarchy).phases)
        uni_cells = unigrid_profile(solver.hierarchy).phases[0].flops
        assert amr_cells < 0.6 * uni_cells


class TestVectorStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        u0, dx = gaussian_pulse(64)
        solver = AMRAdvectionSolver(u0, dx, flag_threshold=0.08)
        solver.step(5)
        return amr_vector_study(solver.hierarchy,
                                [POWER3, ALTIX, ES, X1])

    def test_vector_machines_lose_efficiency(self, rows):
        """The §7 hypothesis, quantified: short patch loops cost the
        cacheless vector pipes pipeline amortization."""
        by = {r.machine: r for r in rows}
        assert by["ES"].efficiency_retained < 0.95
        assert by["ES"].amr_avl < by["ES"].unigrid_avl

    def test_superscalar_machines_unaffected(self, rows):
        by = {r.machine: r for r in rows}
        for m in ("Power3", "Altix"):
            assert by[m].efficiency_retained > 0.97

    def test_es_hit_hardest(self, rows):
        """VL=256 pipes need the longest loops: the ES suffers most."""
        by = {r.machine: r for r in rows}
        assert by["ES"].efficiency_retained <= \
            by["X1"].efficiency_retained + 0.02

    def test_render(self, rows):
        u0, dx = gaussian_pulse(64)
        solver = AMRAdvectionSolver(u0, dx, flag_threshold=0.08)
        solver.step(5)
        text = render_study(rows, solver.hierarchy)
        assert "ES" in text and "retained" in text
