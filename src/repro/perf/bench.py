"""Perf-regression benchmark harness (the ISSUE's acceptance instrument).

``python -m repro bench --json BENCH_PERF.json`` times each optimized hot
kernel against its retained naive reference on the same machine and
records the **speedup ratio** — a machine-relative quantity that a CI
check can compare against the committed baseline with a tolerance band,
without caring how fast the runner host is in absolute terms:

* ``gtc_deposition`` — :func:`~repro.apps.gtc.deposition.deposit_fast`
  vs :func:`~repro.apps.gtc.deposition.deposit_classic` at >= 100k
  particles (acceptance floor: >= 3x);
* ``lbmhd_parallel`` — fused zero-copy 128^2 x 4-rank step vs the naive
  kernels on the legacy deep-copy transport (floor: >= 1.5x), also
  asserting the *logical* message count/volume is unchanged;
* ``lbmhd_serial`` — fused vs naive single-rank stepping;
* ``cactus_stencils`` — fused grad/hessian/Kreiss-Oliger vs the
  allocating reference forms in
  :mod:`repro.apps.cactus.stencils_ref`;
* ``paratec_transpose`` — the parallel FFT roundtrip on the zero-copy
  transport vs the legacy deep-copy transport;
* ``backend_scaling`` (enabled by ``--backend process``) — the fused
  4-rank LBMHD step on OS-process ranks vs the GIL-sharing thread
  backend.  The gated quantity is the **kernel-path** time (wall
  seconds inside the rank program, interpreter spawn/import excluded);
  end-to-end job times are recorded alongside.  Unlike the other
  entries this speedup depends on physical core count, so the check
  gates it on ``cpu_count >= min_cores`` and on matching scale, while
  bit-identical results and unchanged logical traffic are enforced
  everywhere.

Each entry also records tracemalloc peak allocation for one call of
either side — the "allocation count" evidence that the fast paths hold
steady-state temporaries instead of reallocating.

Timings are min-of-N over ``time.perf_counter`` with a warmup call, the
standard way to suppress scheduler noise for sub-second kernels.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from typing import Any, Callable

import numpy as np

SCHEMA_VERSION = 1

#: Relative tolerance band for baseline comparison (satellite f).
DEFAULT_TOLERANCE = 0.30


def _best_time(fn: Callable[[], Any], repeats: int = 5,
               warmup: int = 1) -> float:
    """Minimum wall time of ``fn()`` over ``repeats`` runs (seconds)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_alloc(fn: Callable[[], Any]) -> int:
    """tracemalloc peak bytes for one call of ``fn`` (after a warmup)."""
    fn()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


# -- individual benchmarks ---------------------------------------------------

def bench_gtc_deposition(quick: bool = False) -> dict:
    from ..apps.gtc.deposition import deposit_classic, deposit_fast
    from ..apps.gtc.grid import AnnulusGrid, TorusGeometry
    from ..apps.gtc.particles import load_uniform

    grid = AnnulusGrid(nr=64, ntheta=64, r0=0.1, r1=1.0)
    geo = TorusGeometry(plane=grid, nplanes=1)
    ppc = 8 if quick else 32
    particles = load_uniform(geo, ppc, seed=1)
    reps = 2 if quick else 5
    t_naive = _best_time(lambda: deposit_classic(grid, particles), reps)
    t_fast = _best_time(lambda: deposit_fast(grid, particles), reps)
    ref = deposit_classic(grid, particles)
    fast = deposit_fast(grid, particles)
    max_rel = float(np.max(np.abs(fast - ref)
                           / np.maximum(np.abs(ref), 1e-300)))
    return {
        "n_particles": len(particles),
        "naive_seconds": t_naive,
        "fast_seconds": t_fast,
        "speedup": t_naive / t_fast,
        "max_rel_error": max_rel,
        "naive_peak_alloc_bytes": _peak_alloc(
            lambda: deposit_classic(grid, particles)),
        "fast_peak_alloc_bytes": _peak_alloc(
            lambda: deposit_fast(grid, particles)),
    }


def bench_lbmhd_serial(quick: bool = False) -> dict:
    from ..apps.lbmhd.initial import orszag_tang
    from ..apps.lbmhd.lattice import OCT9
    from ..apps.lbmhd.solver import LBMHDSolver

    n = 64 if quick else 128
    steps = 2 if quick else 5
    naive = LBMHDSolver(*orszag_tang(n, n), lattice=OCT9,
                        tau=0.8, tau_m=0.9)
    fused = LBMHDSolver(*orszag_tang(n, n), lattice=OCT9,
                        tau=0.8, tau_m=0.9, fused=True)
    reps = 2 if quick else 5
    t_naive = _best_time(lambda: naive.step(steps), reps)
    t_fused = _best_time(lambda: fused.step(steps), reps)
    return {
        "grid": [n, n],
        "steps": steps,
        "naive_seconds": t_naive,
        "fused_seconds": t_fused,
        "speedup": t_naive / t_fused,
        "naive_peak_alloc_bytes": _peak_alloc(lambda: naive.step(1)),
        "fused_peak_alloc_bytes": _peak_alloc(lambda: fused.step(1)),
    }


def bench_lbmhd_parallel(quick: bool = False) -> dict:
    from ..apps.lbmhd.initial import orszag_tang
    from ..apps.lbmhd.lattice import OCT9
    from ..apps.lbmhd.parallel import run_parallel
    from ..runtime.transport import Transport

    n = 64 if quick else 128
    nsteps = 4 if quick else 20
    nprocs = 4
    rho, u, B = orszag_tang(n, n)

    def run(fused: bool, zero_copy: bool) -> Transport:
        tp = Transport(nprocs, zero_copy=zero_copy)
        run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                     lattice=OCT9, tau=0.8, tau_m=0.9, fused=fused,
                     transport=tp)
        return tp

    reps = 2 if quick else 5
    t_naive = _best_time(lambda: run(False, False), reps, warmup=1)
    t_fused = _best_time(lambda: run(True, True), reps, warmup=1)
    tp_naive = run(False, False)
    tp_fused = run(True, True)
    return {
        "grid": [n, n],
        "nprocs": nprocs,
        "steps": nsteps,
        "naive_seconds": t_naive,
        "fused_seconds": t_fused,
        "speedup": t_naive / t_fused,
        # Logical traffic must be identical: the zero-copy protocol
        # changes who owns the bytes, never how many bytes the paper's
        # tables account for.
        "naive_logical_messages": tp_naive.message_count(),
        "fused_logical_messages": tp_fused.message_count(),
        "naive_logical_bytes": tp_naive.total_bytes(),
        "fused_logical_bytes": tp_fused.total_bytes(),
        "fused_physical_copy_bytes": tp_fused.buffers.copy_bytes,
        "fused_pool_stats": tp_fused.pool.stats(),
    }


def bench_cactus_stencils(quick: bool = False) -> dict:
    from ..apps.cactus import stencils as st
    from ..apps.cactus import stencils_ref as ref

    n = 28 if quick else 44
    rng = np.random.default_rng(5)
    field = rng.normal(size=(n, n, n))
    spacing = (0.1, 0.1, 0.1)
    inner = n - 2
    core = n - 2 * st.GHOST
    g_out = np.empty((3, inner, inner, inner))
    h_out = np.empty((3, 3, inner, inner, inner))
    k_out = np.empty((core, core, core))

    def fused() -> None:
        st.grad(field, spacing, out=g_out)
        st.hessian(field, spacing, out=h_out)
        st.kreiss_oliger(field, spacing, 0.1, out=k_out)

    def naive() -> None:
        ref.grad_ref(field, spacing)
        ref.hessian_ref(field, spacing)
        ref.kreiss_oliger_ref(field, spacing, 0.1)

    reps = 3 if quick else 7
    t_naive = _best_time(naive, reps)
    t_fused = _best_time(fused, reps)
    return {
        "grid": [n, n, n],
        "naive_seconds": t_naive,
        "fused_seconds": t_fused,
        "speedup": t_naive / t_fused,
        "naive_peak_alloc_bytes": _peak_alloc(naive),
        "fused_peak_alloc_bytes": _peak_alloc(fused),
    }


def _copy_arrays(obj: Any) -> Any:
    """Recursively copy every ndarray in a nested chunk structure."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy_arrays(x) for x in obj)
    if isinstance(obj, list):
        return [_copy_arrays(x) for x in obj]
    return obj


class _PackCopyComm:
    """Comm proxy that restores the seed's explicit packing copies.

    The optimized transpose hands strided *views* to ``alltoall`` and
    lets the ownership protocol perform the single packing copy; the
    pre-optimization code called ``.copy()`` on every chunk first and
    then paid the legacy transport's deep copy on send.  Re-adding the
    chunk copy on a legacy transport reproduces that double-copy
    reference for the benchmark.
    """

    def __init__(self, comm):
        self._comm = comm

    def __getattr__(self, name):
        return getattr(self._comm, name)

    def alltoall(self, chunks):
        return self._comm.alltoall(_copy_arrays(chunks))


def bench_paratec_transpose(quick: bool = False) -> dict:
    from ..apps.paratec.basis import PlaneWaveBasis
    from ..apps.paratec.fft3d import ParallelFFT3D, SphereLayout
    from ..apps.paratec.lattice_cell import silicon_primitive
    from ..runtime.comm import ParallelJob
    from ..runtime.transport import Transport

    ecut = 3.0 if quick else 10.0
    nprocs = 4
    basis = PlaneWaveBasis(silicon_primitive(), ecut=ecut)
    layout = SphereLayout(basis, nprocs)
    rng = np.random.default_rng(9)
    coeff = (rng.normal(size=basis.size)
             + 1j * rng.normal(size=basis.size))

    def roundtrip(zero_copy: bool) -> None:
        tp = Transport(nprocs, zero_copy=zero_copy)

        def prog(comm):
            if not zero_copy:
                comm = _PackCopyComm(comm)
            fft = ParallelFFT3D(basis, layout, comm)
            local = coeff[fft.my_sphere]
            slab = fft.forward(local)
            fft.inverse(slab)

        ParallelJob(nprocs, transport=tp).run(prog)

    reps = 2 if quick else 5
    t_naive = _best_time(lambda: roundtrip(False), reps, warmup=1)
    t_fast = _best_time(lambda: roundtrip(True), reps, warmup=1)
    return {
        "basis_size": basis.size,
        "nprocs": nprocs,
        "naive_seconds": t_naive,
        "fast_seconds": t_fast,
        "speedup": t_naive / t_fast,
    }


def bench_backend_scaling(quick: bool = False) -> dict:
    """Fused 4-rank LBMHD: OS-process ranks vs GIL-sharing threads.

    ``naive_seconds``/``fused_seconds`` are kernel-path times — the
    slowest rank's wall seconds *inside* the rank program, so process
    spawn and interpreter import are excluded (they are a fixed cost,
    amortized over any real campaign; the raw end-to-end times are
    recorded as ``job_*_seconds``).  Both backends must produce
    bit-identical fields and identical logical traffic.
    """
    from ..apps.lbmhd.initial import orszag_tang
    from ..apps.lbmhd.lattice import OCT9
    from ..apps.lbmhd.parallel import run_parallel
    from ..runtime.transport import Transport

    n = 64 if quick else 256
    nsteps = 6 if quick else 24
    nprocs = 4
    reps = 1 if quick else 2
    warmup = 0 if quick else 1
    rho, u, B = orszag_tang(n, n)

    def run(backend: str):
        tp = Transport(nprocs, zero_copy=True)
        t0 = time.perf_counter()
        out = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                           lattice=OCT9, tau=0.8, tau_m=0.9, fused=True,
                           transport=tp, backend=backend)
        job_s = time.perf_counter() - t0
        return out, tp, job_s, max(tp.body_seconds.values())

    kernel: dict[str, float] = {}
    job: dict[str, float] = {}
    keep: dict[str, tuple] = {}
    for backend in ("thread", "process"):
        for _ in range(warmup):
            run(backend)
        kernel[backend] = job[backend] = float("inf")
        for _ in range(reps):
            out, tp, job_s, kern_s = run(backend)
            kernel[backend] = min(kernel[backend], kern_s)
            job[backend] = min(job[backend], job_s)
        keep[backend] = (out, tp)
    (rho_t, u_t, B_t), tp_t = keep["thread"]
    (rho_p, u_p, B_p), tp_p = keep["process"]
    identical = (np.array_equal(rho_t, rho_p)
                 and np.array_equal(u_t, u_p)
                 and np.array_equal(B_t, B_p))
    return {
        "grid": [n, n],
        "nprocs": nprocs,
        "steps": nsteps,
        # The thread/process ratio is physical-parallelism dependent —
        # meaningless on fewer cores than ranks, so the regression
        # check gates the speedup floor on the *current* host's count.
        "cpu_count": os.cpu_count() or 1,
        "min_cores": 4,
        "speedup_floor": 2.0,
        "requires_backend": "process",
        "naive_seconds": kernel["thread"],
        "fused_seconds": kernel["process"],
        "speedup": kernel["thread"] / kernel["process"],
        "job_naive_seconds": job["thread"],
        "job_fused_seconds": job["process"],
        "bit_identical": identical,
        "naive_logical_messages": tp_t.message_count(),
        "fused_logical_messages": tp_p.message_count(),
        "naive_logical_bytes": tp_t.total_bytes(),
        "fused_logical_bytes": tp_p.total_bytes(),
    }


_BENCHMARKS: dict[str, Callable[[bool], dict]] = {
    "gtc_deposition": bench_gtc_deposition,
    "lbmhd_serial": bench_lbmhd_serial,
    "lbmhd_parallel": bench_lbmhd_parallel,
    "cactus_stencils": bench_cactus_stencils,
    "paratec_transpose": bench_paratec_transpose,
    "backend_scaling": bench_backend_scaling,
}

#: benchmarks that only run when the process backend is requested
_BACKEND_ONLY = {"backend_scaling": "process"}


def run_bench(quick: bool = False,
              only: list[str] | None = None,
              backend: str = "thread") -> dict:
    """Run the benchmark suite; returns the BENCH_PERF document.

    ``backend="process"`` adds the thread-vs-process ``backend_scaling``
    comparison to the default set (the remaining entries time kernels
    against their naive references exactly as before — their ratios do
    not depend on the execution backend).
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"unknown backend {backend!r} (choose thread or process)")
    names = only if only else [
        n for n in _BENCHMARKS
        if _BACKEND_ONLY.get(n, backend) == backend]
    unknown = [n for n in names if n not in _BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks: {unknown}")
    benchmarks = {}
    for name in names:
        benchmarks[name] = _BENCHMARKS[name](quick)
    return {
        "version": SCHEMA_VERSION,
        "quick": quick,
        "backend": backend,
        "cpu_count": os.cpu_count() or 1,
        "benchmarks": benchmarks,
    }


def check_regression(current: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  Speedup
    *ratios* are compared — both sides of each ratio ran on the same
    machine, so the check is host-speed independent; a benchmark fails
    when its speedup falls more than ``tolerance`` below the baseline's.
    Logical traffic (message counts/bytes) must match *exactly*: it is a
    property of the algorithm, not the machine.
    """
    failures: list[str] = []
    base_marks = baseline.get("benchmarks", {})
    cur_marks = current.get("benchmarks", {})
    cur_backend = current.get("backend", "thread")
    for name, base in base_marks.items():
        cur = cur_marks.get(name)
        if cur is None:
            if base.get("requires_backend", "thread") != cur_backend:
                continue    # suite member not enabled for this backend
            failures.append(f"{name}: missing from current run")
            continue
        same_scale = all(cur.get(k) == base.get(k)
                         for k in ("grid", "steps", "nprocs"))
        floor = base["speedup"] * (1.0 - tolerance)
        check_speedup = True
        min_cores = int(base.get("min_cores", 0))
        if min_cores:
            # Physical-parallelism entry: the floor is an absolute
            # acceptance number, only meaningful with enough cores and
            # at the baseline's scale.  Parity and traffic equality
            # below are enforced unconditionally.
            floor = float(base.get("speedup_floor", floor))
            if int(cur.get("cpu_count", 0)) < min_cores or not same_scale:
                check_speedup = False
        if check_speedup and cur["speedup"] < floor:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                f"- {tolerance:.0%} band)")
        if same_scale:
            for key in ("naive_logical_messages", "naive_logical_bytes",
                        "fused_logical_messages", "fused_logical_bytes"):
                if key in base and cur.get(key) != base[key]:
                    failures.append(
                        f"{name}: {key} changed "
                        f"{base[key]} -> {cur.get(key)}")
    for name, cur in cur_marks.items():
        if cur.get("bit_identical") is False:
            failures.append(
                f"{name}: process backend result diverged from the "
                f"thread backend (bit parity broken)")
        # Logical traffic must also agree *within* a run: the fast path
        # may not change what the paper's tables count.
        if ("naive_logical_bytes" in cur
                and cur["naive_logical_bytes"]
                != cur.get("fused_logical_bytes")):
            failures.append(
                f"{name}: fused path changed logical bytes "
                f"({cur['naive_logical_bytes']} -> "
                f"{cur.get('fused_logical_bytes')})")
        if ("naive_logical_messages" in cur
                and cur["naive_logical_messages"]
                != cur.get("fused_logical_messages")):
            failures.append(
                f"{name}: fused path changed logical message count "
                f"({cur['naive_logical_messages']} -> "
                f"{cur.get('fused_logical_messages')})")
    return failures


def format_report(doc: dict) -> str:
    """Human-readable table of a benchmark document."""
    lines = [f"{'benchmark':<20} {'naive':>10} {'fast':>10} {'speedup':>8}"]
    for name, b in doc.get("benchmarks", {}).items():
        naive = b.get("naive_seconds")
        fast = b.get("fast_seconds", b.get("fused_seconds"))
        lines.append(f"{name:<20} {naive * 1e3:>8.1f}ms "
                     f"{fast * 1e3:>8.1f}ms {b['speedup']:>7.2f}x")
    return "\n".join(lines)


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
