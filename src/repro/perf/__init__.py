"""Performance modeling: work profiles, porting specs, prediction, reports."""

from .metrics import parallel_efficiency, pct_of_peak, per_proc_speedup
from .model import PerformanceModel, PerfResult, PhaseTime, predict_on
from .porting import PhasePort, PortingSpec, default_porting
from .report import PaperTable, render_speedup_table
from .sensitivity import Finding, perturbed, sweep
from .work import AppProfile, CommPhase, WorkPhase

__all__ = [
    "AppProfile", "CommPhase", "PaperTable", "PerfResult",
    "PerformanceModel", "PhasePort", "PhaseTime", "PortingSpec",
    "WorkPhase", "default_porting", "parallel_efficiency", "pct_of_peak",
    "per_proc_speedup", "perturbed", "predict_on",
    "render_speedup_table", "sweep", "Finding",
]
