"""Sensitivity analysis: are the paper's conclusions robust to the
calibrated parameters?

The machine models contain a handful of constants that Table 1 does not
pin down (sustained memory fractions, ILP efficiencies, gather derates,
vector half-lengths).  This module perturbs each of them and re-checks
the study's *qualitative* findings — if a conclusion flips inside the
plausible parameter range, it is an artifact of calibration, not of
architecture.  The benchmark harness runs the sweep and asserts that
none of the headline findings flip.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..machine.spec import MachineSpec
from .model import PerformanceModel
from .porting import PortingSpec
from .work import AppProfile

#: (field name, is_vector_unit_field) of every calibrated knob.
CALIBRATED_FIELDS = (
    ("sustained_mem_fraction", False),
    ("ilp_efficiency", False),
    ("gather_derate", False),
    ("prefetch_ghost_derate", False),
    ("half_length", True),
)


def perturbed(machine: MachineSpec, field: str, factor: float,
              *, is_vector_field: bool = False) -> MachineSpec:
    """Copy of ``machine`` with one calibrated constant scaled.

    Fractions are clamped to (0, 1]; integer fields round.
    """
    if is_vector_field:
        if machine.vector is None:
            return machine
        value = getattr(machine.vector, field) * factor
        vec = dataclasses.replace(machine.vector,
                                  **{field: max(1, int(round(value)))})
        return dataclasses.replace(machine, vector=vec)
    value = getattr(machine, field) * factor
    if field in ("sustained_mem_fraction", "ilp_efficiency",
                 "gather_derate", "prefetch_ghost_derate"):
        value = min(max(value, 1e-3), 1.0)
    return dataclasses.replace(machine, **{field: value})


@dataclass
class Finding:
    """One qualitative claim: a predicate over per-machine results."""

    name: str
    machines: tuple[str, ...]
    #: takes {machine_name: PerfResult} and returns True if the claim holds
    check: Callable[[dict], bool]


def evaluate_finding(finding: Finding, profile_for, porting_for,
                     machines: dict[str, MachineSpec]) -> bool:
    results = {}
    for name in finding.machines:
        m = machines[name]
        profile: AppProfile = profile_for(m)
        porting: PortingSpec | None = porting_for(m)
        results[name] = PerformanceModel(m).predict(profile, porting)
    return finding.check(results)


def sweep(finding: Finding, profile_for, porting_for,
          base_machines: dict[str, MachineSpec], *,
          factors: tuple[float, ...] = (0.8, 1.25)) -> list[str]:
    """Perturb every calibrated knob of every machine; return the list
    of perturbations under which the finding FAILS (empty = robust)."""
    failures: list[str] = []
    if not evaluate_finding(finding, profile_for, porting_for,
                            base_machines):
        return [f"{finding.name}: fails even unperturbed"]
    for target in finding.machines:
        for field, is_vec in CALIBRATED_FIELDS:
            if is_vec and base_machines[target].vector is None:
                continue
            for factor in factors:
                machines = dict(base_machines)
                machines[target] = perturbed(
                    base_machines[target], field, factor,
                    is_vector_field=is_vec)
                if not evaluate_finding(finding, profile_for,
                                        porting_for, machines):
                    failures.append(
                        f"{finding.name}: flips when {target}.{field} "
                        f"x{factor}")
    return failures
