"""The performance model: work profile x machine -> predicted performance.

``predict`` combines the processor, memory and network models exactly as
described in DESIGN.md §4: per compute phase the time is
``max(T_flop, T_mem)``, communication phases are charged through the
network model at the profile's concurrency, and the reported Gflop/s
follow the paper's convention (valid baseline flop count divided by
wall-clock time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.memory import MemoryModel
from ..machine.network import NetworkModel
from ..machine.processor import ProcessorModel, strip_mined_avl
from ..machine.spec import MachineSpec
from .porting import PortingSpec, default_porting
from .work import AppProfile, CommPhase, WorkPhase


@dataclass(frozen=True)
class PhaseTime:
    """Timing detail for one compute phase on one machine."""

    name: str
    seconds: float
    flop_seconds: float
    mem_seconds: float
    mode: str
    avl: float
    bound: str                     # "compute" or "memory"


@dataclass
class PerfResult:
    """Predicted performance of one (app config, machine, P) point.

    Matches the paper's reporting: ``gflops_per_proc`` (their "Gflops/P"),
    ``pct_peak``, plus AVL and VOR for the vector machines.
    """

    app: str
    config: str
    machine: str
    nprocs: int
    seconds: float
    gflops_per_proc: float
    pct_peak: float
    avl: float
    vor: float
    compute_seconds: float
    comm_seconds: float
    phase_times: list[PhaseTime] = field(default_factory=list)
    comm_times: dict[str, float] = field(default_factory=dict)

    @property
    def total_gflops(self) -> float:
        return self.gflops_per_proc * self.nprocs

    @property
    def comm_fraction(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.comm_seconds / self.seconds

    def phase_seconds(self, name: str) -> float:
        for pt in self.phase_times:
            if pt.name == name:
                return pt.seconds
        raise KeyError(name)


class PerformanceModel:
    """Predicts application performance on one machine."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.processor = ProcessorModel(machine)
        self.memory = MemoryModel(machine)
        self.network = NetworkModel(machine)

    # -- pieces --------------------------------------------------------------
    def phase_time(
        self,
        phase: WorkPhase,
        *,
        vectorized: bool | None = None,
        multistreamed: bool | None = None,
    ) -> PhaseTime:
        ct = self.processor.time(phase, vectorized=vectorized,
                                 multistreamed=multistreamed)
        mt = self.memory.time(phase)
        seconds = max(ct.seconds, mt.seconds)
        bound = "compute" if ct.seconds >= mt.seconds else "memory"
        return PhaseTime(phase.name, seconds, ct.seconds, mt.seconds,
                         ct.mode, ct.avl, bound)

    def comm_time(self, comm: CommPhase, nprocs: int) -> float:
        """Price one CommPhase.

        For collectives, ``messages`` counts *invocations*: each call
        pays the topology's latency tree, while the volume term is
        charged on the aggregate ``bytes_total`` (PARATEC's 3D FFTs
        issue tens of thousands of small transposes whose latencies, not
        bandwidth, dominate at high concurrency, §4.2).
        """
        net = self.network
        if comm.kind == "p2p":
            return net.exchange_time(comm.messages, comm.bytes_total,
                                     onesided=comm.onesided,
                                     nprocs=nprocs).seconds

        if comm.kind == "alltoall":
            per_call = net.alltoall_time(nprocs, 0.0)
            volume = net.alltoall_time(nprocs, comm.bytes_total)
            return (max(comm.messages, 1.0) * per_call.latency_seconds
                    + volume.seconds - volume.latency_seconds)
        if comm.kind in ("allreduce", "barrier"):
            nbytes = comm.bytes_total if comm.kind == "allreduce" else 8.0
            per_call = net.allreduce_time(nprocs, 0.0)
            volume = net.allreduce_time(nprocs, nbytes)
            return (max(comm.messages, 1.0) * per_call.latency_seconds
                    + volume.seconds - volume.latency_seconds)
        if comm.kind in ("bcast", "gather"):
            per_call = net.bcast_time(nprocs, 0.0)
            volume = net.bcast_time(nprocs, comm.bytes_total)
            return (max(comm.messages, 1.0) * per_call.latency_seconds
                    + volume.seconds - volume.latency_seconds)
        raise ValueError(f"unhandled comm kind {comm.kind}")

    # -- main entry ------------------------------------------------------------
    def predict(self, profile: AppProfile,
                porting: PortingSpec | None = None) -> PerfResult:
        """Predict performance for ``profile`` on this machine."""
        profile.validate()
        porting = porting or default_porting(profile.app)
        m = self.machine

        phase_times: list[PhaseTime] = []
        vec_elem_ops = 0.0
        vec_instructions = 0.0
        scalar_ops = 0.0
        compute_seconds = 0.0
        for phase in profile.phases:
            eff, vec, stream = porting.resolve(m.name, phase)
            pt = self.phase_time(eff, vectorized=vec, multistreamed=stream)
            phase_times.append(pt)
            compute_seconds += pt.seconds
            if m.is_vector:
                is_vec = vec if vec is not None else eff.vectorizable
                if is_vec and eff.flops > 0:
                    avl = strip_mined_avl(eff.trip, m.vector_length)
                    vec_elem_ops += eff.flops
                    vec_instructions += eff.flops / max(avl, 1.0)
                else:
                    scalar_ops += eff.flops

        comm_seconds = 0.0
        comm_times: dict[str, float] = {}
        for comm in profile.comms:
            t = self.comm_time(comm, profile.nprocs)
            comm_times[comm.name] = comm_times.get(comm.name, 0.0) + t
            comm_seconds += t

        seconds = compute_seconds + comm_seconds
        gflops_per_proc = (profile.reported_flops / seconds / 1e9
                           if seconds > 0 else 0.0)
        avl = (vec_elem_ops / vec_instructions
               if vec_instructions > 0 else 0.0)
        denom = vec_elem_ops + scalar_ops
        vor = vec_elem_ops / denom if denom > 0 else 0.0
        return PerfResult(
            app=profile.app,
            config=profile.config,
            machine=m.name,
            nprocs=profile.nprocs,
            seconds=seconds,
            gflops_per_proc=gflops_per_proc,
            pct_peak=100.0 * gflops_per_proc / m.peak_gflops,
            avl=avl,
            vor=vor,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            phase_times=phase_times,
            comm_times=comm_times,
        )


def predict_on(machines: list[MachineSpec], profile_for, porting=None):
    """Convenience sweep: ``profile_for(machine)`` -> profile, predict each.

    ``profile_for`` may return ``None`` to skip a machine (the paper leaves
    table cells blank where a configuration could not be run).
    """
    results = []
    for m in machines:
        profile = profile_for(m)
        if profile is None:
            continue
        results.append(PerformanceModel(m).predict(profile, porting))
    return results
