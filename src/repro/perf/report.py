"""Paper-style table rendering.

Tables 3-6 of the paper share one layout: rows keyed by (configuration,
processor count), and per-machine column pairs "Gflops/P | %Pk".
:class:`PaperTable` renders that layout to aligned text (and markdown),
optionally with the paper's reference numbers interleaved for a
model-vs-paper comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import PerfResult


def _fmt_gflops(v: float | None) -> str:
    if v is None:
        return "—"
    if v >= 10:
        return f"{v:.1f}"
    if v >= 1:
        return f"{v:.2f}"
    return f"{v:.3f}"


def _fmt_pct(v: float | None) -> str:
    return "—" if v is None else f"{v:.0f}%"


@dataclass
class PaperTable:
    """A Tables-3..6-shaped results table."""

    title: str
    machines: list[str]
    #: rows[(config, nprocs)][machine] = PerfResult
    rows: dict[tuple[str, int], dict[str, PerfResult]] = field(
        default_factory=dict)
    #: paper reference values: ref[(config, nprocs, machine)] = (gflops, pct)
    reference: dict[tuple[str, int, str], tuple[float, float]] = field(
        default_factory=dict)

    def add(self, result: PerfResult, machine_label: str | None = None) -> None:
        label = machine_label or result.machine
        key = (result.config, result.nprocs)
        self.rows.setdefault(key, {})[label] = result
        if label not in self.machines:
            self.machines.append(label)

    def cell(self, config: str, nprocs: int,
             machine: str) -> PerfResult | None:
        return self.rows.get((config, nprocs), {}).get(machine)

    # -- rendering -------------------------------------------------------------
    def render(self, *, with_reference: bool = True) -> str:
        """Aligned-text rendering; one line per (config, P) row."""
        header = ["Config", "P"]
        for m in self.machines:
            header += [f"{m} GF/P", f"{m} %Pk"]
            if with_reference and self._has_reference(m):
                header += [f"{m} paper"]
        lines = [self.title, ""]
        widths = [len(h) for h in header]
        body: list[list[str]] = []
        for (config, nprocs) in sorted(self.rows, key=lambda k: (k[0], k[1])):
            row = [config, str(nprocs)]
            for m in self.machines:
                r = self.cell(config, nprocs, m)
                row.append(_fmt_gflops(r.gflops_per_proc if r else None))
                row.append(_fmt_pct(r.pct_peak if r else None))
                if with_reference and self._has_reference(m):
                    ref = self.reference.get((config, nprocs, m))
                    row.append(
                        f"{_fmt_gflops(ref[0])}/{_fmt_pct(ref[1])}"
                        if ref else "—")
            body.append(row)
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        lines.append(fmt.format(*header))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(fmt.format(*row))
        return "\n".join(lines)

    def _has_reference(self, machine: str) -> bool:
        return any(k[2] == machine for k in self.reference)

    def to_markdown(self) -> str:
        head = ["Config", "P"]
        for m in self.machines:
            head += [f"{m} GF/P", f"{m} %Pk"]
        out = [f"### {self.title}", "",
               "| " + " | ".join(head) + " |",
               "|" + "---|" * len(head)]
        for (config, nprocs) in sorted(self.rows, key=lambda k: (k[0], k[1])):
            row = [config, str(nprocs)]
            for m in self.machines:
                r = self.cell(config, nprocs, m)
                row.append(_fmt_gflops(r.gflops_per_proc if r else None))
                row.append(_fmt_pct(r.pct_peak if r else None))
            out.append("| " + " | ".join(row) + " |")
        return "\n".join(out)

    # -- comparison ------------------------------------------------------------
    def shape_errors(self, tol_factor: float = 3.0) -> list[str]:
        """Model-vs-paper deviations beyond ``tol_factor`` x, as messages.

        The reproduction targets *shape*, so the default tolerance is loose;
        anything outside it is surfaced for EXPERIMENTS.md.
        """
        problems = []
        for (config, nprocs, machine), (ref_gf, _refpct) in \
                self.reference.items():
            r = self.cell(config, nprocs, machine)
            if r is None:
                problems.append(
                    f"{config} P={nprocs} {machine}: no model value "
                    f"(paper: {ref_gf})")
                continue
            if ref_gf <= 0:
                continue
            ratio = r.gflops_per_proc / ref_gf
            if ratio > tol_factor or ratio < 1.0 / tol_factor:
                problems.append(
                    f"{config} P={nprocs} {machine}: model "
                    f"{r.gflops_per_proc:.3f} vs paper {ref_gf:.3f} "
                    f"({ratio:.2f}x)")
        return problems


def render_speedup_table(title: str, rows: dict[str, dict[str, float]],
                         columns: list[str]) -> str:
    """Render a Table-7-shaped summary (app x machine speedups)."""
    header = ["Name"] + columns
    widths = [max(len(header[0]), *(len(a) for a in rows))] + \
        [max(6, len(c)) for c in columns]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [title, "", fmt.format(*header)]
    lines.append("  ".join("-" * w for w in widths))
    for app, vals in rows.items():
        lines.append(fmt.format(
            app, *(f"{vals[c]:.1f}" if c in vals else "—"
                   for c in columns)))
    return "\n".join(lines)
