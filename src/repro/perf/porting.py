"""Per-(application, machine) porting status.

The paper's §3.1/§4.1/§5.1/§6.1 describe which loops vectorize, stream, or
get rewritten on each platform — e.g. Cactus's radiation boundary condition
was vectorized on the X1 but *not* on the ES (the team's stay ended first),
and GTC's ``shift`` routine was restructured to vectorize on the X1 only.
:class:`PortingSpec` captures exactly that information so the performance
model can apply it, and so ablation benchmarks can toggle it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .work import WorkPhase


@dataclass(frozen=True)
class PhasePort:
    """Porting status of one phase on one machine.

    ``None`` fields mean "use the phase's intrinsic capability".
    ``replacement`` substitutes a different work description wholesale —
    used when the ported algorithm itself differs (e.g. GTC's work-vector
    charge deposition does extra gather work and touches more memory than
    the scalar algorithm it replaces).
    """

    vectorized: bool | None = None
    multistreamed: bool | None = None
    replacement: WorkPhase | None = None
    note: str = ""


@dataclass
class PortingSpec:
    """All porting decisions for one application.

    ``entries`` maps machine name -> phase name -> :class:`PhasePort`.
    Machine and phase names not present resolve to defaults.
    """

    app: str
    entries: dict[str, dict[str, PhasePort]] = field(default_factory=dict)

    def port(self, machine_name: str, phase_name: str) -> PhasePort:
        return self.entries.get(machine_name, {}).get(phase_name,
                                                      PhasePort())

    def resolve(
        self, machine_name: str, phase: WorkPhase
    ) -> tuple[WorkPhase, bool | None, bool | None]:
        """Return (effective phase, vectorized?, multistreamed?) overrides."""
        p = self.port(machine_name, phase.name)
        eff = p.replacement if p.replacement is not None else phase
        return eff, p.vectorized, p.multistreamed

    def set(self, machine_name: str, phase_name: str, port: PhasePort) -> None:
        self.entries.setdefault(machine_name, {})[phase_name] = port

    def without(self, machine_name: str, phase_name: str) -> "PortingSpec":
        """Copy with one entry removed (for ablation studies)."""
        entries = {m: dict(d) for m, d in self.entries.items()}
        entries.get(machine_name, {}).pop(phase_name, None)
        return PortingSpec(self.app, entries)


#: A porting spec with no overrides anywhere.
def default_porting(app: str) -> PortingSpec:
    return PortingSpec(app=app)
