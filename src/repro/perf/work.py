"""Re-exports of the work descriptors (canonical home: :mod:`repro.work`)."""

from ..work import AccessPattern, AppProfile, CommPhase, WorkPhase

__all__ = ["AccessPattern", "AppProfile", "CommPhase", "WorkPhase"]
