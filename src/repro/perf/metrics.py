"""Small metric helpers shared by experiments and reports."""

from __future__ import annotations

from .model import PerfResult


def pct_of_peak(gflops_per_proc: float, peak_gflops: float) -> float:
    """Percent of per-CPU peak, as reported in Tables 3-6."""
    if peak_gflops <= 0:
        raise ValueError("peak must be positive")
    return 100.0 * gflops_per_proc / peak_gflops


def per_proc_speedup(reference: PerfResult, other: PerfResult) -> float:
    """Speedup in per-processor rate (Table 7 convention).

    The paper's Table 7 compares per-processor Gflop/s at the largest
    comparable concurrency — equal to the runtime ratio at equal P.
    """
    if other.gflops_per_proc <= 0:
        return float("inf")
    return reference.gflops_per_proc / other.gflops_per_proc


def parallel_efficiency(results: list[PerfResult]) -> dict[int, float]:
    """Per-processor rate at P normalized to the smallest-P entry."""
    if not results:
        return {}
    base = min(results, key=lambda r: r.nprocs)
    if base.gflops_per_proc <= 0:
        raise ValueError("baseline result has zero rate")
    return {r.nprocs: r.gflops_per_proc / base.gflops_per_proc
            for r in results}
