"""The five evaluated platforms, parameterized from Table 1 and Section 2.

>>> from repro.machine.platforms import ES, X1, POWER3
>>> round(ES.bytes_per_flop, 1)
4.0
>>> X1.vector.vector_length
64
"""

from __future__ import annotations

from .spec import (
    CacheLevel,
    MachineSpec,
    ScalarUnit,
    Topology,
    VectorUnit,
)

KB = 1024
MB = 1024 * 1024

#: IBM Power3 (§2.1): 375 MHz, two FPUs with fused MADD -> 1.5 Gflop/s,
#: 128 KB L1 + 8 MB L2, 16-way SMP nodes, Colony switch (omega topology).
POWER3 = MachineSpec(
    name="Power3",
    cpus_per_node=16,
    clock_mhz=375.0,
    peak_gflops=1.5,
    mem_bw_gbs=0.7,
    mpi_latency_us=16.3,
    net_bw_gbs_per_cpu=0.13,
    bisection_bytes_per_flop=0.087,
    topology=Topology.OMEGA,
    is_vector=False,
    scalar=ScalarUnit(peak_gflops=1.5),
    caches=(
        CacheLevel("L1", 128 * KB, line_bytes=128, associativity=128),
        CacheLevel("L2", 8 * MB, line_bytes=128, associativity=4,
                   bandwidth_gbs=6.4),
    ),
    sustained_mem_fraction=0.85,   # short 3-cycle pipe, efficient prefetch
    ilp_efficiency=0.85,           # 3-cycle pipeline; dense kernels near peak
    prefetch_ghost_derate=0.45,    # prefetch streams disengage at ghost zones
    gather_derate=0.30,
    notes="380-node IBM pSeries at LBNL (NERSC), AIX 5.1, Colony switch.",
    max_procs=6080,
)

#: IBM Power4 (§2.2): 1.3 GHz cores, 2 FPUs w/ MADD -> 5.2 Gflop/s, shared
#: 1.5 MB L2 per chip, 32 MB L3 per MCM, Federation (HPS) fat-tree.
POWER4 = MachineSpec(
    name="Power4",
    cpus_per_node=32,
    clock_mhz=1300.0,
    peak_gflops=5.2,
    mem_bw_gbs=2.3,
    mpi_latency_us=7.0,
    net_bw_gbs_per_cpu=0.25,
    bisection_bytes_per_flop=0.025,
    topology=Topology.FAT_TREE,
    is_vector=False,
    scalar=ScalarUnit(peak_gflops=5.2),
    caches=(
        CacheLevel("L1", 32 * KB, line_bytes=128, associativity=2),
        CacheLevel("L2", int(1.5 * MB), line_bytes=128, associativity=8,
                   bandwidth_gbs=50.0, shared_by=2),
        CacheLevel("L3", 32 * MB, line_bytes=512, associativity=8,
                   bandwidth_gbs=12.0, shared_by=2),
    ),
    sustained_mem_fraction=0.60,   # deep 6-cycle pipe + intra-node contention
    ilp_efficiency=0.62,           # long pipeline of the 1.3 GHz design (§2.2)
    # Dual prefetch streams per core plus the large L3 ride across ghost
    # layers (Cactus 250x64x64 runs at full Power4 efficiency, Table 5).
    prefetch_ghost_derate=0.95,
    gather_derate=0.25,
    notes="27-node p690 at ORNL, AIX 5.2, Federation/HPS; no large pages.",
    max_procs=864,
)

#: SGI Altix 3000 (§2.3): 1.5 GHz Itanium2, 2 MADD/cycle -> 6 Gflop/s, FP
#: data bypasses L1 (L2-resident), NUMAlink3 fat-tree, hardware ccNUMA.
ALTIX = MachineSpec(
    name="Altix",
    cpus_per_node=2,
    clock_mhz=1500.0,
    peak_gflops=6.0,
    mem_bw_gbs=6.4,
    mpi_latency_us=2.8,
    net_bw_gbs_per_cpu=0.40,
    bisection_bytes_per_flop=0.067,
    topology=Topology.FAT_TREE,
    is_vector=False,
    scalar=ScalarUnit(peak_gflops=6.0),
    caches=(
        # FP loads cannot live in L1 on Itanium2; model L2 as first FP level.
        CacheLevel("L2", 256 * KB, line_bytes=128, associativity=8,
                   bandwidth_gbs=48.0),
        CacheLevel("L3", 6 * MB, line_bytes=128, associativity=24,
                   bandwidth_gbs=32.0),
    ),
    sustained_mem_fraction=0.70,
    ilp_efficiency=0.85,           # EPIC + 128 FP registers: dense kernels near peak
    # Software prefetch must be rescheduled around ghost-layer skips and
    # the in-order pipeline stalls when it is not (Cactus, §5.2).
    prefetch_ghost_derate=0.35,
    # In-order EPIC stalls hard on unprefetchable random loads (FP data
    # cannot live in L1 on Itanium2).
    gather_derate=0.10,
    onesided_latency_us=1.8,       # hardware ccNUMA loads/stores
    notes="256-CPU single-system-image Altix at ORNL, Linux 2.4.21.",
    max_procs=256,
)

#: Earth Simulator (§2.4): 500 MHz, 8-way replicated vector pipe w/ MADD ->
#: 8 Gflop/s; 72 vregs x 256 words; cacheless, FPLRAM banks; 1 Gflop/s
#: 4-way superscalar unit (1/8 vector); 640 nodes on single-stage crossbar.
ES = MachineSpec(
    name="ES",
    cpus_per_node=8,
    clock_mhz=500.0,
    peak_gflops=8.0,
    mem_bw_gbs=32.0,
    mpi_latency_us=5.6,
    net_bw_gbs_per_cpu=1.5,
    bisection_bytes_per_flop=0.19,
    topology=Topology.CROSSBAR,
    is_vector=True,
    vector=VectorUnit(vector_length=256, pipes=8, half_length=14),
    scalar=ScalarUnit(peak_gflops=1.0),
    caches=(),                     # cacheless vector unit
    sustained_mem_fraction=0.95,   # fully pipelined FPLRAM
    # Vector gather/scatter against FPLRAM banks is element-rate
    # limited (~1 word/cycle), far below streaming bandwidth.
    gather_derate=0.06,
    memory_banks=2048,
    notes="640-node NEC ES, Super-UX; experiments run on-site Dec 2003.",
    max_procs=5120,
)

#: Cray X1 (§2.5): MSP = 4 SSPs; 2 vector pipes/SSP @800 MHz -> 12.8 Gflop/s
#: per MSP (64-bit); 32 vregs x 64 words per SSP; 2 MB shared Ecache; scalar
#: 400 MHz 2-way, 1/8 SSP peak, and 1/32 of MSP peak when serialized.
X1 = MachineSpec(
    name="X1",
    cpus_per_node=4,               # 4 MSPs share a flat-memory node
    clock_mhz=800.0,
    peak_gflops=12.8,
    mem_bw_gbs=34.1,
    mpi_latency_us=7.3,
    net_bw_gbs_per_cpu=6.3,
    bisection_bytes_per_flop=0.088,  # 2048-MSP configuration (Table 1 note)
    topology=Topology.TORUS_2D,
    is_vector=True,
    vector=VectorUnit(vector_length=64, pipes=8, half_length=7,
                      sp_speedup=2.0),
    scalar=ScalarUnit(peak_gflops=1.6, multistream_serialization=4.0),
    caches=(
        CacheLevel("Ecache", 2 * MB, line_bytes=32, associativity=2,
                   bandwidth_gbs=38.0, shared_by=4),
    ),
    sustained_mem_fraction=0.90,
    gather_derate=0.07,             # element-rate-limited vector gathers
    memory_banks=1024,
    onesided_latency_us=3.9,       # CAF latency measured at ORNL [4]
    notes="512-MSP X1 at ORNL, UNICOS/mp 2.4; MSP = 4 multistreamed SSPs.",
    max_procs=512,
)

#: IBM Power5 — not in the study, but §5.2 anticipates it: "IBM ... has
#: added new variants of the prefetch instructions to the Power5 for
#: keeping the prefetch streams engaged when exposed to minor
#: data-access irregularities.  We look forward to testing Cactus on the
#: Power5 platform."  Parameters from the 2004-era p5-575 specification;
#: the key delta vs Power4 is the repaired ghost-zone prefetch behaviour
#: and the on-chip memory controller's bandwidth.
POWER5 = MachineSpec(
    name="Power5",
    cpus_per_node=16,
    clock_mhz=1900.0,
    peak_gflops=7.6,
    mem_bw_gbs=6.8,                # on-chip controller, per CPU
    mpi_latency_us=5.0,
    net_bw_gbs_per_cpu=0.5,
    bisection_bytes_per_flop=0.05,
    topology=Topology.FAT_TREE,
    is_vector=False,
    scalar=ScalarUnit(peak_gflops=7.6),
    caches=(
        CacheLevel("L1", 32 * KB, line_bytes=128, associativity=4),
        CacheLevel("L2", int(1.875 * MB), line_bytes=128,
                   associativity=10, bandwidth_gbs=60.0, shared_by=2),
        CacheLevel("L3", 36 * MB, line_bytes=256, associativity=12,
                   bandwidth_gbs=15.0, shared_by=2),
    ),
    sustained_mem_fraction=0.70,
    ilp_efficiency=0.62,
    # The §5.2 fix: prefetch streams survive ghost-layer skips.
    prefetch_ghost_derate=0.95,
    gather_derate=0.25,
    notes="Projection: p5-575-class system; not part of the 2004 study.",
    max_procs=2048,
)

#: All platforms in Table 1 row order (POWER5 is a projection and is
#: deliberately NOT part of this tuple).
PLATFORMS: tuple[MachineSpec, ...] = (POWER3, POWER4, ALTIX, ES, X1)

_BY_NAME = {m.name.lower(): m for m in PLATFORMS + (POWER5,)}


def get_machine(name: str) -> MachineSpec:
    """Look a platform up by (case-insensitive) name.

    >>> get_machine("es").peak_gflops
    8.0
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None


for _m in PLATFORMS + (POWER5,):
    _m.validate()
