"""Processor (compute-side) timing model.

Turns the flop count of a :class:`~repro.perf.work.WorkPhase` into time on
one CPU, given the per-machine vectorization decision for the phase.  The
model implements the paper's core performance arguments:

* Hockney vector model — sustained vector rate ``peak * avl/(avl + n_half)``
  where ``avl`` follows from strip-mining the loop's trip count into the
  machine's register length (why Cactus's 250x64x64 domains run at AVL 248
  and 80^3 at AVL 92, §5.2);
* X1 multistreaming — a vectorized but non-streamable loop uses one of the
  four SSPs (peak/4); a *serialized* (neither vectorized nor streamed) loop
  runs on a single SSP scalar core at 1/32 of MSP peak (§2.5, §6.1, §7);
* scalar residue on vector machines at the 8:1 scalar unit rate — the
  Amdahl sensitivity the paper calls "an additional dimension for
  architectural balance";
* superscalar machines sustain ``ilp_efficiency * peak`` on compute-bound
  loops (pipeline depth and register pressure set the efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..work import WorkPhase
from .spec import MachineSpec

GF = 1.0e9


def strip_mined_avl(trip: int, vector_length: int) -> float:
    """Average vector length after strip-mining a loop of ``trip`` iterations.

    A loop of *n* iterations issues ``ceil(n / VL)`` vector instructions, so
    the average length is ``n / ceil(n / VL)``:

    >>> strip_mined_avl(256, 256)
    256.0
    >>> strip_mined_avl(300, 256)
    150.0
    >>> round(strip_mined_avl(92, 256), 1)
    92.0
    """
    if trip <= 0:
        return 0.0
    if vector_length <= 1:
        return 1.0
    chunks = -(-trip // vector_length)
    return trip / chunks


@dataclass(frozen=True)
class ComputeTime:
    """Result of the processor model for one phase on one CPU."""

    seconds: float
    mode: str                      # "vector", "vector-unstreamed", "scalar",
    #                                "serialized-scalar", "superscalar"
    avl: float                     # 0 for scalar execution
    effective_gflops: float


class ProcessorModel:
    """Per-machine compute timing."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    def time(
        self,
        phase: WorkPhase,
        *,
        vectorized: bool | None = None,
        multistreamed: bool | None = None,
    ) -> ComputeTime:
        """Compute-side time for ``phase``.

        ``vectorized``/``multistreamed`` override the phase's intrinsic
        capabilities (the porting spec resolves these per machine); ``None``
        means "as capable".
        """
        m = self.machine
        if phase.flops == 0:
            return ComputeTime(0.0, "empty", 0.0, float("inf"))

        if not m.is_vector:
            rate = m.peak_gflops * m.ilp_efficiency \
                * phase.compute_efficiency * GF
            return ComputeTime(phase.flops / rate, "superscalar", 0.0,
                               rate / GF)

        vec = vectorized if vectorized is not None else phase.vectorizable
        stream = (multistreamed if multistreamed is not None
                  else phase.streamable)
        if m.vector is None or m.scalar is None:
            raise ValueError(
                f"machine {m.name!r} is flagged is_vector but lacks "
                f"vector/scalar unit specs")

        if vec:
            avl = strip_mined_avl(phase.trip, m.vector.vector_length)
            n_half = m.vector.half_length * phase.half_length_scale
            eff = avl / (avl + n_half)
            peak = m.peak_gflops
            mode = "vector"
            if phase.word_bytes == 4:
                peak *= m.vector.sp_speedup
            if m.scalar.multistream_serialization > 1.0 and not stream:
                # Vectorized but confined to one SSP of the MSP.
                peak /= m.scalar.multistream_serialization
                mode = "vector-unstreamed"
            rate = peak * eff * phase.compute_efficiency * GF
            return ComputeTime(phase.flops / rate, mode, avl, rate / GF)

        # Unvectorized on a vector machine: scalar unit, possibly serialized
        # inside a multistreamed region (X1's 32:1 effective ratio).
        rate = m.scalar.peak_gflops * phase.compute_efficiency * GF
        mode = "scalar"
        if m.scalar.multistream_serialization > 1.0:
            rate /= m.scalar.multistream_serialization
            mode = "serialized-scalar"
        return ComputeTime(phase.flops / rate, mode, 0.0, rate / GF)
