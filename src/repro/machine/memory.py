"""Memory-hierarchy timing model.

Converts a :class:`~repro.perf.work.WorkPhase`'s traffic into time on a
given :class:`~repro.machine.spec.MachineSpec`.  The mechanisms implemented
are exactly the ones the paper uses to explain its measurements:

* sustained main-memory bandwidth as a fraction of nominal (Table 1);
* cache filtering — a reuse fraction of the traffic is served at cache
  bandwidth when the working set fits (why PARATEC's BLAS3 runs near peak
  everywhere, and why superscalar machines *gain* from smaller per-process
  domains, §3.2/§6.2);
* prefetch-engine disengagement for sweeps that skip multi-layer ghost
  zones on the Power machines (§5.2);
* gather/scatter derates for indirect access (GTC deposition, §6.1);
* memory-bank conflicts on the cacheless vector machines, removable with
  data duplication (the ES ``duplicate`` pragma, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..work import AccessPattern, WorkPhase
from .spec import CacheLevel, MachineSpec

GB = 1.0e9


@dataclass(frozen=True)
class MemoryTime:
    """Result of the memory model for one phase."""

    seconds: float
    effective_bandwidth_gbs: float
    served_by: str                 # "memory" or a cache-level name


class MemoryModel:
    """Per-machine memory timing."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    # -- pattern derates ---------------------------------------------------
    def pattern_factor(self, access: AccessPattern) -> float:
        """Multiplier on sustainable bandwidth for an access pattern."""
        m = self.machine
        if access is AccessPattern.UNIT:
            return 1.0
        if access is AccessPattern.STRIDED:
            # Vector pipes handle constant strides nearly as fast as unit
            # stride (banked memory); cache machines waste line bandwidth.
            return 0.85 if m.is_vector else 0.45
        if access is AccessPattern.GATHER:
            return m.gather_derate
        if access is AccessPattern.GHOSTED:
            # Unit-stride until the sweep skips ghost layers; only machines
            # relying on hardware prefetch streams are hurt.
            return m.prefetch_ghost_derate if not m.is_vector else 0.95
        raise ValueError(f"unknown access pattern {access}")

    # -- cache fitting -----------------------------------------------------
    def fitting_cache(self, working_set_bytes: float) -> CacheLevel | None:
        """Smallest cache level that holds the phase working set.

        A set is considered resident when it occupies at most 80% of the
        level's effective (per-core share of the) capacity.
        """
        for level in self.machine.caches:
            capacity = level.size_bytes / max(1, level.shared_by)
            if working_set_bytes <= 0.8 * capacity:
                return level
        return None

    # -- main entry point --------------------------------------------------
    def time(self, phase: WorkPhase) -> MemoryTime:
        """Time to move the phase's traffic through the hierarchy."""
        m = self.machine
        nbytes = phase.words * phase.word_bytes
        if nbytes == 0:
            return MemoryTime(0.0, float("inf"), "none")

        dram_bw = m.mem_bw_gbs * m.sustained_mem_fraction * GB
        dram_bw *= self.pattern_factor(phase.access)
        if m.memory_banks and phase.bank_conflict > 0.0:
            dram_bw *= 1.0 - phase.bank_conflict

        level = self.fitting_cache(phase.working_set_bytes)
        reuse = phase.temporal_reuse if level is not None else 0.0
        if level is not None and level.bandwidth_gbs is not None and reuse > 0:
            cache_bw = level.bandwidth_gbs * GB
            # Harmonic split: reuse fraction served at cache speed, the rest
            # from main memory.
            seconds = nbytes * (reuse / cache_bw + (1.0 - reuse) / dram_bw)
            served = level.name
        else:
            seconds = nbytes / dram_bw
            served = "memory"
        eff = nbytes / seconds / GB if seconds > 0 else float("inf")
        return MemoryTime(seconds, eff, served)
