"""Machine specification dataclasses.

Every parameter here is taken from Table 1 of the paper or from the
microarchitectural descriptions in Section 2 (Power3 §2.1, Power4 §2.2,
Altix §2.3, Earth Simulator §2.4, X1 §2.5).  The specs are deliberately
*descriptive*: they record what the paper says about the hardware, and the
models in :mod:`repro.machine.processor`, :mod:`repro.machine.memory` and
:mod:`repro.machine.network` turn them into predicted execution times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..work import AccessPattern

__all__ = [
    "AccessPattern", "CacheLevel", "MachineSpec", "ScalarUnit",
    "Topology", "VectorUnit",
]


class Topology(enum.Enum):
    """Interconnect topology families present in Table 1."""

    FAT_TREE = "fat-tree"
    OMEGA = "omega"
    CROSSBAR = "crossbar"
    TORUS_2D = "2d-torus"


@dataclass(frozen=True)
class CacheLevel:
    """A single level of a data-cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int = 128
    associativity: int = 4
    #: Sustained bandwidth from this level to the core, GB/s.  ``None`` means
    #: "fast enough to be ignored" (the level never limits the kernels here).
    bandwidth_gbs: float | None = None
    shared_by: int = 1  # cores sharing this cache (Power4 L2 is shared by 2)


@dataclass(frozen=True)
class VectorUnit:
    """Vector execution resources of one processor.

    ``vector_length`` is the hardware register length in 64-bit words (256 on
    the ES, 64 on an X1 MSP pipe).  ``half_length`` is the classic
    :math:`n_{1/2}` of Hockney's vector model — the vector length at which
    half of asymptotic throughput is reached; sustained efficiency on
    average vector length *avl* is ``avl / (avl + half_length)``.
    """

    vector_length: int
    pipes: int
    half_length: int = 12
    #: Multiplier for single-precision peak (X1 doubles to 25.6 Gflop/s for
    #: 32-bit data, although the paper notes memory bandwidth obviates it).
    sp_speedup: float = 1.0


@dataclass(frozen=True)
class ScalarUnit:
    """Scalar/superscalar execution resources of one processor."""

    peak_gflops: float
    #: Additional derate applied to scalar code embedded in a multistreamed
    #: region.  The X1 MSP runs serialized loops on a single SSP scalar core,
    #: degrading the vector:scalar ratio from 8:1 to 32:1 (§6.1, §7).
    multistream_serialization: float = 1.0


@dataclass(frozen=True)
class MachineSpec:
    """Full description of one platform (one row of Table 1 + §2 detail)."""

    name: str
    cpus_per_node: int
    clock_mhz: float
    peak_gflops: float            # per CPU
    mem_bw_gbs: float             # per CPU, Table 1 "Memory BW"
    mpi_latency_us: float
    net_bw_gbs_per_cpu: float
    bisection_bytes_per_flop: float
    topology: Topology
    is_vector: bool
    vector: VectorUnit | None = None
    scalar: ScalarUnit | None = None
    caches: tuple[CacheLevel, ...] = ()
    #: Fraction of nominal memory bandwidth sustainable by real streams
    #: (STREAM-triad-like).  Vector machines with FPLRAM/pipelined fetches
    #: sustain close to nominal; cache hierarchies sustain less.
    sustained_mem_fraction: float = 0.75
    #: Derate when unit-stride sweeps skip ghost layers and the prefetch
    #: streams disengage (Power3/Power4 behaviour, §5.2).
    prefetch_ghost_derate: float = 1.0
    #: Derate on gather/scatter (indirect) memory streams.
    gather_derate: float = 0.35
    #: Sustained fraction of peak for compute-bound scalar loops with good
    #: ILP (superscalar machines; derated further by deep pipelines).
    ilp_efficiency: float = 0.75
    #: Number of independent memory banks (vector machines); used by the
    #: bank-conflict model.  0 disables the model.
    memory_banks: int = 0
    #: One-sided (CAF/SHMEM) latency where hardware supports it (§3.1 cites
    #: 3.9 us on the X1 vs 7.3 us for MPI).  ``None``: no one-sided support.
    onesided_latency_us: float | None = None
    notes: str = ""
    # Derived/auxiliary fields
    max_procs: int = 1024

    @property
    def bytes_per_flop(self) -> float:
        """Table 1 'Peak (Bytes/flop)' column: memory balance of the CPU."""
        return self.mem_bw_gbs / self.peak_gflops

    @property
    def scalar_peak_gflops(self) -> float:
        if self.scalar is not None:
            return self.scalar.peak_gflops
        return self.peak_gflops

    @property
    def vector_length(self) -> int:
        if self.vector is None:
            return 1
        return self.vector.vector_length

    def validate(self) -> None:
        """Raise ``ValueError`` if the spec is internally inconsistent."""
        if self.peak_gflops <= 0 or self.mem_bw_gbs <= 0:
            raise ValueError(f"{self.name}: non-positive peak/bandwidth")
        if self.is_vector and self.vector is None:
            raise ValueError(f"{self.name}: vector machine without VectorUnit")
        if not self.is_vector and self.vector is not None:
            raise ValueError(f"{self.name}: scalar machine with VectorUnit")
        if self.mpi_latency_us < 0 or self.net_bw_gbs_per_cpu <= 0:
            raise ValueError(f"{self.name}: bad network parameters")
        if not 0.0 < self.sustained_mem_fraction <= 1.0:
            raise ValueError(f"{self.name}: sustained_mem_fraction out of range")
        if self.scalar is not None and self.scalar.peak_gflops > self.peak_gflops:
            raise ValueError(f"{self.name}: scalar unit faster than total peak")
