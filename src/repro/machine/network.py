"""Interconnect topology and communication cost models.

Each platform's network is described by a topology model that knows how its
aggregate bisection bandwidth scales with processor count — the property
the paper repeatedly uses to explain scaling differences (ES crossbar and
fat-trees scale bisection linearly with P; the X1's 2D torus scales only
with sqrt(P), which is why PARATEC's all-to-all transposes collapse on the
X1 above 128 processors, §4.2).

The topology classes can also materialize themselves as ``networkx`` graphs
(switches + endpoints) so that structural claims — bisection scaling,
diameter, single-hop crossbar — are *verified* against graph cuts in the
test suite rather than just asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from .spec import MachineSpec, Topology

GB = 1.0e9
US = 1.0e-6


# ---------------------------------------------------------------------------
# Topology structure models
# ---------------------------------------------------------------------------
class TopologyModel:
    """Structural properties of an interconnect family."""

    #: exponent of bisection-bandwidth growth with P (1.0 = full bisection)
    bisection_exponent: float = 1.0

    def __init__(self, name: str):
        self.name = name

    def bisection_scale(self, nprocs: int, reference_procs: int) -> float:
        """Aggregate-bisection multiplier relative to ``reference_procs``.

        Table 1 quotes bisection bytes/s/flop at a reference machine size;
        this scales that aggregate figure to other processor counts.
        """
        if nprocs < 1 or reference_procs < 1:
            raise ValueError("processor counts must be positive")
        ratio = nprocs / reference_procs
        return ratio**self.bisection_exponent

    def avg_hops(self, nprocs: int) -> float:
        raise NotImplementedError

    def build_graph(self, nprocs: int) -> nx.Graph:
        """Materialize the topology for structural verification.

        Endpoint nodes are labelled ``("cpu", i)``; internal switches are
        ``("sw", ...)``.  Every edge carries ``capacity=1.0`` (one link).
        """
        raise NotImplementedError


class Crossbar(TopologyModel):
    """ES single-stage crossbar: every node one hop from every other."""

    bisection_exponent = 1.0

    def avg_hops(self, nprocs: int) -> float:
        return 1.0

    def build_graph(self, nprocs: int) -> nx.Graph:
        g = nx.Graph()
        hub = ("sw", 0)
        for i in range(nprocs):
            # A non-blocking crossbar gives each endpoint a dedicated port;
            # model as a star whose hub never contends (per-port capacity).
            g.add_edge(("cpu", i), hub, capacity=1.0)
        return g


class FatTree(TopologyModel):
    """Full-bisection fat tree (Altix NUMAlink3, Power4 Federation)."""

    bisection_exponent = 1.0

    def __init__(self, name: str, radix: int = 4):
        super().__init__(name)
        if radix < 2:
            raise ValueError("fat-tree radix must be >= 2")
        self.radix = radix

    def avg_hops(self, nprocs: int) -> float:
        levels = max(1, math.ceil(math.log(max(nprocs, self.radix),
                                           self.radix)))
        return 2.0 * levels  # up to the common ancestor and back down

    def build_graph(self, nprocs: int) -> nx.Graph:
        g = nx.Graph()
        # Build a binary-ish fat tree with link capacities doubling upward
        # (the "fatness" that preserves full bisection).
        leaves = [("cpu", i) for i in range(nprocs)]
        level = 0
        current = leaves
        cap = 1.0
        while len(current) > 1:
            parents = []
            for j in range(0, len(current), self.radix):
                parent = ("sw", level, j // self.radix)
                parents.append(parent)
                for child in current[j:j + self.radix]:
                    g.add_edge(child, parent, capacity=cap)
            current = parents
            cap *= self.radix  # aggregate capacity grows toward the root
            level += 1
        return g


class Omega(FatTree):
    """Power3 Colony switch: omega multistage network.

    Structurally a multistage indirect network; for the cost model it
    behaves like a (thinner) fat tree with linear bisection scaling, which
    matches the Table 1 ratio being quoted per-CPU.
    """


class Torus2D(TopologyModel):
    """X1 modified 2D torus: bisection grows only with sqrt(P) (§2.5)."""

    bisection_exponent = 0.5

    def __init__(self, name: str, hop_latency_us: float = 0.05):
        super().__init__(name)
        self.hop_latency_us = hop_latency_us

    @staticmethod
    def dims(nprocs: int) -> tuple[int, int]:
        """Near-square factorization of ``nprocs`` into torus dimensions."""
        a = int(math.sqrt(nprocs))
        while a > 1 and nprocs % a:
            a -= 1
        return a, nprocs // a

    def avg_hops(self, nprocs: int) -> float:
        a, b = self.dims(nprocs)
        # Mean wraparound distance on a ring of n is ~n/4 per dimension.
        return max(1.0, a / 4.0 + b / 4.0)

    def build_graph(self, nprocs: int) -> nx.Graph:
        a, b = self.dims(nprocs)
        g = nx.Graph()
        for i in range(a):
            for j in range(b):
                n = ("cpu", i * b + j)
                right = ("cpu", i * b + (j + 1) % b)
                down = ("cpu", ((i + 1) % a) * b + j)
                if b > 1 and right != n:
                    g.add_edge(n, right, capacity=1.0)
                if a > 1 and down != n:
                    g.add_edge(n, down, capacity=1.0)
        if g.number_of_nodes() == 0:
            g.add_node(("cpu", 0))
        return g


def topology_model(machine: MachineSpec) -> TopologyModel:
    """Topology model instance for a platform."""
    t = machine.topology
    if t is Topology.CROSSBAR:
        return Crossbar(machine.name)
    if t is Topology.FAT_TREE:
        return FatTree(machine.name)
    if t is Topology.OMEGA:
        return Omega(machine.name)
    if t is Topology.TORUS_2D:
        return Torus2D(machine.name)
    raise ValueError(f"unhandled topology {t}")


# ---------------------------------------------------------------------------
# Communication cost model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CommTime:
    seconds: float
    latency_seconds: float
    bandwidth_seconds: float
    bisection_seconds: float = 0.0


#: Reference machine sizes at which Table 1 bisection ratios are quoted.
_BISECTION_REFERENCE = {
    "Power3": 6080, "Power4": 864, "Altix": 256, "ES": 5120, "X1": 2048,
}


class NetworkModel:
    """Cost model for the messages recorded by the runtime transport."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.topology = topology_model(machine)
        self.reference_procs = _BISECTION_REFERENCE.get(machine.name, 1024)

    # -- primitive costs ----------------------------------------------------
    def latency(self, *, onesided: bool = False, nprocs: int = 2) -> float:
        m = self.machine
        if onesided and m.onesided_latency_us is not None:
            base = m.onesided_latency_us
        else:
            base = m.mpi_latency_us
        extra = 0.0
        if isinstance(self.topology, Torus2D):
            extra = self.topology.hop_latency_us * self.topology.avg_hops(
                nprocs)
        return (base + extra) * US

    def ptp_time(self, nbytes: float, *, onesided: bool = False,
                 nprocs: int = 2) -> CommTime:
        """One point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative message size")
        lat = self.latency(onesided=onesided, nprocs=nprocs)
        bw = self.machine.net_bw_gbs_per_cpu * GB
        return CommTime(lat + nbytes / bw, lat, nbytes / bw)

    def exchange_time(self, messages: float, bytes_total: float, *,
                      onesided: bool = False, nprocs: int = 2) -> CommTime:
        """Per-rank cost of a neighbourhood exchange (halo/boundary swap).

        All ranks exchange concurrently; each pays its own message latencies
        plus serialization of its own injected volume.
        """
        if messages < 0 or bytes_total < 0:
            raise ValueError("negative exchange parameters")
        lat = messages * self.latency(onesided=onesided, nprocs=nprocs)
        bw_s = bytes_total / (self.machine.net_bw_gbs_per_cpu * GB)
        return CommTime(lat + bw_s, lat, bw_s)

    # -- collectives ----------------------------------------------------------
    def total_bisection_bandwidth(self, nprocs: int) -> float:
        """Aggregate bisection bandwidth (bytes/s) at ``nprocs`` CPUs.

        Table 1 quotes bytes/s/flop at the reference machine size; the
        aggregate there is ``ratio * peak * P_ref``, rescaled to ``nprocs``
        by the topology's growth law.
        """
        m = self.machine
        ref = self.reference_procs
        aggregate_ref = (m.bisection_bytes_per_flop * m.peak_gflops * GB
                         * ref)
        return aggregate_ref * self.topology.bisection_scale(nprocs, ref)

    def alltoall_time(self, nprocs: int, bytes_per_rank: float) -> CommTime:
        """Personalized all-to-all (PARATEC's FFT transposes).

        Per-rank injection competes with the aggregate-volume bisection
        constraint: half of the total volume crosses the machine's bisection.
        """
        if nprocs < 1 or bytes_per_rank < 0:
            raise ValueError("bad alltoall parameters")
        if nprocs == 1:
            return CommTime(0.0, 0.0, 0.0)
        if isinstance(self.topology, Torus2D):
            # The early X1 software stack implemented all-to-all as
            # pairwise exchanges over the torus (see the ORNL X1
            # evaluations, refs [7, 10]): every rank pays P-1 message
            # latencies per call — the mechanism behind PARATEC's
            # scaling collapse above 128 MSPs (Table 4).
            lat = (nprocs - 1) * self.latency(nprocs=nprocs)
        else:
            lat = math.log2(nprocs) * self.latency(nprocs=nprocs)
        inject = bytes_per_rank / (self.machine.net_bw_gbs_per_cpu * GB)
        cross = (bytes_per_rank * nprocs / 2.0) / \
            self.total_bisection_bandwidth(nprocs)
        return CommTime(lat + max(inject, cross), lat, inject, cross)

    def allreduce_time(self, nprocs: int, nbytes: float) -> CommTime:
        if nprocs < 1 or nbytes < 0:
            raise ValueError("bad allreduce parameters")
        if nprocs == 1:
            return CommTime(0.0, 0.0, 0.0)
        steps = math.ceil(math.log2(nprocs))
        lat = 2 * steps * self.latency(nprocs=nprocs)
        bw_s = 2 * nbytes / (self.machine.net_bw_gbs_per_cpu * GB)
        return CommTime(lat + bw_s, lat, bw_s)

    def bcast_time(self, nprocs: int, nbytes: float) -> CommTime:
        if nprocs < 1 or nbytes < 0:
            raise ValueError("bad bcast parameters")
        if nprocs == 1:
            return CommTime(0.0, 0.0, 0.0)
        steps = math.ceil(math.log2(nprocs))
        lat = steps * self.latency(nprocs=nprocs)
        bw_s = nbytes / (self.machine.net_bw_gbs_per_cpu * GB)
        return CommTime(lat + bw_s, lat, bw_s)
