"""Hardware-counter emulation.

The paper reports AVL (average vector length) and VOR (vector operation
ratio) collected with ``hpmcount`` (Power), ``pfmon`` (Altix), ``ftrace``
(ES) and ``pat`` (X1).  :class:`HardwareCounters` reproduces those metrics
from loop-level information: each instrumented loop reports its trip count
and per-iteration operation counts, and the counter model strip-mines the
loop into vector instructions of the machine's register length.

VOR  = vector element operations / (vector element operations + scalar ops)
AVL  = vector element operations / vector instructions issued
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HardwareCounters:
    """Accumulates operation counts the way the real tools do.

    ``vector_length`` is the register length used for strip-mining; pass 1
    for a scalar machine (all operations then count as scalar and VOR = 0).
    """

    vector_length: int = 1
    flops: float = 0.0
    vector_element_ops: float = 0.0
    vector_instructions: float = 0.0
    scalar_ops: float = 0.0
    loads_stores: float = 0.0
    by_phase: dict[str, float] = field(default_factory=dict)

    def record_loop(
        self,
        trip: int,
        ops_per_iter: float,
        *,
        vectorized: bool = True,
        words_per_iter: float = 0.0,
        phase: str | None = None,
        repeats: int = 1,
    ) -> None:
        """Record ``repeats`` executions of a loop of ``trip`` iterations.

        A vectorized loop of trip count *n* issues ``ceil(n / VL)`` vector
        instructions per operation, the last one partially filled — exactly
        the strip-mining arithmetic that sets AVL below VL for short loops.
        """
        if trip < 0 or ops_per_iter < 0 or repeats < 0:
            raise ValueError("negative loop parameters")
        total_ops = float(trip) * ops_per_iter * repeats
        self.flops += total_ops
        self.loads_stores += float(trip) * words_per_iter * repeats
        if vectorized and self.vector_length > 1 and trip > 0:
            n_chunks = -(-trip // self.vector_length)  # ceil division
            self.vector_element_ops += total_ops
            # One vector instruction per chunk per "operation slot"; the
            # per-iteration op count scales instruction count linearly.
            self.vector_instructions += n_chunks * ops_per_iter * repeats
        else:
            self.scalar_ops += total_ops
        if phase is not None:
            self.by_phase[phase] = self.by_phase.get(phase, 0.0) + total_ops

    def merge(self, other: "HardwareCounters") -> None:
        """Fold another counter set into this one (ranks -> job totals)."""
        if other.vector_length != self.vector_length:
            raise ValueError("cannot merge counters from different machines")
        self.flops += other.flops
        self.vector_element_ops += other.vector_element_ops
        self.vector_instructions += other.vector_instructions
        self.scalar_ops += other.scalar_ops
        self.loads_stores += other.loads_stores
        for k, v in other.by_phase.items():
            self.by_phase[k] = self.by_phase.get(k, 0.0) + v

    @property
    def avl(self) -> float:
        """Average vector length (elements per vector instruction)."""
        if self.vector_instructions == 0:
            return 0.0
        return self.vector_element_ops / self.vector_instructions

    @property
    def vor(self) -> float:
        """Vector operation ratio, in [0, 1]."""
        total = self.vector_element_ops + self.scalar_ops
        if total == 0:
            return 0.0
        return self.vector_element_ops / total

    def summary(self) -> dict[str, float]:
        return {
            "flops": self.flops,
            "avl": self.avl,
            "vor": self.vor,
            "loads_stores": self.loads_stores,
        }
