"""Machine models of the five evaluated platforms.

Public surface: the platform instances (:data:`POWER3`, :data:`POWER4`,
:data:`ALTIX`, :data:`ES`, :data:`X1`), the :class:`MachineSpec` family of
descriptors, and the processor / memory / network timing models.
"""

from .counters import HardwareCounters
from .memory import MemoryModel, MemoryTime
from .network import (
    CommTime,
    Crossbar,
    FatTree,
    NetworkModel,
    Omega,
    Torus2D,
    TopologyModel,
    topology_model,
)
from .platforms import (
    ALTIX,
    ES,
    PLATFORMS,
    POWER3,
    POWER4,
    POWER5,
    X1,
    get_machine,
)
from .processor import ComputeTime, ProcessorModel, strip_mined_avl
from .spec import (
    AccessPattern,
    CacheLevel,
    MachineSpec,
    ScalarUnit,
    Topology,
    VectorUnit,
)

__all__ = [
    "ALTIX", "ES", "PLATFORMS", "POWER3", "POWER4", "POWER5", "X1",
    "AccessPattern", "CacheLevel", "CommTime", "ComputeTime", "Crossbar",
    "FatTree", "HardwareCounters", "MachineSpec", "MemoryModel",
    "MemoryTime", "NetworkModel", "Omega", "ProcessorModel", "ScalarUnit",
    "Topology", "TopologyModel", "Torus2D", "VectorUnit", "get_machine",
    "strip_mined_avl", "topology_model",
]
