"""LBMHD work profile for the performance model (Table 3).

Per-point work constants are derived from the implemented kernels (see the
derivations in the docstrings); communication volumes follow from the
block decomposition and are cross-checked against the traffic the
simulated runtime actually records (tests/apps/lbmhd/test_profile.py).

The paper's headline characterization — "LBMHD has a low computational
intensity, about 1.5 FP operations per data word of access" (§3.2) — is a
*property* of these constants, asserted in tests, not an input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...perf.work import AccessPattern, AppProfile, CommPhase, WorkPhase
from ...runtime.decomposition import factor_grid

#: Collision flops per grid point: moment evaluation (rho, m, B, u ~ 70),
#: the 9 fluid equilibria with the Maxwell-stress quadratic form (~145),
#: the 18 magnetic equilibria components (~110), and the BGK relaxation of
#: 27 distributions (~81).  "Complex algebraic expression originally
#: derived from appropriate conservation laws" (§3).
COLLISION_FLOPS_PER_POINT = 406.0
#: Collision words per point: 27 distributions read + 27 written is the
#: compulsory 54; on top of that the equilibrium evaluation materializes
#: vector temporaries (the padded temporary arrays of the ES port, §3.1):
#: feq/geq (54 write + 54 read), moment fields and the quadratic-form
#: intermediates (~160 more).  On the cacheless vector machines all of
#: this is genuine memory traffic; cache machines recover most of it via
#: ``temporal_reuse`` below (their ports block the inner loop so the
#: temporaries stay cache-resident, §3.1).
COLLISION_WORDS_PER_POINT = 320.0

#: Stream flops per point: 4 diagonal directions x 3 field components x a
#: cubic polynomial evaluation (4 multiplies + 3 adds) on the octagonal
#: lattice, plus interpolation index arithmetic (§3: "third degree
#: polynomial evaluations").
STREAM_FLOPS_PER_POINT = 96.0
#: Stream words per point: 27 reads + 27 writes, with the 12 interpolated
#: components reading 4 source points instead of 1 (dense and strided
#: memory copies, §3).
STREAM_WORDS_PER_POINT = 90.0

#: 27 words of state per point (9 scalar f + 9 vector g).
STATE_WORDS_PER_POINT = 27


@dataclass(frozen=True)
class LBMHDConfig:
    """One Table 3 configuration."""

    grid: int                      # square grid extent (4096 or 8192)
    nprocs: int
    variant: str = "mpi"           # "mpi" or "caf"
    steps_per_iteration: int = 1

    @property
    def label(self) -> str:
        return f"{self.grid}x{self.grid}"

    @property
    def points_per_rank(self) -> float:
        return self.grid * self.grid / self.nprocs

    def subdomain(self) -> tuple[int, int]:
        py, px = factor_grid(self.nprocs, 2)
        return self.grid // py, self.grid // px


def intensity() -> float:
    """Aggregate flops per word of the app (paper: "about 1.5")."""
    return ((COLLISION_FLOPS_PER_POINT + STREAM_FLOPS_PER_POINT)
            / (COLLISION_WORDS_PER_POINT + STREAM_WORDS_PER_POINT))


def memory_footprint_gb(grid: int) -> float:
    """Working state in GB (paper: 7.5 GB at 4096^2, 30 GB at 8192^2).

    The production code holds the two lattice copies (current and
    streamed) plus equilibrium temporaries: ~2.25x the raw 27 words.
    """
    words = grid * grid * STATE_WORDS_PER_POINT * 2.25
    return words * 8 / 1e9


def build_profile(config: LBMHDConfig) -> AppProfile:
    """Machine-independent per-rank work profile for one configuration."""
    ly, lx = config.subdomain()
    pts = float(ly * lx)
    halo = 2  # octagonal lattice halo width (interpolation stencil)

    collision = WorkPhase(
        "collision",
        flops=COLLISION_FLOPS_PER_POINT * pts,
        words=COLLISION_WORDS_PER_POINT * pts,
        access=AccessPattern.UNIT,
        trip=lx,                   # inner grid-point loop vectorized (§3.1)
        vectorizable=True,
        streamable=True,           # X1 compiler multistreams the outer loop
        # Blocked inner loop keeps the equilibrium temporaries (266 of
        # the 320 words) cache-resident on the superscalar machines; the
        # sustained reuse fraction is a bit below the 0.83 ceiling because
        # "the cache-blocking algorithm for the collision step is not
        # perfect" (§3.2).
        temporal_reuse=0.70,
        working_set_bytes=256 * STATE_WORDS_PER_POINT * 8 * 4,
    )
    stream = WorkPhase(
        "stream",
        flops=STREAM_FLOPS_PER_POINT * pts,
        words=STREAM_WORDS_PER_POINT * pts,
        access=AccessPattern.STRIDED,  # dense and strided memory copies
        trip=lx,
        vectorizable=True,
        streamable=True,
    )
    phases = [collision, stream]

    # Halo exchange: strips of width `halo` on 4 faces + 4 corners, all 27
    # components, 8 bytes each.
    halo_bytes = (2 * (ly + lx) * halo + 4 * halo * halo) \
        * STATE_WORDS_PER_POINT * 8.0
    if config.nprocs == 1:
        comms = []
    elif config.variant == "caf":
        # One-sided puts, f and g separately: 16 smaller messages and no
        # pack/copy phase (CAF "reduced the memory traffic by a factor of
        # 3X by eliminating user- and system-level message copies", §3.2).
        comms = [CommPhase("halo", "p2p", messages=16.0,
                           bytes_total=halo_bytes, onesided=True)]
    else:
        # MPI: pack into temporary buffers -> 8 messages, but the volume
        # crosses memory three times (pack + user copy + system copy).
        comms = [CommPhase("halo", "p2p", messages=8.0,
                           bytes_total=halo_bytes)]
        phases.append(WorkPhase(
            "buffer-copy",
            flops=0.0,
            words=3.0 * halo_bytes / 8.0,
            access=AccessPattern.STRIDED,
            trip=max(ly, lx),
        ))

    profile = AppProfile(
        app="lbmhd",
        config=config.label,
        nprocs=config.nprocs,
        phases=phases,
        comms=comms,
    )
    # Reported Gflop/s use the collision+stream arithmetic only (the
    # baseline flop count; buffer copies are overhead, not "valid" flops).
    profile.baseline_flops = collision.flops + stream.flops
    return profile


def feed_metrics(registry, config: LBMHDConfig) -> None:
    """Publish the model work profile into a shared metrics registry.

    Replaces the old pattern of each caller keeping its own dict of the
    per-phase constants; every exporter now reads the same namespace
    (``lbmhd.model.*``) the measured trace metrics live in.
    """
    registry.ingest_profile(build_profile(config))
    registry.gauge("lbmhd.model.intensity").set(intensity())


def table3_configs() -> list[LBMHDConfig]:
    """The exact (grid, P) points of Table 3, MPI variant."""
    out = []
    for grid, procs in ((4096, (16, 64, 256)), (8192, (64, 256, 1024))):
        out.extend(LBMHDConfig(grid, p) for p in procs)
    return out
