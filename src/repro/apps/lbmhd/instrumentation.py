"""Hardware-counter instrumentation for LBMHD runs.

Mirrors what ``ftrace``/``pat`` measured on the vector machines: each
step's loop structure is fed to a
:class:`~repro.machine.counters.HardwareCounters` instance, which
strip-mines the trip counts into the target machine's vector registers.
The derived AVL/VOR can then be compared directly against both the
performance model and Table 3's measured values (tests do exactly that).
"""

from __future__ import annotations

from ...machine.counters import HardwareCounters
from ...machine.spec import MachineSpec
from .profile import (
    COLLISION_FLOPS_PER_POINT,
    COLLISION_WORDS_PER_POINT,
    STREAM_FLOPS_PER_POINT,
    STREAM_WORDS_PER_POINT,
)
from .solver import LBMHDSolver


def counters_for(machine: MachineSpec) -> HardwareCounters:
    """A counter set strip-mining at the machine's vector length."""
    return HardwareCounters(vector_length=machine.vector_length)


def record_step(solver: LBMHDSolver, counters: HardwareCounters,
                nsteps: int = 1) -> None:
    """Account ``nsteps`` of the solver's loop structure.

    The vectorized inner loop runs over the x extent of the (sub)domain
    (§3.1), once per y row, for both the collision and stream phases.
    """
    ny, nx = solver.f.shape[-2:]
    counters.record_loop(
        trip=nx, ops_per_iter=COLLISION_FLOPS_PER_POINT,
        words_per_iter=COLLISION_WORDS_PER_POINT,
        phase="collision", repeats=ny * nsteps)
    counters.record_loop(
        trip=nx, ops_per_iter=STREAM_FLOPS_PER_POINT,
        words_per_iter=STREAM_WORDS_PER_POINT,
        phase="stream", repeats=ny * nsteps)


def run_instrumented(solver: LBMHDSolver, machine: MachineSpec,
                     nsteps: int, registry=None) -> HardwareCounters:
    """Advance the solver while accounting its counters.

    Returns the counter set; the solver state advances as usual (the
    instrumentation is free-standing bookkeeping, like the real tools).
    With ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`),
    the counters are also published into the shared metrics namespace.
    """
    counters = counters_for(machine)
    for _ in range(nsteps):
        solver.step(1)
        record_step(solver, counters, 1)
    if registry is not None:
        feed_registry(counters, registry)
    return counters


def feed_registry(counters: HardwareCounters, registry) -> None:
    """Publish LBMHD hardware counters into a shared metrics registry."""
    registry.ingest_counters(counters, prefix="lbmhd.hw")
