"""BGK collision step for LBMHD.

A collision step involves data local to each spatial point only (§3),
relaxing the distributions toward the Dellar equilibria:

``f <- f + (f_eq - f)/tau``   (viscosity  nu  = cs2 (tau  - 1/2))
``g <- g + (g_eq - g)/tau_m`` (resistivity eta = cs2 (tau_m - 1/2))
"""

from __future__ import annotations

import numpy as np

from .equilibrium import f_equilibrium, g_equilibrium, moments
from .lattice import Lattice


def collide(f: np.ndarray, g: np.ndarray, lattice: Lattice,
            tau: float, tau_m: float) -> tuple[np.ndarray, np.ndarray]:
    """One BGK collision; returns new (f, g).  Pointwise and local."""
    if tau <= 0.5 or tau_m <= 0.5:
        raise ValueError("relaxation times must exceed 1/2 for stability")
    rho, u, B = moments(f, g, lattice)
    feq = f_equilibrium(rho, u, B, lattice)
    geq = g_equilibrium(u, B, lattice)
    f_new = f + (feq - f) / tau
    g_new = g + (geq - g) / tau_m
    return f_new, g_new


def viscosity(tau: float, lattice: Lattice) -> float:
    """Kinematic viscosity implied by ``tau`` on this lattice."""
    return lattice.cs2 * (tau - 0.5)


def resistivity(tau_m: float, lattice: Lattice) -> float:
    """Magnetic resistivity implied by ``tau_m`` on this lattice."""
    return lattice.cs2 * (tau_m - 0.5)
