"""Dellar-scheme equilibria for MHD lattice Boltzmann.

The scheme [Dellar, J. Comput. Phys. 179 (2002); refs. 9, 16, 17 of the
paper] evolves scalar distributions ``f_i`` for the fluid and vector-valued
distributions ``g_i`` for the magnetic field:

* hydrodynamic moments: density ``rho = sum_i f_i``, momentum
  ``m = sum_i f_i xi_i``;
* the equilibrium second moment carries the total (fluid + Maxwell)
  stress ``Pi = rho u u + (B.B/2) I - B B``, which is how the Lorentz
  force enters the momentum equation;
* magnetic moments: ``B = sum_i g_i``; the equilibrium first moment
  carries the induction electric field ``u B - B u``.

Arrays are laid out distribution-first: ``f`` is (Q, ny, nx) and ``g``
is (Q, 2, ny, nx).
"""

from __future__ import annotations

import numpy as np

from .lattice import Lattice


def moments(f: np.ndarray, g: np.ndarray, lattice: Lattice
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Macroscopic fields (rho, u, B) from distributions."""
    xi = lattice.velocities
    rho = f.sum(axis=0)
    m = np.einsum("qyx,qa->ayx", f, xi)
    B = g.sum(axis=0)
    u = m / rho
    return rho, u, B


def f_equilibrium(rho: np.ndarray, u: np.ndarray, B: np.ndarray,
                  lattice: Lattice) -> np.ndarray:
    """Fluid equilibrium distributions, shape (Q, ny, nx).

    ``f_i^eq = w_i [rho + xi.m/cs2 + (xi xi - cs2 I):Pi / (2 cs4)]`` with
    ``Pi = rho u u + (B.B/2) I - B B``.
    """
    w, xi, cs2 = lattice.weights, lattice.velocities, lattice.cs2
    m = rho[None] * u
    b2 = (B * B).sum(axis=0)
    # Pi_ab, symmetric 2x2 per point.
    pi = rho[None, None] * u[None, :] * u[:, None] \
        - B[None, :] * B[:, None]
    pi[0, 0] += 0.5 * b2
    pi[1, 1] += 0.5 * b2

    xim = np.einsum("qa,ayx->qyx", xi, m)
    # (xi_a xi_b - cs2 d_ab) : Pi
    xipix = np.einsum("qa,qb,abyx->qyx", xi, xi, pi)
    trpi = pi[0, 0] + pi[1, 1]
    quad = xipix - cs2 * trpi[None]
    return w[:, None, None] * (
        rho[None] + xim / cs2 + quad / (2.0 * cs2 * cs2))


def g_equilibrium(u: np.ndarray, B: np.ndarray,
                  lattice: Lattice) -> np.ndarray:
    """Magnetic equilibrium distributions, shape (Q, 2, ny, nx).

    ``g_ia^eq = w_i [B_a + xi.(u B_a - B u_a)/cs2]``; the antisymmetric
    tensor ``u B - B u`` is the induction term of Faraday's law.
    """
    w, xi, cs2 = lattice.weights, lattice.velocities, lattice.cs2
    # E_ba = u_b B_a - B_b u_a   (contract xi over b)
    induction = u[:, None] * B[None, :] - B[:, None] * u[None, :]
    xiE = np.einsum("qb,bayx->qayx", xi, induction)
    return w[:, None, None, None] * (B[None] + xiE / cs2)


def check_equilibrium_moments(rho, u, B, lattice, atol=1e-10) -> None:
    """Assert the defining moment identities (used by tests)."""
    feq = f_equilibrium(rho, u, B, lattice)
    geq = g_equilibrium(u, B, lattice)
    xi = lattice.velocities
    np.testing.assert_allclose(feq.sum(axis=0), rho, atol=atol)
    np.testing.assert_allclose(
        np.einsum("qyx,qa->ayx", feq, xi), rho[None] * u, atol=atol)
    np.testing.assert_allclose(geq.sum(axis=0), B, atol=atol)
    b2 = (B * B).sum(axis=0)
    pi = rho[None, None] * u[None, :] * u[:, None] - B[None, :] * B[:, None]
    pi[0, 0] += 0.5 * b2
    pi[1, 1] += 0.5 * b2
    stress = np.einsum("qyx,qa,qb->abyx", feq, xi, xi)
    expect = pi.copy()
    expect[0, 0] += lattice.cs2 * rho
    expect[1, 1] += lattice.cs2 * rho
    np.testing.assert_allclose(stress, expect, atol=atol)
