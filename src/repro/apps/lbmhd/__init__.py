"""LBMHD: 2D magnetohydrodynamic lattice-Boltzmann (plasma physics, §3)."""

from . import instrumentation
from .collision import collide, resistivity, viscosity
from .initial import cross_current_sheets, orszag_tang
from .lattice import D2Q9, OCT9, Lattice, stream_all
from .parallel import run_parallel
from .profile import LBMHDConfig, build_profile, table3_configs
from .solver import Diagnostics, LBMHDSolver

__all__ = [
    "instrumentation",
    "D2Q9", "OCT9", "Diagnostics", "LBMHDConfig", "LBMHDSolver", "Lattice",
    "build_profile", "collide", "cross_current_sheets", "orszag_tang",
    "resistivity", "run_parallel", "stream_all", "table3_configs",
    "viscosity",
]
