"""Initial conditions for LBMHD.

Two families:

* :func:`cross_current_sheets` — "simple initial conditions ... decaying
  to form current sheets": two cross-shaped current structures whose decay
  is Figure 1 of the paper;
* :func:`orszag_tang` — the standard Orszag–Tang vortex, the classic 2D
  MHD decay benchmark (used for physics validation).

All return ``(rho, u, B)`` on a periodic ``(ny, nx)`` grid, with arrays
shaped ``(ny, nx)`` for rho and ``(2, ny, nx)`` for vectors.
"""

from __future__ import annotations

import numpy as np


def _grid(ny: int, nx: int) -> tuple[np.ndarray, np.ndarray]:
    y = np.linspace(0.0, 2.0 * np.pi, ny, endpoint=False)
    x = np.linspace(0.0, 2.0 * np.pi, nx, endpoint=False)
    return np.meshgrid(y, x, indexing="ij")


def orszag_tang(ny: int, nx: int, *, mach: float = 0.1,
                rho0: float = 1.0) -> tuple[np.ndarray, np.ndarray,
                                            np.ndarray]:
    """Orszag–Tang vortex scaled to lattice units (low Mach)."""
    if ny < 4 or nx < 4:
        raise ValueError("grid too small")
    yy, xx = _grid(ny, nx)
    rho = np.full((ny, nx), rho0)
    u = mach * np.stack([-np.sin(yy), np.sin(xx)])
    b0 = mach
    B = b0 * np.stack([-np.sin(yy), np.sin(2.0 * xx)])
    return rho, u, B


def cross_current_sheets(ny: int, nx: int, *, amplitude: float = 0.08,
                         width: float = 0.5, rho0: float = 1.0
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two cross-shaped current structures (Figure 1 initial state).

    The magnetic field is built from a vector potential
    ``A_z = sum of two crosses``; ``B = (dA/dy, -dA/dx)`` guarantees the
    initial field is divergence-free.  Each cross is the union of a
    horizontal and a vertical Gaussian bar; the current density
    ``j_z = -lap(A)`` then shows two cross-shaped structures which decay
    resistively into current sheets.
    """
    if ny < 8 or nx < 8:
        raise ValueError("grid too small")
    yy, xx = _grid(ny, nx)

    def periodic_gauss(t: np.ndarray, center: float) -> np.ndarray:
        # Periodic Gaussian bump via the minimum image distance.
        d = np.angle(np.exp(1j * (t - center)))
        return np.exp(-(d / width) ** 2)

    def cross(cy: float, cx: float) -> np.ndarray:
        return periodic_gauss(yy, cy) + periodic_gauss(xx, cx)

    a = amplitude * (cross(np.pi * 0.75, np.pi * 0.75)
                     - cross(np.pi * 1.5, np.pi * 1.5))
    # B = curl(A z-hat): Bx = dA/dy, By = -dA/dx (spectral derivative for a
    # clean divergence-free field).
    a_hat = np.fft.rfft2(a)
    ky = np.fft.fftfreq(ny, d=1.0 / ny)[:, None]
    kx = np.fft.rfftfreq(nx, d=1.0 / nx)[None, :]
    bx = np.fft.irfft2(1j * ky * a_hat, s=a.shape)
    by = np.fft.irfft2(-1j * kx * a_hat, s=a.shape)
    rho = np.full((ny, nx), rho0)
    u = np.zeros((2, ny, nx))
    return rho, u, np.stack([bx, by])
