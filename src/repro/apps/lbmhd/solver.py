"""Serial LBMHD solver and diagnostics.

The reference implementation of the simulation loop: BGK collision (local)
followed by lattice streaming (communication in the parallel version).
The parallel driver in :mod:`repro.apps.lbmhd.parallel` reproduces this
solver exactly on block-decomposed subdomains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .collision import collide, resistivity, viscosity
from .equilibrium import f_equilibrium, g_equilibrium, moments
from .fused import FusedStepper
from .lattice import D2Q9, Lattice, stream_all


@dataclass
class Diagnostics:
    """Conserved/monitored quantities at one time step."""

    step: int
    mass: float
    momentum: tuple[float, float]
    magnetic_flux: tuple[float, float]
    kinetic_energy: float
    magnetic_energy: float
    max_divb: float

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.magnetic_energy


class LBMHDSolver:
    """2D magnetohydrodynamic lattice-Boltzmann solver.

    Parameters mirror the physics of §3: ``tau`` sets the fluid viscosity
    and ``tau_m`` the resistivity.  ``lattice`` selects exact square
    streaming (:data:`~repro.apps.lbmhd.lattice.D2Q9`) or the paper's
    interpolating octagonal lattice (:data:`~repro.apps.lbmhd.lattice.
    OCT9`).
    """

    def __init__(self, rho: np.ndarray, u: np.ndarray, B: np.ndarray,
                 *, lattice: Lattice = D2Q9, tau: float = 0.8,
                 tau_m: float = 0.8, fused: bool = False):
        rho = np.asarray(rho, dtype=np.float64)
        if rho.ndim != 2:
            raise ValueError("rho must be 2-D (ny, nx)")
        if u.shape != (2, *rho.shape) or B.shape != (2, *rho.shape):
            raise ValueError("u and B must have shape (2, ny, nx)")
        self.lattice = lattice
        self.tau = tau
        self.tau_m = tau_m
        self.f = f_equilibrium(rho, np.asarray(u, dtype=np.float64),
                               np.asarray(B, dtype=np.float64), lattice)
        self.g = g_equilibrium(np.asarray(u, dtype=np.float64),
                               np.asarray(B, dtype=np.float64), lattice)
        self._stepper = (FusedStepper(lattice, tau, tau_m)
                         if fused else None)
        self.step_count = 0

    # -- simulation ------------------------------------------------------------
    def step(self, nsteps: int = 1) -> None:
        """Advance ``nsteps`` collision+stream cycles."""
        for _ in range(nsteps):
            if self._stepper is not None:
                self._stepper.collide(self.f, self.g)
                self.f = self._stepper.stream(self.f, "f")
                self.g = self._stepper.stream(self.g, "g")
            else:
                self.f, self.g = collide(self.f, self.g, self.lattice,
                                         self.tau, self.tau_m)
                self.f = stream_all(self.f, self.lattice)
                self.g = stream_all(self.g, self.lattice)
            self.step_count += 1

    # -- fields ----------------------------------------------------------------
    @property
    def fields(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return moments(self.f, self.g, self.lattice)

    def current_density(self) -> np.ndarray:
        """z-component of the current, ``j = dBy/dx - dBx/dy`` (Fig. 1)."""
        _, _, B = self.fields
        dby_dx = 0.5 * (np.roll(B[1], -1, axis=1) - np.roll(B[1], 1, axis=1))
        dbx_dy = 0.5 * (np.roll(B[0], -1, axis=0) - np.roll(B[0], 1, axis=0))
        return dby_dx - dbx_dy

    def divergence_b(self) -> np.ndarray:
        _, _, B = self.fields
        dbx_dx = 0.5 * (np.roll(B[0], -1, axis=1) - np.roll(B[0], 1, axis=1))
        dby_dy = 0.5 * (np.roll(B[1], -1, axis=0) - np.roll(B[1], 1, axis=0))
        return dbx_dx + dby_dy

    def diagnostics(self) -> Diagnostics:
        rho, u, B = self.fields
        m = rho[None] * u
        return Diagnostics(
            step=self.step_count,
            mass=float(rho.sum()),
            momentum=(float(m[0].sum()), float(m[1].sum())),
            magnetic_flux=(float(B[0].sum()), float(B[1].sum())),
            kinetic_energy=float(0.5 * (rho * (u * u).sum(axis=0)).sum()),
            magnetic_energy=float(0.5 * (B * B).sum()),
            max_divb=float(np.abs(self.divergence_b()).max()),
        )

    @property
    def viscosity(self) -> float:
        return viscosity(self.tau, self.lattice)

    @property
    def resistivity(self) -> float:
        return resistivity(self.tau_m, self.lattice)

    def run_with_history(self, nsteps: int, every: int = 1
                         ) -> list[Diagnostics]:
        """Advance and record diagnostics every ``every`` steps."""
        if every < 1:
            raise ValueError("every must be >= 1")
        out = [self.diagnostics()]
        for _ in range(0, nsteps, every):
            self.step(min(every, nsteps))
            out.append(self.diagnostics())
        return out
