"""Fused collision+stream kernels for LBMHD (the measured fast path).

The naive step (:func:`~repro.apps.lbmhd.collision.collide` followed by
:func:`~repro.apps.lbmhd.lattice.stream_all`) allocates more than a dozen
full-lattice temporaries per step — exactly the memory traffic the paper
says sets sustained performance (§2).  :class:`FusedStepper` computes the
same step into preallocated scratch:

* both equilibria collapse to small dense matmuls: every ``f_i^eq`` is
  *linear* in the six moment fields ``[rho, m_x, m_y, Pi_xx, Pi_xy,
  Pi_yy]`` and every ``g_ia^eq`` is linear in ``[W, B_x, B_y]`` with
  ``W = u_x B_y - u_y B_x`` (the only independent component of the
  antisymmetric induction tensor), so ``feq = Cf @ M`` and
  ``geq = Cg @ M2`` with precomputed (Q, 6) / (2Q, 3) coefficient
  matrices — one BLAS call each instead of a chain of broadcast einsums;
* the BGK relaxation is applied **in place** on ``f``/``g`` (which may be
  interior views of halo-extended arrays);
* streaming double-buffers: each call writes into a retained spare array
  and recycles the previous one, so steady-state stepping performs no
  per-step allocations.

The matmul regroups the reference kernels' floating-point sums (and
builds ``Pi`` from ``m_a u_b`` instead of ``rho u_a u_b``), so agreement
with the naive path is to rounding error, not bitwise; equivalence is
test-enforced at rtol <= 1e-12 (observed ~1e-15).  Fused parallel vs
fused serial remains bitwise, since both run this same kernel.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .lattice import (_CUBIC_INODES, _CUBIC_NODES, Lattice,
                      lagrange_weights)


def _roll_into(src: np.ndarray, dy: int, dx: int, out: np.ndarray) -> None:
    """``out = np.roll(src, (dy, dx), axis=(-2, -1))`` without the temp."""
    ny, nx = src.shape[-2], src.shape[-1]
    dy %= ny
    dx %= nx
    out[..., dy:, dx:] = src[..., :ny - dy, :nx - dx]
    if dx:
        out[..., dy:, :dx] = src[..., :ny - dy, nx - dx:]
    if dy:
        out[..., :dy, dx:] = src[..., ny - dy:, :nx - dx]
    if dy and dx:
        out[..., :dy, :dx] = src[..., ny - dy:, nx - dx:]


class FusedStepper:
    """Scratch-reusing LBMHD step kernels (rtol <= 1e-12 vs the naive path).

    One instance per (lattice, tau, tau_m, field shape) stream of steps;
    scratch is sized on first use and reused for every following step.
    """

    def __init__(self, lattice: Lattice, tau: float, tau_m: float):
        if tau <= 0.5 or tau_m <= 0.5:
            raise ValueError("relaxation times must exceed 1/2 for stability")
        self.lattice = lattice
        self.tau = tau
        self.tau_m = tau_m
        q, w, xi, cs2 = (lattice.q, lattice.weights, lattice.velocities,
                         lattice.cs2)
        # feq_q = Cf[q] . [rho, m_x, m_y, Pi_xx, Pi_xy, Pi_yy]: expand
        # w (rho + xi.m/cs2 + ((xi_a xi_b - cs2 d_ab):Pi)/(2 cs4)).
        cs4_2 = 2.0 * cs2 * cs2
        cf = np.empty((q, 6))
        cf[:, 0] = w
        cf[:, 1] = w * xi[:, 0] / cs2
        cf[:, 2] = w * xi[:, 1] / cs2
        cf[:, 3] = w * (xi[:, 0] ** 2 - cs2) / cs4_2
        cf[:, 4] = w * (2.0 * xi[:, 0] * xi[:, 1]) / cs4_2
        cf[:, 5] = w * (xi[:, 1] ** 2 - cs2) / cs4_2
        self._cf = cf
        # geq_{q,a} = Cg[2q+a] . [W, B_x, B_y]: the induction tensor
        # u_b B_a - B_b u_a is antisymmetric, so xi.(uB - Bu) reduces to
        # (-xi_y W, +xi_x W) with W = u_x B_y - u_y B_x.
        cg = np.zeros((2 * q, 3))
        cg[0::2, 0] = -w * xi[:, 1] / cs2
        cg[0::2, 1] = w
        cg[1::2, 0] = w * xi[:, 0] / cs2
        cg[1::2, 2] = w
        self._cg = cg
        # rho/m moment matrix: [1; xi_x; xi_y] per population.
        self._am = np.vstack([np.ones(q), xi[:, 0], xi[:, 1]])
        self._nodes = _CUBIC_INODES
        self._lw: dict[int, np.ndarray] = {}
        self._shape: tuple[int, int] | None = None
        self._spare: dict[str, np.ndarray] = {}
        self._scratch: dict[tuple, np.ndarray] = {}

    def _weights(self, i: int) -> np.ndarray:
        """Cached cubic Lagrange weights for fractional direction ``i``."""
        w = self._lw.get(i)
        if w is None:
            w = self._lw[i] = lagrange_weights(
                _CUBIC_NODES, -self.lattice.fractions[i])
        return w

    # -- scratch management ------------------------------------------------
    def _ensure_collide(self, shape: tuple[int, int]) -> None:
        if self._shape == shape:
            return
        q = self.lattice.q
        ny, nx = shape
        n = ny * nx
        # Moment stack [rho, m_x, m_y, Pi_xx, Pi_xy, Pi_yy] and its flat
        # view (the matmul operand); contiguous by construction.
        self._mom = np.empty((6, ny, nx))
        self._mom_flat = self._mom.reshape(6, n)
        self._u = np.empty((2, ny, nx))
        # M2 stack [W, B_x, B_y]: B is summed directly into rows 1:3.
        self._m2 = np.empty((3, ny, nx))
        self._m2_flat = self._m2.reshape(3, n)
        self._tmp = np.empty((ny, nx))
        self._feq = np.empty((q, ny, nx))
        self._feq_flat = self._feq.reshape(q, n)
        self._geq = np.empty((q, 2, ny, nx))
        self._geq_flat = self._geq.reshape(2 * q, n)
        self._fc = np.empty((q, ny, nx))
        self._shape = shape

    def _temp(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape)
            self._scratch[key] = buf
        return buf

    # -- collision ---------------------------------------------------------
    def collide(self, f: np.ndarray, g: np.ndarray) -> None:
        """In-place BGK collision on ``f`` (Q, ny, nx) / ``g`` (Q, 2, ny, nx).

        Moments and equilibria are computed by the precomputed-coefficient
        matmuls described in the module docstring; agreement with
        :func:`collision.collide` over the reference equilibria is to
        rounding error (rtol <= 1e-12 enforced by tests).
        """
        ny, nx = f.shape[-2:]
        q = self.lattice.q
        self._ensure_collide((ny, nx))
        n = ny * nx
        # The matmul needs a (Q, n) operand; halo-interior views are
        # strided, so stage them through retained scratch.
        if f.flags["C_CONTIGUOUS"]:
            fl = f.reshape(q, n)
        else:
            np.copyto(self._fc, f)
            fl = self._fc.reshape(q, n)
        mom, u, m2, tmp = self._mom, self._u, self._m2, self._tmp
        # [rho, m_x, m_y] in one small-matrix product.
        np.matmul(self._am, fl, out=self._mom_flat[:3])
        rho, mx, my = mom[0], mom[1], mom[2]
        g.sum(axis=0, out=m2[1:3])
        bx, by = m2[1], m2[2]
        np.divide(mom[1:3], rho[None], out=u)
        # W = u_x B_y - u_y B_x.
        np.multiply(u[0], by, out=m2[0])
        np.multiply(u[1], bx, out=tmp)
        m2[0] -= tmp
        # Pi rows: Pi_ab = m_a u_b - B_a B_b + (B.B/2) d_ab, regrouped so
        # the diagonal needs only 0.5 (B_y^2 - B_x^2).
        pxx, pxy, pyy = mom[3], mom[4], mom[5]
        np.multiply(by, by, out=pxx)
        np.multiply(bx, bx, out=tmp)
        pxx -= tmp
        pxx *= 0.5
        np.negative(pxx, out=pyy)
        np.multiply(mx, u[0], out=tmp)
        pxx += tmp
        np.multiply(my, u[1], out=tmp)
        pyy += tmp
        np.multiply(mx, u[1], out=pxy)
        np.multiply(bx, by, out=tmp)
        pxy -= tmp
        # Equilibria: two dense matmuls against the moment stacks.
        np.matmul(self._cf, self._mom_flat, out=self._feq_flat)
        np.matmul(self._cg, self._m2_flat, out=self._geq_flat)
        # relaxation, in place: f += (feq - f)/tau
        feq = self._feq
        feq -= f
        feq /= self.tau
        f += feq
        geq = self._geq
        geq -= g
        geq /= self.tau_m
        g += geq

    # -- streaming ---------------------------------------------------------
    def stream(self, fields: np.ndarray, key: str) -> np.ndarray:
        """Periodic streaming into a retained spare buffer.

        Returns the streamed array and keeps ``fields`` as the next spare
        (double buffering) — callers must replace their reference with the
        return value and stop using the argument.
        """
        lat = self.lattice
        out = self._spare.get(key)
        if out is None or out.shape != fields.shape:
            out = np.empty_like(fields)
        for i in range(lat.q):
            dx, dy = lat.shifts[i]
            frac = lat.fractions[i]
            if dx == 0 and dy == 0:
                out[i][...] = fields[i]
            elif frac == 1.0:
                _roll_into(fields[i], dy, dx, out[i])
            else:
                # Stack the four upwind samples once, reduce with a
                # single einsum (one numpy call instead of nine).
                rolls = self._temp(f"{key}.rolls",
                                   (len(self._nodes),) + fields[i].shape)
                for j, node in enumerate(self._nodes):
                    _roll_into(fields[i], -node * dy, -node * dx,
                               rolls[j])
                np.einsum("n...,n->...", rolls, self._weights(i),
                          out=out[i])
        self._spare[key] = fields
        return out

    def stream_halo(self, ext: np.ndarray, h: int,
                    out: np.ndarray) -> np.ndarray:
        """Streaming on a halo-extended array into preallocated ``out``.

        The fractional directions read their four cubic-stencil samples
        through a zero-copy strided window over the extended array (the
        samples sit a constant stride apart along the streaming
        direction), reduced by one einsum per direction.  Bitwise equal
        to :func:`~repro.apps.lbmhd.parallel.stream_extended` — and to
        :meth:`stream` on the equivalent periodic global array.
        """
        lat = self.lattice
        ly, lx = ext.shape[-2] - 2 * h, ext.shape[-1] - 2 * h
        nodes = self._nodes
        for i in range(lat.q):
            dx, dy = lat.shifts[i]
            frac = lat.fractions[i]
            ei = ext[i]
            if dx == 0 and dy == 0:
                out[i] = ei[..., h:h + ly, h:h + lx]
            elif frac == 1.0:
                out[i] = ei[..., h - dy:h - dy + ly,
                            h - dx:h - dx + lx]
            else:
                n0 = int(nodes[0])
                s0 = ei[..., h + n0 * dy:h + n0 * dy + ly,
                        h + n0 * dx:h + n0 * dx + lx]
                step = dy * ei.strides[-2] + dx * ei.strides[-1]
                win = as_strided(s0, shape=(len(nodes),) + s0.shape,
                                 strides=(step,) + s0.strides)
                np.einsum("n...,n->...", win, self._weights(i),
                          out=out[i])
        return out
