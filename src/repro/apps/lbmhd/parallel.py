"""Block-parallel LBMHD on the simulated SPMD runtime.

The 2D spatial grid is block distributed over a 2D processor grid (§3);
each step is a local BGK collision followed by a halo exchange and the
streaming update.  Two communication paths are implemented, mirroring the
paper's ports:

* **MPI path** — non-contiguous boundary data are packed into temporary
  buffers to reduce the number of send/receive messages (one message per
  neighbour carrying both f and g strips);
* **CAF path** — the distribution arrays are co-arrays and boundary
  exchange is performed with direct one-sided puts (no packing: separate,
  smaller messages for f and g), as in the X1 Co-Array Fortran port.

Both paths produce bit-identical fields to the serial solver, which the
integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...resilience.checkpoint import Checkpointer
from ...resilience.health import HealthConfig, HealthMonitor
from ...resilience.online import OnlineRunner
from ...resilience.supervisor import RecoveryPolicy, ResilientJob
from ...runtime import (
    BackendError,
    BlockND,
    CoArray,
    Comm,
    FaultInjector,
    HaloGuard,
    ParallelJob,
    ProcessorGrid,
    RepairRecord,
    Transport,
)
from .collision import collide
from .equilibrium import f_equilibrium, g_equilibrium, moments
from .fused import FusedStepper
from .lattice import _CUBIC_NODES, D2Q9, Lattice, lagrange_weights

#: the 8 halo directions (dy, dx)
_DIRS: tuple[tuple[int, int], ...] = (
    (-1, 0), (1, 0), (0, -1), (0, 1),
    (-1, -1), (-1, 1), (1, -1), (1, 1))


def halo_width(lattice: Lattice) -> int:
    """Halo cells needed per side: 1 for exact streaming, 2 when the cubic
    interpolation stencil reaches two cells upwind."""
    return 1 if lattice.is_exact else 2


def _side_slices(side: int, h: int, n: int, *, halo: bool) -> slice:
    """Slice along one axis for a strip on ``side`` (-1 low, +1 high, 0 all).

    ``halo=False`` selects the interior strip adjacent to that side;
    ``halo=True`` selects the halo region on that side.  Interior cells
    live at ``[h, h+n)`` of an extended extent ``n + 2h``.
    """
    if side == 0:
        return slice(h, h + n)
    if side == -1:
        return slice(0, h) if halo else slice(h, 2 * h)
    return slice(h + n, h + n + h) if halo else slice(n, h + n)


def _region(dy: int, dx: int, h: int, ly: int, lx: int, *,
            halo: bool) -> tuple[slice, slice]:
    return (_side_slices(dy, h, ly, halo=halo),
            _side_slices(dx, h, lx, halo=halo))


def stream_extended(ext: np.ndarray, lattice: Lattice, h: int,
                    out: np.ndarray | None = None,
                    scratch: np.ndarray | None = None) -> np.ndarray:
    """Streaming on a halo-extended array; returns the interior result.

    ``ext`` has shape (Q, ..., ly+2h, lx+2h) with valid halos.  Equivalent
    to global periodic streaming followed by cropping to this block.
    ``out`` (and, for interpolating lattices, ``scratch``) may be passed
    to reuse buffers across steps; results are identical either way.
    """
    q = ext.shape[0]
    ly, lx = ext.shape[-2] - 2 * h, ext.shape[-1] - 2 * h
    if out is None:
        out = np.empty(ext.shape[:-2] + (ly, lx), dtype=ext.dtype)

    def shifted(i: int, oy: int, ox: int) -> np.ndarray:
        return ext[i][..., h + oy:h + oy + ly, h + ox:h + ox + lx]

    for i in range(q):
        dx, dy = lattice.shifts[i]
        frac = lattice.fractions[i]
        if dx == 0 and dy == 0:
            out[i] = shifted(i, 0, 0)
        elif frac == 1.0:
            # out(x) = f(x - c): pull from the upwind offset.
            out[i] = shifted(i, -dy, -dx)
        else:
            weights = lagrange_weights(_CUBIC_NODES, -frac)
            if scratch is None:
                scratch = np.empty(ext.shape[1:-2] + (ly, lx),
                                   dtype=ext.dtype)
            out[i][...] = 0.0
            for node, w in zip(_CUBIC_NODES.astype(np.int64), weights):
                np.multiply(shifted(i, node * dy, node * dx), w,
                            out=scratch)
                out[i] += scratch
    return out


@dataclass
class RankResult:
    """Per-rank output of a parallel run."""

    bounds: tuple[tuple[int, int], tuple[int, int]]
    rho: np.ndarray
    u: np.ndarray
    B: np.ndarray
    mass: float
    energy: float


class _RankState:
    """One rank's extended distribution arrays and neighbour table."""

    def __init__(self, comm: Comm, decomp: BlockND, lattice: Lattice,
                 rho: np.ndarray, u: np.ndarray, B: np.ndarray,
                 tau: float, tau_m: float):
        self.comm = comm
        self.lattice = lattice
        self.tau, self.tau_m = tau, tau_m
        self.h = halo_width(lattice)
        self.bounds = decomp.bounds(comm.rank)
        (y0, y1), (x0, x1) = self.bounds
        self.ly, self.lx = y1 - y0, x1 - x0
        if self.ly < self.h or self.lx < self.h:
            raise ValueError(
                f"subdomain {self.ly}x{self.lx} smaller than halo {self.h}")
        loc = (slice(y0, y1), slice(x0, x1))
        rho_l = rho[loc]
        u_l = u[(slice(None),) + loc]
        B_l = B[(slice(None),) + loc]
        self.f = self._extend(f_equilibrium(rho_l, u_l, B_l, lattice))
        self.g = self._extend(g_equilibrium(u_l, B_l, lattice))
        grid = decomp.grid
        coords = grid.coords(comm.rank)
        self.neighbors = {
            (dy, dx): grid.rank((coords[0] + dy, coords[1] + dx))
            for dy, dx in _DIRS}

    def _extend(self, interior: np.ndarray) -> np.ndarray:
        h = self.h
        ext = np.zeros(interior.shape[:-2]
                       + (self.ly + 2 * h, self.lx + 2 * h))
        ext[..., h:h + self.ly, h:h + self.lx] = interior
        return ext

    # -- views ------------------------------------------------------------
    @property
    def interior(self) -> tuple[slice, slice]:
        return (slice(self.h, self.h + self.ly),
                slice(self.h, self.h + self.lx))

    def strip(self, arr: np.ndarray, dy: int, dx: int) -> np.ndarray:
        ys, xs = _region(dy, dx, self.h, self.ly, self.lx, halo=False)
        return arr[..., ys, xs]

    def halo_region(self, dy: int, dx: int) -> tuple[slice, slice]:
        return _region(dy, dx, self.h, self.ly, self.lx, halo=True)


def _pack_strip(strip: np.ndarray, pool) -> np.ndarray:
    """Pack a boundary strip into a pooled (or fresh) send buffer."""
    if pool is None:
        return strip.copy()
    buf = pool.take(strip.shape, strip.dtype)
    np.copyto(buf, strip)
    return buf


def _exchange_mpi(state: _RankState) -> None:
    """Packed-buffer halo exchange: one message per neighbour (§3.1).

    With the zero-copy transport, packing buffers come from the shared
    :class:`~repro.runtime.buffers.BufferPool` and are recycled by the
    receiver once unpacked — steady-state stepping allocates nothing on
    the halo path.  Logical traffic records are identical either way.
    """
    comm = state.comm
    tp = comm.transport
    pool = tp.pool if tp.zero_copy else None
    for k, (dy, dx) in enumerate(_DIRS):
        nb = state.neighbors[(dy, dx)]
        if nb == comm.rank:
            # Periodic wrap onto self (grid dimension 1 along this axis):
            # halo on side d holds this rank's own strip from side -d.
            ys, xs = state.halo_region(dy, dx)
            state.f[..., ys, xs] = state.strip(state.f, -dy, -dx)
            state.g[..., ys, xs] = state.strip(state.g, -dy, -dx)
        else:
            payload = (_pack_strip(state.strip(state.f, dy, dx), pool),
                       _pack_strip(state.strip(state.g, dy, dx), pool))
            comm.send(payload, dest=nb, tag=k)
    for k, (dy, dx) in enumerate(_DIRS):
        nb = state.neighbors[(dy, dx)]
        if nb == comm.rank:
            continue
        opp = _DIRS.index((-dy, -dx))
        f_strip, g_strip = comm.recv(source=nb, tag=opp)
        ys, xs = state.halo_region(dy, dx)
        state.f[..., ys, xs] = f_strip
        state.g[..., ys, xs] = g_strip
        if pool is not None:
            pool.give(f_strip)
            pool.give(g_strip)


class _CafImages:
    """Co-array images of the extended f and g arrays."""

    def __init__(self, state: _RankState):
        self.ca_f = CoArray(state.comm, state.f.shape, name="f")
        self.ca_g = CoArray(state.comm, state.g.shape, name="g")
        self.ca_f.local[...] = state.f
        self.ca_g.local[...] = state.g
        state.f = self.ca_f.local
        state.g = self.ca_g.local
        state.comm.barrier()


def _exchange_caf(state: _RankState, images: _CafImages) -> None:
    """One-sided halo exchange: direct puts, no packing (§3.1 CAF port)."""
    images.ca_f.sync()
    for dy, dx in _DIRS:
        nb = state.neighbors[(dy, dx)]
        ys, xs = _region(-dy, -dx, state.h, state.ly, state.lx, halo=True)
        key = (Ellipsis, ys, xs)
        if nb == state.comm.rank:
            state.f[key] = state.strip(state.f, dy, dx)
            state.g[key] = state.strip(state.g, dy, dx)
        else:
            images.ca_f.put(nb, key, state.strip(state.f, dy, dx))
            images.ca_g.put(nb, key, state.strip(state.g, dy, dx))
    images.ca_f.sync()


def _lbmhd_rank_body(comm: Comm, rho, u, B, lattice, tau, tau_m,
                     use_caf, fused, nsteps, decomp, nprocs,
                     injector, checkpoint, checkpoint_every,
                     health, policy, on_shrink) -> RankResult:
    """One rank's full LBMHD program (shared by both backends)."""
    stepper = FusedStepper(lattice, tau, tau_m) if fused else None
    monitor = HealthMonitor(comm, health) if health is not None \
        else None
    tracer = comm.transport.tracer

    def build(dc: BlockND):
        st = _RankState(comm, dc, lattice, rho, u, B, tau, tau_m)
        im = _CafImages(st) if use_caf else None
        gds: list[HaloGuard] = []
        if comm.transport.sanitize:
            # One guard per distribution: poison the halo ring at
            # step start, prove the exchange rewrote all 8 strips,
            # and fail loudly if streaming runs before the exchange.
            for label, arr in (("lbmhd.f", st.f), ("lbmhd.g", st.g)):
                guard = HaloGuard(label)
                for dy, dx in _DIRS:
                    ys, xs = _region(dy, dx, st.h, st.ly, st.lx,
                                     halo=True)
                    guard.watch(arr, (Ellipsis, ys, xs))
                gds.append(guard)
        fo = go = None
        if fused:
            fo = np.empty(st.f.shape[:-2] + (st.ly, st.lx))
            go = np.empty(st.g.shape[:-2] + (st.ly, st.lx))
        return st, im, gds, fo, go

    state, images, guards, f_out, g_out = build(decomp)

    def save(label: int) -> None:
        checkpoint.save(label, comm.rank, f=state.f, g=state.g)

    def load(label: int) -> None:
        data = checkpoint.load(label, comm.rank)
        state.f[...] = data["f"]
        state.g[...] = data["g"]

    def snapshot():
        return state.f.copy(), state.g.copy()

    def restore(snap) -> None:
        state.f[...] = snap[0]
        state.g[...] = snap[1]

    def shrink_hook(comm_: Comm, record: RepairRecord) -> None:
        # Remap the domain over the shrunken grid: re-decompose for
        # the new size, rebuild this rank's block, and reload the
        # rollback state from the *old* decomposition's shards.
        nonlocal state, images, guards, f_out, g_out
        new_decomp = BlockND(
            ProcessorGrid.for_nprocs(comm.size, 2), rho.shape)
        state, images, guards, f_out, g_out = build(new_decomp)
        label = record.rollback_step
        if label > 0 and checkpoint is not None:
            h = halo_width(lattice)
            f_g = np.zeros((lattice.q,) + rho.shape)
            g_g = np.zeros((lattice.q, 2) + rho.shape)
            for old in range(nprocs):
                (y0, y1), (x0, x1) = decomp.bounds(old)
                data = checkpoint.load(label, old)
                cut = (Ellipsis, slice(h, h + (y1 - y0)),
                       slice(h, h + (x1 - x0)))
                f_g[..., y0:y1, x0:x1] = data["f"][cut]
                g_g[..., y0:y1, x0:x1] = data["g"][cut]
            (y0, y1), (x0, x1) = state.bounds
            inter2 = (Ellipsis,) + state.interior
            state.f[inter2] = f_g[..., y0:y1, x0:x1]
            state.g[inter2] = g_g[..., y0:y1, x0:x1]
        runner.neighbors = {
            comm._global(r) for r in state.neighbors.values()
            if r != comm.rank}
        if callable(on_shrink):
            on_shrink(comm, record)

    def body(step_index: int) -> None:
        inter = state.interior
        if injector is not None:
            injector.tick(comm.rank, step_index)
            # Corrupt only the owned interior: halo copies are
            # rewritten by the next exchange, so a flip there is
            # benign by construction (masked, not detected).
            injector.sdc(comm.rank, step_index,
                         {"f": state.f[(Ellipsis,) + inter],
                          "g": state.g[(Ellipsis,) + inter]})
        if tracer.enabled:
            tracer.instant(comm.rank, "step", "phase",
                           {"step": step_index})
        for guard in guards:
            guard.begin_step()
        with comm.phase("collision"):
            if stepper is not None:
                stepper.collide(state.f[(Ellipsis,) + inter],
                                state.g[(Ellipsis,) + inter])
            else:
                f_i, g_i = collide(state.f[(Ellipsis,) + inter],
                                   state.g[(Ellipsis,) + inter],
                                   lattice, tau, tau_m)
                state.f[(Ellipsis,) + inter] = f_i
                state.g[(Ellipsis,) + inter] = g_i
        with comm.phase("halo"):
            if use_caf:
                _exchange_caf(state, images)
            else:
                _exchange_mpi(state)
        for guard in guards:
            guard.mark_exchanged()
        with comm.phase("stream"):
            for guard in guards:
                guard.require_exchanged("stream")
            if stepper is not None:
                f_s = stepper.stream_halo(state.f, state.h, f_out)
                g_s = stepper.stream_halo(state.g, state.h, g_out)
            else:
                f_s = stream_extended(state.f, lattice, state.h)
                g_s = stream_extended(state.g, lattice, state.h)
            state.f[(Ellipsis,) + inter] = f_s
            state.g[(Ellipsis,) + inter] = g_s
        if monitor is not None and monitor.due(step_index):
            # Uniform condition across ranks, so the phase's entry
            # barrier is collective-safe; labeling the watchdog
            # reductions keeps them out of the step phases'
            # attribution in `repro report`.
            with comm.phase("diagnostics"):
                monitor.guard_finite(step_index, "lbmhd.finite",
                                     state.f, state.g)
                rho_l, u_l, _ = moments(
                    state.f[(Ellipsis,) + inter],
                    state.g[(Ellipsis,) + inter], lattice)
                mass = comm.allreduce(float(rho_l.sum()))
                monitor.check_conserved(step_index, "lbmhd.mass",
                                        mass,
                                        default_threshold=1e-8)
                mom = comm.allreduce(
                    (rho_l * u_l).sum(axis=(1, 2)))
                for ax, label in enumerate(("x", "y")):
                    monitor.check_conserved(
                        step_index, f"lbmhd.momentum.{label}",
                        float(mom[ax]), default_threshold=1e-8,
                        scale=mass)

    runner = OnlineRunner(
        comm, nsteps=nsteps, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        save=save if checkpoint is not None else None,
        load=load if checkpoint is not None else None,
        snapshot=snapshot, restore=restore, policy=policy,
        on_shrink=shrink_hook if on_shrink else None,
        neighbors={comm._global(r) for r in state.neighbors.values()
                   if r != comm.rank})
    runner.run(body)
    inter = state.interior
    rho_l, u_l, B_l = moments(state.f[(Ellipsis,) + inter],
                              state.g[(Ellipsis,) + inter], lattice)
    mass = comm.allreduce(float(rho_l.sum()))
    energy = comm.allreduce(float(
        0.5 * (rho_l * (u_l ** 2).sum(axis=0)).sum()
        + 0.5 * (B_l ** 2).sum()))
    return RankResult(state.bounds, rho_l, u_l, B_l, mass, energy)


class _LbmhdRankMain:
    """The SPMD rank program as a picklable callable.

    One instance is shared by every rank (thread backend) or pickled
    into every rank process (process backend); ``__call__`` touches
    only per-rank state derived from ``comm``.  The ``injector`` /
    ``checkpoint`` / ``health`` / ``policy`` attributes are the merge
    contract with :mod:`repro.runtime.process_backend`: worker-local
    ledgers accumulated on their copies are folded back into the
    caller's objects at job end.
    """

    def __init__(self, rho, u, B, *, lattice, tau, tau_m, use_caf,
                 fused, nsteps, decomp, nprocs, injector, checkpoint,
                 checkpoint_every, health, policy, on_shrink):
        self.rho, self.u, self.B = rho, u, B
        self.lattice = lattice
        self.tau, self.tau_m = tau, tau_m
        self.use_caf = use_caf
        self.fused = fused
        self.nsteps = nsteps
        self.decomp = decomp
        self.nprocs = nprocs
        self.injector = injector
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.health = health
        self.policy = policy
        self.on_shrink = on_shrink

    def __call__(self, comm: Comm) -> RankResult:
        rho, u, B = self.rho, self.u, self.B
        lattice = self.lattice
        tau, tau_m = self.tau, self.tau_m
        use_caf, fused = self.use_caf, self.fused
        nsteps = self.nsteps
        decomp, nprocs = self.decomp, self.nprocs
        injector, checkpoint = self.injector, self.checkpoint
        checkpoint_every = self.checkpoint_every
        health, policy = self.health, self.policy
        on_shrink = self.on_shrink
        return _lbmhd_rank_body(
            comm, rho, u, B, lattice, tau, tau_m, use_caf, fused,
            nsteps, decomp, nprocs, injector, checkpoint,
            checkpoint_every, health, policy, on_shrink)


def run_parallel(rho: np.ndarray, u: np.ndarray, B: np.ndarray, *,
                 nprocs: int, nsteps: int, lattice: Lattice = D2Q9,
                 tau: float = 0.8, tau_m: float = 0.8,
                 use_caf: bool = False, fused: bool = False,
                 transport: Transport | None = None,
                 injector: FaultInjector | None = None,
                 checkpoint: Checkpointer | None = None,
                 checkpoint_every: int = 0,
                 max_restarts: int = 2,
                 health: HealthConfig | None = None,
                 policy: RecoveryPolicy | None = None,
                 sanitize: bool | None = None,
                 spares: int = 0,
                 on_shrink: "bool | callable" = False,
                 backend: str = "thread"
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run LBMHD on ``nprocs`` simulated ranks; returns global (rho, u, B).

    The processor grid is the near-square factorization of ``nprocs``
    (the paper restricts to squared integers to maximize performance; any
    count works here).  ``fused=True`` runs the collision and streaming
    phases through :class:`~repro.apps.lbmhd.fused.FusedStepper`
    (in-place relaxation, reused stream buffers) — bitwise identical to
    the naive kernels, just without their per-step temporaries.

    Resilience: ``injector`` enables fault injection (message faults are
    survived by the transport's retry path; a planned rank crash aborts
    the job and triggers a supervised restart, up to ``max_restarts``
    times; planned SDC flips land in the interior — owned — cells of
    the ``f``/``g`` distributions at step boundaries, never in halo
    copies the next exchange would silently repair).  With ``checkpoint`` set and
    ``checkpoint_every > 0``, every rank saves its extended
    distributions each ``checkpoint_every`` steps, and a (re)started job
    resumes from the last *verified* (CRC-clean) checkpoint —
    bit-identical to an uninterrupted run.  ``health`` enables the
    collision invariants as corruption detectors: total mass and net
    momentum conservation plus a NaN/Inf guard, checked after each step
    and *before* the checkpoint save so corrupt state is never
    checkpointed at cadence 1.  ``policy`` customizes (and records) the
    restart/rollback decisions.

    ``sanitize`` (or ``REPRO_SANITIZE=1``) arms the buffer-ownership
    sanitizer (:mod:`repro.runtime.sanitize`): borrowed halo buffers
    raise on mutation with their borrow site, pool misuse raises, and a
    per-rank :class:`~repro.runtime.HaloGuard` NaN-poisons the halo ring
    each step and proves the exchange rewrote it before streaming reads
    it.  Results are bit-identical with the sanitizer on or off.

    Online recovery: ``spares > 0`` holds that many spare ranks in
    reserve — a rank killed mid-run (the fault plan's ``kill_rank``) is
    respawned in place, catches up by log replay, and the run completes
    bit-identically without a whole-job restart.  ``on_shrink`` enables
    the shrink fallback once spares run out: the survivors renumber,
    the domain is re-decomposed over the smaller grid, and everyone
    rolls back to the last checkpoint (pass a callable to observe the
    remap: called as ``on_shrink(comm, record)`` after the rebuild).
    The CAF path does not support online recovery (one-sided images
    are pinned to the original rank set).
    """
    if (spares > 0 or on_shrink) and use_caf:
        raise ValueError("online recovery is not supported on the CAF "
                         "path (co-array images pin the rank set)")
    if use_caf and backend == "process":
        raise BackendError(
            "the CAF one-sided path requires in-process shared images; "
            "run use_caf jobs with backend='thread'")
    grid = ProcessorGrid.for_nprocs(nprocs, 2)
    decomp = BlockND(grid, rho.shape)
    rank_main = _LbmhdRankMain(
        rho, u, B, lattice=lattice, tau=tau, tau_m=tau_m,
        use_caf=use_caf, fused=fused, nsteps=nsteps, decomp=decomp,
        nprocs=nprocs, injector=injector, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, health=health, policy=policy,
        on_shrink=on_shrink)

    job = ParallelJob(nprocs, transport=transport, injector=injector,
                      sanitize=sanitize, spares=spares, backend=backend)
    if injector is not None or checkpoint is not None or policy is not None:
        results = ResilientJob(job, max_restarts=max_restarts,
                               policy=policy,
                               checkpoint=checkpoint).run(rank_main)
    else:
        results = job.run(rank_main)

    rho_out = np.empty_like(rho)
    u_out = np.empty_like(u)
    B_out = np.empty_like(B)
    for res in results:
        if res is None:       # rank lost to a kill, shrunk around
            continue
        (y0, y1), (x0, x1) = res.bounds
        rho_out[y0:y1, x0:x1] = res.rho
        u_out[:, y0:y1, x0:x1] = res.u
        B_out[:, y0:y1, x0:x1] = res.B
    return rho_out, u_out, B_out
