"""Streaming lattices for LBMHD.

Two lattices are provided:

* :data:`D2Q9` — the standard square lattice (integer streaming, speed of
  sound :math:`c_s^2 = 1/3`).  Streaming is exact (``np.roll``), so global
  conservation laws hold to machine precision; this is the reference
  lattice for correctness tests.
* :data:`OCT9` — the paper's octagonal streaming lattice (Fig. 2a): eight
  unit vectors at 45° increments plus the null vector, coupled to the
  square spatial grid.  The diagonal directions do not land on grid
  points, so streaming requires interpolation between the stream and
  space lattices — "third degree polynomial evaluations" (§3): we use
  cubic Lagrange interpolation along the streaming line.

Weight derivation for OCT9: with ring weight :math:`w` on 8 unit vectors,
the second moment gives :math:`c_s^2 = 4w` and matching the isotropic
fourth moment requires :math:`w = 1/16`, hence :math:`c_s^2 = 1/4` and a
rest weight of :math:`1/2`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Lattice:
    """A 2D velocity lattice with rest particle.

    ``velocities`` has shape (Q, 2) ordered with the null vector first.
    ``shifts`` are the integer grid offsets used for streaming; for
    interpolating lattices they are the *direction signs* and
    ``interp_fraction`` is the fractional distance along the shift that
    the streamed value travels (1.0 = exact lattice streaming).
    """

    name: str
    velocities: np.ndarray        # (Q, 2) float
    weights: np.ndarray           # (Q,)
    cs2: float
    shifts: np.ndarray            # (Q, 2) int
    #: per-direction fractional streaming distance in units of the shift
    fractions: np.ndarray         # (Q,)

    @property
    def q(self) -> int:
        return len(self.weights)

    @property
    def is_exact(self) -> bool:
        return bool(np.all(self.fractions == 1.0))

    def check_moments(self) -> None:
        """Verify the moment identities the equilibria rely on."""
        w, xi = self.weights, self.velocities
        if not math.isclose(w.sum(), 1.0, rel_tol=1e-12):
            raise ValueError(f"{self.name}: weights must sum to 1")
        m1 = np.einsum("i,ia->a", w, xi)
        if not np.allclose(m1, 0.0, atol=1e-12):
            raise ValueError(f"{self.name}: first moment nonzero")
        m2 = np.einsum("i,ia,ib->ab", w, xi, xi)
        if not np.allclose(m2, self.cs2 * np.eye(2), atol=1e-12):
            raise ValueError(f"{self.name}: second moment != cs2*I")
        m3 = np.einsum("i,ia,ib,ic->abc", w, xi, xi, xi)
        if not np.allclose(m3, 0.0, atol=1e-12):
            raise ValueError(f"{self.name}: third moment nonzero")
        eye = np.eye(2)
        iso4 = self.cs2**2 * (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye))
        m4 = np.einsum("i,ia,ib,ic,id->abcd", w, xi, xi, xi, xi)
        if not np.allclose(m4, iso4, atol=1e-12):
            raise ValueError(f"{self.name}: fourth moment not isotropic")


def _make_d2q9() -> Lattice:
    shifts = np.array(
        [[0, 0], [1, 0], [0, 1], [-1, 0], [0, -1],
         [1, 1], [-1, 1], [-1, -1], [1, -1]], dtype=np.int64)
    velocities = shifts.astype(np.float64)
    weights = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4)
    return Lattice("D2Q9", velocities, weights, 1.0 / 3.0, shifts,
                   np.ones(9))


def _make_oct9() -> Lattice:
    angles = np.arange(8) * (np.pi / 4.0)
    ring = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    ring[np.abs(ring) < 1e-15] = 0.0
    velocities = np.vstack([[0.0, 0.0], ring])
    weights = np.array([0.5] + [1 / 16] * 8)
    shifts = np.vstack([[0, 0], np.sign(ring).astype(np.int64)])
    # Axis directions stream exactly one cell; diagonal unit vectors cover
    # 1/sqrt(2) of the distance to the diagonal neighbour.
    fractions = np.array(
        [1.0] + [1.0 if (abs(v[0]) < 1e-12 or abs(v[1]) < 1e-12)
                 else 1.0 / math.sqrt(2.0) for v in ring])
    return Lattice("OCT9", velocities, weights, 0.25, shifts, fractions)


D2Q9 = _make_d2q9()
OCT9 = _make_oct9()

D2Q9.check_moments()
OCT9.check_moments()


def lagrange_weights(nodes: np.ndarray, x: float) -> np.ndarray:
    """Lagrange interpolation weights for ``nodes`` evaluated at ``x``.

    >>> lagrange_weights(np.array([0., 1.]), 0.25).round(4).tolist()
    [0.75, 0.25]
    """
    nodes = np.asarray(nodes, dtype=np.float64)
    n = len(nodes)
    w = np.ones(n)
    for j in range(n):
        for k in range(n):
            if k != j:
                w[j] *= (x - nodes[k]) / (nodes[j] - nodes[k])
    return w


#: Cubic interpolation stencil (in units of the streaming shift) used for
#: fractional streaming: departure point sits between nodes 0 and -1.
_CUBIC_NODES = np.array([-2.0, -1.0, 0.0, 1.0])

#: the same stencil as integer shift multiples, hoisted so hot-path
#: users never re-cast per call
_CUBIC_INODES = _CUBIC_NODES.astype(np.int64)


def stream_field(field: np.ndarray, lattice: Lattice,
                 direction: int) -> np.ndarray:
    """Stream one distribution ``field`` along lattice ``direction``.

    ``field`` has shape (..., ny, nx) with periodic boundaries; returns the
    post-streaming array: ``out(x) = field(x - c_i dt)``.  Exact directions
    use a pure shift; fractional (octagonal diagonal) directions evaluate
    the cubic Lagrange polynomial through four points along the streaming
    line (the paper's interpolation step, §3).
    """
    dx, dy = lattice.shifts[direction]
    frac = lattice.fractions[direction]
    if dx == 0 and dy == 0:
        return field.copy()
    axes = (-2, -1)  # (y, x)
    if frac == 1.0:
        return np.roll(field, shift=(dy, dx), axis=axes)
    # Departure point is at -frac * shift from each node: interpolate the
    # field at that point from nodes at integer multiples of the shift.
    weights = lagrange_weights(_CUBIC_NODES, -frac)
    out = np.zeros_like(field)
    for node, w in zip(_CUBIC_INODES, weights):
        out += w * np.roll(field, shift=(-node * dy, -node * dx), axis=axes)
    return out


def stream_all(fields: np.ndarray, lattice: Lattice) -> np.ndarray:
    """Stream a stacked distribution array of shape (Q, ..., ny, nx)."""
    if fields.shape[0] != lattice.q:
        raise ValueError(
            f"expected leading dimension {lattice.q}, got {fields.shape[0]}")
    return np.stack([stream_field(fields[i], lattice, i)
                     for i in range(lattice.q)])
