"""Parallel PARATEC: fine-grained G-space parallelism (§4.1).

"The code exploits fine-grained parallelism by dividing the plane wave
(Fourier) components for each electron among the different processors":
each rank owns the coefficients of *every* band for its share of the
G-sphere columns (load balanced), the local potential lives on the
real-space x-pencils, and H psi flows through the parallel 3D FFT.
Reductions (dot products, subspace matrices) are allreduces.

The driver runs the same all-band CG algorithm as the serial solver; the
eigenvalues match the serial path to solver tolerance (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...resilience.checkpoint import Checkpointer
from ...resilience.health import HealthConfig, HealthMonitor
from ...resilience.online import OnlineRunner
from ...resilience.supervisor import RecoveryPolicy, ResilientJob
from ...runtime import (
    Comm,
    FaultInjector,
    ParallelJob,
    RepairRecord,
    Transport,
)
from .basis import PlaneWaveBasis
from .cg import random_bands
from .fft3d import ParallelFFT3D, SphereLayout
from .lattice_cell import Cell
from .pseudopotential import local_potential_coefficients


class DistributedHamiltonian:
    """H applied to (nbands, nG_local) coefficient blocks."""

    def __init__(self, basis: PlaneWaveBasis, fft: ParallelFFT3D,
                 v_slab: np.ndarray):
        self.basis = basis
        self.fft = fft
        self.v_slab = v_slab
        self.kinetic_local = basis.kinetic[fft.my_sphere]

    def apply(self, coeff: np.ndarray) -> np.ndarray:
        coeff = np.atleast_2d(coeff)
        out = self.kinetic_local[None, :] * coeff
        for b in range(coeff.shape[0]):
            psi_r = self.fft.forward(coeff[b])
            out[b] += self.fft.inverse(self.v_slab * psi_r)
        return out


def _dots(comm: Comm, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-band <a_b|b_b> with a global reduction."""
    local = np.einsum("bg,bg->b", a.conj(), b)
    return np.asarray(comm.allreduce(local))


def _gram(comm: Comm, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full (nbands, nbands) overlap with a global reduction (BLAS3)."""
    local = a.conj() @ b.T
    return np.asarray(comm.allreduce(local))


def _orthonormalize(comm: Comm, coeff: np.ndarray) -> np.ndarray:
    """Cholesky orthonormalization using the distributed Gram matrix."""
    s = _gram(comm, coeff, coeff)
    s = 0.5 * (s + s.conj().T)
    l = np.linalg.cholesky(s)
    return np.linalg.solve(l, coeff)


def _subspace_rotate(comm: Comm, ham: DistributedHamiltonian,
                     coeff: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    coeff = _orthonormalize(comm, coeff)
    hpsi = ham.apply(coeff)
    hsub = _gram(comm, coeff, hpsi)
    hsub = 0.5 * (hsub + hsub.conj().T)
    evals, evecs = np.linalg.eigh(hsub)
    return evals, evecs.T @ coeff


def _cg_step(comm: Comm, ham: DistributedHamiltonian,
             coeff: np.ndarray) -> np.ndarray:
    """Distributed version of :func:`repro.apps.paratec.cg.cg_step`."""
    coeff = _orthonormalize(comm, coeff)
    hpsi = ham.apply(coeff)
    eps = _dots(comm, coeff, hpsi).real
    resid = hpsi - eps[:, None] * coeff
    rnorm = np.sqrt(_dots(comm, resid, resid).real)
    converged = rnorm < 1e-9
    resid[converged] = 0.0

    precond = teter_preconditioner_local(ham, comm, coeff)
    g = precond * resid
    # g_j -= sum_i <C_i|g_j> C_i  (project out the occupied subspace).
    overlap = _gram(comm, coeff, g)
    g = g - overlap.T @ coeff

    # Mutually orthonormalize the search directions (distributed MGS),
    # mirroring the serial solver: keeps the all-band update variational.
    d = g.copy()
    ok = np.zeros(len(d), dtype=bool)
    for b in range(len(d)):
        if converged[b]:
            d[b] = 0.0
            continue
        for bp in np.flatnonzero(ok):
            proj = comm.allreduce(d[bp].conj() @ d[b])
            d[b] = d[b] - proj * d[bp]
        norm = np.sqrt(np.real(comm.allreduce(d[b].conj() @ d[b])))
        if norm > 1e-12:
            d[b] = d[b] / norm
            ok[b] = True
        else:
            d[b] = 0.0
    hd = ham.apply(d)
    e_pd = _dots(comm, coeff, hd).real
    e_dd = _dots(comm, d, hd).real
    theta = 0.5 * np.arctan2(-2.0 * e_pd, e_dd - eps)
    e_theta = (eps * np.cos(theta)**2 + e_dd * np.sin(theta)**2
               + 2.0 * e_pd * np.sin(theta) * np.cos(theta))
    theta = np.where(e_theta > eps, theta + 0.5 * np.pi, theta)
    new = np.cos(theta)[:, None] * coeff + np.sin(theta)[:, None] * d
    new[~ok] = coeff[~ok]
    return new


def teter_preconditioner_local(ham: DistributedHamiltonian, comm: Comm,
                               coeff: np.ndarray) -> np.ndarray:
    """Distributed Teter preconditioner (global band kinetic energies)."""
    t_loc = np.einsum("bg,g,bg->b", coeff.conj(), ham.kinetic_local,
                      coeff).real
    n_loc = np.einsum("bg,bg->b", coeff.conj(), coeff).real
    t = np.asarray(comm.allreduce(t_loc))
    n = np.asarray(comm.allreduce(n_loc))
    ke = np.maximum(t / np.maximum(n, 1e-300), 1e-12)
    x = ham.kinetic_local[None, :] / ke[:, None]
    num = 27.0 + 18.0 * x + 12.0 * x**2 + 8.0 * x**3
    return num / (num + 16.0 * x**4)


@dataclass
class ParallelBandsResult:
    eigenvalues: np.ndarray
    rank_sizes: list[int]
    loads: np.ndarray


def solve_bands_parallel(cell: Cell, ecut: float, nbands: int, *,
                         nprocs: int, n_outer: int = 3, n_inner: int = 4,
                         seed: int = 0,
                         transport: Transport | None = None,
                         injector: FaultInjector | None = None,
                         checkpoint: Checkpointer | None = None,
                         checkpoint_every: int = 0,
                         max_restarts: int = 2,
                         health: HealthConfig | None = None,
                         policy: RecoveryPolicy | None = None,
                         sanitize: bool | None = None,
                         spares: int = 0,
                         on_shrink: "bool | callable" = False,
                         backend: str = "thread"
                         ) -> ParallelBandsResult:
    """Distributed all-band CG for the ionic Hamiltonian.

    Starts from the same deterministic random bands as the serial path
    (scattered by column ownership) so results are directly comparable.

    Resilience: checkpoint granularity is one *outer* CG iteration; each
    rank saves its coefficient block every ``checkpoint_every`` outer
    iterations, and a supervised restart after an injected rank crash
    (``injector.plan.crash_step`` counts outer iterations) resumes from
    the last *verified* checkpoint with identical eigenvalues.
    ``health`` enables the electronic-structure invariants as
    corruption detectors: band normalization at outer-iteration entry
    (the previous subspace rotation leaves the bands orthonormal, so
    any deviation is damage — checked *before* orthonormalization
    silently repairs it) and the variational monotonicity of the total
    band energy, plus a NaN/Inf guard on the coefficients.  ``policy``
    customizes (and records) restart/rollback decisions.

    Online recovery: ``spares > 0`` respawns a killed rank in place
    (the collective log replays its missed reductions from the last
    checkpointed outer iteration); ``on_shrink`` rebalances the
    G-sphere columns over the survivors and reassembles the rollback
    coefficient block from the old layout's checkpoint shards (pass a
    callable to observe the remap: ``on_shrink(comm, record)``).

    ``backend="process"`` runs the ranks as OS processes (zero-copy
    shared-memory transport); results are bit-identical to the thread
    backend.
    """
    basis = PlaneWaveBasis(cell, ecut)
    layout = SphereLayout(basis, nprocs)
    v_ion_g = local_potential_coefficients(cell, basis.g_cart)
    v_real = basis.to_grid(v_ion_g).real
    start = random_bands(basis.size, nbands, seed)

    rank_main = _ParatecRankMain(
        basis, layout, v_real, start, nbands=nbands, n_outer=n_outer,
        n_inner=n_inner, nprocs=nprocs, injector=injector,
        checkpoint=checkpoint, checkpoint_every=checkpoint_every,
        health=health, policy=policy, on_shrink=on_shrink)
    job = ParallelJob(nprocs, transport=transport, injector=injector,
                      sanitize=sanitize, spares=spares, backend=backend)
    if injector is not None or checkpoint is not None or policy is not None:
        results = ResilientJob(job, max_restarts=max_restarts,
                               policy=policy,
                               checkpoint=checkpoint).run(rank_main)
    else:
        results = job.run(rank_main)
    results = [r for r in results if r is not None]
    evals = results[0][0]
    for ev, _ in results[1:]:
        np.testing.assert_allclose(ev, evals, atol=1e-10)
    return ParallelBandsResult(
        eigenvalues=evals,
        rank_sizes=[r[1] for r in results],
        loads=layout.loads)


class _ParatecRankMain:
    """Picklable per-rank entry point (shared by both backends)."""

    def __init__(self, basis, layout, v_real, start, *, nbands, n_outer,
                 n_inner, nprocs, injector, checkpoint, checkpoint_every,
                 health, policy, on_shrink):
        self.basis = basis
        self.layout = layout
        self.v_real = v_real
        self.start = start
        self.nbands = nbands
        self.n_outer = n_outer
        self.n_inner = n_inner
        self.nprocs = nprocs
        self.injector = injector
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.health = health
        self.policy = policy
        self.on_shrink = on_shrink

    def __call__(self, comm: Comm):
        return _paratec_rank_body(
            comm, self.basis, self.layout, self.v_real, self.start,
            nbands=self.nbands, n_outer=self.n_outer,
            n_inner=self.n_inner, nprocs=self.nprocs,
            injector=self.injector, checkpoint=self.checkpoint,
            checkpoint_every=self.checkpoint_every, health=self.health,
            policy=self.policy, on_shrink=self.on_shrink)


def _paratec_rank_body(comm: Comm, basis, layout, v_real, start, *,
                       nbands, n_outer, n_inner, nprocs, injector,
                       checkpoint, checkpoint_every, health, policy,
                       on_shrink):
    """One rank's full PARATEC program (shared by both backends)."""
    monitor = HealthMonitor(comm, health) if health is not None \
        else None
    tracer = comm.transport.tracer

    def build(lay: SphereLayout):
        ft = ParallelFFT3D(basis, lay, comm)
        x0, x1 = lay.x_range(comm.rank)
        return ft, DistributedHamiltonian(basis, ft, v_real[x0:x1])

    fft, ham = build(layout)
    coeff = start[:, fft.my_sphere].copy()
    evals = None

    def save(label: int) -> None:
        checkpoint.save(label, comm.rank, coeff=coeff)

    def load(label: int) -> None:
        nonlocal coeff
        coeff = checkpoint.load(label, comm.rank)["coeff"]

    def snapshot():
        return coeff.copy()

    def restore(snap) -> None:
        nonlocal coeff
        coeff = snap.copy()

    def shrink_hook(comm_: Comm, record: RepairRecord) -> None:
        # Rebalance the columns over the survivors; reassemble the
        # rollback coefficients from the old layout's shards (each
        # shard's columns are indexed by the old sphere indices).
        nonlocal fft, ham, coeff
        new_layout = SphereLayout(basis, comm.size)
        fft, ham = build(new_layout)
        label = record.rollback_step
        if label > 0 and checkpoint is not None:
            coeff_g = np.zeros((nbands, basis.size),
                               dtype=np.complex128)
            for old in range(nprocs):
                shard = checkpoint.load(label, old)["coeff"]
                coeff_g[:, layout.sphere_indices_of(old)] = shard
        else:
            coeff_g = start
        coeff = coeff_g[:, fft.my_sphere].copy()
        if callable(on_shrink):
            on_shrink(comm, record)

    def body(outer: int) -> None:
        nonlocal coeff, evals
        if injector is not None:
            injector.tick(comm.rank, outer)
            injector.sdc(comm.rank, outer, {"coeff": coeff})
        if tracer.enabled:
            tracer.instant(comm.rank, "step", "phase",
                           {"outer": outer})
        if monitor is not None and outer > 0 and monitor.due(outer):
            # At outer-iteration entry the previous subspace
            # rotation left the bands orthonormal; check before
            # _cg_step's orthonormalization repairs any damage
            # (outer 0 starts from unnormalized random bands).
            with comm.phase("diagnostics"):
                monitor.guard_finite(outer, "paratec.finite", coeff)
                norms = _dots(comm, coeff, coeff).real
                monitor.check_absolute(
                    outer, "paratec.norm",
                    float(np.max(np.abs(norms - 1.0))),
                    default_threshold=1e-6)
        with comm.phase("cg"):
            for _ in range(n_inner):
                coeff = _cg_step(comm, ham, coeff)
        with comm.phase("rotate"):
            evals, coeff = _subspace_rotate(comm, ham, coeff)
        if monitor is not None and monitor.due(outer):
            with comm.phase("diagnostics"):
                monitor.check_monotone(outer, "paratec.energy",
                                       float(evals.sum().real),
                                       default_slack=1e-9)

    runner = OnlineRunner(
        comm, nsteps=n_outer, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        save=save if checkpoint is not None else None,
        load=load if checkpoint is not None else None,
        snapshot=snapshot, restore=restore, policy=policy,
        on_shrink=shrink_hook if on_shrink else None)
    runner.run(body)
    with comm.phase("rotate"):
        evals, coeff = _subspace_rotate(comm, ham, coeff)
    return evals, len(fft.my_sphere)
