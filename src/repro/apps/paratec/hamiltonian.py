"""Kohn-Sham / empirical-pseudopotential Hamiltonian in the PW basis.

``H psi = -1/2 lap psi + V_loc psi`` with the local potential applied in
real space through the FFT pair — PARATEC's central kernel structure
(3D FFTs + BLAS3 + hand-written F90, §4.1).
"""

from __future__ import annotations

import numpy as np

from .basis import PlaneWaveBasis
from .lattice_cell import Cell
from .pseudopotential import local_potential_coefficients


class Hamiltonian:
    """H = T + V_loc(r); the potential is any real-space field."""

    def __init__(self, basis: PlaneWaveBasis,
                 v_real: np.ndarray | None = None):
        self.basis = basis
        if v_real is None:
            v_real = np.zeros(basis.fft_shape)
        if v_real.shape != basis.fft_shape:
            raise ValueError("potential grid shape mismatch")
        self.v_real = v_real

    @classmethod
    def ionic(cls, basis: PlaneWaveBasis,
              cell: Cell | None = None) -> "Hamiltonian":
        """Hamiltonian with the bare ionic (empirical) potential."""
        cell = cell or basis.cell
        v_g = local_potential_coefficients(cell, basis.g_cart)
        v_real = basis.to_grid(v_g).real
        return cls(basis, v_real)

    def apply(self, coeff: np.ndarray) -> np.ndarray:
        """H @ coeff for (nG,) or (nbands, nG) coefficient arrays."""
        kinetic = self.basis.kinetic * coeff
        psi_r = self.basis.to_grid(coeff)
        v_psi = self.basis.to_sphere(self.v_real * psi_r)
        return kinetic + v_psi

    def dense(self) -> np.ndarray:
        """Explicit (nG, nG) matrix — small systems / validation only."""
        n = self.basis.size
        if n > 2000:
            raise ValueError("dense Hamiltonian requested for large basis")
        eye = np.eye(n, dtype=np.complex128)
        return np.stack([self.apply(eye[i]) for i in range(n)]).T

    def expectation(self, coeff: np.ndarray) -> np.ndarray:
        """Per-band <psi|H|psi> / <psi|psi> for (nbands, nG) input."""
        hp = self.apply(coeff)
        num = np.einsum("bg,bg->b", coeff.conj(), hp).real
        den = np.einsum("bg,bg->b", coeff.conj(), coeff).real
        return num / den


def teter_preconditioner(basis: PlaneWaveBasis,
                         coeff: np.ndarray) -> np.ndarray:
    """Teter-Payne-Allan preconditioner, per band.

    ``x = T_G / <T>_band``; the rational form damps high-G components
    (where H is kinetic-dominated) without touching low-G physics.
    """
    coeff = np.atleast_2d(coeff)
    t = self_kinetic = np.einsum(
        "bg,g,bg->b", coeff.conj(), basis.kinetic, coeff).real
    norm = np.einsum("bg,bg->b", coeff.conj(), coeff).real
    ke = np.maximum(self_kinetic / np.maximum(norm, 1e-300), 1e-12)
    x = basis.kinetic[None, :] / ke[:, None]
    num = 27.0 + 18.0 * x + 12.0 * x**2 + 8.0 * x**3
    del t
    return num / (num + 16.0 * x**4)


def orthonormalize(coeff: np.ndarray) -> np.ndarray:
    """Lowdin-free QR orthonormalization of (nbands, nG) rows (BLAS3)."""
    q, r = np.linalg.qr(coeff.T)
    # Fix the phase so the result is deterministic.
    signs = np.sign(np.real(np.diagonal(r)))
    signs[signs == 0] = 1.0
    return (q * signs).T


def subspace_rotate(ham: Hamiltonian, coeff: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Rayleigh-Ritz within span(coeff): the BLAS3/ZHEEV step.

    Returns (eigenvalues, rotated orthonormal bands).
    """
    coeff = orthonormalize(coeff)
    hpsi = ham.apply(coeff)
    hsub = coeff.conj() @ hpsi.T
    hsub = 0.5 * (hsub + hsub.conj().T)
    evals, evecs = np.linalg.eigh(hsub)
    return evals, evecs.T @ coeff
