"""PARATEC: plane-wave DFT total-energy mini-app (materials science, §4)."""

from .bandstructure import (
    FCC_POINTS,
    BandStructure,
    band_structure,
    bands_at_k,
    kpoint_cartesian,
)
from .basis import PlaneWaveBasis
from .cg import CGStats, cg_iterate, cg_step, random_bands, solve_dense
from .density import band_density, hartree_potential, lda_xc, xc_energy
from .fft3d import ParallelFFT3D, SphereLayout
from .hamiltonian import (
    Hamiltonian,
    orthonormalize,
    subspace_rotate,
    teter_preconditioner,
)
from .lattice_cell import (
    Cell,
    SI_LATTICE_CONSTANT,
    silicon_primitive,
    silicon_supercell,
)
from .parallel import solve_bands_parallel
from .profile import (
    ParatecConfig,
    build_profile,
    paratec_porting,
    table4_configs,
)
from .pseudopotential import form_factor, local_potential_coefficients
from .scf import SCFResult, SCFSolver

__all__ = [
    "BandStructure", "FCC_POINTS", "band_structure", "bands_at_k",
    "kpoint_cartesian",
    "CGStats", "Cell", "Hamiltonian", "ParallelFFT3D", "ParatecConfig",
    "PlaneWaveBasis", "SCFResult", "SCFSolver", "SI_LATTICE_CONSTANT",
    "SphereLayout", "band_density", "build_profile", "cg_iterate",
    "cg_step", "form_factor", "hartree_potential", "lda_xc",
    "local_potential_coefficients", "orthonormalize", "paratec_porting",
    "random_bands", "silicon_primitive", "silicon_supercell",
    "solve_bands_parallel", "solve_dense", "subspace_rotate",
    "table4_configs", "teter_preconditioner", "xc_energy",
]
