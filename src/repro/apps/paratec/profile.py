"""PARATEC work profile for the performance model (Table 4).

"The code typically spends most of its time in vendor supplied BLAS3
(~30%) and 1D FFTs (~30%) ... with the remaining time in hand-coded F90"
(§4.1).  The profile mirrors that structure with three compute phases
plus a small unvectorizable setup residue, and the 3D-FFT transposes as
global all-to-alls (the scaling limiter, §4.2).

Work formulas per benchmark run (3 CG steps of a bulk Si system at the
25 Ry production cutoff), derived from the implemented solver:

* ``nG ~ 130 x natoms`` plane waves, ``nbands ~ 2.1 x natoms``
  (occupied + buffer), dense FFT grid ``~16 x nG`` points;
* BLAS3: subspace Gram/rotation matrices, ``~16 nbands^2 nG`` flops per
  CG step;
* FFT: ~5 Hpsi evaluations per band per CG step, a forward/inverse 3D
  FFT pair each: ``5 x 2 x 5 N log2 N`` flops per band;
* F90: nonlocal-projector and assorted hand-written work, scaling like
  half the BLAS3 term;
* transposes: each 3D FFT moves the sphere once and the dense grid
  twice across the machine (only nonzero columns are sent, §4.2).

Vector-length structure (the fixed-problem scaling story): BLAS3 inner
dimensions shrink as ``nG / P`` and the simultaneous-1D-FFT batch as
``ncols / P`` — at 1024 processors the ES loses a third of its
efficiency to short vectors, exactly as Table 4 shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...perf.porting import PhasePort, PortingSpec
from ...perf.work import AccessPattern, AppProfile, CommPhase, WorkPhase

PW_PER_ATOM = 130.0
BANDS_PER_ATOM = 2.1
GRID_PER_PW = 16.0
CG_STEPS = 3
HPSI_PER_BAND_PER_STEP = 5.0
#: bands transformed together per 3D-FFT call (the "simultaneous 1D
#: FFTs" rewrite batches transforms, §4.1)
BAND_BLOCK = 16.0

#: phase compute efficiencies (operation mix; machine-independent)
EFF_BLAS3 = 0.95
EFF_FFT = 0.70
EFF_F90 = 0.60
#: fraction of total flops in the unvectorizable setup/bookkeeping residue
SCALAR_RESIDUE = 0.02


@dataclass(frozen=True)
class ParatecConfig:
    """One Table 4 configuration."""

    natoms: int                   # 432 or 686
    nprocs: int

    @property
    def label(self) -> str:
        return f"{self.natoms} atoms"

    @property
    def n_pw(self) -> float:
        return PW_PER_ATOM * self.natoms

    @property
    def nbands(self) -> float:
        return BANDS_PER_ATOM * self.natoms

    @property
    def n_grid(self) -> float:
        return GRID_PER_PW * self.n_pw

    @property
    def n_columns(self) -> float:
        """Active G columns: the sphere's (x, y) shadow ~ nG^(2/3)."""
        return self.n_pw ** (2.0 / 3.0) * 1.6


def build_profile(config: ParatecConfig) -> AppProfile:
    p = config.nprocs
    nb, ng, ngrid = config.nbands, config.n_pw, config.n_grid

    blas3_flops = CG_STEPS * 16.0 * nb * nb * ng / p
    fft_flops = CG_STEPS * HPSI_PER_BAND_PER_STEP * nb \
        * 2.0 * 5.0 * ngrid * math.log2(ngrid) / p
    f90_flops = 0.5 * blas3_flops
    total = blas3_flops + fft_flops + f90_flops

    blas3 = WorkPhase(
        "blas3", flops=blas3_flops,
        words=blas3_flops / 16.0,      # blocked ZGEMM: high reuse
        access=AccessPattern.UNIT,
        trip=max(16, int(ng / p)),
        temporal_reuse=0.95,
        working_set_bytes=256e3,       # gemm blocks sized for cache
        compute_efficiency=EFF_BLAS3,
    )
    fft = WorkPhase(
        "fft1d", flops=fft_flops,
        words=fft_flops / 6.0,         # butterflies mostly cache-resident
        access=AccessPattern.STRIDED,
        # Simultaneous 1D FFTs across a band block's columns (§4.1).
        trip=max(4, int(config.n_columns * BAND_BLOCK / p)),
        temporal_reuse=0.85,
        working_set_bytes=512e3,
        compute_efficiency=EFF_FFT,
    )
    f90 = WorkPhase(
        "f90", flops=f90_flops,
        words=f90_flops / 5.0,
        access=AccessPattern.UNIT,
        trip=max(16, int(ng / p)),
        temporal_reuse=0.60,
        working_set_bytes=2e6,
        compute_efficiency=EFF_F90,
        streamable=False,              # "tend not to multistream" (§4.2)
    )
    setup = WorkPhase(
        "setup-residue", flops=SCALAR_RESIDUE * total,
        words=SCALAR_RESIDUE * total / 4.0,
        access=AccessPattern.UNIT, trip=64,
        vectorizable=False, streamable=False,
    )
    phases = [blas3, fft, f90, setup]

    comms = []
    if p > 1:
        # Each Hpsi moves a forward+inverse 3D FFT pair: 3 transposes
        # each way, but only the nonzero columns travel (§4.2) — the
        # per-rank volume per transpose stays ~ nG/p sphere-scale.
        transforms = CG_STEPS * HPSI_PER_BAND_PER_STEP * nb
        transpose_bytes = transforms * (5.0 * ng / p) * 16.0
        comms.append(CommPhase("fft-transpose", "alltoall",
                               messages=6.0 * transforms / BAND_BLOCK,
                               bytes_total=transpose_bytes))
        comms.append(CommPhase("reductions", "allreduce",
                               messages=CG_STEPS * 12.0,
                               bytes_total=CG_STEPS * 12.0 * nb * 16.0))

    profile = AppProfile("paratec", config.label, p, phases=phases,
                         comms=comms)
    profile.baseline_flops = total
    return profile


def paratec_porting(*, simultaneous_ffts: bool = True) -> PortingSpec:
    """§4.1's porting story.

    The vendor 1D FFTs ran "at a relatively low percentage of peak" on
    the vector machines until the 3D FFT was rewritten to use
    simultaneous (multiple) 1D FFT calls; ``simultaneous_ffts=False``
    models the pre-rewrite port (an ablation bench).
    """
    spec = PortingSpec("paratec")
    if not simultaneous_ffts:
        for machine in ("ES", "X1"):
            # Single 1D FFTs: the vector loop runs within one transform
            # (short butterflies) instead of across transforms.
            spec.set(machine, "fft1d", PhasePort(
                vectorized=True, multistreamed=False,
                note="vendor single-transform 1D FFTs"))
    return spec


def feed_metrics(registry, config: ParatecConfig) -> None:
    """Publish the model work profile into a shared metrics registry
    (``paratec.model.*`` namespace)."""
    registry.ingest_profile(build_profile(config))


def table4_configs() -> list[ParatecConfig]:
    out = [ParatecConfig(432, p) for p in (32, 64, 128, 256, 512, 1024)]
    out += [ParatecConfig(686, p) for p in (64, 128, 256, 512, 1024)]
    return out
