"""Charge density, Hartree potential, and LDA exchange-correlation.

PARATEC obtains "the ground-state electron wavefunctions" of density
functional theory; the reproduction implements the standard local
machinery on top of the plane-wave basis:

* density ``rho(r) = sum_n f_n |psi_n(r)|^2 / volume``;
* Hartree ``V_H(G) = 4 pi rho(G) / G^2`` (G=0 dropped: jellium
  compensation);
* LDA exchange-correlation: Slater exchange + Perdew-Zunger
  parameterization of the Ceperley-Alder correlation energy.
"""

from __future__ import annotations

import numpy as np

from .basis import PlaneWaveBasis

#: PZ81 correlation constants (unpolarized), Hartree.
_PZ_GAMMA, _PZ_BETA1, _PZ_BETA2 = -0.1423, 1.0529, 0.3334
_PZ_A, _PZ_B, _PZ_C, _PZ_D = 0.0311, -0.048, 0.0020, -0.0116


def band_density(basis: PlaneWaveBasis, coeff: np.ndarray,
                 occupations: np.ndarray) -> np.ndarray:
    """Electron density on the FFT grid from (nbands, nG) coefficients.

    Bands are taken normalized as coefficient vectors
    (`sum_G |c_G|^2 = 1`); the density integrates to ``sum(occupations)``
    over the cell.
    """
    coeff = np.atleast_2d(coeff)
    occupations = np.asarray(occupations, dtype=np.float64)
    if len(occupations) != len(coeff):
        raise ValueError("one occupation per band required")
    if (occupations < 0).any():
        raise ValueError("negative occupations")
    psi_r = basis.to_grid(coeff)
    # With the to_grid convention, mean_j |psi_j|^2 = sum_G |c_G|^2 = 1,
    # so dividing by the volume makes the density integrate to the
    # total occupation over the cell.
    dens = np.einsum("b,bxyz->xyz", occupations,
                     (psi_r.conj() * psi_r).real)
    return dens / basis.cell.volume


def hartree_potential(basis: PlaneWaveBasis, rho_r: np.ndarray
                      ) -> tuple[np.ndarray, float]:
    """(V_H(r), E_H) from the real-space density."""
    shape = basis.fft_shape
    if rho_r.shape != shape:
        raise ValueError("density grid mismatch")
    rho_g = np.fft.fftn(rho_r) / np.prod(shape)
    b = basis.cell.reciprocal()
    freqs = [np.fft.fftfreq(n, d=1.0 / n) for n in shape]
    mx, my, mz = np.meshgrid(*freqs, indexing="ij")
    g = (mx[..., None] * b[0] + my[..., None] * b[1]
         + mz[..., None] * b[2])
    g2 = (g**2).sum(axis=-1)
    vh_g = np.zeros_like(rho_g)
    mask = g2 > 1e-12
    vh_g[mask] = 4.0 * np.pi * rho_g[mask] / g2[mask]
    vh_r = np.fft.ifftn(vh_g * np.prod(shape)).real
    e_h = 0.5 * float((vh_r * rho_r).mean()) * basis.cell.volume
    return vh_r, e_h


def lda_xc(rho_r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(epsilon_xc(rho), V_xc(rho)) per point, Hartree units.

    Slater exchange + PZ81 correlation; rho is clipped at a tiny floor
    (vacuum regions).
    """
    rho = np.maximum(rho_r, 1e-12)
    rs = (3.0 / (4.0 * np.pi * rho)) ** (1.0 / 3.0)
    # Exchange.
    ex = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0) * rho ** (1.0 / 3.0)
    vx = (4.0 / 3.0) * ex
    # Correlation (PZ81).
    ec = np.empty_like(rs)
    vc = np.empty_like(rs)
    low = rs >= 1.0
    sq = np.sqrt(rs[low])
    denom = 1.0 + _PZ_BETA1 * sq + _PZ_BETA2 * rs[low]
    ec[low] = _PZ_GAMMA / denom
    vc[low] = ec[low] * (1.0 + 7.0 / 6.0 * _PZ_BETA1 * sq
                         + 4.0 / 3.0 * _PZ_BETA2 * rs[low]) / denom
    hi = ~low
    ln = np.log(rs[hi])
    ec[hi] = (_PZ_A * ln + _PZ_B + _PZ_C * rs[hi] * ln
              + _PZ_D * rs[hi])
    vc[hi] = (_PZ_A * ln + (_PZ_B - _PZ_A / 3.0)
              + 2.0 / 3.0 * _PZ_C * rs[hi] * ln
              + (2.0 * _PZ_D - _PZ_C) / 3.0 * rs[hi])
    return ex + ec, vx + vc


def xc_energy(basis: PlaneWaveBasis, rho_r: np.ndarray) -> float:
    eps_xc, _ = lda_xc(rho_r)
    return float((eps_xc * rho_r).mean()) * basis.cell.volume
