"""Empirical local pseudopotential for silicon (Cohen-Bergstresser).

PARATEC uses norm-conserving ab-initio pseudopotentials; the
reproduction substitutes the classic Cohen-Bergstresser (1966) empirical
local pseudopotential, which produces the correct silicon band structure
from three Fourier coefficients and exercises exactly the same code path
(a local potential applied in Fourier/real space).

Form factors (Rydberg) at |G|^2 = 3, 8, 11 in units of (2 pi / a)^2:
V3 = -0.21, V8 = +0.04, V11 = +0.08.
"""

from __future__ import annotations

import numpy as np

from .lattice_cell import Cell, SI_LATTICE_CONSTANT

RY_TO_HARTREE = 0.5

#: Cohen-Bergstresser symmetric form factors for Si, in Hartree.
SI_FORM_FACTORS = {3: -0.21 * RY_TO_HARTREE,
                   8: 0.04 * RY_TO_HARTREE,
                   11: 0.08 * RY_TO_HARTREE}


def form_factor(g2_units: np.ndarray, a: float = SI_LATTICE_CONSTANT,
                tol: float = 1e-6) -> np.ndarray:
    """V(|G|) for |G|^2 expressed in (2 pi / a)^2 units.

    Zero away from the three fitted shells (and at G=0, where the
    average potential is a free constant).
    """
    out = np.zeros_like(np.asarray(g2_units, dtype=np.float64))
    for shell, value in SI_FORM_FACTORS.items():
        out = np.where(np.abs(g2_units - shell) < tol, value, out)
    return out


def local_potential_coefficients(cell: Cell, g_cart: np.ndarray,
                                 a: float = SI_LATTICE_CONSTANT
                                 ) -> np.ndarray:
    """V_ion(G) for arbitrary cells: form factor x structure factor.

    ``g_cart`` is (nG, 3) in bohr^-1.  For the primitive cell this
    reproduces the textbook V(G) cos(G . tau); for supercells most G
    have zero structure factor and the same physics emerges.
    """
    unit = (2.0 * np.pi / a) ** 2
    g2_units = (g_cart**2).sum(axis=1) / unit
    v = form_factor(g2_units, a)
    s = cell.structure_factor(g_cart)
    # Imaginary part vanishes for the symmetric diamond basis.
    return v * s
