"""Silicon crystal cells for the PARATEC mini-app.

The paper benchmarks 432- and 686-atom bulk silicon.  Both are integer
tilings of the 2-atom fcc diamond primitive cell: 432 = 2 x 6^3 and
686 = 2 x 7^3, so :func:`silicon_supercell` with ``n=6`` / ``n=7``
reproduces the exact systems (and small ``n`` gives test-sized cells).

Units: Hartree atomic units (lengths in bohr).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Si lattice constant, bohr (5.431 Angstrom).
SI_LATTICE_CONSTANT = 10.263


@dataclass(frozen=True)
class Cell:
    """A periodic simulation cell with a basis of atom positions."""

    lattice: np.ndarray            # (3,3) rows are lattice vectors, bohr
    positions: np.ndarray          # (natoms, 3) cartesian, bohr
    valence_electrons_per_atom: int = 4   # silicon

    def __post_init__(self) -> None:
        if self.lattice.shape != (3, 3):
            raise ValueError("lattice must be 3x3")
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (natoms, 3)")

    @property
    def natoms(self) -> int:
        return len(self.positions)

    @property
    def nelectrons(self) -> int:
        return self.natoms * self.valence_electrons_per_atom

    @property
    def nbands_occupied(self) -> int:
        """Doubly-occupied bands (spin-degenerate insulator)."""
        return self.nelectrons // 2

    @property
    def volume(self) -> float:
        return float(abs(np.linalg.det(self.lattice)))

    def reciprocal(self) -> np.ndarray:
        """Reciprocal lattice vectors (rows), 2 pi b_i . a_j = 2 pi d_ij."""
        return 2.0 * np.pi * np.linalg.inv(self.lattice).T

    def structure_factor(self, g_cart: np.ndarray) -> np.ndarray:
        """S(G) = sum_atoms exp(-i G . r) / natoms, shape (nG,)."""
        phases = g_cart @ self.positions.T          # (nG, natoms)
        return np.exp(-1j * phases).mean(axis=1)


def silicon_primitive(a: float = SI_LATTICE_CONSTANT) -> Cell:
    """2-atom diamond primitive cell with the symmetric atom choice.

    Atoms at +-(a/8)(1,1,1) make the structure factor real (a cosine),
    the convention of the Cohen-Bergstresser form-factor fits.
    """
    lattice = 0.5 * a * np.array([[0.0, 1.0, 1.0],
                                  [1.0, 0.0, 1.0],
                                  [1.0, 1.0, 0.0]])
    tau = a / 8.0 * np.ones(3)
    return Cell(lattice, np.array([tau, -tau]))


def silicon_supercell(n: int, a: float = SI_LATTICE_CONSTANT) -> Cell:
    """n x n x n tiling of the primitive cell: 2 n^3 silicon atoms.

    >>> silicon_supercell(6).natoms
    432
    >>> silicon_supercell(7).natoms
    686
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    prim = silicon_primitive(a)
    shifts = np.array([[i, j, k] for i in range(n) for j in range(n)
                       for k in range(n)], dtype=np.float64)
    cart_shifts = shifts @ prim.lattice
    positions = (prim.positions[None, :, :]
                 + cart_shifts[:, None, :]).reshape(-1, 3)
    return Cell(prim.lattice * n, positions)


def atom_count_for_paper(system: str) -> int:
    """The two Table 4 systems."""
    return {"432": 432, "686": 686}[system]
