"""All-band preconditioned conjugate-gradient eigensolver (§4).

PARATEC "uses an all-band conjugate gradient approach to solve the
Kohn-Sham equations": bands are improved by preconditioned CG steps
against the current Hamiltonian, interleaved with subspace
(Rayleigh-Ritz) rotations — the BLAS3-heavy part.  One outer iteration
of :func:`cg_iterate` is one of the paper's "CG steps" (Table 4 times 3
of them; 20-60 converge a real calculation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hamiltonian import (
    Hamiltonian,
    orthonormalize,
    subspace_rotate,
    teter_preconditioner,
)


@dataclass
class CGStats:
    iterations: int
    eigenvalue_sum: float
    residual_max: float


def _project_out(vecs: np.ndarray, basis_vecs: np.ndarray) -> np.ndarray:
    """Remove the span of ``basis_vecs`` rows from ``vecs`` rows."""
    overlap = basis_vecs.conj() @ vecs.T
    return vecs - overlap.T @ basis_vecs


def cg_step(ham: Hamiltonian, coeff: np.ndarray,
            search_prev: np.ndarray | None = None
            ) -> tuple[np.ndarray, np.ndarray, float]:
    """One preconditioned steepest/conjugate band update.

    Returns (new bands, new search directions, max residual norm).
    The line minimization per band is the analytic two-level rotation
    ``psi' = cos(t) psi + sin(t) d`` minimizing the Rayleigh quotient.
    """
    coeff = orthonormalize(coeff)
    hpsi = ham.apply(coeff)
    eps = np.einsum("bg,bg->b", coeff.conj(), hpsi).real
    resid = hpsi - eps[:, None] * coeff
    rnorm = np.sqrt((np.abs(resid)**2).sum(axis=1))
    rmax = float(rnorm.max())
    # Freeze converged bands: a vanishing residual makes the normalized
    # search direction pure noise and would kick the band off its
    # eigenvector.
    converged = rnorm < 1e-9
    resid[converged] = 0.0

    g = teter_preconditioner(ham.basis, coeff) * resid
    g = _project_out(g, coeff)
    if search_prev is not None and search_prev.shape == g.shape:
        # Polak-Ribiere-ish conjugation on the preconditioned residual.
        beta = (np.einsum("bg,bg->b", g.conj(), g).real
                / np.maximum(np.einsum("bg,bg->b", search_prev.conj(),
                                       search_prev).real, 1e-300))
        d = g + np.minimum(beta, 10.0)[:, None] * search_prev
        d = _project_out(d, coeff)
    else:
        d = g

    # Mutually orthonormalize the search directions (modified
    # Gram-Schmidt): with <d_b|d_b'> = delta and d _|_ span(psi), the
    # simultaneous band rotations keep the whole block orthonormal, so
    # every step is variational.  Near-degenerate bands otherwise
    # produce nearly parallel directions and the all-band update stalls.
    ok = np.zeros(len(d), dtype=bool)
    for b in range(len(d)):
        if converged[b]:
            d[b] = 0.0
            continue
        for bp in np.flatnonzero(ok):
            d[b] = d[b] - (d[bp].conj() @ d[b]) * d[bp]
        norm = np.sqrt((d[b].conj() @ d[b]).real)
        if norm > 1e-12:
            d[b] = d[b] / norm
            ok[b] = True
        else:
            d[b] = 0.0
    hd = ham.apply(d)
    e_pd = np.einsum("bg,bg->b", coeff.conj(), hd).real
    e_dd = np.einsum("bg,bg->b", d.conj(), hd).real
    # Minimize e(t) = eps cos^2 t + e_dd sin^2 t + 2 e_pd sin t cos t.
    theta = 0.5 * np.arctan2(-2.0 * e_pd, e_dd - eps)
    # Pick the branch that decreases the quotient.
    e_theta = (eps * np.cos(theta)**2 + e_dd * np.sin(theta)**2
               + 2.0 * e_pd * np.sin(theta) * np.cos(theta))
    flip = e_theta > eps
    theta = np.where(flip, theta + 0.5 * np.pi, theta)
    new = (np.cos(theta)[:, None] * coeff
           + np.sin(theta)[:, None] * d)
    new[~ok] = coeff[~ok]
    return new, d, rmax


def cg_iterate(ham: Hamiltonian, coeff: np.ndarray, *,
               n_outer: int = 3, n_inner: int = 4
               ) -> tuple[np.ndarray, np.ndarray, CGStats]:
    """Run ``n_outer`` CG steps (Table 4 benchmarks use 3).

    Each outer step does ``n_inner`` band-update sweeps followed by a
    Rayleigh-Ritz subspace rotation.  Returns (eigenvalues, bands,
    stats); bands come back orthonormal and eigenvalue-sorted.
    """
    if coeff.ndim != 2:
        raise ValueError("coeff must be (nbands, nG)")
    search = None
    rmax = np.inf
    for _ in range(n_outer):
        for _ in range(n_inner):
            coeff, search, rmax = cg_step(ham, coeff, search)
        evals, coeff = subspace_rotate(ham, coeff)
        search = None
    evals, coeff = subspace_rotate(ham, coeff)
    stats = CGStats(iterations=n_outer,
                    eigenvalue_sum=float(evals.sum()),
                    residual_max=rmax)
    return evals, coeff, stats


def random_bands(basis_size: int, nbands: int, seed: int = 0
                 ) -> np.ndarray:
    """Random orthonormal starting bands."""
    if nbands > basis_size:
        raise ValueError("more bands than basis functions")
    rng = np.random.default_rng(seed)
    c = rng.standard_normal((nbands, basis_size)) \
        + 1j * rng.standard_normal((nbands, basis_size))
    return orthonormalize(c)


def solve_dense(ham: Hamiltonian, nbands: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Exact reference diagonalization (validation only)."""
    h = ham.dense()
    evals, evecs = np.linalg.eigh(h)
    return evals[:nbands], evecs[:, :nbands].T
