"""Plane-wave basis: the G-sphere and its column organization (Fig. 4a).

The wavefunction of each electron is represented in Fourier space by a
sphere of points |k+G|^2/2 < E_cut.  The sphere is organized into
*columns*: all G sharing (g1, g2) indices, varying g3 — the unit of both
the parallel data layout (columns are distributed over processors by the
greedy balancer) and the 3D-FFT algorithm (1D FFTs along z, then
transposes, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..._compat import cached_property
from .lattice_cell import Cell


@dataclass
class PlaneWaveBasis:
    """G-vectors within the kinetic-energy cutoff for one cell.

    ``kpoint`` (cartesian, bohr^-1) offsets the kinetic energies to
    ``|k+G|^2/2`` — Bloch states at crystal momentum k.  The basis
    sphere itself is selected at k (|k+G| within cutoff), PARATEC's
    convention.
    """

    cell: Cell
    ecut: float                    # Hartree
    kpoint: tuple[float, float, float] = (0.0, 0.0, 0.0)
    #: integer Miller indices (nG, 3)
    g_int: np.ndarray = field(init=False)
    #: cartesian G vectors (nG, 3), bohr^-1
    g_cart: np.ndarray = field(init=False)
    #: |k+G|^2 / 2, the kinetic energies (nG,)
    kinetic: np.ndarray = field(init=False)
    #: FFT grid shape (at least 2*gmax+1 per axis to hold V(G-G'))
    fft_shape: tuple[int, int, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.ecut <= 0:
            raise ValueError("ecut must be positive")
        b = self.cell.reciprocal()
        k = np.asarray(self.kpoint, dtype=np.float64)
        if k.shape != (3,):
            raise ValueError("kpoint must be a 3-vector")
        gmax = np.sqrt(2.0 * self.ecut) + np.linalg.norm(k)
        # Bounding box of integer indices: |m_i| <= gmax / min-norm row.
        limits = [int(np.ceil(gmax / np.linalg.norm(
            b[i] - b[i] @ _others(b, i)))) + 1 for i in range(3)]
        grids = np.meshgrid(*[np.arange(-l, l + 1) for l in limits],
                            indexing="ij")
        ints = np.stack([g.ravel() for g in grids], axis=1)
        cart = ints @ b
        kin = 0.5 * ((cart + k)**2).sum(axis=1)
        keep = kin < self.ecut
        order = np.lexsort((ints[keep, 2], ints[keep, 1], ints[keep, 0]))
        self.g_int = ints[keep][order]
        self.g_cart = cart[keep][order]
        self.kinetic = kin[keep][order]
        # FFT grid: holds products psi * V, i.e. frequencies up to 2 gmax.
        span = 2 * np.abs(self.g_int).max(axis=0) + 1
        self.fft_shape = tuple(int(_next_fast(s)) for s in span)

    @property
    def size(self) -> int:
        return len(self.kinetic)

    # -- columns (Fig. 4a) ------------------------------------------------
    @cached_property
    def columns(self) -> dict[tuple[int, int], np.ndarray]:
        """Map (g1, g2) -> basis indices of that column, z-sorted."""
        out: dict[tuple[int, int], list[int]] = {}
        for idx, (g1, g2, _) in enumerate(self.g_int):
            out.setdefault((int(g1), int(g2)), []).append(idx)
        return {k: np.array(v) for k, v in out.items()}

    def column_lengths(self) -> np.ndarray:
        """Lengths of all columns, in a deterministic key order."""
        return np.array([len(v) for _, v in
                         sorted(self.columns.items())])

    # -- FFT-grid scatter/gather --------------------------------------------
    @cached_property
    def grid_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Position of each basis G on the (wrapped) FFT grid."""
        shape = np.array(self.fft_shape)
        wrapped = np.mod(self.g_int, shape)
        return wrapped[:, 0], wrapped[:, 1], wrapped[:, 2]

    def to_grid(self, coeff: np.ndarray) -> np.ndarray:
        """Sphere coefficients -> real-space field on the FFT grid.

        Accepts (nG,) or (nbands, nG); returns (..., *fft_shape).
        Convention: psi(r) = sum_G c_G exp(i G.r) (no volume factor; the
        inverse transform carries the 1/N as in FFTW/Fortran PARATEC).
        """
        coeff = np.asarray(coeff)
        lead = coeff.shape[:-1]
        grid = np.zeros(lead + self.fft_shape, dtype=np.complex128)
        ix, iy, iz = self.grid_indices
        grid[..., ix, iy, iz] = coeff
        n = np.prod(self.fft_shape)
        return np.fft.ifftn(grid, axes=(-3, -2, -1)) * n

    def to_sphere(self, field_r: np.ndarray) -> np.ndarray:
        """Real-space field -> sphere coefficients (adjoint of to_grid)."""
        n = np.prod(self.fft_shape)
        grid = np.fft.fftn(field_r, axes=(-3, -2, -1)) / n
        ix, iy, iz = self.grid_indices
        return grid[..., ix, iy, iz]

    def index_of(self, g_int: tuple[int, int, int]) -> int:
        """Basis index of an integer G (raises if absent)."""
        match = np.flatnonzero((self.g_int == np.asarray(g_int)).all(1))
        if len(match) != 1:
            raise KeyError(f"G {g_int} not in basis")
        return int(match[0])


def _others(b: np.ndarray, i: int) -> np.ndarray:
    """Projector onto the plane of the other two reciprocal vectors."""
    others = np.delete(b, i, axis=0)
    q, _ = np.linalg.qr(others.T)
    return q @ q.T


def _next_fast(n: int) -> int:
    """Next 2/3/5-smooth size >= n (keeps numpy FFTs fast)."""
    while True:
        m = n
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return n
        n += 1
