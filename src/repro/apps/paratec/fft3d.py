"""Specialized parallel 3D FFT (§4.1/§4.2, Fig. 4).

PARATEC's scaling hinges on a custom 3D FFT that transforms the
wavefunction between its Fourier-space layout (a *sphere* of G points
split into (x, y)-columns, load balanced over processors) and its
real-space layout (contiguous x-pencils per processor), "by taking 1D
FFTs along the Z, Y, and X directions with parallel data transposes
between each set of 1D FFTs".  Communication is reduced by transposing
**only the non-zero elements**: columns outside the sphere are identically
zero before the z-FFT and are never sent.

Pipeline (forward = sphere -> real space):

  1. scatter sphere coefficients into the owned (gx, gy) columns,
     1D FFT along z (local);
  2. transpose #1 (alltoall): (gx, gy) columns -> (gx, z) pencils,
     sending only active columns;
  3. 1D FFT along y (local);
  4. transpose #2 (alltoall): (gx, z) -> (y, z) pencils;
  5. 1D FFT along x (local): real-space x-pencils (Fig. 4b).

The inverse runs the pipeline backwards.  Conventions match
:meth:`repro.apps.paratec.basis.PlaneWaveBasis.to_grid` exactly, which
the tests exploit for serial-vs-parallel comparison.

Transpose chunks are handed to ``alltoall`` as strided views: the
runtime's buffer-ownership protocol (:mod:`repro.runtime.buffers`)
performs the one packing copy a real MPI transpose would, instead of the
explicit ``.copy()`` + deep-copy-on-send double copy this module used to
pay.
"""

from __future__ import annotations

import numpy as np

from ...runtime.comm import Comm
from ...runtime.decomposition import balance_columns, split_extent
from .basis import PlaneWaveBasis


class SphereLayout:
    """Who owns what in each of the three distributed layouts."""

    def __init__(self, basis: PlaneWaveBasis, nprocs: int):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.basis = basis
        self.nprocs = nprocs
        nx, ny, nz = basis.fft_shape
        # -- G-space: active (wrapped) columns, greedy load balance (§4.2)
        ix, iy, _ = basis.grid_indices
        keys = sorted({(int(a), int(b)) for a, b in zip(ix, iy)})
        lengths = np.array([
            int(np.sum((ix == a) & (iy == b))) for a, b in keys])
        owner_arr, self.loads = balance_columns(lengths, nprocs)
        self.column_owner = {k: int(o) for k, o in zip(keys, owner_arr)}
        self.columns_of = [[] for _ in range(nprocs)]
        for k, o in self.column_owner.items():
            self.columns_of[o].append(k)
        # -- intermediate pencils: (x, z) blocks by z range
        self.z_blocks = split_extent(nz, min(nprocs, nz))
        while len(self.z_blocks) < nprocs:
            self.z_blocks.append((nz, nz))  # idle ranks hold nothing
        # -- real space: x-pencils blocked by x range (Fig. 4b)
        self.x_blocks = split_extent(nx, min(nprocs, nx))
        while len(self.x_blocks) < nprocs:
            self.x_blocks.append((nx, nx))

    def sphere_indices_of(self, rank: int) -> np.ndarray:
        """Basis indices whose column lives on ``rank`` (z-sorted)."""
        ix, iy, _ = self.basis.grid_indices
        mine = [i for i in range(self.basis.size)
                if self.column_owner[(int(ix[i]), int(iy[i]))] == rank]
        return np.array(mine, dtype=np.int64)

    def z_range(self, rank: int) -> tuple[int, int]:
        return self.z_blocks[rank]

    def x_range(self, rank: int) -> tuple[int, int]:
        return self.x_blocks[rank]


class ParallelFFT3D:
    """Distributed sphere <-> real-space transform for one rank."""

    def __init__(self, basis: PlaneWaveBasis, layout: SphereLayout,
                 comm: Comm):
        if comm.size != layout.nprocs:
            raise ValueError("layout/communicator size mismatch")
        self.basis = basis
        self.layout = layout
        self.comm = comm
        self.my_columns = layout.columns_of[comm.rank]
        self.my_sphere = layout.sphere_indices_of(comm.rank)
        ix, iy, iz = basis.grid_indices
        self._sphere_col = [(int(ix[i]), int(iy[i]))
                            for i in self.my_sphere]
        self._sphere_z = iz[self.my_sphere]

    # -- forward -------------------------------------------------------------
    def forward(self, coeff_local: np.ndarray) -> np.ndarray:
        """Local sphere coefficients -> this rank's x-pencil block.

        ``coeff_local`` is ordered like :meth:`sphere_indices_of`.
        Returns the real-space field slab ``[x0:x1, :, :]`` (complex).
        The whole pipeline is one ``fft-forward`` trace region; its
        transposes appear as the ``alltoall`` comm spans inside it.
        """
        if len(coeff_local) != len(self.my_sphere):
            raise ValueError("local coefficient count mismatch")
        with self.comm.region("fft-forward"):
            return self._forward(coeff_local)

    def _forward(self, coeff_local: np.ndarray) -> np.ndarray:
        nx, ny, nz = self.basis.fft_shape
        # 1. scatter into owned columns and z-FFT.
        cols = {k: np.zeros(nz, dtype=np.complex128)
                for k in self.my_columns}
        for c, key, z in zip(coeff_local, self._sphere_col,
                             self._sphere_z):
            cols[key][z] += c
        for key in cols:
            cols[key] = np.fft.ifft(cols[key]) * nz
        # 2. transpose #1: split each active column by destination z range.
        chunks = []
        for dest in range(self.comm.size):
            z0, z1 = self.layout.z_range(dest)
            chunks.append([(key, cols[key][z0:z1])
                           for key in self.my_columns])
        incoming = self.comm.alltoall(chunks)
        z0, z1 = self.layout.z_range(self.comm.rank)
        plane = np.zeros((nx, ny, z1 - z0), dtype=np.complex128)
        for part in incoming:
            for (cx, cy), vals in part:
                plane[cx, cy, :] = vals
        # 3. y-FFT on the (x, z) pencils.
        plane = np.fft.ifft(plane, axis=1) * ny
        # 4. transpose #2: redistribute from z-blocks to x-blocks.
        chunks = []
        for dest in range(self.comm.size):
            x0, x1 = self.layout.x_range(dest)
            chunks.append(((z0, z1), plane[x0:x1]))
        incoming = self.comm.alltoall(chunks)
        x0, x1 = self.layout.x_range(self.comm.rank)
        slab = np.zeros((x1 - x0, ny, nz), dtype=np.complex128)
        for (src_z0, src_z1), vals in incoming:
            slab[:, :, src_z0:src_z1] = vals
        # 5. x-FFT over the distributed x axis (one more transpose pair).
        return self._finish_x_fft(slab)

    def _finish_x_fft(self, slab: np.ndarray) -> np.ndarray:
        """x-FFT over the distributed axis via a gather-free exchange.

        Each rank holds ``slab = [x0:x1, ny, nz]`` of the y/z-transformed
        data.  The x transform needs full x lines; ranks exchange their
        slabs along x (alltoall of x-blocks of their (y, z) share), do
        the 1D FFT, and keep their x block.  Equivalent to transposing
        to (y, z)-pencils, transforming, and transposing back — fused.
        """
        nx, ny, nz = self.basis.fft_shape
        comm = self.comm
        # Gather full-x data for OUR (y, z) share, by splitting y.
        y_blocks = split_extent(ny, min(comm.size, ny))
        while len(y_blocks) < comm.size:
            y_blocks.append((ny, ny))
        x0, x1 = self.layout.x_range(comm.rank)
        chunks = []
        for dest in range(comm.size):
            yd0, yd1 = y_blocks[dest]
            chunks.append(((x0, x1), slab[:, yd0:yd1, :]))
        incoming = comm.alltoall(chunks)
        my_y0, my_y1 = y_blocks[comm.rank]
        lines = np.zeros((nx, my_y1 - my_y0, nz), dtype=np.complex128)
        for (sx0, sx1), vals in incoming:
            lines[sx0:sx1] = vals
        lines = np.fft.ifft(lines, axis=0) * nx
        # Send back the x block each rank owns.
        chunks = []
        for dest in range(comm.size):
            xd0, xd1 = self.layout.x_range(dest)
            chunks.append(((my_y0, my_y1), lines[xd0:xd1]))
        incoming = comm.alltoall(chunks)
        out = np.zeros((x1 - x0, ny, nz), dtype=np.complex128)
        for (sy0, sy1), vals in incoming:
            out[:, sy0:sy1, :] = vals
        return out

    # -- inverse -------------------------------------------------------------
    def inverse(self, slab: np.ndarray) -> np.ndarray:
        """This rank's real-space x-slab -> local sphere coefficients.

        Exact adjoint pipeline of :meth:`forward` (fft instead of ifft,
        1/n scalings), returning coefficients ordered like
        :meth:`SphereLayout.sphere_indices_of`.
        """
        nx, ny, nz = self.basis.fft_shape
        comm = self.comm
        x0, x1 = self.layout.x_range(comm.rank)
        if slab.shape != (x1 - x0, ny, nz):
            raise ValueError("slab shape mismatch")
        with comm.region("fft-inverse"):
            return self._inverse(slab)

    def _inverse(self, slab: np.ndarray) -> np.ndarray:
        nx, ny, nz = self.basis.fft_shape
        comm = self.comm
        x0, x1 = self.layout.x_range(comm.rank)
        # x-FFT (inverse of _finish_x_fft).
        y_blocks = split_extent(ny, min(comm.size, ny))
        while len(y_blocks) < comm.size:
            y_blocks.append((ny, ny))
        chunks = []
        for dest in range(comm.size):
            yd0, yd1 = y_blocks[dest]
            chunks.append(((x0, x1), slab[:, yd0:yd1, :]))
        incoming = comm.alltoall(chunks)
        my_y0, my_y1 = y_blocks[comm.rank]
        lines = np.zeros((nx, my_y1 - my_y0, nz), dtype=np.complex128)
        for (sx0, sx1), vals in incoming:
            lines[sx0:sx1] = vals
        lines = np.fft.fft(lines, axis=0) / nx
        chunks = []
        for dest in range(comm.size):
            xd0, xd1 = self.layout.x_range(dest)
            chunks.append(((my_y0, my_y1), lines[xd0:xd1]))
        incoming = comm.alltoall(chunks)
        mine = np.zeros((x1 - x0, ny, nz), dtype=np.complex128)
        for (sy0, sy1), vals in incoming:
            mine[:, sy0:sy1, :] = vals
        # y-FFT then transpose back to z-blocks.
        z0, z1 = self.layout.z_range(comm.rank)
        chunks = []
        for dest in range(comm.size):
            zd0, zd1 = self.layout.z_range(dest)
            chunks.append(((x0, x1), mine[:, :, zd0:zd1]))
        incoming = comm.alltoall(chunks)
        plane = np.zeros((nx, ny, z1 - z0), dtype=np.complex128)
        for (sx0, sx1), vals in incoming:
            plane[sx0:sx1] = vals
        plane = np.fft.fft(plane, axis=1) / ny
        # z-FFT on active columns only, then gather our sphere coeffs.
        chunks = [[] for _ in range(comm.size)]
        for (cx, cy), owner in self.layout.column_owner.items():
            chunks[owner].append(((cx, cy), plane[cx, cy, :]))
        incoming = comm.alltoall(chunks)
        cols = {k: np.zeros(nz, dtype=np.complex128)
                for k in self.my_columns}
        # Each incoming part came from the rank owning a z block; place it.
        for src, part in enumerate(incoming):
            sz0, sz1 = self.layout.z_range(src)
            for (cx, cy), vals in part:
                cols[(cx, cy)][sz0:sz1] = vals
        out = np.empty(len(self.my_sphere), dtype=np.complex128)
        done = {}
        for key in self.my_columns:
            done[key] = np.fft.fft(cols[key]) / nz
        for i, (key, z) in enumerate(zip(self._sphere_col,
                                         self._sphere_z)):
            out[i] = done[key][z]
        return out
