"""Self-consistent-field driver: the PARATEC total-energy loop.

Each SCF cycle: build V_eff = V_ion + V_H[rho] + V_xc[rho], run a few
all-band CG steps against it, recompute the density, and linearly mix.
The total energy uses the standard band-energy form

  E = sum_n f_n eps_n - E_H[rho] + E_xc[rho] - int V_xc rho dV

which removes the double-counted Hartree and XC pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .basis import PlaneWaveBasis
from .cg import cg_iterate, random_bands
from .density import band_density, hartree_potential, lda_xc, xc_energy
from .hamiltonian import Hamiltonian
from .lattice_cell import Cell
from .pseudopotential import local_potential_coefficients


@dataclass
class SCFState:
    """One SCF iterate's results."""

    iteration: int
    total_energy: float
    band_energy: float
    hartree_energy: float
    xc_energy: float
    gap: float
    density_change: float


@dataclass
class SCFResult:
    eigenvalues: np.ndarray
    bands: np.ndarray
    density: np.ndarray
    history: list[SCFState] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return self.history[-1].total_energy

    @property
    def converged_to(self) -> float:
        if len(self.history) < 2:
            return np.inf
        return abs(self.history[-1].total_energy
                   - self.history[-2].total_energy)


class SCFSolver:
    """Kohn-Sham SCF with the empirical Si ionic potential."""

    def __init__(self, cell: Cell, ecut: float, *, nbands: int | None = None,
                 mixing: float = 0.4, seed: int = 0):
        if not 0 < mixing <= 1:
            raise ValueError("mixing in (0, 1] required")
        self.cell = cell
        self.basis = PlaneWaveBasis(cell, ecut)
        self.nbands = nbands or cell.nbands_occupied
        if self.nbands > self.basis.size:
            raise ValueError("basis too small for requested bands")
        self.mixing = mixing
        v_ion_g = local_potential_coefficients(cell, self.basis.g_cart)
        self.v_ion = self.basis.to_grid(v_ion_g).real
        self.occupations = self._occupations()
        self.bands = random_bands(self.basis.size, self.nbands, seed)
        self.density = np.full(self.basis.fft_shape,
                               cell.nelectrons / cell.volume)

    def _occupations(self) -> np.ndarray:
        occ = np.zeros(self.nbands)
        occ[:self.cell.nbands_occupied] = 2.0
        if self.cell.nelectrons % 2:
            raise ValueError("odd electron counts not supported")
        return occ

    # -- pieces -------------------------------------------------------------
    def effective_hamiltonian(self, rho: np.ndarray) -> Hamiltonian:
        vh, _ = hartree_potential(self.basis, rho)
        _, vxc = lda_xc(rho)
        return Hamiltonian(self.basis, self.v_ion + vh + vxc)

    def total_energy(self, evals: np.ndarray, rho: np.ndarray) -> SCFState:
        _, e_h = hartree_potential(self.basis, rho)
        e_xc = xc_energy(self.basis, rho)
        _, vxc = lda_xc(rho)
        vxc_int = float((vxc * rho).mean()) * self.cell.volume
        band = float((self.occupations * evals[:self.nbands]).sum())
        total = band - e_h + e_xc - vxc_int
        nocc = self.cell.nbands_occupied
        gap = (float(evals[nocc] - evals[nocc - 1])
               if len(evals) > nocc else np.nan)
        return SCFState(iteration=0, total_energy=total, band_energy=band,
                        hartree_energy=e_h, xc_energy=e_xc, gap=gap,
                        density_change=np.nan)

    # -- main loop ------------------------------------------------------------
    def run(self, *, n_scf: int = 12, cg_steps: int = 3,
            tol: float = 1e-6) -> SCFResult:
        history: list[SCFState] = []
        evals = np.zeros(self.nbands)
        for it in range(n_scf):
            ham = self.effective_hamiltonian(self.density)
            evals, self.bands, _ = cg_iterate(ham, self.bands,
                                              n_outer=cg_steps)
            rho_new = band_density(self.basis, self.bands,
                                   self.occupations)
            change = float(np.abs(rho_new - self.density).max())
            self.density = ((1.0 - self.mixing) * self.density
                            + self.mixing * rho_new)
            state = self.total_energy(evals, self.density)
            state.iteration = it
            state.density_change = change
            history.append(state)
            if len(history) > 1 and abs(
                    history[-1].total_energy
                    - history[-2].total_energy) < tol:
                break
        return SCFResult(eigenvalues=evals, bands=self.bands,
                         density=self.density, history=history)
