"""Band structure along high-symmetry lines (extension of the study's
electronic-structure substrate).

The 2004 benchmarks run at the Gamma point only; Bloch sampling is the
natural extension and a strong physics check: the Cohen-Bergstresser
silicon model must produce the *indirect* gap (valence max at Gamma,
conduction min near X) that made silicon famous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis import PlaneWaveBasis
from .cg import solve_dense
from .hamiltonian import Hamiltonian
from .lattice_cell import SI_LATTICE_CONSTANT, Cell

#: High-symmetry points of the fcc Brillouin zone in units of 2 pi / a.
FCC_POINTS = {
    "Gamma": np.array([0.0, 0.0, 0.0]),
    "X": np.array([0.0, 0.0, 1.0]),
    "L": np.array([0.5, 0.5, 0.5]),
    "K": np.array([0.75, 0.75, 0.0]),
    "W": np.array([0.5, 0.0, 1.0]),
}


def kpoint_cartesian(label_or_frac, a: float = SI_LATTICE_CONSTANT
                     ) -> np.ndarray:
    """Cartesian k (bohr^-1) from a symmetry label or 2 pi/a units."""
    if isinstance(label_or_frac, str):
        frac = FCC_POINTS[label_or_frac]
    else:
        frac = np.asarray(label_or_frac, dtype=np.float64)
    return 2.0 * np.pi / a * frac


def bands_at_k(cell: Cell, ecut: float, k_cart: np.ndarray,
               nbands: int) -> np.ndarray:
    """Eigenvalues at one k point (dense solve; validation-scale only)."""
    basis = PlaneWaveBasis(cell, ecut, kpoint=tuple(k_cart))
    ham = Hamiltonian.ionic(basis, cell)
    evals, _ = solve_dense(ham, nbands)
    return evals


@dataclass
class BandStructure:
    """Bands along a path of k points."""

    labels: list[str]
    kpoints: np.ndarray            # (nk, 3) cartesian
    bands: np.ndarray              # (nk, nbands), Hartree

    @property
    def valence_top(self) -> float:
        return float(self.bands[:, :4].max())

    @property
    def conduction_bottom(self) -> float:
        return float(self.bands[:, 4:].min())

    @property
    def indirect_gap(self) -> float:
        """Fundamental gap: conduction minimum minus valence maximum."""
        return self.conduction_bottom - self.valence_top

    @property
    def direct_gaps(self) -> np.ndarray:
        """Per-k gap between bands 4 and 5."""
        return self.bands[:, 4] - self.bands[:, 3]

    def gap_location(self) -> tuple[str, str]:
        """(valence-max label, conduction-min label) along the path."""
        v = int(self.bands[:, :4].max(axis=1).argmax())
        c = int(self.bands[:, 4:].min(axis=1).argmin())
        return self.labels[v], self.labels[c]


def band_structure(cell: Cell, ecut: float,
                   path: list[str] | None = None, *,
                   points_per_segment: int = 4, nbands: int = 8,
                   a: float = SI_LATTICE_CONSTANT) -> BandStructure:
    """Compute bands along a high-symmetry path (default L-Gamma-X)."""
    path = path or ["L", "Gamma", "X"]
    if len(path) < 2:
        raise ValueError("need at least two path points")
    if points_per_segment < 1:
        raise ValueError("points_per_segment must be >= 1")
    ks: list[np.ndarray] = []
    labels: list[str] = []
    for a_lbl, b_lbl in zip(path, path[1:]):
        ka = kpoint_cartesian(a_lbl, a)
        kb = kpoint_cartesian(b_lbl, a)
        for t in np.linspace(0.0, 1.0, points_per_segment,
                             endpoint=False):
            ks.append(ka + t * (kb - ka))
            labels.append(a_lbl if t == 0.0 else f"{a_lbl}->{b_lbl}")
    ks.append(kpoint_cartesian(path[-1], a))
    labels.append(path[-1])
    bands = np.stack([bands_at_k(cell, ecut, k, nbands) for k in ks])
    return BandStructure(labels=labels, kpoints=np.stack(ks),
                         bands=bands)
