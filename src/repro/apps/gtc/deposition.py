"""Charge deposition: the PIC phase that fights vectorization (§6.1).

Randomly localized particles deposit charge onto grid points; two or more
particles may hit the same point, creating the memory-dependency conflict
that blocks naive vectorization.  Three algorithms are implemented:

* :func:`deposit_classic` — the scalar reference: particles processed in
  order with read-modify-write updates (Fig. 8a semantics, extended with
  the gyro-ring average of Fig. 8b);
* :func:`deposit_work_vector` — the work-vector algorithm [Nishiguchi,
  Orii & Yabe, J. Comput. Phys. 61 (1985); ref 19]: the grid array gains
  an extra dimension of the machine's vector length so every vector lane
  scatters into a private copy; copies are reduced after the particle
  loop.  Memory footprint grows by the number of lanes — the 2x-8x blowup
  that blocked OpenMP on the ES (§6.1);
* :func:`deposit_sorted` — the sorting alternative the paper mentions:
  order scatter targets, then segment-reduce (extra compute, no extra
  memory);
* :func:`deposit_fast` — the production fast path: one ``np.bincount``
  scatter-reduce over all scatter targets, no sort and no lane copies.

All variants produce identical physics; tests assert element-wise
agreement to rounding error.
"""

from __future__ import annotations

import threading

import numpy as np

from .grid import AnnulusGrid
from .particles import ParticleArray

_FAST_LOCAL = threading.local()

#: Gyro-ring sampling angles of the 4-point average (Fig. 8b).
_GYRO_ANGLES = np.array([0.0, 0.5 * np.pi, np.pi, 1.5 * np.pi])


def gyro_ring_points(particles: ParticleArray, b: float | np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """The 4 sampling points of each particle's charged ring.

    Returns ``(r_pts, theta_pts)`` of shape (4, n).  The fast circular
    motion is averaged out and replaced by a charged ring; picking four
    points on that ring preserves the influence of the trajectory without
    resolving it (§6.1).
    """
    rho = particles.gyroradius(b)
    dx = rho[None, :] * np.cos(_GYRO_ANGLES)[:, None]
    dy = rho[None, :] * np.sin(_GYRO_ANGLES)[:, None]
    r_pts = particles.r[None, :] + dx
    # Arc offset: poloidal displacement divided by local radius.
    theta_pts = particles.theta[None, :] + dy / np.maximum(r_pts, 1e-12)
    return r_pts, theta_pts


def _scatter_targets(grid: AnnulusGrid, particles: ParticleArray,
                     b: float | np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (cell index, value) pairs for all 16 scatter points.

    4 gyro points x 4 bilinear corners per particle, each carrying w/4
    times the bilinear weight.
    """
    r_pts, theta_pts = gyro_ring_points(particles, b)
    ii, jj, ww = grid.bilinear(r_pts.ravel(), theta_pts.ravel())
    charge = np.broadcast_to(particles.w / 4.0,
                             (4, len(particles))).ravel()
    flat = (ii * grid.ntheta + jj).reshape(4, -1)
    vals = ww * charge[None, :]
    return flat.ravel(), vals.ravel(), charge


def deposit_classic(grid: AnnulusGrid, particles: ParticleArray,
                    b: float | np.ndarray = 1.0) -> np.ndarray:
    """Scalar-semantics deposition (sequential read-modify-write)."""
    idx, vals, _ = _scatter_targets(grid, particles, b)
    out = np.zeros(grid.npoints)
    np.add.at(out, idx, vals)
    return out.reshape(grid.shape)


def deposit_work_vector(grid: AnnulusGrid, particles: ParticleArray,
                        b: float | np.ndarray = 1.0, *,
                        vector_length: int = 64
                        ) -> tuple[np.ndarray, dict]:
    """Work-vector deposition; returns (charge, stats).

    Each vector lane owns a private grid copy, so scatters within a vector
    chunk never conflict; the copies are summed afterwards ("after the
    main loop, the results accumulated in the work-vector array are
    gathered to the final grid array", §6.1).  ``stats`` reports the
    memory amplification this costs.
    """
    if vector_length < 1:
        raise ValueError("vector_length must be >= 1")
    idx, vals, _ = _scatter_targets(grid, particles, b)
    n = len(particles)
    # Lane assignment: position of the particle within its vector chunk.
    lanes = np.arange(n, dtype=np.int64) % vector_length
    lanes16 = np.broadcast_to(lanes, (4, 4, n)).ravel()
    copies = np.zeros((vector_length, grid.npoints))
    np.add.at(copies, (lanes16, idx), vals)
    out = copies.sum(axis=0).reshape(grid.shape)
    stats = {
        "grid_copies": vector_length,
        "memory_words": copies.size,
        "memory_amplification": float(vector_length),
    }
    return out, stats


def deposit_sorted(grid: AnnulusGrid, particles: ParticleArray,
                   b: float | np.ndarray = 1.0) -> np.ndarray:
    """Sort-and-segment-reduce deposition (extra O(n log n) compute)."""
    idx, vals, _ = _scatter_targets(grid, particles, b)
    order = np.argsort(idx, kind="stable")
    idx_s, vals_s = idx[order], vals[order]
    out = np.bincount(idx_s, weights=vals_s, minlength=grid.npoints)
    return out.reshape(grid.shape)


class FusedDeposition:
    """Scratch-reusing fused deposition (the measured hot-path kernel).

    The naive pipeline builds the full (4, n) gyro-point arrays, stacks
    16 corner index/weight planes, and scatters 16n values in one go —
    allocating ~a dozen megabyte-scale temporaries per call.  This kernel
    walks the four gyro points one at a time with preallocated n-sized
    buffers (the working set stays cache-resident), computes the bilinear
    stencil in place, and accumulates each corner with ``np.bincount`` —
    the gather/scatter vectorization of §6.1 without the work-vector
    memory blowup and without the sort :func:`deposit_sorted` pays for.

    Results agree with :func:`deposit_classic` to rounding error
    (test-enforced at rtol <= 1e-12); the summation *order* differs, so
    agreement is not bitwise.  Instances hold scratch and must not be
    shared across threads (ranks build their own, see
    :func:`deposit_fast`).
    """

    _COS = np.cos(_GYRO_ANGLES)
    _SIN = np.sin(_GYRO_ANGLES)

    def __init__(self, grid: AnnulusGrid):
        self.grid = grid
        self._n: int | None = None

    def _ensure(self, n: int) -> None:
        if self._n == n:
            return
        self._n = n
        for name in ("_rk", "_tk", "_fx", "_fy", "_gx", "_gy", "_wk"):
            setattr(self, name, np.empty(n))
        for name in ("_i0", "_j0", "_i1", "_j1", "_fl"):
            setattr(self, name, np.empty(n, dtype=np.int64))
        self._out = np.empty(self.grid.npoints)

    def __call__(self, particles: ParticleArray,
                 b: float | np.ndarray = 1.0) -> np.ndarray:
        g = self.grid
        nr, nth = g.shape
        self._ensure(len(particles))
        rho = particles.gyroradius(b)
        w4 = particles.w / 4.0
        out = self._out
        out[...] = 0.0
        rk, tk, fx, fy = self._rk, self._tk, self._fx, self._fy
        gx, gy, wk = self._gx, self._gy, self._wk
        i0, j0, i1, j1, fl = (self._i0, self._j0, self._i1, self._j1,
                              self._fl)
        inv_dr, inv_dth = 1.0 / g.dr, 1.0 / g.dtheta
        for k in range(4):
            # Gyro point k: r_k = r + rho cos, theta_k = theta + arc/r_k.
            np.multiply(rho, self._COS[k], out=rk)
            rk += particles.r
            np.multiply(rho, self._SIN[k], out=tk)
            np.maximum(rk, 1e-12, out=gx)
            tk /= gx
            tk += particles.theta
            # Bilinear stencil, in place (same clamping as grid.bilinear).
            rk -= g.r0
            rk *= inv_dr
            np.clip(rk, 0.0, nr - 1 - 1e-9, out=rk)
            np.floor(rk, out=gx)
            np.subtract(rk, gx, out=fx)
            i0[...] = gx                       # cast, no allocation
            np.mod(tk, 2.0 * np.pi, out=tk)
            tk *= inv_dth
            np.floor(tk, out=gy)
            np.subtract(tk, gy, out=fy)
            j0[...] = gy
            j0 %= nth
            np.add(i0, 1, out=i1)
            np.minimum(i1, nr - 1, out=i1)
            np.add(j0, 1, out=j1)
            j1 %= nth
            i0 *= nth
            i1 *= nth
            # Corner weights carry w/4 each; accumulate per corner.
            np.subtract(1.0, fx, out=gx)
            np.subtract(1.0, fy, out=gy)
            gx *= w4
            fx *= w4
            for wr, wc, ir, jc in ((gx, gy, i0, j0), (fx, gy, i1, j0),
                                   (gx, fy, i0, j1), (fx, fy, i1, j1)):
                np.multiply(wr, wc, out=wk)
                np.add(ir, jc, out=fl)
                out += np.bincount(fl, weights=wk, minlength=g.npoints)
        # The accumulator is reused scratch: hand back an owning array.
        shaped = out.reshape(g.shape)
        res = np.empty_like(shaped)
        np.copyto(res, shaped)
        return res


def deposit_fast(grid: AnnulusGrid, particles: ParticleArray,
                 b: float | np.ndarray = 1.0) -> np.ndarray:
    """Fused vectorized deposition; one-shot front-end.

    Builds a thread-local :class:`FusedDeposition` per grid so repeated
    calls (the solver's inner loop) reuse scratch buffers.
    """
    cache = getattr(_FAST_LOCAL, "cache", None)
    if cache is None:
        cache = _FAST_LOCAL.cache = {}
    kern = cache.get(grid)
    if kern is None:
        kern = cache[grid] = FusedDeposition(grid)
    return kern(particles, b)


def deposited_charge_total(grid: AnnulusGrid, charge: np.ndarray) -> float:
    """Total charge on the grid (plain nodal sum; deposition conserves it)."""
    if charge.shape != grid.shape:
        raise ValueError("charge shape mismatch")
    return float(charge.sum())
