"""Charge deposition: the PIC phase that fights vectorization (§6.1).

Randomly localized particles deposit charge onto grid points; two or more
particles may hit the same point, creating the memory-dependency conflict
that blocks naive vectorization.  Three algorithms are implemented:

* :func:`deposit_classic` — the scalar reference: particles processed in
  order with read-modify-write updates (Fig. 8a semantics, extended with
  the gyro-ring average of Fig. 8b);
* :func:`deposit_work_vector` — the work-vector algorithm [Nishiguchi,
  Orii & Yabe, J. Comput. Phys. 61 (1985); ref 19]: the grid array gains
  an extra dimension of the machine's vector length so every vector lane
  scatters into a private copy; copies are reduced after the particle
  loop.  Memory footprint grows by the number of lanes — the 2x-8x blowup
  that blocked OpenMP on the ES (§6.1);
* :func:`deposit_sorted` — the sorting alternative the paper mentions:
  order scatter targets, then segment-reduce (extra compute, no extra
  memory).

All three produce identical physics; tests assert element-wise agreement
to rounding error.
"""

from __future__ import annotations

import numpy as np

from .grid import AnnulusGrid
from .particles import ParticleArray

#: Gyro-ring sampling angles of the 4-point average (Fig. 8b).
_GYRO_ANGLES = np.array([0.0, 0.5 * np.pi, np.pi, 1.5 * np.pi])


def gyro_ring_points(particles: ParticleArray, b: float | np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """The 4 sampling points of each particle's charged ring.

    Returns ``(r_pts, theta_pts)`` of shape (4, n).  The fast circular
    motion is averaged out and replaced by a charged ring; picking four
    points on that ring preserves the influence of the trajectory without
    resolving it (§6.1).
    """
    rho = particles.gyroradius(b)
    dx = rho[None, :] * np.cos(_GYRO_ANGLES)[:, None]
    dy = rho[None, :] * np.sin(_GYRO_ANGLES)[:, None]
    r_pts = particles.r[None, :] + dx
    # Arc offset: poloidal displacement divided by local radius.
    theta_pts = particles.theta[None, :] + dy / np.maximum(r_pts, 1e-12)
    return r_pts, theta_pts


def _scatter_targets(grid: AnnulusGrid, particles: ParticleArray,
                     b: float | np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (cell index, value) pairs for all 16 scatter points.

    4 gyro points x 4 bilinear corners per particle, each carrying w/4
    times the bilinear weight.
    """
    r_pts, theta_pts = gyro_ring_points(particles, b)
    ii, jj, ww = grid.bilinear(r_pts.ravel(), theta_pts.ravel())
    charge = np.broadcast_to(particles.w / 4.0,
                             (4, len(particles))).ravel()
    flat = (ii * grid.ntheta + jj).reshape(4, -1)
    vals = ww * charge[None, :]
    return flat.ravel(), vals.ravel(), charge


def deposit_classic(grid: AnnulusGrid, particles: ParticleArray,
                    b: float | np.ndarray = 1.0) -> np.ndarray:
    """Scalar-semantics deposition (sequential read-modify-write)."""
    idx, vals, _ = _scatter_targets(grid, particles, b)
    out = np.zeros(grid.npoints)
    np.add.at(out, idx, vals)
    return out.reshape(grid.shape)


def deposit_work_vector(grid: AnnulusGrid, particles: ParticleArray,
                        b: float | np.ndarray = 1.0, *,
                        vector_length: int = 64
                        ) -> tuple[np.ndarray, dict]:
    """Work-vector deposition; returns (charge, stats).

    Each vector lane owns a private grid copy, so scatters within a vector
    chunk never conflict; the copies are summed afterwards ("after the
    main loop, the results accumulated in the work-vector array are
    gathered to the final grid array", §6.1).  ``stats`` reports the
    memory amplification this costs.
    """
    if vector_length < 1:
        raise ValueError("vector_length must be >= 1")
    idx, vals, _ = _scatter_targets(grid, particles, b)
    n = len(particles)
    # Lane assignment: position of the particle within its vector chunk.
    lanes = np.arange(n, dtype=np.int64) % vector_length
    lanes16 = np.broadcast_to(lanes, (4, 4, n)).ravel()
    copies = np.zeros((vector_length, grid.npoints))
    np.add.at(copies, (lanes16, idx), vals)
    out = copies.sum(axis=0).reshape(grid.shape)
    stats = {
        "grid_copies": vector_length,
        "memory_words": copies.size,
        "memory_amplification": float(vector_length),
    }
    return out, stats


def deposit_sorted(grid: AnnulusGrid, particles: ParticleArray,
                   b: float | np.ndarray = 1.0) -> np.ndarray:
    """Sort-and-segment-reduce deposition (extra O(n log n) compute)."""
    idx, vals, _ = _scatter_targets(grid, particles, b)
    order = np.argsort(idx, kind="stable")
    idx_s, vals_s = idx[order], vals[order]
    out = np.bincount(idx_s, weights=vals_s, minlength=grid.npoints)
    return out.reshape(grid.shape)


def deposited_charge_total(grid: AnnulusGrid, charge: np.ndarray) -> float:
    """Total charge on the grid (plain nodal sum; deposition conserves it)."""
    if charge.shape != grid.shape:
        raise ValueError("charge shape mismatch")
    return float(charge.sum())
