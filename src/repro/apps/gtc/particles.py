"""Particle storage and loading for GTC.

Structure-of-arrays layout (what both the vector and superscalar ports
want): one contiguous array per coordinate.  Particles carry gyrocenter
coordinates ``(r, theta, zeta)``, parallel velocity ``v_par``, magnetic
moment ``mu`` (adiabatic invariant, sets the gyroradius), charge weight
``w``, and a stable ``tag`` for tracking across domain migrations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import TorusGeometry

_FIELDS = ("r", "theta", "zeta", "v_par", "mu", "w", "tag")


@dataclass
class ParticleArray:
    """SoA particle container."""

    r: np.ndarray
    theta: np.ndarray
    zeta: np.ndarray
    v_par: np.ndarray
    mu: np.ndarray
    w: np.ndarray
    tag: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.r)
        for name in _FIELDS:
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"field {name} has shape {arr.shape}, "
                                 f"expected ({n},)")

    def __len__(self) -> int:
        return len(self.r)

    @classmethod
    def empty(cls) -> "ParticleArray":
        return cls(*(np.empty(0) for _ in range(6)),
                   tag=np.empty(0, dtype=np.int64))

    def select(self, mask_or_index: np.ndarray) -> "ParticleArray":
        """New array holding the selected particles (copies)."""
        return ParticleArray(
            *(getattr(self, f)[mask_or_index].copy() for f in _FIELDS[:-1]),
            tag=self.tag[mask_or_index].copy())

    @staticmethod
    def concatenate(parts: list["ParticleArray"]) -> "ParticleArray":
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return ParticleArray.empty()
        return ParticleArray(
            *(np.concatenate([getattr(p, f) for p in parts])
              for f in _FIELDS[:-1]),
            tag=np.concatenate([p.tag for p in parts]))

    def gyroradius(self, b: np.ndarray | float, mass: float = 1.0,
                   charge: float = 1.0) -> np.ndarray:
        """rho = sqrt(2 m mu / B) / |q| — the radius of the charged ring
        the 4-point average samples (Fig. 8b)."""
        return np.sqrt(2.0 * mass * self.mu / np.asarray(b)) / abs(charge)

    def kinetic_energy(self, b: np.ndarray | float,
                       mass: float = 1.0) -> float:
        """Sum of (1/2) m v_par^2 + mu B over particles."""
        return float(np.sum(0.5 * mass * self.v_par**2
                            + self.mu * np.asarray(b)))


def load_uniform(geometry: TorusGeometry, particles_per_cell: float,
                 *, thermal_velocity: float = 1.0, mu_mean: float = 0.01,
                 seed: int = 0) -> ParticleArray:
    """Load a quiet-start-ish uniform Maxwellian population.

    Radial positions sample the annulus uniformly in *area* (density
    proportional to r in the (r, theta) chart), so the deposited charge is
    spatially uniform up to noise.
    """
    if particles_per_cell <= 0:
        raise ValueError("particles_per_cell must be positive")
    plane = geometry.plane
    n = int(round(particles_per_cell * plane.npoints * geometry.nplanes))
    rng = np.random.default_rng(seed)
    # Uniform in area: r = sqrt(r0^2 + u (r1^2 - r0^2)).
    u = rng.random(n)
    r = np.sqrt(plane.r0**2 + u * (plane.r1**2 - plane.r0**2))
    theta = rng.uniform(0.0, 2.0 * np.pi, n)
    zeta = rng.uniform(0.0, 2.0 * np.pi, n)
    v_par = rng.normal(0.0, thermal_velocity, n)
    mu = rng.exponential(mu_mean, n)
    w = np.full(n, 1.0)
    return ParticleArray(r, theta, zeta, v_par, mu, w,
                         tag=np.arange(n, dtype=np.int64))


def load_ring_perturbation(geometry: TorusGeometry,
                           particles_per_cell: float, *,
                           mode_m: int = 4, amplitude: float = 0.2,
                           seed: int = 0) -> ParticleArray:
    """Uniform load with a poloidal-mode density perturbation.

    Seeds an ``exp(i m theta)`` density ripple by modulating the particle
    weights — the standard way to start a turbulence mode structure (the
    elongated finger-like eddies of Fig. 7 are poloidal mode structures).
    """
    if not 0 < amplitude < 1:
        raise ValueError("amplitude in (0, 1) required")
    p = load_uniform(geometry, particles_per_cell, seed=seed)
    p.w = p.w * (1.0 + amplitude * np.cos(mode_m * p.theta))
    return p
