"""Two-dimensional GTC decomposition — the paper's future work (§6.1).

The production GTC of 2004 was limited to 64 toroidal domains; running
1024 Power3 CPUs required OpenMP loop-level parallelism, which the
work-vector memory blow-up disabled on the vector machines.  The fix the
paper proposes — "to add another dimension of domain decomposition to
the code ... will be examined in future work" — is implemented here:
ranks form a (toroidal x radial) grid, particles live with the rank
whose (zeta, r) patch contains them, and the per-plane field solve is
assembled by a radial charge reduction.

Per step:

  deposit (local patch)  ->  radial allreduce of the plane charge
  ->  Poisson (redundant per radial group)  ->  gather-push (local)
  ->  shift: zeta ring exchange + radial block migration.

Agreement with the serial solver is exact to summation order (tested),
and the decomposition lifts the 64-domain concurrency cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...runtime import Comm, ParallelJob, Transport
from ...runtime.decomposition import split_extent
from .grid import TorusGeometry
from .particles import ParticleArray
from .solver import GTCSolver


@dataclass(frozen=True)
class Decomposition2D:
    """(toroidal, radial) process grid for GTC."""

    nzeta: int
    nradial: int
    geometry: TorusGeometry

    def __post_init__(self) -> None:
        if self.nzeta < 1 or self.nradial < 1:
            raise ValueError("positive grid dimensions required")
        if self.geometry.nplanes % self.nzeta:
            raise ValueError("nplanes must divide into zeta domains")
        if self.nradial > self.geometry.plane.nr // 2:
            raise ValueError("radial blocks thinner than 2 grid cells")

    @property
    def nprocs(self) -> int:
        return self.nzeta * self.nradial

    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.nradial)

    def rank(self, zeta_dom: int, r_block: int) -> int:
        return (zeta_dom % self.nzeta) * self.nradial + r_block

    def radial_edges(self) -> np.ndarray:
        """Radii bounding the radial blocks (block b: [edge_b, edge_b+1))."""
        g = self.geometry.plane
        cuts = split_extent(g.nr - 1, self.nradial)
        edges = [g.r0 + g.dr * a for a, _ in cuts] + [g.r1]
        return np.array(edges)

    def radial_block_of(self, r: np.ndarray) -> np.ndarray:
        edges = self.radial_edges()
        idx = np.searchsorted(edges, r, side="right") - 1
        return np.clip(idx, 0, self.nradial - 1)


def _migrate_radial(comm: Comm, decomp: Decomposition2D,
                    particles: ParticleArray, zeta_dom: int,
                    r_block: int) -> ParticleArray:
    """Exchange particles that drifted across radial block boundaries.

    Radial motion per step is bounded (ExB drift, clipped at the
    annulus walls), so movers go at most one block per step — mirroring
    the toroidal shift's single-domain assumption.
    """
    blocks = decomp.radial_block_of(particles.r)
    stay = particles.select(blocks == r_block)
    down = particles.select(blocks < r_block)
    up = particles.select(blocks > r_block)
    if decomp.nradial == 1:
        return particles
    inner = decomp.rank(zeta_dom, max(r_block - 1, 0))
    outer = decomp.rank(zeta_dom, min(r_block + 1,
                                      decomp.nradial - 1))
    me = decomp.rank(zeta_dom, r_block)
    # Walls: nothing can leave the annulus, so edge blocks send empties
    # to themselves via direct passthrough.
    recv_from_inner = ParticleArray.empty()
    recv_from_outer = ParticleArray.empty()
    if inner != me:
        comm.send(down, dest=inner, tag=201)
    else:
        stay = ParticleArray.concatenate([stay, down])
    if outer != me:
        comm.send(up, dest=outer, tag=202)
    else:
        stay = ParticleArray.concatenate([stay, up])
    if outer != me:
        recv_from_outer = comm.recv(source=outer, tag=201)
    if inner != me:
        recv_from_inner = comm.recv(source=inner, tag=202)
    return ParticleArray.concatenate([stay, recv_from_inner,
                                      recv_from_outer])


def run_parallel_2d(geometry: TorusGeometry, particles: ParticleArray, *,
                    nzeta: int, nradial: int, nsteps: int,
                    dt: float = 0.05, alpha: float = 1.0,
                    depositor: str = "classic",
                    transport: Transport | None = None):
    """Run GTC on an (nzeta x nradial) process grid.

    Returns the per-rank :class:`~repro.apps.gtc.parallel.GTCRankResult`
    list of the zeta-domain owners (radial groups share plane fields, so
    results are reported once per zeta domain by the r=0 members), plus
    the total particle count for conservation checks.
    """
    from .parallel import GTCRankResult

    decomp = Decomposition2D(nzeta, nradial, geometry)
    planes_per_dom = geometry.nplanes // nzeta
    npts_global = geometry.plane.npoints * geometry.nplanes
    charge_scale = npts_global / max(len(particles), 1)

    def rank_main(comm: Comm):
        zeta_dom, r_block = decomp.coords(comm.rank)
        plane_ids = geometry.plane_of(particles.zeta)
        blocks = decomp.radial_block_of(particles.r)
        mine = particles.select(
            (plane_ids >= zeta_dom * planes_per_dom)
            & (plane_ids < (zeta_dom + 1) * planes_per_dom)
            & (blocks == r_block))
        local = GTCSolver(geometry, mine, dt=dt, alpha=alpha,
                          depositor=depositor,
                          charge_scale=charge_scale,
                          plane_range=(zeta_dom * planes_per_dom,
                                       planes_per_dom))
        # One sub-communicator per toroidal domain: its members are the
        # radial blocks sharing this domain's poloidal planes.
        radial_comm = comm.split(color=zeta_dom)
        for _ in range(nsteps):
            with comm.phase("charge"):
                local.charge_deposition()
            with comm.phase("charge-reduce"):
                # Assemble each plane's charge across the radial blocks.
                if nradial > 1:
                    for k in range(planes_per_dom):
                        local.charge[k] = radial_comm.allreduce(
                            local.charge[k])
            with comm.phase("poisson"):
                local.field_solve()
            with comm.phase("push"):
                local.gather_push()
            with comm.phase("shift"):
                # Toroidal ring exchange within this radial layer...
                merged = _shift_zeta_layer(comm, decomp, geometry,
                                           local.particles, zeta_dom,
                                           r_block)
                # ...then radial block migration.
                local.particles = _migrate_radial(
                    comm, decomp, merged, zeta_dom, r_block)
        diag = local.diagnostics()
        return GTCRankResult(
            domain=comm.rank, nparticles=diag.nparticles,
            kinetic_energy=diag.kinetic_energy,
            field_energy=diag.field_energy,
            total_charge=diag.total_charge,
            phi_planes=[p.copy() for p in local.phi],
            tags=np.sort(local.particles.tag.copy()))

    return ParallelJob(decomp.nprocs, transport=transport).run(rank_main)


def _shift_zeta_layer(comm: Comm, decomp: Decomposition2D,
                      geometry: TorusGeometry, particles: ParticleArray,
                      zeta_dom: int, r_block: int) -> ParticleArray:
    """Toroidal shift between same-radial-layer neighbours.

    Reimplements :func:`repro.apps.gtc.shift.shift_particles`'s exchange
    with the 2D rank mapping (left/right neighbours share ``r_block``).
    """
    from .shift import classify_movers

    stay, to_left, to_right = classify_movers(
        geometry, particles, zeta_dom, decomp.nzeta)
    if decomp.nzeta == 1:
        return particles
    left = decomp.rank(zeta_dom - 1, r_block)
    right = decomp.rank(zeta_dom + 1, r_block)
    comm.send(particles.select(to_left), dest=left, tag=101)
    comm.send(particles.select(to_right), dest=right, tag=102)
    from_right = comm.recv(source=right, tag=101)
    from_left = comm.recv(source=left, tag=102)
    return ParticleArray.concatenate(
        [particles.select(stay), from_left, from_right])
