"""Gyrokinetic Poisson solve on each poloidal plane.

The electrostatic potential is obtained everywhere on the grid from the
deposited charge (§6): we solve the (screened) Poisson equation

    (lap_perp - alpha) phi = -rho_hat,   phi(r0) = phi(r1) = 0

on the annulus, where ``alpha`` is the adiabatic-electron screening term
(``alpha=0`` recovers the plain Poisson equation) and ``rho_hat`` is the
charge density minus its flux-surface average (quasi-neutral drive, so the
m=0 component is removed).  Method: FFT in the periodic poloidal angle,
then a tridiagonal solve per mode in radius — the standard GTC field
solver structure.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from .grid import AnnulusGrid


class PoissonSolver:
    """Pre-factored FFT/tridiagonal Helmholtz solver on an annulus."""

    def __init__(self, grid: AnnulusGrid, alpha: float = 0.0):
        if alpha < 0:
            raise ValueError("screening alpha must be >= 0")
        self.grid = grid
        self.alpha = alpha
        self._bands = self._build_bands()

    def _build_bands(self) -> np.ndarray:
        """Banded operator per poloidal mode m (interior points only).

        Discretizes ``phi'' + phi'/r - (m^2/r^2 + alpha) phi`` with central
        differences on interior radii; Dirichlet walls are eliminated.
        Returns array (nmodes, 3, nr-2) in ``solve_banded`` layout.
        """
        g = self.grid
        r = g.radii()[1:-1]
        dr = g.dr
        nmodes = g.ntheta // 2 + 1
        m = np.arange(nmodes)[:, None]
        lower = np.broadcast_to(1.0 / dr**2 - 1.0 / (2 * r * dr),
                                (nmodes, len(r)))
        diag = (-2.0 / dr**2 - m**2 / r**2 - self.alpha) \
            * np.ones((nmodes, len(r)))
        upper = np.broadcast_to(1.0 / dr**2 + 1.0 / (2 * r * dr),
                                (nmodes, len(r)))
        bands = np.zeros((nmodes, 3, len(r)))
        bands[:, 0, 1:] = upper[:, :-1]   # superdiagonal
        bands[:, 1, :] = diag
        bands[:, 2, :-1] = lower[:, 1:]   # subdiagonal
        return bands

    def solve(self, rho: np.ndarray, *,
              remove_flux_average: bool = True) -> np.ndarray:
        """Potential phi from charge density rho (shape (nr, ntheta))."""
        g = self.grid
        if rho.shape != g.shape:
            raise ValueError("rho shape mismatch")
        rho_hat = np.fft.rfft(rho, axis=1)
        if remove_flux_average:
            rho_hat[:, 0] = 0.0  # quasineutral: drop flux-surface average
        phi_hat = np.zeros_like(rho_hat)
        for m in range(rho_hat.shape[1]):
            rhs = -rho_hat[1:-1, m]
            if not np.any(rhs):
                continue
            phi_hat[1:-1, m] = (
                solve_banded((1, 1), self._bands[m], rhs.real)
                + 1j * solve_banded((1, 1), self._bands[m], rhs.imag))
        return np.fft.irfft(phi_hat, n=g.ntheta, axis=1)

    def residual(self, phi: np.ndarray, rho: np.ndarray,
                 *, remove_flux_average: bool = True) -> float:
        """Max-norm residual of the discrete Helmholtz equation.

        Evaluates ``(lap_perp - alpha) phi + rho_hat`` on interior points
        with the same discretization the solver uses (tests drive this to
        rounding error).
        """
        g = self.grid
        r = g.radii()[:, None]
        dr, dth = g.dr, g.dtheta
        lap_r = (phi[2:, :] - 2 * phi[1:-1, :] + phi[:-2, :]) / dr**2 \
            + (phi[2:, :] - phi[:-2, :]) / (2 * dr * r[1:-1])
        # Spectral theta derivative to match the FFT solve exactly.
        k = np.fft.rfftfreq(g.ntheta, d=1.0 / g.ntheta)
        phi_hat = np.fft.rfft(phi[1:-1, :], axis=1)
        lap_th = np.fft.irfft(-(k**2) * phi_hat, n=g.ntheta, axis=1) \
            / r[1:-1]**2
        rho_eff = rho.copy()
        if remove_flux_average:
            rho_hat = np.fft.rfft(rho_eff, axis=1)
            rho_hat[:, 0] = 0.0
            rho_eff = np.fft.irfft(rho_hat, n=g.ntheta, axis=1)
        res = lap_r + lap_th - self.alpha * phi[1:-1, :] + rho_eff[1:-1, :]
        return float(np.abs(res).max())
