"""GTC work profile for the performance model (Table 6).

GTC runs in **single precision** (§6.2), so phases carry
``word_bytes=4``; the X1's theoretical single-precision peak doubles but
— as the paper observes — gather-limited memory access obviates it.

Phase constants are per particle (charge, push, shift) or per grid point
(field solve) and derive from the implemented kernels:

* charge deposition: 4 gyro-ring points x 4 bilinear corners = 16 scatter
  updates + ring trigonometry  -> ~60 flops, ~38 scattered words;
* gather-push: the same 16-point gather for two field components + the
  RK2 gyrocenter update -> ~200 flops, ~50 scattered words;
* shift: the two successive conditional blocks + coordinate wrap -> ~22
  flops, sequential access;
* field solve: FFT + radial tridiagonal recurrences; the recurrence is a
  first-order linear recurrence and does not vectorize, which is why the
  vector machines feel the grid work disproportionately at 10 particles
  per cell.

The vector ports replace the classic deposition with the work-vector
algorithm (replacement phase): identical scatter volume plus the
VL-copies zero/reduce sweep, and a 2-8x memory blow-up that disabled
loop-level OpenMP (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...perf.porting import PhasePort, PortingSpec
from ...perf.work import AccessPattern, AppProfile, CommPhase, WorkPhase

CHARGE_FLOPS_PER_PARTICLE = 60.0
CHARGE_WORDS_PER_PARTICLE = 38.0
PUSH_FLOPS_PER_PARTICLE = 200.0
PUSH_WORDS_PER_PARTICLE = 50.0
SHIFT_FLOPS_PER_PARTICLE = 22.0
SHIFT_WORDS_PER_PARTICLE = 8.0
FIELD_FLOPS_PER_POINT = 150.0
FIELD_WORDS_PER_POINT = 60.0

#: Paper problem: 2 million grid points; 10 or 100 particles per cell.
GRID_POINTS_TOTAL = 2.0e6
#: Fraction of particles crossing a domain boundary per step.
MOVER_FRACTION = 0.10
#: OpenMP loop-level parallel efficiency at 16 threads on a Power3 node
#: (all 16 CPUs contend for the node's shared memory system).
OPENMP_EFFICIENCY = 0.55
#: Memory-bank-conflict slowdown of the deposition scatter before the ES
#: `duplicate` pragma spread the hot arrays across banks (fix gave +37%).
BANK_CONFLICT_UNTUNED = 0.27


@dataclass(frozen=True)
class GTCConfig:
    """One Table 6 configuration."""

    particles_per_cell: int        # 10 or 100
    nprocs: int
    hybrid_threads: int = 1        # OpenMP threads per MPI rank (Power3)

    def __post_init__(self) -> None:
        if self.particles_per_cell < 1 or self.nprocs < 1:
            raise ValueError("bad configuration")
        mpi_ranks = self.nprocs / self.hybrid_threads
        if mpi_ranks > 64:
            raise ValueError(
                "GTC's grid decomposition is limited to 64 MPI domains "
                "(§6.1); use hybrid_threads for higher concurrency")

    @property
    def label(self) -> str:
        return f"{self.particles_per_cell} part/cell"

    @property
    def particles_total(self) -> float:
        return GRID_POINTS_TOTAL * self.particles_per_cell

    @property
    def particles_per_rank(self) -> float:
        return self.particles_total / self.nprocs

    @property
    def grid_points_per_rank(self) -> float:
        return GRID_POINTS_TOTAL / self.nprocs


def memory_amplification(vector_length: int,
                         particles_per_cell: int) -> float:
    """Total-footprint blow-up of the work-vector method.

    Footprint ratio (work-vector vs scalar code): particles hold ~7 words
    each, the scalar grid ~4 words per point, and the work-vector code
    adds two VL-sized grid-copy arrays (accumulator + gather staging).
    At the production 10-particles-per-cell resolution this gives ~7.9x
    on the ES (VL=256) and ~2.7x on the X1 (VL=64) — the paper's "2 to 8
    times higher" (§6.1).
    """
    base = 7.0 * particles_per_cell + 4.0
    return (base + 2.0 * vector_length) / base


def build_profile(config: GTCConfig, *,
                  workvector_length: int = 256) -> AppProfile:
    """Per-rank work profile (MPI parallelism; hybrid scales the rank)."""
    n_p = config.particles_per_rank * config.hybrid_threads
    n_g = config.grid_points_per_rank * config.hybrid_threads

    charge = WorkPhase(
        "charge", flops=CHARGE_FLOPS_PER_PARTICLE * n_p,
        words=CHARGE_WORDS_PER_PARTICLE * n_p,
        access=AccessPattern.GATHER, trip=4096,
        vectorizable=False,        # classic algorithm: memory dependency
        word_bytes=4)
    push = WorkPhase(
        "push", flops=PUSH_FLOPS_PER_PARTICLE * n_p,
        words=PUSH_WORDS_PER_PARTICLE * n_p,
        access=AccessPattern.GATHER, trip=4096,
        vectorizable=True, word_bytes=4)
    shift = WorkPhase(
        "shift", flops=SHIFT_FLOPS_PER_PARTICLE * n_p,
        words=SHIFT_WORDS_PER_PARTICLE * n_p,
        access=AccessPattern.UNIT, trip=4096,
        vectorizable=True,         # after the conditional-block rewrite
        word_bytes=4)
    field = WorkPhase(
        "field-solve", flops=FIELD_FLOPS_PER_POINT * n_g,
        words=FIELD_WORDS_PER_POINT * n_g,
        access=AccessPattern.STRIDED, trip=64,
        vectorizable=False,        # radial tridiagonal recurrence
        word_bytes=4)
    phases = [charge, push, shift, field]
    baseline = sum(p.flops for p in phases)

    if config.hybrid_threads > 1:
        # Hybrid MPI/OpenMP (Power3 P=1024 row): the particle loops are
        # thread-parallel but saturate the shared node memory bus well
        # below linear scaling, and the field solve stays serial within
        # the team (wall-clock x threads in per-CPU terms).  Both
        # inflations are execution overheads, not "valid" flops — the
        # baseline below stays uninflated, as in the paper's reporting.
        h = config.hybrid_threads
        inflate = 1.0 / OPENMP_EFFICIENCY
        phases = [p.scaled(inflate) for p in (charge, push, shift)]
        phases.append(field.scaled(float(h)))

    comms = []
    if config.nprocs > 1:
        mover_bytes = MOVER_FRACTION * n_p * 7 * 4.0
        comms.append(CommPhase("shift-exchange", "p2p", messages=2.0,
                               bytes_total=mover_bytes))
        # Guard-cell charge accumulation between adjacent planes.
        comms.append(CommPhase("guard-cells", "p2p", messages=2.0,
                               bytes_total=n_g * 4.0 * 0.05))
        comms.append(CommPhase("diagnostics", "allreduce", messages=1.0,
                               bytes_total=64.0))

    profile = AppProfile("gtc", config.label, config.nprocs,
                         phases=phases, comms=comms)
    profile.baseline_flops = baseline
    return profile


def _porting_for_counts(n_p: float, n_g: float, *,
                        es_bank_conflict_fixed: bool = True,
                        x1_shift_vectorized: bool = True,
                        workvector_length_es: int = 256,
                        workvector_length_x1: int = 64) -> PortingSpec:
    """Porting spec parameterized by per-rank particle/grid counts."""
    spec = PortingSpec("gtc")

    def work_vector_charge(vl: int, bank_conflict: float) -> WorkPhase:
        # Scatter volume unchanged; add the per-step zero + reduce sweep
        # of the VL grid copies (unit stride, but real traffic).
        extra_words = 3.0 * vl * n_g
        return WorkPhase(
            "charge",
            flops=CHARGE_FLOPS_PER_PARTICLE * n_p + 2.0 * vl * n_g,
            words=CHARGE_WORDS_PER_PARTICLE * n_p + extra_words,
            access=AccessPattern.GATHER, trip=4096, vectorizable=True,
            word_bytes=4, bank_conflict=bank_conflict)

    es_conflict = 0.0 if es_bank_conflict_fixed else BANK_CONFLICT_UNTUNED
    spec.set("ES", "charge", PhasePort(
        vectorized=True, note="work-vector deposition (duplicate pragma)",
        replacement=work_vector_charge(workvector_length_es, es_conflict)))
    spec.set("X1", "charge", PhasePort(
        vectorized=True, note="work-vector deposition",
        replacement=work_vector_charge(workvector_length_x1, 0.0)))
    spec.set("ES", "shift", PhasePort(
        vectorized=False, note="nested ifs not vectorized on ES"))
    if not x1_shift_vectorized:
        spec.set("X1", "shift", PhasePort(
            vectorized=False, multistreamed=False,
            note="original nested-if shift"))
    return spec


def gtc_porting(config: GTCConfig, **kwargs) -> PortingSpec:
    """The §6.1 porting story as a PortingSpec.

    * Both vector machines replace the classic deposition with the
      work-vector algorithm: the scatter becomes conflict-free (and thus
      vectorizable) at the cost of zeroing and reducing VL private grid
      copies every step;
    * the ES deposition suffered memory-bank conflicts until the
      ``duplicate`` pragma spread the hot arrays across banks (+37% on
      the routine, §6.1);
    * the ES ``shift`` was left unvectorized (nested ifs); the X1 port
      rewrote it into two successive conditional blocks (54% -> 4% of
      overall time, §6.1).
    """
    return _porting_for_counts(
        config.particles_per_rank * config.hybrid_threads,
        config.grid_points_per_rank * config.hybrid_threads, **kwargs)


def gtc_porting_2d(particles_per_cell: int, nprocs: int,
                   **kwargs) -> PortingSpec:
    """Porting spec matching :func:`build_profile_2d`'s per-rank work."""
    return _porting_for_counts(
        GRID_POINTS_TOTAL * particles_per_cell / nprocs,
        GRID_POINTS_TOTAL / nprocs, **kwargs)


def feed_metrics(registry, config: GTCConfig) -> None:
    """Publish the model work profile into a shared metrics registry
    (``gtc.model.*`` namespace)."""
    registry.ingest_profile(build_profile(config))


def table6_configs() -> list[GTCConfig]:
    out = [GTCConfig(ppc, p) for ppc in (10, 100) for p in (32, 64)]
    out.append(GTCConfig(100, 1024, hybrid_threads=16))
    return out


def build_profile_2d(particles_per_cell: int, nprocs: int) -> AppProfile:
    """Future-work projection: the 2D (toroidal x radial) decomposition.

    Implemented in :mod:`repro.apps.gtc.parallel2d`, this lifts the
    64-domain cap without OpenMP, so vector machines can scale past 64
    processors and the hybrid memory-contention penalty disappears.
    Work per rank is the pure-MPI share plus the radial charge
    reduction.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    n_p = GRID_POINTS_TOTAL * particles_per_cell / nprocs
    n_g = GRID_POINTS_TOTAL / nprocs
    base = build_profile(GTCConfig(particles_per_cell, min(nprocs, 64)))
    scale = min(nprocs, 64) / nprocs
    phases = [p.scaled(scale) for p in base.phases]
    comms = []
    if nprocs > 1:
        comms = [c for c in base.comms]
        comms.append(CommPhase("radial-charge-reduce", "allreduce",
                               messages=2.0, bytes_total=n_g * 4.0))
    profile = AppProfile("gtc", f"{particles_per_cell} part/cell (2D)",
                         nprocs, phases=phases, comms=comms)
    profile.baseline_flops = base.reported_flops * scale
    del n_p
    return profile
