"""Hardware-counter instrumentation for GTC runs (ftrace/pat style).

Accounts the particle loops (charge deposition via the work-vector
algorithm, gather-push, shift) and the field solve with their actual
trip counts, strip-mined into the target machine's vector registers.
The paper's measured AVL/VOR at 100 particles per cell — 228/99% on the
ES, 62/97% on the X1 (§6.2) — fall out of the same loop structure.
"""

from __future__ import annotations

from ...machine.counters import HardwareCounters
from ...machine.spec import MachineSpec
from .profile import (
    CHARGE_FLOPS_PER_PARTICLE,
    FIELD_FLOPS_PER_POINT,
    PUSH_FLOPS_PER_PARTICLE,
    SHIFT_FLOPS_PER_PARTICLE,
)
from .solver import GTCSolver


def counters_for(machine: MachineSpec) -> HardwareCounters:
    return HardwareCounters(vector_length=machine.vector_length)


def record_step(solver: GTCSolver, counters: HardwareCounters,
                machine: MachineSpec, nsteps: int = 1) -> None:
    """Account ``nsteps`` of the PIC cycle's loop structure.

    Particle loops are strip-mined over the particle count in chunks of
    ~90% of the register length (gather/scatter setup steals slots, which
    is why ftrace reports AVL 228 rather than 256); the shift loop is
    scalar on the ES (§6.1); the radial recurrence of the field solve is
    scalar everywhere.
    """
    n_p = len(solver.particles)
    n_g = solver.geometry.plane.npoints * solver.nplanes_local
    trip = max(1, int(0.9 * machine.vector_length)) \
        if machine.is_vector else max(1, n_p)
    shift_vectorized = machine.name != "ES"
    for _ in range(nsteps):
        counters.record_loop(trip=trip,
                             ops_per_iter=CHARGE_FLOPS_PER_PARTICLE,
                             repeats=max(1, n_p // max(trip, 1)),
                             phase="charge")
        counters.record_loop(trip=trip,
                             ops_per_iter=PUSH_FLOPS_PER_PARTICLE,
                             repeats=max(1, n_p // max(trip, 1)),
                             phase="push")
        counters.record_loop(trip=trip,
                             ops_per_iter=SHIFT_FLOPS_PER_PARTICLE,
                             repeats=max(1, n_p // max(trip, 1)),
                             vectorized=shift_vectorized, phase="shift")
        counters.record_loop(trip=solver.geometry.plane.nr,
                             ops_per_iter=FIELD_FLOPS_PER_POINT,
                             repeats=max(1, n_g
                                         // solver.geometry.plane.nr),
                             vectorized=False, phase="field")


def run_instrumented(solver: GTCSolver, machine: MachineSpec,
                     nsteps: int, registry=None) -> HardwareCounters:
    """Advance the solver while accounting its counters.

    With ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`),
    the counters are also published into the shared metrics namespace.
    """
    counters = counters_for(machine)
    for _ in range(nsteps):
        solver.step(1)
        record_step(solver, counters, machine, 1)
    if registry is not None:
        feed_registry(counters, registry)
    return counters


def feed_registry(counters: HardwareCounters, registry) -> None:
    """Publish GTC hardware counters into a shared metrics registry."""
    registry.ingest_counters(counters, prefix="gtc.hw")
