"""Serial GTC reference solver: deposit -> solve -> gather-push (-> shift).

Runs all toroidal planes in one address space.  The parallel driver in
:mod:`repro.apps.gtc.parallel` distributes the planes over ranks and must
agree with this solver to rounding error (integration-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .deposition import (
    deposit_classic,
    deposit_fast,
    deposit_sorted,
    deposit_work_vector,
)
from .grid import TorusGeometry
from .particles import ParticleArray
from .poisson import PoissonSolver
from .push import electric_field, field_energy, push_rk2

_DEPOSITORS = ("classic", "work-vector", "sorted", "fast")


@dataclass
class GTCDiagnostics:
    step: int
    total_charge: float
    kinetic_energy: float
    field_energy: float
    nparticles: int
    max_phi: float

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.field_energy


class GTCSolver:
    """Gyrokinetic PIC on stacked poloidal planes (serial reference)."""

    def __init__(self, geometry: TorusGeometry, particles: ParticleArray,
                 *, dt: float = 0.05, alpha: float = 1.0,
                 depositor: str = "classic", vector_length: int = 64,
                 charge_scale: float | None = None,
                 plane_range: tuple[int, int] | None = None):
        if depositor not in _DEPOSITORS:
            raise ValueError(f"depositor must be one of {_DEPOSITORS}")
        self.plane_start, self.nplanes_local = (
            plane_range if plane_range is not None
            else (0, geometry.nplanes))
        if self.plane_start < 0 or                 self.plane_start + self.nplanes_local > geometry.nplanes:
            raise ValueError("plane_range outside the torus")
        max_dzeta = np.abs(particles.v_par).max(initial=0.0) \
            * dt / geometry.major_radius
        if geometry.nplanes > 1 and max_dzeta >= geometry.dzeta:
            raise ValueError(
                "dt too large: particles could jump more than one domain "
                "per step (GTC's shift assumes single-domain moves)")
        self.geometry = geometry
        self.particles = particles
        self.dt = dt
        self.depositor = depositor
        self.vector_length = vector_length
        self.poisson = PoissonSolver(geometry.plane, alpha=alpha)
        # Normalize deposited charge to a density-like quantity so the
        # field amplitude is grid-resolution independent.
        npts = geometry.plane.npoints * geometry.nplanes
        self.charge_scale = (charge_scale if charge_scale is not None
                             else npts / max(len(particles), 1))
        self.phi = [np.zeros(geometry.plane.shape)
                    for _ in range(self.nplanes_local)]
        self.charge = [np.zeros(geometry.plane.shape)
                       for _ in range(self.nplanes_local)]
        self.step_count = 0

    # -- phases -----------------------------------------------------------
    def _deposit(self, plane_particles: ParticleArray) -> np.ndarray:
        g = self.geometry.plane
        b = self.geometry.b0
        if self.depositor == "classic":
            rho = deposit_classic(g, plane_particles, b)
        elif self.depositor == "fast":
            rho = deposit_fast(g, plane_particles, b)
        elif self.depositor == "sorted":
            rho = deposit_sorted(g, plane_particles, b)
        else:
            rho, _ = deposit_work_vector(
                g, plane_particles, b, vector_length=self.vector_length)
        return rho * self.charge_scale

    def particles_of_plane(self, k: int) -> ParticleArray:
        """Particles on *local* plane ``k`` (global plane start + k)."""
        planes = self.geometry.plane_of(self.particles.zeta)
        return self.particles.select(planes == self.plane_start + k)

    def charge_deposition(self) -> None:
        for k in range(self.nplanes_local):
            self.charge[k] = self._deposit(self.particles_of_plane(k))

    def field_solve(self) -> None:
        for k in range(self.nplanes_local):
            self.phi[k] = self.poisson.solve(self.charge[k])

    def gather_push(self) -> None:
        geom = self.geometry
        planes = geom.plane_of(self.particles.zeta)
        parts = []
        for k in range(self.nplanes_local):
            p = self.particles.select(planes == self.plane_start + k)
            if len(p) == 0:
                continue
            e_r, e_th = electric_field(geom.plane, self.phi[k])
            push_rk2(geom, p, e_r, e_th, self.dt)
            parts.append(p)
        stray = self.particles.select(
            (planes < self.plane_start)
            | (planes >= self.plane_start + self.nplanes_local))
        if len(stray):
            parts.append(stray)
        self.particles = ParticleArray.concatenate(parts) \
            if parts else ParticleArray.empty()

    def step(self, nsteps: int = 1) -> None:
        for _ in range(nsteps):
            self.charge_deposition()
            self.field_solve()
            self.gather_push()
            self.step_count += 1

    # -- diagnostics --------------------------------------------------------
    def diagnostics(self) -> GTCDiagnostics:
        total_charge = sum(float(c.sum()) for c in self.charge)
        return GTCDiagnostics(
            step=self.step_count,
            total_charge=total_charge,
            kinetic_energy=self.particles.kinetic_energy(self.geometry.b0),
            field_energy=sum(field_energy(self.geometry.plane, p)
                             for p in self.phi),
            nparticles=len(self.particles),
            max_phi=max(float(np.abs(p).max()) for p in self.phi),
        )

    def potential_snapshot(self, plane: int = 0) -> np.ndarray:
        """Electrostatic potential on one plane (Figure 7 data)."""
        return self.phi[plane].copy()
