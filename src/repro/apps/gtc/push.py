"""Gather-push: fields to particles, then the gyrocenter equations (§6).

The gather mirrors the deposition: the electric field is sampled at the
same four gyro-ring points and averaged, preserving the finite-Larmor-
radius physics.  The push integrates the gyrocenter drift equations for a
uniform toroidal field B = B0 zeta_hat:

    dr/dt      =  E_theta / B0                     (E x B, radial)
    dtheta/dt  = -E_r / (r B0)                     (E x B, poloidal)
    dzeta/dt   =  v_par / R0                       (parallel streaming)
    dv_par/dt  =  (q/m) E_par                      (zero here: E = -grad_perp phi)

with a second-order Runge-Kutta (midpoint) step.  ``mod`` rather than
``modulo``-style branching keeps the loop body vectorizable — the exact
issue the X1 port hit in this routine (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .deposition import gyro_ring_points
from .grid import AnnulusGrid, TorusGeometry
from .particles import ParticleArray


def electric_field(grid: AnnulusGrid, phi: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """E = -grad(phi): returns (E_r, E_theta) on the grid."""
    d_dr, d_dth = grid.gradient(phi)
    return -d_dr, -d_dth


def gather_field(grid: AnnulusGrid, e_r: np.ndarray, e_theta: np.ndarray,
                 particles: ParticleArray, b: float | np.ndarray = 1.0
                 ) -> tuple[np.ndarray, np.ndarray]:
    """4-point gyro-averaged field at each particle."""
    r_pts, theta_pts = gyro_ring_points(particles, b)
    ii, jj, ww = grid.bilinear(r_pts.ravel(), theta_pts.ravel())
    er_flat = e_r.ravel()
    et_flat = e_theta.ravel()
    flat = (ii * grid.ntheta + jj)
    er_p = (ww * er_flat[flat]).sum(axis=0).reshape(4, -1).mean(axis=0)
    et_p = (ww * et_flat[flat]).sum(axis=0).reshape(4, -1).mean(axis=0)
    return er_p, et_p


@dataclass
class PushResult:
    """Bookkeeping from one push (used by diagnostics and profiles)."""

    max_radial_excursion: float
    mean_speed: float


def push_rk2(geometry: TorusGeometry, particles: ParticleArray,
             e_r_grid: np.ndarray, e_theta_grid: np.ndarray,
             dt: float) -> PushResult:
    """Advance particles in place by one RK2 (midpoint) step."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    g = geometry.plane
    b0 = geometry.b0

    def derivatives(p: ParticleArray):
        er, et = gather_field(g, e_r_grid, e_theta_grid, p, b0)
        dr = et / b0
        dtheta = -er / (np.maximum(p.r, 1e-12) * b0)
        dzeta = p.v_par / geometry.major_radius
        return dr, dtheta, dzeta

    r0, th0, z0 = particles.r.copy(), particles.theta.copy(), \
        particles.zeta.copy()
    k1r, k1t, k1z = derivatives(particles)
    particles.r = np.clip(r0 + 0.5 * dt * k1r, g.r0, g.r1)
    particles.theta = th0 + 0.5 * dt * k1t
    particles.zeta = z0 + 0.5 * dt * k1z
    k2r, k2t, k2z = derivatives(particles)
    particles.r = np.clip(r0 + dt * k2r, g.r0, g.r1)
    particles.theta = np.mod(th0 + dt * k2t, 2.0 * np.pi)
    particles.zeta = np.mod(z0 + dt * k2z, 2.0 * np.pi)
    speed = np.hypot(k2r, particles.r * k2t)
    return PushResult(
        max_radial_excursion=float(np.abs(particles.r - r0).max(
            initial=0.0)),
        mean_speed=float(speed.mean()) if len(particles) else 0.0,
    )


def field_energy(grid: AnnulusGrid, phi: np.ndarray) -> float:
    """(1/2) integral |grad phi|^2 over the annulus."""
    d_dr, d_dth = grid.gradient(phi)
    w = grid.cell_volume_weights()
    return float(0.5 * ((d_dr**2 + d_dth**2) * w).sum())
