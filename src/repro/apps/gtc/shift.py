"""Particle shift between toroidal domains (§6.1).

After the push, every particle's toroidal angle is checked against its
domain's zeta range; movers are packed and exchanged with the left/right
neighbour domains.  This is the routine whose nested-if structure blocked
vectorization on the X1 until it was rewritten as two successive
conditional blocks (54% -> 4% of runtime); our implementation *is* the
rewritten form — two mask evaluations, no nested branching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...runtime.comm import Comm
from .grid import TorusGeometry
from .particles import ParticleArray


@dataclass(frozen=True)
class ShiftStats:
    sent_left: int
    sent_right: int
    received: int


def classify_movers(geometry: TorusGeometry, particles: ParticleArray,
                    domain: int, ndomains: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Masks (stay, to_left, to_right) for one domain's particles.

    Two successive conditional blocks — the vectorizable structure of the
    X1 port.  Particles can move at most one domain per step (the push dt
    is restricted so |dzeta| < domain width), mirroring GTC.
    """
    if not 0 <= domain < ndomains:
        raise ValueError("domain out of range")
    width = 2.0 * np.pi / ndomains
    lo, hi = domain * width, (domain + 1) * width
    z = np.mod(particles.zeta, 2.0 * np.pi)
    # Signed distance into the left/right neighbour, on the periodic circle.
    off_left = np.mod(lo - z, 2.0 * np.pi)
    off_right = np.mod(z - hi, 2.0 * np.pi)
    to_left = (off_left > 0) & (off_left <= width)
    to_right = (off_right >= 0) & (off_right < width) & ~to_left
    inside = (z >= lo) & (z < hi)
    to_left &= ~inside
    to_right &= ~inside
    stay = ~(to_left | to_right)
    return stay, to_left, to_right


def shift_particles(comm: Comm, geometry: TorusGeometry,
                    particles: ParticleArray, domain: int, ndomains: int
                    ) -> tuple[ParticleArray, ShiftStats]:
    """Exchange movers with neighbouring domains; returns the new locals."""
    stay, to_left, to_right = classify_movers(geometry, particles, domain,
                                              ndomains)
    left = (domain - 1) % ndomains
    right = (domain + 1) % ndomains
    outbound_left = particles.select(to_left)
    outbound_right = particles.select(to_right)
    kept = particles.select(stay)
    if ndomains == 1:
        merged = ParticleArray.concatenate(
            [kept, outbound_left, outbound_right])
        return merged, ShiftStats(0, 0, 0)
    comm.send(outbound_left, dest=left, tag=101)
    comm.send(outbound_right, dest=right, tag=102)
    from_right = comm.recv(source=right, tag=101)
    from_left = comm.recv(source=left, tag=102)
    merged = ParticleArray.concatenate([kept, from_left, from_right])
    return merged, ShiftStats(len(outbound_left), len(outbound_right),
                              len(from_left) + len(from_right))
