"""Field grid for GTC: poloidal annulus planes in a periodic torus.

The geometry of the system is a torus with an externally imposed magnetic
field (§6).  We model the gyrokinetic reduction on a set of poloidal
planes: each plane is an annulus ``r in [r0, r1]`` x ``theta in [0, 2pi)``
carrying the charge and potential fields; planes are stacked along the
toroidal angle ``zeta`` (the 1D decomposition direction, limited to 64
domains, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AnnulusGrid:
    """Uniform (r, theta) grid on an annulus.

    Radial index is the first axis (``nr`` points including both Dirichlet
    boundaries), poloidal the second (``ntheta`` periodic points).
    """

    r0: float
    r1: float
    nr: int
    ntheta: int

    def __post_init__(self) -> None:
        if self.r1 <= self.r0 or self.r0 <= 0:
            raise ValueError("need 0 < r0 < r1")
        if self.nr < 4 or self.ntheta < 4:
            raise ValueError("grid too coarse")

    @property
    def dr(self) -> float:
        return (self.r1 - self.r0) / (self.nr - 1)

    @property
    def dtheta(self) -> float:
        return 2.0 * np.pi / self.ntheta

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nr, self.ntheta)

    @property
    def npoints(self) -> int:
        return self.nr * self.ntheta

    def radii(self) -> np.ndarray:
        return self.r0 + self.dr * np.arange(self.nr)

    def thetas(self) -> np.ndarray:
        return self.dtheta * np.arange(self.ntheta)

    # -- interpolation ------------------------------------------------------
    def bilinear(self, r: np.ndarray, theta: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bilinear stencil for positions (r, theta).

        Returns ``(i, j, w)`` with shapes (4, n): the four corner indices
        ``(i[k], j[k])`` and weights ``w[k]`` (weights sum to 1).  Radial
        positions are clamped to the annulus; theta wraps periodically.
        """
        r = np.asarray(r, dtype=np.float64)
        theta = np.asarray(theta, dtype=np.float64)
        x = np.clip((r - self.r0) / self.dr, 0.0, self.nr - 1 - 1e-9)
        y = np.mod(theta, 2.0 * np.pi) / self.dtheta
        i0 = np.floor(x).astype(np.int64)
        j0 = np.floor(y).astype(np.int64) % self.ntheta
        fx = x - i0
        fy = y - np.floor(y)
        i1 = np.minimum(i0 + 1, self.nr - 1)
        j1 = (j0 + 1) % self.ntheta
        ii = np.stack([i0, i1, i0, i1])
        jj = np.stack([j0, j0, j1, j1])
        ww = np.stack([(1 - fx) * (1 - fy), fx * (1 - fy),
                       (1 - fx) * fy, fx * fy])
        return ii, jj, ww

    def gradient(self, field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(d/dr, (1/r) d/dtheta) of a (nr, ntheta) field.

        Central differences; one-sided at the radial walls, periodic in
        theta.  The theta derivative is the *physical* poloidal component
        (divided by r).
        """
        if field.shape != self.shape:
            raise ValueError("field shape mismatch")
        d_dr = np.gradient(field, self.dr, axis=0)
        d_dth = (np.roll(field, -1, axis=1) - np.roll(field, 1, axis=1)) \
            / (2.0 * self.dtheta)
        return d_dr, d_dth / self.radii()[:, None]

    def cell_volume_weights(self) -> np.ndarray:
        """Per-node area weights (r dr dtheta, trapezoidal in r)."""
        w_r = np.full(self.nr, self.dr)
        w_r[0] = w_r[-1] = 0.5 * self.dr
        return (w_r * self.radii())[:, None] \
            * np.full((1, self.ntheta), self.dtheta)


@dataclass(frozen=True)
class TorusGeometry:
    """Toroidal stacking of poloidal planes + field strength profile."""

    plane: AnnulusGrid
    nplanes: int
    major_radius: float = 10.0
    b0: float = 1.0

    def __post_init__(self) -> None:
        if self.nplanes < 1:
            raise ValueError("need at least one plane")
        if self.major_radius <= self.plane.r1:
            raise ValueError("major radius must exceed minor radius")

    @property
    def dzeta(self) -> float:
        return 2.0 * np.pi / self.nplanes

    def plane_of(self, zeta: np.ndarray) -> np.ndarray:
        """Owning plane index for toroidal angles (nearest-lower plane)."""
        z = np.mod(zeta, 2.0 * np.pi)
        return np.minimum((z / self.dzeta).astype(np.int64),
                          self.nplanes - 1)

    def b_field(self, r: np.ndarray) -> np.ndarray:
        """|B| on the gyrocenter.

        The gyrophase-averaged model uses the field at the gyrocenter; we
        take the large-aspect-ratio limit (uniform toroidal field), which
        keeps mu exactly conserved and makes energy checks exact.
        """
        return np.full_like(np.asarray(r, dtype=np.float64), self.b0)
