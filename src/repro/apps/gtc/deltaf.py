"""Delta-f weighting: the method the production GTC actually uses.

GTC solves the *gyrophase-averaged Vlasov-Poisson* system perturbatively:
markers sample a known equilibrium ``F0`` (a Maxwellian with a radial
density gradient — the free-energy source of drift-wave turbulence) and
carry evolving weights ``w = delta-f / F0``.  Only the perturbation is
deposited, which slashes the sampling noise that makes full-f PIC so
expensive.

For our uniform toroidal field and electrostatic, collisionless setup
the weight equation closes beautifully: the ExB drift does no work
(``v_E . E = 0``), leaving only the gradient drive

    dw/dt = (1 - w) * kappa_n * v_Er,
    v_Er = E_theta / B0,  kappa_n = -d ln n0 / dr.

With the adiabatic-electron screening already in the Poisson solver this
supports drift waves: a seeded potential mode propagates in the electron
diamagnetic direction at ~ the diamagnetic frequency (tested) instead of
simply decaying.
"""

from __future__ import annotations

import numpy as np

from .grid import TorusGeometry
from .particles import ParticleArray, load_uniform
from .push import gather_field
from .solver import GTCSolver


def load_maxwellian_gradient(geometry: TorusGeometry,
                             particles_per_cell: float, *,
                             kappa_n: float = 1.0, seed: int = 0,
                             weight_noise: float = 1e-3
                             ) -> ParticleArray:
    """Markers sampling F0 with density gradient exp(-kappa_n (r-r_mid)).

    Marker positions follow F0 itself (importance sampling), so the
    per-marker F0 weight is constant and the delta-f weights start as
    small noise.
    """
    plane = geometry.plane
    p = load_uniform(geometry, particles_per_cell, seed=seed)
    rng = np.random.default_rng(seed + 1)
    r_mid = 0.5 * (plane.r0 + plane.r1)
    # Rejection-free reshaping: move markers radially so their density
    # tracks n0(r) ~ exp(-kappa_n (r - r_mid)) (inverse-CDF on the
    # area-weighted radial coordinate, done approximately by rejection).
    keep_prob = np.exp(-kappa_n * (p.r - r_mid))
    keep_prob /= keep_prob.max()
    accepted = rng.random(len(p)) < keep_prob
    p = p.select(accepted)
    p.w = weight_noise * rng.standard_normal(len(p))
    return p


class DeltaFSolver(GTCSolver):
    """GTC cycle with delta-f weight evolution.

    The deposited charge is ``sum_markers w`` (the perturbation only);
    the weight update uses the gyro-averaged field at each marker.
    """

    def __init__(self, geometry: TorusGeometry,
                 particles: ParticleArray, *, kappa_n: float = 1.0,
                 **kwargs):
        kwargs.setdefault("charge_scale",
                          geometry.plane.npoints * geometry.nplanes
                          / max(len(particles), 1))
        super().__init__(geometry, particles, **kwargs)
        self.kappa_n = kappa_n

    def gather_push(self) -> None:
        """Push gyrocenters, then advance the delta-f weights."""
        geom = self.geometry
        planes = geom.plane_of(self.particles.zeta)
        # Weight update uses the pre-push field at the pre-push
        # positions (first-order in dt, like the parent's push).
        for k in range(self.nplanes_local):
            mask = planes == self.plane_start + k
            if not mask.any():
                continue
            sub = self.particles.select(mask)
            from .push import electric_field

            e_r, e_th = electric_field(geom.plane, self.phi[k])
            _, et_p = gather_field(geom.plane, e_r, e_th, sub, geom.b0)
            v_er = et_p / geom.b0
            dw = self.dt * (1.0 - sub.w) * self.kappa_n * v_er
            w = self.particles.w.copy()
            w[mask] = sub.w + dw
            self.particles.w = w
        super().gather_push()

    # -- diagnostics ------------------------------------------------------
    def mode_amplitude_phase(self, m: int, plane: int = 0
                             ) -> tuple[float, float]:
        """(|phi_m|, arg phi_m) of poloidal mode m at mid-radius."""
        row = self.phi[plane][self.geometry.plane.nr // 2]
        coeff = np.fft.rfft(row)[m]
        return float(np.abs(coeff)), float(np.angle(coeff))

    def weight_rms(self) -> float:
        if len(self.particles) == 0:
            return 0.0
        return float(np.sqrt(np.mean(self.particles.w**2)))


def diamagnetic_frequency(geometry: TorusGeometry, kappa_n: float,
                          m: int, temperature: float = 1.0) -> float:
    """Electron diamagnetic frequency of poloidal mode m at mid-radius.

    ``omega* = k_theta * T * kappa_n / (q B)`` with
    ``k_theta = m / r_mid`` — the drift-wave phase speed scale the
    seeded mode should rotate at.
    """
    plane = geometry.plane
    r_mid = 0.5 * (plane.r0 + plane.r1)
    k_theta = m / r_mid
    return k_theta * temperature * kappa_n / geometry.b0
