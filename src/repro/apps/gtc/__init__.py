"""GTC: gyrokinetic toroidal particle-in-cell code (magnetic fusion, §6)."""

from . import instrumentation
from .deltaf import (
    DeltaFSolver,
    diamagnetic_frequency,
    load_maxwellian_gradient,
)
from .deposition import (
    deposit_classic,
    deposit_sorted,
    deposit_work_vector,
    gyro_ring_points,
)
from .grid import AnnulusGrid, TorusGeometry
from .parallel import assemble_phi, run_parallel
from .parallel2d import Decomposition2D, run_parallel_2d
from .particles import ParticleArray, load_ring_perturbation, load_uniform
from .poisson import PoissonSolver
from .profile import (
    GTCConfig,
    build_profile,
    build_profile_2d,
    gtc_porting,
    gtc_porting_2d,
    table6_configs,
)
from .push import electric_field, field_energy, gather_field, push_rk2
from .shift import classify_movers, shift_particles
from .solver import GTCDiagnostics, GTCSolver

__all__ = [
    "instrumentation", "DeltaFSolver", "diamagnetic_frequency",
    "load_maxwellian_gradient",
    "AnnulusGrid", "Decomposition2D", "build_profile_2d", "gtc_porting_2d", "run_parallel_2d", "GTCConfig", "GTCDiagnostics", "GTCSolver",
    "ParticleArray", "PoissonSolver", "TorusGeometry", "assemble_phi",
    "build_profile", "classify_movers", "deposit_classic",
    "deposit_sorted", "deposit_work_vector", "electric_field",
    "field_energy", "gather_field", "gtc_porting", "gyro_ring_points",
    "load_ring_perturbation", "load_uniform", "push_rk2", "run_parallel",
    "shift_particles", "table6_configs",
]
