"""Parallel GTC: 1D toroidal domain decomposition on the runtime (§6.1).

Each rank owns one group of poloidal planes (the paper's production
configuration is one domain per plane, at most 64); particles live with
the rank whose zeta range contains them.  The cycle per step is

  charge deposition (local)  ->  Poisson solve (local planes)
  ->  gather-push (local)    ->  shift (neighbour exchange).

Agreement with the serial :class:`~repro.apps.gtc.solver.GTCSolver` is
exact up to floating-point summation order (integration-tested at 1e-12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...runtime import Block1D, Comm, ParallelJob, Transport
from .grid import TorusGeometry
from .particles import ParticleArray
from .shift import shift_particles
from .solver import GTCSolver


@dataclass
class GTCRankResult:
    domain: int
    nparticles: int
    kinetic_energy: float
    field_energy: float
    total_charge: float
    phi_planes: list[np.ndarray]
    tags: np.ndarray


def run_parallel(geometry: TorusGeometry, particles: ParticleArray, *,
                 nprocs: int, nsteps: int, dt: float = 0.05,
                 alpha: float = 1.0, depositor: str = "classic",
                 transport: Transport | None = None) -> list[GTCRankResult]:
    """Run GTC on ``nprocs`` ranks; returns per-rank results.

    ``geometry.nplanes`` must be divisible by ``nprocs`` and ``nprocs``
    respects GTC's 64-domain decomposition limit (via
    :class:`~repro.runtime.decomposition.Block1D`).
    """
    if geometry.nplanes % nprocs:
        raise ValueError("nplanes must be divisible by nprocs")
    Block1D(nprocs, max(geometry.nplanes, nprocs))  # enforce 64-domain cap
    planes_per_rank = geometry.nplanes // nprocs
    npts_global = geometry.plane.npoints * geometry.nplanes
    charge_scale = npts_global / max(len(particles), 1)

    def rank_main(comm: Comm) -> GTCRankResult:
        rank = comm.rank
        plane_ids = geometry.plane_of(particles.zeta)
        mine = particles.select(
            (plane_ids >= rank * planes_per_rank)
            & (plane_ids < (rank + 1) * planes_per_rank))
        # Local solver over this rank's plane group; zeta stays global.
        local = GTCSolver(geometry, mine, dt=dt, alpha=alpha,
                          depositor=depositor, charge_scale=charge_scale,
                          plane_range=(rank * planes_per_rank,
                                       planes_per_rank))
        for _ in range(nsteps):
            with comm.phase("charge"):
                local.charge_deposition()
            with comm.phase("poisson"):
                local.field_solve()
            with comm.phase("push"):
                local.gather_push()
            with comm.phase("shift"):
                merged, _ = shift_particles(comm, geometry,
                                            local.particles, rank, nprocs)
                local.particles = merged
        diag = local.diagnostics()
        return GTCRankResult(
            domain=rank,
            nparticles=diag.nparticles,
            kinetic_energy=diag.kinetic_energy,
            field_energy=diag.field_energy,
            total_charge=diag.total_charge,
            phi_planes=[p.copy() for p in local.phi],
            tags=np.sort(local.particles.tag.copy()),
        )

    return ParallelJob(nprocs, transport=transport).run(rank_main)


def assemble_phi(results: list[GTCRankResult]) -> list[np.ndarray]:
    """Global plane list from per-rank results (rank-major plane order)."""
    planes: list[np.ndarray] = []
    for res in sorted(results, key=lambda r: r.domain):
        planes.extend(res.phi_planes)
    return planes
