"""Parallel GTC: 1D toroidal domain decomposition on the runtime (§6.1).

Each rank owns one group of poloidal planes (the paper's production
configuration is one domain per plane, at most 64); particles live with
the rank whose zeta range contains them.  The cycle per step is

  charge deposition (local)  ->  Poisson solve (local planes)
  ->  gather-push (local)    ->  shift (neighbour exchange).

Agreement with the serial :class:`~repro.apps.gtc.solver.GTCSolver` is
exact up to floating-point summation order (integration-tested at 1e-12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...resilience.checkpoint import Checkpointer
from ...resilience.health import HealthConfig, HealthMonitor
from ...resilience.online import OnlineRunner
from ...resilience.supervisor import RecoveryPolicy, ResilientJob
from ...runtime import (
    Block1D,
    Comm,
    FaultInjector,
    OnlineRecoveryError,
    ParallelJob,
    RepairRecord,
    Transport,
)
from .grid import TorusGeometry
from .particles import ParticleArray
from .shift import shift_particles
from .solver import GTCSolver


@dataclass
class GTCRankResult:
    domain: int
    nparticles: int
    kinetic_energy: float
    field_energy: float
    total_charge: float
    phi_planes: list[np.ndarray]
    tags: np.ndarray


def run_parallel(geometry: TorusGeometry, particles: ParticleArray, *,
                 nprocs: int, nsteps: int, dt: float = 0.05,
                 alpha: float = 1.0, depositor: str = "classic",
                 transport: Transport | None = None,
                 injector: FaultInjector | None = None,
                 checkpoint: Checkpointer | None = None,
                 checkpoint_every: int = 0,
                 max_restarts: int = 2,
                 health: HealthConfig | None = None,
                 policy: RecoveryPolicy | None = None,
                 sanitize: bool | None = None,
                 spares: int = 0,
                 on_shrink: "bool | callable" = False,
                 backend: str = "thread"
                 ) -> list[GTCRankResult]:
    """Run GTC on ``nprocs`` ranks; returns per-rank results.

    ``geometry.nplanes`` must be divisible by ``nprocs`` and ``nprocs``
    respects GTC's 64-domain decomposition limit (via
    :class:`~repro.runtime.decomposition.Block1D`).

    Resilience: checkpoints save each rank's particle population (the
    fields are recomputed from the particles every step); a supervised
    restart after an injected rank crash resumes from the last
    *verified* checkpoint and matches the uninterrupted run.
    ``health`` enables the PIC invariants as corruption detectors:
    the global particle count is exactly conserved across shifts, the
    total kinetic energy drifts only slowly, and every phase-space
    array must stay finite.  ``policy`` customizes (and records)
    restart/rollback decisions.

    Online recovery: ``spares > 0`` respawns a killed domain in place
    (log replay from the last checkpoint, bit-identical completion);
    ``on_shrink`` re-partitions the poloidal planes over the survivors
    and redistributes the checkpointed particles by the new plane
    ownership — only possible when ``geometry.nplanes`` divides evenly
    by the shrunken size (pass a callable to observe the remap:
    ``on_shrink(comm, record)``).

    ``backend="process"`` runs the domains as OS processes (zero-copy
    shared-memory transport); results are bit-identical to the thread
    backend.
    """
    if geometry.nplanes % nprocs:
        raise ValueError("nplanes must be divisible by nprocs")
    Block1D(nprocs, max(geometry.nplanes, nprocs))  # enforce 64-domain cap
    npts_global = geometry.plane.npoints * geometry.nplanes
    charge_scale = npts_global / max(len(particles), 1)

    rank_main = _GTCRankMain(
        geometry, particles, nsteps=nsteps, dt=dt, alpha=alpha,
        depositor=depositor, charge_scale=charge_scale, nprocs=nprocs,
        injector=injector, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, health=health, policy=policy,
        on_shrink=on_shrink)
    job = ParallelJob(nprocs, transport=transport, injector=injector,
                      sanitize=sanitize, spares=spares, backend=backend)
    if injector is not None or checkpoint is not None or policy is not None:
        results = ResilientJob(job, max_restarts=max_restarts,
                               policy=policy,
                               checkpoint=checkpoint).run(rank_main)
    else:
        results = job.run(rank_main)
    return [res for res in results if res is not None]


class _GTCRankMain:
    """Picklable per-rank entry point (shared by both backends)."""

    def __init__(self, geometry, particles, *, nsteps, dt, alpha,
                 depositor, charge_scale, nprocs, injector, checkpoint,
                 checkpoint_every, health, policy, on_shrink):
        self.geometry = geometry
        self.particles = particles
        self.nsteps = nsteps
        self.dt = dt
        self.alpha = alpha
        self.depositor = depositor
        self.charge_scale = charge_scale
        self.nprocs = nprocs
        self.injector = injector
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.health = health
        self.policy = policy
        self.on_shrink = on_shrink

    def __call__(self, comm: Comm) -> GTCRankResult:
        return _gtc_rank_body(
            comm, self.geometry, self.particles, nsteps=self.nsteps,
            dt=self.dt, alpha=self.alpha, depositor=self.depositor,
            charge_scale=self.charge_scale, nprocs=self.nprocs,
            injector=self.injector, checkpoint=self.checkpoint,
            checkpoint_every=self.checkpoint_every, health=self.health,
            policy=self.policy, on_shrink=self.on_shrink)


def _gtc_rank_body(comm: Comm, geometry, particles, *, nsteps, dt, alpha,
                   depositor, charge_scale, nprocs, injector, checkpoint,
                   checkpoint_every, health, policy,
                   on_shrink) -> GTCRankResult:
    """One rank's full GTC program (shared by both backends)."""
    monitor = HealthMonitor(comm, health) if health is not None \
        else None
    tracer = comm.transport.tracer

    def build(pool: ParticleArray) -> GTCSolver:
        rank = comm.rank
        per = geometry.nplanes // comm.size
        plane_ids = geometry.plane_of(pool.zeta)
        mine = pool.select(
            (plane_ids >= rank * per)
            & (plane_ids < (rank + 1) * per))
        # Local solver over this rank's plane group; zeta stays
        # global.
        return GTCSolver(geometry, mine, dt=dt, alpha=alpha,
                         depositor=depositor,
                         charge_scale=charge_scale,
                         plane_range=(rank * per, per))

    local = build(particles)

    def _copy_particles(p: ParticleArray) -> ParticleArray:
        return ParticleArray(
            r=p.r.copy(), theta=p.theta.copy(), zeta=p.zeta.copy(),
            v_par=p.v_par.copy(), mu=p.mu.copy(), w=p.w.copy(),
            tag=p.tag.copy())

    def save(label: int) -> None:
        p = local.particles
        checkpoint.save(label, comm.rank,
                        r=p.r, theta=p.theta, zeta=p.zeta,
                        v_par=p.v_par, mu=p.mu, w=p.w, tag=p.tag)

    def load(label: int) -> None:
        data = checkpoint.load(label, comm.rank)
        local.particles = ParticleArray(
            r=data["r"], theta=data["theta"], zeta=data["zeta"],
            v_par=data["v_par"], mu=data["mu"], w=data["w"],
            tag=data["tag"])
        local.step_count = label

    def snapshot():
        return _copy_particles(local.particles), local.step_count

    def restore(snap) -> None:
        local.particles = _copy_particles(snap[0])
        local.step_count = snap[1]

    def _neighbor_set() -> set:
        return {comm._global((comm.rank - 1) % comm.size),
                comm._global((comm.rank + 1) % comm.size)} \
            - {comm._global(comm.rank)}

    def shrink_hook(comm_: Comm, record: RepairRecord) -> None:
        # Re-partition the planes over the survivors and rebuild
        # this rank's particle population from the *old* ranks'
        # checkpoint shards (particles carry global coordinates, so
        # ownership is just re-selection by the new plane ranges).
        nonlocal local
        if geometry.nplanes % comm.size:
            raise OnlineRecoveryError(
                f"cannot shrink GTC to {comm.size} domains: "
                f"{geometry.nplanes} planes do not divide evenly")
        label = record.rollback_step
        if label > 0 and checkpoint is not None:
            shards = [checkpoint.load(label, old)
                      for old in range(nprocs)]
            pool = ParticleArray(**{
                k: np.concatenate([s[k] for s in shards])
                for k in ("r", "theta", "zeta", "v_par", "mu",
                          "w", "tag")})
        else:
            pool = particles
        local = build(pool)
        local.step_count = label
        runner.neighbors = _neighbor_set()
        if callable(on_shrink):
            on_shrink(comm, record)

    def body(step_index: int) -> None:
        if injector is not None:
            injector.tick(comm.rank, step_index)
            p = local.particles
            injector.sdc(comm.rank, step_index,
                         {"r": p.r, "theta": p.theta,
                          "zeta": p.zeta, "v_par": p.v_par,
                          "mu": p.mu, "w": p.w})
        if tracer.enabled:
            tracer.instant(comm.rank, "step", "phase",
                           {"step": step_index})
        with comm.phase("charge"):
            local.charge_deposition()
        with comm.phase("poisson"):
            local.field_solve()
        with comm.phase("push"):
            local.gather_push()
        with comm.phase("shift"):
            merged, _ = shift_particles(comm, geometry,
                                        local.particles,
                                        comm.rank, comm.size)
            local.particles = merged
        if monitor is not None and monitor.due(step_index):
            with comm.phase("diagnostics"):
                p = local.particles
                monitor.guard_finite(step_index, "gtc.finite",
                                     p.r, p.theta, p.zeta, p.v_par,
                                     p.mu, p.w)
                count = comm.allreduce(len(p))
                monitor.check_conserved(step_index, "gtc.particles",
                                        float(count),
                                        default_threshold=0.0)
                energy = comm.allreduce(
                    p.kinetic_energy(geometry.b0))
                # The guiding-center push trades v_par^2 against
                # mu*B, conserving kinetic energy to rounding
                # (~1e-16/step); even a single zeroed fast particle
                # shifts the total by >= its ~1% share, so 1e-6
                # separates the two regimes by many orders of
                # magnitude on either side.
                monitor.check_conserved(step_index, "gtc.energy",
                                        energy,
                                        default_threshold=1e-6)

    runner = OnlineRunner(
        comm, nsteps=nsteps, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        save=save if checkpoint is not None else None,
        load=load if checkpoint is not None else None,
        snapshot=snapshot, restore=restore, policy=policy,
        on_shrink=shrink_hook if on_shrink else None,
        neighbors=_neighbor_set())
    runner.run(body)
    diag = local.diagnostics()
    return GTCRankResult(
        domain=comm.rank,
        nparticles=diag.nparticles,
        kinetic_energy=diag.kinetic_energy,
        field_energy=diag.field_energy,
        total_charge=diag.total_charge,
        phi_planes=[p.copy() for p in local.phi],
        tags=np.sort(local.particles.tag.copy()),
    )


def assemble_phi(results: list[GTCRankResult]) -> list[np.ndarray]:
    """Global plane list from per-rank results (rank-major plane order)."""
    planes: list[np.ndarray] = []
    for res in sorted(results, key=lambda r: r.domain):
        planes.extend(res.phi_planes)
    return planes
