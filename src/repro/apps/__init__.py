"""The four applications of the study (Table 2)."""

from . import cactus, gtc, lbmhd, paratec

#: Registry used by the experiment drivers.
APPLICATIONS = {
    "lbmhd": lbmhd,
    "paratec": paratec,
    "cactus": cactus,
    "gtc": gtc,
}

__all__ = ["APPLICATIONS", "cactus", "gtc", "lbmhd", "paratec"]
