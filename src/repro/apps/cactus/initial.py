"""Initial data for the ADM evolver.

* :func:`minkowski` — flat space (stability and regression tests);
* :func:`gauge_wave` — the Apples-with-Apples gauge wave: flat spacetime
  in wavy coordinates, an *exact* solution under harmonic slicing, used
  for convergence tests and as the Figure 5 substitution (an actually
  evolving strong-gauge-field configuration);
* :func:`brill_pulse` — a weak even-parity metric pulse for robustness
  tests (not constraint-exact; amplitude must be small).
"""

from __future__ import annotations

import numpy as np

from .tensors import identity_metric


def minkowski(shape: tuple[int, int, int]
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat initial data: gamma = delta, K = 0, alpha = 1."""
    gamma = identity_metric(shape)
    K = np.zeros((3, 3, *shape))
    alpha = np.ones(shape)
    return gamma, K, alpha


def _x_coords(shape: tuple[int, int, int], dx: float) -> np.ndarray:
    return (np.arange(shape[0]) * dx)[:, None, None] * \
        np.ones((1, shape[1], shape[2]))


def gauge_wave(shape: tuple[int, int, int], dx: float, *,
               amplitude: float = 0.1, t: float = 0.0
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gauge-wave data at time ``t`` (also the exact solution).

    Metric ``ds^2 = -H dt^2 + H dx^2 + dy^2 + dz^2`` with
    ``H = 1 - A sin(2 pi (x - t) / L)``, where ``L = shape[0] * dx`` is
    the (periodic) domain length.  ADM variables:

    ``gamma_xx = H``, ``alpha = sqrt(H)``,
    ``K_xx = -dt(gamma_xx) / (2 alpha) = -pi A / L * cos(...) / sqrt(H)``
    (note dt H = +(2 pi A / L) cos(2 pi (x-t)/L)).
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    L = shape[0] * dx
    x = _x_coords(shape, dx)
    phase = 2.0 * np.pi * (x - t) / L
    H = 1.0 - amplitude * np.sin(phase)
    dHdt = 2.0 * np.pi * amplitude / L * np.cos(phase)
    gamma = identity_metric(shape)
    gamma[0, 0] = H
    K = np.zeros((3, 3, *shape))
    K[0, 0] = -dHdt / (2.0 * np.sqrt(H))
    alpha = np.sqrt(H)
    return gamma, K, alpha


def brill_pulse(shape: tuple[int, int, int], dx: float, *,
                amplitude: float = 1e-3, sigma: float = 1.0
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Weak time-symmetric metric pulse centered in the box.

    ``gamma = (1 + A exp(-r^2/sigma^2)) delta``, ``K = 0``.  For small
    ``A`` the constraint violation is O(A) and the pulse disperses as
    gravitational-wave-like gauge dynamics; used for the Figure 5
    substitution and robustness tests.
    """
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    coords = [(np.arange(n) - (n - 1) / 2.0) * dx for n in shape]
    xx = coords[0][:, None, None]
    yy = coords[1][None, :, None]
    zz = coords[2][None, None, :]
    r2 = xx**2 + yy**2 + zz**2
    psi = 1.0 + amplitude * np.exp(-r2 / sigma**2)
    gamma = identity_metric(shape) * psi
    K = np.zeros((3, 3, *shape))
    alpha = np.ones(shape)
    return gamma, K, alpha


def random_perturbation(shape: tuple[int, int, int], *,
                        amplitude: float = 1e-8, seed: int = 0
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minkowski + random noise (the 'robust stability' testbed)."""
    rng = np.random.default_rng(seed)
    gamma, K, alpha = minkowski(shape)
    sym_noise = rng.standard_normal((3, 3, *shape)) * amplitude
    gamma += 0.5 * (sym_noise + np.swapaxes(sym_noise, 0, 1))
    sym_noise = rng.standard_normal((3, 3, *shape)) * amplitude
    K += 0.5 * (sym_noise + np.swapaxes(sym_noise, 0, 1))
    alpha += rng.standard_normal(shape) * amplitude
    return gamma, K, alpha
