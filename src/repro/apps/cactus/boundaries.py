"""Boundary conditions.

Periodic ghosts serve the gauge-wave/stability testbeds; the Sommerfeld
radiation condition handles open boundaries — the routine whose
unvectorized form consumed up to 20% of the ES runtime and over 30% on
the X1 until a hard-coded vectorized version was written (§5.1/§5.2).
The implementation here is the vectorized (whole-face, branch-free)
form.

Radiative (Sommerfeld) condition: each field behaves at the boundary as
an outgoing spherical wave around the grid center,

    f(r, t) = f0 + u(r - v t) / r
    =>  dt f = -v dn f - v (f - f0) / r,

applied on each face with one-sided normal derivatives.
"""

from __future__ import annotations

import numpy as np


def sommerfeld_rhs_face(field: np.ndarray, f0: float, axis: int,
                        side: int, spacing: float,
                        r: np.ndarray, speed: float = 1.0) -> np.ndarray:
    """dt(f) on one boundary face from the radiation condition.

    ``field`` is the interior (unextended) array whose last three axes
    are the grid; ``axis`` in (0,1,2) and ``side`` in (-1, +1) select the
    face; ``r`` is the radius field on that face (same shape as the
    face).  Returns the face time derivative (vectorized over the face).
    """
    if side not in (-1, 1):
        raise ValueError("side must be -1 or +1")
    ax = field.ndim - 3 + axis
    n = field.shape[ax]
    if n < 3:
        raise ValueError("need at least 3 points for one-sided stencils")

    def take(i: int) -> np.ndarray:
        return np.take(field, i, axis=ax)

    if side == 1:
        # Second-order one-sided backward difference at the last plane.
        dn = (3.0 * take(n - 1) - 4.0 * take(n - 2) + take(n - 3)) \
            / (2.0 * spacing)
        f_face = take(n - 1)
    else:
        dn = -(3.0 * take(0) - 4.0 * take(1) + take(2)) / (2.0 * spacing)
        f_face = take(0)
    # Outward normal derivative approximates the radial one on the face.
    return -speed * dn - speed * (f_face - f0) / np.maximum(r, 1e-12)


def radius_on_face(shape: tuple[int, int, int],
                   spacing: tuple[float, float, float], axis: int,
                   side: int) -> np.ndarray:
    """Distance from the grid center for every point of one face."""
    coords = [(np.arange(n) - (n - 1) / 2.0) * h
              for n, h in zip(shape, spacing)]
    face_coords = list(coords)
    edge = coords[axis][-1] if side == 1 else coords[axis][0]
    face_coords[axis] = np.array([edge])
    xx, yy, zz = np.meshgrid(*face_coords, indexing="ij")
    r = np.sqrt(xx**2 + yy**2 + zz**2)
    return np.squeeze(r, axis=axis)


def apply_sommerfeld(field: np.ndarray, rhs: np.ndarray, f0: float,
                     shape: tuple[int, int, int],
                     spacing: tuple[float, float, float],
                     speed: float = 1.0) -> None:
    """Overwrite ``rhs`` on all six faces with the radiation condition.

    ``field``/``rhs`` share their last three axes with ``shape``.
    Faces are processed whole — the vectorized formulation (branch-free
    inner loops) that the X1 port required (§5.1).
    """
    for axis in range(3):
        for side in (-1, 1):
            r = radius_on_face(shape, spacing, axis, side)
            face_rhs = sommerfeld_rhs_face(field, f0, axis, side,
                                           spacing[axis], r, speed)
            idx = [slice(None)] * 3
            idx[axis] = -1 if side == 1 else 0
            rhs[(Ellipsis, *idx)] = face_rhs
