"""Method of Lines integrators (§5: "the evolution equations can be
solved using a number of different numerical approaches, including
staggered leapfrog, McCormack, Lax-Wendroff, and iterative
Crank-Nicholson schemes").

Integrators operate on *states*: tuples of ndarrays.  The right-hand-side
callback receives a state and returns the matching tuple of derivatives;
ghost-zone handling lives inside the callback (solver-provided), keeping
the integrators scheme-agnostic.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

State = tuple[np.ndarray, ...]
RHS = Callable[[State], State]

INTEGRATORS = ("icn", "rk4", "euler", "leapfrog")


def _axpy(state: State, deriv: State, dt: float) -> State:
    return tuple(u + dt * du for u, du in zip(state, deriv))


def _combine(state: State, derivs: Sequence[State],
             weights: Sequence[float], dt: float) -> State:
    out = []
    for comp, u in enumerate(state):
        acc = u.copy()
        for w, d in zip(weights, derivs):
            acc += dt * w * d[comp]
        out.append(acc)
    return tuple(out)


def euler_step(state: State, rhs: RHS, dt: float) -> State:
    """First-order explicit Euler (for testing/diagnostics only)."""
    return _axpy(state, rhs(state), dt)


def icn_step(state: State, rhs: RHS, dt: float,
             iterations: int = 3) -> State:
    """Iterative Crank-Nicholson with the Cactus-standard 3 iterations.

    u^(0)   = u + dt f(u)
    u^(k+1) = u + dt/2 [f(u) + f(u^(k))]

    Three iterations reach the scheme's second-order accuracy and its
    stability plateau (further iterations do not help).
    """
    if iterations < 1:
        raise ValueError("ICN needs at least one iteration")
    f0 = rhs(state)
    guess = _axpy(state, f0, dt)
    for _ in range(iterations):
        fk = rhs(guess)
        guess = _combine(state, (f0, fk), (0.5, 0.5), dt)
    return guess


def leapfrog_step(prev: State, curr: State, rhs: RHS,
                  dt: float) -> State:
    """Two-level (staggered-in-spirit) leapfrog: u_{n+1} = u_{n-1}
    + 2 dt f(u_n).

    Second-order and time-reversible; the solver bootstraps the first
    step with ICN.  One of the §5 method-of-lines options.
    """
    f = rhs(curr)
    return tuple(p + 2.0 * dt * df for p, df in zip(prev, f))


def rk4_step(state: State, rhs: RHS, dt: float) -> State:
    """Classical fourth-order Runge-Kutta."""
    k1 = rhs(state)
    k2 = rhs(_axpy(state, k1, dt / 2.0))
    k3 = rhs(_axpy(state, k2, dt / 2.0))
    k4 = rhs(_axpy(state, k3, dt))
    return _combine(state, (k1, k2, k3, k4),
                    (1 / 6, 1 / 3, 1 / 3, 1 / 6), dt)


def step(name: str, state: State, rhs: RHS, dt: float) -> State:
    """Single-level dispatcher (leapfrog needs history; see the solver)."""
    if name == "icn":
        return icn_step(state, rhs, dt)
    if name == "rk4":
        return rk4_step(state, rhs, dt)
    if name == "euler":
        return euler_step(state, rhs, dt)
    raise ValueError(f"unknown integrator {name!r}; choose {INTEGRATORS}")
