"""Cactus: 3+1 vacuum ADM general-relativity evolver (astrophysics, §5)."""

from .adm import GAUGES, adm_rhs, lapse_rhs
from .boundaries import apply_sommerfeld, radius_on_face, sommerfeld_rhs_face
from .geometry import (
    Curvature,
    curvature,
    hamiltonian_constraint,
    momentum_constraint,
    ricci_scalar,
)
from .initial import brill_pulse, gauge_wave, minkowski, random_perturbation
from .mol import INTEGRATORS, euler_step, icn_step, rk4_step
from .parallel import run_parallel
from .profile import (
    CactusConfig,
    build_profile,
    cactus_porting,
    table5_configs,
)
from .solver import CactusSolver, ConstraintNorms
from .stencils import ghost_for, kreiss_oliger

__all__ = [
    "CactusConfig", "CactusSolver", "ConstraintNorms", "Curvature",
    "GAUGES", "INTEGRATORS", "adm_rhs", "apply_sommerfeld", "brill_pulse",
    "build_profile", "cactus_porting", "curvature", "euler_step",
    "gauge_wave", "hamiltonian_constraint", "icn_step", "lapse_rhs",
    "minkowski", "momentum_constraint", "radius_on_face",
    "random_perturbation", "ricci_scalar", "rk4_step", "run_parallel",
    "sommerfeld_rhs_face", "table5_configs", "ghost_for",
    "kreiss_oliger",
]
