"""The ADM 3+1 vacuum evolution equations (zero shift).

With lapse ``alpha`` and vanishing shift, the 12 evolution equations of
the ADM formalism (§5: "the equations are written as four constraint
equations and 12 evolution equations") are

    dt gamma_ij = -2 alpha K_ij
    dt K_ij     = -D_i D_j alpha
                  + alpha (R_ij + tr(K) K_ij - 2 K_ik K^k_j)

The "lapse function describes the time slicing between hypersurfaces";
three standard choices are provided:

* ``geodesic``  : dt alpha = 0
* ``harmonic``  : dt alpha = -alpha^2 tr K   (exact for the gauge wave)
* ``1+log``     : dt alpha = -2 alpha tr K   (the workhorse slicing)
"""

from __future__ import annotations

import numpy as np

from .geometry import Curvature, curvature
from .stencils import grad, hessian, interior
from .tensors import trace

GAUGES = ("geodesic", "harmonic", "1+log")


def lapse_rhs(gauge: str, alpha: np.ndarray, trK: np.ndarray
              ) -> np.ndarray:
    if gauge == "geodesic":
        return np.zeros_like(alpha)
    if gauge == "harmonic":
        return -(alpha**2) * trK
    if gauge == "1+log":
        return -2.0 * alpha * trK
    raise ValueError(f"unknown gauge {gauge!r}; choose from {GAUGES}")


def adm_rhs(gamma_ext: np.ndarray, K_ext: np.ndarray,
            alpha_ext: np.ndarray,
            spacing: tuple[float, float, float], gauge: str = "harmonic",
            geo: Curvature | None = None, order: int = 2
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interior time derivatives (dt gamma, dt K, dt alpha).

    Inputs are ghost-extended full-tensor fields (ghost width
    :func:`~repro.apps.cactus.stencils.ghost_for` of the chosen
    finite-difference ``order``); outputs cover the interior only.
    """
    geo = geo if geo is not None else curvature(gamma_ext, spacing,
                                                order)
    s = geo.shrink
    ginv = geo.at_interior(geo.gamma_inv)
    G = geo.at_interior(geo.christoffel)
    K = interior(K_ext, 2 * s)
    alpha = interior(alpha_ext, 2 * s)

    # Covariant Hessian of the lapse: D_i D_j a = d_i d_j a - G^k_ij d_k a
    dalpha = grad(alpha_ext, spacing, geo.order)  # ghost-s region
    hess = interior(hessian(alpha_ext, spacing, geo.order), s)
    dda = hess - np.einsum("kij...,k...->ij...", G,
                           interior(dalpha, s))

    trK = trace(K, ginv)
    Kmix = np.einsum("kl...,lj...->kj...", ginv, K)     # K^k_j
    KK = np.einsum("ik...,kj...->ij...", K, Kmix)       # K_ik K^k_j

    dt_gamma = -2.0 * alpha * K
    dt_K = -dda + alpha * (geo.ricci + trK * K - 2.0 * KK)
    dt_alpha = lapse_rhs(gauge, alpha, trK)
    return dt_gamma, dt_K, dt_alpha
