"""Serial Cactus-style ADM evolver.

Couples the pieces: ghost-extended storage (:mod:`stencils`), the ADM
right-hand side (:mod:`adm`), method-of-lines integrators (:mod:`mol`),
and boundary conditions (:mod:`boundaries`).  Weak scaling, constraint
monitoring, and the parallel driver mirror the paper's §5 usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .adm import GAUGES, adm_rhs
from .boundaries import apply_sommerfeld
from .geometry import curvature, hamiltonian_constraint, momentum_constraint
from .mol import INTEGRATORS, State, icn_step, leapfrog_step, step as mol_step
from .stencils import extend, fill_ghosts_periodic, ghost_for, kreiss_oliger
from .tensors import identity_metric


@dataclass
class ConstraintNorms:
    """Norms of the four constraints (vacuum: all ideally zero)."""

    hamiltonian_linf: float
    hamiltonian_l2: float
    momentum_linf: float

    def max_violation(self) -> float:
        return max(self.hamiltonian_linf, self.momentum_linf)


class CactusSolver:
    """3+1 vacuum ADM evolution on a periodic or radiative 3D box."""

    def __init__(self, gamma: np.ndarray, K: np.ndarray,
                 alpha: np.ndarray, *,
                 spacing: float | tuple[float, float, float] = 0.1,
                 dt: float | None = None, gauge: str = "harmonic",
                 integrator: str = "icn", boundary: str = "periodic",
                 dissipation: float = 0.0, order: int = 2):
        if gauge not in GAUGES:
            raise ValueError(f"unknown gauge {gauge!r}")
        if integrator not in INTEGRATORS:
            raise ValueError(f"unknown integrator {integrator!r}")
        if boundary not in ("periodic", "radiative"):
            raise ValueError(f"unknown boundary {boundary!r}")
        if gamma.shape[:2] != (3, 3) or K.shape != gamma.shape:
            raise ValueError("gamma and K must be full (3,3,nx,ny,nz)")
        self.shape = gamma.shape[2:]
        if alpha.shape != self.shape:
            raise ValueError("alpha shape mismatch")
        if isinstance(spacing, (int, float)):
            spacing = (float(spacing),) * 3
        self.spacing = tuple(float(h) for h in spacing)
        # CFL: harmonic slicing propagates at the coordinate light speed.
        self.dt = dt if dt is not None else 0.25 * min(self.spacing)
        self.gauge = gauge
        self.integrator = integrator
        self.boundary = boundary
        if dissipation < 0:
            raise ValueError("dissipation must be >= 0")
        #: finite-difference order (2 or 4) and the ghost width it needs
        self.order = order
        self.ghost = ghost_for(order)
        #: Kreiss-Oliger dissipation strength (0 disables); radiative
        #: boundaries on plain ADM need it to suppress the boundary-fed
        #: high-frequency instability.
        self.dissipation = dissipation
        self.gamma = gamma.astype(np.float64).copy()
        self.K = K.astype(np.float64).copy()
        self.alpha = alpha.astype(np.float64).copy()
        self.time = 0.0
        self.step_count = 0
        self._prev_state: State | None = None  # leapfrog history

    # -- ghost handling ------------------------------------------------------
    def _extended(self, state: State) -> tuple[np.ndarray, ...]:
        out = []
        for f in state:
            ext = extend(f, self.ghost)
            if self.boundary == "periodic":
                fill_ghosts_periodic(ext, self.ghost)
            else:
                self._fill_ghosts_extrapolate(ext)
            out.append(ext)
        return tuple(out)

    def _fill_ghosts_extrapolate(self, ext: np.ndarray) -> None:
        """Copy the outermost interior plane outward (radiative setup)."""
        g = self.ghost
        for ax in (-3, -2, -1):
            n = ext.shape[ax] - 2 * g
            sl = [slice(None)] * 3

            def plane(i):
                s = list(sl)
                s[ax + 3] = slice(i, i + 1)
                return (Ellipsis, *s)

            for k in range(g):
                ext[plane(k)] = ext[plane(g)]
                ext[plane(n + g + k)] = ext[plane(n + g - 1)]

    # -- RHS -----------------------------------------------------------------
    def _rhs(self, state: State) -> State:
        gamma, K, alpha = state
        g_ext, K_ext, a_ext = self._extended(state)
        dt_gamma, dt_K, dt_alpha = adm_rhs(
            g_ext, K_ext, a_ext, self.spacing, self.gauge,
            order=self.order)
        if self.dissipation > 0.0:
            dt_gamma = dt_gamma + kreiss_oliger(
                g_ext, self.spacing, self.dissipation, ghost=self.ghost)
            dt_K = dt_K + kreiss_oliger(
                K_ext, self.spacing, self.dissipation, ghost=self.ghost)
            dt_alpha = dt_alpha + kreiss_oliger(
                a_ext, self.spacing, self.dissipation, ghost=self.ghost)
        if self.boundary == "radiative":
            flat = identity_metric(self.shape)
            for i in range(3):
                for j in range(i, 3):
                    f0 = 1.0 if i == j else 0.0
                    apply_sommerfeld(gamma[i, j], dt_gamma[i, j], f0,
                                     self.shape, self.spacing)
                    apply_sommerfeld(K[i, j], dt_K[i, j], 0.0,
                                     self.shape, self.spacing)
                    dt_gamma[j, i] = dt_gamma[i, j]
                    dt_K[j, i] = dt_K[i, j]
            apply_sommerfeld(alpha, dt_alpha, 1.0, self.shape,
                             self.spacing)
            del flat
        return dt_gamma, dt_K, dt_alpha

    # -- public API ------------------------------------------------------------
    def step(self, nsteps: int = 1) -> None:
        for _ in range(nsteps):
            state = (self.gamma, self.K, self.alpha)
            if self.integrator == "leapfrog":
                if self._prev_state is None:
                    new = icn_step(state, self._rhs, self.dt)
                else:
                    new = leapfrog_step(self._prev_state, state,
                                        self._rhs, self.dt)
                self._prev_state = state
            else:
                new = mol_step(self.integrator, state, self._rhs,
                               self.dt)
            self.gamma, self.K, self.alpha = new
            self.time += self.dt
            self.step_count += 1

    def constraints(self) -> ConstraintNorms:
        g_ext, K_ext, _ = self._extended((self.gamma, self.K, self.alpha))
        geo = curvature(g_ext, self.spacing, self.order)
        H = hamiltonian_constraint(geo, K_ext)
        M = momentum_constraint(geo, K_ext, self.spacing)
        return ConstraintNorms(
            hamiltonian_linf=float(np.abs(H).max()),
            hamiltonian_l2=float(np.sqrt(np.mean(H**2))),
            momentum_linf=float(np.abs(M).max()),
        )

    def deviation_from(self, gamma: np.ndarray, K: np.ndarray,
                       alpha: np.ndarray) -> float:
        """Max-norm distance to a reference solution (exact-wave tests)."""
        return max(float(np.abs(self.gamma - gamma).max()),
                   float(np.abs(self.K - K).max()),
                   float(np.abs(self.alpha - alpha).max()))

    def max_field(self) -> float:
        return max(float(np.abs(self.gamma).max()),
                   float(np.abs(self.K).max()),
                   float(np.abs(self.alpha).max()))
