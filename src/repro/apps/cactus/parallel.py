"""Block-parallel Cactus on the simulated runtime (Fig. 6).

The grid is block domain decomposed so that each processor has a section
of the global grid; each right-hand-side evaluation updates the ghost
zones by exchanging data on the faces of its topological neighbours.
Sequential-axis exchange (x, then y spanning filled x-ghosts, then z
spanning both) fills edge and corner ghosts without diagonal messages.

The parallel evolution is bitwise identical to the serial solver
(pointwise arithmetic and ghost values match exactly), which the
integration tests assert.
"""

from __future__ import annotations

import numpy as np

from ...resilience.checkpoint import Checkpointer
from ...resilience.health import HealthConfig, HealthMonitor
from ...resilience.online import OnlineRunner
from ...resilience.supervisor import RecoveryPolicy, ResilientJob
from ...runtime import (
    BlockND,
    Comm,
    FaultInjector,
    ParallelJob,
    ProcessorGrid,
    RepairRecord,
    Transport,
)
from .solver import CactusSolver
from .stencils import extend


class _RankCactus(CactusSolver):
    """One rank's solver: ghost fill goes through the communicator."""

    def __init__(self, comm: Comm, decomp: BlockND, gamma, K, alpha,
                 **kwargs):
        kwargs["boundary"] = "periodic"
        bounds = decomp.bounds(comm.rank)
        loc = tuple(slice(a, b) for a, b in bounds)
        super().__init__(gamma[(slice(None), slice(None)) + loc],
                         K[(slice(None), slice(None)) + loc],
                         alpha[loc], **kwargs)
        self.comm = comm
        self.bounds = bounds
        grid = decomp.grid
        coords = grid.coords(comm.rank)
        self.neighbors = {}
        for ax in range(3):
            lo = list(coords)
            hi = list(coords)
            lo[ax] -= 1
            hi[ax] += 1
            self.neighbors[ax] = (grid.rank(tuple(lo)),
                                  grid.rank(tuple(hi)))

    def _rhs(self, state):
        # One traced region per RHS evaluation, so `repro report` can
        # split "evolve" into stencil work vs ghost exchange (the
        # exchange region below nests inside this one).
        with self.comm.region("rhs"):
            return super()._rhs(state)

    def _extended(self, state):
        # One RHS evaluation's ghost fill = one traced region per rank
        # (inside the "evolve" phase; no barrier, the exchange is the
        # synchronization).
        with self.comm.region("ghost-exchange"):
            return self._extended_traced(state)

    def _extended_traced(self, state):
        exts = tuple(extend(f, self.ghost) for f in state)
        g = self.ghost
        for ax in range(3):
            left, right = self.neighbors[ax]
            n = exts[0].shape[ax - 3] - 2 * g

            def strip(e: np.ndarray, start: int, stop: int) -> tuple:
                sl = [slice(None)] * 3
                sl[ax] = slice(start, stop)
                return (Ellipsis, *sl)

            lo_src = [e[strip(e, g, 2 * g)].copy() for e in exts]
            hi_src = [e[strip(e, n, n + g)].copy() for e in exts]
            if left == self.comm.rank:
                # Periodic wrap within this rank (grid dim 1 on this axis).
                for e, lo, hi in zip(exts, lo_src, hi_src):
                    e[strip(e, 0, g)] = hi
                    e[strip(e, n + g, n + 2 * g)] = lo
                continue
            # Send my low strip to the left neighbour (it becomes their
            # high ghost) and my high strip to the right neighbour.
            self.comm.send(lo_src, dest=left, tag=2 * ax)
            self.comm.send(hi_src, dest=right, tag=2 * ax + 1)
            from_left = self.comm.recv(source=left, tag=2 * ax + 1)
            from_right = self.comm.recv(source=right, tag=2 * ax)
            for e, lo, hi in zip(exts, from_left, from_right):
                e[strip(e, 0, g)] = lo
                e[strip(e, n + g, n + 2 * g)] = hi
        return exts


def run_parallel(gamma: np.ndarray, K: np.ndarray, alpha: np.ndarray, *,
                 nprocs: int, nsteps: int,
                 spacing: float | tuple[float, float, float] = 0.1,
                 dt: float | None = None, gauge: str = "harmonic",
                 integrator: str = "icn", order: int = 2,
                 transport: Transport | None = None,
                 injector: FaultInjector | None = None,
                 checkpoint: Checkpointer | None = None,
                 checkpoint_every: int = 0,
                 max_restarts: int = 2,
                 health: HealthConfig | None = None,
                 policy: RecoveryPolicy | None = None,
                 sanitize: bool | None = None,
                 spares: int = 0,
                 on_shrink: "bool | callable" = False,
                 backend: str = "thread"
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evolve on ``nprocs`` ranks; returns assembled (gamma, K, alpha).

    ``injector``/``checkpoint``/``checkpoint_every``/``max_restarts``
    enable fault injection and checkpoint/restart: each rank saves its
    ADM state (and leapfrog history, when present) every
    ``checkpoint_every`` steps, and a supervised restart after a planned
    rank crash resumes from the last *verified* checkpoint.  ``health``
    turns the Hamiltonian-constraint norm into a corruption detector —
    a valid evolution keeps it bounded; a bit flip in the metric or
    extrinsic curvature makes it explode — alongside a NaN/Inf field
    guard.  ``policy`` customizes (and records) restart/rollback
    decisions.

    Online recovery: ``spares > 0`` respawns a killed rank in place
    (log replay from the last checkpoint, bit-identical completion);
    ``on_shrink`` falls back to re-decomposing the 3D grid over the
    survivors and rolling everyone back to the last checkpoint (pass a
    callable to observe the remap: ``on_shrink(comm, record)``).

    ``backend="process"`` runs the ranks as OS processes (zero-copy
    shared-memory transport); results are bit-identical to the thread
    backend.
    """
    shape = gamma.shape[2:]
    grid = ProcessorGrid.for_nprocs(nprocs, 3)
    decomp = BlockND(grid, shape)

    rank_main = _CactusRankMain(
        gamma, K, alpha, spacing=spacing, dt=dt, gauge=gauge,
        integrator=integrator, order=order, nsteps=nsteps, decomp=decomp,
        nprocs=nprocs, injector=injector, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, health=health, policy=policy,
        on_shrink=on_shrink)
    job = ParallelJob(nprocs, transport=transport, injector=injector,
                      sanitize=sanitize, spares=spares, backend=backend)
    if injector is not None or checkpoint is not None or policy is not None:
        results = ResilientJob(job, max_restarts=max_restarts,
                               policy=policy,
                               checkpoint=checkpoint).run(rank_main)
    else:
        results = job.run(rank_main)
    gamma_out = np.empty_like(gamma)
    K_out = np.empty_like(K)
    alpha_out = np.empty_like(alpha)
    for res in results:
        if res is None:       # rank lost to a kill, shrunk around
            continue
        bounds, g_l, K_l, a_l = res
        loc = tuple(slice(a, b) for a, b in bounds)
        gamma_out[(slice(None), slice(None)) + loc] = g_l
        K_out[(slice(None), slice(None)) + loc] = K_l
        alpha_out[loc] = a_l
    return gamma_out, K_out, alpha_out


class _CactusRankMain:
    """Picklable per-rank entry point (shared by both backends)."""

    def __init__(self, gamma, K, alpha, *, spacing, dt, gauge, integrator,
                 order, nsteps, decomp, nprocs, injector, checkpoint,
                 checkpoint_every, health, policy, on_shrink):
        self.gamma = gamma
        self.K = K
        self.alpha = alpha
        self.spacing = spacing
        self.dt = dt
        self.gauge = gauge
        self.integrator = integrator
        self.order = order
        self.nsteps = nsteps
        self.decomp = decomp
        self.nprocs = nprocs
        self.injector = injector
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.health = health
        self.policy = policy
        self.on_shrink = on_shrink

    def __call__(self, comm: Comm):
        return _cactus_rank_body(
            comm, self.gamma, self.K, self.alpha, spacing=self.spacing,
            dt=self.dt, gauge=self.gauge, integrator=self.integrator,
            order=self.order, nsteps=self.nsteps, decomp=self.decomp,
            nprocs=self.nprocs, injector=self.injector,
            checkpoint=self.checkpoint,
            checkpoint_every=self.checkpoint_every, health=self.health,
            policy=self.policy, on_shrink=self.on_shrink)


def _cactus_rank_body(comm: Comm, gamma, K, alpha, *, spacing, dt, gauge,
                      integrator, order, nsteps, decomp, nprocs, injector,
                      checkpoint, checkpoint_every, health, policy,
                      on_shrink):
    """One rank's full Cactus program (shared by both backends)."""
    shape = gamma.shape[2:]
    monitor = HealthMonitor(comm, health) if health is not None \
        else None
    tracer = comm.transport.tracer

    def build(dc: BlockND) -> _RankCactus:
        return _RankCactus(comm, dc, gamma, K, alpha,
                           spacing=spacing, dt=dt, gauge=gauge,
                           integrator=integrator, order=order)

    solver = build(decomp)

    def save(label: int) -> None:
        state = dict(gamma=solver.gamma, K=solver.K,
                     alpha=solver.alpha,
                     time=np.float64(solver.time))
        if solver._prev_state is not None:
            prev_g, prev_K, prev_a = solver._prev_state
            state.update(prev_gamma=prev_g, prev_K=prev_K,
                         prev_alpha=prev_a)
        checkpoint.save(label, comm.rank, **state)

    def load(label: int) -> None:
        data = checkpoint.load(label, comm.rank)
        solver.gamma[...] = data["gamma"]
        solver.K[...] = data["K"]
        solver.alpha[...] = data["alpha"]
        solver.time = float(data["time"][()])
        solver.step_count = label
        if "prev_gamma" in data:
            solver._prev_state = (data["prev_gamma"],
                                  data["prev_K"],
                                  data["prev_alpha"])
        else:
            solver._prev_state = None

    def snapshot():
        prev = solver._prev_state
        return (solver.gamma.copy(), solver.K.copy(),
                solver.alpha.copy(), solver.time,
                solver.step_count,
                None if prev is None else tuple(p.copy()
                                                for p in prev))

    def restore(snap) -> None:
        solver.gamma[...] = snap[0]
        solver.K[...] = snap[1]
        solver.alpha[...] = snap[2]
        solver.time = snap[3]
        solver.step_count = snap[4]
        solver._prev_state = snap[5]

    def _neighbor_set(s: _RankCactus) -> set:
        return {comm._global(r)
                for pair in s.neighbors.values() for r in pair
                if r != comm.rank}

    def shrink_hook(comm_: Comm, record: RepairRecord) -> None:
        # Re-decompose over the shrunken grid and reassemble the
        # rollback state from the *old* decomposition's shards
        # (solver shards are interior-only: no halo crop needed).
        nonlocal solver
        solver = build(BlockND(
            ProcessorGrid.for_nprocs(comm.size, 3), shape))
        label = record.rollback_step
        if label > 0 and checkpoint is not None:
            fields = {"gamma": np.zeros_like(gamma),
                      "K": np.zeros_like(K),
                      "alpha": np.zeros_like(alpha)}
            prev = None
            time = 0.0
            for old in range(nprocs):
                data = checkpoint.load(label, old)
                loc = tuple(slice(a, b)
                            for a, b in decomp.bounds(old))
                key = (slice(None), slice(None)) + loc
                fields["gamma"][key] = data["gamma"]
                fields["K"][key] = data["K"]
                fields["alpha"][loc] = data["alpha"]
                time = float(data["time"][()])
                if "prev_gamma" in data:
                    if prev is None:
                        prev = (np.zeros_like(gamma),
                                np.zeros_like(K),
                                np.zeros_like(alpha))
                    prev[0][key] = data["prev_gamma"]
                    prev[1][key] = data["prev_K"]
                    prev[2][loc] = data["prev_alpha"]
            loc = tuple(slice(a, b) for a, b in solver.bounds)
            key = (slice(None), slice(None)) + loc
            solver.gamma[...] = fields["gamma"][key]
            solver.K[...] = fields["K"][key]
            solver.alpha[...] = fields["alpha"][loc]
            solver.time = time
            solver.step_count = label
            solver._prev_state = None if prev is None else (
                prev[0][key].copy(), prev[1][key].copy(),
                prev[2][loc].copy())
        runner.neighbors = _neighbor_set(solver)
        if callable(on_shrink):
            on_shrink(comm, record)

    def body(step_index: int) -> None:
        if injector is not None:
            injector.tick(comm.rank, step_index)
            injector.sdc(comm.rank, step_index,
                         {"gamma": solver.gamma, "K": solver.K,
                          "alpha": solver.alpha})
        if tracer.enabled:
            tracer.instant(comm.rank, "step", "phase",
                           {"step": step_index})
        with comm.phase("evolve"):
            solver.step(1)
        if monitor is not None and monitor.due(step_index):
            with comm.phase("diagnostics"):
                monitor.guard_finite(step_index, "cactus.finite",
                                     solver.gamma, solver.K,
                                     solver.alpha)
                h_linf = comm.allreduce(
                    solver.constraints().hamiltonian_linf, op="max")
                monitor.check_bounded(step_index,
                                      "cactus.constraint",
                                      h_linf, default_growth=50.0)

    runner = OnlineRunner(
        comm, nsteps=nsteps, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        save=save if checkpoint is not None else None,
        load=load if checkpoint is not None else None,
        snapshot=snapshot, restore=restore, policy=policy,
        on_shrink=shrink_hook if on_shrink else None,
        neighbors=_neighbor_set(solver))
    runner.run(body)
    return solver.bounds, solver.gamma, solver.K, solver.alpha
