"""Cactus work profile for the performance model (Table 5).

Cactus scales weakly: every processor owns an 80x80x80 or 250x64x64
block regardless of P ("their science requires the highest-possible
resolutions", §5.2).  Phases:

* ``bssn-update`` — the ADM_BSSN_Sources loop, 68% or more of the
  wall-clock: thousands of terms over ~13 evolved + dozens of temporary
  grid functions.  Per-point constants from our evolver scaled to the
  production term count: ~1500 flops and ~520 words (the word count
  includes the register-spill traffic the paper blames for low
  superscalar efficiency, §5.2).
* ``boundary`` — radiation boundary condition on the six faces;
  vectorized on the X1 (hard-coded port), *not* on the ES (§5.1), and
  inconsequential on the superscalar machines.
* ghost-zone exchange — 6 faces x ghost width 2 x ~17 grid functions,
  once per ICN RHS evaluation (4 per step).

Per-machine ``compute_efficiency`` of the BSSN loop is set by porting
replacements (the loop's operation mix and register pressure bite
differently per architecture); the X1 value encodes the anomalously low
production throughput that the paper itself could not explain ("the
extracted kernel achieved 4.3 Gflop/s ... the full-production version
was just over 1 Gflop/s; Cray engineers continue to investigate", §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...perf.porting import PhasePort, PortingSpec
from ...perf.work import AccessPattern, AppProfile, CommPhase, WorkPhase

BSSN_FLOPS_PER_POINT = 1500.0
BSSN_WORDS_PER_POINT = 520.0
BC_FLOPS_PER_FACE_POINT = 800.0
BC_WORDS_PER_FACE_POINT = 120.0
#: evolved + temporary grid functions exchanged at ghost zones
GHOST_FIELDS = 17
GHOST_WIDTH = 2
#: RHS evaluations per ICN step (initial Euler + 3 iterations)
RHS_PER_STEP = 4

#: BSSN-loop compute efficiency by machine (see module docstring).
BSSN_COMPUTE_EFFICIENCY = {
    "Power3": 0.45,   # short pipeline forgives the spill-heavy mix
    "Power4": 0.25,   # deep pipeline, shared L2
    "Power5": 0.25,   # same core family as Power4 (projection, §5.2)
    "Altix": 0.20,    # in-order EPIC stalls on the dependency chains
    "ES": 0.56,       # non-MADD mix and short chains between loads
    "X1": 0.134,      # unexplained production slowdown (§5.2)
}
#: Effective vector-startup amplification of the BSSN loop (see
#: WorkPhase.half_length_scale): the measured AVL-92 vs AVL-248
#: efficiency gap implies n_1/2 ~ 100 elements on the ES.
BSSN_HALF_LENGTH_SCALE = 8.0


@dataclass(frozen=True)
class CactusConfig:
    """One Table 5 configuration (per-processor grid, weak scaling)."""

    grid: tuple[int, int, int]     # per-processor block (80^3 or 250x64x64)
    nprocs: int

    @property
    def label(self) -> str:
        nx, ny, nz = self.grid
        return f"{nx}x{ny}x{nz}"

    @property
    def points(self) -> float:
        nx, ny, nz = self.grid
        return float(nx * ny * nz)

    @property
    def surface_points(self) -> float:
        nx, ny, nz = self.grid
        return 2.0 * (nx * ny + ny * nz + nx * nz)

    @property
    def avl_trip(self) -> int:
        """Vectorized x-loop trip count.

        Calibrated to the paper's measured AVLs: 92 on the 80-cube (the
        x loop spans the ghost/padding-extended pencil) and 248 on the
        250-grid (interior minus boundary points).
        """
        nx = self.grid[0]
        return nx + 12 if nx <= 128 else nx - 2


def build_profile(config: CactusConfig) -> AppProfile:
    nx, ny, nz = config.grid
    pts = config.points

    # The 80-cube blocks well (slice buffers, §5.1) and its sweeps engage
    # the prefetch streams; the long thin 250x64x64 block crosses
    # multi-layer ghost zones often enough to keep them disengaged
    # (§5.2) and reuses cache worse.
    small_block = pts <= 80 ** 3
    bssn = WorkPhase(
        "bssn-update",
        flops=BSSN_FLOPS_PER_POINT * pts,
        words=BSSN_WORDS_PER_POINT * pts,
        access=AccessPattern.UNIT if small_block else AccessPattern.GHOSTED,
        trip=config.avl_trip,
        vectorizable=True,
        streamable=True,
        temporal_reuse=0.45 if small_block else 0.20,
        working_set_bytes=nx * 100 * 8.0,   # one x-pencil of ~100 fields
        compute_efficiency=0.45,            # overridden per machine
        half_length_scale=BSSN_HALF_LENGTH_SCALE,
    )
    boundary = WorkPhase(
        "boundary",
        flops=BC_FLOPS_PER_FACE_POINT * config.surface_points,
        words=BC_WORDS_PER_FACE_POINT * config.surface_points,
        access=AccessPattern.STRIDED,       # face sweeps cut across pencils
        trip=max(ny, 16),
        vectorizable=True,                  # after code restructuring
        streamable=True,
    )
    phases = [bssn, boundary]

    comms = []
    if config.nprocs > 1:
        face_bytes = (nx * ny + ny * nz + nx * nz) * 2.0 \
            * GHOST_WIDTH * GHOST_FIELDS * 8.0
        comms.append(CommPhase(
            "ghost-exchange", "p2p",
            messages=6.0 * RHS_PER_STEP,
            bytes_total=face_bytes * RHS_PER_STEP))
        comms.append(CommPhase("norms", "allreduce", messages=1.0,
                               bytes_total=64.0))

    profile = AppProfile("cactus", config.label, config.nprocs,
                         phases=phases, comms=comms)
    profile.baseline_flops = bssn.flops + boundary.flops
    return profile


def cactus_porting(config: CactusConfig, *,
                   es_bc_vectorized: bool = False,
                   x1_bc_vectorized: bool = True) -> PortingSpec:
    """§5.1's porting story.

    * per-machine BSSN-loop compute efficiency (replacements);
    * the ES radiation boundary was NOT vectorized during the
      measurement visit ("do not incorporate these additional boundary
      condition vectorizations", §5.1) — toggleable to model the planned
      future experiments;
    * the X1 boundary was hand-vectorized after it consumed over 30% of
      the overhead (§5.1).
    """
    spec = PortingSpec("cactus")
    base = build_profile(config).phase("bssn-update")
    for machine, eff in BSSN_COMPUTE_EFFICIENCY.items():
        spec.set(machine, "bssn-update", PhasePort(
            replacement=replace(base, compute_efficiency=eff),
            note=f"BSSN loop mix/pressure efficiency {eff}"))
    spec.set("ES", "boundary", PhasePort(
        vectorized=es_bc_vectorized,
        note="radiation BC vectorization not applied on ES (§5.1)"))
    spec.set("X1", "boundary", PhasePort(
        vectorized=x1_bc_vectorized,
        multistreamed=x1_bc_vectorized,
        note="hard-coded vectorized radiation BC (§5.1)"))
    return spec


def feed_metrics(registry, config: CactusConfig) -> None:
    """Publish the model work profile into a shared metrics registry
    (``cactus.model.*`` namespace)."""
    registry.ingest_profile(build_profile(config))


def table5_configs() -> list[CactusConfig]:
    out = []
    for grid in ((80, 80, 80), (250, 64, 64)):
        out.extend(CactusConfig(grid, p) for p in (16, 64, 256, 1024))
    return out
