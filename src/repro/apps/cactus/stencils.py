"""Finite-difference stencils on ghost-extended 3D arrays.

All Cactus fields live on arrays extended by ``ghost`` cells per side.
Derivative operators read neighbours by slicing, so their output is valid
on a region shrunk by one cell per application; the solver tracks this by
construction (ghost width 2 covers first derivatives of quantities that
are themselves first derivatives, e.g. the Ricci tensor's dGamma).

The serial solver fills ghosts periodically; the parallel driver fills
them from neighbouring ranks (Fig. 6) — the operators are identical, which
is what makes parallel-vs-serial bitwise comparison meaningful.
"""

from __future__ import annotations

import numpy as np

GHOST = 2  # default (2nd-order) ghost width


def ghost_for(order: int) -> int:
    """Ghost width for a given finite-difference order.

    Curvature applies first derivatives twice, so the ghost width is
    ``2 * (order // 2)``: 2 for the default 2nd-order stencils, 4 for
    the 4th-order ones.
    """
    if order not in (2, 4):
        raise ValueError("supported finite-difference orders: 2, 4")
    return order


#: 5-point 4th-order first-derivative coefficients at offsets -2..+2.
_D1_O4 = (1.0 / 12.0, -8.0 / 12.0, 0.0, 8.0 / 12.0, -1.0 / 12.0)
#: 5-point 4th-order second-derivative coefficients at offsets -2..+2.
_D2_O4 = (-1.0 / 12.0, 16.0 / 12.0, -30.0 / 12.0, 16.0 / 12.0,
          -1.0 / 12.0)


def fill_ghosts_periodic(ext: np.ndarray, ghost: int = GHOST) -> None:
    """Fill ghost cells of the *last three* axes from the periodic interior.

    In-place; works for any leading component dimensions.
    """
    g = ghost
    for ax in (-3, -2, -1):
        n = ext.shape[ax] - 2 * g
        if n < g:
            raise ValueError("interior smaller than ghost width")
        src_hi = _axslice(ax, g, 2 * g)
        dst_hi = _axslice(ax, n + g, n + 2 * g)
        src_lo = _axslice(ax, n, n + g)
        dst_lo = _axslice(ax, 0, g)
        ext[dst_hi] = ext[src_hi]
        ext[dst_lo] = ext[src_lo]


def _axslice(ax: int, start: int, stop: int) -> tuple:
    sl = [slice(None)] * 3
    sl[ax + 3] = slice(start, stop)
    return (Ellipsis, *sl)


def _shifted(f: np.ndarray, ax: int, offset: int,
             pad: int = 1) -> np.ndarray:
    """View of ``f`` shifted by ``offset`` along grid axis ``ax`` (0..2),
    shrunk by ``pad`` cells on each side of every axis."""
    n = f.shape[ax - 3]
    sl = [slice(pad, -pad)] * 3
    sl[ax] = slice(pad + offset, n - pad + offset)
    return f[(Ellipsis, *sl)]


def _accumulate(terms, out: np.ndarray | None) -> np.ndarray:
    """``sum(c * view for view, c in terms)`` with one scratch buffer.

    ``terms`` yields (view, coefficient) pairs; the first product lands
    in ``out`` and the rest are added through a single reused scratch
    array, keeping the naive sum's accumulation order (and therefore its
    bits) while allocating at most two buffers total.
    """
    it = iter(terms)
    view, c = next(it)
    out = np.multiply(view, c, out=out)
    scratch = None
    for view, c in it:
        if scratch is None:
            scratch = np.empty_like(out)
        np.multiply(view, c, out=scratch)
        out += scratch
    return out


def deriv1(f: np.ndarray, ax: int, h: float, order: int = 2,
           out: np.ndarray | None = None) -> np.ndarray:
    """Centered first derivative along grid axis ``ax``.

    Input has ghost width g; output shrinks by ``order // 2`` cells per
    side on *all* grid axes (the valid region after one application).
    ``out`` receives the result in place when given (fused strided
    update: no intermediate per-offset temporaries).
    """
    if order == 2:
        out = np.subtract(_shifted(f, ax, 1), _shifted(f, ax, -1),
                          out=out)
        out /= 2.0 * h
        return out
    if order == 4:
        out = _accumulate(((_shifted(f, ax, o, pad=2), c)
                           for o, c in zip((-2, -1, 0, 1, 2), _D1_O4)
                           if c), out)
        out /= h
        return out
    raise ValueError("supported orders: 2, 4")


def deriv2(f: np.ndarray, ax: int, h: float, order: int = 2,
           out: np.ndarray | None = None) -> np.ndarray:
    """Centered second derivative along ``ax``; shrinks by order//2."""
    if order == 2:
        out = np.multiply(_shifted(f, ax, 0), 2.0, out=out)
        np.subtract(_shifted(f, ax, 1), out, out=out)
        out += _shifted(f, ax, -1)
        out /= h * h
        return out
    if order == 4:
        out = _accumulate(((_shifted(f, ax, o, pad=2), c)
                           for o, c in zip((-2, -1, 0, 1, 2), _D2_O4)),
                          out)
        out /= h * h
        return out
    raise ValueError("supported orders: 2, 4")


def deriv_mixed(f: np.ndarray, ax1: int, ax2: int, h1: float,
                h2: float, order: int = 2,
                out: np.ndarray | None = None) -> np.ndarray:
    """Mixed second derivative; shrinks by order//2 per side.

    The 4th-order form is the tensor product of two 4th-order
    first-derivative stencils (offsets -2..2 in both directions).
    """
    if ax1 == ax2:
        return deriv2(f, ax1, h1, order, out=out)
    pad = order // 2
    n1 = f.shape[ax1 - 3]
    n2 = f.shape[ax2 - 3]

    def corner(o1: int, o2: int) -> np.ndarray:
        sl = [slice(pad, -pad)] * 3
        sl[ax1] = slice(pad + o1, n1 - pad + o1)
        sl[ax2] = slice(pad + o2, n2 - pad + o2)
        return f[(Ellipsis, *sl)]

    if order == 2:
        out = np.subtract(corner(1, 1), corner(1, -1), out=out)
        out -= corner(-1, 1)
        out += corner(-1, -1)
        out /= 4.0 * h1 * h2
        return out
    out = _accumulate(((corner(o1, o2), c1 * c2)
                       for o1, c1 in zip((-2, -1, 0, 1, 2), _D1_O4)
                       if c1
                       for o2, c2 in zip((-2, -1, 0, 1, 2), _D1_O4)
                       if c2), out)
    out /= h1 * h2
    return out


def _shrunk_shape(f: np.ndarray, pad: int) -> tuple[int, ...]:
    return f.shape[:-3] + tuple(n - 2 * pad for n in f.shape[-3:])


def grad(f: np.ndarray, spacing: tuple[float, float, float],
         order: int = 2, out: np.ndarray | None = None) -> np.ndarray:
    """All three first derivatives, stacked on a new leading axis.

    Each derivative is computed directly into its slot of ``out`` —
    the axis loop is fused into three strided in-place expressions with
    no stack copy.
    """
    if out is None:
        out = np.empty((3, *_shrunk_shape(f, order // 2)),
                       dtype=np.result_type(f.dtype, np.float64))
    for ax in range(3):
        deriv1(f, ax, spacing[ax], order, out=out[ax])
    return out


def hessian(f: np.ndarray, spacing: tuple[float, float, float],
            order: int = 2, out: np.ndarray | None = None) -> np.ndarray:
    """Symmetric (3,3,...) matrix of second derivatives."""
    if out is None:
        out = np.empty((3, 3, *_shrunk_shape(f, order // 2)),
                       dtype=np.result_type(f.dtype, np.float64))
    for a in range(3):
        for b in range(a, 3):
            deriv_mixed(f, a, b, spacing[a], spacing[b], order,
                        out=out[a, b])
            if a != b:
                out[b, a] = out[a, b]
    return out


def interior(ext: np.ndarray, shrink: int) -> np.ndarray:
    """Strip ``shrink`` cells per side of the last three axes."""
    if shrink == 0:
        return ext
    sl = (Ellipsis,) + (slice(shrink, -shrink),) * 3
    return ext[sl]


def extend(field: np.ndarray, ghost: int = GHOST) -> np.ndarray:
    """Embed an interior field into a ghost-extended array (zeros)."""
    shape = field.shape[:-3] + tuple(n + 2 * ghost
                                     for n in field.shape[-3:])
    ext = np.zeros(shape, dtype=field.dtype)
    ext[(Ellipsis,) + (slice(ghost, -ghost),) * 3] = field
    return ext


def kreiss_oliger(ext: np.ndarray, spacing: tuple[float, float, float],
                  sigma: float, ghost: int = GHOST,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Fourth-derivative Kreiss-Oliger dissipation, interior-shaped.

    ``Q f = -sigma/(16 h) (f_{i-2} - 4 f_{i-1} + 6 f_i - 4 f_{i+1}
    + f_{i+2})`` summed over the three axes — the standard stabilizer for
    second-order-accurate evolutions (it is below the truncation order).
    Requires ghost width >= 2, which :data:`GHOST` provides.
    """
    if sigma < 0:
        raise ValueError("dissipation strength must be >= 0")
    if ghost < 2:
        raise ValueError("Kreiss-Oliger needs ghost width >= 2")
    g = ghost
    core = (Ellipsis,) + (slice(g, -g),) * 3
    shape = ext[core].shape
    if out is None:
        out = np.zeros(shape, dtype=ext.dtype)
    else:
        out[...] = 0.0
    if sigma == 0.0:
        return out
    acc = np.empty(shape, dtype=ext.dtype)
    term = np.empty(shape, dtype=ext.dtype)
    for ax in range(3):
        n = ext.shape[ax - 3]

        def off(o: int) -> np.ndarray:
            sl = [slice(g, -g)] * 3
            sl[ax] = slice(g + o, n - g + o)
            return ext[(Ellipsis, *sl)]

        # acc = off(-2) - 4 off(-1) + 6 off(0) - 4 off(1) + off(2),
        # evaluated in the naive expression's order through two scratch
        # buffers instead of five temporaries.
        np.multiply(off(-1), 4.0, out=term)
        np.subtract(off(-2), term, out=acc)
        np.multiply(off(0), 6.0, out=term)
        acc += term
        np.multiply(off(1), 4.0, out=term)
        acc -= term
        acc += off(2)
        acc *= -sigma / (16.0 * spacing[ax])
        out += acc
    return out
