"""Differential geometry of the 3-metric: Christoffels, Ricci, constraints.

Everything is vectorized over the grid with ``einsum``.  Validity regions:
with ghost width 2, first-derivative quantities (dgamma, Gamma) are valid
on the ghost-1 region and curvature (dGamma, Ricci) on the true interior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stencils import grad, interior
from .tensors import sym_inverse, symmetrize, trace


@dataclass
class Curvature:
    """Geometric quantities derived from a ghost-extended 3-metric.

    With finite-difference order ``2s``: first-derivative quantities
    (``dgamma``, ``christoffel``) are valid on the ghost-s region and
    ``ricci`` on the true interior.  ``at_interior`` shrinks a ghost-s
    field to the interior for algebra with Ricci.
    """

    gamma: np.ndarray           # (3,3, n+2s...)
    gamma_inv: np.ndarray       # (3,3, n+2s...)
    dgamma: np.ndarray          # (3,3,3, n+2s...)  [k, i, j] = d_k g_ij
    christoffel: np.ndarray     # (3,3,3, n+2s...)  [k, i, j] = Gamma^k_ij
    ricci: np.ndarray           # (3,3, n...)
    order: int = 2

    @property
    def shrink(self) -> int:
        return self.order // 2

    def at_interior(self, field: np.ndarray) -> np.ndarray:
        """Shrink a ghost-s-valid field to the interior region."""
        return interior(field, self.shrink)


def curvature(gamma_ext: np.ndarray,
              spacing: tuple[float, float, float],
              order: int = 2) -> Curvature:
    """Compute Christoffels and Ricci from a ghost-extended metric."""
    if gamma_ext.shape[:2] != (3, 3):
        raise ValueError("gamma must be a full (3,3,...) field")
    s = order // 2
    # d_k gamma_ij, valid on the ghost-s region.
    dg = grad(gamma_ext, spacing, order)
    g1 = interior(gamma_ext, s)
    ginv = sym_inverse(g1)
    # Gamma^k_ij = 1/2 g^kl (d_i g_lj + d_j g_li - d_l g_ij)
    gamma_sym = np.einsum(
        "kl...,ilj...->kij...", ginv, dg) / 2.0 \
        + np.einsum("kl...,jli...->kij...", ginv, dg) / 2.0 \
        - np.einsum("kl...,lij...->kij...", ginv, dg) / 2.0
    # dGamma[m, k, i, j] = d_m Gamma^k_ij, valid on the interior.
    dGamma = grad(gamma_sym, spacing, order)
    Gi = interior(gamma_sym, s)
    # R_ij = d_k G^k_ij - d_i G^k_kj + G^k_kl G^l_ij - G^k_il G^l_kj
    d_k_G_kij = np.einsum("kkij...->ij...", dGamma)
    d_i_G_kkj = np.einsum("ikkj...->ij...", dGamma)
    GG1 = np.einsum("kkl...,lij...->ij...", Gi, Gi)
    GG2 = np.einsum("kil...,lkj...->ij...", Gi, Gi)
    ricci = symmetrize(d_k_G_kij - d_i_G_kkj + GG1 - GG2)
    return Curvature(gamma=g1, gamma_inv=ginv, dgamma=dg,
                     christoffel=gamma_sym, ricci=ricci, order=order)


def ricci_scalar(geo: Curvature) -> np.ndarray:
    """R = g^{ij} R_ij on the interior."""
    return trace(geo.ricci, geo.at_interior(geo.gamma_inv))


def hamiltonian_constraint(geo: Curvature, K_ext: np.ndarray
                           ) -> np.ndarray:
    """H = R + (tr K)^2 - K_ij K^ij, on the interior (vacuum: H = 0)."""
    ginv = geo.at_interior(geo.gamma_inv)
    K = interior(K_ext, 2 * geo.shrink)
    trK = trace(K, ginv)
    Kup = np.einsum("ik...,jl...,kl...->ij...", ginv, ginv, K)
    KK = np.einsum("ij...,ij...->...", Kup, K)
    return ricci_scalar(geo) + trK**2 - KK


def momentum_constraint(geo: Curvature, K_ext: np.ndarray,
                        spacing: tuple[float, float, float]) -> np.ndarray:
    """M_i = D^j K_ij - D_i tr K, on the interior (vacuum: M = 0)."""
    s = geo.shrink
    dK = grad(K_ext, spacing, geo.order)      # [k,i,j] = d_k K_ij
    G = geo.christoffel                       # ghost-s region
    # Covariant derivative D_k K_ij = d_k K_ij - G^l_ki K_lj - G^l_kj K_il
    K1 = interior(K_ext, s)
    DK = dK \
        - np.einsum("lki...,lj...->kij...", G, K1) \
        - np.einsum("lkj...,il...->kij...", G, K1)
    ginv1 = geo.gamma_inv
    # tr K on the ghost-s region, then its gradient on the interior.
    trK1 = trace(K1, ginv1)
    dtrK = grad(trK1, spacing, geo.order)
    DKi = interior(DK, s)
    ginv = geo.at_interior(ginv1)
    MjKij = np.einsum("jk...,kji...->i...", ginv, DKi)
    return MjKij - dtrK
