"""Symmetric-tensor grid fields and pointwise 3x3 algebra.

The ADM variables are symmetric rank-2 tensors over a 3D grid.  Storage is
component-major: a symmetric field is an array of shape ``(6, *grid)`` in
the order (xx, xy, xz, yy, yz, zz); the helpers expand to full ``(3, 3,
*grid)`` arrays for ``einsum`` work and pack back.

All algebra (inverse, determinant, traces) is vectorized over the grid
with explicit adjugate formulas — no per-point linear-algebra calls.
"""

from __future__ import annotations

import numpy as np

#: (i, j) pairs of the packed component order.
SYM_INDEX: tuple[tuple[int, int], ...] = (
    (0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2))

#: packed slot for full indices (i, j).
SLOT = np.array([[0, 1, 2], [1, 3, 4], [2, 4, 5]])


def to_full(packed: np.ndarray) -> np.ndarray:
    """(6, ...) packed symmetric components -> full (3, 3, ...) array."""
    if packed.shape[0] != 6:
        raise ValueError("packed symmetric field needs leading dim 6")
    return packed[SLOT]


def to_packed(full: np.ndarray) -> np.ndarray:
    """Full (3, 3, ...) symmetric array -> packed (6, ...) components."""
    if full.shape[:2] != (3, 3):
        raise ValueError("full tensor field needs leading dims (3, 3)")
    return np.stack([full[i, j] for i, j in SYM_INDEX])


def sym_det(g: np.ndarray) -> np.ndarray:
    """Determinant of a full (3, 3, ...) symmetric tensor field."""
    return (
        g[0, 0] * (g[1, 1] * g[2, 2] - g[1, 2] * g[2, 1])
        - g[0, 1] * (g[1, 0] * g[2, 2] - g[1, 2] * g[2, 0])
        + g[0, 2] * (g[1, 0] * g[2, 1] - g[1, 1] * g[2, 0]))


def sym_inverse(g: np.ndarray) -> np.ndarray:
    """Inverse of a full (3, 3, ...) symmetric tensor field (adjugate)."""
    det = sym_det(g)
    if np.any(np.abs(det) < 1e-300):
        raise ValueError("singular metric encountered")
    inv = np.empty_like(g)
    inv[0, 0] = g[1, 1] * g[2, 2] - g[1, 2] * g[2, 1]
    inv[0, 1] = g[0, 2] * g[2, 1] - g[0, 1] * g[2, 2]
    inv[0, 2] = g[0, 1] * g[1, 2] - g[0, 2] * g[1, 1]
    inv[1, 1] = g[0, 0] * g[2, 2] - g[0, 2] * g[2, 0]
    inv[1, 2] = g[0, 2] * g[1, 0] - g[0, 0] * g[1, 2]
    inv[2, 2] = g[0, 0] * g[1, 1] - g[0, 1] * g[1, 0]
    inv[1, 0] = inv[0, 1]
    inv[2, 0] = inv[0, 2]
    inv[2, 1] = inv[1, 2]
    return inv / det


def trace(t: np.ndarray, g_inv: np.ndarray) -> np.ndarray:
    """Trace ``g^{ij} t_{ij}`` of a full (3, 3, ...) tensor field."""
    return np.einsum("ij...,ij...->...", g_inv, t)


def raise_index(t: np.ndarray, g_inv: np.ndarray) -> np.ndarray:
    """``t^i_j = g^{ik} t_{kj}`` for full (3, 3, ...) fields."""
    return np.einsum("ik...,kj...->ij...", g_inv, t)


def identity_metric(grid_shape: tuple[int, ...]) -> np.ndarray:
    """Flat (Minkowski spatial) metric as a full (3, 3, *grid) field."""
    g = np.zeros((3, 3, *grid_shape))
    for i in range(3):
        g[i, i] = 1.0
    return g


def symmetrize(t: np.ndarray) -> np.ndarray:
    """(t + t^T)/2 over the leading (3, 3) indices."""
    return 0.5 * (t + np.swapaxes(t, 0, 1))
