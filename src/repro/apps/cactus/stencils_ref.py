"""Naive reference stencils (the pre-fusion expressions).

These are the temporary-allocating forms the fused kernels in
:mod:`repro.apps.cactus.stencils` replaced: every offset view spawns its
own intermediate array.  They are kept verbatim as the ground truth for
the fused kernels' equivalence tests (rtol <= 1e-12; in practice bitwise)
and as the "naive" side of the perf-regression benchmark.
"""

from __future__ import annotations

import numpy as np

from .stencils import _D1_O4, _D2_O4, GHOST, _shifted


def deriv1_ref(f: np.ndarray, ax: int, h: float,
               order: int = 2) -> np.ndarray:
    """Naive centered first derivative (allocating form)."""
    if order == 2:
        return (_shifted(f, ax, 1) - _shifted(f, ax, -1)) / (2.0 * h)
    if order == 4:
        acc = sum(c * _shifted(f, ax, o, pad=2)
                  for o, c in zip((-2, -1, 0, 1, 2), _D1_O4) if c)
        return acc / h
    raise ValueError("supported orders: 2, 4")


def deriv2_ref(f: np.ndarray, ax: int, h: float,
               order: int = 2) -> np.ndarray:
    """Naive centered second derivative (allocating form)."""
    if order == 2:
        return (_shifted(f, ax, 1) - 2.0 * _shifted(f, ax, 0)
                + _shifted(f, ax, -1)) / (h * h)
    if order == 4:
        acc = sum(c * _shifted(f, ax, o, pad=2)
                  for o, c in zip((-2, -1, 0, 1, 2), _D2_O4))
        return acc / (h * h)
    raise ValueError("supported orders: 2, 4")


def deriv_mixed_ref(f: np.ndarray, ax1: int, ax2: int, h1: float,
                    h2: float, order: int = 2) -> np.ndarray:
    """Naive mixed second derivative (allocating form)."""
    if ax1 == ax2:
        return deriv2_ref(f, ax1, h1, order)
    pad = order // 2
    n1 = f.shape[ax1 - 3]
    n2 = f.shape[ax2 - 3]

    def corner(o1: int, o2: int) -> np.ndarray:
        sl = [slice(pad, -pad)] * 3
        sl[ax1] = slice(pad + o1, n1 - pad + o1)
        sl[ax2] = slice(pad + o2, n2 - pad + o2)
        return f[(Ellipsis, *sl)]

    if order == 2:
        return (corner(1, 1) - corner(1, -1) - corner(-1, 1)
                + corner(-1, -1)) / (4.0 * h1 * h2)
    acc = None
    for o1, c1 in zip((-2, -1, 0, 1, 2), _D1_O4):
        if not c1:
            continue
        for o2, c2 in zip((-2, -1, 0, 1, 2), _D1_O4):
            if not c2:
                continue
            term = (c1 * c2) * corner(o1, o2)
            acc = term if acc is None else acc + term
    return acc / (h1 * h2)


def grad_ref(f: np.ndarray, spacing: tuple[float, float, float],
             order: int = 2) -> np.ndarray:
    """Naive gradient: per-axis derivatives gathered with a stack copy."""
    return np.stack([deriv1_ref(f, ax, spacing[ax], order)
                     for ax in range(3)])


def hessian_ref(f: np.ndarray, spacing: tuple[float, float, float],
                order: int = 2) -> np.ndarray:
    """Naive Hessian built from allocating mixed derivatives."""
    out_shape = deriv2_ref(f, 0, spacing[0], order).shape
    h = np.empty((3, 3, *out_shape))
    for a in range(3):
        for b in range(a, 3):
            h[a, b] = deriv_mixed_ref(f, a, b, spacing[a], spacing[b],
                                      order)
            if a != b:
                h[b, a] = h[a, b]
    return h


def kreiss_oliger_ref(ext: np.ndarray,
                      spacing: tuple[float, float, float],
                      sigma: float, ghost: int = GHOST) -> np.ndarray:
    """Naive Kreiss-Oliger dissipation (five temporaries per axis)."""
    if sigma < 0:
        raise ValueError("dissipation strength must be >= 0")
    if ghost < 2:
        raise ValueError("Kreiss-Oliger needs ghost width >= 2")
    g = ghost
    core = (Ellipsis,) + (slice(g, -g),) * 3
    out = np.zeros(ext[core].shape, dtype=ext.dtype)
    if sigma == 0.0:
        return out
    for ax in range(3):
        n = ext.shape[ax - 3]

        def off(o: int) -> np.ndarray:
            sl = [slice(g, -g)] * 3
            sl[ax] = slice(g + o, n - g + o)
            return ext[(Ellipsis, *sl)]

        out += (-sigma / (16.0 * spacing[ax])) * (
            off(-2) - 4.0 * off(-1) + 6.0 * off(0)
            - 4.0 * off(1) + off(2))
    return out
