"""Online (in-job) rank-failure recovery: the degrade-and-continue loop.

:class:`OnlineRunner` owns an application driver's step loop and turns
PR 1/3's crash-and-restart into ULFM-style shrink/spare recovery:

1. **detect** — a killed rank surfaces on every survivor as a typed
   :class:`~repro.runtime.transport.RankFailedError` (the transport's
   heartbeat detector supplies the seeded virtual detection latency);
2. **revoke** — the first survivor to observe it revokes the
   communicator so stragglers unwind promptly;
3. **repair** — :meth:`~repro.runtime.comm.Comm.repair` rebuilds the
   communicator: *respawn* refills the dead rank from the job's spare
   pool, *shrink* renumbers the survivors densely;
4. **replay** — a respawned replacement reloads only *its own*
   checkpoint shard and catches up from the transport's sender-side
   message / collective-result logs;
5. **localized rollback** — survivors restore their in-memory
   top-of-step snapshots and re-execute just the interrupted step.
   Nobody but the replacement (plus, on shrink, the redistribution
   hook) touches the checkpoint directory — O(failed ranks) recovery,
   not O(job).

The runner is deliberately small: the driver keeps its state and its
physics and hands the runner four callbacks (``save``/``load`` for
checkpoint shards, ``snapshot``/``restore`` for in-memory step
snapshots) plus the loop body.  Failure classes the runner does not
handle — :class:`~repro.runtime.faults.RankCrashError`, SDC detections,
genuine bugs — propagate unchanged to the restart supervisor, so the
two recovery layers stack.
"""

from __future__ import annotations

from typing import Any, Callable, Collection

from ..runtime.comm import Comm, OnlineRecoveryError
from ..runtime.transport import CommRevokedError, RankFailedError, \
    RepairRecord
from .supervisor import KIND_KILL, RecoveryEvent, RecoveryPolicy


class OnlineRunner:
    """Drive one rank's step loop with online rank-failure recovery.

    Parameters
    ----------
    comm:
        This rank's communicator (repaired in place on failure).
    nsteps:
        Application steps to run (step indices ``0 .. nsteps - 1``).
    checkpoint, checkpoint_every, save, load:
        Shard persistence: ``save(label)`` writes this rank's state as
        checkpoint ``label`` (= steps completed), ``load(label)``
        restores it.  The runner calls ``save`` every
        ``checkpoint_every`` steps, resumes a restarted job from
        ``checkpoint.latest_verified`` and a *replacement* rank from
        its :class:`~repro.runtime.comm.ReplayInfo` rollback point.
    snapshot, restore:
        In-memory state copy taken at the top of every live step;
        survivors restore it to re-execute an interrupted step without
        touching the checkpoint directory.
    policy:
        Optional :class:`RecoveryPolicy`; the repair leader appends one
        ``online-respawn`` / ``online-shrink``
        :class:`RecoveryEvent` per repair.
    on_shrink:
        ``on_shrink(comm, record)`` redistribution hook run after a
        shrink repair (domain remap + state reload).  Without it the
        runner never chooses shrink.
    neighbors:
        Global ranks whose halo state this rank shares; marks the
        survivor as part of the localized-rollback set in the
        :class:`RepairRecord`.
    mode:
        Force ``"respawn"`` or ``"shrink"``; default picks respawn
        while spares last, then shrink.
    start_step:
        First step when no checkpoint resume applies.
    """

    def __init__(self, comm: Comm, *, nsteps: int, checkpoint=None,
                 checkpoint_every: int = 0,
                 save: Callable[[int], None] | None = None,
                 load: Callable[[int], None] | None = None,
                 snapshot: Callable[[], Any] | None = None,
                 restore: Callable[[Any], None] | None = None,
                 policy: RecoveryPolicy | None = None,
                 on_shrink: Callable[[Comm, RepairRecord], None]
                 | None = None,
                 neighbors: Collection[int] = (),
                 mode: str | None = None, start_step: int = 0):
        if mode not in (None, "respawn", "shrink"):
            raise ValueError(f"unknown recovery mode {mode!r}")
        self.comm = comm
        self.nsteps = int(nsteps)
        self.checkpoint = checkpoint
        self.checkpoint_every = int(checkpoint_every)
        self.save = save
        self.load = load
        self.snapshot = snapshot
        self.restore = restore
        self.policy = policy
        self.on_shrink = on_shrink
        self.neighbors = set(neighbors)
        self.mode = mode
        self.start_step = int(start_step)
        #: newest checkpoint label this run wrote or resumed from
        self._last_ckpt: int | None = None
        self._snap: Any = None
        #: repairs this rank participated in (survivor side)
        self.records: list[RepairRecord] = []

    # -- startup -------------------------------------------------------------
    def _resume_point(self) -> tuple[int, int | None]:
        """(first step to execute, replay catch-up boundary or None)."""
        comm = self.comm
        info = comm.replay_info
        if info is not None:
            # Replacement rank: reload only *this* shard, then replay.
            start = info.rollback_step
            if start > 0 and self.load is not None:
                self.load(start)
            self._last_ckpt = start if start > 0 else None
            if info.resume_step > start:
                comm.begin_replay()
                return start, info.resume_step
            return start, None
        start = self.start_step
        if self.checkpoint is not None and self.load is not None:
            latest = comm.bcast(
                self.checkpoint.latest_verified(comm.size)
                if comm.rank == 0 else None)
            if latest is not None:
                self.load(latest)
                self._last_ckpt = latest
                start = latest
        return start, None

    # -- checkpoint cadence ---------------------------------------------------
    def _maybe_save(self, step: int) -> None:
        if (self.save is None or self.checkpoint_every <= 0
                or self.comm.in_replay):
            return
        label = step + 1
        if label % self.checkpoint_every:
            return
        self.save(label)
        tp = self.comm.transport
        if tp.online and self.comm.rank == 0 \
                and self._last_ckpt is not None:
            # Replay never targets anything older than the previous
            # checkpoint; keep the logs bounded to two labels.
            tp.prune_logs(self._last_ckpt)
        self._last_ckpt = label

    # -- failure handling ----------------------------------------------------
    def _recover(self, exc: Exception, step: int) -> int:
        """Repair the communicator; return the step to resume from."""
        comm = self.comm
        tp = comm.transport
        comm.revoke()
        dead = tp.dead_ranks()
        rollback = self._last_ckpt if self._last_ckpt is not None else 0
        mode = self.mode
        if mode is None:
            if comm.spares_left() >= len(dead):
                mode = "respawn"
            elif self.on_shrink is not None:
                mode = "shrink"
            else:
                raise OnlineRecoveryError(
                    f"rank(s) {dead} failed at step {step} with no "
                    f"spares left and no shrink hook") from exc
        is_neighbor = bool(self.neighbors.intersection(dead))
        if mode == "respawn":
            # Survivors re-execute only the interrupted step from their
            # in-memory snapshots; the replacement replays the gap.
            record = comm.repair(mode="respawn", resume_step=step,
                                 rollback_step=rollback,
                                 is_neighbor=is_neighbor)
            if self.restore is not None and self._snap is not None:
                self.restore(self._snap)
            resume = step
        else:
            # Everyone rolls back to the last checkpoint; the hook
            # remaps the decomposition over the shrunken communicator.
            record = comm.repair(mode="shrink", resume_step=rollback,
                                 rollback_step=rollback,
                                 is_neighbor=is_neighbor)
            if self.on_shrink is None:
                raise OnlineRecoveryError(
                    "shrink repair without a redistribution hook")
            self.on_shrink(comm, record)
            resume = rollback
        self.records.append(record)
        self._note(record, exc, step, mode)
        return resume

    def _note(self, record: RepairRecord, exc: Exception, step: int,
              mode: str) -> None:
        """Record the repair as a recovery event (repair leader only)."""
        comm = self.comm
        if self.policy is None \
                or comm._global(comm.rank) != record.survivors[0]:
            return
        self.policy.events.append(RecoveryEvent(
            kind=KIND_KILL, classification="transient",
            action=f"online-{mode}", exception=type(exc).__name__,
            message=str(exc), rank=record.dead[0], step=step,
            monitor=None, attempt=record.epoch - 1,
            latency_steps=0))

    # -- the loop -------------------------------------------------------------
    def run(self, body: Callable[[int], None]) -> None:
        """Execute ``body(step)`` for every step, surviving rank loss.

        ``body`` is the driver's original loop body (fault tick,
        physics phases, halo exchange, health checks) — unchanged from
        the restart-supervised form, so crash/SDC faults keep their
        PR 1/3 semantics and propagate to :class:`ResilientJob`.
        """
        comm = self.comm
        step, catchup = self._resume_point()
        while step < self.nsteps:
            if catchup is not None and step >= catchup:
                comm.end_replay()
                catchup = None
            if not comm.in_replay and self.snapshot is not None:
                self._snap = self.snapshot()
            comm.begin_step(step)
            try:
                body(step)
                self._maybe_save(step)
            except (RankFailedError, CommRevokedError) as exc:
                step = self._recover(exc, step)
                continue
            step += 1
