"""Silent-data-corruption detection: invariant watchdogs per application.

The wire protocol (PR 1) protects bytes *in flight* — checksummed
envelopes, retry, restart-on-crash.  None of that sees a bit flip in a
rank's live memory or in a checkpoint on disk: the run keeps stepping
and the physics is silently wrong.  This module closes that gap with
*algorithm-based* fault tolerance: every application has conserved or
monotone quantities whose violation is the corruption detector.

* **LBMHD** — total mass and momentum are collision invariants; drift
  beyond float rounding means the distributions were tampered with.
* **Cactus** — the Hamiltonian-constraint norm of a valid ADM evolution
  stays bounded; corruption of the metric or extrinsic curvature makes
  it explode.
* **GTC** — the particle count is exactly conserved across shifts, and
  the delta-f weighted energy drifts only slowly.
* **PARATEC** — band coefficient vectors are orthonormal after every
  subspace rotation, and the all-band CG total band energy is
  variational (non-increasing over outer iterations).

plus a generic NaN/Inf field guard for every app.  Checks are
SPMD-collective: the monitored value is an ``allreduce`` result, so all
ranks agree and raise :class:`SDCDetectedError` together — the
supervisor sees one root cause, classifies it (transient vs.
persistent) and rolls the job back to the last *verified* checkpoint.

Determinism: monitors compare against references captured on their
first check of a (re)started run, thresholds are configuration, and the
injected corruption they catch is itself a keyed-hash schedule
(:meth:`~repro.runtime.faults.FaultPlan.sdc_site`) — a seeded SDC run
detects at the same step, rolls back to the same checkpoint and
finishes with the same answer every time.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..obs.events import CAT_HEALTH


class SDCDetectedError(RuntimeError):
    """An invariant monitor flagged silent data corruption.

    The supervisor's rollback trigger, as :class:`~repro.runtime.faults.
    RankCrashError` is its restart trigger.  Carries the full diagnosis:
    which monitor tripped, on which rank, at which step, and how far the
    value drifted from its reference.
    """

    def __init__(self, rank: int, step: int, monitor: str, value: float,
                 reference: float, drift: float, threshold: float):
        super().__init__(
            f"invariant {monitor!r} violated on rank {rank} at step "
            f"{step}: value {value:.6g}, reference {reference:.6g}, "
            f"drift {drift:.3g} > threshold {threshold:.3g}")
        self.rank = rank
        self.step = step
        self.monitor = monitor
        self.value = value
        self.reference = reference
        self.drift = drift
        self.threshold = threshold

    def __reduce__(self):
        return (type(self),
                (self.rank, self.step, self.monitor, self.value,
                 self.reference, self.drift, self.threshold))


@dataclass(frozen=True)
class CheckRecord:
    """One invariant evaluation (passing or violating)."""

    rank: int
    step: int
    monitor: str
    value: float
    reference: float
    drift: float
    threshold: float
    ok: bool


class HealthLog:
    """Thread-safe sink for :class:`CheckRecord` across ranks and runs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[CheckRecord] = []

    def __getstate__(self) -> dict:
        """Lock-free snapshot so a log can ship to worker processes."""
        return {"_records": list(self._records)}

    def __setstate__(self, state: dict) -> None:
        self._records = list(state["_records"])
        self._lock = threading.Lock()

    def append(self, rec: CheckRecord) -> None:
        with self._lock:
            self._records.append(rec)

    @property
    def records(self) -> list[CheckRecord]:
        with self._lock:
            return list(self._records)

    def violations(self) -> list[CheckRecord]:
        return [r for r in self.records if not r.ok]

    def summary(self) -> list[dict[str, Any]]:
        """Per-monitor rollup: checks, final value, worst drift, status."""
        by_mon: dict[str, list[CheckRecord]] = {}
        for rec in self.records:
            by_mon.setdefault(rec.monitor, []).append(rec)
        out = []
        for name in sorted(by_mon):
            recs = by_mon[name]
            worst = max(recs, key=lambda r: r.drift)
            out.append({
                "monitor": name,
                "checks": len(recs),
                "reference": recs[0].reference,
                "last_value": recs[-1].value,
                "max_drift": worst.drift,
                "threshold": worst.threshold,
                "ok": all(r.ok for r in recs),
            })
        return out


@dataclass
class HealthConfig:
    """Invariant-monitor configuration for one monitored run.

    ``check_every`` sets the check cadence in steps (1 = every step —
    detection latency 0; larger values trade latency for overhead).
    ``thresholds`` overrides per-monitor drift thresholds by name.
    ``log`` collects every check for reporting (``None`` = detect only).
    """

    check_every: int = 1
    thresholds: dict[str, float] = field(default_factory=dict)
    log: HealthLog | None = None

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")


class HealthMonitor:
    """Per-rank invariant watchdog bound to one communicator.

    Check methods are **collective**: every rank must call them at the
    same program point with its local contribution already reduced (or
    with the same global value).  References are captured on the first
    check of each monitor, so a rollback re-anchors to the restored —
    verified — state.
    """

    def __init__(self, comm, config: HealthConfig | None = None):
        self.comm = comm
        self.config = config if config is not None else HealthConfig()
        self._refs: dict[str, float] = {}
        self._prev: dict[str, float] = {}

    def due(self, step: int) -> bool:
        """True when ``step`` is a check step under the configured cadence."""
        return (step + 1) % self.config.check_every == 0

    def threshold(self, name: str, default: float) -> float:
        return self.config.thresholds.get(name, default)

    # -- recording / raising ------------------------------------------------
    def _report(self, step: int, name: str, value: float, ref: float,
                drift: float, thr: float, ok: bool) -> None:
        log = self.config.log
        if log is not None and (not ok or self.comm.rank == 0):
            log.append(CheckRecord(self.comm.rank, step, name, value,
                                   ref, drift, thr, ok))
        if not ok:
            tracer = self.comm.transport.tracer
            if tracer.enabled:
                tracer.instant(self.comm.rank, "invariant-violation",
                               CAT_HEALTH,
                               {"monitor": name, "step": step,
                                "value": value, "reference": ref,
                                "drift": drift})
            raise SDCDetectedError(self.comm.rank, step, name, value,
                                   ref, drift, thr)

    # -- invariant checks ---------------------------------------------------
    def check_conserved(self, step: int, name: str, value: float, *,
                        default_threshold: float,
                        scale: float | None = None) -> None:
        """``value`` must stay within relative drift of its first reading.

        ``scale`` sets the drift denominator floor for quantities whose
        reference is legitimately near zero (e.g. net momentum — pass
        the total mass as the scale).
        """
        value = float(value)
        ref = self._refs.setdefault(name, value)
        denom = max(abs(ref), abs(scale) if scale is not None else 0.0,
                    1e-300)
        drift = abs(value - ref) / denom
        thr = self.threshold(name, default_threshold)
        self._report(step, name, value, ref, drift, thr,
                     math.isfinite(value) and drift <= thr)

    def check_bounded(self, step: int, name: str, value: float, *,
                      default_growth: float,
                      floor: float = 1e-12) -> None:
        """``value`` must not exceed ``growth x`` its first reading.

        For residual-like quantities (constraint norms) that are nonzero
        by discretization and may grow slowly but not explosively;
        ``floor`` keeps the bound meaningful when the reference is at
        rounding level.
        """
        value = float(value)
        ref = self._refs.setdefault(name, value)
        growth = self.threshold(name, default_growth)
        bound = growth * max(abs(ref), floor)
        drift = value / max(abs(ref), floor)
        self._report(step, name, value, ref, drift, growth,
                     math.isfinite(value) and value <= bound)

    def check_monotone(self, step: int, name: str, value: float, *,
                       default_slack: float) -> None:
        """``value`` must not increase beyond relative ``slack`` per check.

        For variational quantities (total band energy in all-band CG,
        SCF residuals): corruption shows up as an energy *increase* that
        a correct minimizer cannot produce.
        """
        value = float(value)
        prev = self._prev.get(name)
        self._prev[name] = value
        if prev is None:
            self._refs.setdefault(name, value)
            return
        slack = self.threshold(name, default_slack)
        rise = (value - prev) / max(abs(prev), 1e-300)
        self._report(step, name, value, prev, max(rise, 0.0), slack,
                     math.isfinite(value) and rise <= slack)

    def check_absolute(self, step: int, name: str, value: float, *,
                       default_threshold: float) -> None:
        """``|value|`` must stay below an absolute threshold.

        For deviation-from-exact quantities with a known zero reference
        (e.g. max wavefunction-normalization error after a subspace
        rotation leaves the bands orthonormal by construction).
        """
        value = float(value)
        thr = self.threshold(name, default_threshold)
        self._report(step, name, value, 0.0, abs(value), thr,
                     math.isfinite(value) and abs(value) <= thr)

    def guard_finite(self, step: int, name: str,
                     *arrays: np.ndarray) -> None:
        """Collective NaN/Inf guard over the named state arrays.

        The finiteness verdict is allreduced so every rank raises (or
        passes) together even though the corruption is rank-local.
        """
        bad_local = sum(int(not np.all(np.isfinite(
            a.view(np.float64) if np.iscomplexobj(a) else a)))
            for a in arrays)
        bad = self.comm.allreduce(bad_local)
        self._report(step, name, float(bad), 0.0, float(bad), 0.0,
                     bad == 0)


# ---------------------------------------------------------------------------
# Monitored-run harness: one entry point the chaos --sdc pass and the
# `python -m repro health <app>` report share.
# ---------------------------------------------------------------------------

#: canonical app order (matches the paper's sections)
APPS = ("lbmhd", "cactus", "gtc", "paratec")


@dataclass
class MonitoredRun:
    """Outcome of one app run under invariant monitoring."""

    app: str
    rel_err: float                 # monitored vs. fault-free result
    bitwise: bool                  # exact match to the fault-free run
    log: HealthLog
    policy: Any                    # RecoveryPolicy (history populated)
    injector: Any                  # FaultInjector or None
    detail: str


def _rel_err(a, b) -> float:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.max(np.abs(a - b)
                        / np.maximum(np.abs(a), 1e-300), initial=0.0))


def sdc_plan(app: str, seed: int) -> "Any":
    """The demonstration SDC schedule for ``app``: one deterministic
    bit flip in a named state array mid-run, plus one checkpoint-file
    corruption, no wire faults.

    Bit 62 rescales a float64 by ``2**+-512`` — physically loud, so the
    invariant monitors must catch it the same step.  PARATEC uses bit 56
    (``x 65536``): large enough to break variational monotonicity, small
    enough that the Gram matrix stays finite (overflowing to ``inf``
    would fail in ``cholesky`` before any monitor runs, which would test
    the wrong path).
    """
    from ..runtime.faults import FaultPlan

    site = {
        "lbmhd": dict(sdc_arrays=("f",), sdc_rank=1, sdc_step=3,
                      sdc_bit=62),
        "cactus": dict(sdc_arrays=("K",), sdc_rank=1, sdc_step=2,
                       sdc_bit=62),
        "gtc": dict(sdc_arrays=("v_par",), sdc_rank=0, sdc_step=2,
                    sdc_bit=62),
        "paratec": dict(sdc_arrays=("coeff",), sdc_rank=1, sdc_step=2,
                        sdc_bit=56),
    }[app]
    # Also damage the checkpoint written at the flip step on rank 0:
    # the rollback must *skip* it (CRC mismatch) and restore the next
    # older verified step, exercising both detection layers at once.
    return FaultPlan(seed=seed, sdc_rate=1.0, ckpt_corrupt=1.0,
                     ckpt_corrupt_rank=0,
                     ckpt_corrupt_step=site["sdc_step"], **site)


def run_monitored(app: str, *, ckdir: str, sdc: bool = False,
                  seed: int = 2004, persistent: bool = False,
                  check_every: int = 1,
                  backend: str = "thread") -> MonitoredRun:
    """Run ``app`` twice — fault-free, then monitored (optionally under
    the demonstration SDC plan) — and compare the results.

    With ``sdc=True`` the monitored pass gets the app's
    :func:`sdc_plan`, checkpointing, and rollback supervision; the
    returned :class:`MonitoredRun` carries the health log, the recovery
    history and the final deviation from the fault-free answer.
    ``persistent=True`` switches the corruption to stuck-at
    (``sdc_once=False``) so the recovery policy's persistent-fault abort
    path can be exercised.
    """
    from dataclasses import replace

    from ..runtime.faults import FaultInjector
    from .checkpoint import Checkpointer
    from .supervisor import RecoveryPolicy

    if app not in APPS:
        raise ValueError(f"unknown app {app!r} (one of {APPS})")
    log = HealthLog()
    health = HealthConfig(check_every=check_every, log=log)
    policy = RecoveryPolicy(max_restarts=3)
    injector = None
    checkpoint = None
    if sdc:
        plan = sdc_plan(app, seed)
        if persistent:
            plan = replace(plan, sdc_once=False)
        injector = FaultInjector(plan)
        checkpoint = Checkpointer(ckdir, injector=injector)
    runner = _RUNNERS[app]
    try:
        rel, bitwise, detail = runner(health, policy, injector,
                                      checkpoint, backend)
    except RuntimeError as exc:
        # Unrecovered (e.g. persistent corruption aborted by policy):
        # surface the diagnosis instead of a result.
        final = policy.final_failure
        rel, bitwise = float("inf"), False
        detail = (f"aborted: {final.describe()}" if final is not None
                  else f"aborted: {exc}")
    return MonitoredRun(app=app, rel_err=rel, bitwise=bitwise, log=log,
                        policy=policy, injector=injector, detail=detail)


def _run_lbmhd(health, policy, injector, checkpoint, backend="thread"):
    from ..apps.lbmhd import orszag_tang
    from ..apps.lbmhd.parallel import run_parallel

    nprocs, nsteps = 4, 6
    rho, u, B = orszag_tang(16, 16)
    clean = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps)
    kw = dict(nprocs=nprocs, nsteps=nsteps, health=health,
              policy=policy, backend=backend)
    if injector is not None:
        kw.update(injector=injector, checkpoint=checkpoint,
                  checkpoint_every=1)
    monitored = run_parallel(rho, u, B, **kw)
    rel = max(_rel_err(a, b) for a, b in zip(clean, monitored))
    bitwise = all(np.array_equal(a, b)
                  for a, b in zip(clean, monitored))
    mass = float(monitored[0].sum())
    return rel, bitwise, (f"mass {mass:.6f}, "
                          f"{'bitwise' if bitwise else f'rel {rel:.1e}'}"
                          f" vs clean")


def _run_cactus(health, policy, injector, checkpoint, backend="thread"):
    from ..apps.cactus import gauge_wave
    from ..apps.cactus.parallel import run_parallel

    nprocs, nsteps = 2, 4
    dx = 1.0 / 8
    g, K, a = gauge_wave((8, 4, 4), dx, amplitude=0.05)
    kw0 = dict(nprocs=nprocs, nsteps=nsteps, spacing=dx, dt=0.2 * dx)
    clean = run_parallel(g, K, a, **kw0)
    kw = dict(kw0, health=health, policy=policy, backend=backend)
    if injector is not None:
        kw.update(injector=injector, checkpoint=checkpoint,
                  checkpoint_every=1)
    monitored = run_parallel(g, K, a, **kw)
    rel = max(_rel_err(x, y) for x, y in zip(clean, monitored))
    bitwise = all(np.array_equal(x, y)
                  for x, y in zip(clean, monitored))
    return rel, bitwise, f"constraint bounded, rel {rel:.1e} vs clean"


def _run_gtc(health, policy, injector, checkpoint, backend="thread"):
    from ..apps.gtc import (
        AnnulusGrid,
        TorusGeometry,
        load_ring_perturbation,
    )
    from ..apps.gtc.parallel import run_parallel

    nprocs, nsteps = 2, 4
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 2)
    parts = load_ring_perturbation(geom, 4.0)
    clean = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps)
    kw = dict(nprocs=nprocs, nsteps=nsteps, health=health,
              policy=policy, backend=backend)
    if injector is not None:
        kw.update(injector=injector, checkpoint=checkpoint,
                  checkpoint_every=1)
    monitored = run_parallel(geom, parts, **kw)
    n_clean = sum(r.nparticles for r in clean)
    n_mon = sum(r.nparticles for r in monitored)
    if n_mon != n_clean:
        return float("inf"), False, "particle count diverged"
    rel = max(_rel_err(cr.kinetic_energy, fr.kinetic_energy)
              for cr, fr in zip(clean, monitored))
    bitwise = all(
        np.array_equal(cr.tags, fr.tags)
        and all(np.array_equal(p, q)
                for p, q in zip(cr.phi_planes, fr.phi_planes))
        for cr, fr in zip(clean, monitored))
    return rel, bitwise, (f"{n_mon} particles conserved, "
                          f"energy rel {rel:.1e} vs clean")


def _run_paratec(health, policy, injector, checkpoint, backend="thread"):
    from ..apps.paratec import silicon_primitive
    from ..apps.paratec.parallel import solve_bands_parallel

    nprocs = 2
    cell = silicon_primitive()
    kw0 = dict(nprocs=nprocs, n_outer=4, n_inner=2)
    clean = solve_bands_parallel(cell, 4.0, 4, **kw0)
    kw = dict(kw0, health=health, policy=policy, backend=backend)
    if injector is not None:
        kw.update(injector=injector, checkpoint=checkpoint,
                  checkpoint_every=1)
    monitored = solve_bands_parallel(cell, 4.0, 4, **kw)
    rel = _rel_err(clean.eigenvalues, monitored.eigenvalues)
    bitwise = bool(np.array_equal(clean.eigenvalues,
                                  monitored.eigenvalues))
    return rel, bitwise, f"eigenvalues rel {rel:.1e} vs clean"


_RUNNERS: dict[str, Callable] = {
    "lbmhd": _run_lbmhd,
    "cactus": _run_cactus,
    "gtc": _run_gtc,
    "paratec": _run_paratec,
}


def render_report(run: MonitoredRun) -> str:
    """Human-readable invariant report for ``python -m repro health``."""
    lines = [f"{run.app}: {run.detail}"]
    rows = run.log.summary()
    if rows:
        w = max(len(r["monitor"]) for r in rows)
        lines.append(f"  {'monitor':<{w}}  {'checks':>6}  "
                     f"{'reference':>12}  {'last':>12}  "
                     f"{'max drift':>10}  {'threshold':>10}  status")
        for r in rows:
            lines.append(
                f"  {r['monitor']:<{w}}  {r['checks']:>6}  "
                f"{r['reference']:>12.5g}  {r['last_value']:>12.5g}  "
                f"{r['max_drift']:>10.3g}  {r['threshold']:>10.3g}  "
                f"{'ok' if r['ok'] else 'VIOLATED'}")
    hist = getattr(run.policy, "events", [])
    for ev in hist:
        lines.append(f"  recovery: {ev.describe()}")
    if run.injector is not None:
        for rec in run.injector.sdc_records:
            lines.append(
                f"  injected: bit {rec.bit} of {rec.array}[{rec.index}] "
                f"on rank {rec.rank} at step {rec.step} "
                f"({rec.old:.4g} -> {rec.new:.4g})")
    return "\n".join(lines)
