"""Shared failure classification: exit codes and step-error taxonomy.

The recovery machinery grown in PRs 1/3/6 classifies *in-process*
failures (transient / persistent / fatal) from exception types.  The
campaign engine needs the same three-way split one level up, where a
"failure" may be a child process's exit status — so the classes and the
exit-code contract live here, importable by both the CLI (which emits
the codes) and the campaign pool (which consumes them).

Exit-code contract (documented in the README):

====  ==================  =============================================
code  name                meaning
====  ==================  =============================================
0     ``EXIT_OK``         success
1     ``EXIT_ERROR``      unclassified failure (unexpected exception)
2     ``EXIT_CONFIG``     bad configuration / usage — *fatal*: retrying
                          the same invocation cannot succeed (argparse
                          errors land here too)
3     ``EXIT_RUN``        a run-level failure — *transient* candidate:
                          an injected-fault pass did not recover, a
                          monitored run diverged; a retry may pass
4     ``EXIT_CHECK``      a deterministic check failed — *persistent*:
                          perf regression vs baseline; a bare retry
                          will fail identically
5     ``EXIT_PARTIAL``    a campaign completed but some steps failed or
                          were skipped (partial success)
====  ==================  =============================================

Negative wait statuses (killed by signal N) classify as transient: the
environment, not the configuration, ended the run.
"""

from __future__ import annotations

#: classification labels (shared with RecoveryPolicy's vocabulary)
TRANSIENT = "transient"
PERSISTENT = "persistent"
FATAL = "fatal"

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_CONFIG = 2
EXIT_RUN = 3
EXIT_CHECK = 4
EXIT_PARTIAL = 5

#: exit code -> failure class (anything unlisted and nonzero, including
#: signal deaths, is transient — retry unless proven pointless)
_EXIT_CLASSES = {
    EXIT_CONFIG: FATAL,
    EXIT_CHECK: PERSISTENT,
    EXIT_PARTIAL: PERSISTENT,
}


def classify_exit(code: int) -> str | None:
    """Failure class of a child-process exit status.

    ``None`` for success; otherwise one of :data:`TRANSIENT`,
    :data:`PERSISTENT`, :data:`FATAL`.  This is the string-matching-free
    contract the campaign pool uses to decide retry vs. give-up vs.
    abort for ``cli`` steps.
    """
    if code == EXIT_OK:
        return None
    return _EXIT_CLASSES.get(code, TRANSIENT)


class StepError(RuntimeError):
    """A campaign step failed; subclasses carry the failure class."""

    classification = TRANSIENT


class TransientStepError(StepError):
    """Retry may succeed (flaky run, environment hiccup, lost worker)."""

    classification = TRANSIENT


class StepTimeoutError(TransientStepError):
    """The step exceeded its wall-clock budget (transient: retried)."""


class PersistentStepError(StepError):
    """Deterministic failure: retrying the same config fails the same
    way.  The step is abandoned and its dependents are skipped, but the
    campaign continues — one poisoned config degrades the sweep to a
    partial report, it does not abort it."""

    classification = PERSISTENT


class FatalStepError(StepError):
    """The spec itself is broken (unknown kind, impossible config):
    scheduling anything further is pointless — the campaign aborts."""

    classification = FATAL


def classify_failure(exc: BaseException) -> str:
    """Failure class of an in-process step exception.

    Typed :class:`StepError`\\ s carry their own class; configuration-
    shaped errors (``ValueError``/``TypeError``/``KeyError``) are fatal
    — the step could never have run; everything else is transient.
    """
    if isinstance(exc, StepError):
        return exc.classification
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return FATAL
    return TRANSIENT
