"""Per-rank application checkpoints as ``.npz`` files.

Checkpoint format
-----------------
A checkpoint directory holds one file per (step, rank):

    ``step{step:08d}.rank{rank:05d}.npz``

where *step* counts completed application steps (step ``k`` is the state
*after* ``k`` steps).  Each file is a plain ``numpy.savez`` archive of
the arrays the application needs to resume — numeric state only, loaded
with ``allow_pickle=False`` so a checkpoint can never execute code.
Scalars are stored as 0-d arrays; exact float64 bit patterns round-trip,
which is what makes bitwise-identical restarts possible (LBMHD).

Integrity: alongside every array ``name`` the file stores a CRC32 of its
bytes under the reserved name ``_crc_name``.  :meth:`Checkpointer.load`
recomputes and compares on read (``verify=True`` default), so a
checkpoint damaged on disk — by the fault plan's ``ckpt_corrupt``
schedule or by a real storage fault — is *detected*, never silently
restored.  Unreadable and CRC-failing files raise
:class:`CheckpointError` / :class:`CheckpointCorruptError` naming the
rank and step.

Writes are atomic and durable (temp file + fsync + rename + directory
fsync via :mod:`repro.runtime.atomic_io`), so a rank killed mid-save
leaves no torn file and a completed save survives power loss.  A step is *consistent* when all ``nranks`` files
exist and are readable archives; it is *verified* when every rank's file
additionally passes its CRCs.  Restart resumes from
:meth:`Checkpointer.latest_verified` — the newest fully-trusted step —
so a crash while some ranks were still saving step *k*, or a corrupted
shard of step *k*, simply falls back to an older verified set.

Each rank prunes only its **own** old files (``keep`` newest), so pruning
never races with another rank's save.
"""

from __future__ import annotations

import re
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..obs.events import CAT_CKPT
from ..obs.tracer import NULL_TRACER
from ..runtime.atomic_io import atomic_write

_FILE_RE = re.compile(r"^step(\d{8})\.rank(\d{5})\.npz$")

#: reserved prefix for the per-array integrity fields inside the archive
_CRC_PREFIX = "_crc_"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated or otherwise unreadable."""

    def __init__(self, message: str, *, step: int, rank: int):
        super().__init__(
            f"checkpoint step {step} rank {rank}: {message}")
        self._raw_message = message
        self.step = step
        self.rank = rank

    def __reduce__(self):
        return (_rebuild_checkpoint_error,
                (type(self), self._raw_message, self.step, self.rank))


def _rebuild_checkpoint_error(cls, message: str, step: int, rank: int):
    """Unpickle helper: the constructor re-adds the step/rank prefix."""
    return cls(message, step=step, rank=rank)


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file read back but failed its stored CRCs."""


class Checkpointer:
    """Save/load per-rank state snapshots in one directory.

    ``tracer`` optionally receives one instant event per save/load
    (rank-tracked, with step and byte size), so checkpoint activity is
    visible on the same timeline as compute and communication.
    ``injector`` optionally attaches a
    :class:`~repro.runtime.faults.FaultInjector` whose plan may schedule
    post-write checkpoint corruption (the ``ckpt_corrupt`` fault class).
    """

    def __init__(self, directory: str | Path, *, keep: int = 3,
                 tracer=None, injector=None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector
        #: steps distrusted by :meth:`quarantine` (corruption may have
        #: been checkpointed before it was detected); cleared per step
        #: when a monitored re-run saves fresh bytes over the label
        self._quarantined: set[int] = set()
        #: rank -> number of *state-restoring* loads (``count=True``);
        #: verification scans don't count.  This is the ledger the
        #: localized-rollback acceptance reads: online recovery must
        #: show loads only on the replacement (+ neighbors), never a
        #: whole-job reload.
        self.load_counts: dict[int, int] = {}

    def __getstate__(self):
        # Tracers hold live buffers/locks and never cross a process
        # boundary; the worker reattaches its own after unpickling.
        state = dict(self.__dict__)
        state["tracer"] = NULL_TRACER
        return state

    def _path(self, step: int, rank: int) -> Path:
        return self.directory / f"step{step:08d}.rank{rank:05d}.npz"

    # -- write ----------------------------------------------------------------
    def save(self, step: int, rank: int, **arrays) -> Path:
        """Atomically write one rank's state for ``step``.

        Values are coerced with ``np.asarray``; pass exact arrays (no
        object dtype) — the on-disk format is pickle-free by design.
        Each array is stored together with a ``_crc_<name>`` CRC32 so a
        later load can prove the bytes are the ones written.
        """
        if step < 0:
            raise ValueError("step must be >= 0")
        data = {}
        for name, value in arrays.items():
            if name.startswith(_CRC_PREFIX):
                raise ValueError(
                    f"checkpoint field {name!r} uses the reserved "
                    f"{_CRC_PREFIX!r} prefix")
            arr = np.asarray(value)
            if arr.dtype == object:
                raise TypeError(
                    f"checkpoint field {name!r} is not numeric")
            data[name] = arr
            data[_CRC_PREFIX + name] = np.uint32(
                zlib.crc32(np.ascontiguousarray(arr).tobytes()))
        final = self._path(step, rank)
        with atomic_write(final, tmp_suffix=f".tmp{rank}") as fh:
            np.savez(fh, **data)
        # Fresh bytes from a monitored run supersede any earlier
        # distrust of this label.
        self._quarantined.discard(step)
        self._maybe_corrupt(step, rank, final)
        if self.tracer.enabled:
            self.tracer.instant(rank, "checkpoint-save", CAT_CKPT,
                                {"step": step,
                                 "nbytes": final.stat().st_size})
        self._prune_rank(rank)
        return final

    def _maybe_corrupt(self, step: int, rank: int, path: Path) -> None:
        """Apply the fault plan's scheduled post-write file damage."""
        if self.injector is None:
            return
        offset = self.injector.ckpt_corrupt_offset(
            step, rank, path.stat().st_size)
        if offset is None:
            return
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))

    def _prune_rank(self, rank: int) -> None:
        mine = sorted(self.rank_steps(rank))
        for step in mine[:-self.keep]:
            try:
                self._path(step, rank).unlink()
            except FileNotFoundError:
                pass

    # -- read -----------------------------------------------------------------
    def load(self, step: int, rank: int, *, verify: bool = True,
             count: bool = True) -> dict[str, np.ndarray]:
        """One rank's saved arrays for ``step`` (bitwise as saved).

        Raises :class:`CheckpointError` when the file is missing or
        unreadable, and :class:`CheckpointCorruptError` when an array's
        bytes do not match its stored CRC (``verify=True``, default).
        ``count=False`` marks a verification-only read that must not
        inflate :attr:`load_counts` (the localized-rollback ledger).
        """
        path = self._path(step, rank)
        if not path.exists():
            raise CheckpointError("file missing", step=step, rank=rank)
        try:
            with np.load(path, allow_pickle=False) as z:
                raw = {name: z[name] for name in z.files}
        except (zipfile.BadZipFile, OSError, ValueError, KeyError,
                EOFError) as exc:
            raise CheckpointError(
                f"unreadable archive ({exc})", step=step,
                rank=rank) from exc
        out = {name: arr for name, arr in raw.items()
               if not name.startswith(_CRC_PREFIX)}
        if verify:
            for name, arr in out.items():
                stored = raw.get(_CRC_PREFIX + name)
                if stored is None:
                    continue  # pre-CRC checkpoint: nothing to check
                actual = zlib.crc32(np.ascontiguousarray(arr).tobytes())
                if actual != int(stored):
                    raise CheckpointCorruptError(
                        f"array {name!r} CRC mismatch "
                        f"(stored {int(stored):#010x}, "
                        f"read {actual:#010x})", step=step, rank=rank)
        if count:
            self.load_counts[rank] = self.load_counts.get(rank, 0) + 1
        if self.tracer.enabled:
            self.tracer.instant(rank, "checkpoint-load", CAT_CKPT,
                                {"step": step, "counted": count})
        return out

    def reset_load_counts(self) -> None:
        self.load_counts.clear()

    def rank_steps(self, rank: int) -> list[int]:
        """Steps for which ``rank`` has a checkpoint file (sorted)."""
        steps = []
        for p in self.directory.iterdir():
            m = _FILE_RE.match(p.name)
            if m and int(m.group(2)) == rank:
                steps.append(int(m.group(1)))
        return sorted(steps)

    def _readable(self, step: int, rank: int) -> bool:
        """Cheap structural check: the archive opens and lists members."""
        try:
            with zipfile.ZipFile(self._path(step, rank)) as z:
                z.namelist()
            return True
        except (zipfile.BadZipFile, OSError, EOFError):
            return False

    def verified(self, step: int, rank: int) -> bool:
        """True when ``(step, rank)`` loads cleanly and passes its CRCs."""
        try:
            self.load(step, rank, verify=True, count=False)
            return True
        except CheckpointError:
            return False

    def consistent_steps(self, nranks: int) -> list[int]:
        """Steps for which every rank's file exists and is a readable
        archive (sorted).  Unreadable (truncated/damaged) files are
        skipped, not raised — consistency scanning must survive the very
        faults it is there to route around."""
        per_rank = [set(self.rank_steps(r)) for r in range(nranks)]
        if not per_rank:
            return []
        candidates = sorted(set.intersection(*per_rank))
        return [s for s in candidates
                if all(self._readable(s, r) for r in range(nranks))]

    def latest_consistent(self, nranks: int) -> int | None:
        """Newest step with a complete set of readable rank files."""
        steps = self.consistent_steps(nranks)
        return steps[-1] if steps else None

    def verified_steps(self, nranks: int) -> list[int]:
        """Consistent steps whose every rank file also passes its CRCs
        and that are not under :meth:`quarantine`."""
        return [s for s in self.consistent_steps(nranks)
                if s not in self._quarantined
                and all(self.verified(s, r) for r in range(nranks))]

    def latest_verified(self, nranks: int) -> int | None:
        """Newest fully-trusted step: complete, readable, CRC-clean.

        This is the rollback target for recovery — restoring from a
        merely *consistent* step could resurrect corrupted state.
        """
        steps = self.verified_steps(nranks)
        return steps[-1] if steps else None

    def quarantine(self, step: int) -> None:
        """Distrust every existing checkpoint labeled ``step`` or later.

        CRCs prove a file holds the bytes that were *written* — they
        cannot prove those bytes were healthy.  A silent corruption
        that slips below an invariant threshold for one step gets
        checkpointed with a perfectly valid CRC, and a later detection
        at step *s* would otherwise roll straight back onto the
        tainted snapshot and re-detect forever.  The recovery engine
        therefore quarantines labels ``>= s`` before rolling back, so
        the restart resumes from a snapshot that strictly predates the
        detection.  A quarantined label regains trust the moment the
        replay overwrites it with fresh bytes (see :meth:`save`).

        This is conservative by one step for detectors that fire in
        the same step as the fault (their label-*s* snapshot predates
        the flip and is actually clean — replaying one extra step is
        cheap), and it is the best a real system can do when the
        detection latency is unknown.
        """
        ranks = {int(m.group(2)) for p in self.directory.iterdir()
                 if (m := _FILE_RE.match(p.name))}
        for rank in ranks:
            self._quarantined.update(
                s for s in self.rank_steps(rank) if s >= step)

    def clear(self) -> None:
        """Delete every checkpoint file in the directory."""
        for p in self.directory.iterdir():
            if _FILE_RE.match(p.name):
                p.unlink()
