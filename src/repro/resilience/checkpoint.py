"""Per-rank application checkpoints as ``.npz`` files.

Checkpoint format
-----------------
A checkpoint directory holds one file per (step, rank):

    ``step{step:08d}.rank{rank:05d}.npz``

where *step* counts completed application steps (step ``k`` is the state
*after* ``k`` steps).  Each file is a plain ``numpy.savez`` archive of
the arrays the application needs to resume — numeric state only, loaded
with ``allow_pickle=False`` so a checkpoint can never execute code.
Scalars are stored as 0-d arrays; exact float64 bit patterns round-trip,
which is what makes bitwise-identical restarts possible (LBMHD).

Writes are atomic (temp file + ``os.replace``), so a rank killed mid-save
leaves no torn file.  A step is *consistent* when all ``nranks`` files
exist; restart always resumes from :meth:`Checkpointer.latest_consistent`,
which is the newest such step — a crash while some ranks were still
saving step *k* simply falls back to step *k - 1*'s complete set.

Each rank prunes only its **own** old files (``keep`` newest), so pruning
never races with another rank's save.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import numpy as np

from ..obs.events import CAT_CKPT
from ..obs.tracer import NULL_TRACER

_FILE_RE = re.compile(r"^step(\d{8})\.rank(\d{5})\.npz$")


class Checkpointer:
    """Save/load per-rank state snapshots in one directory.

    ``tracer`` optionally receives one instant event per save/load
    (rank-tracked, with step and byte size), so checkpoint activity is
    visible on the same timeline as compute and communication.
    """

    def __init__(self, directory: str | Path, *, keep: int = 3,
                 tracer=None):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _path(self, step: int, rank: int) -> Path:
        return self.directory / f"step{step:08d}.rank{rank:05d}.npz"

    # -- write ----------------------------------------------------------------
    def save(self, step: int, rank: int, **arrays) -> Path:
        """Atomically write one rank's state for ``step``.

        Values are coerced with ``np.asarray``; pass exact arrays (no
        object dtype) — the on-disk format is pickle-free by design.
        """
        if step < 0:
            raise ValueError("step must be >= 0")
        data = {}
        for name, value in arrays.items():
            arr = np.asarray(value)
            if arr.dtype == object:
                raise TypeError(
                    f"checkpoint field {name!r} is not numeric")
            data[name] = arr
        final = self._path(step, rank)
        tmp = final.with_suffix(f".tmp{rank}")
        with open(tmp, "wb") as fh:
            np.savez(fh, **data)
        os.replace(tmp, final)
        if self.tracer.enabled:
            self.tracer.instant(rank, "checkpoint-save", CAT_CKPT,
                                {"step": step,
                                 "nbytes": final.stat().st_size})
        self._prune_rank(rank)
        return final

    def _prune_rank(self, rank: int) -> None:
        mine = sorted(self.rank_steps(rank))
        for step in mine[:-self.keep]:
            try:
                self._path(step, rank).unlink()
            except FileNotFoundError:
                pass

    # -- read -----------------------------------------------------------------
    def load(self, step: int, rank: int) -> dict[str, np.ndarray]:
        """One rank's saved arrays for ``step`` (bitwise as saved)."""
        with np.load(self._path(step, rank), allow_pickle=False) as z:
            out = {name: z[name] for name in z.files}
        if self.tracer.enabled:
            self.tracer.instant(rank, "checkpoint-load", CAT_CKPT,
                                {"step": step})
        return out

    def rank_steps(self, rank: int) -> list[int]:
        """Steps for which ``rank`` has a checkpoint file (sorted)."""
        steps = []
        for p in self.directory.iterdir():
            m = _FILE_RE.match(p.name)
            if m and int(m.group(2)) == rank:
                steps.append(int(m.group(1)))
        return sorted(steps)

    def consistent_steps(self, nranks: int) -> list[int]:
        """Steps for which every rank's file exists (sorted)."""
        per_rank = [set(self.rank_steps(r)) for r in range(nranks)]
        if not per_rank:
            return []
        return sorted(set.intersection(*per_rank))

    def latest_consistent(self, nranks: int) -> int | None:
        """Newest step with a complete set of rank files, if any."""
        steps = self.consistent_steps(nranks)
        return steps[-1] if steps else None

    def clear(self) -> None:
        """Delete every checkpoint file in the directory."""
        for p in self.directory.iterdir():
            if _FILE_RE.match(p.name):
                p.unlink()
