"""Chaos harness: run all four applications under a fault plan.

``python -m repro chaos`` drives this module.  Each application runs
twice at a small configuration — once clean, once under a seeded
:class:`~repro.runtime.faults.FaultPlan` that drops/duplicates/corrupts/
delays point-to-point messages and crashes one rank mid-run — with
checkpoint/restart supervision enabled for the faulted pass.  The
harness then checks that

* the faulted-and-restarted results match the clean run (bitwise for
  LBMHD distributions and GTC fields; ≤1e-12 relative for Cactus and
  PARATEC observables),
* the application's physics invariants hold (mass conservation,
  constraint boundedness, particle conservation, eigenvalue agreement),
* the recovery machinery actually fired where faults apply (retries in
  the comm profile; the planned crash in the injector log).

PARATEC's communication is entirely collective (allreduce/alltoall), so
its pass exercises crash/restart but not the message-fault path.

``python -m repro chaos --sdc`` runs the *silent-data-corruption* pass
instead: each application runs under its demonstration SDC plan
(:func:`repro.resilience.health.sdc_plan` — one deterministic bit flip
in live state plus one damaged checkpoint file), and the harness checks
that the app's invariant monitor detected the corruption, the policy
rolled back to a verified checkpoint, and the final answer matches the
fault-free run (bitwise for LBMHD/GTC; ≤1e-10 relative for Cactus and
PARATEC).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..runtime.faults import FaultInjector, FaultPlan
from ..runtime.transport import Transport
from .checkpoint import Checkpointer


@dataclass
class ChaosOutcome:
    """Result of one application's chaos pass."""

    app: str
    ok: bool
    detail: str


def default_plan(seed: int, *, crash_rank: int, crash_step: int,
                 nprocs: int) -> FaultPlan:
    """The standard chaos mix: 5% drops plus light dup/corrupt/delay."""
    if not 0 <= crash_rank < nprocs:
        raise ValueError("crash_rank outside the job")
    return FaultPlan(seed=seed, drop=0.05, duplicate=0.02, corrupt=0.02,
                     delay=0.02, delay_seconds=0.001,
                     crash_rank=crash_rank, crash_step=crash_step,
                     backoff_base=0.0005)


def _traffic_detail(transport: Transport) -> str:
    """Compact per-pair/per-tag view of the faulted run's traffic."""
    summary = transport.traffic_summary()
    hot = summary.hottest_pair()
    if hot is None:
        return "no p2p traffic"
    (src, dst), nbytes = hot
    ntags = len(summary.by_tag)
    return (f"hottest pair {src}->{dst} ({nbytes} B of "
            f"{summary.nbytes} B over {len(summary.by_pair)} pairs, "
            f"{ntags} tags)")


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.max(np.abs(a - b)
                        / np.maximum(np.abs(a), 1e-300), initial=0.0))


def _chaos_lbmhd(seed: int, ckdir: str) -> str:
    from ..apps.lbmhd import orszag_tang
    from ..apps.lbmhd.parallel import run_parallel

    nprocs, nsteps = 4, 5
    rho, u, B = orszag_tang(16, 16)
    clean = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps)
    plan = default_plan(seed, crash_rank=2, crash_step=2, nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=2)
    for name, a, b in zip(("rho", "u", "B"), clean, faulted):
        if not np.array_equal(a, b):
            raise AssertionError(f"{name} differs after restart")
    mass = float(faulted[0].sum())
    if abs(mass - rho.sum()) > 1e-8:
        raise AssertionError(f"mass not conserved: {mass}")
    if not injector.crash_fired:
        raise AssertionError("planned crash did not fire")
    resends = transport.resend_count()
    if resends == 0:
        raise AssertionError("no retries recorded under a 5% drop plan")
    return (f"bitwise restart OK, mass conserved, "
            f"{resends} retried messages, faults {injector.counts()}, "
            f"{_traffic_detail(transport)}")


def _chaos_cactus(seed: int, ckdir: str) -> str:
    from ..apps.cactus import gauge_wave
    from ..apps.cactus.parallel import run_parallel

    nprocs, nsteps = 2, 4
    dx = 1.0 / 8
    g, K, a = gauge_wave((8, 4, 4), dx, amplitude=0.05)
    clean = run_parallel(g, K, a, nprocs=nprocs, nsteps=nsteps,
                         spacing=dx, dt=0.2 * dx)
    plan = default_plan(seed + 1, crash_rank=1, crash_step=2,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(g, K, a, nprocs=nprocs, nsteps=nsteps,
                           spacing=dx, dt=0.2 * dx,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=1)
    err = max(_rel_err(x, y) for x, y in zip(clean, faulted))
    if err > 1e-12:
        raise AssertionError(f"restart deviates: rel err {err:.2e}")
    if not np.all(np.isfinite(faulted[0])):
        raise AssertionError("non-finite metric after faulted run")
    if transport.resend_count() == 0:
        raise AssertionError("no retries recorded under a 5% drop plan")
    return (f"restart rel err {err:.1e}, fields finite, "
            f"{transport.resend_count()} retried messages, "
            f"{_traffic_detail(transport)}")


def _chaos_gtc(seed: int, ckdir: str) -> str:
    from ..apps.gtc import AnnulusGrid, TorusGeometry, load_ring_perturbation
    from ..apps.gtc.parallel import run_parallel

    nprocs, nsteps = 2, 3
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 2)
    parts = load_ring_perturbation(geom, 4.0)
    clean = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps)
    plan = default_plan(seed + 2, crash_rank=0, crash_step=1,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=1)
    n_clean = sum(r.nparticles for r in clean)
    n_fault = sum(r.nparticles for r in faulted)
    if n_fault != n_clean or n_fault != len(parts):
        raise AssertionError(
            f"particles not conserved: {n_fault} vs {n_clean}")
    for cr, fr in zip(clean, faulted):
        if not np.array_equal(cr.tags, fr.tags):
            raise AssertionError("particle migration differs")
        if _rel_err(cr.kinetic_energy, fr.kinetic_energy) > 1e-12:
            raise AssertionError("kinetic energy differs")
        for p, q in zip(cr.phi_planes, fr.phi_planes):
            if not np.array_equal(p, q):
                raise AssertionError("phi differs after restart")
    return (f"{n_fault} particles conserved, fields bitwise after "
            f"restart, faults {injector.counts()}, "
            f"{_traffic_detail(transport)}")


def _chaos_paratec(seed: int, ckdir: str) -> str:
    from ..apps.paratec import silicon_primitive
    from ..apps.paratec.parallel import solve_bands_parallel

    nprocs = 2
    cell = silicon_primitive()
    clean = solve_bands_parallel(cell, 4.0, 4, nprocs=nprocs,
                                 n_outer=3, n_inner=2)
    plan = default_plan(seed + 3, crash_rank=1, crash_step=1,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    faulted = solve_bands_parallel(cell, 4.0, 4, nprocs=nprocs,
                                   n_outer=3, n_inner=2,
                                   injector=injector,
                                   checkpoint=Checkpointer(ckdir),
                                   checkpoint_every=1)
    err = _rel_err(clean.eigenvalues, faulted.eigenvalues)
    if err > 1e-12:
        raise AssertionError(f"eigenvalues deviate: rel err {err:.2e}")
    if not injector.crash_fired:
        raise AssertionError("planned crash did not fire")
    return f"eigenvalues rel err {err:.1e} after crash/restart"


#: bitwise apps match exactly; iterative/constraint apps to tolerance
_SDC_TOLERANCE = {"lbmhd": 0.0, "gtc": 0.0, "cactus": 1e-12,
                  "paratec": 1e-10}


def _sdc_pass(name: str, seed: int, ckdir: str) -> str:
    """One application's SDC chaos pass; raises on any recovery gap."""
    from .health import run_monitored

    app = name.lower()
    run = run_monitored(app, ckdir=ckdir, sdc=True, seed=seed)
    if not run.injector.sdc_records:
        raise AssertionError("planned bit flip did not fire")
    detections = run.policy.detections()
    if not detections:
        raise AssertionError(
            f"corruption was not detected: {run.detail}")
    if run.policy.rollbacks() == 0:
        raise AssertionError("detection did not trigger a rollback")
    if "ckpt-corrupt" not in run.injector.counts():
        raise AssertionError("planned checkpoint corruption did not fire")
    tol = _SDC_TOLERANCE[app]
    if run.rel_err > tol:
        raise AssertionError(
            f"recovered result deviates: rel err {run.rel_err:.2e} "
            f"> {tol:.0e} ({run.detail})")
    det = detections[0]
    flip = run.injector.sdc_records[0]
    match = "bitwise" if run.bitwise else f"rel err {run.rel_err:.1e}"
    return (f"bit {flip.bit} flip in {flip.array} on rank {flip.rank} "
            f"at step {flip.step} caught by {det.monitor} after "
            f"{det.latency_steps} step(s); rolled back past the "
            f"corrupted checkpoint; final result {match} vs clean")


_APPS: tuple[tuple[str, Callable[[int, str], str]], ...] = (
    ("LBMHD", _chaos_lbmhd),
    ("Cactus", _chaos_cactus),
    ("GTC", _chaos_gtc),
    ("PARATEC", _chaos_paratec),
)


def run_chaos(seed: int = 2004,
              echo: Callable[[str], None] | None = None,
              *, sdc: bool = False) -> list[ChaosOutcome]:
    """Run the chaos pass for all four applications.

    ``sdc=False`` (default) is the wire-fault + crash/restart pass;
    ``sdc=True`` is the silent-data-corruption + rollback pass.  Each
    app gets its own checkpoint directory inside a temporary root;
    failures are captured per app so one broken recovery path does not
    hide the others.
    """
    outcomes = []
    kind = "SDC plan" if sdc else "fault plan"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        for name, fn in _APPS:
            if echo is not None:
                echo(f"{name}: {kind} seed {seed} ...")
            try:
                if sdc:
                    detail = _sdc_pass(name, seed, f"{root}/{name.lower()}")
                else:
                    detail = fn(seed, f"{root}/{name.lower()}")
                outcomes.append(ChaosOutcome(name, True, detail))
            except Exception as exc:  # noqa: BLE001 - reported per app
                outcomes.append(ChaosOutcome(name, False, repr(exc)))
            if echo is not None:
                last = outcomes[-1]
                echo(f"  {'ok' if last.ok else 'FAIL'}: {last.detail}")
    return outcomes
