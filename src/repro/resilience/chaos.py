"""Chaos harness: run all four applications under a fault plan.

``python -m repro chaos`` drives this module.  Each application runs
twice at a small configuration — once clean, once under a seeded
:class:`~repro.runtime.faults.FaultPlan` that drops/duplicates/corrupts/
delays point-to-point messages and crashes one rank mid-run — with
checkpoint/restart supervision enabled for the faulted pass.  The
harness then checks that

* the faulted-and-restarted results match the clean run (bitwise for
  LBMHD distributions and GTC fields; ≤1e-12 relative for Cactus and
  PARATEC observables),
* the application's physics invariants hold (mass conservation,
  constraint boundedness, particle conservation, eigenvalue agreement),
* the recovery machinery actually fired where faults apply (retries in
  the comm profile; the planned crash in the injector log).

PARATEC's communication is entirely collective (allreduce/alltoall), so
its pass exercises crash/restart but not the message-fault path.

``python -m repro chaos --sdc`` runs the *silent-data-corruption* pass
instead: each application runs under its demonstration SDC plan
(:func:`repro.resilience.health.sdc_plan` — one deterministic bit flip
in live state plus one damaged checkpoint file), and the harness checks
that the app's invariant monitor detected the corruption, the policy
rolled back to a verified checkpoint, and the final answer matches the
fault-free run (bitwise for LBMHD/GTC; ≤1e-10 relative for Cactus and
PARATEC).

``python -m repro chaos --kill-rank R --at-step S`` runs the *online
rank-failure* pass: one rank is killed mid-run and the job recovers
*without restarting* — a spare rank is respawned in the dead rank's
place and catches up by replaying the message/collective logs
(``--shrink`` re-decomposes over the survivors instead).  The harness
checks the final answer against the unfaulted same-seed run
(bit-identical for respawn), that the rollback was *localized* (the
checkpoint-load ledger shows only the replacement reloading shards),
and that exactly the replacement + its neighbours were rolled back.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..runtime.faults import FaultInjector, FaultPlan
from ..runtime.transport import Transport
from .checkpoint import Checkpointer


@dataclass
class ChaosOutcome:
    """Result of one application's chaos pass."""

    app: str
    ok: bool
    detail: str


def default_plan(seed: int, *, crash_rank: int, crash_step: int,
                 nprocs: int) -> FaultPlan:
    """The standard chaos mix: 5% drops plus light dup/corrupt/delay."""
    if not 0 <= crash_rank < nprocs:
        raise ValueError("crash_rank outside the job")
    return FaultPlan(seed=seed, drop=0.05, duplicate=0.02, corrupt=0.02,
                     delay=0.02, delay_seconds=0.001,
                     crash_rank=crash_rank, crash_step=crash_step,
                     backoff_base=0.0005)


def _traffic_detail(transport: Transport) -> str:
    """Compact per-pair/per-tag view of the faulted run's traffic."""
    summary = transport.traffic_summary()
    hot = summary.hottest_pair()
    if hot is None:
        return "no p2p traffic"
    (src, dst), nbytes = hot
    ntags = len(summary.by_tag)
    return (f"hottest pair {src}->{dst} ({nbytes} B of "
            f"{summary.nbytes} B over {len(summary.by_pair)} pairs, "
            f"{ntags} tags)")


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.max(np.abs(a - b)
                        / np.maximum(np.abs(a), 1e-300), initial=0.0))


def _chaos_lbmhd(seed: int, ckdir: str, backend: str = "thread") -> str:
    from ..apps.lbmhd import orszag_tang
    from ..apps.lbmhd.parallel import run_parallel

    nprocs, nsteps = 4, 5
    rho, u, B = orszag_tang(16, 16)
    clean = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                         backend=backend)
    plan = default_plan(seed, crash_rank=2, crash_step=2, nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=2, backend=backend)
    for name, a, b in zip(("rho", "u", "B"), clean, faulted):
        if not np.array_equal(a, b):
            raise AssertionError(f"{name} differs after restart")
    mass = float(faulted[0].sum())
    if abs(mass - rho.sum()) > 1e-8:
        raise AssertionError(f"mass not conserved: {mass}")
    if not injector.crash_fired:
        raise AssertionError("planned crash did not fire")
    resends = transport.resend_count()
    if resends == 0:
        raise AssertionError("no retries recorded under a 5% drop plan")
    return (f"bitwise restart OK, mass conserved, "
            f"{resends} retried messages, faults {injector.counts()}, "
            f"{_traffic_detail(transport)}")


def _chaos_cactus(seed: int, ckdir: str, backend: str = "thread") -> str:
    from ..apps.cactus import gauge_wave
    from ..apps.cactus.parallel import run_parallel

    nprocs, nsteps = 2, 4
    dx = 1.0 / 8
    g, K, a = gauge_wave((8, 4, 4), dx, amplitude=0.05)
    clean = run_parallel(g, K, a, nprocs=nprocs, nsteps=nsteps,
                         spacing=dx, dt=0.2 * dx, backend=backend)
    plan = default_plan(seed + 1, crash_rank=1, crash_step=2,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(g, K, a, nprocs=nprocs, nsteps=nsteps,
                           spacing=dx, dt=0.2 * dx,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=1, backend=backend)
    err = max(_rel_err(x, y) for x, y in zip(clean, faulted))
    if err > 1e-12:
        raise AssertionError(f"restart deviates: rel err {err:.2e}")
    if not np.all(np.isfinite(faulted[0])):
        raise AssertionError("non-finite metric after faulted run")
    if transport.resend_count() == 0:
        raise AssertionError("no retries recorded under a 5% drop plan")
    return (f"restart rel err {err:.1e}, fields finite, "
            f"{transport.resend_count()} retried messages, "
            f"{_traffic_detail(transport)}")


def _chaos_gtc(seed: int, ckdir: str, backend: str = "thread") -> str:
    from ..apps.gtc import AnnulusGrid, TorusGeometry, load_ring_perturbation
    from ..apps.gtc.parallel import run_parallel

    nprocs, nsteps = 2, 3
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 8, 8), 2)
    parts = load_ring_perturbation(geom, 4.0)
    clean = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps,
                         backend=backend)
    plan = default_plan(seed + 2, crash_rank=0, crash_step=1,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = Transport(nprocs)
    faulted = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=Checkpointer(ckdir),
                           checkpoint_every=1, backend=backend)
    n_clean = sum(r.nparticles for r in clean)
    n_fault = sum(r.nparticles for r in faulted)
    if n_fault != n_clean or n_fault != len(parts):
        raise AssertionError(
            f"particles not conserved: {n_fault} vs {n_clean}")
    for cr, fr in zip(clean, faulted):
        if not np.array_equal(cr.tags, fr.tags):
            raise AssertionError("particle migration differs")
        if _rel_err(cr.kinetic_energy, fr.kinetic_energy) > 1e-12:
            raise AssertionError("kinetic energy differs")
        for p, q in zip(cr.phi_planes, fr.phi_planes):
            if not np.array_equal(p, q):
                raise AssertionError("phi differs after restart")
    return (f"{n_fault} particles conserved, fields bitwise after "
            f"restart, faults {injector.counts()}, "
            f"{_traffic_detail(transport)}")


def _chaos_paratec(seed: int, ckdir: str, backend: str = "thread") -> str:
    from ..apps.paratec import silicon_primitive
    from ..apps.paratec.parallel import solve_bands_parallel

    nprocs = 2
    cell = silicon_primitive()
    clean = solve_bands_parallel(cell, 4.0, 4, nprocs=nprocs,
                                 n_outer=3, n_inner=2, backend=backend)
    plan = default_plan(seed + 3, crash_rank=1, crash_step=1,
                        nprocs=nprocs)
    injector = FaultInjector(plan)
    faulted = solve_bands_parallel(cell, 4.0, 4, nprocs=nprocs,
                                   n_outer=3, n_inner=2,
                                   injector=injector,
                                   checkpoint=Checkpointer(ckdir),
                                   checkpoint_every=1, backend=backend)
    err = _rel_err(clean.eigenvalues, faulted.eigenvalues)
    if err > 1e-12:
        raise AssertionError(f"eigenvalues deviate: rel err {err:.2e}")
    if not injector.crash_fired:
        raise AssertionError("planned crash did not fire")
    return f"eigenvalues rel err {err:.1e} after crash/restart"


#: bitwise apps match exactly; iterative/constraint apps to tolerance
_SDC_TOLERANCE = {"lbmhd": 0.0, "gtc": 0.0, "cactus": 1e-12,
                  "paratec": 1e-10}


def _sdc_pass(name: str, seed: int, ckdir: str,
              backend: str = "thread") -> str:
    """One application's SDC chaos pass; raises on any recovery gap."""
    from .health import run_monitored

    app = name.lower()
    run = run_monitored(app, ckdir=ckdir, sdc=True, seed=seed,
                        backend=backend)
    if not run.injector.sdc_records:
        raise AssertionError("planned bit flip did not fire")
    detections = run.policy.detections()
    if not detections:
        raise AssertionError(
            f"corruption was not detected: {run.detail}")
    if run.policy.rollbacks() == 0:
        raise AssertionError("detection did not trigger a rollback")
    if "ckpt-corrupt" not in run.injector.counts():
        raise AssertionError("planned checkpoint corruption did not fire")
    tol = _SDC_TOLERANCE[app]
    if run.rel_err > tol:
        raise AssertionError(
            f"recovered result deviates: rel err {run.rel_err:.2e} "
            f"> {tol:.0e} ({run.detail})")
    det = detections[0]
    flip = run.injector.sdc_records[0]
    match = "bitwise" if run.bitwise else f"rel err {run.rel_err:.1e}"
    return (f"bit {flip.bit} flip in {flip.array} on rank {flip.rank} "
            f"at step {flip.step} caught by {det.monitor} after "
            f"{det.latency_steps} step(s); rolled back past the "
            f"corrupted checkpoint; final result {match} vs clean")


_APPS: tuple[tuple[str, Callable[[int, str], str]], ...] = (
    ("LBMHD", _chaos_lbmhd),
    ("Cactus", _chaos_cactus),
    ("GTC", _chaos_gtc),
    ("PARATEC", _chaos_paratec),
)


# -- online rank-failure (kill) pass ---------------------------------------

def kill_plan(*, kill_rank: int, kill_step: int, nprocs: int) -> FaultPlan:
    """A clean wire with one planned kill: isolates the online-repair
    path from the retry/ack machinery the default plan also exercises."""
    if not 0 <= kill_rank < nprocs:
        raise ValueError("kill_rank outside the job")
    if kill_step < 0:
        raise ValueError("kill_step must be >= 0")
    return FaultPlan(kill_rank=kill_rank, kill_step=kill_step)


def _kill_ckpt_every(backend: str) -> int:
    """Checkpoint cadence for the kill pass.

    The process backend cannot replay a dead rank's missed messages
    (its log cursors died with it), so online recovery must resume
    exactly at the rollback checkpoint: checkpoint every step.  The
    thread backend keeps the sparser cadence and replays the gap.
    """
    return 1 if backend == "process" else 2


def _traced_transport(nprocs: int) -> Transport:
    """A kill-pass transport with a tracer attached, so the repair
    window is observable and :func:`_kill_verify` can attribute it."""
    from ..obs.tracer import Tracer

    transport = Transport(nprocs)
    transport.tracer = Tracer(nprocs)
    return transport


def _kill_verify(app: str, transport: Transport, ckpt: Checkpointer,
                 injector: FaultInjector, *, kill_rank: int,
                 shrink: bool) -> dict:
    """Shared post-run checks; returns the pass's metrics dump."""
    from ..obs.metrics import MetricsRegistry

    if not injector.kill_fired:
        raise AssertionError("planned kill did not fire")
    if not transport.repairs:
        raise AssertionError("kill fired but no communicator repair ran")
    rec = transport.repairs[-1]
    want = "shrink" if shrink else "respawn"
    if rec.mode != want:
        raise AssertionError(f"repair mode {rec.mode!r}, wanted {want!r}")
    if kill_rank not in rec.dead:
        raise AssertionError(f"rank {kill_rank} not in dead set {rec.dead}")
    if not shrink:
        # Localized rollback: only the replacement (+ declared
        # neighbours) refreshed state, and only the replacement
        # touched the checkpoint store.
        extra = set(ckpt.load_counts) - set(rec.dead)
        if extra:
            raise AssertionError(
                f"survivors reloaded checkpoints: {sorted(extra)}")
        if not set(rec.replacements) <= set(rec.rolled_back):
            raise AssertionError(
                f"replacements {rec.replacements} missing from "
                f"rolled-back set {rec.rolled_back}")
    reg = MetricsRegistry()
    reg.ingest_repairs(transport, ckpt)
    # With the tracer attached (every kill pass does), fold in the
    # cross-rank attribution so the metrics dump states where the
    # faulted run's time went — repair shows up as wait/(between-
    # phases) time next to the repair_seconds histogram above.
    if transport.tracer.enabled and len(transport.tracer):
        from ..obs.profile import ProfileError, analyze

        try:
            _, attribution, _ = analyze(transport.tracer)
        except ProfileError:
            pass                  # span-free trace: nothing to attribute
        else:
            reg.ingest_attribution(attribution)
    return reg.to_dict()


def _kill_lbmhd(ckdir: str, kill_rank: int, kill_step: int,
                shrink: bool, backend: str = "thread") -> tuple[str, dict]:
    from ..apps.lbmhd import orszag_tang
    from ..apps.lbmhd.parallel import run_parallel

    nprocs, nsteps = 4, max(6, kill_step + 3)
    rho, u, B = orszag_tang(16, 16)
    clean = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                         backend=backend)
    plan = kill_plan(kill_rank=kill_rank, kill_step=kill_step,
                     nprocs=nprocs)
    injector = FaultInjector(plan)
    transport = _traced_transport(nprocs)
    ckpt = Checkpointer(ckdir)
    faulted = run_parallel(rho, u, B, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=ckpt,
                           checkpoint_every=_kill_ckpt_every(backend),
                           spares=0 if shrink else 1,
                           on_shrink=shrink, backend=backend)
    for name, a, b in zip(("rho", "u", "B"), clean, faulted):
        if shrink:
            if _rel_err(a, b) > 1e-11:
                raise AssertionError(f"{name} deviates after shrink")
        elif not np.array_equal(a, b):
            raise AssertionError(f"{name} differs after online repair")
    metrics = _kill_verify("lbmhd", transport, ckpt, injector,
                           kill_rank=kill_rank, shrink=shrink)
    match = "within 1e-11 of" if shrink else "bit-identical to"
    return (f"rank {kill_rank} killed at step {kill_step}, "
            f"{'shrunk to ' + str(nprocs - 1) if shrink else 'respawned'}"
            f", result {match} the unfaulted run"), metrics


def _kill_cactus(ckdir: str, kill_rank: int, kill_step: int,
                 shrink: bool, backend: str = "thread") -> tuple[str, dict]:
    from ..apps.cactus import gauge_wave
    from ..apps.cactus.parallel import run_parallel

    nprocs, nsteps = 4, max(6, kill_step + 3)
    dx = 1.0 / 8
    g, K, a = gauge_wave((8, 8, 4), dx, amplitude=0.05)
    kw = dict(nprocs=nprocs, nsteps=nsteps, spacing=dx, dt=0.2 * dx,
              backend=backend)
    clean = run_parallel(g, K, a, **kw)
    injector = FaultInjector(kill_plan(kill_rank=kill_rank,
                                       kill_step=kill_step,
                                       nprocs=nprocs))
    transport = _traced_transport(nprocs)
    ckpt = Checkpointer(ckdir)
    faulted = run_parallel(g, K, a, **kw, transport=transport,
                           injector=injector, checkpoint=ckpt,
                           checkpoint_every=_kill_ckpt_every(backend),
                           spares=0 if shrink else 1,
                           on_shrink=shrink)
    tol = 1e-11 if shrink else 0.0
    for x, y in zip(clean, faulted):
        if tol == 0.0 and not np.array_equal(x, y):
            raise AssertionError("fields differ after online repair")
        if tol and _rel_err(x, y) > tol:
            raise AssertionError("fields deviate after shrink")
    metrics = _kill_verify("cactus", transport, ckpt, injector,
                           kill_rank=kill_rank, shrink=shrink)
    return (f"rank {kill_rank} killed at step {kill_step}, "
            f"{'shrink' if shrink else 'respawn'} recovered the ADM "
            f"fields"), metrics


def _kill_gtc(ckdir: str, kill_rank: int, kill_step: int,
              shrink: bool, backend: str = "thread") -> tuple[str, dict]:
    from ..apps.gtc import AnnulusGrid, TorusGeometry, load_ring_perturbation
    from ..apps.gtc.parallel import assemble_phi, run_parallel

    nprocs, nsteps = 4, max(6, kill_step + 3)
    geom = TorusGeometry(AnnulusGrid(0.2, 1.0, 16, 16), 12)
    parts = load_ring_perturbation(geom, 3.0, mode_m=3, amplitude=0.3,
                                   seed=1)
    clean = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps,
                         backend=backend)
    injector = FaultInjector(kill_plan(kill_rank=kill_rank,
                                       kill_step=kill_step,
                                       nprocs=nprocs))
    transport = _traced_transport(nprocs)
    ckpt = Checkpointer(ckdir)
    faulted = run_parallel(geom, parts, nprocs=nprocs, nsteps=nsteps,
                           transport=transport, injector=injector,
                           checkpoint=ckpt,
                           checkpoint_every=_kill_ckpt_every(backend),
                           spares=0 if shrink else 1,
                           on_shrink=shrink, backend=backend)
    n_clean = sum(r.nparticles for r in clean)
    n_fault = sum(r.nparticles for r in faulted)
    if n_fault != n_clean or n_fault != len(parts):
        raise AssertionError(
            f"particles not conserved: {n_fault} vs {n_clean}")
    tol = 1e-10 if shrink else 0.0
    for p, q in zip(assemble_phi(clean), assemble_phi(faulted)):
        if tol == 0.0 and not np.array_equal(p, q):
            raise AssertionError("phi differs after online repair")
        if tol:
            np.testing.assert_allclose(p, q, atol=tol)
    metrics = _kill_verify("gtc", transport, ckpt, injector,
                           kill_rank=kill_rank, shrink=shrink)
    return (f"rank {kill_rank} killed at step {kill_step}, "
            f"{n_fault} particles conserved through "
            f"{'shrink' if shrink else 'respawn'}"), metrics


def _kill_paratec(ckdir: str, kill_rank: int, kill_step: int,
                  shrink: bool, backend: str = "thread") -> tuple[str, dict]:
    from ..apps.paratec import silicon_primitive
    from ..apps.paratec.parallel import solve_bands_parallel

    nprocs = 4
    n_outer = max(6, kill_step + 3)
    cell = silicon_primitive()
    kw = dict(nprocs=nprocs, n_outer=n_outer, n_inner=2,
              backend=backend)
    clean = solve_bands_parallel(cell, 4.0, 4, **kw)
    injector = FaultInjector(kill_plan(kill_rank=kill_rank,
                                       kill_step=kill_step,
                                       nprocs=nprocs))
    transport = _traced_transport(nprocs)
    ckpt = Checkpointer(ckdir)
    faulted = solve_bands_parallel(cell, 4.0, 4, **kw,
                                   transport=transport,
                                   injector=injector, checkpoint=ckpt,
                                   checkpoint_every=_kill_ckpt_every(backend),
                                   spares=0 if shrink else 1,
                                   on_shrink=shrink)
    if shrink:
        np.testing.assert_allclose(faulted.eigenvalues,
                                   clean.eigenvalues, atol=1e-8)
    elif not np.array_equal(clean.eigenvalues, faulted.eigenvalues):
        raise AssertionError("eigenvalues differ after online repair")
    metrics = _kill_verify("paratec", transport, ckpt, injector,
                           kill_rank=kill_rank, shrink=shrink)
    return (f"rank {kill_rank} killed at outer iteration {kill_step}, "
            f"eigenvalues recovered via "
            f"{'shrink' if shrink else 'respawn'}"), metrics


_KILL_APPS: tuple[tuple[str, Callable[..., tuple[str, dict]]], ...] = (
    ("LBMHD", _kill_lbmhd),
    ("Cactus", _kill_cactus),
    ("GTC", _kill_gtc),
    ("PARATEC", _kill_paratec),
)


def run_kill_chaos(kill_rank: int = 1, kill_step: int = 3, *,
                   shrink: bool = False, apps: list[str] | None = None,
                   echo: Callable[[str], None] | None = None,
                   backend: str = "thread"
                   ) -> tuple[list[ChaosOutcome], dict]:
    """Run the online rank-failure pass; returns outcomes + summary.

    The summary dict (the CLI's ``--json`` payload) reports
    ``recovered: "online"`` only when every selected application
    repaired the kill in place and reproduced the unfaulted answer.
    ``backend="process"`` kills a real OS process mid-run (respawn
    only — shrinking re-decomposes in place, which needs the thread
    backend's shared address space).
    """
    if shrink and backend == "process":
        from ..runtime.transport import BackendError

        raise BackendError(
            "shrink recovery is not supported on the process backend; "
            "use respawn (spares) or backend='thread'")
    selected = [(n, f) for n, f in _KILL_APPS
                if apps is None or n.lower() in apps]
    if not selected:
        raise ValueError(f"no applications match {apps!r}")
    outcomes = []
    per_app: dict[str, dict] = {}
    mode = "shrink" if shrink else "respawn"
    with tempfile.TemporaryDirectory(prefix="repro-kill-") as root:
        for name, fn in selected:
            if echo is not None:
                echo(f"{name}: kill rank {kill_rank} at step "
                     f"{kill_step} ({mode}) ...")
            try:
                detail, metrics = fn(f"{root}/{name.lower()}",
                                     kill_rank, kill_step, shrink,
                                     backend)
                outcomes.append(ChaosOutcome(name, True, detail))
                per_app[name.lower()] = {"ok": True, "detail": detail,
                                         "metrics": metrics}
            except Exception as exc:  # noqa: BLE001 - reported per app
                outcomes.append(ChaosOutcome(name, False, repr(exc)))
                per_app[name.lower()] = {"ok": False,
                                         "detail": repr(exc)}
            if echo is not None:
                last = outcomes[-1]
                echo(f"  {'ok' if last.ok else 'FAIL'}: {last.detail}")
    summary = {
        "pass": "kill",
        "kill_rank": kill_rank,
        "kill_step": kill_step,
        "mode": mode,
        "recovered": "online" if all(o.ok for o in outcomes) else "failed",
        "apps": per_app,
    }
    return outcomes, summary


def run_chaos(seed: int = 2004,
              echo: Callable[[str], None] | None = None,
              *, sdc: bool = False,
              backend: str = "thread") -> list[ChaosOutcome]:
    """Run the chaos pass for all four applications.

    ``sdc=False`` (default) is the wire-fault + crash/restart pass;
    ``sdc=True`` is the silent-data-corruption + rollback pass.  Each
    app gets its own checkpoint directory inside a temporary root;
    failures are captured per app so one broken recovery path does not
    hide the others.  ``backend`` selects the execution backend for
    every pass (faults are injected inside the worker processes when
    ``"process"``).
    """
    outcomes = []
    kind = "SDC plan" if sdc else "fault plan"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        for name, fn in _APPS:
            if echo is not None:
                echo(f"{name}: {kind} seed {seed} ...")
            try:
                if sdc:
                    detail = _sdc_pass(name, seed,
                                       f"{root}/{name.lower()}", backend)
                else:
                    detail = fn(seed, f"{root}/{name.lower()}", backend)
                outcomes.append(ChaosOutcome(name, True, detail))
            except Exception as exc:  # noqa: BLE001 - reported per app
                outcomes.append(ChaosOutcome(name, False, repr(exc)))
            if echo is not None:
                last = outcomes[-1]
                echo(f"  {'ok' if last.ok else 'FAIL'}: {last.detail}")
    return outcomes
