"""Checkpoint/restart and fault-tolerant job supervision.

Pairs with :mod:`repro.runtime.faults`: the fault injector breaks runs
deterministically, this package brings them back — per-rank ``.npz``
checkpoints (:class:`Checkpointer`) and restart-on-crash job supervision
(:class:`ResilientJob`).  The chaos harness that exercises all four
applications under a fault plan lives in :mod:`repro.resilience.chaos`
(imported lazily by the CLI; it pulls in every application package).
"""

from .checkpoint import Checkpointer
from .supervisor import ResilientJob

__all__ = ["Checkpointer", "ResilientJob"]
