"""Checkpoint/restart, SDC detection and fault-tolerant supervision.

Pairs with :mod:`repro.runtime.faults`: the fault injector breaks runs
deterministically — crashes, wire faults, silent bit flips, checkpoint
damage — and this package brings them back.  CRC-verified per-rank
``.npz`` checkpoints (:class:`Checkpointer`), per-application invariant
watchdogs (:mod:`repro.resilience.health`), and a recovery-policy-driven
supervisor (:class:`ResilientJob` + :class:`RecoveryPolicy`) that
classifies failures and rolls back to the last verified checkpoint.
The chaos harness that exercises all four applications under a fault
plan lives in :mod:`repro.resilience.chaos` (imported lazily by the
CLI; it pulls in every application package).
"""

from .checkpoint import (
    Checkpointer,
    CheckpointCorruptError,
    CheckpointError,
)
from .failures import (
    EXIT_CHECK,
    EXIT_CONFIG,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_RUN,
    FatalStepError,
    PersistentStepError,
    StepError,
    StepTimeoutError,
    TransientStepError,
    classify_exit,
    classify_failure,
)
from .health import (
    CheckRecord,
    HealthConfig,
    HealthLog,
    HealthMonitor,
    SDCDetectedError,
)
from .online import OnlineRunner
from .supervisor import RecoveryEvent, RecoveryPolicy, ResilientJob

__all__ = [
    "CheckRecord", "Checkpointer", "CheckpointCorruptError",
    "CheckpointError", "EXIT_CHECK", "EXIT_CONFIG", "EXIT_ERROR",
    "EXIT_OK", "EXIT_PARTIAL", "EXIT_RUN", "FatalStepError",
    "HealthConfig", "HealthLog", "HealthMonitor", "OnlineRunner",
    "PersistentStepError", "RecoveryEvent", "RecoveryPolicy",
    "ResilientJob", "SDCDetectedError", "StepError", "StepTimeoutError",
    "TransientStepError", "classify_exit", "classify_failure",
]
