"""Job-level supervision: detect an injected rank crash and restart.

:class:`ResilientJob` wraps a :class:`~repro.runtime.comm.ParallelJob`.
When a run fails because a rank crashed
(:class:`~repro.runtime.faults.RankCrashError` as the root cause), the
supervisor resets the transport — draining in-flight envelopes, sequence
counters and the poison flag, while keeping the traffic records — and
re-runs the same SPMD function.  Application drivers make the re-run
resume from the last *consistent* checkpoint (every rank reloads the
newest step for which all ranks saved state), so the combined
faulted-and-restarted run reproduces the uninterrupted run's results.

Any other failure (a genuine bug, a timeout) is re-raised unchanged:
restarts are a recovery path for injected/operational crashes, not a way
to mask application errors.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..runtime.comm import ParallelJob
from ..runtime.faults import RankCrashError


class ResilientJob:
    """Run a :class:`ParallelJob` with restart-on-crash supervision."""

    def __init__(self, job: ParallelJob, *, max_restarts: int = 2,
                 on_restart: Callable[[int, RankCrashError], None]
                 | None = None):
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.job = job
        self.max_restarts = max_restarts
        self.on_restart = on_restart
        #: restarts performed by the most recent :meth:`run`
        self.restarts = 0

    def run(self, fn: Callable[..., Any], *args: Any,
            rank_args: Sequence[tuple] | None = None) -> list:
        self.restarts = 0
        while True:
            try:
                return self.job.run(fn, *args, rank_args=rank_args)
            except RuntimeError as exc:
                cause = exc.__cause__
                if (not isinstance(cause, RankCrashError)
                        or self.restarts >= self.max_restarts):
                    raise
                self.restarts += 1
                self.job.transport.reset()
                if self.on_restart is not None:
                    self.on_restart(self.restarts, cause)
