"""Job-level supervision: restart on crash, roll back on corruption.

:class:`ResilientJob` wraps a :class:`~repro.runtime.comm.ParallelJob`
and consults a :class:`RecoveryPolicy` whenever a run fails:

* a rank crash (:class:`~repro.runtime.faults.RankCrashError` root
  cause) is the *fail-stop* class — restart the job; drivers resume from
  the last verified checkpoint;
* an invariant violation (:class:`~repro.resilience.health.
  SDCDetectedError` root cause) is the *silent-corruption* class — the
  same restart **is** a rollback: the supervisor first quarantines
  every checkpoint labeled at or after the detection step (a quiet
  flip below threshold can be checkpointed, CRC-clean, before a later
  check catches it), then drivers resume from
  :meth:`~repro.resilience.checkpoint.Checkpointer.latest_verified`,
  which now strictly predates the detection;
* anything else (a genuine bug, a timeout, an unreadable checkpoint on
  a resume path) is *fatal* — re-raised unchanged.  Restarts recover
  injected/operational faults; they must not mask application errors.

Classification: the policy remembers each failure's signature (fault
kind + monitor/exception + step).  The first occurrence is *transient*
— retry, after exponential backoff.  A repeat of the same signature is
*persistent* (a stuck-at fault re-fires identically on replay) — abort
with the full diagnosis rather than loop.  Every decision is recorded
as a :class:`RecoveryEvent` (kind, classification, action, rank, step,
detection latency), mirrored to the tracer (``CAT_HEALTH`` instants)
and readable by :meth:`~repro.obs.metrics.MetricsRegistry.
ingest_recovery`.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.events import CAT_HEALTH
from ..runtime.comm import ParallelJob
from ..runtime.faults import RankCrashError, RankKilledError
from .health import SDCDetectedError

#: failure classes the policy can retry
KIND_CRASH = "crash"
KIND_KILL = "kill"
KIND_SDC = "sdc"
KIND_FATAL = "fatal"


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervision decision: what failed and what was done about it."""

    kind: str                      # KIND_CRASH | KIND_SDC | KIND_FATAL
    classification: str            # "transient" | "persistent" | "fatal"
    action: str                    # "restart" | "rollback" | "abort"
    exception: str                 # root-cause exception type name
    message: str
    rank: int | None
    step: int | None
    monitor: str | None            # invariant name (SDC only)
    attempt: int                   # restarts already performed
    backoff: float = 0.0           # seconds slept before the retry
    latency_steps: int | None = None   # detection step - injection step

    def describe(self) -> str:
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.step is not None:
            where.append(f"step {self.step}")
        loc = " at ".join(where) if where else "unknown site"
        extra = f" [{self.monitor}]" if self.monitor else ""
        lat = (f", detected after {self.latency_steps} step(s)"
               if self.latency_steps is not None else "")
        return (f"{self.classification} {self.kind}{extra} on {loc} "
                f"-> {self.action}{lat} ({self.exception})")


@dataclass
class RecoveryPolicy:
    """Decides restart vs. abort and keeps the recovery history.

    ``max_restarts`` bounds the total restart budget per :meth:`
    ResilientJob.run`.  ``backoff_base`` seeds the retry backoff —
    *decorrelated jitter* (AWS architecture-blog flavor): each pause is
    drawn uniformly from ``[base, 3 * previous]``, capped at
    ``backoff_max``, so simultaneous per-rank retries spread out
    instead of synchronizing into a retry storm the way a bare
    ``base * 2**attempt`` schedule does.  The draw is seeded
    (``seed``) and therefore reproducible; ``jitter=False`` restores
    the deterministic exponential schedule.  Pointless for an
    in-process simulation's own sake, but it is the shape a real job
    supervisor needs and the slept duration is recorded
    (``RecoveryEvent.backoff``) so tests can assert the schedule.
    ``retry_crash`` / ``retry_sdc`` gate the recoverable fault classes
    (rank kills ride the ``retry_crash`` gate).
    """

    max_restarts: int = 2
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    retry_crash: bool = True
    retry_sdc: bool = True
    #: decorrelated jitter on retry pauses (seeded, reproducible)
    jitter: bool = True
    seed: int = 0
    #: decisions made by the most recent supervised run
    events: list[RecoveryEvent] = field(default_factory=list)
    _seen: set = field(default_factory=set, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore
    _prev_backoff: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be >= 0")
        self._rng = random.Random(self.seed)
        self._prev_backoff = self.backoff_base

    def reset(self) -> None:
        self.events.clear()
        self._seen.clear()
        self._rng = random.Random(self.seed)
        self._prev_backoff = self.backoff_base

    # -- classification -----------------------------------------------------
    @staticmethod
    def describe_cause(cause: BaseException
                       ) -> tuple[str, int | None, int | None, str | None]:
        """(kind, rank, step, monitor) of a root-cause exception."""
        if isinstance(cause, SDCDetectedError):
            return KIND_SDC, cause.rank, cause.step, cause.monitor
        if isinstance(cause, RankKilledError):
            # A fail-stop loss that online recovery did *not* absorb
            # (no spares, no shrink hook, or repair itself failed):
            # degrade gracefully to the whole-job restart path.
            return (KIND_KILL, getattr(cause, "rank", None),
                    getattr(cause, "step", None), None)
        if isinstance(cause, RankCrashError):
            return (KIND_CRASH, getattr(cause, "rank", None),
                    getattr(cause, "step", None), None)
        return KIND_FATAL, None, None, None

    def _signature(self, kind: str, step: int | None,
                   monitor: str | None, exc: str) -> tuple:
        return (kind, step, monitor, exc)

    def decide(self, cause: BaseException, attempt: int
               ) -> RecoveryEvent:
        """Classify ``cause`` and choose restart/rollback vs. abort.

        ``attempt`` is the number of restarts already performed.  The
        returned event is *not* yet recorded — the supervisor appends it
        after acting on it (so the backoff actually slept can be filled
        in).
        """
        kind, rank, step, monitor = self.describe_cause(cause)
        exc = type(cause).__name__
        retryable = ((kind in (KIND_CRASH, KIND_KILL)
                      and self.retry_crash)
                     or (kind == KIND_SDC and self.retry_sdc))
        if kind == KIND_FATAL or not retryable:
            classification = "fatal"
        else:
            sig = self._signature(kind, step, monitor, exc)
            classification = ("persistent" if sig in self._seen
                              else "transient")
            self._seen.add(sig)
        if (classification == "transient"
                and attempt < self.max_restarts):
            action = "rollback" if kind == KIND_SDC else "restart"
        else:
            action = "abort"
        return RecoveryEvent(
            kind=kind, classification=classification, action=action,
            exception=exc, message=str(cause), rank=rank, step=step,
            monitor=monitor, attempt=attempt)

    def backoff(self, attempt: int) -> float:
        """Backoff before restart number ``attempt + 1`` (seconds).

        With ``jitter`` (default): decorrelated jitter — uniform in
        ``[base, 3 * previous pause]``, capped at ``backoff_max``; the
        drawn value feeds the next draw.  Without: deterministic
        ``min(base * 2**attempt, max)``.
        """
        if not self.jitter:
            return min(self.backoff_base * (2.0 ** attempt),
                       self.backoff_max)
        if self.backoff_base == 0.0:
            return 0.0
        pause = min(self.backoff_max,
                    self._rng.uniform(self.backoff_base,
                                      self._prev_backoff * 3.0))
        self._prev_backoff = pause
        return pause

    # -- reporting ----------------------------------------------------------
    @property
    def final_failure(self) -> RecoveryEvent | None:
        """The abort decision of the last run, if it failed for good."""
        for ev in reversed(self.events):
            if ev.action == "abort":
                return ev
        return None

    def detections(self) -> list[RecoveryEvent]:
        return [ev for ev in self.events if ev.kind == KIND_SDC]

    def rollbacks(self) -> int:
        return sum(1 for ev in self.events if ev.action == "rollback")


class ResilientJob:
    """Run a :class:`ParallelJob` under restart/rollback supervision.

    On a recoverable failure the transport is reset — draining in-flight
    envelopes, sequence counters and the poison flag while keeping the
    traffic records — and the same SPMD function re-runs; drivers make
    the re-run resume from the newest *verified* checkpoint.  The
    ``max_restarts``/``on_restart`` keywords are the original fail-stop
    interface and still work; pass a :class:`RecoveryPolicy` to control
    classification, backoff and the recovery record.
    """

    def __init__(self, job: ParallelJob, *, max_restarts: int = 2,
                 on_restart: Callable[[int, BaseException], None]
                 | None = None,
                 policy: RecoveryPolicy | None = None,
                 checkpoint=None,
                 sleep: Callable[[float], None] = time.sleep):
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.job = job
        #: optional Checkpointer quarantined on SDC rollback so the
        #: re-run cannot restore state saved after an undetected flip
        self.checkpoint = checkpoint
        self.policy = (policy if policy is not None
                       else RecoveryPolicy(max_restarts=max_restarts))
        self.on_restart = on_restart
        self._sleep = sleep
        #: restarts performed by the most recent :meth:`run` (all kinds)
        self.restarts = 0
        #: backoff seconds actually slept, per restart
        self.backoffs: list[float] = []

    @property
    def max_restarts(self) -> int:
        return self.policy.max_restarts

    def _detection_latency(self, step: int | None) -> int | None:
        """Steps from the newest injected flip at/before ``step`` to
        its detection — the window during which corrupt state was live."""
        injector = self.job.transport.injector
        if injector is None or step is None:
            return None
        prior = [r.step for r in injector.sdc_records if r.step <= step]
        return (step - max(prior)) if prior else None

    def _note(self, ev: RecoveryEvent) -> None:
        self.policy.events.append(ev)
        tracer = self.job.transport.tracer
        if tracer.enabled:
            tracer.instant(ev.rank if ev.rank is not None else 0,
                           f"recovery-{ev.action}", CAT_HEALTH,
                           {"kind": ev.kind,
                            "classification": ev.classification,
                            "monitor": ev.monitor, "step": ev.step,
                            "attempt": ev.attempt,
                            "latency_steps": ev.latency_steps})

    def run(self, fn: Callable[..., Any], *args: Any,
            rank_args: Sequence[tuple] | None = None) -> list:
        self.restarts = 0
        self.backoffs = []
        self.policy.reset()
        while True:
            try:
                return self.job.run(fn, *args, rank_args=rank_args)
            except RuntimeError as exc:
                cause = exc.__cause__ if exc.__cause__ is not None else exc
                ev = self.policy.decide(cause, self.restarts)
                if ev.kind == KIND_SDC:
                    ev = dataclasses.replace(
                        ev, latency_steps=self._detection_latency(ev.step))
                if ev.action == "abort":
                    self._note(ev)
                    raise
                if (ev.kind == KIND_SDC and ev.step is not None
                        and self.checkpoint is not None):
                    self.checkpoint.quarantine(ev.step)
                pause = self.policy.backoff(self.restarts)
                if pause > 0:
                    self._sleep(pause)
                self.backoffs.append(pause)
                self._note(dataclasses.replace(ev, backoff=pause))
                self.restarts += 1
                self.job.transport.reset()
                if self.on_restart is not None:
                    self.on_restart(self.restarts, cause)
