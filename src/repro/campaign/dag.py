"""Dependency DAG over campaign steps: validation and scheduling order.

The DAG is small and explicit: nodes are step ids, edges point from a
dependency to its dependents.  Validation runs Kahn's algorithm once at
construction — a cycle is a spec error, found before anything executes.
The pool asks two questions at runtime: *which steps are ready* (every
dependency succeeded) and *which descendants must be skipped* when a
step fails for good.
"""

from __future__ import annotations

from typing import Iterable

from .spec import SpecError, StepSpec


class DAGError(SpecError):
    """The step graph is not a DAG (cycle) or references unknown ids."""


class StepDAG:
    """Validated dependency graph over a list of :class:`StepSpec`."""

    def __init__(self, steps: Iterable[StepSpec]):
        self.steps: dict[str, StepSpec] = {}
        for s in steps:
            if s.id in self.steps:
                raise DAGError(f"duplicate step id {s.id!r}")
            self.steps[s.id] = s
        self.dependents: dict[str, list[str]] = {i: []
                                                 for i in self.steps}
        for s in self.steps.values():
            for dep in s.after:
                if dep not in self.steps:
                    raise DAGError(
                        f"step {s.id!r}: unknown dependency {dep!r}")
                self.dependents[dep].append(s.id)
        self.topo_order = self._toposort()

    def _toposort(self) -> list[str]:
        indeg = {i: len(s.after) for i, s in self.steps.items()}
        # deterministic order: ready steps are visited in id order
        ready = sorted(i for i, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            changed = False
            for dep in sorted(self.dependents[node]):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
                    changed = True
            if changed:
                ready.sort()
        if len(order) != len(self.steps):
            cyclic = sorted(i for i, d in indeg.items() if d > 0)
            raise DAGError(f"dependency cycle among {cyclic}")
        return order

    def ready(self, done: set[str], blocked: set[str],
              in_flight: set[str]) -> list[str]:
        """Steps whose every dependency is in ``done``, excluding steps
        already finished, blocked, or running (deterministic id order).
        """
        out = []
        for step_id in self.topo_order:
            if step_id in done or step_id in blocked \
                    or step_id in in_flight:
                continue
            if all(dep in done for dep in self.steps[step_id].after):
                out.append(step_id)
        return out

    def descendants(self, step_id: str) -> set[str]:
        """Every transitive dependent of ``step_id``."""
        out: set[str] = set()
        frontier = list(self.dependents[step_id])
        while frontier:
            node = frontier.pop()
            if node in out:
                continue
            out.add(node)
            frontier.extend(self.dependents[node])
        return out
