"""Content-addressed result store: memoized step outputs by config hash.

Layout (under a campaign directory's ``store/``)::

    objects/
      ab/
        abcdef0123.../        # one entry per config hash
          result.json          # canonical result envelope
          trace.json, ...      # step artifacts (opaque files)
        .tmp-abcdef0123...-4217/   # in-flight staging (ignored)

An entry is *published atomically*: the writer stages ``result.json``
and every artifact in a ``.tmp-<key>-<pid>`` sibling, fsyncs the files,
then one ``os.replace`` renames the staging directory over the final
name and fsyncs the parent.  A SIGKILL mid-write leaves only a staging
directory the next run silently clears; an entry that *exists* is by
construction complete — which is exactly the property crash-safe resume
leans on: "is this step's hash present?" is the whole recovery
protocol for succeeded steps.

The envelope separates the **deterministic result payload** (what the
campaign report may embed byte-identically) from **artifacts** (trace
files, reports — possibly timing-dependent, never hashed into the
campaign report).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any

from ..runtime.atomic_io import (
    atomic_write_text,
    fsync_dir,
    replace_entry,
)

#: schema tag of the per-entry result envelope
RESULT_SCHEMA = "repro.campaign.result/1"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN.

    The same logical config always serializes to the same bytes, so
    the SHA-256 over it is a stable content address.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class StoreError(RuntimeError):
    """A store entry is missing or unreadable."""


class ResultStore:
    """Content-addressed step-result cache rooted at ``root``."""

    def __init__(self, root: str | Path, *, clean: bool = True):
        """``clean=False`` opens the store read-only-politely: stale
        staging directories are left alone, which is required when
        another process may be mid-publish (``campaign status`` on a
        live run)."""
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        if clean:
            self.clear_staging()

    # -- addressing -----------------------------------------------------------
    def _shard(self, key: str) -> Path:
        return self.objects / key[:2]

    def path_for(self, key: str) -> Path:
        return self._shard(key) / key

    def has(self, key: str) -> bool:
        return (self.path_for(key) / "result.json").exists()

    def keys(self) -> list[str]:
        out = []
        for shard in sorted(self.objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir() and not entry.name.startswith(".tmp-") \
                        and (entry / "result.json").exists():
                    out.append(entry.name)
        return out

    def __len__(self) -> int:
        return len(self.keys())

    # -- write ----------------------------------------------------------------
    def put(self, key: str, *, kind: str, config: dict, result: dict,
            artifacts: dict[str, Path] | None = None) -> Path:
        """Publish one entry atomically; idempotent for an existing key.

        ``artifacts`` maps stored file names to source paths (copied in
        whole).  Returns the entry directory.
        """
        final = self.path_for(key)
        if self.has(key):
            return final
        shard = self._shard(key)
        shard.mkdir(parents=True, exist_ok=True)
        staging = shard / f".tmp-{key}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        envelope = {
            "schema": RESULT_SCHEMA,
            "key": key,
            "kind": kind,
            "config": config,
            "result": result,
        }
        atomic_write_text(staging / "result.json",
                          canonical_json(envelope) + "\n")
        for name, src in (artifacts or {}).items():
            if Path(name).name != name:
                raise ValueError(
                    f"artifact name {name!r} must be a bare file name")
            shutil.copyfile(src, staging / name)
            with open(staging / name, "rb") as fh:
                os.fsync(fh.fileno())
        fsync_dir(staging)
        if self.has(key):               # lost a benign race: keep theirs
            shutil.rmtree(staging)
            return final
        replace_entry(staging, final)
        return final

    # -- read -----------------------------------------------------------------
    def get(self, key: str) -> dict:
        """The result envelope for ``key``.

        Raises :class:`StoreError` when absent or unreadable — a store
        read must never silently hand back a torn entry.
        """
        path = self.path_for(key) / "result.json"
        if not path.exists():
            raise StoreError(f"no store entry for {key}")
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"unreadable store entry {key}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
            raise StoreError(f"store entry {key} has a foreign schema")
        return doc

    def artifacts(self, key: str) -> list[Path]:
        entry = self.path_for(key)
        if not entry.is_dir():
            return []
        return sorted(p for p in entry.iterdir()
                      if p.name != "result.json")

    # -- maintenance ----------------------------------------------------------
    def clear_staging(self) -> int:
        """Remove staging directories a killed writer left behind."""
        removed = 0
        if not self.objects.exists():
            return 0
        for shard in self.objects.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.iterdir():
                if entry.is_dir() and entry.name.startswith(".tmp-"):
                    shutil.rmtree(entry)
                    removed += 1
        return removed
