"""Fault-tolerant campaign engine: DAG experiment workflows.

The paper's results are a matrix of (app × machine × concurrency) runs;
this package turns those matrices from ad-hoc scripts into reproducible,
restartable pipelines:

* :mod:`~repro.campaign.spec` — a small YAML/JSON spec expresses a
  parameter sweep (matrix expansion) plus explicit steps with
  dependencies, and canonicalizes each step's config into a content
  hash;
* :mod:`~repro.campaign.dag` — the dependency DAG (validation, topo
  order, descendant propagation);
* :mod:`~repro.campaign.store` — a content-addressed result store that
  memoizes step outputs by config hash, making re-runs no-ops;
* :mod:`~repro.campaign.journal` — a crash-safe append-only journal
  (atomic append + fsync, same discipline as the checkpointer) that
  lets a SIGKILL'd campaign resume exactly its incomplete steps;
* :mod:`~repro.campaign.pool` — a worker pool with per-step wall-clock
  timeouts, seeded decorrelated-jitter retry/backoff (reusing
  :meth:`~repro.resilience.supervisor.RecoveryPolicy.backoff`), and the
  transient/persistent/fatal taxonomy from
  :mod:`repro.resilience.failures`;
* :mod:`~repro.campaign.engine` / :mod:`~repro.campaign.report` — the
  ``repro campaign run|status|resume`` entry points and the
  deterministic campaign report (byte-identical across interrupted and
  uninterrupted runs of the same spec).
"""

from .dag import DAGError, StepDAG
from .engine import CampaignResult, load_campaign_dir, run_campaign
from .journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalError,
    replay_journal,
    validate_journal,
)
from .report import (
    CAMPAIGN_SCHEMA,
    build_campaign_doc,
    render_campaign,
    validate_campaign,
)
from .spec import CampaignSpec, SpecError, StepSpec, config_hash
from .store import ResultStore, canonical_json

__all__ = [
    "CAMPAIGN_SCHEMA", "CampaignResult", "CampaignSpec", "DAGError",
    "JOURNAL_SCHEMA", "Journal", "JournalError", "ResultStore",
    "SpecError", "StepDAG", "StepSpec", "build_campaign_doc",
    "canonical_json", "config_hash", "load_campaign_dir",
    "render_campaign", "replay_journal", "run_campaign",
    "validate_campaign", "validate_journal",
]
